package vfs

import (
	"errors"
	"strings"
	"sync"
)

// ErrInjected is the error FaultFS raises when a scheduled fault fires.
var ErrInjected = errors.New("vfs: injected fault")

// ErrNoSpace is the error FaultFS raises once its disk-full budget is
// exhausted, standing in for the operating system's ENOSPC.
var ErrNoSpace = errors.New("vfs: no space left on device")

// FaultFS wraps an FS and fails operations on demand, for exercising
// the engines' error paths: write failures during compaction, torn
// syncs, failed opens.  Faults are armed by operation kind with a
// countdown — "fail the 3rd write from now" — and fire once unless
// sticky.  Faults can be scoped to paths containing a substring, and
// write faults can be "short": part of the buffer reaches the inner
// file before the error surfaces, like a disk that ran out of space
// mid-write.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	arm    map[FaultOp][]*fault
	hits   map[FaultOp]int
	sticky bool

	// Disk-full simulation: when armed, writes draw from a byte budget
	// and fail with ErrNoSpace once it runs dry, until FreeSpace.
	nospace       bool
	nospaceBudget int64
	nospaceHits   int
}

// FaultOp selects which operation class a fault applies to.
type FaultOp int

// Operation classes that can fail.
const (
	FaultWrite FaultOp = iota
	FaultRead
	FaultSync
	FaultCreate
	FaultRemove
	FaultClose
	FaultRename
)

type fault struct {
	after  int    // fire when counter reaches zero
	path   string // substring the file path must contain; "" = any
	shortN int    // for FaultWrite: bytes to let through first; < 0 = none
}

// NewFaultFS wraps fs with no faults armed.
func NewFaultFS(fs FS) *FaultFS {
	return &FaultFS{inner: fs, arm: make(map[FaultOp][]*fault), hits: make(map[FaultOp]int)}
}

// FailAfter arms op to fail after n more operations (n=0 fails the
// next one).  Re-arming replaces the previous schedule for op.
func (f *FaultFS) FailAfter(op FaultOp, n int) {
	f.mu.Lock()
	f.arm[op] = []*fault{{after: n, shortN: -1}}
	f.mu.Unlock()
}

// FailAfterPath arms op to fail after n more operations whose file path
// contains substr.  Unlike FailAfter it adds to the schedule, so
// several path-scoped faults can be armed at once.
func (f *FaultFS) FailAfterPath(op FaultOp, substr string, n int) {
	f.mu.Lock()
	f.arm[op] = append(f.arm[op], &fault{after: n, path: substr, shortN: -1})
	f.mu.Unlock()
}

// FailShortWrite arms a write fault scoped to paths containing substr
// that, when it fires, lets the first n bytes of the buffer through to
// the inner file and then fails — a short write.
func (f *FaultFS) FailShortWrite(substr string, after, n int) {
	f.mu.Lock()
	f.arm[FaultWrite] = append(f.arm[FaultWrite], &fault{after: after, path: substr, shortN: n})
	f.mu.Unlock()
}

// FailWithNoSpace simulates a filling disk: the next budget bytes of
// writes succeed, after which every write and create fails with
// ErrNoSpace until FreeSpace (or Clear).  A write straddling the budget
// boundary lands its allowed prefix in the inner file and reports a
// short write with ErrNoSpace, like a real device running dry
// mid-write.  budget 0 fails the very next write.
func (f *FaultFS) FailWithNoSpace(budget int64) {
	f.mu.Lock()
	f.nospace = true
	f.nospaceBudget = budget
	f.mu.Unlock()
}

// FreeSpace clears the disk-full condition: writes succeed again, as if
// space had been reclaimed.
func (f *FaultFS) FreeSpace() {
	f.mu.Lock()
	f.nospace = false
	f.mu.Unlock()
}

// NoSpaceHits reports how many operations have failed with ErrNoSpace.
func (f *FaultFS) NoSpaceHits() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nospaceHits
}

// chargeWrite draws n bytes from the disk-full budget.  It returns how
// many bytes are allowed through (all of them when no fault fires) and
// ErrNoSpace once the budget is dry.
func (f *FaultFS) chargeWrite(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.nospace {
		return n, nil
	}
	if f.nospaceBudget >= int64(n) && (n > 0 || f.nospaceBudget > 0) {
		f.nospaceBudget -= int64(n)
		return n, nil
	}
	allowed := int(f.nospaceBudget)
	f.nospaceBudget = 0
	f.nospaceHits++
	return allowed, ErrNoSpace
}

// SetSticky makes fired faults keep failing instead of disarming.
func (f *FaultFS) SetSticky(on bool) {
	f.mu.Lock()
	f.sticky = on
	f.mu.Unlock()
}

// Clear disarms all faults, including a disk-full condition.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.arm = make(map[FaultOp][]*fault)
	f.nospace = false
	f.mu.Unlock()
}

// Hits reports how many times faults of class op have fired.
func (f *FaultFS) Hits(op FaultOp) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[op]
}

// check decides whether the next operation of class op on path fails.
// It returns the short-write byte count (< 0 when the whole operation
// must fail) alongside the error.  Only the first fault whose path
// scope matches is considered, so countdowns are not consumed by
// operations outside their scope.
func (f *FaultFS) check(op FaultOp, path string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, fa := range f.arm[op] {
		if fa.path != "" && !strings.Contains(path, fa.path) {
			continue
		}
		if fa.after > 0 {
			fa.after--
			return -1, nil
		}
		f.hits[op]++
		shortN := fa.shortN
		if !f.sticky {
			f.arm[op] = append(f.arm[op][:i], f.arm[op][i+1:]...)
		}
		return shortN, ErrInjected
	}
	return -1, nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if _, err := f.check(FaultCreate, name); err != nil {
		return nil, err
	}
	if _, err := f.chargeWrite(0); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f, name: name}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f, name: name}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if _, err := f.check(FaultRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.  A FaultRename fault matches when either the
// old or the new name contains the fault's path substring.
func (f *FaultFS) Rename(o, n string) error {
	if _, err := f.check(FaultRename, o+" -> "+n); err != nil {
		return err
	}
	return f.inner.Rename(o, n)
}

// List implements FS.
func (f *FaultFS) List(dir string) ([]string, error) { return f.inner.List(dir) }

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// Exists implements FS.
func (f *FaultFS) Exists(name string) bool { return f.inner.Exists(name) }

type faultFile struct {
	inner File
	fs    *FaultFS
	name  string
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if _, err := f.fs.check(FaultRead, f.name); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if allowed, err := f.fs.chargeWrite(len(p)); err != nil {
		if allowed > 0 {
			if n, werr := f.inner.WriteAt(p[:allowed], off); werr != nil {
				return n, werr
			}
		}
		return allowed, err
	}
	shortN, err := f.fs.check(FaultWrite, f.name)
	if err != nil {
		if shortN > 0 {
			if shortN > len(p) {
				shortN = len(p)
			}
			n, werr := f.inner.WriteAt(p[:shortN], off)
			if werr != nil {
				n = 0
			}
			return n, err
		}
		return 0, err
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if allowed, err := f.fs.chargeWrite(len(p)); err != nil {
		if allowed > 0 {
			if n, werr := f.inner.Write(p[:allowed]); werr != nil {
				return n, werr
			}
		}
		return allowed, err
	}
	shortN, err := f.fs.check(FaultWrite, f.name)
	if err != nil {
		if shortN > 0 {
			if shortN > len(p) {
				shortN = len(p)
			}
			n, werr := f.inner.Write(p[:shortN])
			if werr != nil {
				n = 0
			}
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if _, err := f.fs.check(FaultSync, f.name); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if _, err := f.fs.check(FaultClose, f.name); err != nil {
		return err
	}
	return f.inner.Close()
}

func (f *faultFile) Size() (int64, error)   { return f.inner.Size() }
func (f *faultFile) Truncate(n int64) error { return f.inner.Truncate(n) }
