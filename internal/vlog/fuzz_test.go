package vlog

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzVLogDecode feeds arbitrary bytes to the record decoder: it must
// never panic or over-read, a successful decode must re-encode to the
// exact consumed bytes (the CRC leaves no slack for malformed framing
// that happens to parse), and every failure is one of the two typed
// sentinels.
func FuzzVLogDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("key"), []byte("value")))
	f.Add(AppendRecord(AppendRecord(nil, []byte("a"), nil), []byte("b"), bytes.Repeat([]byte("v"), 300)))
	torn := AppendRecord(nil, []byte("torn"), bytes.Repeat([]byte("x"), 50))
	f.Add(torn[:len(torn)-7])
	flipped := AppendRecord(nil, []byte("flip"), []byte("bit"))
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	// Implausible uvarint lengths after a CRC prefix.
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		key, val, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrBad) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !bytes.Equal(AppendRecord(nil, key, val), data[:n]) {
			t.Fatal("re-encoding a decoded record changed its bytes")
		}
		// Decoding what we re-encode must agree (the decoder is a
		// partial inverse of the encoder on its accepted set).
		k2, v2, n2, err2 := DecodeRecord(data[:n])
		if err2 != nil || n2 != n || !bytes.Equal(k2, key) || !bytes.Equal(v2, val) {
			t.Fatalf("re-decode mismatch: %v", err2)
		}
	})
}
