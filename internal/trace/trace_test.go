package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"iamdb/internal/metrics"
)

// TestSpanLifecycle drives a parent/child pair on a manual clock and
// checks timestamps, parenting, structured arguments and lineage all
// land in the snapshot.
func TestSpanLifecycle(t *testing.T) {
	mc := new(metrics.ManualClock)
	r := NewRecorder(8, mc)

	sp := r.Begin("merge")
	sp.SetLevel(2)
	sp.SetBytes(4096)
	sp.AddIn(7)
	sp.AddIn(8)
	mc.Advance(time.Millisecond)

	child := sp.Child("merge.write")
	child.SetCount(3)
	mc.Advance(2 * time.Millisecond)
	child.End()

	sp.AddOut(9)
	mc.Advance(time.Millisecond)
	sp.End()

	spans := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Recorded at End: the child finishes first.
	c, p := spans[0], spans[1]
	if c.Name != "merge.write" || p.Name != "merge" {
		t.Fatalf("span order/names wrong: %q then %q", c.Name, p.Name)
	}
	if c.Parent != p.ID {
		t.Errorf("child parent = %d, want %d", c.Parent, p.ID)
	}
	if p.Parent != 0 {
		t.Errorf("root span parent = %d, want 0", p.Parent)
	}
	if p.Start != 0 || p.End != 4*time.Millisecond {
		t.Errorf("parent window = [%v, %v], want [0, 4ms]", p.Start, p.End)
	}
	if c.Start != time.Millisecond || c.End != 3*time.Millisecond {
		t.Errorf("child window = [%v, %v], want [1ms, 3ms]", c.Start, c.End)
	}
	if p.Level != 2 || p.Bytes != 4096 {
		t.Errorf("parent args level=%d bytes=%d", p.Level, p.Bytes)
	}
	if c.Level != -1 {
		t.Errorf("child level = %d, want -1 (unset)", c.Level)
	}
	if c.Count != 3 {
		t.Errorf("child count = %d, want 3", c.Count)
	}
	if len(p.In) != 2 || p.In[0] != 7 || p.In[1] != 8 {
		t.Errorf("parent in = %v, want [7 8]", p.In)
	}
	if len(p.Out) != 1 || p.Out[0] != 9 {
		t.Errorf("parent out = %v, want [9]", p.Out)
	}
}

// TestBeginAt pins cross-structure parenting: a span opened under an
// explicit parent ID records that ID, and parent 0 means root.
func TestBeginAt(t *testing.T) {
	r := NewRecorder(4, nil)
	root := r.Begin("cascade")
	leaf := r.BeginAt("cascade.flush", root.ID())
	leaf.End()
	root.End()
	spans := r.Snapshot()
	if spans[0].Parent != root.ID() {
		t.Errorf("BeginAt parent = %d, want %d", spans[0].Parent, root.ID())
	}
	free := r.BeginAt("orphan", 0)
	free.End()
	spans = r.Snapshot()
	if last := spans[len(spans)-1]; last.Parent != 0 {
		t.Errorf("parent-0 span recorded parent %d", last.Parent)
	}
}

// TestRingWraparound fills a small ring past capacity and checks the
// oldest spans fall off while Len, Dropped and snapshot order stay
// coherent.
func TestRingWraparound(t *testing.T) {
	r := NewRecorder(4, nil)
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i, n := range names {
		sp := r.Begin(n)
		sp.SetCount(int64(i))
		sp.End()
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	spans := r.Snapshot()
	want := []string{"d", "e", "f", "g"}
	for i, w := range want {
		if spans[i].Name != w {
			t.Errorf("snapshot[%d] = %q, want %q", i, spans[i].Name, w)
		}
	}
	// IDs stay monotonic across the wrap.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Errorf("IDs not monotonic: %d then %d", spans[i-1].ID, spans[i].ID)
		}
	}
}

// TestSnapshotPartialRing covers the not-yet-full ring: Len, zero
// Dropped, and snapshot length match the recorded count.
func TestSnapshotPartialRing(t *testing.T) {
	r := NewRecorder(16, nil)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty recorder snapshot has %d spans", len(got))
	}
	for i := 0; i < 3; i++ {
		sp := r.Begin("x")
		sp.End()
	}
	if got := r.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("Dropped = %d, want 0", got)
	}
	if got := r.Snapshot(); len(got) != 3 {
		t.Errorf("snapshot has %d spans, want 3", len(got))
	}
}

// TestUnendedSpanAbsent pins the record-at-End contract: a span still
// open (or abandoned on an error path) never appears in exports.
func TestUnendedSpanAbsent(t *testing.T) {
	r := NewRecorder(8, nil)
	open := r.Begin("never-ended")
	_ = open
	done := r.Begin("done")
	done.End()
	spans := r.Snapshot()
	if len(spans) != 1 || spans[0].Name != "done" {
		t.Fatalf("snapshot = %+v, want just the ended span", spans)
	}
}

// TestWriteJSONLines pins the JSONL wire form byte-for-byte: elided
// zero fields, level present only when set, lineage arrays.
func TestWriteJSONLines(t *testing.T) {
	mc := new(metrics.ManualClock)
	r := NewRecorder(8, mc)
	sp := r.Begin("compact")
	sp.SetLevel(1)
	sp.SetBytes(2048)
	sp.AddIn(3)
	sp.AddOut(5)
	mc.Advance(1500 * time.Nanosecond)
	sp.End()
	plain := r.Begin("get")
	plain.End()

	var b strings.Builder
	if err := r.WriteJSONLines(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"id":1,"name":"compact","start_ns":0,"dur_ns":1500,"level":1,"bytes":2048,"in":[3],"out":[5]}
{"id":2,"name":"get","start_ns":1500,"dur_ns":0}
`
	if b.String() != want {
		t.Errorf("JSONL mismatch:\ngot:  %s\nwant: %s", b.String(), want)
	}
}

// TestWriteChromeTrace pins the Chrome trace-event form: complete X
// events, microsecond timestamps, per-level track assignment.
func TestWriteChromeTrace(t *testing.T) {
	mc := new(metrics.ManualClock)
	r := NewRecorder(8, mc)
	sp := r.Begin("merge")
	sp.SetLevel(2)
	mc.Advance(3 * time.Microsecond)
	sp.End()
	other := r.Begin("stall")
	other.End()

	var b strings.Builder
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	want := `[
{"name":"merge","cat":"iamdb","ph":"X","ts":0,"dur":3,"pid":1,"tid":4,"args":{"id":1,"level":2}},
{"name":"stall","cat":"iamdb","ph":"X","ts":3,"dur":0,"pid":1,"tid":1,"args":{"id":2}}
]
`
	if b.String() != want {
		t.Errorf("chrome trace mismatch:\ngot:  %s\nwant: %s", b.String(), want)
	}
}

// TestNilRecorder proves the whole disabled surface is nil-safe and the
// inert Ctx reports itself as such.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	sp := r.Begin("noop")
	if sp.Recording() || sp.ID() != 0 {
		t.Error("nil recorder Begin returned a live Ctx")
	}
	child := sp.Child("noop.child")
	sp.SetLevel(1)
	sp.SetBytes(1)
	sp.SetCount(1)
	sp.AddIn(1)
	sp.AddOut(1)
	child.End()
	sp.End()
	if r.Snapshot() != nil || r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder holds state")
	}
	var b strings.Builder
	if err := r.WriteJSONLines(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil recorder JSONL: err=%v out=%q", err, b.String())
	}
}

// TestDisabledPathZeroAlloc is the zero-cost gate for the nil
// recorder: the full span lifecycle — begin, child, every setter,
// lineage appends, end — must not allocate.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		sp := r.Begin("op")
		child := sp.Child("op.step")
		child.SetBytes(1)
		child.End()
		sp.SetLevel(3)
		sp.SetCount(7)
		sp.AddIn(1)
		sp.AddOut(2)
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled trace path allocates %.1f per op, want 0", n)
	}
}

// TestDefaults: capacity ≤ 0 falls back to 4096 slots, a nil clock to
// NopClock (zero timestamps rather than garbage).
func TestDefaults(t *testing.T) {
	r := NewRecorder(0, nil)
	if len(r.ring) != 4096 {
		t.Errorf("default capacity = %d, want 4096", len(r.ring))
	}
	sp := r.Begin("x")
	sp.End()
	if got := r.Snapshot()[0]; got.Start != 0 || got.End != 0 {
		t.Errorf("nop clock span = [%v, %v], want zeros", got.Start, got.End)
	}
}

// TestConcurrentRecording hammers one recorder from many goroutines —
// meaningful under -race — and checks the accounting stays exact.
func TestConcurrentRecording(t *testing.T) {
	const workers, perWorker = 8, 200
	r := NewRecorder(64, new(metrics.ManualClock))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := r.Begin("op")
				sp.SetCount(int64(i))
				child := sp.Child("op.step")
				child.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != 64 {
		t.Errorf("Len = %d, want full ring 64", got)
	}
	total := uint64(workers * perWorker * 2)
	if got := r.Dropped(); got != total-64 {
		t.Errorf("Dropped = %d, want %d", got, total-64)
	}
	for _, sp := range r.Snapshot() {
		if sp.Name != "op" && sp.Name != "op.step" {
			t.Errorf("unexpected span %q", sp.Name)
		}
	}
}
