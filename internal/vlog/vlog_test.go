package vlog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"iamdb/internal/corrupt"
	"iamdb/internal/vfs"
)

func openT(t *testing.T, fs vfs.FS, segSize int64) *Log {
	t.Helper()
	l, _, err := Open(fs, "v", segSize)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendReadRoundtrip(t *testing.T) {
	fs := vfs.NewMemFS()
	l := openT(t, fs, 1<<20)
	defer l.Close()
	type rec struct {
		key, val []byte
		p        Pointer
	}
	var recs []rec
	for i := 0; i < 100; i++ {
		k := fmt.Appendf(nil, "key-%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, 10+i*7)
		p, err := l.Append(k, v)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{k, v, p})
	}
	for _, r := range recs {
		got, err := l.Read(r.p, r.key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, r.val) {
			t.Fatalf("value mismatch for %q", r.key)
		}
	}
	// A pointer resolved under the wrong key is a typed corruption, not
	// wrong bytes.
	if _, err := l.Read(recs[3].p, []byte("imposter")); !isCorrupt(err) {
		t.Fatalf("wrong-key read: %v", err)
	}
}

// isCorrupt reports whether err carries vlog corruption provenance.
func isCorrupt(err error) bool {
	var ce *corrupt.Error
	return errors.As(err, &ce) && errors.Is(err, ErrBad)
}

func TestRotationAndPickGC(t *testing.T) {
	fs := vfs.NewMemFS()
	l := openT(t, fs, 512) // tiny segments force rotation
	defer l.Close()
	val := bytes.Repeat([]byte("v"), 100)
	var ptrs []Pointer
	for i := 0; i < 30; i++ {
		p, err := l.Append(fmt.Appendf(nil, "k%02d", i), val)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got segments %v", segs)
	}
	// No discards yet: nothing is GC-worthy.
	if _, ok := l.PickGC(0.5); ok {
		t.Fatal("PickGC with no discards should find nothing")
	}
	// Credit most of segment 1's bytes as dropped; it becomes the pick.
	first := segs[0]
	l.NoteDiscard(first, l.Stats().Bytes) // over-credit is fine for the ratio
	seg, ok := l.PickGC(0.5)
	if !ok || seg != first {
		t.Fatalf("PickGC = %d,%v want %d,true", seg, ok, first)
	}
	// A bad mark fences the segment from GC.
	l.MarkBad(first)
	if _, ok := l.PickGC(0.5); ok {
		t.Fatal("PickGC should skip segments marked bad")
	}
	// The head is never a candidate even with huge discard credit.
	l.NoteDiscard(l.Head(), 1<<40)
	if seg, ok := l.PickGC(0.5); ok && seg == l.Head() {
		t.Fatal("PickGC chose the head segment")
	}
	// Old records still resolve across rotation.
	if _, err := l.Read(ptrs[0], []byte("k00")); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSegmentRefusesHead(t *testing.T) {
	fs := vfs.NewMemFS()
	l := openT(t, fs, 256)
	defer l.Close()
	val := bytes.Repeat([]byte("v"), 64)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte("k"), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.RemoveSegment(l.Head()); err == nil {
		t.Fatal("RemoveSegment(head) should refuse")
	}
	segs := l.Segments()
	if err := l.RemoveSegment(segs[0]); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); len(got) != len(segs)-1 || got[0] == segs[0] {
		t.Fatalf("segments after removal: %v", got)
	}
	if fs.Exists(SegmentName("v", segs[0])) {
		t.Fatal("removed segment still on disk")
	}
}

func TestReopenContinuesAppends(t *testing.T) {
	fs := vfs.NewMemFS()
	l := openT(t, fs, 1<<20)
	p1, err := l.Append([]byte("a"), []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, st, err := Open(fs, "v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st.SuspectBytes != 0 {
		t.Fatalf("clean reopen found %d suspect bytes", st.SuspectBytes)
	}
	p2, err := l2.Append([]byte("b"), []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Segment != p1.Segment || p2.Offset <= p1.Offset {
		t.Fatalf("reopened append did not continue: %+v then %+v", p1, p2)
	}
	for _, c := range []struct {
		p   Pointer
		key string
		val string
	}{{p1, "a", "first"}, {p2, "b", "second"}} {
		got, err := l2.Read(c.p, []byte(c.key))
		if err != nil || string(got) != c.val {
			t.Fatalf("Read(%q) = %q, %v", c.key, got, err)
		}
	}
}

func TestOpenReportsTornTail(t *testing.T) {
	fs := vfs.NewMemFS()
	l := openT(t, fs, 1<<20)
	if _, err := l.Append([]byte("whole"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	p, err := l.Append([]byte("torn"), bytes.Repeat([]byte("x"), 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-way, as a crash between append and sync
	// could leave it.
	name := SegmentName("v", p.Segment)
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(p.Offset + int64(p.Len)/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, st, err := Open(fs, "v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st.SuspectBytes != int64(p.Len)/2 || st.SuspectOffset != p.Offset {
		t.Fatalf("suspect = %d@%d, want %d@%d",
			st.SuspectBytes, st.SuspectOffset, p.Len/2, p.Offset)
	}
	// The intact record still resolves; the torn one fails typed.
	if _, err := l2.Read(Pointer{Segment: p.Segment, Offset: int64(HeaderSize),
		Len: uint32(RecordLen([]byte("whole"), []byte("value")))}, []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Read(p, []byte("torn")); !isCorrupt(err) {
		t.Fatalf("read into torn tail: %v", err)
	}
	// New appends go after the suspect region.
	p3, err := l2.Append([]byte("after"), []byte("tail"))
	if err != nil {
		t.Fatal(err)
	}
	if p3.Offset < p.Offset+int64(p.Len)/2 {
		t.Fatalf("append overwrote the suspect region at %d", p3.Offset)
	}
}

func TestReadDetectsFlippedByte(t *testing.T) {
	fs := vfs.NewMemFS()
	l := openT(t, fs, 1<<20)
	defer l.Close()
	p, err := l.Append([]byte("key"), bytes.Repeat([]byte("v"), 50))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(SegmentName("v", p.Segment))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one value byte in place.
	one := []byte{0}
	if _, err := f.ReadAt(one, p.Offset+int64(p.Len)-1); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0xff
	if _, err := f.WriteAt(one, p.Offset+int64(p.Len)-1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := l.Read(p, []byte("key")); !isCorrupt(err) {
		t.Fatalf("flipped byte not detected: %v", err)
	}
}

func TestScanFileCountsRecords(t *testing.T) {
	fs := vfs.NewMemFS()
	l := openT(t, fs, 1<<20)
	want := 17
	for i := 0; i < want; i++ {
		if _, err := l.Append(fmt.Appendf(nil, "k%d", i), []byte("val")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got int
	scanned, err := ScanFile(fs, SegmentName("v", 1), func(key, val []byte, off int64, n int) error {
		got++
		return nil
	})
	if err != nil || got != want {
		t.Fatalf("scan: %d records, %v", got, err)
	}
	f, _ := fs.Open(SegmentName("v", 1))
	size, _ := f.Size()
	f.Close()
	if scanned != size {
		t.Fatalf("scanned %d of %d bytes", scanned, size)
	}
}

func TestPointerRoundtrip(t *testing.T) {
	p := Pointer{Segment: 7, Offset: 123456789, Len: 4242}
	enc := p.Encode()
	if len(enc) != PointerLen {
		t.Fatalf("encoded length %d", len(enc))
	}
	got, ok := DecodePointer(enc)
	if !ok || got != p {
		t.Fatalf("roundtrip: %+v, %v", got, ok)
	}
	if _, ok := DecodePointer(enc[:PointerLen-1]); ok {
		t.Fatal("short pointer decoded")
	}
}
