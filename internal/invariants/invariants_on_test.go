//go:build invariants

package invariants

import (
	"strings"
	"testing"
)

func TestEnabledOn(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under -tags invariants")
	}
}

func TestAssertFires(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assert(false) did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "refs went negative") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	if Enabled {
		Assert(false, "refs went negative")
	}
}

func TestAssertfFires(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assertf(false) did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "keys out of order at 7") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	if Enabled {
		Assertf(false, "keys out of order at %d", 7)
	}
}

func TestAssertPassesQuietly(t *testing.T) {
	if Enabled {
		Assert(true, "should not fire")
		Assertf(true, "should not fire: %d", 1)
	}
}
