package iamdb

import (
	"fmt"
	"strings"
	"time"

	"iamdb/internal/engine"
	"iamdb/internal/histogram"
	"iamdb/internal/metrics"
	"iamdb/internal/vfs"
)

// wallClock is the default Clock: real monotonic time since Open.
// It lives in the public package, outside the iamlint determinism
// scope, so the internal packages never read the wall clock directly.
type wallClock struct {
	base time.Time
}

func newWallClock() wallClock { return wallClock{base: time.Now()} }

// Now implements Clock.
func (c wallClock) Now() time.Duration { return time.Since(c.base) }

// Metrics is a unified snapshot of the DB's observable state: per-level
// structure and traffic, memtable/WAL/cache state, device IO, write
// stalls, and operation latency histograms.
type Metrics struct {
	// Engine holds per-level traffic and operation counts.
	Engine engine.StatsSnapshot
	// Levels summarizes the current tree shape.
	Levels []engine.LevelInfo
	// SpaceUsed is the on-disk footprint in bytes (excluding WAL).
	SpaceUsed int64
	// UserBytes is the total key+value bytes written by the user.
	UserBytes int64
	// CacheHitRate is the block-cache hit fraction since open.
	CacheHitRate float64

	// MemtableBytes is the approximate size of the mutable memtable.
	MemtableBytes int64
	// ImmutableMemtables counts memtables waiting to flush (0 or 1).
	ImmutableMemtables int
	// WALNum is the current write-ahead log file number.
	WALNum uint64
	// WALBytes is the total bytes appended to all WAL files since
	// open, including record headers and block padding.
	WALBytes int64
	// WALRotations counts WAL file rotations since open.
	WALRotations int64

	// IO is the device traffic since open (data files, manifest, and
	// WAL together).
	IO vfs.IOSnapshot

	// StallCount counts write stalls imposed on the commit path, and
	// StallTime is their cumulative duration.
	StallCount int64
	StallTime  time.Duration

	// CorruptionsDetected counts typed corruption detections (read
	// path, open-time suspicion, scrub); TablesQuarantined counts
	// tables fenced off as a consequence.  ScrubBlocks totals data
	// blocks verified by Scrub passes, and NoSpaceErrors counts
	// operations failed by a full disk (see DESIGN.md "Latent-fault
	// model").
	CorruptionsDetected int64
	TablesQuarantined   int64
	ScrubBlocks         int64
	NoSpaceErrors       int64

	// Value-log state (all zero when key-value separation is off):
	// VLogSegments/VLogBytes describe the current log, VLogDiscardBytes
	// the dead fraction GC reclaims, VLogAppends/VLogResolves the
	// separation traffic, and VLogGCSegments the segments collected
	// since open.  VLogBytes is included in SpaceUsed.
	VLogSegments     int
	VLogBytes        int64
	VLogDiscardBytes int64
	VLogAppends      int64
	VLogResolves     int64
	VLogGCSegments   int64

	// CommitGroups counts leader-led group commits (one WAL record,
	// one sync each), and CommitBatches the batches committed through
	// them; their ratio is the mean group size.
	CommitGroups  int64
	CommitBatches int64
	// CommitWait is the cumulative time writers spent queued behind a
	// commit leader (populated when a clock or listener is attached).
	CommitWait time.Duration
	// GroupSize digests batches-per-group: the histogram records one
	// observation per group on an integer scale where 1ns = 1 batch.
	GroupSize histogram.Summary

	// Put, Get and Scan are operation latency digests (put covers the
	// whole batch commit, stall time included; scan covers iterator
	// positioning).
	Put  histogram.Summary
	Get  histogram.Summary
	Scan histogram.Summary
}

// WriteAmplification is total compaction writes over user writes,
// excluding the WAL, as the paper computes it (Sec. 6.2).
func (m Metrics) WriteAmplification() float64 {
	if m.UserBytes == 0 {
		return 0
	}
	return float64(m.Engine.TotalFlushBytes()) / float64(m.UserBytes)
}

// MeanCommitGroupSize is the average number of batches a commit leader
// coalesced into one WAL record.
func (m Metrics) MeanCommitGroupSize() float64 {
	if m.CommitGroups == 0 {
		return 0
	}
	return float64(m.CommitBatches) / float64(m.CommitGroups)
}

// Metrics returns a snapshot of the DB's statistics.  A sharded DB
// reports the aggregate across shards (device IO counted once through
// the shared filesystem counters); ShardMetrics exposes the per-shard
// views.
func (db *DB) Metrics() Metrics {
	if ss := db.shards; ss != nil {
		return ss.metrics(db)
	}
	st := db.state.Load()
	memBytes := st.mem.ApproximateSize()
	imm := 0
	if st.imm != nil {
		imm = 1
	}
	db.mu.Lock()
	walNum := db.walNum
	walBytes := db.walRetired
	if db.walW != nil {
		walBytes += db.walW.Offset()
	}
	db.mu.Unlock()
	rate, _, _ := db.cache.HitRate()
	space := db.eng.SpaceUsed()
	var vstats vlogStats
	if db.vl != nil {
		vs := db.vl.Stats()
		vstats = vlogStats{
			segments: vs.Segments, bytes: vs.Bytes, discard: vs.DiscardBytes,
		}
		space += db.vl.SpaceUsed()
	}
	return Metrics{
		Engine:              db.eng.Stats(),
		Levels:              db.eng.Levels(),
		SpaceUsed:           space,
		VLogSegments:        vstats.segments,
		VLogBytes:           vstats.bytes,
		VLogDiscardBytes:    vstats.discard,
		VLogAppends:         db.vlogAppendsC.Load(),
		VLogResolves:        db.vlogResolvesC.Load(),
		VLogGCSegments:      db.vlogGCSegments.Load(),
		UserBytes:           db.userBytes.Load(),
		CacheHitRate:        rate,
		MemtableBytes:       memBytes,
		ImmutableMemtables:  imm,
		WALNum:              walNum,
		WALBytes:            walBytes,
		WALRotations:        db.walRotations.Load(),
		IO:                  db.io.Snapshot(),
		StallCount:          db.stallCount.Load(),
		StallTime:           time.Duration(db.stallNanos.Load()),
		CorruptionsDetected: db.corrDetected.Load(),
		TablesQuarantined:   db.corrQuarantined.Load(),
		ScrubBlocks:         db.scrubBlocksC.Load(),
		NoSpaceErrors:       db.bgNoSpace.Load(),
		CommitGroups:        db.commitGroups.Load(),
		CommitBatches:       db.commitBatches.Load(),
		CommitWait:          time.Duration(db.commitWait.Load()),
		GroupSize:           db.groupSize.Summary(),
		Put:                 db.putHist.Summary(),
		Get:                 db.getHist.Summary(),
		Scan:                db.scanHist.Summary(),
	}
}

// SampleCumulative gathers the monotone counters a Sampler diffs into
// timeline windows: operation and stall totals, device and per-level
// traffic, cache lookups, commit pipeline counts and the put-latency
// histogram.  It holds no DB locks beyond the engine's own stats lock.
func (db *DB) SampleCumulative() metrics.Cumulative {
	if ss := db.shards; ss != nil {
		return ss.sampleCumulative(db)
	}
	st := db.eng.Stats()
	w := make([]int64, len(st.PerLevel))
	r := make([]int64, len(st.PerLevel))
	for i, ls := range st.PerLevel {
		w[i] = ls.WriteBytes
		r[i] = ls.ReadBytes
	}
	_, hits, misses := db.cache.HitRate()
	io := db.io.Snapshot()
	return metrics.Cumulative{
		Ops:           db.putOps.Load() + db.getOps.Load(),
		StallNanos:    db.stallNanos.Load(),
		WriteBytes:    io.BytesWritten,
		ReadBytes:     io.BytesRead,
		PerLevelWrite: w,
		PerLevelRead:  r,
		CacheHits:     hits,
		CacheLookups:  hits + misses,
		CommitGroups:  db.commitGroups.Load(),
		CommitBatches: db.commitBatches.Load(),
		Put:           db.putHist.Snapshot(),
	}
}

// NewSampler attaches a timeline sampler: windowed deltas of the DB's
// cumulative counters (ops/sec, stall fraction, per-level write/read
// bytes, cache hit rate, commit group size, put latency) kept in a
// bounded ring that folds pairwise — doubling the window — when full.
// window ≤ 0 means one second; capacity ≤ 0 means 128 points.  The
// sampler is pull-based: call Poll from the workload loop (one atomic
// load when no window boundary passed) or Timeline, which polls first.
// A later call replaces the sampler Timeline reads.
func (db *DB) NewSampler(window time.Duration, capacity int) *Sampler {
	s := metrics.NewSampler(db.clock, window, capacity, db.SampleCumulative)
	db.samplerA.Store(s)
	return s
}

// Timeline polls the attached sampler and returns its closed windows,
// oldest first; nil when no sampler is attached (see NewSampler).
func (db *DB) Timeline() []TimelinePoint {
	s := db.samplerA.Load()
	if s == nil {
		return nil
	}
	s.Poll()
	return s.Points()
}

// Trace returns the recorder passed in Options.Trace, or nil when
// tracing is disabled.
func (db *DB) Trace() *TraceRecorder { return db.tr }

func mb(n int64) float64 { return float64(n) / (1 << 20) }

// vlogStats is the snapshot scratch Metrics uses so the struct literal
// stays flat.
type vlogStats struct {
	segments int
	bytes    int64
	discard  int64
}

// String renders the snapshot as a LevelDB-`leveldb.stats`-style
// report: one row per level plus totals and summary lines.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Level | Files  Seqs  Size(MB) | Write(MB)  Read(MB) | Appends  Merges  Moves  Splits  Combines\n")
	fmt.Fprintf(&b, "------+------------------------+----------------------+-----------------------------------------\n")

	// Rows span the union of the shape (Levels) and traffic (PerLevel)
	// views: a drained level keeps its traffic history.
	rows := len(m.Engine.PerLevel)
	byLevel := make(map[int]engine.LevelInfo, len(m.Levels))
	for _, li := range m.Levels {
		byLevel[li.Level] = li
		if li.Level+1 > rows {
			rows = li.Level + 1
		}
	}
	var totInfo engine.LevelInfo
	var totStats engine.LevelStats
	for lvl := 0; lvl < rows; lvl++ {
		info := byLevel[lvl]
		var ls engine.LevelStats
		if lvl < len(m.Engine.PerLevel) {
			ls = m.Engine.PerLevel[lvl]
		}
		if info.Nodes == 0 && info.Bytes == 0 && ls == (engine.LevelStats{}) {
			continue
		}
		fmt.Fprintf(&b, "%5d | %5d %5d %9.1f | %9.1f %9.1f | %7d %7d %6d %7d %9d\n",
			lvl, info.Nodes, info.Seqs, mb(info.Bytes),
			mb(ls.WriteBytes), mb(ls.ReadBytes),
			ls.Appends, ls.Merges, ls.Moves, ls.Splits, ls.Combines)
		totInfo.Nodes += info.Nodes
		totInfo.Seqs += info.Seqs
		totInfo.Bytes += info.Bytes
		totStats.WriteBytes += ls.WriteBytes
		totStats.ReadBytes += ls.ReadBytes
		totStats.Appends += ls.Appends
		totStats.Merges += ls.Merges
		totStats.Moves += ls.Moves
		totStats.Splits += ls.Splits
		totStats.Combines += ls.Combines
	}
	fmt.Fprintf(&b, "total | %5d %5d %9.1f | %9.1f %9.1f | %7d %7d %6d %7d %9d\n",
		totInfo.Nodes, totInfo.Seqs, mb(totInfo.Bytes),
		mb(totStats.WriteBytes), mb(totStats.ReadBytes),
		totStats.Appends, totStats.Merges, totStats.Moves, totStats.Splits, totStats.Combines)

	fmt.Fprintf(&b, "Flushes: %d  UserWrite(MB): %.1f  WriteAmp: %.2f  SpaceUsed(MB): %.1f\n",
		m.Engine.Flushes, mb(m.UserBytes), m.WriteAmplification(), mb(m.SpaceUsed))
	fmt.Fprintf(&b, "Memtable: %.1f MB (+%d immutable)  WAL: file %06d, %.1f MB written, %d rotations\n",
		mb(m.MemtableBytes), m.ImmutableMemtables, m.WALNum, mb(m.WALBytes), m.WALRotations)
	fmt.Fprintf(&b, "Block cache hit rate: %.1f%%\n", 100*m.CacheHitRate)
	fmt.Fprintf(&b, "Write stalls: %d, total %v\n", m.StallCount, m.StallTime)
	// Value-log line only with separation active, so inline runs keep
	// their familiar (and golden-tested) report shape.
	if m.VLogSegments != 0 || m.VLogAppends != 0 || m.VLogGCSegments != 0 {
		fmt.Fprintf(&b, "Value log: %d segments, %.1f MB (%.1f MB dead), %d appends, %d resolves, %d segments GC'd\n",
			m.VLogSegments, mb(m.VLogBytes), mb(m.VLogDiscardBytes),
			m.VLogAppends, m.VLogResolves, m.VLogGCSegments)
	}
	// Latent-fault line only when something happened, so healthy runs
	// keep their familiar (and golden-tested) report shape.
	if m.CorruptionsDetected != 0 || m.TablesQuarantined != 0 || m.ScrubBlocks != 0 || m.NoSpaceErrors != 0 {
		fmt.Fprintf(&b, "Faults: %d corruptions detected, %d tables quarantined, %d blocks scrubbed, %d no-space errors\n",
			m.CorruptionsDetected, m.TablesQuarantined, m.ScrubBlocks, m.NoSpaceErrors)
	}
	fmt.Fprintf(&b, "Commit pipeline: %d groups, %d batches (mean group %.2f), queue wait %v\n",
		m.CommitGroups, m.CommitBatches, m.MeanCommitGroupSize(), m.CommitWait)
	fmt.Fprintf(&b, "Device IO: %.1f MB written (%d ops), %.1f MB read (%d ops), %d seeks\n",
		mb(m.IO.BytesWritten), m.IO.WriteOps, mb(m.IO.BytesRead), m.IO.ReadOps, m.IO.Seeks)
	for _, h := range []struct {
		name string
		s    histogram.Summary
	}{{"put", m.Put}, {"get", m.Get}, {"scan", m.Scan}} {
		fmt.Fprintf(&b, "Latency %-4s n=%d  mean=%v  p50=%v  p99=%v  p99.9=%v  max=%v\n",
			h.name, h.s.Count, h.s.Mean, h.s.P50, h.s.P99, h.s.P999, h.s.Max)
	}
	return b.String()
}
