// Package engine defines the contract between the public DB layer and
// the storage engines (the LSM baselines in internal/lsm and the
// LSA/IAM trees in internal/core), plus helpers both sides share:
// write-amplification statistics and the MVCC record filter applied
// during merges.
package engine

import (
	"fmt"
	"sync"

	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/table"
)

// Engine is a storage tree: it accepts flushed memtables, performs its
// own compaction, and serves reads.
type Engine interface {
	// Flush writes one immutable memtable (as an internal-key ordered
	// iterator) into the tree, performing whatever compaction cascade
	// the tree's policy requires.
	Flush(it iterator.Iterator) error
	// NeedsWork reports whether background compaction is pending
	// (LSM baselines; the trees compact inside Flush).
	NeedsWork() bool
	// WorkStep performs one unit of background compaction, reporting
	// whether it did anything.
	WorkStep() (bool, error)
	// StallLevel reports write-throttle state: 0 none, 1 slowdown,
	// 2 stop.  The DB layer translates this into write delays.
	StallLevel() int
	// Get finds the newest version of ukey visible at snapshot snap.
	Get(ukey []byte, snap kv.Seq) (val []byte, kind kv.Kind, seq kv.Seq, found bool, err error)
	// NewIter returns a merged iterator over all on-disk data.
	NewIter() iterator.Iterator
	// SetHorizon tells the engine the oldest snapshot still active, so
	// merges know which record versions remain reachable.
	SetHorizon(h kv.Seq)
	// Stats returns cumulative compaction statistics.
	Stats() StatsSnapshot
	// Levels summarizes the current tree shape.
	Levels() []LevelInfo
	// SpaceUsed reports on-disk bytes (data + metadata, holes free).
	SpaceUsed() int64
	// Close releases all resources.  The tree must be reopenable from
	// its manifest afterwards.
	Close() error
}

// LevelInfo summarizes one level for reporting.
type LevelInfo struct {
	Level int
	Nodes int
	Bytes int64 // data bytes stored
	Seqs  int   // total sorted sequences across nodes
	// Quarantined counts nodes fenced off after detected corruption
	// (still readable, never chosen as compaction input).
	Quarantined int
}

func (l LevelInfo) String() string {
	s := fmt.Sprintf("L%d: %d nodes, %d seqs, %.1f MiB",
		l.Level, l.Nodes, l.Seqs, float64(l.Bytes)/(1<<20))
	if l.Quarantined > 0 {
		s += fmt.Sprintf(", %d quarantined", l.Quarantined)
	}
	return s
}

// Stats accumulates compaction-side counters, broken down by level.
// All engines attribute every table write to the level it lands in and
// every compaction read to the level it came from; Table 3 and Table 4
// are ratios of these counters to user bytes.
type Stats struct {
	mu       sync.Mutex
	perLevel []LevelStats
	flushes  int64
}

// LevelStats is the cumulative traffic in and out of one level.
type LevelStats struct {
	// WriteBytes is payload written into this level by
	// flushes/compactions (excluding the user log, as in the paper's
	// Sec. 6.2 accounting).
	WriteBytes int64
	// ReadBytes is payload read from this level as compaction input.
	ReadBytes int64
	Appends   int64 // append operations landing on this level
	Merges    int64 // merge (rewrite) operations landing on this level
	Moves     int64 // metadata-only move-downs landing on this level
	Splits    int64 // node splits at this level
	Combines  int64 // node combines at this level
}

// StatsSnapshot is a copyable view of Stats.
type StatsSnapshot struct {
	// PerLevel[i] is the cumulative traffic for level i.
	PerLevel []LevelStats
	// FlushBytes mirrors PerLevel[i].WriteBytes; older callers
	// consume the per-level write traffic under this name.
	FlushBytes []int64
	Appends    int64 // append operations (total across levels)
	Merges     int64 // merge (rewrite) operations (total)
	Moves      int64 // metadata-only move-downs (total)
	Splits     int64
	Combines   int64
	Flushes    int64 // node flushes (incl. memtable flushes)
}

// grow extends the per-level slice to cover level.  Caller holds mu.
func (st *Stats) grow(level int) {
	for len(st.perLevel) <= level {
		st.perLevel = append(st.perLevel, LevelStats{})
	}
}

// AddFlushBytes attributes written bytes to a destination level.
func (st *Stats) AddFlushBytes(level int, n int64) {
	st.mu.Lock()
	st.grow(level)
	st.perLevel[level].WriteBytes += n
	st.mu.Unlock()
}

// AddReadBytes attributes compaction-input bytes to a source level.
func (st *Stats) AddReadBytes(level int, n int64) {
	st.mu.Lock()
	st.grow(level)
	st.perLevel[level].ReadBytes += n
	st.mu.Unlock()
}

// CountAppend, CountMerge, CountMove, CountSplit and CountCombine
// increment the per-level operation counters; appends, merges and
// moves are attributed to the destination level, splits and combines
// to the level where the node lives.  CountFlush counts one node
// flush (level attribution for flushes is carried by AddFlushBytes).
func (st *Stats) CountAppend(level int) {
	st.mu.Lock()
	st.grow(level)
	st.perLevel[level].Appends++
	st.mu.Unlock()
}

func (st *Stats) CountMerge(level int) {
	st.mu.Lock()
	st.grow(level)
	st.perLevel[level].Merges++
	st.mu.Unlock()
}

func (st *Stats) CountMove(level int) {
	st.mu.Lock()
	st.grow(level)
	st.perLevel[level].Moves++
	st.mu.Unlock()
}

func (st *Stats) CountSplit(level int) {
	st.mu.Lock()
	st.grow(level)
	st.perLevel[level].Splits++
	st.mu.Unlock()
}

func (st *Stats) CountCombine(level int) {
	st.mu.Lock()
	st.grow(level)
	st.perLevel[level].Combines++
	st.mu.Unlock()
}

func (st *Stats) CountFlush() { st.mu.Lock(); st.flushes++; st.mu.Unlock() }

// Snapshot returns a copy of the counters, with the per-level rows
// folded into the legacy totals and FlushBytes mirror.
func (st *Stats) Snapshot() StatsSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := StatsSnapshot{
		PerLevel:   append([]LevelStats(nil), st.perLevel...),
		FlushBytes: make([]int64, len(st.perLevel)),
		Flushes:    st.flushes,
	}
	for i, l := range st.perLevel {
		out.FlushBytes[i] = l.WriteBytes
		out.Appends += l.Appends
		out.Merges += l.Merges
		out.Moves += l.Moves
		out.Splits += l.Splits
		out.Combines += l.Combines
	}
	return out
}

// TotalFlushBytes sums per-level flush bytes.
func (s StatsSnapshot) TotalFlushBytes() int64 {
	var n int64
	for _, b := range s.FlushBytes {
		n += b
	}
	return n
}

// TotalReadBytes sums per-level compaction-read bytes.
func (s StatsSnapshot) TotalReadBytes() int64 {
	var n int64
	for _, l := range s.PerLevel {
		n += l.ReadBytes
	}
	return n
}

// DropObsolete wraps a merge input, applying the MVCC retention rule:
// for each user key keep every version newer than horizon (still
// visible to some snapshot) plus the newest version at or below the
// horizon; drop the rest.  When atBottom is true — the merge output is
// the deepest data for its key range — a tombstone that would be that
// retained newest version is dropped entirely (Sec. 5.2: "In merges,
// the outdated records are removed and the valid records remain").
//
// Appends never pass through this filter; that is precisely why append
// trees carry extra space amplification (Sec. 5.3.3).
func DropObsolete(it iterator.Iterator, horizon kv.Seq, atBottom bool) iterator.Iterator {
	return DropObsoleteObserved(it, horizon, atBottom, nil)
}

// DropObserver is notified of every record the retention rule discards,
// with the record's kind and value (the slices alias merge buffers and
// must not be retained).  The DB layer uses it to credit dropped
// value-log pointers to their segments' discard statistics — the signal
// density GC runs on.
type DropObserver func(kind kv.Kind, val []byte)

// DropObsoleteObserved is DropObsolete with a drop observer; a nil
// onDrop behaves exactly like DropObsolete.
func DropObsoleteObserved(it iterator.Iterator, horizon kv.Seq, atBottom bool, onDrop DropObserver) iterator.Iterator {
	return &dropIter{in: it, horizon: horizon, atBottom: atBottom, onDrop: onDrop}
}

type dropIter struct {
	in       iterator.Iterator
	horizon  kv.Seq
	atBottom bool
	onDrop   DropObserver
	lastUser []byte
	hasLast  bool
	keptLow  bool // emitted the newest version <= horizon for lastUser
}

func (d *dropIter) reset() {
	d.lastUser = d.lastUser[:0]
	d.hasLast = false
	d.keptLow = false
}

// skipDropped advances the inner iterator past records the retention
// rule discards, leaving it on the next record to emit (or invalid).
func (d *dropIter) skipDropped() {
	for d.in.Valid() {
		u, seq, kind, ok := kv.ParseInternalKey(d.in.Key())
		if !ok {
			return // surface the corrupt record to the caller
		}
		newUser := !d.hasLast || kv.CompareUser(u, d.lastUser) != 0
		if newUser {
			d.lastUser = append(d.lastUser[:0], u...)
			d.hasLast = true
			d.keptLow = false
		}
		if seq > d.horizon {
			return // visible to a snapshot: keep
		}
		if !d.keptLow {
			d.keptLow = true
			if kind == kv.KindDelete && d.atBottom {
				d.drop(kind)
				d.in.Next() // tombstone with nothing underneath: drop
				continue
			}
			return
		}
		d.drop(kind)
		d.in.Next() // shadowed version: drop
	}
}

// drop notifies the observer about the record the inner iterator is
// positioned on, which skipDropped is about to discard.
func (d *dropIter) drop(kind kv.Kind) {
	if d.onDrop != nil {
		d.onDrop(kind, d.in.Value())
	}
}

// First implements iterator.Iterator.
func (d *dropIter) First() {
	d.reset()
	d.in.First()
	d.skipDropped()
}

// Seek implements iterator.Iterator.  Seeking mid-stream forgets user
// key context; callers only Seek before consuming, which is safe.
func (d *dropIter) Seek(target []byte) {
	d.reset()
	d.in.Seek(target)
	d.skipDropped()
}

// Next implements iterator.Iterator.
func (d *dropIter) Next() {
	d.in.Next()
	d.skipDropped()
}

// Valid implements iterator.Iterator.
func (d *dropIter) Valid() bool { return d.in.Valid() }

// Key implements iterator.Iterator.
func (d *dropIter) Key() []byte { return d.in.Key() }

// Value implements iterator.Iterator.
func (d *dropIter) Value() []byte { return d.in.Value() }

// Err implements iterator.Iterator.
func (d *dropIter) Err() error { return d.in.Err() }

// Close implements iterator.Iterator.
func (d *dropIter) Close() error { return d.in.Close() }

// TableFileName builds the canonical table file name for a file number.
func TableFileName(dir string, num uint64) string {
	return fmt.Sprintf("%s/%06d.mst", dir, num)
}

// RangeSizer is implemented by engines that can estimate the on-disk
// bytes stored within a user-key range.
type RangeSizer interface {
	ApproximateSize(lo, hi []byte) int64
}

// Resumer is implemented by engines that can re-establish a clean
// durable state after a background I/O error — typically by rewriting
// the manifest from the in-memory tree so that any half-applied edit
// sequence is superseded.  The DB layer calls Resume before retrying
// failed background work.
type Resumer interface {
	Resume() error
}

// Checker is implemented by engines that can validate their own
// structural invariants (level ordering, range containment, manifest
// agreement).  Used by crash-recovery tests as an oracle.
type Checker interface {
	CheckInvariants() error
}

// QuarantineInfo identifies one quarantined table for reporting.
type QuarantineInfo struct {
	Level   int
	FileNum uint64
	Path    string
	Reason  string
}

// Quarantiner is implemented by engines that can fence a corrupt
// table: a quarantined table keeps serving whatever reads still
// succeed, but is never chosen as compaction input — so background
// work neither loops on an unreadable file nor rewrites (and thereby
// discards) a partially-readable one before an operator intervenes.
// The DB layer quarantines on detected corruption and reports via
// metrics and /levels.
type Quarantiner interface {
	// Quarantine fences the table with file number num, reporting
	// whether the mark is new (false when already quarantined or the
	// file is unknown to the engine).
	Quarantine(num uint64, reason string) bool
	// Quarantined lists the currently fenced tables.
	Quarantined() []QuarantineInfo
}

// TableVisitor is implemented by engines that can walk their open
// tables for offline-style verification (DB.Scrub).  fn runs without
// engine locks held where possible; returning an error stops the walk.
type TableVisitor interface {
	VisitTables(fn func(level int, num uint64, t *table.Table) error) error
}
