module iamdb

go 1.22
