// Package corrupt defines the typed corruption error every on-disk
// format layer (block, table, wal, manifest) threads upward, so a
// flipped bit on synced data surfaces with provenance — which file,
// which byte range, which format layer caught it — instead of a bare
// sentinel.  The public API re-exports Error as iamdb.CorruptionError.
//
// Each layer keeps its own sentinel (block.ErrCorrupt, table.ErrCorrupt,
// wal.ErrCorrupt, manifest.ErrCorrupt); an Error wraps the sentinel as
// its cause, so errors.Is against the sentinels keeps working while
// errors.As(*corrupt.Error) recovers the attribution.
package corrupt

import "fmt"

// Format layers that detect corruption, for Error.Layer.
const (
	LayerBlock       = "block"        // prefix-compressed k/v block structure
	LayerTableFooter = "table.footer" // MSTable footer slots
	LayerTableMeta   = "table.meta"   // MSTable metadata region / index blocks
	LayerTableBlock  = "table.block"  // MSTable data block CRC / payload
	LayerWAL         = "wal"          // write-ahead-log fragments
	LayerManifest    = "manifest"     // manifest edit records
	LayerVLog        = "vlog"         // value-log segment header / record CRC
)

// Error describes one detected corruption with provenance.  Got and
// Want carry the stored and recomputed checksums when the detection was
// a CRC mismatch (both zero otherwise).
type Error struct {
	// Path is the file the corruption was found in.
	Path string
	// Offset is the byte offset of the damaged region within Path;
	// -1 when the layer cannot attribute an exact position.
	Offset int64
	// Layer names the format layer that detected the fault (one of the
	// Layer* constants).
	Layer string
	// Got is the checksum stored on disk; Want is the checksum
	// recomputed over the data it claims to cover.
	Got, Want uint32
	// Detail is a short human-readable description of the finding.
	Detail string

	cause error
}

// New builds an Error attributed to layer/path/offset, wrapping cause
// (normally the detecting package's sentinel) for errors.Is.
func New(layer, path string, offset int64, cause error, detail string) *Error {
	return &Error{Layer: layer, Path: path, Offset: offset, Detail: detail, cause: cause}
}

// WithCRC records the stored/recomputed checksum pair on e and returns
// it, for CRC-mismatch detections.
func (e *Error) WithCRC(got, want uint32) *Error {
	e.Got, e.Want = got, want
	return e
}

// Error implements error.
func (e *Error) Error() string {
	s := fmt.Sprintf("corruption in %s layer %s", e.Path, e.Layer)
	if e.Offset >= 0 {
		s += fmt.Sprintf(" @%d", e.Offset)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	if e.Got != 0 || e.Want != 0 {
		s += fmt.Sprintf(" (crc stored %08x, computed %08x)", e.Got, e.Want)
	}
	return s
}

// Unwrap exposes the detecting layer's sentinel to errors.Is.
func (e *Error) Unwrap() error { return e.cause }
