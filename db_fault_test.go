package iamdb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"iamdb/internal/vfs"
)

// These tests inject I/O failures underneath a live DB and check the
// failure contract: background errors surface on the write path, the
// store never serves wrong data, and recovery after the fault heals.

func openFaulty(t *testing.T, e EngineKind) (*DB, *vfs.FaultFS, vfs.FS) {
	t.Helper()
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem)
	db, err := Open("db", smallOpts(e, ffs))
	if err != nil {
		t.Fatal(err)
	}
	return db, ffs, mem
}

func TestWALWriteFailureSurfacesImmediately(t *testing.T) {
	db, ffs, _ := openFaulty(t, IAM)
	defer db.Close()
	if err := db.Put([]byte("ok"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	ffs.FailAfter(vfs.FaultWrite, 0)
	err := db.Put([]byte("fails"), []byte("v"))
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The DB remains usable after a transient WAL failure.
	if err := db.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatalf("post-fault put: %v", err)
	}
	if v, err := db.Get([]byte("after")); err != nil || string(v) != "v" {
		t.Fatalf("post-fault get: %q %v", v, err)
	}
}

func TestCompactionFailureSurfacesOnWrites(t *testing.T) {
	db, ffs, _ := openFaulty(t, IAM)
	defer db.Close()
	// Arm a sticky write fault far enough out to hit a background
	// flush/compaction rather than the WAL append.
	ffs.SetSticky(true)
	ffs.FailAfter(vfs.FaultWrite, 500)
	var sawErr error
	for i := 0; i < 30000 && sawErr == nil; i++ {
		sawErr = db.Put([]byte(fmt.Sprintf("k%07d", i)), make([]byte, 64))
	}
	if sawErr == nil {
		t.Fatal("background failure never surfaced on the write path")
	}
	// Reads that can be served without new I/O still work or fail
	// cleanly; they must never return corrupt data.
	if _, err := db.Get([]byte("k0000001")); err != nil &&
		err != ErrNotFound && !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("get returned unexpected error: %v", err)
	}
}

func TestRecoveryAfterCompactionCrash(t *testing.T) {
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem)
	db, err := Open("db", smallOpts(LSA, ffs))
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]bool{}
	ffs.SetSticky(true)
	armed := false
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("k%07d", i)
		if err := db.Put([]byte(k), []byte("v")); err != nil {
			break // background failure reached the write path
		}
		ref[k] = true
		if i == 5000 && !armed {
			ffs.FailAfter(vfs.FaultWrite, 2000)
			armed = true
		}
	}
	db.Close()

	// "Reboot": clear the faults, reopen from manifest + WAL.
	ffs.Clear()
	ffs.SetSticky(false)
	db2, err := Open("db", smallOpts(LSA, ffs))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	// Every acknowledged write must still be there.  (Writes the WAL
	// accepted before the fault are the contract; unacknowledged ones
	// may or may not survive.)
	missing := 0
	for k := range ref {
		if _, err := db2.Get([]byte(k)); err == ErrNotFound {
			missing++
		} else if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
	}
	if missing > 0 {
		t.Fatalf("%d acknowledged writes lost after recovery", missing)
	}
}

func TestSyncFailureOnManifest(t *testing.T) {
	db, ffs, _ := openFaulty(t, RocksDB)
	defer db.Close()
	ffs.SetSticky(true)
	ffs.FailAfter(vfs.FaultSync, 0)
	// Sync faults hit the manifest appends inside flush; keep writing
	// until the error propagates (or we give up — some paths only
	// sync lazily).
	deadline := time.Now().Add(5 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		if err = db.Put([]byte(fmt.Sprintf("k%d", time.Now().UnixNano())), make([]byte, 256)); err != nil {
			break
		}
	}
	if err != nil && !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("unexpected error type: %v", err)
	}
}
