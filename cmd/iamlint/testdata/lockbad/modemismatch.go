package lockbad

import "sync"

type rwbox struct {
	rw sync.RWMutex
	n  int
}

// readThenWrongUnlock releases a read lock with the write-mode
// Unlock, which corrupts the RWMutex's state.
func (b *rwbox) readThenWrongUnlock() int {
	b.rw.RLock()
	v := b.n
	b.rw.Unlock() // want [lockcheck] mode mismatch
	return v
}

// writeThenWrongDefer defers the read-mode release of a write lock.
func (b *rwbox) writeThenWrongDefer() {
	b.rw.Lock()
	defer b.rw.RUnlock() // want [lockcheck] mode mismatch
	b.n++
}
