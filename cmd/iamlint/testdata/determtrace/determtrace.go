// Package determtrace opts into the determinism scope and records
// structural spans the sanctioned way: through a trace.Recorder driven
// by an injected metrics.Clock.  Span lifecycles, parenting, lineage
// annotations and both exporters must lint clean — the recorder reads
// time only through its clock, so runs replay byte-identically on a
// virtual clock, while the same code stamped with time.Now stays
// rejected (see determbad).
//
//iamlint:deterministic
package determtrace

import (
	"strings"
	"time"

	"iamdb/internal/metrics"
	"iamdb/internal/trace"
)

// record runs a parent/child span pair against a hand-advanced clock —
// the unit-test pattern.
func record() []trace.Span {
	mc := new(metrics.ManualClock)
	r := trace.NewRecorder(8, mc)
	sp := r.Begin("job")
	sp.SetLevel(1)
	sp.AddIn(7)
	mc.Advance(time.Millisecond)
	child := sp.Child("step")
	child.SetBytes(1 << 10)
	mc.Advance(time.Millisecond)
	child.End()
	sp.AddOut(9)
	sp.End()
	return r.Snapshot()
}

// export renders both wire formats; neither touches ambient time.
func export() (string, string) {
	var lines, chrome strings.Builder
	spans := record()
	_ = trace.WriteJSONLines(&lines, spans)
	_ = trace.WriteChromeTrace(&chrome, spans)
	return lines.String(), chrome.String()
}

// disabled exercises the nil-recorder fast path: every method must be
// callable on the zero Ctx without a recorder behind it.
func disabled() bool {
	var r *trace.Recorder
	sp := r.Begin("noop")
	sp.SetLevel(0)
	sp.SetBytes(1)
	sp.SetCount(1)
	sp.AddIn(1)
	sp.AddOut(2)
	sp.End()
	return r.Enabled() || sp.Recording()
}
