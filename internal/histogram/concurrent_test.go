package histogram

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentMatchesH records the same observations into an H and a
// Concurrent and requires identical statistics.
func TestConcurrentMatchesH(t *testing.T) {
	h := New()
	c := NewConcurrent()
	ds := []time.Duration{
		0, 50, 100, 150 * time.Nanosecond, time.Microsecond,
		3 * time.Microsecond, time.Millisecond, 42 * time.Millisecond,
		time.Second, 2 * time.Hour,
	}
	for _, d := range ds {
		h.Record(d)
		c.Record(d)
	}
	got, want := c.Snapshot(), h
	if got.Count() != want.Count() {
		t.Fatalf("count: got %d want %d", got.Count(), want.Count())
	}
	if got.Mean() != want.Mean() {
		t.Fatalf("mean: got %v want %v", got.Mean(), want.Mean())
	}
	if got.Max() != want.Max() {
		t.Fatalf("max: got %v want %v", got.Max(), want.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		if got.Percentile(q) != want.Percentile(q) {
			t.Fatalf("p%.0f: got %v want %v", 100*q, got.Percentile(q), want.Percentile(q))
		}
	}
	if got.Summary() != want.Summary() {
		t.Fatalf("summary: got %+v want %+v", got.Summary(), want.Summary())
	}
}

// TestConcurrentParallelRecord hammers Record from many goroutines and
// checks the aggregate counters (run under -race in check.sh).
func TestConcurrentParallelRecord(t *testing.T) {
	c := NewConcurrent()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Record(time.Duration(w*perWorker+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Count(); got != workers*perWorker {
		t.Fatalf("count: got %d want %d", got, workers*perWorker)
	}
	s := c.Snapshot()
	var n int64
	for _, b := range s.buckets {
		n += b
	}
	if n != workers*perWorker {
		t.Fatalf("bucket sum: got %d want %d", n, workers*perWorker)
	}
	wantMax := time.Duration(workers*perWorker-1) * time.Microsecond
	if s.Max() != wantMax {
		t.Fatalf("max: got %v want %v", s.Max(), wantMax)
	}
	if s.min != 0 {
		t.Fatalf("min: got %d want 0", s.min)
	}
}

// TestConcurrentZeroAlloc proves Record is allocation-free, the
// property the always-on DB metrics depend on.
func TestConcurrentZeroAlloc(t *testing.T) {
	c := NewConcurrent()
	if n := testing.AllocsPerRun(1000, func() { c.Record(time.Microsecond) }); n != 0 {
		t.Fatalf("Record allocates %.1f times per call", n)
	}
}

// TestEmptySummary covers the zero-observation edge.
func TestEmptySummary(t *testing.T) {
	c := NewConcurrent()
	s := c.Summary()
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}
