package iamdb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestReverseIterationBasics(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i*2)), []byte(fmt.Sprintf("v%d", i)))
	}
	it := db.NewIterator()
	defer it.Close()

	it.Last()
	if !it.Valid() || string(it.Key()) != "k0998" {
		t.Fatalf("last: %q", it.Key())
	}
	if string(it.Value()) != "v499" {
		t.Fatalf("last value: %q", it.Value())
	}
	for i := 498; i >= 0; i-- {
		it.Prev()
		want := fmt.Sprintf("k%04d", i*2)
		if !it.Valid() || string(it.Key()) != want {
			t.Fatalf("prev at %d: %q want %s", i, it.Key(), want)
		}
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("prev past front")
	}

	it.SeekForPrev([]byte("k0101"))
	if !it.Valid() || string(it.Key()) != "k0100" {
		t.Fatalf("seekforprev between: %q", it.Key())
	}
	it.SeekForPrev([]byte("k0100"))
	if !it.Valid() || string(it.Key()) != "k0100" {
		t.Fatalf("seekforprev exact: %q", it.Key())
	}
	it.SeekForPrev([]byte("zzz"))
	if !it.Valid() || string(it.Key()) != "k0998" {
		t.Fatalf("seekforprev past end: %q", it.Key())
	}
	it.SeekForPrev([]byte("a"))
	if it.Valid() {
		t.Fatal("seekforprev before all")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestReverseSkipsTombstonesAndVersions(t *testing.T) {
	db := openSmall(t, LSA)
	defer db.Close()
	// Multiple versions; some keys deleted; deletes of absent keys.
	for round := 0; round < 4; round++ {
		for i := 0; i < 200; i++ {
			db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("r%d", round)))
		}
	}
	for i := 50; i < 100; i++ {
		db.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	db.Delete([]byte("zz-never-existed"))

	it := db.NewIterator()
	defer it.Close()
	var got []string
	for it.Last(); it.Valid(); it.Prev() {
		if string(it.Value()) != "r3" {
			t.Fatalf("stale version at %s: %q", it.Key(), it.Value())
		}
		got = append(got, string(it.Key()))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != 150 {
		t.Fatalf("reverse scan saw %d keys want 150", len(got))
	}
	// Descending, and no deleted keys.
	for i := 1; i < len(got); i++ {
		if got[i] >= got[i-1] {
			t.Fatal("not descending")
		}
	}
	for _, k := range got {
		if k >= "k050" && k < "k100" {
			t.Fatalf("deleted key %s visible", k)
		}
	}
}

func TestReverseDirectionSwitches(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	keys := []string{"a", "c", "e", "g", "i"}
	for _, k := range keys {
		db.Put([]byte(k), []byte("v"))
	}
	it := db.NewIterator()
	defer it.Close()

	it.Seek([]byte("e"))
	it.Prev() // forward -> backward
	if string(it.Key()) != "c" {
		t.Fatalf("prev after seek: %q", it.Key())
	}
	it.Next() // backward -> forward
	if string(it.Key()) != "e" {
		t.Fatalf("next after prev: %q", it.Key())
	}
	it.Next()
	if string(it.Key()) != "g" {
		t.Fatalf("next: %q", it.Key())
	}
	it.Prev()
	it.Prev()
	if string(it.Key()) != "c" {
		t.Fatalf("double prev: %q", it.Key())
	}
}

func TestReverseModelCheck(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			db := openSmall(t, e)
			defer db.Close()
			rng := rand.New(rand.NewSource(31 + int64(e)))
			oracle := map[string]string{}
			for i := 0; i < 6000; i++ {
				k := fmt.Sprintf("key%04d", rng.Intn(1500))
				if rng.Intn(5) == 0 {
					db.Delete([]byte(k))
					delete(oracle, k)
				} else {
					v := fmt.Sprintf("v%d", i)
					db.Put([]byte(k), []byte(v))
					oracle[k] = v
				}
			}
			sorted := make([]string, 0, len(oracle))
			for k := range oracle {
				sorted = append(sorted, k)
			}
			sort.Strings(sorted)

			it := db.NewIterator()
			defer it.Close()

			// Full reverse sweep matches the oracle exactly.
			i := len(sorted)
			for it.Last(); it.Valid(); it.Prev() {
				i--
				if i < 0 {
					t.Fatalf("extra key %q", it.Key())
				}
				if string(it.Key()) != sorted[i] || string(it.Value()) != oracle[sorted[i]] {
					t.Fatalf("at %d: %q=%q want %s=%s",
						i, it.Key(), it.Value(), sorted[i], oracle[sorted[i]])
				}
			}
			if it.Err() != nil {
				t.Fatal(it.Err())
			}
			if i != 0 {
				t.Fatalf("reverse sweep stopped %d early", i)
			}

			// Random zig-zag against the sorted oracle.
			pos := len(sorted) / 2
			it.Seek([]byte(sorted[pos]))
			for step := 0; step < 400; step++ {
				if rng.Intn(2) == 0 {
					it.Next()
					pos++
				} else {
					it.Prev()
					pos--
				}
				if pos < 0 || pos >= len(sorted) {
					if it.Valid() {
						t.Fatalf("step %d: valid outside range at %q", step, it.Key())
					}
					break
				}
				if !it.Valid() || string(it.Key()) != sorted[pos] {
					t.Fatalf("step %d: %q want %s", step, it.Key(), sorted[pos])
				}
			}

			// SeekForPrev on random probes.
			for probe := 0; probe < 200; probe++ {
				target := fmt.Sprintf("key%04d", rng.Intn(1600))
				it.SeekForPrev([]byte(target))
				idx := sort.SearchStrings(sorted, target)
				if idx < len(sorted) && sorted[idx] == target {
					// exact
				} else {
					idx--
				}
				if idx < 0 {
					if it.Valid() {
						t.Fatalf("seekforprev %s: valid at %q want invalid", target, it.Key())
					}
					continue
				}
				if !it.Valid() || string(it.Key()) != sorted[idx] {
					t.Fatalf("seekforprev %s: %q want %s", target, it.Key(), sorted[idx])
				}
			}
		})
	}
}

func TestReverseWithSnapshot(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("old"))
	}
	snap := db.GetSnapshot()
	defer snap.Release()
	for i := 0; i < 300; i += 2 {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("new"))
	}
	for i := 100; i < 150; i++ {
		db.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	it := snap.NewIterator()
	defer it.Close()
	n := 0
	for it.Last(); it.Valid(); it.Prev() {
		if string(it.Value()) != "old" {
			t.Fatalf("snapshot reverse saw new value at %s", it.Key())
		}
		n++
	}
	if n != 300 {
		t.Fatalf("snapshot reverse saw %d keys want 300", n)
	}
}
