package iamdb

import (
	"errors"
	"fmt"
	"io"
	"time"

	"iamdb/internal/corrupt"
	"iamdb/internal/engine"
	"iamdb/internal/histogram"
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/metrics"
	"iamdb/internal/shard"
	"iamdb/internal/vfs"
)

// Range-sharded front-end (Options.Shards > 1): one DB value routing
// the public API across N fully independent child DBs, each owning a
// disjoint key range with its own WAL, memtable, engine and commit
// pipeline.  Writers on different shards never contend on a commit
// lock, so the front-end multiplies group-commit throughput under sync
// latency — the "multiple independent trees" scaling the paper's
// single-pipeline design leaves on the table.
//
// Cross-shard atomicity: every router write allocates one contiguous
// global sequence range from a shard.Sequencer and carves it into
// per-shard contiguous sub-ranges (so each child reuses the ordinary
// batch encoding).  Readers take the sequencer's watermark — the end of
// the longest fully-committed allocation prefix — as their snapshot,
// so a batch spanning shards is visible all-or-nothing even while other
// writers commit concurrently.  See DESIGN.md "Sharded front-end".

// shardsFileName is the root marker of a sharded database directory: a
// CRC-guarded record of the shard count and split keys (see
// shard.Partition.Encode).  Reopening adopts the recorded layout;
// damage surfaces as a typed corruption error at Open.
const shardsFileName = "SHARDS"

// shardSet is the router state a sharded DB carries.
type shardSet struct {
	part shard.Partition
	seqr *shard.Sequencer
	kids []*DB
}

// shardDirName is shard i's subdirectory under the database root.
func shardDirName(dir string, i int) string {
	return fmt.Sprintf("%s/shard-%03d", dir, i)
}

// openSharded opens (creating as needed) a range-sharded database: the
// SHARDS marker is loaded or initialised, every shard opens as an
// ordinary single-tree DB in its own subdirectory, and the returned
// router DB fans the public API out across them.  All shards share one
// StatsFS (device IO counted once), one Clock, one EventListener and
// one TraceRecorder, so aggregated observability stays coherent.
func openSharded(dir string, o Options) (*DB, error) {
	var io *vfs.IOStats
	if sfs, ok := o.FS.(*vfs.StatsFS); ok {
		io = sfs.Stats()
	} else {
		io = &vfs.IOStats{}
		o.FS = vfs.NewStatsFS(o.FS, io)
	}
	// The caller opting into observability is what arms the router's
	// latency histograms, exactly like the single-tree DB; the resolved
	// clock below is an implementation detail shared with the children.
	timing := o.EventListener != nil || o.Clock != nil
	if o.Clock == nil {
		o.Clock = newWallClock()
	}
	if err := o.FS.MkdirAll(dir); err != nil {
		return nil, err
	}

	part, err := loadOrInitPartition(o.FS, dir, o.Shards, o.ShardSplits)
	if err != nil {
		return nil, err
	}

	// Children: same options, minus the router-only concerns.  The
	// block-cache budget models total RAM, so it is divided across the
	// shards instead of multiplied by them.
	ko := o
	ko.Shards, ko.ShardSplits = 0, nil
	ko.DebugAddr = ""
	ko.shardChild = true
	n := part.Count()
	ko.CacheSize = o.CacheSize / int64(n)
	if ko.CacheSize <= 0 {
		ko.CacheSize = 1
	}
	if o.MemBudget > 0 {
		ko.MemBudget = o.MemBudget / int64(n)
	}
	kids := make([]*DB, n)
	for i := range kids {
		kid, err := openSingle(shardDirName(dir, i), ko)
		if err != nil {
			for _, k := range kids[:i] {
				_ = k.Close()
			}
			return nil, fmt.Errorf("iamdb: open shard %d: %w", i, err)
		}
		kids[i] = kid
	}

	// The global sequencer resumes after the largest recovered sequence
	// anywhere; every shard's counter is below it, so new allocations
	// never collide with replayed records.
	var maxSeq kv.Seq
	for _, kid := range kids {
		if kid.seq > maxSeq {
			maxSeq = kid.seq
		}
	}

	db := &DB{
		opt: o, dir: dir, fs: o.FS,
		events: o.EventListener.EnsureDefaults(),
		clock:  o.Clock,
		timing: timing,
		reg:    metrics.NewRegistry(),
		io:     io,
		tr:     o.Trace,
		quit:   make(chan struct{}),
		shards: &shardSet{part: part, seqr: shard.NewSequencer(maxSeq), kids: kids},
	}
	db.putHist = db.reg.Histogram("latency.put")
	db.getHist = db.reg.Histogram("latency.get")
	db.scanHist = db.reg.Histogram("latency.scan")
	// Value-log collectors start only now that rewrites can reach the
	// router's write path: a GC batch committed with a shard-local
	// sequence would collide with globally allocated ranges.
	for _, kid := range kids {
		kid.routerWrite = db.shards.write
		kid.startVlogGC()
	}
	if o.DebugAddr != "" {
		if err := db.startDebugServer(o.DebugAddr); err != nil {
			_ = db.Close()
			return nil, err
		}
	}
	return db, nil
}

// loadOrInitPartition resolves the shard layout: adopt the recorded
// SHARDS marker (rejecting a conflicting explicit layout), or record
// the requested one when the directory is fresh.  Shard data without a
// readable marker is corruption — routing would be guesswork.
func loadOrInitPartition(fs vfs.FS, dir string, shards int, splits [][]byte) (shard.Partition, error) {
	path := dir + "/" + shardsFileName
	if fs.Exists(path) {
		data, err := readWholeFile(fs, path)
		if err != nil {
			return shard.Partition{}, err
		}
		part, err := shard.DecodePartition(data)
		if err != nil {
			return shard.Partition{}, corrupt.New(corrupt.LayerManifest, path, -1, err,
				"SHARDS marker unreadable")
		}
		if shards > 1 {
			want, err := shard.NewPartition(shards, splits)
			if err != nil {
				return shard.Partition{}, err
			}
			if !want.Equal(part) {
				return shard.Partition{}, fmt.Errorf(
					"iamdb: %s records %d shards with a different layout than the %d requested; "+
						"reopen without explicit shard options to adopt it", path, part.Count(), shards)
			}
		}
		return part, nil
	}
	if fs.Exists(shardDirName(dir, 0) + "/MANIFEST") {
		// Shard directories with no marker: a checkpoint that crashed
		// before its commit point, or a lost/deleted marker.  Refuse
		// rather than guess a routing over existing data.
		return shard.Partition{}, corrupt.New(corrupt.LayerManifest, path, -1,
			shard.ErrBadShardsFile, "shard directories present but SHARDS marker missing")
	}
	if shards < 2 {
		return shard.Partition{}, fmt.Errorf("iamdb: %s missing and Options.Shards is %d", path, shards)
	}
	part, err := shard.NewPartition(shards, splits)
	if err != nil {
		return shard.Partition{}, err
	}
	if err := writeShardsFile(fs, dir, part); err != nil {
		return shard.Partition{}, err
	}
	return part, nil
}

// writeShardsFile durably records the partition: tmp + sync + rename,
// so the marker is either absent or complete.
func writeShardsFile(fs vfs.FS, dir string, part shard.Partition) error {
	path := dir + "/" + shardsFileName
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	enc := part.Encode()
	if _, err := f.WriteAt(enc, 0); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return nil
}

func readWholeFile(fs vfs.FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// kid routes a user key to its owning shard.
func (ss *shardSet) kid(key []byte) *DB {
	return ss.kids[ss.part.IndexOf(key)]
}

// write commits a batch across the shards under one global sequence
// allocation.  Sub-batches take contiguous sub-ranges in shard order,
// each committed through its shard's own leader/follower pipeline; the
// allocation is always Ended (a failed sub-commit burns its range, the
// same gap semantics a failed single-tree WAL append has), and on
// success the writer waits for the watermark so it reads its own write.
//
// Failure relaxation: when a sub-commit fails partway, earlier shards'
// sub-batches are already durable and become visible once the watermark
// passes them — a cross-shard batch is atomic under concurrency, not
// under mid-commit I/O failure (see DESIGN.md "Sharded front-end").
func (ss *shardSet) write(b *Batch) error {
	// Fast path: the whole batch lands on one shard (always true for
	// Put/Delete), so no sub-batch assembly is needed.
	first := ss.part.IndexOf(b.ops[0].key)
	multi := false
	for _, op := range b.ops[1:] {
		if ss.part.IndexOf(op.key) != first {
			multi = true
			break
		}
	}
	t := ss.seqr.Begin(b.Len())
	if !multi {
		err := ss.kids[first].writeAt(b, t.Base)
		ss.seqr.End(t)
		if err != nil {
			return err
		}
		ss.seqr.WaitVisible(t.End)
		return nil
	}

	subs := make([]Batch, len(ss.kids))
	for _, op := range b.ops {
		i := ss.part.IndexOf(op.key)
		subs[i].ops = append(subs[i].ops, op)
	}
	base := t.Base
	var firstErr error
	for i := range subs {
		if subs[i].Len() == 0 {
			continue
		}
		// Keep committing the remaining shards after a failure: their
		// records are independently durable and the burned range only
		// covers what actually failed.
		if err := ss.kids[i].writeAt(&subs[i], base); err != nil && firstErr == nil {
			firstErr = err
		}
		base += kv.Seq(subs[i].Len())
	}
	ss.seqr.End(t)
	if firstErr != nil {
		return firstErr
	}
	ss.seqr.WaitVisible(t.End)
	return nil
}

// get resolves a point lookup against the owning shard at the global
// watermark.  The watermark is loaded before the shard's state pointer,
// so the state covers every record at or below it — the same two-load
// protocol (and torn-batch argument) as the single-tree read path,
// with the sequencer guaranteeing no incomplete cross-shard allocation
// sits at or below the loaded sequence.
func (ss *shardSet) get(key []byte) ([]byte, kv.Kind, error) {
	snap := ss.seqr.Visible()
	kid := ss.kid(key)
	st := kid.state.Load()
	v, kind, err := kid.getRawAt(key, snap, st.mem, st.imm)
	if err != nil {
		return nil, 0, err
	}
	return kid.maybeResolve(key, v, kind)
}

// visibleSeq is the sequence a fresh read view starts from.
func (db *DB) visibleSeq() kv.Seq {
	if db.shards != nil {
		return db.shards.seqr.Visible()
	}
	return kv.Seq(db.seqA.Load())
}

// fanout runs fn over every shard, joining the errors.
func (ss *shardSet) fanout(fn func(*DB) error) error {
	var errs []error
	for _, kid := range ss.kids {
		if err := fn(kid); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// closeSharded shuts the router down: debug server first, then every
// shard.  Idempotence and the closed flag live on the router.
func (db *DB) closeSharded() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	db.closedA.Store(true)
	db.mu.Unlock()
	close(db.quit)
	if db.debugSrv != nil {
		_ = db.debugSrv.Close()
	}
	db.wg.Wait()
	return db.shards.fanout(func(kid *DB) error { return kid.Close() })
}

// NumShards reports how many independent shards back this DB; 1 for a
// classic single-tree database.
func (db *DB) NumShards() int {
	if db.shards == nil {
		return 1
	}
	return len(db.shards.kids)
}

// ShardRange describes shard i's key range as [Lo, Hi); Lo is nil for
// the first shard and Hi nil for the last.  It panics if i is out of
// range; on an unsharded DB only shard 0 exists (unbounded both ways).
func (db *DB) ShardRange(i int) (lo, hi []byte) {
	if db.shards == nil {
		if i != 0 {
			panic("iamdb: ShardRange on unsharded DB")
		}
		return nil, nil
	}
	splits := db.shards.part.Splits()
	if i > 0 {
		lo = splits[i-1]
	}
	if i < len(splits) {
		hi = splits[i]
	}
	return lo, hi
}

// ShardMetrics returns shard i's own metrics snapshot (DB.Metrics is
// the aggregate).  On an unsharded DB, shard 0 is the DB itself.
func (db *DB) ShardMetrics(i int) Metrics {
	if db.shards == nil {
		return db.Metrics()
	}
	return db.shards.kids[i].Metrics()
}

// metrics aggregates every shard into one DB-level snapshot: per-level
// structure and traffic merged by level index, sizes and counters
// summed, device IO reported once from the shared StatsFS, cache hit
// rate recomputed from pooled lookups, commit-group-size histograms
// merged, and the operation latency digests taken from the router's own
// histograms (which time whole cross-shard operations).
func (ss *shardSet) metrics(db *DB) Metrics {
	var m Metrics
	group := histogram.New()
	var hits, lookups int64
	for _, kid := range ss.kids {
		st := kid.state.Load()
		m.MemtableBytes += st.mem.ApproximateSize()
		if st.imm != nil {
			m.ImmutableMemtables++
		}
		kid.mu.Lock()
		if kid.walNum > m.WALNum {
			m.WALNum = kid.walNum
		}
		wb := kid.walRetired
		if kid.walW != nil {
			wb += kid.walW.Offset()
		}
		kid.mu.Unlock()
		m.WALBytes += wb
		m.WALRotations += kid.walRotations.Load()
		mergeEngineStats(&m.Engine, kid.eng.Stats())
		m.Levels = mergeLevelInfos(m.Levels, kid.eng.Levels())
		m.SpaceUsed += kid.eng.SpaceUsed()
		if kid.vl != nil {
			vs := kid.vl.Stats()
			m.VLogSegments += vs.Segments
			m.VLogBytes += vs.Bytes
			m.VLogDiscardBytes += vs.DiscardBytes
			m.SpaceUsed += kid.vl.SpaceUsed()
		}
		m.VLogAppends += kid.vlogAppendsC.Load()
		m.VLogResolves += kid.vlogResolvesC.Load()
		m.VLogGCSegments += kid.vlogGCSegments.Load()
		m.UserBytes += kid.userBytes.Load()
		_, h, miss := kid.cache.HitRate()
		hits += h
		lookups += h + miss
		m.StallCount += kid.stallCount.Load()
		m.StallTime += time.Duration(kid.stallNanos.Load())
		m.CorruptionsDetected += kid.corrDetected.Load()
		m.TablesQuarantined += kid.corrQuarantined.Load()
		m.ScrubBlocks += kid.scrubBlocksC.Load()
		m.NoSpaceErrors += kid.bgNoSpace.Load()
		m.CommitGroups += kid.commitGroups.Load()
		m.CommitBatches += kid.commitBatches.Load()
		m.CommitWait += time.Duration(kid.commitWait.Load())
		group.Merge(kid.groupSize.Snapshot())
	}
	if lookups > 0 {
		m.CacheHitRate = float64(hits) / float64(lookups)
	}
	m.IO = db.io.Snapshot()
	m.GroupSize = group.Summary()
	m.Put = db.putHist.Summary()
	m.Get = db.getHist.Summary()
	m.Scan = db.scanHist.Summary()
	return m
}

// mergeEngineStats folds one shard's traffic snapshot into the sum.
func mergeEngineStats(dst *engine.StatsSnapshot, src engine.StatsSnapshot) {
	for len(dst.PerLevel) < len(src.PerLevel) {
		dst.PerLevel = append(dst.PerLevel, engine.LevelStats{})
	}
	for i, ls := range src.PerLevel {
		d := &dst.PerLevel[i]
		d.WriteBytes += ls.WriteBytes
		d.ReadBytes += ls.ReadBytes
		d.Appends += ls.Appends
		d.Merges += ls.Merges
		d.Moves += ls.Moves
		d.Splits += ls.Splits
		d.Combines += ls.Combines
	}
	for len(dst.FlushBytes) < len(src.FlushBytes) {
		dst.FlushBytes = append(dst.FlushBytes, 0)
	}
	for i, fb := range src.FlushBytes {
		dst.FlushBytes[i] += fb
	}
	dst.Appends += src.Appends
	dst.Merges += src.Merges
	dst.Moves += src.Moves
	dst.Splits += src.Splits
	dst.Combines += src.Combines
	dst.Flushes += src.Flushes
}

// mergeLevelInfos folds per-level shape by level index, keeping the
// result sorted by level.
func mergeLevelInfos(dst, src []engine.LevelInfo) []engine.LevelInfo {
	for _, li := range src {
		found := false
		for i := range dst {
			if dst[i].Level == li.Level {
				dst[i].Nodes += li.Nodes
				dst[i].Bytes += li.Bytes
				dst[i].Seqs += li.Seqs
				dst[i].Quarantined += li.Quarantined
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, li)
		}
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Level < dst[j-1].Level; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// sampleCumulative aggregates the monotone counters a Sampler diffs.
func (ss *shardSet) sampleCumulative(db *DB) metrics.Cumulative {
	var w, r []int64
	var c metrics.Cumulative
	c.Ops = db.getOps.Load()
	for _, kid := range ss.kids {
		st := kid.eng.Stats()
		for len(w) < len(st.PerLevel) {
			w = append(w, 0)
			r = append(r, 0)
		}
		for i, ls := range st.PerLevel {
			w[i] += ls.WriteBytes
			r[i] += ls.ReadBytes
		}
		c.Ops += kid.putOps.Load() + kid.getOps.Load()
		c.StallNanos += kid.stallNanos.Load()
		_, hits, misses := kid.cache.HitRate()
		c.CacheHits += hits
		c.CacheLookups += hits + misses
		c.CommitGroups += kid.commitGroups.Load()
		c.CommitBatches += kid.commitBatches.Load()
	}
	io := db.io.Snapshot()
	c.WriteBytes = io.BytesWritten
	c.ReadBytes = io.BytesRead
	c.PerLevelWrite = w
	c.PerLevelRead = r
	c.Put = db.putHist.Snapshot()
	return c
}

// scrub runs a verification pass over every shard in order, merging the
// reports; the router's Scrub wrapper owns the running flag.
func (ss *shardSet) scrub() (ScrubReport, error) {
	var rep ScrubReport
	var firstErr error
	for _, kid := range ss.kids {
		kr, err := kid.Scrub()
		rep.Tables += kr.Tables
		rep.Seqs += kr.Seqs
		rep.Blocks += kr.Blocks
		rep.Bytes += kr.Bytes
		rep.Entries += kr.Entries
		rep.WALFiles += kr.WALFiles
		rep.WALRecords += kr.WALRecords
		rep.WALDropped += kr.WALDropped
		rep.Corruptions = append(rep.Corruptions, kr.Corruptions...)
		rep.Quarantined += kr.Quarantined
		rep.VLogSegments += kr.VLogSegments
		rep.VLogRecords += kr.VLogRecords
		rep.VLogBytes += kr.VLogBytes
		rep.VLogSuspect += kr.VLogSuspect
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if errors.Is(err, ErrClosed) {
			break
		}
	}
	return rep, firstErr
}

// checkpoint copies every shard (each with its own data-before-manifest
// protocol) and writes the SHARDS marker last as the commit point: a
// destination without the marker is never mistaken for a database, so a
// checkpoint that crashed partway is detected, not silently adopted.
func (ss *shardSet) checkpoint(db *DB, dstDir string) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()
	if err := db.fs.MkdirAll(dstDir); err != nil {
		return err
	}
	if db.fs.Exists(dstDir+"/"+shardsFileName) || db.fs.Exists(dstDir+"/MANIFEST") {
		return fmt.Errorf("iamdb: checkpoint target %s already holds a database", dstDir)
	}
	for i, kid := range ss.kids {
		if err := kid.Checkpoint(shardDirName(dstDir, i)); err != nil {
			return err
		}
	}
	return writeShardsFile(db.fs, dstDir, ss.part)
}

// newInner builds the cross-shard inner iterator at the current states:
// per shard, the usual mem/imm/engine merge; across shards, plain
// concatenation — the ranges are disjoint and ordered, so no heap is
// needed and a scan only pays for the shards it actually touches.
func (ss *shardSet) newInner() iterator.ReverseIterator {
	kids := make([]iterator.ReverseIterator, len(ss.kids))
	for i, kid := range ss.kids {
		st := kid.state.Load()
		sub := []iterator.Iterator{st.mem.NewIter()}
		if st.imm != nil {
			sub = append(sub, st.imm.NewIter())
		}
		sub = append(sub, kid.eng.NewIter())
		kids[i] = iterator.NewMerging(kv.CompareInternal, sub...)
	}
	return &shardConcat{part: ss.part, kids: kids, dbs: ss.kids, cur: -1}
}

// shardConcat concatenates per-shard iterators into one totally ordered
// stream over internal keys, in both directions.  Seek targets are
// routed by user key; exhausting one shard moves to the next (forward)
// or previous (backward) one.  dbs mirrors kids: dbs[cur] is the store
// whose value log resolves the current position's pointer records.
type shardConcat struct {
	part shard.Partition
	kids []iterator.ReverseIterator
	dbs  []*DB
	cur  int // current child, -1 when exhausted
	err  error
}

func (c *shardConcat) note(err error) {
	if err != nil && c.err == nil {
		c.err = err
	}
}

// fwd settles on the first valid child at or after i; children before i
// must already be positioned, children after get First.
func (c *shardConcat) fwd(i int) {
	for ; i < len(c.kids); i++ {
		if c.kids[i].Valid() {
			c.cur = i
			return
		}
		c.note(c.kids[i].Err())
		if i+1 < len(c.kids) {
			c.kids[i+1].First()
		}
	}
	c.cur = -1
}

// bwd settles on the last valid child at or before i.
func (c *shardConcat) bwd(i int) {
	for ; i >= 0; i-- {
		if c.kids[i].Valid() {
			c.cur = i
			return
		}
		c.note(c.kids[i].Err())
		if i > 0 {
			c.kids[i-1].Last()
		}
	}
	c.cur = -1
}

// First implements iterator.Iterator.
func (c *shardConcat) First() {
	c.kids[0].First()
	c.fwd(0)
}

// Seek implements iterator.Iterator.
func (c *shardConcat) Seek(target []byte) {
	u, _, _, ok := kv.ParseInternalKey(target)
	if !ok {
		c.note(errBadBatch)
		c.cur = -1
		return
	}
	i := c.part.IndexOf(u)
	c.kids[i].Seek(target)
	c.fwd(i)
}

// Next implements iterator.Iterator.
func (c *shardConcat) Next() {
	if c.cur < 0 {
		return
	}
	c.kids[c.cur].Next()
	c.fwd(c.cur)
}

// Last implements iterator.ReverseIterator.
func (c *shardConcat) Last() {
	last := len(c.kids) - 1
	c.kids[last].Last()
	c.bwd(last)
}

// SeekForPrev implements iterator.ReverseIterator.
func (c *shardConcat) SeekForPrev(target []byte) {
	u, _, _, ok := kv.ParseInternalKey(target)
	if !ok {
		c.note(errBadBatch)
		c.cur = -1
		return
	}
	i := c.part.IndexOf(u)
	c.kids[i].SeekForPrev(target)
	c.bwd(i)
}

// Prev implements iterator.ReverseIterator.
func (c *shardConcat) Prev() {
	if c.cur < 0 {
		return
	}
	c.kids[c.cur].Prev()
	c.bwd(c.cur)
}

// Valid implements iterator.Iterator.
func (c *shardConcat) Valid() bool { return c.cur >= 0 && c.err == nil }

// Key implements iterator.Iterator.
func (c *shardConcat) Key() []byte {
	if c.cur < 0 {
		return nil
	}
	return c.kids[c.cur].Key()
}

// Value implements iterator.Iterator.
func (c *shardConcat) Value() []byte {
	if c.cur < 0 {
		return nil
	}
	return c.kids[c.cur].Value()
}

// Err implements iterator.Iterator.
func (c *shardConcat) Err() error { return c.err }

// Close implements iterator.Iterator.
func (c *shardConcat) Close() error {
	var first error
	for _, kid := range c.kids {
		if err := kid.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
