//go:build invariants

package iamdb

import (
	"fmt"
	"strings"
	"testing"

	"iamdb/internal/metrics"
	"iamdb/internal/vfs"
)

// TestMetricsSmoke exercises the whole observability layer with the
// invariants build tag on: a workload on every engine, then a snapshot
// whose counters must be internally coherent and whose rendering must
// contain the per-level table.  The clock opts the DB into latency
// timing (the default configuration skips it).
func TestMetricsSmoke(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			opts := smallOpts(e, vfs.NewMemFS())
			opts.Clock = new(metrics.ManualClock)
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 200)
			for i := 0; i < 1500; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%05d", i*7919%1500)), val); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 50; i++ {
				if _, err := db.Get([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}
			m := db.Metrics()
			if m.Engine.Flushes <= 0 || m.UserBytes <= 0 || m.SpaceUsed <= 0 {
				t.Fatalf("implausible snapshot: flushes=%d user=%d space=%d",
					m.Engine.Flushes, m.UserBytes, m.SpaceUsed)
			}
			if m.Put.Count != 1500 || m.Get.Count != 50 {
				t.Fatalf("latency counts: put=%d get=%d", m.Put.Count, m.Get.Count)
			}
			if m.WALBytes < m.UserBytes {
				t.Fatalf("WAL %d smaller than user bytes %d", m.WALBytes, m.UserBytes)
			}
			s := m.String()
			for _, want := range []string{"Level | Files", "total |", "Flushes:", "Latency put"} {
				if !strings.Contains(s, want) {
					t.Fatalf("String() missing %q:\n%s", want, s)
				}
			}
		})
	}
}
