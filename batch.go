package iamdb

import (
	"encoding/binary"
	"errors"

	"iamdb/internal/kv"
	"iamdb/internal/memtable"
)

// Batch collects writes to apply atomically: either every operation in
// the batch becomes visible (and durable in one WAL record) or none.
type Batch struct {
	ops []batchOp

	// gcOld, when non-nil, marks this as a value-log GC rewrite batch:
	// gcOld[i] is the pointer encoding op i is replacing, and the
	// commit leader drops any op whose key no longer resolves to that
	// exact pointer — or whose key any ordinary batch in the same
	// commit group writes — so a GC rewrite can never resurrect a
	// value a concurrent write or delete superseded, regardless of
	// sequence order within the group (see separateGroup).
	gcOld [][]byte

	// gcFailed is set by the commit leader when a rewrite op's liveness
	// check failed with a read error (not ErrNotFound): the collector
	// must then keep the old segment, since the op was dropped without
	// proof the record is dead.
	gcFailed bool
}

type batchOp struct {
	kind kv.Kind
	key  []byte
	val  []byte
}

// Put queues a key/value insert.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{kv.KindSet,
		append([]byte(nil), key...), append([]byte(nil), value...)})
}

// Delete queues a key deletion.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{kv.KindDelete, append([]byte(nil), key...), nil})
}

// putPointer queues a pre-separated value-log pointer record (GC
// rewrites), conditional on oldPtr still being the key's current
// value at commit time.
func (b *Batch) putPointer(key, ptr, oldPtr []byte) {
	for len(b.gcOld) < len(b.ops) {
		b.gcOld = append(b.gcOld, nil)
	}
	b.ops = append(b.ops, batchOp{kv.KindValuePtr,
		append([]byte(nil), key...), append([]byte(nil), ptr...)})
	b.gcOld = append(b.gcOld, append([]byte(nil), oldPtr...))
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0]; b.gcOld = nil; b.gcFailed = false }

// appendEncoded serializes the batch onto buf and returns the extended
// slice:
//
//	startSeq(varint) count(varint)
//	{kind(1) keyLen(varint) key [valLen(varint) val]}*
//
// The encoding is self-delimiting, so a group commit can concatenate
// several batches into one WAL record and recovery can decode them
// back-to-back.
func (b *Batch) appendEncoded(buf []byte, startSeq kv.Seq) []byte {
	buf = binary.AppendUvarint(buf, uint64(startSeq))
	buf = binary.AppendUvarint(buf, uint64(len(b.ops)))
	for _, op := range b.ops {
		buf = append(buf, byte(op.kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.key)))
		buf = append(buf, op.key...)
		if op.kind != kv.KindDelete {
			// Set carries the value; ValuePtr carries the pointer
			// encoding.  Only tombstones are value-free.
			buf = binary.AppendUvarint(buf, uint64(len(op.val)))
			buf = append(buf, op.val...)
		}
	}
	return buf
}

var errBadBatch = errors.New("iamdb: corrupt batch record")

// decodeRecordInto replays one WAL record — one or more concatenated
// batch encodings, the way the commit leader writes a group — into a
// memtable, returning the last sequence number it used.
func decodeRecordInto(rec []byte, mt *memtable.MemTable) (kv.Seq, error) {
	var last kv.Seq
	for len(rec) > 0 {
		seq, rest, err := decodeOneBatch(rec, mt)
		if err != nil {
			return 0, err
		}
		if seq > last {
			last = seq
		}
		rec = rest
	}
	return last, nil
}

// decodeOneBatch replays the first batch encoding in rec, returning
// its last sequence number and the remaining bytes.
func decodeOneBatch(rec []byte, mt *memtable.MemTable) (kv.Seq, []byte, error) {
	p := rec
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	start, ok := u()
	if !ok {
		return 0, nil, errBadBatch
	}
	count, ok := u()
	if !ok {
		return 0, nil, errBadBatch
	}
	seq := kv.Seq(start)
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return 0, nil, errBadBatch
		}
		kind := kv.Kind(p[0])
		p = p[1:]
		klen, ok := u()
		if !ok || uint64(len(p)) < klen {
			return 0, nil, errBadBatch
		}
		key := p[:klen]
		p = p[klen:]
		var val []byte
		if kind == kv.KindSet || kind == kv.KindValuePtr {
			vlen, ok := u()
			if !ok || uint64(len(p)) < vlen {
				return 0, nil, errBadBatch
			}
			val = p[:vlen]
			p = p[vlen:]
		} else if kind != kv.KindDelete {
			return 0, nil, errBadBatch
		}
		mt.Add(seq, kind, key, val)
		seq++
	}
	return seq - 1, p, nil
}

// size estimates the memtable bytes the batch will occupy.
func (b *Batch) size() int64 {
	var n int64
	for _, op := range b.ops {
		n += int64(len(op.key) + len(op.val) + 24)
	}
	return n
}
