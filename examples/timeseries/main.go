// Time-series ingest: append-mostly sequential writes — the pattern
// where LSA/IAM's metadata-only move-down shines (Sec. 4.2.1: with
// sequential writes every record hits disk exactly once).  Metrics
// samples are keyed "m/<metric>/<timestamp>", ingested in time order,
// then queried with time-window scans.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"iamdb"
)

const (
	metrics = 4
	samples = 20000
)

func key(metric, ts int) []byte {
	return []byte(fmt.Sprintf("m/%02d/%012d", metric, ts))
}

func main() {
	dir, err := os.MkdirTemp("", "iamdb-timeseries")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := iamdb.Open(dir, &iamdb.Options{
		Engine:       iamdb.IAM,
		MemtableSize: 64 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest in timestamp order, interleaved across metrics.
	rng := rand.New(rand.NewSource(1))
	for ts := 0; ts < samples; ts++ {
		m := ts % metrics
		val := fmt.Sprintf("%.4f", 20+5*rng.Float64())
		if err := db.Put(key(m, ts), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}

	// Window query: metric 2, a 200-tick slice.
	it := db.NewIterator()
	defer it.Close()
	lo, hi := 10000, 10200
	count, first, last := 0, "", ""
	for it.Seek(key(2, lo)); it.Valid(); it.Next() {
		k := string(it.Key())
		if k >= string(key(2, hi)) {
			break
		}
		if count == 0 {
			first = k
		}
		last = k
		count++
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window scan m/02 [%d,%d): %d samples (%s .. %s)\n",
		lo, hi, count, first, last)

	// Sequential ingest should be rewrite-free: write amplification of
	// the tree stays around 1 and nodes move down by metadata only.
	m := db.Metrics()
	fmt.Printf("ingested %d samples, write-amp %.2f (sequential loads are rewrite-free)\n",
		samples, m.WriteAmplification())
	fmt.Printf("metadata-only moves: %d, merges: %d\n", m.Engine.Moves, m.Engine.Merges)
	for _, l := range m.Levels {
		fmt.Printf("  %s\n", l)
	}
}
