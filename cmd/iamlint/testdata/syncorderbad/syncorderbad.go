// Package syncorderbad holds durability-ordering violations the
// syncorder pass must flag: paths that reach a manifest append while
// freshly written table data is not yet synced.  A crash between the
// edit and the sync recovers a manifest referencing garbage.
package syncorderbad

import (
	"iamdb/internal/iterator"
	"iamdb/internal/manifest"
	"iamdb/internal/table"
	"iamdb/internal/vfs"
)

// unsyncedEdit appends the manifest record directly after writing
// table data, with no Sync in between.
func unsyncedEdit(fs vfs.FS, man *manifest.Log, it iterator.Iterator) error {
	t, err := table.Create(fs, "t1.mst", 1, 1<<20, table.Options{})
	if err != nil {
		return err
	}
	if _, err := t.Append(it); err != nil {
		return err
	}
	return man.Append(&manifest.Edit{}) // want [syncorder] not yet synced
}

func logEdit(man *manifest.Log) error {
	return man.Append(&manifest.Edit{})
}

// viaHelper reaches the manifest edit through a helper call; the
// interprocedural summary must see through it.
func viaHelper(fs vfs.FS, man *manifest.Log) error {
	t, err := table.Create(fs, "t2.mst", 2, 1<<20, table.Options{})
	if err != nil {
		return err
	}
	defer func() { _ = t.Close() }()
	return logEdit(man) // want [syncorder] reached via logEdit
}

// synced is the correct protocol — write, sync, then edit — and must
// stay clean.
func synced(fs vfs.FS, man *manifest.Log, it iterator.Iterator) error {
	t, err := table.Create(fs, "t3.mst", 3, 1<<20, table.Options{})
	if err != nil {
		return err
	}
	if _, err := t.Append(it); err != nil {
		return err
	}
	if err := t.Sync(); err != nil {
		return err
	}
	return man.Append(&manifest.Edit{})
}
