package vfs

import (
	"errors"
	"io"
	"sync"
)

// ErrCrashed is returned by every operation on a CrashFS after Crash()
// has fired, until Recover() is called.  Handles that were open at the
// moment of the crash stay dead even after recovery — a process that
// lost power does not keep its file descriptors.
var ErrCrashed = errors.New("vfs: simulated crash")

// CrashMode selects what happens to the single in-flight write at the
// moment of a crash.  Everything unsynced is always discarded; the
// modes differ in how the *last* buffered write is treated, modeling
// what a real disk can do to the sector stream it was given.
type CrashMode int

const (
	// CrashDrop discards every unsynced write cleanly.
	CrashDrop CrashMode = iota
	// CrashTorn persists the last unsynced write truncated to a
	// 512-byte sector prefix (possibly nothing), modeling a torn
	// multi-sector write.
	CrashTorn
	// CrashFlip persists the last unsynced write in full but with one
	// bit flipped, modeling a corrupted in-flight sector.
	CrashFlip
)

// CrashFS wraps an FS and buffers every write in memory until the file
// is Synced; only synced data reaches the inner FS.  Crash() throws the
// buffers away, leaving exactly the state a machine would find after
// power loss under a sync-barrier contract.  A deterministic counter
// over mutating operations (Create, Write, WriteAt, Truncate, Sync,
// Remove, Rename) lets a test enumerate crash points: CrashAt(n) makes
// the n-th mutating op from now fail with ErrCrashed before taking
// effect, crashing the filesystem.
//
// Simplifications, documented and deliberate: metadata operations
// (Create, Remove, Rename, MkdirAll) are durable immediately, as on a
// journaled filesystem; only file *data* needs Sync.  Reads see the
// union of durable and buffered data, as the page cache would serve.
type CrashFS struct {
	inner FS

	mu         sync.Mutex
	mode       CrashMode
	files      map[string]*crashFile
	ops        int64
	crashAt    int64 // fire when the op counter reaches this; -1 = disarmed
	crashed    bool
	syncPoints []int64
	// lastWrite is the file holding the most recent buffered write op;
	// under CrashTorn/CrashFlip that op partially survives the crash.
	lastWrite *crashFile
}

// NewCrashFS wraps inner with an empty write buffer and no crash armed.
func NewCrashFS(inner FS, mode CrashMode) *CrashFS {
	return &CrashFS{
		inner:   inner,
		mode:    mode,
		files:   make(map[string]*crashFile),
		crashAt: -1,
	}
}

// pendingOp is one buffered mutation.  off >= 0 is a WriteAt; off < 0
// is a Truncate to size.
type pendingOp struct {
	off  int64
	data []byte
	size int64
}

// crashFile is the per-path state shared by every handle open on that
// path.  Handles hold the pointer, so Rename keeps them attached to the
// same file identity (the manifest-compaction pattern: create tmp,
// rename over, keep appending through the original handle).
type crashFile struct {
	name    string
	inner   File
	pending []pendingOp
	size    int64 // volatile size: durable size + buffered effects
	dead    bool  // handle was open across a crash
}

// step advances the mutating-op counter and fires the armed crash when
// its index comes up.  Caller holds fs.mu.  The op with index n fails
// *before* taking effect.
func (fs *CrashFS) step(isSync bool) error {
	if fs.crashed {
		return ErrCrashed
	}
	idx := fs.ops
	fs.ops++
	if isSync {
		fs.syncPoints = append(fs.syncPoints, idx)
	}
	if fs.crashAt >= 0 && idx >= fs.crashAt {
		fs.crashLocked()
		return ErrCrashed
	}
	return nil
}

// crashLocked discards all buffered writes, optionally tearing or
// corrupting the last one into the durable image.  Caller holds fs.mu.
func (fs *CrashFS) crashLocked() {
	if fs.crashed {
		return
	}
	if fs.mode != CrashDrop && fs.lastWrite != nil {
		cf := fs.lastWrite
		for i := len(cf.pending) - 1; i >= 0; i-- {
			op := cf.pending[i]
			if op.off < 0 || len(op.data) == 0 {
				continue
			}
			switch fs.mode {
			case CrashTorn:
				// Persist a sector-aligned prefix; small writes are
				// simply lost.
				if cut := (len(op.data) / 2) &^ 511; cut > 0 {
					_, _ = cf.inner.WriteAt(op.data[:cut], op.off)
				}
			case CrashFlip:
				b := append([]byte(nil), op.data...)
				b[len(b)/2] ^= 1
				_, _ = cf.inner.WriteAt(b, op.off)
			}
			break
		}
	}
	for _, cf := range fs.files {
		cf.pending = nil
		cf.dead = true
	}
	fs.files = make(map[string]*crashFile)
	fs.crashed = true
	fs.crashAt = -1
	fs.lastWrite = nil
}

// Crash simulates power loss now: all unsynced data is gone and every
// subsequent operation fails with ErrCrashed until Recover.
func (fs *CrashFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashLocked()
}

// CrashAt arms a crash at mutating-op index n (as counted by OpCount).
// n < 0 disarms.
func (fs *CrashFS) CrashAt(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = n
}

// Recover re-enables the filesystem after a crash, exposing only the
// durable image.  Handles from before the crash stay dead.
func (fs *CrashFS) Recover() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = false
}

// Crashed reports whether the filesystem is in the post-crash state.
func (fs *CrashFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// OpCount returns how many mutating operations have been counted.
func (fs *CrashFS) OpCount() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// SyncPoints returns the op indices at which Sync was called, the
// natural crash points for a sweep (every one is a commit boundary).
func (fs *CrashFS) SyncPoints() []int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]int64(nil), fs.syncPoints...)
}

// SetMode changes the torn-write model for the next crash.
func (fs *CrashFS) SetMode(m CrashMode) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.mode = m
}

// Create implements FS.  The file springs into existence durably (a
// journaled create), but data written to it is buffered until Sync.
func (fs *CrashFS) Create(name string) (File, error) {
	name = clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(false); err != nil {
		return nil, err
	}
	inner, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	cf := &crashFile{name: name, inner: inner}
	if old := fs.files[name]; old != nil && fs.lastWrite == old {
		fs.lastWrite = nil
	}
	fs.files[name] = cf
	return &crashHandle{fs: fs, cf: cf}, nil
}

// Open implements FS.
func (fs *CrashFS) Open(name string) (File, error) {
	name = clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	cf := fs.files[name]
	if cf == nil {
		inner, err := fs.inner.Open(name)
		if err != nil {
			return nil, err
		}
		size, err := inner.Size()
		if err != nil {
			return nil, err
		}
		cf = &crashFile{name: name, inner: inner, size: size}
		fs.files[name] = cf
	}
	return &crashHandle{fs: fs, cf: cf, pos: -1}, nil
}

// Remove implements FS.  Removal is durable immediately; any buffered
// writes to the file die with it.
func (fs *CrashFS) Remove(name string) error {
	name = clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(false); err != nil {
		return err
	}
	if cf := fs.files[name]; cf != nil {
		if fs.lastWrite == cf {
			fs.lastWrite = nil
		}
		delete(fs.files, name)
	}
	return fs.inner.Remove(name)
}

// Rename implements FS.  Durable immediately; open handles follow the
// file to its new name.
func (fs *CrashFS) Rename(oldname, newname string) error {
	oldname, newname = clean(oldname), clean(newname)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(false); err != nil {
		return err
	}
	if err := fs.inner.Rename(oldname, newname); err != nil {
		return err
	}
	if cf := fs.files[oldname]; cf != nil {
		if repl := fs.files[newname]; repl != nil && fs.lastWrite == repl {
			fs.lastWrite = nil
		}
		delete(fs.files, oldname)
		cf.name = newname
		fs.files[newname] = cf
	} else {
		delete(fs.files, newname)
	}
	return nil
}

// List implements FS.
func (fs *CrashFS) List(dir string) ([]string, error) { return fs.inner.List(dir) }

// MkdirAll implements FS.
func (fs *CrashFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	return fs.inner.MkdirAll(dir)
}

// Exists implements FS.
func (fs *CrashFS) Exists(name string) bool { return fs.inner.Exists(clean(name)) }

type crashHandle struct {
	fs *CrashFS
	cf *crashFile
	// pos is the sequential-write position; -1 means "end of file",
	// matching memHandle.
	pos int64
}

// readAtLocked serves reads from the durable image overlaid with the
// buffered ops in order, with memHandle-compatible EOF semantics.
// Caller holds fs.mu.
func (cf *crashFile) readAtLocked(p []byte, off int64) (int, error) {
	if off >= cf.size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > cf.size-off {
		n = int(cf.size - off)
	}
	buf := p[:n]
	for i := range buf {
		buf[i] = 0
	}
	// Durable base; short reads and EOF just leave zeros.
	_, _ = cf.inner.ReadAt(buf, off)
	for _, op := range cf.pending {
		if op.off < 0 {
			// Truncate: zero everything at or past the cut within our
			// window.
			if op.size < off+int64(n) {
				from := op.size - off
				if from < 0 {
					from = 0
				}
				for i := from; i < int64(n); i++ {
					buf[i] = 0
				}
			}
			continue
		}
		lo, hi := op.off, op.off+int64(len(op.data))
		if lo < off {
			lo = off
		}
		if hi > off+int64(n) {
			hi = off + int64(n)
		}
		if lo < hi {
			copy(buf[lo-off:hi-off], op.data[lo-op.off:hi-op.off])
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *crashHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed || h.cf.dead {
		return 0, ErrCrashed
	}
	return h.cf.readAtLocked(p, off)
}

// writeAtLocked buffers one write.  Caller holds fs.mu and has already
// charged the op counter.
func (h *crashHandle) writeAtLocked(p []byte, off int64) {
	cf := h.cf
	cf.pending = append(cf.pending, pendingOp{off: off, data: append([]byte(nil), p...)})
	if end := off + int64(len(p)); end > cf.size {
		cf.size = end
	}
	h.fs.lastWrite = cf
}

func (h *crashHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.cf.dead {
		return 0, ErrCrashed
	}
	if err := h.fs.step(false); err != nil {
		return 0, err
	}
	h.writeAtLocked(p, off)
	return len(p), nil
}

func (h *crashHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.cf.dead {
		return 0, ErrCrashed
	}
	if err := h.fs.step(false); err != nil {
		return 0, err
	}
	if h.pos < 0 {
		h.pos = h.cf.size
	}
	h.writeAtLocked(p, h.pos)
	h.pos += int64(len(p))
	return len(p), nil
}

func (h *crashHandle) Truncate(n int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.cf.dead {
		return ErrCrashed
	}
	if err := h.fs.step(false); err != nil {
		return err
	}
	h.cf.pending = append(h.cf.pending, pendingOp{off: -1, size: n})
	h.cf.size = n
	return nil
}

// Sync makes this file's buffered writes durable, in order, then syncs
// the inner file.
func (h *crashHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.cf.dead {
		return ErrCrashed
	}
	if err := h.fs.step(true); err != nil {
		return err
	}
	cf := h.cf
	for _, op := range cf.pending {
		if op.off < 0 {
			if err := cf.inner.Truncate(op.size); err != nil {
				return err
			}
			continue
		}
		if _, err := cf.inner.WriteAt(op.data, op.off); err != nil {
			return err
		}
	}
	cf.pending = cf.pending[:0]
	if h.fs.lastWrite == cf {
		h.fs.lastWrite = nil
	}
	return cf.inner.Sync()
}

// Close leaves the shared file state alone: other handles (and a later
// Open) may still be using it, and unsynced data must stay unsynced.
func (h *crashHandle) Close() error { return nil }

func (h *crashHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed || h.cf.dead {
		return 0, ErrCrashed
	}
	return h.cf.size, nil
}
