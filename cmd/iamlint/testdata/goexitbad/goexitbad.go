// Package goexitbad holds goroutine-leak patterns the goexit pass
// must flag: spawned workers with no provable join, so they can
// outlive Close — the dead-worker bugs the crash harness only catches
// dynamically.
package goexitbad

import "sync"

type worker struct {
	stop chan struct{}
}

func (w *worker) loop() {
	<-w.stop
}

// Start spawns the loop with no WaitGroup discipline at all; closing
// w.stop makes the goroutine exit eventually, but nothing waits for
// it (channel quiesce is not modeled — a real join would use
// //iamlint:ignore goexit).
func (w *worker) Start() {
	go w.loop() // want [goexit] no provable join
}

func (w *worker) Close() {
	close(w.stop)
}

// fireAndForget leaks an anonymous goroutine.
func fireAndForget(ch chan<- int) {
	go func() { // want [goexit] no provable join
		ch <- 1
	}()
}

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) run() {
	defer p.wg.Done()
}

// startLate has Done and Wait, but the Add happens after the spawn —
// the window where Wait can return before the worker registered.
func (p *pool) startLate() {
	go p.run() // want [goexit] no matching Add before the spawn
	p.wg.Add(1)
	p.wg.Wait()
}
