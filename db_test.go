package iamdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"iamdb/internal/vfs"
)

// smallOpts scales everything down so structural events (flushes,
// splits, level growth) happen with kilobytes of data.
func smallOpts(e EngineKind, fs vfs.FS) *Options {
	return &Options{
		Engine: e, FS: fs,
		MemtableSize: 8 * 1024, CacheSize: 256 * 1024,
		MemBudget: 16 * 1024, Fanout: 4,
		FileSize: 8 * 1024, LevelSizeBase: 32 * 1024,
	}
}

func openSmall(t *testing.T, e EngineKind) *DB {
	t.Helper()
	db, err := Open("db", smallOpts(e, vfs.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var allEngines = []EngineKind{IAM, LSA, LevelDB, RocksDB}

func TestPutGetDeleteAllEngines(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			db := openSmall(t, e)
			defer db.Close()
			if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			v, err := db.Get([]byte("k1"))
			if err != nil || string(v) != "v1" {
				t.Fatalf("get: %q %v", v, err)
			}
			if _, err := db.Get([]byte("missing")); err != ErrNotFound {
				t.Fatalf("missing: %v", err)
			}
			if err := db.Delete([]byte("k1")); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get([]byte("k1")); err != ErrNotFound {
				t.Fatalf("after delete: %v", err)
			}
		})
	}
}

func TestWriteBatchAtomicVisibility(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	var b Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	b.Delete([]byte("k050"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k050")); err != ErrNotFound {
		t.Fatal("delete in batch should win (later op)")
	}
	if v, err := db.Get([]byte("k099")); err != nil || string(v) != "v" {
		t.Fatalf("k099: %q %v", v, err)
	}
	if b.Len() != 101 {
		t.Fatalf("len %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLargeLoadAndReadBack(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			db := openSmall(t, e)
			defer db.Close()
			rng := rand.New(rand.NewSource(42))
			ref := make(map[string]string)
			for i := 0; i < 5000; i++ {
				k := fmt.Sprintf("user%06d", rng.Intn(8000))
				v := fmt.Sprintf("val-%d", i)
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				ref[k] = v
			}
			for k, v := range ref {
				got, err := db.Get([]byte(k))
				if err != nil || string(got) != v {
					t.Fatalf("get %s: %q %v want %q", k, got, err, v)
				}
			}
		})
	}
}

func TestIteratorHidesVersionsAndTombstones(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("old"))
	}
	for i := 0; i < 500; i += 2 {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("new"))
	}
	for i := 100; i < 200; i++ {
		db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	it := db.NewIterator()
	defer it.Close()
	count := 0
	for it.First(); it.Valid(); it.Next() {
		k := string(it.Key())
		var want string
		if k[1] == '0' && (k >= "k0100" && k < "k0200") {
			t.Fatalf("deleted key %s visible", k)
		}
		n := 0
		fmt.Sscanf(k, "k%d", &n)
		if n%2 == 0 {
			want = "new"
		} else {
			want = "old"
		}
		if string(it.Value()) != want {
			t.Fatalf("%s = %q want %q", k, it.Value(), want)
		}
		count++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if count != 400 {
		t.Fatalf("iterated %d keys want 400", count)
	}
}

func TestIteratorSeekAndRangeScan(t *testing.T) {
	db := openSmall(t, LSA)
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i*3)), []byte("v"))
	}
	it := db.NewIterator()
	defer it.Close()
	it.Seek([]byte("key00100"))
	var got []string
	for n := 0; it.Valid() && n < 3; n++ {
		got = append(got, string(it.Key()))
		it.Next()
	}
	want := "[key00102 key00105 key00108]"
	if fmt.Sprint(got) != want {
		t.Fatalf("%v want %v", got, want)
	}
	// Scan 100 records YCSB-style.
	it.Seek([]byte("key01000"))
	n := 0
	for ; it.Valid() && n < 100; n++ {
		it.Next()
	}
	if n != 100 {
		t.Fatalf("short scan: %d", n)
	}
}

func TestSnapshots(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	snap := db.GetSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("v2"))
	db.Delete([]byte("other"))
	// Churn to force compactions past the snapshot.
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("fill%06d", i)), bytes.Repeat([]byte("x"), 20))
	}
	v, err := snap.Get([]byte("k"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("snapshot get: %q %v", v, err)
	}
	cur, err := db.Get([]byte("k"))
	if err != nil || string(cur) != "v2" {
		t.Fatalf("current get: %q %v", cur, err)
	}
	// Snapshot scan must not see fill keys.
	it := snap.NewIterator()
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("snapshot scan saw %d keys want 1", n)
	}
	// Release allows reclamation; second release is a no-op.
	snap.Release()
	snap.Release()
}

func TestCrashRecoveryFromWAL(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			fs := vfs.NewMemFS()
			db, err := Open("db", smallOpts(e, fs))
			if err != nil {
				t.Fatal(err)
			}
			ref := make(map[string]string)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("user%05d", rng.Intn(3000))
				v := fmt.Sprintf("v%d", i)
				db.Put([]byte(k), []byte(v))
				ref[k] = v
			}
			db.Delete([]byte("user00001"))
			delete(ref, "user00001")
			// Simulate a crash: close without flushing memtables
			// (Close does not flush), then reopen and replay the WAL.
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := Open("db", smallOpts(e, fs))
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			for k, v := range ref {
				got, err := db2.Get([]byte(k))
				if err != nil || string(got) != v {
					t.Fatalf("after recovery %s: %q %v want %q", k, got, err, v)
				}
			}
			if _, err := db2.Get([]byte("user00001")); err != ErrNotFound {
				t.Fatal("tombstone lost in recovery")
			}
		})
	}
}

func TestRecoveryWithTornWALTail(t *testing.T) {
	fs := vfs.NewMemFS()
	db, _ := Open("db", smallOpts(IAM, fs))
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	db.Close()
	// Tear the live WAL's tail.
	names, _ := fs.List("db")
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".log" {
			f, _ := fs.Open("db/" + n)
			if size, _ := f.Size(); size > 10 {
				f.Truncate(size - 7)
			}
			f.Close()
		}
	}
	db2, err := Open("db", smallOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Early records must survive; only the torn tail may be lost.
	if _, err := db2.Get([]byte("k000")); err != nil {
		t.Fatalf("k000 lost: %v", err)
	}
	if _, err := db2.Get([]byte("k050")); err != nil {
		t.Fatalf("k050 lost: %v", err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2500; i++ {
				db.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), []byte("v"))
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(3))
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.Get([]byte(fmt.Sprintf("w0-%06d", rng.Intn(2500))))
				it := db.NewIterator()
				it.Seek([]byte("w1-"))
				for n := 0; it.Valid() && n < 20; n++ {
					it.Next()
				}
				it.Close()
			}
		}()
	}
	// Stop readers once the last write becomes visible.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		v, err := db.Get([]byte("w1-002499"))
		if err == nil && string(v) == "v" {
			break
		}
	}
	close(stop)
	<-done
	// Verify integrity.
	for w := 0; w < 2; w++ {
		for i := 0; i < 2500; i += 97 {
			if _, err := db.Get([]byte(fmt.Sprintf("w%d-%06d", w, i))); err != nil {
				t.Fatalf("w%d-%06d: %v", w, i, err)
			}
		}
	}
}

func TestMetricsAndWriteAmp(t *testing.T) {
	db := openSmall(t, RocksDB)
	defer db.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4000; i++ {
		db.Put([]byte(fmt.Sprintf("user%08d", rng.Intn(1<<30))), bytes.Repeat([]byte("v"), 30))
	}
	db.CompactAll()
	m := db.Metrics()
	if m.UserBytes == 0 || m.SpaceUsed == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	if amp := m.WriteAmplification(); amp < 1 || amp > 100 {
		t.Fatalf("write amp %.2f implausible", amp)
	}
	if len(m.Levels) == 0 {
		t.Fatal("no level info")
	}
}

func TestMixedLevelExposed(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("x"), 20))
	}
	m, k := db.MixedLevel()
	if m < 1 || k < 1 {
		t.Fatalf("mixed level %d/%d", m, k)
	}
	db2 := openSmall(t, LevelDB)
	defer db2.Close()
	if m, k := db2.MixedLevel(); m != 0 || k != 0 {
		t.Fatal("baselines have no mixed level")
	}
}

func TestUseAfterClose(t *testing.T) {
	db := openSmall(t, IAM)
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k2"), []byte("v")); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("get after close: %v", err)
	}
	if err := db.Close(); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyBatchAndEmptyDB(t *testing.T) {
	db := openSmall(t, LSA)
	defer db.Close()
	var b Batch
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	it := db.NewIterator()
	defer it.Close()
	it.First()
	if it.Valid() {
		t.Fatal("empty DB iterator valid")
	}
	if _, err := db.Get([]byte("any")); err != ErrNotFound {
		t.Fatal(err)
	}
}

func TestOverwriteHeavyWorkload(t *testing.T) {
	// The overwrite pattern of Fig. 10: constant updates of a fixed
	// keyspace; engines must keep only live data findable.
	for _, e := range []EngineKind{IAM, LSA, RocksDB} {
		t.Run(e.String(), func(t *testing.T) {
			db := openSmall(t, e)
			defer db.Close()
			const keys = 300
			for round := 0; round < 20; round++ {
				for i := 0; i < keys; i++ {
					db.Put([]byte(fmt.Sprintf("k%04d", i)),
						[]byte(fmt.Sprintf("round%02d", round)))
				}
			}
			for i := 0; i < keys; i++ {
				v, err := db.Get([]byte(fmt.Sprintf("k%04d", i)))
				if err != nil || string(v) != "round19" {
					t.Fatalf("k%04d: %q %v", i, v, err)
				}
			}
		})
	}
}

func TestValuesOfVaryingSizes(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	sizes := []int{0, 1, 100, 1024, 4096, 40000}
	for _, n := range sizes {
		key := []byte(fmt.Sprintf("size%06d", n))
		val := bytes.Repeat([]byte("z"), n)
		if err := db.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	db.CompactAll()
	for _, n := range sizes {
		v, err := db.Get([]byte(fmt.Sprintf("size%06d", n)))
		if err != nil || len(v) != n {
			t.Fatalf("size %d: got %d bytes, err %v", n, len(v), err)
		}
	}
}

func TestOSFilesystemPersistence(t *testing.T) {
	// Everything else runs on MemFS; this test covers the real-OS
	// path: reopen across "process restarts", positioned writes into
	// reopened tables, manifest rewrite on open.
	dir := t.TempDir()
	opts := &Options{Engine: IAM, MemtableSize: 16 * 1024, CacheSize: 128 * 1024}
	ref := map[string]string{}
	for restart := 0; restart < 3; restart++ {
		db, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("restart %d open: %v", restart, err)
		}
		for i := 0; i < 1500; i++ {
			k := fmt.Sprintf("k%05d", (restart*997+i)%2000)
			v := fmt.Sprintf("r%d-%d", restart, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		}
		for k, v := range ref {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("restart %d: %s = %q (%v) want %q", restart, k, got, err, v)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompressionOption(t *testing.T) {
	fs := vfs.NewMemFS()
	opts := smallOpts(IAM, fs)
	opts.Compression = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Compressible payloads round-trip through flush and compaction.
	val := bytes.Repeat([]byte("the-same-phrase-"), 32)
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	db.CompactAll()
	compressed := db.Metrics().SpaceUsed
	for i := 0; i < 2000; i += 111 {
		v, err := db.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	db.Close()

	// Same data uncompressed occupies much more space.
	fs2 := vfs.NewMemFS()
	db2, err := Open("db", smallOpts(IAM, fs2))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 2000; i++ {
		db2.Put([]byte(fmt.Sprintf("k%05d", i)), val)
	}
	db2.CompactAll()
	plain := db2.Metrics().SpaceUsed
	if compressed*2 >= plain {
		t.Fatalf("compression saved too little: %d vs %d", compressed, plain)
	}
	// Reopening a compressed store works.
	db3, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if v, err := db3.Get([]byte("k00042")); err != nil || !bytes.Equal(v, val) {
		t.Fatalf("reopen compressed: %v", err)
	}
}

func TestFlushAndApproximateSize(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte("x"), 100))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := db.ApproximateSize([]byte("k00000"), []byte("k01999"))
	if whole <= 0 {
		t.Fatal("no size after flush")
	}
	// Roughly half the keyspace should be roughly half the bytes.
	half := db.ApproximateSize([]byte("k00000"), []byte("k00999"))
	frac := float64(half) / float64(whole)
	if frac < 0.25 || frac > 0.75 {
		t.Fatalf("half-range fraction %.2f implausible (%d / %d)", frac, half, whole)
	}
	// Disjoint empty range.
	if n := db.ApproximateSize([]byte("zz"), []byte("zzz")); n != 0 {
		t.Fatalf("empty range sized %d", n)
	}
	// Flush on an empty memtable is a no-op.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}
