package kv

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPackUnpackTrailer(t *testing.T) {
	cases := []struct {
		seq  Seq
		kind Kind
	}{
		{0, KindDelete},
		{0, KindSet},
		{1, KindSet},
		{MaxSeq, KindSet},
		{MaxSeq, KindDelete},
		{123456789, KindSet},
	}
	for _, c := range cases {
		s, k := UnpackTrailer(PackTrailer(c.seq, c.kind))
		if s != c.seq || k != c.kind {
			t.Errorf("round trip (%d,%v) got (%d,%v)", c.seq, c.kind, s, k)
		}
	}
}

func TestPackTrailerQuick(t *testing.T) {
	f := func(seq uint64, kindBit bool) bool {
		seq &= uint64(MaxSeq)
		kind := KindDelete
		if kindBit {
			kind = KindSet
		}
		s, k := UnpackTrailer(PackTrailer(Seq(seq), kind))
		return s == Seq(seq) && k == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeParseInternalKey(t *testing.T) {
	ik := MakeInternalKey([]byte("hello"), 42, KindSet)
	u, s, k, ok := ParseInternalKey(ik)
	if !ok {
		t.Fatal("parse failed")
	}
	if string(u) != "hello" || s != 42 || k != KindSet {
		t.Fatalf("got %q %d %v", u, s, k)
	}
	if string(UserKey(ik)) != "hello" {
		t.Fatalf("UserKey got %q", UserKey(ik))
	}
	if SeqOf(ik) != 42 || KindOf(ik) != KindSet {
		t.Fatalf("SeqOf/KindOf got %d %v", SeqOf(ik), KindOf(ik))
	}
}

func TestParseInternalKeyErrors(t *testing.T) {
	if _, _, _, ok := ParseInternalKey([]byte("short")); ok {
		t.Error("short key parsed")
	}
	bad := MakeInternalKey([]byte("k"), 1, Kind(9))
	if _, _, _, ok := ParseInternalKey(bad); ok {
		t.Error("unknown kind parsed")
	}
	// Empty user key with a valid trailer is legal.
	ik := MakeInternalKey(nil, 7, KindDelete)
	u, s, k, ok := ParseInternalKey(ik)
	if !ok || len(u) != 0 || s != 7 || k != KindDelete {
		t.Errorf("empty ukey parse: %v %q %d %v", ok, u, s, k)
	}
}

func TestCompareInternalOrdering(t *testing.T) {
	// Same user key: higher seq sorts first.
	a := MakeInternalKey([]byte("k"), 10, KindSet)
	b := MakeInternalKey([]byte("k"), 5, KindSet)
	if CompareInternal(a, b) >= 0 {
		t.Error("newer seq should sort before older")
	}
	// Same seq: KindSet (1) sorts before KindDelete (0).
	c := MakeInternalKey([]byte("k"), 5, KindSet)
	d := MakeInternalKey([]byte("k"), 5, KindDelete)
	if CompareInternal(c, d) >= 0 {
		t.Error("set should sort before delete at equal seq")
	}
	// Different user keys dominate.
	e := MakeInternalKey([]byte("a"), 1, KindSet)
	f := MakeInternalKey([]byte("b"), 100, KindSet)
	if CompareInternal(e, f) >= 0 {
		t.Error("user key must dominate")
	}
	if CompareInternal(a, a) != 0 {
		t.Error("key not equal to itself")
	}
}

func TestCompareInternalSortConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var keys [][]byte
	for i := 0; i < 500; i++ {
		u := make([]byte, 1+rng.Intn(6))
		for j := range u {
			u[j] = byte('a' + rng.Intn(4))
		}
		keys = append(keys, MakeInternalKey(u, Seq(rng.Intn(100)), Kind(rng.Intn(2))))
	}
	sort.Slice(keys, func(i, j int) bool { return CompareInternal(keys[i], keys[j]) < 0 })
	for i := 1; i < len(keys); i++ {
		if CompareInternal(keys[i-1], keys[i]) > 0 {
			t.Fatalf("not sorted at %d", i)
		}
		ua, ub := UserKey(keys[i-1]), UserKey(keys[i])
		if bytes.Equal(ua, ub) && SeqOf(keys[i-1]) < SeqOf(keys[i]) {
			t.Fatalf("within user key %q: seq %d before %d", ua, SeqOf(keys[i-1]), SeqOf(keys[i]))
		}
	}
}

func TestAppendInternalKeyReuse(t *testing.T) {
	buf := make([]byte, 0, 64)
	buf = AppendInternalKey(buf, []byte("x"), 1, KindSet)
	n := len(buf)
	buf = AppendInternalKey(buf, []byte("y"), 2, KindDelete)
	u, s, k, ok := ParseInternalKey(buf[n:])
	if !ok || string(u) != "y" || s != 2 || k != KindDelete {
		t.Fatalf("second key corrupt: %v %q %d %v", ok, u, s, k)
	}
}

func TestInternalKeyString(t *testing.T) {
	s := InternalKeyString(MakeInternalKey([]byte("k"), 3, KindSet))
	if s != `"k"@3:set` {
		t.Errorf("got %s", s)
	}
	if InternalKeyString([]byte{1}) == "" {
		t.Error("bad key should still render")
	}
}

func TestRangeBasics(t *testing.T) {
	var empty Range
	if !empty.Empty() || empty.Contains([]byte("a")) {
		t.Error("zero range must be empty and contain nothing")
	}
	r := MakeRange([]byte("m"), []byte("c")) // reversed order
	if string(r.Lo) != "c" || string(r.Hi) != "m" {
		t.Fatalf("MakeRange did not normalize: %v", r)
	}
	for _, k := range []string{"c", "f", "m"} {
		if !r.Contains([]byte(k)) {
			t.Errorf("%q should be inside %v", k, r)
		}
	}
	for _, k := range []string{"b", "n", ""} {
		if r.Contains([]byte(k)) {
			t.Errorf("%q should be outside %v", k, r)
		}
	}
}

func TestRangeOverlapsBefore(t *testing.T) {
	a := MakeRange([]byte("c"), []byte("g"))
	b := MakeRange([]byte("g"), []byte("k"))
	c := MakeRange([]byte("h"), []byte("k"))
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("touching ranges overlap (closed intervals)")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint ranges must not overlap")
	}
	if !a.Before(c) {
		t.Error("a sorts before c")
	}
	if a.Before(b) {
		t.Error("a touches b, not strictly before")
	}
	var empty Range
	if a.Overlaps(empty) || empty.Overlaps(a) || empty.Before(a) || a.Before(empty) {
		t.Error("empty range neither overlaps nor orders")
	}
}

func TestRangeExtendUnion(t *testing.T) {
	var r Range
	r = r.Extend([]byte("m"))
	if string(r.Lo) != "m" || string(r.Hi) != "m" {
		t.Fatalf("extend empty: %v", r)
	}
	r = r.Extend([]byte("c"))
	r = r.Extend([]byte("x"))
	r = r.Extend([]byte("p")) // inside, no-op
	if string(r.Lo) != "c" || string(r.Hi) != "x" {
		t.Fatalf("extend: %v", r)
	}
	u := r.Union(MakeRange([]byte("a"), []byte("b")))
	if string(u.Lo) != "a" || string(u.Hi) != "x" {
		t.Fatalf("union: %v", u)
	}
	if got := r.Union(Range{}); !bytes.Equal(got.Lo, r.Lo) || !bytes.Equal(got.Hi, r.Hi) {
		t.Error("union with empty is identity")
	}
}

func TestRangePropertyExtendContains(t *testing.T) {
	f := func(keys [][]byte, probe []byte) bool {
		var r Range
		for _, k := range keys {
			r = r.Extend(k)
		}
		for _, k := range keys {
			if !r.Contains(k) {
				return false
			}
		}
		// Union is commutative with Extend-built ranges.
		var r2 Range
		for i := len(keys) - 1; i >= 0; i-- {
			r2 = r2.Extend(keys[i])
		}
		return r.Union(r2).String() == r.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
