package histogram

import (
	"testing"
	"time"
)

// TestSub pins interval subtraction: counts and sums are exact, the
// interval percentiles reflect only the later observations, and the
// approximated extrema stay within a bucket of truth.
func TestSub(t *testing.T) {
	h := New()
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)
	prevSnap := New()
	prevSnap.Merge(h)

	h.Record(time.Second)
	h.Record(time.Second)
	h.Record(2 * time.Second)

	d := h.Sub(prevSnap)
	if d.Count() != 3 {
		t.Fatalf("interval count = %d, want 3", d.Count())
	}
	if want := 4 * time.Second / 3; d.Mean() < want*9/10 || d.Mean() > want*11/10 {
		t.Errorf("interval mean = %v, want ≈%v", d.Mean(), want)
	}
	// The millisecond-scale samples belong to prev: interval p50 must be
	// second-scale.
	if p50 := d.Percentile(0.5); p50 < 500*time.Millisecond {
		t.Errorf("interval p50 = %v, old samples leaked in", p50)
	}
	if d.Max() < time.Second || d.Max() > 3*time.Second {
		t.Errorf("interval max ≈ %v, want within a bucket of 2s", d.Max())
	}
	// Subtracting a histogram from itself yields the empty interval.
	z := h.Sub(h)
	if z.Count() != 0 || z.Percentile(0.99) != 0 {
		t.Errorf("self-sub: count=%d p99=%v, want zeros", z.Count(), z.Percentile(0.99))
	}
}

// TestSummaryP999 pins the Summary digest fields, P999 included — the
// stability experiment scores worst-window p99.9.
func TestSummaryP999(t *testing.T) {
	h := New()
	for i := 0; i < 999; i++ {
		h.Record(time.Millisecond)
	}
	h.Record(time.Second)
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("summary count = %d", s.Count)
	}
	if s.P50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ≈1ms", s.P50)
	}
	if s.P999 < 500*time.Millisecond {
		t.Errorf("p999 = %v, want ≈1s (single outlier must surface)", s.P999)
	}
	if s.P99 > s.P999 {
		t.Errorf("p99 %v > p999 %v", s.P99, s.P999)
	}
	if s.Max < s.P999 {
		t.Errorf("max %v below p999 %v", s.Max, s.P999)
	}
}
