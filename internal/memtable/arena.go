package memtable

import "sync/atomic"

// The arena carves node structs and key/value bytes out of chunked
// slabs with atomic bump-pointer allocation, so concurrent Add callers
// never contend on a lock and the skiplist's nodes stay dense in
// memory.  Chunks are append-only: once a byte range or node slot is
// handed out it is written exactly once by its allocator and then
// published to readers through an atomic pointer CAS, which is the
// happens-before edge that makes the write-once contents safe to read
// without synchronization.
//
// A chunk that fills up is replaced by CAS-installing a fresh one; the
// loser of a racing install simply retries against the winner's chunk.
// The tail of a replaced chunk is wasted, which is fine: chunks are
// large relative to records and the memtable's lifetime is bounded by
// its capacity threshold Ct.

const (
	// byteChunkSize is the slab size for key/value bytes.  Values
	// larger than a slab get a dedicated chunk of their exact size.
	byteChunkSize = 64 << 10
	// nodeChunkLen is the number of skiplist nodes per slab.
	nodeChunkLen = 256
)

type byteChunk struct {
	buf []byte
	off atomic.Int64
}

type nodeChunk struct {
	nodes []node
	off   atomic.Int64
}

type arena struct {
	bytes atomic.Pointer[byteChunk]
	nodes atomic.Pointer[nodeChunk]
}

func newArena() *arena {
	a := &arena{}
	a.bytes.Store(&byteChunk{buf: make([]byte, byteChunkSize)})
	a.nodes.Store(&nodeChunk{nodes: make([]node, nodeChunkLen)})
	return a
}

// alloc returns a fresh, zeroed n-byte slice carved from the arena.
// The slice is full-length and capacity-capped so appends can never
// bleed into a neighbouring allocation.
func (a *arena) alloc(n int) []byte {
	for {
		c := a.bytes.Load()
		end := c.off.Add(int64(n))
		if end <= int64(len(c.buf)) {
			return c.buf[end-int64(n) : end : end]
		}
		size := byteChunkSize
		if n > size {
			size = n
		}
		a.bytes.CompareAndSwap(c, &byteChunk{buf: make([]byte, size)})
	}
}

// newNode returns a pointer to a fresh, zeroed node.
func (a *arena) newNode() *node {
	for {
		c := a.nodes.Load()
		i := c.off.Add(1) - 1
		if i < int64(len(c.nodes)) {
			return &c.nodes[i]
		}
		a.nodes.CompareAndSwap(c, &nodeChunk{nodes: make([]node, nodeChunkLen)})
	}
}
