package lsm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"iamdb/internal/cache"
	"iamdb/internal/kv"
	"iamdb/internal/memtable"
	"iamdb/internal/vfs"
)

func testDB(t *testing.T, p Profile) *DB {
	t.Helper()
	d, err := Open(Config{
		FS: vfs.NewMemFS(), Dir: "db", Cache: cache.New(1 << 20),
		FileSize: 8 * 1024, LevelSizeBase: 40 * 1024, Fanout: 10,
		L0CompactTrigger: 4, Profile: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

type loader struct {
	t   *testing.T
	d   *DB
	mt  *memtable.MemTable
	seq kv.Seq
}

func newLoader(t *testing.T, d *DB) *loader {
	return &loader{t: t, d: d, mt: memtable.New()}
}

func (l *loader) put(key, val string) {
	l.seq++
	l.mt.Add(l.seq, kv.KindSet, []byte(key), []byte(val))
	if l.mt.ApproximateSize() >= 8*1024 {
		l.flush()
	}
}

func (l *loader) del(key string) {
	l.seq++
	l.mt.Add(l.seq, kv.KindDelete, []byte(key), nil)
	if l.mt.ApproximateSize() >= 8*1024 {
		l.flush()
	}
}

func (l *loader) flush() {
	if l.mt.Empty() {
		return
	}
	if err := l.d.Flush(l.mt.NewIter()); err != nil {
		l.t.Fatal(err)
	}
	l.mt = memtable.New()
	// Emulate the DB layer's background worker: run compactions the
	// engine's own trigger policy asks for (the LevelDB profile defers
	// size compactions until overflow, RocksDB compacts strictly).
	for {
		did, err := l.d.WorkStep()
		if err != nil {
			l.t.Fatal(err)
		}
		if !did {
			break
		}
	}
}

func checkGet(t *testing.T, d *DB, key, want string) {
	t.Helper()
	v, kind, _, found, err := d.Get([]byte(key), kv.MaxSeq)
	if err != nil {
		t.Fatalf("get %s: %v", key, err)
	}
	if want == "" {
		if found && kind != kv.KindDelete {
			t.Fatalf("get %s: found %q want absent", key, v)
		}
		return
	}
	if !found || kind != kv.KindSet || string(v) != want {
		t.Fatalf("get %s: %q/%v/%v want %q", key, v, kind, found, want)
	}
}

func TestFlushAndGet(t *testing.T) {
	d := testDB(t, ProfileRocksDB)
	defer d.Close()
	l := newLoader(t, d)
	l.put("a", "1")
	l.put("b", "2")
	l.flush()
	checkGet(t, d, "a", "1")
	checkGet(t, d, "b", "2")
	checkGet(t, d, "c", "")
	if lv := d.Levels(); lv[0].Nodes != 1 {
		t.Fatalf("L0: %+v", lv)
	}
}

func TestL0CompactionMergesOverlaps(t *testing.T) {
	d := testDB(t, ProfileRocksDB)
	defer d.Close()
	l := newLoader(t, d)
	// Several overlapping memtables, same keyspace.
	for round := 0; round < 6; round++ {
		for i := 0; i < 100; i++ {
			l.put(fmt.Sprintf("k%04d", i), fmt.Sprintf("r%d", round))
		}
		l.flush()
	}
	if err := d.DrainCompactions(); err != nil {
		t.Fatal(err)
	}
	lv := d.Levels()
	if lv[0].Nodes >= 4 {
		t.Fatalf("L0 should have compacted: %+v", lv)
	}
	checkGet(t, d, "k0050", "r5")
	st := d.Stats()
	if st.Merges == 0 {
		t.Error("expected merges")
	}
}

func loadRandom(t *testing.T, d *DB, n int, seed int64) map[string]string {
	t.Helper()
	l := newLoader(t, d)
	rng := rand.New(rand.NewSource(seed))
	ref := make(map[string]string)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user%06d", rng.Intn(n*2))
		v := fmt.Sprintf("val%d", i)
		ref[k] = v
		l.put(k, v)
	}
	l.flush()
	return ref
}

func TestRandomLoadBothProfiles(t *testing.T) {
	for _, p := range []Profile{ProfileLevelDB, ProfileRocksDB} {
		t.Run(p.String(), func(t *testing.T) {
			d := testDB(t, p)
			defer d.Close()
			ref := loadRandom(t, d, 4000, 11)
			keys := make([]string, 0, len(ref))
			for k := range ref {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				checkGet(t, d, k, ref[k])
			}
			// Scan agrees with reference.
			it := d.NewIter()
			defer it.Close()
			got := map[string]string{}
			for it.First(); it.Valid(); it.Next() {
				u, _, kind, _ := kv.ParseInternalKey(it.Key())
				if _, seen := got[string(u)]; !seen && kind == kv.KindSet {
					got[string(u)] = string(it.Value())
				}
			}
			for k, v := range ref {
				if got[k] != v {
					t.Fatalf("scan %s: %q want %q", k, got[k], v)
				}
			}
		})
	}
}

func TestLevelDBOverflowsRocksDBDoesNot(t *testing.T) {
	over := func(p Profile) int64 {
		d := testDB(t, p)
		defer d.Close()
		loadRandom(t, d, 12000, 13)
		// Measure overflow without settling.
		var overflow int64
		d.mu.Lock()
		for i := 1; i < len(d.levels)-1; i++ {
			if o := d.levelBytes(i) - d.threshold(i); o > 0 {
				overflow += o
			}
		}
		d.mu.Unlock()
		return overflow
	}
	lOver, rOver := over(ProfileLevelDB), over(ProfileRocksDB)
	if lOver <= rOver {
		t.Errorf("LevelDB profile overflow (%d) should exceed RocksDB's (%d)", lOver, rOver)
	}
}

func TestRocksDBHigherWriteAmp(t *testing.T) {
	amp := func(p Profile) float64 {
		d := testDB(t, p)
		defer d.Close()
		l := newLoader(t, d)
		rng := rand.New(rand.NewSource(17))
		var user int64
		// Large enough to span 3+ levels: the overflow effect pays off
		// in the deep levels (Sec. 6.2), exactly as in Table 4.
		for i := 0; i < 50000; i++ {
			k := fmt.Sprintf("user%08d", rng.Intn(1<<30))
			v := "value-value-value-value-value-value"
			l.put(k, v)
			user += int64(len(k) + len(v))
		}
		l.flush()
		return float64(d.Stats().TotalFlushBytes()) / float64(user)
	}
	lAmp, rAmp := amp(ProfileLevelDB), amp(ProfileRocksDB)
	if rAmp <= lAmp {
		t.Errorf("RocksDB write amp (%.2f) should exceed LevelDB's (%.2f) (overflow effect)", rAmp, lAmp)
	}
}

func TestDeleteThroughCompaction(t *testing.T) {
	d := testDB(t, ProfileRocksDB)
	defer d.Close()
	l := newLoader(t, d)
	for i := 0; i < 500; i++ {
		l.put(fmt.Sprintf("k%04d", i), "v")
	}
	for i := 0; i < 250; i++ {
		l.del(fmt.Sprintf("k%04d", i*2))
	}
	l.flush()
	if err := d.DrainCompactions(); err != nil {
		t.Fatal(err)
	}
	checkGet(t, d, "k0000", "")
	checkGet(t, d, "k0001", "v")
	checkGet(t, d, "k0498", "")
	checkGet(t, d, "k0499", "v")
}

func TestSequentialLoadUsesTrivialMoves(t *testing.T) {
	d := testDB(t, ProfileRocksDB)
	defer d.Close()
	l := newLoader(t, d)
	for i := 0; i < 8000; i++ {
		l.put(fmt.Sprintf("seq%08d", i), "valuevaluevalue")
	}
	l.flush()
	if d.Stats().Moves == 0 {
		t.Error("sequential load should use trivial moves")
	}
}

func TestStallLevels(t *testing.T) {
	d := testDB(t, ProfileLevelDB)
	defer d.Close()
	// Flood L0 without running any background work.
	mt := memtable.New()
	seq := kv.Seq(0)
	for f := 0; f < 13; f++ {
		for i := 0; i < 60; i++ {
			seq++
			mt.Add(seq, kv.KindSet, []byte(fmt.Sprintf("k%d-%d", f, i)), []byte("0123456789012345678901234567890123456789"))
		}
		if err := d.Flush(mt.NewIter()); err != nil {
			t.Fatal(err)
		}
		mt = memtable.New()
	}
	if d.StallLevel() != 2 {
		t.Fatalf("13 L0 files should stop writes, got %d", d.StallLevel())
	}
	// Draining clears the stall.
	if err := d.DrainCompactions(); err != nil {
		t.Fatal(err)
	}
	if d.StallLevel() != 0 {
		t.Fatalf("stall after drain: %d", d.StallLevel())
	}
}

func TestReopen(t *testing.T) {
	fs := vfs.NewMemFS()
	cfg := Config{FS: fs, Dir: "db", FileSize: 8 * 1024, LevelSizeBase: 40 * 1024,
		L0CompactTrigger: 4, Profile: ProfileRocksDB}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(t, d)
	ref := loadRef(l, 3000, 23)
	d.SetLogMeta(l.seq, 9)
	want := fmt.Sprint(d.Levels())
	d.Close()

	d2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := fmt.Sprint(d2.Levels()); got != want {
		t.Fatalf("levels across reopen:\n%s\n%s", want, got)
	}
	seq, logNum := d2.LogMeta()
	if seq != l.seq || logNum != 9 {
		t.Fatalf("log meta %d/%d", seq, logNum)
	}
	for k, v := range ref {
		checkGet(t, d2, k, v)
	}
}

func loadRef(l *loader, n int, seed int64) map[string]string {
	rng := rand.New(rand.NewSource(seed))
	ref := make(map[string]string)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user%06d", rng.Intn(n*2))
		v := fmt.Sprintf("val%d", i)
		ref[k] = v
		l.put(k, v)
	}
	l.flush()
	return ref
}

func TestSnapshotReadAfterCompaction(t *testing.T) {
	d := testDB(t, ProfileRocksDB)
	defer d.Close()
	l := newLoader(t, d)
	l.put("key", "old")
	l.flush()
	snap := l.seq
	d.SetHorizon(snap)
	for i := 0; i < 3000; i++ {
		l.put("key", fmt.Sprintf("new%d", i))
		l.put(fmt.Sprintf("fill%06d", i), "x")
	}
	l.flush()
	d.DrainCompactions()
	v, _, _, found, err := d.Get([]byte("key"), snap)
	if err != nil || !found || string(v) != "old" {
		t.Fatalf("snapshot read: %q %v %v", v, found, err)
	}
	checkGet(t, d, "key", "new2999")
}
