// Package ycsb generates the paper's benchmark workloads: the YCSB
// core workloads A–F, the paper's added long-scan workload G
// (Sec. 6.5), and the hash load used to populate the stores (Sec. 6.2).
//
// Request distributions follow the YCSB reference implementation:
// scrambled-zipfian (theta 0.99) for A/B/C/E/F/G, latest for D,
// ordered-by-hash keys for the load phase.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType classifies one generated operation.
type OpType int

const (
	// OpRead is a point lookup of an existing key.
	OpRead OpType = iota
	// OpUpdate overwrites an existing key.
	OpUpdate
	// OpInsert writes a brand-new key.
	OpInsert
	// OpScan is a range scan of ScanLen records from Key.
	OpScan
	// OpRMW reads a key then writes it back (workload F).
	OpRMW
)

func (o OpType) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	default:
		return "?"
	}
}

// Op is one generated operation.
type Op struct {
	Type    OpType
	Key     []byte
	ScanLen int
}

// KeyName renders record number i as a YCSB key: "user" plus the
// FNV-64a hash of i, zero-padded.  Hash ordering is what makes the
// load phase a "hash load" — inserts arrive in key-scattered order
// with no collisions.
func KeyName(i uint64) []byte {
	return []byte(fmt.Sprintf("user%019d", fnv64(i)))
}

// OrderedKeyName renders record i in key order (for fillseq).
func OrderedKeyName(i uint64) []byte {
	return []byte(fmt.Sprintf("user%019d", i))
}

func fnv64(v uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return h
}

// zipfian implements the Gray et al. bounded zipfian generator used by
// YCSB, with incremental zeta growth for expanding key spaces.
type zipfian struct {
	items        uint64
	theta        float64
	alpha        float64
	zetan        float64
	eta          float64
	zeta2theta   float64
	countForZeta uint64
}

const zipfTheta = 0.99

func newZipfian(items uint64) *zipfian {
	z := &zipfian{items: items, theta: zipfTheta}
	z.zeta2theta = zetaStatic(2, zipfTheta)
	z.alpha = 1.0 / (1.0 - zipfTheta)
	z.zetan = zetaStatic(items, zipfTheta)
	z.countForZeta = items
	z.eta = z.etaOf()
	return z
}

func (z *zipfian) etaOf() float64 {
	return (1 - math.Pow(2.0/float64(z.items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

func zetaStatic(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// grow extends the item count, updating zeta incrementally.
func (z *zipfian) grow(items uint64) {
	if items <= z.countForZeta {
		z.items = z.countForZeta
		return
	}
	for i := z.countForZeta + 1; i <= items; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.countForZeta = items
	z.items = items
	z.eta = z.etaOf()
}

// next draws a rank in [0, items).
func (z *zipfian) next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Workload is a named operation mix.
type Workload struct {
	Name                                            string
	ReadProp, UpdateProp, InsertProp, ScanProp, RMW float64
	MaxScanLen                                      int
	// Latest selects the YCSB "latest" distribution (workload D);
	// otherwise requests are scrambled-zipfian.
	Latest bool
}

// Standard workloads: A–F per the YCSB core definitions quoted in
// Sec. 6.3–6.5, plus the paper's G (95/5 scans up to 10,000 records).
var (
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5}
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05}
	WorkloadC = Workload{Name: "C", ReadProp: 1.0}
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Latest: true}
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, MaxScanLen: 100}
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMW: 0.5}
	WorkloadG = Workload{Name: "G", ScanProp: 0.95, InsertProp: 0.05, MaxScanLen: 10000}
)

// ByName returns the named workload (A–G).
func ByName(name string) (Workload, bool) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC,
		WorkloadD, WorkloadE, WorkloadF, WorkloadG} {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Runner draws operations for one workload over a keyspace of
// recordCount pre-loaded records (inserts extend it).
type Runner struct {
	w           Workload
	rng         *rand.Rand
	zipf        *zipfian
	recordCount uint64
	insertSeq   uint64
}

// NewRunner builds a generator; seed fixes the op stream.
func NewRunner(w Workload, recordCount uint64, seed int64) *Runner {
	return &Runner{
		w: w, rng: rand.New(rand.NewSource(seed)),
		zipf:        newZipfian(recordCount),
		recordCount: recordCount,
		insertSeq:   recordCount,
	}
}

// chooseKey picks an existing record per the workload's distribution.
func (r *Runner) chooseKey() []byte {
	if r.w.Latest {
		// Most recent records are hottest.
		rank := r.zipf.next(r.rng)
		idx := r.insertSeq - 1 - rank%r.insertSeq
		return KeyName(idx)
	}
	// Scrambled zipfian: hash the rank to scatter hot keys.
	rank := r.zipf.next(r.rng)
	return KeyName(fnv64(rank) % r.recordCount)
}

// Next draws one operation.
func (r *Runner) Next() Op {
	p := r.rng.Float64()
	w := &r.w
	switch {
	case p < w.ReadProp:
		return Op{Type: OpRead, Key: r.chooseKey()}
	case p < w.ReadProp+w.UpdateProp:
		return Op{Type: OpUpdate, Key: r.chooseKey()}
	case p < w.ReadProp+w.UpdateProp+w.RMW:
		return Op{Type: OpRMW, Key: r.chooseKey()}
	case p < w.ReadProp+w.UpdateProp+w.RMW+w.ScanProp:
		return Op{Type: OpScan, Key: r.chooseKey(),
			ScanLen: 1 + r.rng.Intn(w.MaxScanLen)}
	default:
		key := KeyName(r.insertSeq)
		r.insertSeq++
		r.zipf.grow(r.insertSeq)
		return Op{Type: OpInsert, Key: key}
	}
}

// Value produces a deterministic pseudo-random value of n bytes for
// record key material; the paper uses 1024-byte values (Sec. 6.1).
func Value(rng *rand.Rand, n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('a' + rng.Intn(26))
	}
	return v
}
