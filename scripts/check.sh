#!/usr/bin/env bash
# Pre-PR gate: every check a change must pass before review.
# Run from the repo root:  ./scripts/check.sh
# CHECK_QUICK=1 skips the two slow suites (crash matrix, race run)
# for fast iteration; the full gate is still required before review.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=${CHECK_QUICK:-0}

echo "== gofmt"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== iamlint"
go run ./cmd/iamlint ./...

echo "== iamlint self-test (bad fixtures must fail)"
if go run ./cmd/iamlint \
    ./cmd/iamlint/testdata/lockbad \
    ./cmd/iamlint/testdata/ioerrbad \
    ./cmd/iamlint/testdata/determbad \
    ./cmd/iamlint/testdata/aliasbad \
    ./cmd/iamlint/testdata/atomicpubbad \
    ./cmd/iamlint/testdata/lockorderbad \
    ./cmd/iamlint/testdata/syncorderbad \
    ./cmd/iamlint/testdata/goexitbad >/dev/null 2>&1; then
    echo "iamlint found nothing in the bad fixtures — the analyzer is broken"
    exit 1
fi

echo "== go build -tags invariants"
go build -tags invariants ./...
go test -tags invariants ./internal/invariants/

echo "== metrics smoke test (-tags invariants)"
go test -tags invariants -run TestMetricsSmoke -count=1 .

echo "== hot-path allocation gate"
# A disabled EventListener must add zero allocations per op to Get/Put.
go test -run 'TestInstrumentationZeroAlloc|TestHotPathAllocations' -count=1 .
go test -run TestConcurrentZeroAlloc -count=1 ./internal/histogram/

echo "== commit-pipeline bench smoke"
# One iteration proves the contention benchmark still compiles and
# runs; real numbers come from -benchtime 2s or the iambench
# concurrency experiment below.
go test -bench ConcurrentCommit -benchtime 1x -run '^$' -count=1 .
go run ./cmd/iambench -experiment concurrency -scale small -json .

echo "== sharded front-end gates"
# Routing, cross-shard atomicity, iterators, recovery markers, the
# sharded golden-determinism run, and the scaling smoke: a small
# wall-clock run of the shards experiment whose 4-shard uniform
# throughput must clear 1.5x the single-shard figure (the committed
# medium-scale BENCH_shards.json shows >= 2x).
go test -run TestSharded -count=1 .
shardtmp=$(mktemp -d)
go run ./cmd/iambench -experiment shards -scale small -json "$shardtmp" >/dev/null
python3 - "$shardtmp" <<'EOF'
import json, sys, os
d = sys.argv[1]
blob = json.load(open(os.path.join(d, "BENCH_shards.json")))
assert blob["Meta"]["Schema"] >= 2, "missing run metadata"
assert blob["Header"] == ["keys", "shards", "ops/sec", "speedup"], blob["Header"]
rows = {(r[0], r[1]): float(r[2]) for r in blob["Rows"]}
assert ("skewed", "4") in rows, "skewed-key variant missing"
ratio = rows[("uniform", "4")] / rows[("uniform", "1")]
assert ratio >= 1.5, f"4-shard speedup only {ratio:.2f}x at small scale"
print(f"shards blob OK: 4-shard speedup {ratio:.2f}x over 1 shard")
EOF
rm -rf "$shardtmp"

echo "== observability gates"
# Tracing/timeline units, byte-identical golden determinism, the
# disabled-path allocation gate, and the debug-handler endpoints.
go test -run 'TestGoldenDeterminism|TestTraceSpansPresent|TestDebugHandlers|TestDebugTracesDisabled|TestDebugServerLive|TestObservabilityHotPathZeroAlloc' -count=1 .
go test -count=1 ./internal/trace/ ./internal/metrics/

echo "== stability experiment smoke"
# One benchmark iteration drives the windowed-timeline scorer end to
# end; the emitted BENCH_stability blobs must carry a timeline with
# enough windows to score variance on.
go test -bench Stability -benchtime 1x -run '^$' -count=1 ./internal/harness/
tmpdir=$(mktemp -d)
go run ./cmd/iambench -experiment stability -scale small -json "$tmpdir" >/dev/null
python3 - "$tmpdir" <<'EOF'
import json, sys, os
d = sys.argv[1]
blob = json.load(open(os.path.join(d, "BENCH_stability.json")))
assert blob["Meta"]["Schema"] >= 2, "missing run metadata"
assert any(r.get("Stability") for r in blob["Runs"]), "no stability scores"
tl = json.load(open(os.path.join(d, "BENCH_stability.timeline.json")))
wins = [len(r["Timeline"]) for r in tl["Runs"]]
assert wins and min(wins) >= 50, f"timelines too coarse: {wins}"
print(f"stability blobs OK: {len(wins)} timelines, {min(wins)}-{max(wins)} windows")
EOF
rm -rf "$tmpdir"

echo "== key-value separation gates"
# Value-log unit suite, the DB-level separation tests (with -race: the
# GC worker, commit leader and readers share the log), and a small
# kvsep bench smoke: separated Put throughput at 64 KiB values must
# clear 1.5x inline on every engine (the committed medium-scale
# BENCH_kvsep.json shows >= 2x), and the measured write-byte crossover
# must land within 2x of the closed-form prediction.
go test -count=1 ./internal/vlog/ ./internal/amp/
go test -race -run 'KVSep|Vlog|VLog' -count=1 .
kvtmp=$(mktemp -d)
go run ./cmd/iambench -experiment kvsep -scale small -json "$kvtmp" >/dev/null
python3 - "$kvtmp" <<'EOF'
import json, sys, os
d = sys.argv[1]
blob = json.load(open(os.path.join(d, "BENCH_kvsep.json")))
assert blob["Meta"]["Schema"] >= 2, "missing run metadata"
assert blob["Header"][:5] == ["config", "dist", "value", "mode", "put-ops/s"], blob["Header"]
rows = blob["Rows"]
big = {}
for r in rows:
    if r[2] == "64K" and r[1] == "uniform" and not r[0].endswith("probe"):
        big.setdefault(r[0], {})[r[3]] = float(r[4])
assert big, "no 64K rows"
for cfg, m in big.items():
    ratio = m["sep"] / m["inline"]
    assert ratio >= 1.5, f"{cfg}: separated 64K Put only {ratio:.2f}x inline"
cross = {r[3]: float(r[2]) for r in rows if r[0] == "crossover"}
assert "predicted" in cross and "measured" in cross, "crossover rows missing"
ratio = cross["measured"] / cross["predicted"]
assert 0.5 <= ratio <= 2.0, f"measured crossover {cross['measured']:.0f}B vs predicted {cross['predicted']:.0f}B"
gains = min(m["sep"] / m["inline"] for m in big.values())
print(f"kvsep blob OK: 64K separated >= {gains:.2f}x inline, crossover {cross['measured']:.0f}B vs {cross['predicted']:.0f}B predicted")
EOF
rm -rf "$kvtmp"

if [ "$quick" = "1" ]; then
    echo "CHECK_QUICK=1: skipping crash matrix and race suite."
    echo "All quick checks passed."
    exit 0
fi

echo "== crash matrix (bounded)"
# Systematic crash-point exploration: crash at sampled sync/write
# boundaries of the IAM and LSA engines, reopen, and check the
# durability oracle.  IAMDB_CRASH_FULL=1 runs the exhaustive sweep
# (every op index, all engines, all corruption modes — ~20s).
go test -run Crash -count=1 .

echo "== corruption matrix (bounded)"
# Latent-fault exploration: flip/zero single bytes at ≥100 sampled
# (file, offset) points per engine, reopen, and check the no-wrong-
# bytes oracle (the test itself asserts the point-count floor).
# IAMDB_ROT_FULL=1 sweeps every point, all engines, both modes.
go test -run Corruption -count=1 .

echo "== fuzz smokes"
# Short fuzz bursts over the byte-level decoders: arbitrary input must
# yield typed errors or clean success, never a panic or hang.  The
# checked-in corpora under testdata/fuzz/ replay first.
go test -run '^$' -fuzz FuzzBlockDecode -fuzztime 5s ./internal/block/
go test -run '^$' -fuzz FuzzWALReplay -fuzztime 5s ./internal/wal/
go test -run '^$' -fuzz FuzzTableOpen -fuzztime 5s ./internal/table/
go test -run '^$' -fuzz FuzzVLogDecode -fuzztime 5s ./internal/vlog/

echo "== go test -race"
# The harness simulations exceed go test's default 10-minute timeout
# under the race detector's ~10x slowdown; give them room (the full
# experiment sweep alone runs ~40m under race).
go test -race -timeout 60m ./...

echo "All checks passed."
