package vfs

import (
	"sync"
	"time"
)

// DiskProfile parameterizes the virtual disk: a positioned I/O that is
// not sequential with the handle's previous access pays SeekLatency, and
// every byte pays 1/Bandwidth.  The two stock profiles approximate the
// paper's testbed (Intel DC S3710 SSD and a 10k-RPM SEAGATE HDD); what
// matters for reproduction is their *ratio* of seek cost to bandwidth,
// which is what separates HDD results from SSD results in the paper.
type DiskProfile struct {
	Name           string
	SeekLatency    time.Duration
	ReadBandwidth  int64 // bytes per second
	WriteBandwidth int64 // bytes per second
}

// HDDProfile models the paper's 1.2 TB 10000-RPM drive.
func HDDProfile() DiskProfile {
	return DiskProfile{Name: "HDD", SeekLatency: 8 * time.Millisecond,
		ReadBandwidth: 150 << 20, WriteBandwidth: 150 << 20}
}

// SSDProfile models the paper's 200 GB Intel DC S3710.
func SSDProfile() DiskProfile {
	return DiskProfile{Name: "SSD", SeekLatency: 80 * time.Microsecond,
		ReadBandwidth: 500 << 20, WriteBandwidth: 450 << 20}
}

// DiskClock accumulates simulated device time.  All handles of one Disk
// share a clock, modelling one device servicing all traffic serially —
// the bandwidth-saturation regime the paper's write-heavy experiments
// operate in.
type DiskClock struct {
	mu      sync.Mutex
	elapsed time.Duration
}

// Elapsed reports total simulated device time so far.
func (c *DiskClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Now is Elapsed under the name the metrics layer's Clock interface
// expects, so a DiskClock can drive event durations and latency
// histograms in virtual device time.
func (c *DiskClock) Now() time.Duration { return c.Elapsed() }

// Reset zeroes the clock.
func (c *DiskClock) Reset() {
	c.mu.Lock()
	c.elapsed = 0
	c.mu.Unlock()
}

func (c *DiskClock) charge(d time.Duration) {
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Disk wraps an FS with the virtual-clock cost model.  It performs the
// underlying I/O for real (against MemFS or OSFS) and charges the clock
// as the modelled device would.
type Disk struct {
	inner   FS
	profile DiskProfile
	clock   *DiskClock
}

// NewDisk wraps fs with profile p, charging clock.  A nil clock gets a
// fresh one.
func NewDisk(fs FS, p DiskProfile, clock *DiskClock) *Disk {
	if clock == nil {
		clock = new(DiskClock)
	}
	return &Disk{inner: fs, profile: p, clock: clock}
}

// Clock returns the disk's virtual clock.
func (d *Disk) Clock() *DiskClock { return d.clock }

// Profile returns the disk's cost profile.
func (d *Disk) Profile() DiskProfile { return d.profile }

func (d *Disk) transferCost(n int, bw int64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(int64(n) * int64(time.Second) / bw)
}

// Create implements FS.
func (d *Disk) Create(name string) (File, error) {
	f, err := d.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &diskFile{inner: f, d: d, lastRead: -1, lastWrite: -1}, nil
}

// Open implements FS.
func (d *Disk) Open(name string) (File, error) {
	f, err := d.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &diskFile{inner: f, d: d, lastRead: -1, lastWrite: -1}, nil
}

// Remove implements FS.
func (d *Disk) Remove(name string) error { return d.inner.Remove(name) }

// Rename implements FS.
func (d *Disk) Rename(o, n string) error { return d.inner.Rename(o, n) }

// List implements FS.
func (d *Disk) List(dir string) ([]string, error) { return d.inner.List(dir) }

// MkdirAll implements FS.
func (d *Disk) MkdirAll(dir string) error { return d.inner.MkdirAll(dir) }

// Exists implements FS.
func (d *Disk) Exists(name string) bool { return d.inner.Exists(name) }

type diskFile struct {
	inner File
	d     *Disk
	mu    sync.Mutex
	// lastRead/lastWrite hold the offset that would continue the
	// previous access sequentially; -1 forces a seek on first access.
	lastRead  int64
	lastWrite int64
	seqWrite  int64 // sequential Write() position tracker
}

func (f *diskFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	seek := off != f.lastRead
	f.mu.Unlock()
	n, err := f.inner.ReadAt(p, off)
	cost := f.d.transferCost(n, f.d.profile.ReadBandwidth)
	if seek {
		cost += f.d.profile.SeekLatency
	}
	f.d.clock.charge(cost)
	f.mu.Lock()
	f.lastRead = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *diskFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	seek := off != f.lastWrite
	f.mu.Unlock()
	n, err := f.inner.WriteAt(p, off)
	cost := f.d.transferCost(n, f.d.profile.WriteBandwidth)
	if seek {
		cost += f.d.profile.SeekLatency
	}
	f.d.clock.charge(cost)
	f.mu.Lock()
	f.lastWrite = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *diskFile) Write(p []byte) (int, error) {
	n, err := f.inner.Write(p)
	// Appends are sequential: transfer cost only (the OS coalesces log
	// appends; charging a seek per WAL record would double-count).
	f.d.clock.charge(f.d.transferCost(n, f.d.profile.WriteBandwidth))
	f.mu.Lock()
	f.seqWrite += int64(n)
	f.lastWrite = f.seqWrite
	f.mu.Unlock()
	return n, err
}

func (f *diskFile) Close() error           { return f.inner.Close() }
func (f *diskFile) Sync() error            { return f.inner.Sync() }
func (f *diskFile) Size() (int64, error)   { return f.inner.Size() }
func (f *diskFile) Truncate(n int64) error { return f.inner.Truncate(n) }
