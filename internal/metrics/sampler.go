package metrics

import (
	"sync"
	"sync/atomic"
	"time"

	"iamdb/internal/histogram"
)

// Cumulative is the since-open totals a Sampler differences into
// per-window deltas.  The source closure the DB supplies fills it from
// its cheap always-on counters; the sampler never inspects the DB
// directly.
type Cumulative struct {
	// Ops counts user operations (batch records + point reads).
	Ops int64
	// StallNanos is cumulative write-stall time.
	StallNanos int64
	// WriteBytes and ReadBytes are device traffic.
	WriteBytes int64
	ReadBytes  int64
	// PerLevelWrite and PerLevelRead are engine per-level traffic.
	PerLevelWrite []int64
	PerLevelRead  []int64
	// CacheHits and CacheLookups drive the per-window hit rate.
	CacheHits    int64
	CacheLookups int64
	// CommitGroups and CommitBatches yield the mean group size.
	CommitGroups  int64
	CommitBatches int64
	// Put is the cumulative commit-latency histogram (nil allowed).
	Put *histogram.H
}

func subSlice(a, b []int64) []int64 {
	if len(a) == 0 {
		return nil
	}
	out := make([]int64, len(a))
	copy(out, a)
	for i := range b {
		if i < len(out) {
			out[i] -= b[i]
		}
	}
	return out
}

func addSlice(a, b []int64) []int64 {
	if len(b) > len(a) {
		a = append(a, make([]int64, len(b)-len(a))...)
	}
	for i := range b {
		a[i] += b[i]
	}
	return a
}

// sub returns the interval c − prev.
func (c Cumulative) sub(prev Cumulative) Cumulative {
	d := Cumulative{
		Ops:           c.Ops - prev.Ops,
		StallNanos:    c.StallNanos - prev.StallNanos,
		WriteBytes:    c.WriteBytes - prev.WriteBytes,
		ReadBytes:     c.ReadBytes - prev.ReadBytes,
		PerLevelWrite: subSlice(c.PerLevelWrite, prev.PerLevelWrite),
		PerLevelRead:  subSlice(c.PerLevelRead, prev.PerLevelRead),
		CacheHits:     c.CacheHits - prev.CacheHits,
		CacheLookups:  c.CacheLookups - prev.CacheLookups,
		CommitGroups:  c.CommitGroups - prev.CommitGroups,
		CommitBatches: c.CommitBatches - prev.CommitBatches,
	}
	if c.Put != nil {
		if prev.Put != nil {
			d.Put = c.Put.Sub(prev.Put)
		} else {
			d.Put = c.Put
		}
	}
	return d
}

// TimelinePoint is one closed window of the timeline: rates and
// interval percentiles over [Start, End).  Durations serialize as
// nanoseconds.
type TimelinePoint struct {
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Ops and OpsPerSec are the window's operation count and rate.
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// StallFrac is stall time over window length (can exceed 1 with
	// several concurrently stalled writers).
	StallFrac float64 `json:"stall_frac"`
	// WriteBytes/ReadBytes are device traffic in the window.
	WriteBytes int64 `json:"write_bytes"`
	ReadBytes  int64 `json:"read_bytes"`
	// PerLevelWrite/PerLevelRead attribute engine traffic per level.
	PerLevelWrite []int64 `json:"per_level_write,omitempty"`
	PerLevelRead  []int64 `json:"per_level_read,omitempty"`
	// CacheHitRate is hits over lookups inside the window (0 when the
	// window had no lookups).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CommitGroups and MeanGroupSize describe group-commit batching.
	CommitGroups  int64   `json:"commit_groups"`
	MeanGroupSize float64 `json:"mean_group_size"`
	// Put digests the window's commit latencies (interval percentiles).
	Put histogram.Summary `json:"put"`
}

// window is a closed window held internally: the raw delta plus its
// bounds, folded on demand.
type samplerWindow struct {
	start, end time.Duration
	d          Cumulative
}

func (w samplerWindow) point() TimelinePoint {
	p := TimelinePoint{
		Start: w.start, End: w.end,
		Ops:           w.d.Ops,
		StallFrac:     float64(w.d.StallNanos) / float64(w.end-w.start),
		WriteBytes:    w.d.WriteBytes,
		ReadBytes:     w.d.ReadBytes,
		PerLevelWrite: w.d.PerLevelWrite,
		PerLevelRead:  w.d.PerLevelRead,
		CommitGroups:  w.d.CommitGroups,
	}
	if sec := (w.end - w.start).Seconds(); sec > 0 {
		p.OpsPerSec = float64(w.d.Ops) / sec
	}
	if w.d.CacheLookups > 0 {
		p.CacheHitRate = float64(w.d.CacheHits) / float64(w.d.CacheLookups)
	}
	if w.d.CommitGroups > 0 {
		p.MeanGroupSize = float64(w.d.CommitBatches) / float64(w.d.CommitGroups)
	}
	if w.d.Put != nil {
		p.Put = w.d.Put.Summary()
	}
	return p
}

func mergeWindows(a, b samplerWindow) samplerWindow {
	m := samplerWindow{start: a.start, end: b.end}
	m.d = Cumulative{
		Ops:           a.d.Ops + b.d.Ops,
		StallNanos:    a.d.StallNanos + b.d.StallNanos,
		WriteBytes:    a.d.WriteBytes + b.d.WriteBytes,
		ReadBytes:     a.d.ReadBytes + b.d.ReadBytes,
		PerLevelWrite: addSlice(append([]int64(nil), a.d.PerLevelWrite...), b.d.PerLevelWrite),
		PerLevelRead:  addSlice(append([]int64(nil), a.d.PerLevelRead...), b.d.PerLevelRead),
		CacheHits:     a.d.CacheHits + b.d.CacheHits,
		CacheLookups:  a.d.CacheLookups + b.d.CacheLookups,
		CommitGroups:  a.d.CommitGroups + b.d.CommitGroups,
		CommitBatches: a.d.CommitBatches + b.d.CommitBatches,
	}
	switch {
	case a.d.Put != nil && b.d.Put != nil:
		h := histogram.New()
		h.Merge(a.d.Put)
		h.Merge(b.d.Put)
		m.d.Put = h
	case a.d.Put != nil:
		m.d.Put = a.d.Put
	default:
		m.d.Put = b.d.Put
	}
	return m
}

// Sampler captures windowed deltas of a Cumulative source into a
// bounded ring of timeline points.  It is pull-based: callers invoke
// Poll from their own loops (the harness polls between operations, the
// DB's debug server from a ticker goroutine); Poll's fast path is one
// atomic load, so polling per operation is cheap.
//
// When the ring fills, adjacent windows fold pairwise and the window
// width doubles — so an arbitrarily long run always yields between
// capacity/2 and capacity uniform windows, with resolution matched to
// run length (the HdrHistogram-style log-compaction idea applied to
// time).
//
// All state is guarded by mu, a leaf lock: the source snapshot (which
// may take DB and engine locks) is read before mu is acquired.
//
//iamlint:lockorder metrics.Sampler.mu leaf
type Sampler struct {
	clock  Clock
	source func() Cumulative

	// boundary is the next window edge, read without mu on the Poll
	// fast path.
	boundary atomic.Int64

	mu       sync.Mutex
	window   time.Duration
	capacity int
	wins     []samplerWindow
	prev     Cumulative
	winStart time.Duration
	folds    int
}

// NewSampler starts a timeline at the clock's current reading.  window
// is the initial width (doubling as the run outgrows capacity);
// capacity ≤ 0 defaults to 128, window ≤ 0 to one second.  The source
// is read once immediately to establish the baseline.
func NewSampler(clock Clock, window time.Duration, capacity int, source func() Cumulative) *Sampler {
	if window <= 0 {
		window = time.Second
	}
	if capacity <= 0 {
		capacity = 128
	}
	if capacity%2 == 1 {
		capacity++
	}
	s := &Sampler{
		clock: clock, source: source,
		window: window, capacity: capacity,
		prev:     source(),
		winStart: clock.Now(),
	}
	s.boundary.Store(int64(s.winStart + s.window))
	return s
}

// Poll closes any window boundaries the clock has crossed.  Nil-safe
// and allocation-free when no boundary was crossed (the detached /
// disabled path), so hot loops call it unconditionally.
func (s *Sampler) Poll() {
	if s == nil {
		return
	}
	now := s.clock.Now()
	if int64(now) < s.boundary.Load() {
		return
	}
	// Snapshot the source before taking mu: the source may acquire DB
	// and engine locks, so mu stays a leaf.
	cum := s.source()
	s.mu.Lock()
	// The whole delta since the last capture lands in the first crossed
	// window; the remaining gap closes as zero windows.  A long stall
	// thus renders as one busy window followed by flat zeros — which is
	// exactly the shape the stability score must see.
	for now >= s.winStart+s.window {
		end := s.winStart + s.window
		s.push(samplerWindow{start: s.winStart, end: end, d: cum.sub(s.prev)})
		s.prev = cum
		s.winStart = end
	}
	s.boundary.Store(int64(s.winStart + s.window))
	s.mu.Unlock()
}

// push appends one closed window, folding the ring when full.  Caller
// holds mu.
func (s *Sampler) push(w samplerWindow) {
	s.wins = append(s.wins, w)
	if len(s.wins) < s.capacity {
		return
	}
	half := s.wins[:0]
	for i := 0; i+1 < len(s.wins); i += 2 {
		half = append(half, mergeWindows(s.wins[i], s.wins[i+1]))
	}
	s.wins = half
	s.window *= 2
	s.folds++
}

// Points renders the closed windows, oldest first.  Nil-safe.
func (s *Sampler) Points() []TimelinePoint {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := make([]TimelinePoint, len(s.wins))
	for i, w := range s.wins {
		pts[i] = w.point()
	}
	return pts
}

// Window reports the current window width (after any folding).
func (s *Sampler) Window() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window
}

// Folds reports how many times the ring has folded.
func (s *Sampler) Folds() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.folds
}
