package iamdb

import (
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
)

// Reverse iteration.  Internal keys order a user key's versions newest
// first, so walking backward visits them oldest to newest; the visible
// version of a key is therefore the last one at or below the snapshot
// seen before crossing into the preceding user key.

func (it *Iterator) rin() iterator.ReverseIterator {
	return it.in.(iterator.ReverseIterator)
}

// Last positions at the largest live key.
func (it *Iterator) Last() {
	it.rin().Last()
	it.findPrevVisible()
}

// SeekForPrev positions at the last live key <= ukey.
func (it *Iterator) SeekForPrev(ukey []byte) {
	// (ukey, seq 0, tombstone) is the very last possible version of
	// ukey in internal order, so SeekForPrev lands on ukey's oldest
	// record (or an earlier key) and resolution proceeds from there.
	it.rin().SeekForPrev(kv.MakeInternalKey(ukey, 0, kv.KindDelete))
	it.findPrevVisible()
}

// Prev moves to the largest live key strictly below the current one.
func (it *Iterator) Prev() {
	if !it.valid {
		return
	}
	// (key, MaxSeq, MaxKind) sorts before every stored version of key,
	// so SeekForPrev lands on the previous user key's last record.
	it.rin().SeekForPrev(kv.MakeInternalKey(it.key, kv.MaxSeq, kv.MaxKind))
	it.findPrevVisible()
}

// findPrevVisible scans backward resolving the first live user key at
// or before the inner iterator's position.
func (it *Iterator) findPrevVisible() {
	it.valid = false
	it.backward = true
	in := it.rin()
	var curUser []byte
	var bestVal []byte
	var bestKind kv.Kind
	var bestDB *DB
	have := false
	emit := func() {
		it.key = append(it.key[:0], curUser...)
		it.val = append(it.val[:0], bestVal...)
		it.vkind = bestKind
		it.vdb = bestDB
		it.valid = true
	}
	for in.Valid() {
		u, seq, kind, ok := kv.ParseInternalKey(in.Key())
		if !ok {
			it.err = errBadBatch
			return
		}
		if curUser != nil && kv.CompareUser(u, curUser) != 0 {
			// Crossed into an earlier user key: settle the current one.
			if have && bestKind != kv.KindDelete {
				emit()
				return // inner iterator rests inside the earlier key
			}
			// Tombstoned or fully shadowed: move on to this key.
			curUser = nil
			have = false
		}
		if curUser == nil {
			curUser = append([]byte(nil), u...)
		}
		if seq <= it.snap {
			// Walking oldest to newest: later visible versions
			// overwrite earlier ones, leaving the newest visible.  The
			// value owner is captured here, while the inner iterator
			// still rests on the record (it moves on before emit).
			have = true
			bestKind = kind
			bestVal = append(bestVal[:0], in.Value()...)
			bestDB = it.valueOwner()
		}
		in.Prev()
	}
	if err := in.Err(); err != nil {
		it.err = err
		return
	}
	if curUser != nil && have && bestKind != kv.KindDelete {
		emit()
	}
}
