// Package aliasbad retains iterator Key()/Value() slices without a
// copy; every retention below must be flagged by the alias pass.
package aliasbad

type iter struct{ buf []byte }

func (it *iter) Key() []byte   { return it.buf }
func (it *iter) Value() []byte { return it.buf }

type sink struct {
	last []byte
	all  [][]byte
	byID map[int][]byte
}

func (s *sink) retainField(it *iter) {
	s.last = it.Key() // want [alias] Key() returns a slice that aliases
}

func (s *sink) retainMap(it *iter, id int) {
	s.byID[id] = it.Value() // want [alias] Value() returns a slice that aliases
}

func (s *sink) retainAppend(it *iter) {
	s.all = append(s.all, it.Value()) // want [alias] Value() returns a slice that aliases
}

func retainLiteral(it *iter) [][]byte {
	return [][]byte{it.Key()} // want [alias] Key() returns a slice that aliases
}

func retainSend(it *iter, ch chan []byte) {
	ch <- it.Key() // want [alias] Key() returns a slice that aliases
}
