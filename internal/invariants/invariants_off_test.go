//go:build !invariants

package invariants

import "testing"

func TestEnabledOff(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without -tags invariants")
	}
}

// guarded mirrors how call sites use the package: the constant guard
// must make the whole block — including format-argument boxing —
// disappear in release builds.
//
//go:noinline
func guarded(a, b int) {
	if Enabled {
		Assertf(a <= b, "range inverted: %d > %d", a, b)
	}
}

func TestGuardedCheckIsZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		guarded(1, 2)
	})
	if allocs != 0 {
		t.Fatalf("guarded assertion allocated %.1f times per run; want 0", allocs)
	}
}
