package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixtures under testdata/ are real packages (go list skips
// testdata dirs, so `./...` never lints them).  Bad fixtures carry
// `// want [pass] substring` comments on the line each diagnostic must
// anchor to; the tests assert the emitted set matches exactly.

// runRendered is run() + render(): the "file:line: [pass] msg" strings
// main prints.
func runRendered(patterns []string) ([]string, error) {
	diags, err := run(patterns)
	if err != nil {
		return nil, err
	}
	return render(diags), nil
}

func TestGoodFixtureIsClean(t *testing.T) {
	diags, err := runRendered([]string{"./testdata/good"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("good fixture produced diagnostics:\n%s", strings.Join(diags, "\n"))
	}
}

// TestDetermClockFixtureIsClean proves the determinism pass accepts
// the injected metrics.Clock pattern: a package in scope may read time
// through a Clock (disk clock, manual clock) without tripping the
// wall-clock checks that still reject time.Now (see determbad).
func TestDetermClockFixtureIsClean(t *testing.T) {
	diags, err := runRendered([]string{"./testdata/determclock"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("determclock fixture produced diagnostics:\n%s", strings.Join(diags, "\n"))
	}
}

// TestDetermTraceFixtureIsClean proves the determinism pass accepts
// the clock-injected trace.Recorder pattern: spans, lineage and both
// exporters read time only through the injected clock.
func TestDetermTraceFixtureIsClean(t *testing.T) {
	diags, err := runRendered([]string{"./testdata/determtrace"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("determtrace fixture produced diagnostics:\n%s", strings.Join(diags, "\n"))
	}
}

// TestDeterminismScope pins the package set the determinism pass
// covers; internal/metrics and internal/trace must stay in scope so
// the observability layer can never regress to ambient time.
func TestDeterminismScope(t *testing.T) {
	for _, path := range []string{
		"iamdb/internal/core", "iamdb/internal/harness",
		"iamdb/internal/metrics", "iamdb/internal/trace",
		"iamdb/internal/vfs",
	} {
		if !deterministicScoped(&pkg{path: path}) {
			t.Errorf("%s not in determinism scope", path)
		}
	}
	for _, path := range []string{"iamdb", "iamdb/cmd/iambench"} {
		if deterministicScoped(&pkg{path: path}) {
			t.Errorf("%s unexpectedly in determinism scope", path)
		}
	}
}

func TestBadFixtures(t *testing.T) {
	for _, dir := range []string{
		"lockbad", "ioerrbad", "determbad", "aliasbad", "atomicpubbad",
		"lockorderbad", "syncorderbad", "goexitbad",
	} {
		t.Run(dir, func(t *testing.T) {
			pattern := "./testdata/" + dir
			diags, err := runRendered([]string{pattern})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(diags) == 0 {
				t.Fatalf("bad fixture %s produced no diagnostics", dir)
			}
			checkWants(t, filepath.Join("testdata", dir), diags)
		})
	}
}

// TestAllBadFixturesTogether mirrors how check.sh proves the tool's
// exit path: linting every bad fixture at once must find everything.
func TestAllBadFixturesTogether(t *testing.T) {
	diags, err := runRendered([]string{
		"./testdata/lockbad", "./testdata/ioerrbad",
		"./testdata/determbad", "./testdata/aliasbad",
		"./testdata/atomicpubbad", "./testdata/lockorderbad",
		"./testdata/syncorderbad", "./testdata/goexitbad",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := 0
	for _, dir := range []string{
		"lockbad", "ioerrbad", "determbad", "aliasbad", "atomicpubbad",
		"lockorderbad", "syncorderbad", "goexitbad",
	} {
		want += len(loadWants(t, filepath.Join("testdata", dir)))
	}
	if len(diags) != want {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), want, strings.Join(diags, "\n"))
	}
}

type want struct {
	file string
	line int
	pass string
	sub  string
}

var wantRe = regexp.MustCompile(`// want \[(\w+)\] (.+)$`)

// loadWants collects the `// want` expectations of every .go file in
// dir.
func loadWants(t *testing.T, dir string) []want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			wants = append(wants, want{
				file: path,
				line: i + 1,
				pass: m[1],
				sub:  strings.TrimSpace(m[2]),
			})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no // want comments found in %s", dir)
	}
	return wants
}

// checkWants matches diagnostics ("file:line: [pass] msg") against the
// fixture's expectations one-to-one.
func checkWants(t *testing.T, dir string, diags []string) {
	t.Helper()
	wants := loadWants(t, dir)
	matched := make([]bool, len(diags))
outer:
	for _, w := range wants {
		prefix := fmt.Sprintf("%s:%d: [%s] ", w.file, w.line, w.pass)
		for i, d := range diags {
			if !matched[i] && strings.HasPrefix(d, prefix) && strings.Contains(d, w.sub) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("missing diagnostic %q containing %q", prefix, w.sub)
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestDirectiveValidation pins the directive pass: an unknown
// directive kind and a misspelled pass name are diagnostics, and the
// misspelled suppression leaves the underlying finding unsuppressed.
func TestDirectiveValidation(t *testing.T) {
	diags, err := runRendered([]string{"./testdata/directivebad"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wants := []string{
		`[directive] unknown iamlint directive "bogus knob"`,
		`[directive] unknown pass "lockchek"`,
		`[lockcheck] b.mu.Lock()`,
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wants), strings.Join(diags, "\n"))
	}
outer:
	for _, w := range wants {
		for _, d := range diags {
			if strings.Contains(d, w) {
				continue outer
			}
		}
		t.Errorf("missing diagnostic containing %q in:\n%s", w, strings.Join(diags, "\n"))
	}
}

// TestJSONOutput pins the -json wire form: one object per line with
// pass, file, line and msg fields.
func TestJSONOutput(t *testing.T) {
	diags, err := run([]string{"./testdata/goexitbad"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("goexitbad produced no diagnostics")
	}
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	for _, d := range diags {
		if err := enc.Encode(jsonDiag{Pass: d.pass, File: d.pos.Filename, Line: d.pos.Line, Msg: d.msg}); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d JSON lines for %d diagnostics", len(lines), len(diags))
	}
	for _, line := range lines {
		var d jsonDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		if d.Pass == "" || d.File == "" || d.Line == 0 || d.Msg == "" {
			t.Errorf("JSON diagnostic missing fields: %q", line)
		}
	}
}
