package iamdb

import (
	"errors"
	"fmt"
	"testing"

	"iamdb/internal/vfs"
)

// Disk-full degradation contract: when the device runs out of space the
// DB degrades to read-only instead of wedging or corrupting state —
// reads and snapshots keep working, the nospace counter records the
// hits, and once space frees the store heals (automatically on the next
// successful WAL append, or explicitly via Resume) without a reopen.

func openNoSpace(t *testing.T, e EngineKind) (*DB, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(vfs.NewMemFS())
	opt := smallOpts(e, ffs)
	opt.InlineBackground = true
	opt.BgRetryLimit = 1
	opt.BgBackoff = func(failures int) bool { return failures < 3 }
	db, err := Open("db", opt)
	if err != nil {
		t.Fatal(err)
	}
	return db, ffs
}

func TestNoSpaceWALDegradesToReadOnly(t *testing.T) {
	for _, e := range []EngineKind{IAM, LevelDB} {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			db, ffs := openNoSpace(t, e)
			defer db.Close()
			if err := db.Put([]byte("k0"), []byte("v0")); err != nil {
				t.Fatal(err)
			}
			ffs.FailWithNoSpace(0)
			var roErr error
			for i := 0; i < 10; i++ {
				err := db.Put([]byte(fmt.Sprintf("x%d", i)), []byte("v"))
				if err == nil {
					t.Fatal("put succeeded with the device full")
				}
				if errors.Is(err, ErrReadOnly) {
					roErr = err
					break
				}
				if !errors.Is(err, vfs.ErrNoSpace) {
					t.Fatalf("pre-degradation put: want ErrNoSpace, got %v", err)
				}
			}
			if roErr == nil {
				t.Fatal("repeated no-space failures never degraded to read-only")
			}
			if !errors.Is(roErr, vfs.ErrNoSpace) {
				t.Fatalf("read-only error does not carry its cause: %v", roErr)
			}

			// Reads and snapshots are still served while degraded.
			if v, err := db.Get([]byte("k0")); err != nil || string(v) != "v0" {
				t.Fatalf("read while degraded: %q %v", v, err)
			}
			s := db.GetSnapshot()
			if v, err := s.Get([]byte("k0")); err != nil || string(v) != "v0" {
				t.Fatalf("snapshot read while degraded: %q %v", v, err)
			}
			s.Release()
			if n := db.Metrics().NoSpaceErrors; n == 0 {
				t.Fatal("NoSpaceErrors counter never moved")
			}

			// Free space and heal in place — no reopen.
			ffs.FreeSpace()
			if err := db.Resume(); err != nil {
				t.Fatalf("resume after freeing space: %v", err)
			}
			if err := db.Put([]byte("healed"), []byte("v")); err != nil {
				t.Fatalf("put after heal: %v", err)
			}
			if v, err := db.Get([]byte("healed")); err != nil || string(v) != "v" {
				t.Fatalf("get after heal: %q %v", v, err)
			}
		})
	}
}

func TestNoSpaceWALAutoHeals(t *testing.T) {
	db, ffs := openNoSpace(t, IAM)
	defer db.Close()
	if err := db.Put([]byte("k0"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	// One failure stays under BgRetryLimit, so the store is degraded but
	// not read-only; the next successful append must clear the latched
	// background error with no Resume call.
	ffs.FailWithNoSpace(0)
	if err := db.Put([]byte("x"), []byte("v")); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	ffs.FreeSpace()
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatalf("put after space freed: %v", err)
	}
	db.mu.Lock()
	ro, bgErr := db.readonly, db.bgErr
	db.mu.Unlock()
	if ro || bgErr != nil {
		t.Fatalf("successful append did not auto-heal: readonly=%v bgErr=%v", ro, bgErr)
	}
}

func TestNoSpaceFlushDegradesAndResumes(t *testing.T) {
	for _, e := range []EngineKind{IAM, RocksDB} {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			db, ffs := openNoSpace(t, e)
			defer db.Close()
			for i := 0; i < 20; i++ {
				k := fmt.Sprintf("k%03d", i)
				if err := db.Put([]byte(k), make([]byte, 64)); err != nil {
					t.Fatal(err)
				}
			}
			// The WAL is already durable; only the flush (table + manifest
			// writes) needs space now.
			ffs.FailWithNoSpace(0)
			var roErr error
			for i := 0; i < 10; i++ {
				err := db.Flush()
				if err == nil {
					t.Fatal("flush succeeded with the device full")
				}
				if errors.Is(err, ErrReadOnly) {
					roErr = err
					break
				}
			}
			if roErr == nil {
				t.Fatal("repeated flush failures never degraded to read-only")
			}
			if v, err := db.Get([]byte("k003")); err != nil || len(v) != 64 {
				t.Fatalf("read while degraded: %d bytes, %v", len(v), err)
			}
			if n := db.Metrics().NoSpaceErrors; n == 0 {
				t.Fatal("NoSpaceErrors counter never moved")
			}

			ffs.FreeSpace()
			if err := db.Resume(); err != nil {
				t.Fatalf("resume: %v", err)
			}
			if err := db.Flush(); err != nil {
				t.Fatalf("flush after heal: %v", err)
			}
			if err := db.Put([]byte("healed"), []byte("v")); err != nil {
				t.Fatalf("put after heal: %v", err)
			}
		})
	}
}
