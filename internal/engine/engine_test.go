package engine

import (
	"fmt"
	"testing"

	"iamdb/internal/iterator"
	"iamdb/internal/kv"
)

type rec struct {
	user string
	seq  kv.Seq
	kind kv.Kind
}

func dropInput(recs ...rec) iterator.Iterator {
	var ks, vs [][]byte
	for _, r := range recs {
		ks = append(ks, kv.MakeInternalKey([]byte(r.user), r.seq, r.kind))
		vs = append(vs, []byte("v"))
	}
	return iterator.NewSlice(kv.CompareInternal, ks, vs)
}

func collectDrop(it iterator.Iterator) []string {
	var out []string
	for it.First(); it.Valid(); it.Next() {
		u, s, k, _ := kv.ParseInternalKey(it.Key())
		out = append(out, fmt.Sprintf("%s@%d:%v", u, s, k))
	}
	return out
}

func TestDropObsoleteKeepsNewestOnly(t *testing.T) {
	in := dropInput(
		rec{"a", 30, kv.KindSet},
		rec{"a", 20, kv.KindSet},
		rec{"a", 10, kv.KindSet},
		rec{"b", 5, kv.KindSet},
	)
	got := collectDrop(DropObsolete(in, kv.MaxSeq, false))
	want := "[a@30:set b@5:set]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDropObsoleteHorizonKeepsVisible(t *testing.T) {
	in := dropInput(
		rec{"a", 30, kv.KindSet},
		rec{"a", 20, kv.KindSet},
		rec{"a", 10, kv.KindSet},
	)
	// Snapshot at 15 is active: keep 30 and 20 (>15) plus newest <= 15 (10).
	got := collectDrop(DropObsolete(in, 15, false))
	want := "[a@30:set a@20:set a@10:set]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v want %v", got, want)
	}
	// Horizon 25: keep 30, plus newest <=25 (20); drop 10.
	in2 := dropInput(
		rec{"a", 30, kv.KindSet},
		rec{"a", 20, kv.KindSet},
		rec{"a", 10, kv.KindSet},
	)
	got = collectDrop(DropObsolete(in2, 25, false))
	want = "[a@30:set a@20:set]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDropObsoleteTombstones(t *testing.T) {
	mk := func() iterator.Iterator {
		return dropInput(
			rec{"a", 20, kv.KindDelete},
			rec{"a", 10, kv.KindSet},
			rec{"b", 5, kv.KindSet},
		)
	}
	// Mid-tree: tombstone must survive to shadow deeper data.
	got := collectDrop(DropObsolete(mk(), kv.MaxSeq, false))
	if fmt.Sprint(got) != "[a@20:delete b@5:set]" {
		t.Fatalf("mid-tree: %v", got)
	}
	// Bottom: tombstone and everything under it vanish.
	got = collectDrop(DropObsolete(mk(), kv.MaxSeq, true))
	if fmt.Sprint(got) != "[b@5:set]" {
		t.Fatalf("bottom: %v", got)
	}
	// Bottom but tombstone above horizon: must stay (a snapshot may
	// still need to observe the delete... and older versions too).
	got = collectDrop(DropObsolete(mk(), 15, true))
	if fmt.Sprint(got) != "[a@20:delete a@10:set b@5:set]" {
		t.Fatalf("bottom with snapshot: %v", got)
	}
}

func TestDropObsoleteEmptyAndSingle(t *testing.T) {
	got := collectDrop(DropObsolete(dropInput(), kv.MaxSeq, true))
	if got != nil {
		t.Fatalf("empty: %v", got)
	}
	got = collectDrop(DropObsolete(dropInput(rec{"x", 1, kv.KindSet}), kv.MaxSeq, true))
	if fmt.Sprint(got) != "[x@1:set]" {
		t.Fatalf("single: %v", got)
	}
	// A single tombstone at bottom disappears completely.
	got = collectDrop(DropObsolete(dropInput(rec{"x", 1, kv.KindDelete}), kv.MaxSeq, true))
	if got != nil {
		t.Fatalf("single tombstone: %v", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	var st Stats
	st.AddFlushBytes(3, 100)
	st.AddFlushBytes(1, 50)
	st.AddFlushBytes(3, 100)
	st.AddReadBytes(2, 75)
	st.CountAppend(1)
	st.CountMerge(2)
	st.CountMerge(3)
	st.CountMove(2)
	st.CountSplit(1)
	st.CountCombine(1)
	st.CountFlush()
	s := st.Snapshot()
	if s.FlushBytes[3] != 200 || s.FlushBytes[1] != 50 || s.FlushBytes[0] != 0 {
		t.Fatalf("flush bytes: %v", s.FlushBytes)
	}
	if s.TotalFlushBytes() != 250 {
		t.Fatalf("total: %d", s.TotalFlushBytes())
	}
	if s.TotalReadBytes() != 75 {
		t.Fatalf("read total: %d", s.TotalReadBytes())
	}
	if s.Appends != 1 || s.Merges != 2 || s.Moves != 1 || s.Splits != 1 || s.Combines != 1 || s.Flushes != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if len(s.PerLevel) != 4 {
		t.Fatalf("per-level rows: %d", len(s.PerLevel))
	}
	if l := s.PerLevel[3]; l.WriteBytes != 200 || l.Merges != 1 {
		t.Fatalf("L3 stats: %+v", l)
	}
	if l := s.PerLevel[2]; l.ReadBytes != 75 || l.Merges != 1 || l.Moves != 1 {
		t.Fatalf("L2 stats: %+v", l)
	}
	if l := s.PerLevel[1]; l.WriteBytes != 50 || l.Appends != 1 || l.Splits != 1 || l.Combines != 1 {
		t.Fatalf("L1 stats: %+v", l)
	}
	// Snapshot is a copy.
	s.FlushBytes[3] = 0
	s.PerLevel[3].WriteBytes = 0
	if got := st.Snapshot(); got.FlushBytes[3] != 200 || got.PerLevel[3].WriteBytes != 200 {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestTableFileName(t *testing.T) {
	if got := TableFileName("db", 7); got != "db/000007.mst" {
		t.Fatalf("got %q", got)
	}
}

func TestLevelInfoString(t *testing.T) {
	s := LevelInfo{Level: 2, Nodes: 3, Bytes: 2 << 20, Seqs: 5}.String()
	if s == "" {
		t.Fatal("empty string")
	}
}
