// Package lockorderbad holds lock-hierarchy violations the lockorder
// pass must flag.  The package declares a.mu < b.mu with c.mu a leaf;
// the functions below break that hierarchy in each distinct way the
// pass reports: a cycle against the declared direction, an
// acquisition under a leaf, an undeclared interprocedural edge, and
// recursive locking.
//
//iamlint:lockorder a.mu < b.mu; c.mu leaf
package lockorderbad

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }
type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

var (
	av a
	bv b
	cv c
	dv d
)

// declaredOrder nests in the declared direction: clean.
func declaredOrder() {
	av.mu.Lock()
	bv.mu.Lock()
	bv.mu.Unlock()
	av.mu.Unlock()
}

// inverted nests against the declared direction, completing a cycle
// with declaredOrder's edge.
func inverted() {
	bv.mu.Lock()
	av.mu.Lock() // want [lockorder] completes a lock-order cycle
	av.mu.Unlock()
	bv.mu.Unlock()
}

// leafViolation acquires another lock while holding the declared leaf.
func leafViolation() {
	cv.mu.Lock()
	dv.mu.Lock() // want [lockorder] leaf lock
	dv.mu.Unlock()
	cv.mu.Unlock()
}

func lockA() {
	av.mu.Lock()
	av.mu.Unlock()
}

// viaCall creates an interprocedural edge (d.mu held while the callee
// takes a.mu) that no directive covers.
func viaCall() {
	dv.mu.Lock()
	lockA() // want [lockorder] not in the declared lock order
	dv.mu.Unlock()
}

// recursive re-acquires a mutex it already holds.
func recursive() {
	dv.mu.Lock()
	dv.mu.Lock() // want [lockorder] recursive locking
	dv.mu.Unlock()
	dv.mu.Unlock()
}
