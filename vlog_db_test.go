package iamdb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"iamdb/internal/vfs"
	"iamdb/internal/vlog"
)

// kvsepOpts scales the store down like smallOpts and turns on key-value
// separation with segments small enough that GC has several to choose
// from.
func kvsepOpts(e EngineKind, fs vfs.FS) *Options {
	o := smallOpts(e, fs)
	o.ValueThreshold = 64
	o.VlogSegmentSize = 4 * 1024
	return o
}

// bigVal builds a self-describing value above the separation threshold.
func bigVal(tag string, i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("%s-%04d.", tag, i)), 20)
}

func TestKVSepThresholdAllEngines(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			db, err := Open("db", kvsepOpts(e, vfs.NewMemFS()))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			small := []byte("inline-sized")
			big := bigVal("big", 1)
			if err := db.Put([]byte("small"), small); err != nil {
				t.Fatal(err)
			}
			if err := db.Put([]byte("big"), big); err != nil {
				t.Fatal(err)
			}
			m := db.Metrics()
			if m.VLogAppends != 1 {
				t.Fatalf("VLogAppends = %d, want 1 (only the above-threshold value)", m.VLogAppends)
			}
			for _, c := range []struct {
				key  string
				want []byte
			}{{"small", small}, {"big", big}} {
				v, err := db.Get([]byte(c.key))
				if err != nil || !bytes.Equal(v, c.want) {
					t.Fatalf("Get(%s): %d bytes, %v", c.key, len(v), err)
				}
				v2, err := db.GetInto([]byte(c.key), nil)
				if err != nil || !bytes.Equal(v2, c.want) {
					t.Fatalf("GetInto(%s): %d bytes, %v", c.key, len(v2), err)
				}
			}
		})
	}
}

func TestKVSepIteratorsMixed(t *testing.T) {
	for _, e := range []EngineKind{IAM, LSA} {
		t.Run(e.String(), func(t *testing.T) {
			db, err := Open("db", kvsepOpts(e, vfs.NewMemFS()))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			const n = 200
			want := make(map[string][]byte, n)
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("k%04d", i)
				var v []byte
				if i%3 == 0 {
					v = []byte(fmt.Sprintf("small-%04d", i))
				} else {
					v = bigVal("iter", i)
				}
				if err := db.Put([]byte(k), v); err != nil {
					t.Fatal(err)
				}
				want[k] = v
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			it := db.NewIterator()
			defer it.Close()
			got := 0
			for it.First(); it.Valid(); it.Next() {
				if !bytes.Equal(it.Value(), want[string(it.Key())]) {
					t.Fatalf("forward: wrong value for %s", it.Key())
				}
				got++
			}
			if err := it.Err(); err != nil || got != n {
				t.Fatalf("forward scan: %d keys, %v", got, err)
			}
			got = 0
			for it.Last(); it.Valid(); it.Prev() {
				if !bytes.Equal(it.Value(), want[string(it.Key())]) {
					t.Fatalf("reverse: wrong value for %s", it.Key())
				}
				got++
			}
			if err := it.Err(); err != nil || got != n {
				t.Fatalf("reverse scan: %d keys, %v", got, err)
			}
			it.Seek([]byte("k0100"))
			if !it.Valid() || string(it.Key()) != "k0100" ||
				!bytes.Equal(it.Value(), want["k0100"]) {
				t.Fatalf("seek: %s, %v", it.Key(), it.Err())
			}
		})
	}
}

func TestKVSepSnapshotSeesOldValue(t *testing.T) {
	db, err := Open("db", kvsepOpts(IAM, vfs.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	old := bigVal("old", 1)
	if err := db.Put([]byte("k"), old); err != nil {
		t.Fatal(err)
	}
	snap := db.GetSnapshot()
	defer snap.Release()
	if err := db.Put([]byte("k"), bigVal("new", 2)); err != nil {
		t.Fatal(err)
	}
	v, err := snap.Get([]byte("k"))
	if err != nil || !bytes.Equal(v, old) {
		t.Fatalf("snapshot Get: %d bytes, %v", len(v), err)
	}
	it := snap.NewIterator()
	defer it.Close()
	it.First()
	if !it.Valid() || !bytes.Equal(it.Value(), old) {
		t.Fatalf("snapshot iterator: %v", it.Err())
	}
}

// TestKVSepGCReclaimsAndPreserves overwrites most of a separated
// working set so merges report dead log records, runs the collector to
// exhaustion, and checks that space came back without losing a value
// or resurrecting an overwritten or deleted one.
func TestKVSepGCReclaimsAndPreserves(t *testing.T) {
	fs := vfs.NewMemFS()
	o := kvsepOpts(IAM, fs)
	o.InlineBackground = true // deterministic merges; collector driven by hand
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const keys = 40
	want := make(map[string][]byte)
	for round := 0; round < 6; round++ {
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("k%04d", i)
			v := bigVal(fmt.Sprintf("r%d", round), i)
			if err := db.Put([]byte(k), v); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
	}
	if err := db.Delete([]byte("k0007")); err != nil {
		t.Fatal(err)
	}
	delete(want, "k0007")
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	before := db.vl.Stats()
	if before.DiscardBytes == 0 {
		t.Fatal("merges reported no dead value-log records; GC has no fuel")
	}
	for db.vlogGCOnce() {
	}
	after := db.Metrics()
	if after.VLogGCSegments == 0 {
		t.Fatal("collector rewrote no segments")
	}
	if after.VLogBytes >= before.Bytes {
		t.Fatalf("log did not shrink: %d -> %d bytes", before.Bytes, after.VLogBytes)
	}
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("after GC, Get(%s): %d bytes, %v", k, len(got), err)
		}
	}
	if _, err := db.Get([]byte("k0007")); err != ErrNotFound {
		t.Fatalf("GC resurrected a deleted key: %v", err)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKVSepReopen(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open("db", kvsepOpts(LSA, fs))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("k%04d", i)
		want[k] = bigVal("re", i)
		if err := db.Put([]byte(k), want[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open("db", kvsepOpts(LSA, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k, v := range want {
		got, err := db2.Get([]byte(k))
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("after reopen, Get(%s): %d bytes, %v", k, len(got), err)
		}
	}
	if m := db2.Metrics(); m.VLogSegments == 0 {
		t.Fatal("reopened store reports no value-log segments")
	}
}

func TestKVSepCheckpointCarriesValues(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open("db", kvsepOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	want := make(map[string][]byte)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%04d", i)
		want[k] = bigVal("cp", i)
		if err := db.Put([]byte(k), want[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint("db2"); err != nil {
		t.Fatal(err)
	}
	cp, err := Open("db2", kvsepOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	for k, v := range want {
		got, err := cp.Get([]byte(k))
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("checkpoint Get(%s): %d bytes, %v", k, len(got), err)
		}
	}
}

func TestKVSepScrubCountsLog(t *testing.T) {
	db, err := Open("db", kvsepOpts(IAM, vfs.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 80; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), bigVal("sc", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VLogSegments == 0 || rep.VLogRecords < 80 || rep.VLogSuspect != 0 {
		t.Fatalf("scrub report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "vlog") {
		t.Fatalf("scrub summary omits the value log: %s", rep.String())
	}
}

func TestKVSepSharded(t *testing.T) {
	o := kvsepOpts(IAM, vfs.NewMemFS())
	o.Shards = 4
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	want := make(map[string][]byte)
	for i := 0; i < 120; i++ {
		// Spread across the default first-byte split points.
		k := fmt.Sprintf("%c-%04d", 'a'+byte(i%26), i)
		want[k] = bigVal("sh", i)
		if err := db.Put([]byte(k), want[k]); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("sharded Get(%s): %d bytes, %v", k, len(got), err)
		}
	}
	it := db.NewIterator()
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Value(), want[string(it.Key())]) {
			t.Fatalf("sharded scan: wrong value for %s", it.Key())
		}
		n++
	}
	if err := it.Err(); err != nil || n != len(want) {
		t.Fatalf("sharded scan: %d keys, %v", n, err)
	}
	if m := db.Metrics(); m.VLogAppends != int64(len(want)) {
		t.Fatalf("sharded VLogAppends = %d, want %d", m.VLogAppends, len(want))
	}
}

func TestKVSepRottedValueDetected(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open("db", kvsepOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), bigVal("rot", 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Damage one byte of the first record's payload, past the header.
	name := vlog.SegmentName("db", db.vl.Head())
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	one := []byte{0}
	off := int64(vlog.HeaderSize) + 10
	if _, err := f.ReadAt(one, off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x40
	if _, err := f.WriteAt(one, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := db.Get([]byte("k")); !IsCorruption(err) {
		t.Fatalf("rotted value read: %v", err)
	}
	if m := db.Metrics(); m.CorruptionsDetected == 0 {
		t.Fatal("detection not counted")
	}
}
