// Package good contains code every iamlint pass accepts: deferred and
// per-path unlocks, handled or explicitly-discarded storage errors,
// copy-before-retain iterator use, and a suppression directive.
package good

import (
	"sync"
	"sync/atomic"

	"iamdb/internal/vfs"
)

type iter struct{ buf []byte }

func (it *iter) Key() []byte   { return it.buf }
func (it *iter) Value() []byte { return it.buf }

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	dst  []byte
	last []byte
}

func (s *store) deferred(fs vfs.FS, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fs.Remove(name)
}

func (s *store) explicitPaths(n int) int {
	s.mu.Lock()
	if n > 0 {
		s.mu.Unlock()
		return n
	}
	s.mu.Unlock()
	return -n
}

func (s *store) readLocked() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return len(s.dst)
}

func (s *store) deferredLiteral() {
	s.mu.Lock()
	defer func() {
		s.dst = s.dst[:0]
		s.mu.Unlock()
	}()
	s.dst = append(s.dst, 1)
}

func blessedDiscard(fs vfs.FS, name string) {
	_ = fs.Remove(name) // explicit discard is the sanctioned form
}

func deferredCleanup(f vfs.File) error {
	defer f.Close() // deferred cleanup is exempt
	return f.Sync()
}

func retriedSync(f vfs.File) error {
	return vfs.Retry(3, nil, f.Sync) // handled: the caller sees the error
}

func retriedBestEffort(f vfs.File) {
	_ = vfs.Retry(3, nil, f.Sync) // explicit discard is the sanctioned form
}

func (s *store) copyBeforeRetain(it *iter) {
	s.dst = append(s.dst[:0], it.Key()...) // ellipsis append copies
	k := it.Value()                        // locals are fine
	s.dst = append(s.dst, k...)
}

func (s *store) suppressed(it *iter) {
	s.last = it.Key() //iamlint:ignore alias
}

// box is published through an atomic.Pointer, so atomicpub freezes its
// plain fields after publication; every write below happens on a value
// the pass can prove is still private.
type box struct {
	val []byte
}

type holder struct {
	cur atomic.Pointer[box]
}

func newBox() *box { return &box{} }

func (h *holder) publishLiteral(v []byte) {
	b := &box{}
	b.val = v // fresh: composite literal, not yet stored
	h.cur.Store(b)
}

func (h *holder) publishNew(v []byte) {
	b := new(box)
	b.val = v // fresh: new(T)
	h.cur.Store(b)
}

func (h *holder) publishConstructed(v []byte) {
	b := newBox()
	b.val = v // fresh: same-package new* constructor
	h.cur.CompareAndSwap(h.cur.Load(), b)
}

func (h *holder) publishSuppressed() {
	h.cur.Load().val = nil //iamlint:ignore atomicpub
}
