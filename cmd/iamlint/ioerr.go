package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ioerrPkgs are the packages whose error results must never be
// silently discarded: they wrap the storage layer, where a dropped
// error means silent data loss.
var ioerrPkgs = []string{
	"internal/vfs",
	"internal/wal",
	"internal/table",
	"internal/manifest",
}

// receiverNamed returns the named type of a method call's receiver
// (unwrapping one pointer), or nil when there is none.
func receiverNamed(p *pkg, call *ast.CallExpr) *types.Named {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := p.info.Selections[sel]
	if !ok {
		return nil
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	return named
}

func ioerrScoped(path string) bool {
	for _, s := range ioerrPkgs {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// ioerr flags statement-level calls (the only way to discard every
// result implicitly) into the storage packages when the callee returns
// an error.  `defer f.Close()` cleanup is exempt; `_ = f.Close()` is
// the explicit, blessed discard form.
func ioerr(p *pkg, emit func(diag)) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.funcFor(call)
			if fn == nil || !returnsError(fn) {
				return true
			}
			// A method promoted from an embedded stdlib interface (e.g.
			// io.Closer inside vfs.File) is defined in "io", so also scope
			// by the receiver's named type: vfs.File.Close counts.
			owner := pkgPathOf(fn)
			label := fn.Pkg().Name() + "." + fn.Name()
			if !ioerrScoped(owner) {
				named := receiverNamed(p, call)
				if named == nil || !ioerrScoped(named.Obj().Pkg().Path()) {
					return true
				}
				label = named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + fn.Name()
			}
			emit(diag{
				pass: "ioerr",
				pos:  p.fset.Position(call.Pos()),
				msg: fmt.Sprintf("error result of %s is discarded (handle it, or write `_ = ...` to discard explicitly)",
					label),
			})
			return true
		})
	}
}
