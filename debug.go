package iamdb

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime/pprof"
	"time"

	"iamdb/internal/engine"
)

// startDebugServer brings up the live introspection server on addr
// (Options.DebugAddr).  It attaches a timeline sampler when none is
// attached yet, arms the commit-leader pprof labels, and serves
// DebugHandler until Close.  Called from Open before any writer
// exists, so the plain field writes are unobserved until the server
// (and the DB) is visible.
func (db *DB) startDebugServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	db.labelCommit = pprof.WithLabels(context.Background(),
		pprof.Labels("iamdb", "commit-leader"))
	win := db.opt.DebugSampleWindow
	if win <= 0 {
		win = time.Second
	}
	if db.samplerA.Load() == nil {
		db.NewSampler(win, 0)
	}
	db.debugLn = ln
	db.debugSrv = &http.Server{Handler: db.DebugHandler()}
	db.wg.Add(1)
	go db.serveDebug()
	db.wg.Add(1)
	go db.samplerWorker(win)
	return nil
}

// serveDebug runs the debug HTTP server; Close shuts the server down,
// which unblocks Serve so wg.Wait can finish.
func (db *DB) serveDebug() {
	defer db.wg.Done()
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("iamdb", "debug-server")))
	_ = db.debugSrv.Serve(db.debugLn)
}

// samplerWorker advances the attached sampler on a wall-clock ticker so
// the /timeline view moves even when no workload loop is polling.  It
// lives in the public package, outside the iamlint determinism scope:
// deterministic runs never start a debug server.
func (db *DB) samplerWorker(win time.Duration) {
	defer db.wg.Done()
	t := time.NewTicker(win)
	defer t.Stop()
	for {
		select {
		case <-db.quit:
			return
		case <-t.C:
			if s := db.samplerA.Load(); s != nil {
				s.Poll()
			}
		}
	}
}

// DebugAddr reports the address the debug server is listening on, or
// "" when it is off.  With Options.DebugAddr "127.0.0.1:0" this is how
// callers learn the kernel-assigned port.
func (db *DB) DebugAddr() string {
	if db.debugLn == nil {
		return ""
	}
	return db.debugLn.Addr().String()
}

// DebugHandler returns the introspection handler the debug server
// serves; it can also be mounted directly (tests use httptest):
//
//	/metrics   — Metrics report (text; ?format=json for the struct)
//	/timeline  — windowed time-series points (JSON array)
//	/traces    — recorded spans (JSON Lines; ?format=chrome for a
//	             chrome://tracing / Perfetto trace-event file)
//	/levels    — per-level tree view (text)
//	/debug/pprof/* — standard pprof handlers, with iamdb goroutine
//	             labels on flush, compaction and commit-leader work
func (db *DB) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", db.handleDebugIndex)
	mux.HandleFunc("/metrics", db.handleDebugMetrics)
	mux.HandleFunc("/timeline", db.handleDebugTimeline)
	mux.HandleFunc("/traces", db.handleDebugTraces)
	mux.HandleFunc("/levels", db.handleDebugLevels)
	mux.HandleFunc("/scrub", db.handleDebugScrub)
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

func (db *DB) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "iamdb debug server (engine %v)\n\n", db.opt.Engine)
	fmt.Fprintln(w, "/metrics        metrics report (?format=json)")
	fmt.Fprintln(w, "/timeline       windowed time-series (JSON)")
	fmt.Fprintln(w, "/traces         spans as JSON Lines (?format=chrome)")
	fmt.Fprintln(w, "/levels         per-level tree view")
	fmt.Fprintln(w, "/scrub          scrub progress (POST or ?start=1 to begin a pass)")
	fmt.Fprintln(w, "/debug/pprof/   pprof index")
}

func (db *DB) handleDebugMetrics(w http.ResponseWriter, r *http.Request) {
	m := db.Metrics()
	if r.URL.Query().Get("format") == "json" {
		writeDebugJSON(w, m)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, m.String())
}

func (db *DB) handleDebugTimeline(w http.ResponseWriter, r *http.Request) {
	pts := db.Timeline()
	if pts == nil {
		pts = []TimelinePoint{}
	}
	writeDebugJSON(w, pts)
}

func (db *DB) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if db.tr == nil {
		http.Error(w, "tracing disabled: pass Options.Trace", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = db.tr.WriteChromeTrace(w)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = db.tr.WriteJSONLines(w)
}

func (db *DB) handleDebugLevels(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if ss := db.shards; ss != nil {
		// Aggregate headline, then every shard's own tree.  The
		// single-shard rendering below is byte-identical to what it was
		// before sharding existed.
		m := db.Metrics()
		fmt.Fprintf(w, "engine %v, %d shards\n", db.opt.Engine, len(ss.kids))
		fmt.Fprintf(w, "memtable %.1f MB (+%d immutable)  space used %.1f MB, write amplification %.2f\n",
			mb(m.MemtableBytes), m.ImmutableMemtables, mb(m.SpaceUsed), m.WriteAmplification())
		for i, kid := range ss.kids {
			lo, hi := db.ShardRange(i)
			fmt.Fprintf(w, "\n-- shard %03d [%s, %s) --\n", i, shardBound(lo, "-inf"), shardBound(hi, "+inf"))
			kid.writeDebugLevels(w)
		}
		return
	}
	db.writeDebugLevels(w)
}

// shardBound renders a shard range endpoint for operator output.
func shardBound(b []byte, unbounded string) string {
	if b == nil {
		return unbounded
	}
	return fmt.Sprintf("%q", b)
}

// writeDebugLevels renders this store's per-level tree view.
func (db *DB) writeDebugLevels(w io.Writer) {
	m := db.Metrics()
	fmt.Fprintf(w, "engine %v", db.opt.Engine)
	if mm, k := db.MixedLevel(); mm > 0 {
		fmt.Fprintf(w, "  (mixed level m=%d, k=%d)", mm, k)
	}
	fmt.Fprintf(w, "\nmemtable %.1f MB (+%d immutable)\n",
		mb(m.MemtableBytes), m.ImmutableMemtables)
	for _, li := range m.Levels {
		bar := li.Nodes
		if bar > 64 {
			bar = 64
		}
		fmt.Fprintf(w, "L%-2d %5d nodes %5d seqs %9.1f MB ", li.Level, li.Nodes, li.Seqs, mb(li.Bytes))
		for i := 0; i < bar; i++ {
			fmt.Fprint(w, "#")
		}
		if li.Quarantined > 0 {
			fmt.Fprintf(w, "  [%d quarantined]", li.Quarantined)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "space used %.1f MB, write amplification %.2f\n",
		mb(m.SpaceUsed), m.WriteAmplification())
	if q, ok := db.eng.(engine.Quarantiner); ok {
		if qs := q.Quarantined(); len(qs) > 0 {
			fmt.Fprintf(w, "\nquarantined tables (%d):\n", len(qs))
			for _, qi := range qs {
				fmt.Fprintf(w, "  L%-2d %06d %s — %s\n", qi.Level, qi.FileNum, qi.Path, qi.Reason)
			}
		}
	}
}

// handleDebugScrub reports scrub progress; POST (or ?start=1) kicks
// off an asynchronous pass when none is running.
func (db *DB) handleDebugScrub(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost || r.URL.Query().Get("start") == "1" {
		// The Add-under-mu ordering makes the spawn race-free against
		// Close's wg.Wait: Close flips closed under the same mutex
		// before it waits, so either we see closed (and skip) or our
		// Add happens before the Wait.
		db.mu.Lock()
		if !db.closed {
			db.wg.Add(1)
			go func() {
				defer db.wg.Done()
				pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
					pprof.Labels("iamdb", "scrub")))
				_, _ = db.Scrub() // ErrScrubRunning when one is in flight
			}()
		}
		db.mu.Unlock()
	}
	p := db.ScrubProgress()
	out := struct {
		Running        bool
		Tables, Blocks int64
		Bytes          int64
		Last           *ScrubReport `json:",omitempty"`
		LastSummary    string       `json:",omitempty"`
		LastErr        string       `json:",omitempty"`
	}{Running: p.Running, Tables: p.Tables, Blocks: p.Blocks, Bytes: p.Bytes, Last: p.Last}
	if p.Last != nil {
		out.LastSummary = p.Last.String()
	}
	if p.LastErr != nil {
		out.LastErr = p.LastErr.Error()
	}
	writeDebugJSON(w, out)
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
