package main

import (
	"fmt"
	"go/token"
	"path/filepath"
)

// syncorder is the static twin of the crash-matrix oracle: along
// every interprocedural path that reaches a manifest append/edit, the
// fresh table data written earlier on that path must already have
// been synced.  A crash between the manifest edit and the data sync
// would otherwise recover a manifest referencing garbage.
//
// The contract checked is deliberately coarse — "no manifest edit
// while ANY fresh unsynced table write is outstanding" — because the
// analysis cannot tell which tables an edit references.  The repo's
// flush/compaction paths all sync adjacent to the write, so the
// coarse contract holds.  Two deliberate scope cuts: (*Table).AppendFrom
// is not treated as a write (core.deliverToChild's widen-manifest-
// range-then-sync protocol for appends into an existing node is the
// documented inverse, safe because a wide range over old data is
// harmless), and raw vfs writes (e.g. checkpoint's file copies) are
// out of scope — only the table layer's Create/Append are tracked.
func syncorder(pr *program, emit func(diag)) {
	for _, n := range pr.order {
		dirty := false
		var writePos token.Pos
		for _, ev := range n.sum.events {
			switch ev.kind {
			case evWrite:
				dirty = true
				writePos = ev.pos
			case evSync:
				dirty = false
			case evEdit:
				if dirty {
					emit(syncDiag(pr, n, ev, writePos, nil))
				}
			case evCall:
				for _, cn := range pr.callees(n, ev) {
					if dirty && cn.sum.editsManifest {
						emit(syncDiag(pr, n, ev, writePos, cn))
						break
					}
				}
				for _, cn := range pr.callees(n, ev) {
					if cn.sum.dirtyAtExit {
						dirty = true
						writePos = ev.pos
						break
					}
				}
			}
		}
	}
}

func syncDiag(pr *program, n *funcNode, ev sumEvent, writePos token.Pos, callee *funcNode) diag {
	where := pr.fset.Position(writePos)
	via := ""
	if callee != nil {
		via = fmt.Sprintf(" (reached via %s)", callee.label)
	}
	return diag{
		pass: "syncorder",
		pos:  pr.fset.Position(ev.pos),
		msg: fmt.Sprintf("manifest edit%s while table data written at %s:%d is not yet synced — a crash here recovers a manifest referencing unsynced data; Sync before the edit",
			via, filepath.Base(where.Filename), where.Line),
	}
}
