package core

// This file implements the flush strategy of Sec. 5.1: the choice
// between appending and merging when a flush delivers records to a
// child, and the tuning of the mixed level m and sequence cap k from
// the memory budget (Sec. 5.1.3, Eq. (1) and (2)).

// shouldMerge decides whether delivering to kid at level dst rewrites
// the child (merge) or appends a new sequence.
//
//   - An empty child is always appended (the append is the whole
//     content).
//   - A full leaf child always merges, chunking into nodes of initial
//     size Cts (Fig. 4) — this holds for LSA and IAM alike.
//   - LSA otherwise always appends (Sec. 4).
//   - IAM appends above the mixed level, merges below it, and at the
//     mixed level merges only the children that already carry k
//     sequences (Sec. 5.1.2, Fig. 5).
func (t *Tree) shouldMerge(dst int, kid *node) bool {
	if kid.tbl.NumSeqs() == 0 {
		return false
	}
	if dst == t.n() && t.full(kid) {
		return true
	}
	if t.cfg.Policy == LSA {
		return false
	}
	m, k := t.curM, t.curK
	if m == 0 {
		m, k = t.mixedLevelLocked()
	}
	switch {
	case dst < m:
		return false
	case dst > m:
		return true
	default:
		return kid.tbl.NumSeqs() >= k
	}
}

// MixedLevel reports the current (m, k) the IAM policy would use; for
// LSA it reports m = n+1 (appending everywhere).
func (t *Tree) MixedLevel() (m, k int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Policy == LSA {
		return t.n() + 1, t.cfg.K
	}
	return t.mixedLevelLocked()
}

// retuneMK refreshes the cached (m, k) once per memtable flush — the
// paper samples cache residency periodically rather than per record
// (Sec. 5.1.3), and recomputing per child delivery would rescan every
// level's node list.
func (t *Tree) retuneMK() {
	if t.cfg.Policy == IAM {
		t.curM, t.curK = t.mixedLevelLocked()
	}
}

// mixedLevelLocked tunes m and k so all appended sequences fit in the
// memory budget M:
//
//	sum_{j<m} D_j  +  D_m*(k-1)/t  <=  M        (Eq. 2)
//
// where D_m*(k-1)/t is S_{m,k}, the expected bytes of appended
// sequences in the mixed level (Eq. 1).  The largest m, then the
// largest k <= cfg.K satisfying the inequality are preferred, since
// larger values mean fewer merges (Sec. 5.1.3).
func (t *Tree) mixedLevelLocked() (int, int) {
	if t.cfg.FixedM > 0 {
		return t.cfg.FixedM, t.cfg.K
	}
	m := t.cfg.MemBudget
	if m <= 0 {
		// No budget information: degenerate to LSA (append always).
		return t.n() + 1, t.cfg.K
	}
	d := t.levelDataSizesLocked()
	var sum int64
	mixed := 1
	for j := 1; j <= t.n(); j++ {
		if sum+d[j] <= m {
			sum += d[j]
			mixed = j + 1
		} else {
			break
		}
	}
	if mixed > t.n() {
		return mixed, t.cfg.K
	}
	k := 1
	for kk := t.cfg.K; kk >= 1; kk-- {
		if sum+d[mixed]*int64(kk-1)/int64(t.cfg.Fanout) <= m {
			k = kk
			break
		}
	}
	return mixed, k
}
