package vfs

import (
	"sync/atomic"
)

// IOStats accumulates raw device traffic.  The paper's amplification
// metrics are ratios over these counters: write amplification is
// BytesWritten (excluding the user log, which callers track separately)
// divided by the bytes users inserted; read amplification is Seeks per
// query in the out-of-RAM regime.
type IOStats struct {
	BytesWritten atomic.Int64
	BytesRead    atomic.Int64
	WriteOps     atomic.Int64
	ReadOps      atomic.Int64
	// Seeks counts positioned I/Os that were not sequential with the
	// handle's previous operation.
	Seeks atomic.Int64
}

// Snapshot returns a plain-struct copy of the counters.
func (s *IOStats) Snapshot() IOSnapshot {
	return IOSnapshot{
		BytesWritten: s.BytesWritten.Load(),
		BytesRead:    s.BytesRead.Load(),
		WriteOps:     s.WriteOps.Load(),
		ReadOps:      s.ReadOps.Load(),
		Seeks:        s.Seeks.Load(),
	}
}

// IOSnapshot is a point-in-time copy of IOStats.
type IOSnapshot struct {
	BytesWritten int64
	BytesRead    int64
	WriteOps     int64
	ReadOps      int64
	Seeks        int64
}

// Sub returns the delta s - o, counter by counter.
func (s IOSnapshot) Sub(o IOSnapshot) IOSnapshot {
	return IOSnapshot{
		BytesWritten: s.BytesWritten - o.BytesWritten,
		BytesRead:    s.BytesRead - o.BytesRead,
		WriteOps:     s.WriteOps - o.WriteOps,
		ReadOps:      s.ReadOps - o.ReadOps,
		Seeks:        s.Seeks - o.Seeks,
	}
}

// StatsFS wraps an FS and records traffic into an IOStats.
type StatsFS struct {
	inner FS
	stats *IOStats
}

// NewStatsFS wraps fs; all handles opened through the wrapper feed st.
func NewStatsFS(fs FS, st *IOStats) *StatsFS {
	return &StatsFS{inner: fs, stats: st}
}

// Stats returns the wrapped counter set.
func (s *StatsFS) Stats() *IOStats { return s.stats }

// Create implements FS.
func (s *StatsFS) Create(name string) (File, error) {
	f, err := s.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &statsFile{inner: f, stats: s.stats, lastRead: -1, lastWrite: -1}, nil
}

// Open implements FS.
func (s *StatsFS) Open(name string) (File, error) {
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &statsFile{inner: f, stats: s.stats, lastRead: -1, lastWrite: -1}, nil
}

// Remove implements FS.
func (s *StatsFS) Remove(name string) error { return s.inner.Remove(name) }

// Rename implements FS.
func (s *StatsFS) Rename(o, n string) error { return s.inner.Rename(o, n) }

// List implements FS.
func (s *StatsFS) List(dir string) ([]string, error) { return s.inner.List(dir) }

// MkdirAll implements FS.
func (s *StatsFS) MkdirAll(dir string) error { return s.inner.MkdirAll(dir) }

// Exists implements FS.
func (s *StatsFS) Exists(name string) bool { return s.inner.Exists(name) }

type statsFile struct {
	inner     File
	stats     *IOStats
	lastRead  int64 // next offset that would continue the previous read
	lastWrite int64
}

func (f *statsFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.inner.ReadAt(p, off)
	f.stats.BytesRead.Add(int64(n))
	f.stats.ReadOps.Add(1)
	if off != atomic.LoadInt64(&f.lastRead) {
		f.stats.Seeks.Add(1)
	}
	atomic.StoreInt64(&f.lastRead, off+int64(n))
	return n, err
}

func (f *statsFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.inner.WriteAt(p, off)
	f.stats.BytesWritten.Add(int64(n))
	f.stats.WriteOps.Add(1)
	if off != atomic.LoadInt64(&f.lastWrite) {
		f.stats.Seeks.Add(1)
	}
	atomic.StoreInt64(&f.lastWrite, off+int64(n))
	return n, err
}

func (f *statsFile) Write(p []byte) (int, error) {
	n, err := f.inner.Write(p)
	f.stats.BytesWritten.Add(int64(n))
	f.stats.WriteOps.Add(1)
	return n, err
}

func (f *statsFile) Close() error           { return f.inner.Close() }
func (f *statsFile) Sync() error            { return f.inner.Sync() }
func (f *statsFile) Size() (int64, error)   { return f.inner.Size() }
func (f *statsFile) Truncate(n int64) error { return f.inner.Truncate(n) }
