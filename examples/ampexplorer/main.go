// Amplification explorer: load the same random workload into all four
// engines and compare measured write amplification, space usage and
// tree shape against the paper's closed-form model (Sec. 5.3) — a
// miniature of Table 4 runnable in seconds.
//
//	go run ./examples/ampexplorer
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"iamdb"
)

const records = 24000

func load(engine iamdb.EngineKind) iamdb.Metrics {
	dir, err := os.MkdirTemp("", "iamdb-amp")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := iamdb.Open(dir, &iamdb.Options{
		Engine:       engine,
		MemtableSize: 32 * 1024,
		CacheSize:    2 << 20,
		MemBudget:    1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(99))
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < records; i++ {
		k := fmt.Sprintf("user%016x", rng.Uint64())
		if err := db.Put([]byte(k), val); err != nil {
			log.Fatal(err)
		}
	}
	return db.Metrics()
}

func main() {
	fmt.Printf("hash-loading %d records into each engine...\n\n", records)
	fmt.Printf("%-8s  %-9s  %-9s  %s\n", "engine", "write-amp", "space-MiB", "levels (nodes/seqs)")
	for _, e := range []iamdb.EngineKind{iamdb.LevelDB, iamdb.RocksDB, iamdb.LSA, iamdb.IAM} {
		m := load(e)
		shape := ""
		for _, l := range m.Levels {
			if l.Nodes == 0 {
				continue
			}
			shape += fmt.Sprintf("L%d:%d/%d ", l.Level, l.Nodes, l.Seqs)
		}
		fmt.Printf("%-8s  %-9.2f  %-9.1f  %s\n",
			e, m.WriteAmplification(), float64(m.SpaceUsed)/(1<<20), shape)
	}

	fmt.Println("\ntheory (Sec. 5.3, t=10): Wlsa = Wsp + n;")
	fmt.Println("Wiam adds t/2k at the mixed level and t/2 per merging level;")
	fmt.Println("leveled LSM pays about (t+1) per level transition.")
	fmt.Println("expect measured ordering LSA < IAM < LevelDB <= RocksDB.")
}
