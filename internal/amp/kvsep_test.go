package amp

import "testing"

func TestCrossoverSolvesEquality(t *testing.T) {
	p := KVSepParams{KeySize: 16, PointerSize: 20, RecordOverhead: 7, TreeWriteAmp: 6.5}
	v := CrossoverValueSize(p)
	// At V* the two lifetime device-byte forms are equal.
	in := InlineDeviceBytes(p, int(v))
	sep := SeparatedDeviceBytes(p, int(v))
	// int truncation of v perturbs both sides by at most (1+W) bytes.
	if !near(in, sep, 1+p.TreeWriteAmp) {
		t.Fatalf("at V*=%.1f: inline %.1f separated %.1f", v, in, sep)
	}
}

func TestSeparationGainGrowsWithValueSize(t *testing.T) {
	p := KVSepParams{KeySize: 16, PointerSize: 20, RecordOverhead: 7, TreeWriteAmp: 6.5}
	v := CrossoverValueSize(p)
	if g := SeparationGain(p, int(v/2)); g >= 1 {
		t.Fatalf("below crossover separation should lose: gain %.3f", g)
	}
	if g := SeparationGain(p, int(v*4)); g <= 1 {
		t.Fatalf("above crossover separation should win: gain %.3f", g)
	}
	// The gain is monotone in V and approaches 1+W as V → ∞.
	prev := 0.0
	for _, v := range []int{64, 1 << 10, 64 << 10, 1 << 20} {
		g := SeparationGain(p, v)
		if g <= prev {
			t.Fatalf("gain not monotone at %d: %.3f <= %.3f", v, g, prev)
		}
		prev = g
	}
	if lim := 1 + p.TreeWriteAmp; prev >= lim {
		t.Fatalf("gain %.3f exceeded limit %.3f", prev, lim)
	}
}

func TestCrossoverDropsWithWriteAmp(t *testing.T) {
	// Heavier merge pipelines make separation pay off at smaller values.
	base := KVSepParams{KeySize: 16, PointerSize: 20, RecordOverhead: 7}
	low, high := base, base
	low.TreeWriteAmp, high.TreeWriteAmp = 2, 10
	if CrossoverValueSize(low) <= CrossoverValueSize(high) {
		t.Fatal("crossover should shrink as W grows")
	}
	// W = 0 means values are never rewritten, so separation never wins.
	zero := base
	if CrossoverValueSize(zero) < 1e17 {
		t.Fatal("zero write amp should push the crossover to infinity")
	}
}
