// Package determbad opts into the determinism scope and then breaks
// it: wall-clock reads, the global rand source, and direct OS access.
//
//iamlint:deterministic
package determbad

import (
	"math/rand"
	"os"
	"time"
)

func now() int64 { return time.Now().UnixNano() } // want [determinism] time.Now reads the wall clock

func wait() { time.Sleep(time.Millisecond) } // want [determinism] time.Sleep reads the wall clock

func roll() int { return rand.Intn(6) } // want [determinism] rand.Intn uses the globally-seeded rand source

func home() string { return os.Getenv("HOME") } // want [determinism] os.Getenv touches the real OS

func seeded() int {
	r := rand.New(rand.NewSource(1)) // constructing a seeded source is allowed
	return r.Intn(6)
}

func duration(ms int64) time.Duration {
	return time.Duration(ms) * time.Millisecond // conversions are not calls
}
