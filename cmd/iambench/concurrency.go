package main

// The concurrency experiment measures the commit pipeline's group
// commit under real write contention: N goroutines issue synchronous
// Puts against one DB, and throughput is wall-clock ops/sec.  It lives
// in cmd/iambench (not internal/harness) because it must read the wall
// clock — the harness packages are in iamlint's determinism scope.
//
// The filesystem is an in-memory FS whose Sync carries a fixed modeled
// device latency.  That latency is the quantity group commit exists to
// amortize: with one writer every commit pays a full sync; with N
// writers the queue fills while the leader is inside Sync, so the next
// leader commits the whole backlog under a single sync.  Throughput
// should therefore scale close to linearly with the writer count until
// group sizes saturate.

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"iamdb"
	"iamdb/internal/harness"
	"iamdb/internal/vfs"
)

const (
	// concSyncLat is the modeled device sync latency.
	concSyncLat = 100 * time.Microsecond
	// concValueSize is the harness's default value size — referenced,
	// not restated, so the two cannot drift.
	concValueSize = harness.DefaultValueSize
)

// syncLatFS wraps an FS so every file Sync sleeps for the modeled
// device latency before delegating.  Reads and writes stay free, which
// isolates the one cost the commit pipeline amortizes.
type syncLatFS struct {
	vfs.FS
	lat time.Duration
}

func (fs syncLatFS) Create(name string) (vfs.File, error) {
	f, err := fs.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return syncLatFile{File: f, lat: fs.lat}, nil
}

func (fs syncLatFS) Open(name string) (vfs.File, error) {
	f, err := fs.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return syncLatFile{File: f, lat: fs.lat}, nil
}

type syncLatFile struct {
	vfs.File
	lat time.Duration
}

func (f syncLatFile) Sync() error {
	time.Sleep(f.lat)
	return f.File.Sync()
}

// runConcurrency produces the contention table: ops/sec, mean commit
// group size, and speedup over one writer, at 1/4/8/16 writers.
func runConcurrency(s harness.Scale) (harness.Table, error) {
	ops := 4000
	if s.Name == "small" {
		ops = 1600
	}
	tbl := harness.Table{
		Title: fmt.Sprintf("Concurrent commit throughput: %d sync Puts on MemFS with %v sync latency (IAM)",
			ops, concSyncLat),
		Header: []string{"writers", "ops/sec", "mean group", "speedup"},
	}
	var base float64
	for _, w := range []int{1, 4, 8, 16} {
		opsPerSec, meanGroup, err := concurrencyRun(w, ops)
		if err != nil {
			return harness.Table{}, err
		}
		if base == 0 {
			base = opsPerSec
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.0f", opsPerSec),
			fmt.Sprintf("%.2f", meanGroup),
			fmt.Sprintf("%.2fx", opsPerSec/base),
		})
	}
	return tbl, nil
}

// concurrencyRun times writers concurrent goroutines splitting totalOps
// synchronous Puts over a fresh DB.
func concurrencyRun(writers, totalOps int) (opsPerSec, meanGroup float64, err error) {
	fs := syncLatFS{FS: vfs.NewMemFS(), lat: concSyncLat}
	db, err := iamdb.Open("db", &iamdb.Options{
		Engine: iamdb.IAM, FS: fs, SyncWrites: true,
	})
	if err != nil {
		return 0, 0, err
	}
	val := bytes.Repeat([]byte("v"), concValueSize)
	perW := totalOps / writers
	errs := make([]error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := make([]byte, 0, 32)
			for i := 0; i < perW; i++ {
				key = fmt.Appendf(key[:0], "w%03d-%09d", w, i)
				if err := db.Put(key, val); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, e := range errs {
		if e != nil {
			_ = db.Close()
			return 0, 0, e
		}
	}
	m := db.Metrics()
	harness.Report(harness.MetricsRecord{
		Engine:  fmt.Sprintf("IAM-%dwriters", writers),
		Disk:    fmt.Sprintf("mem+sync%v", concSyncLat),
		Metrics: m,
	})
	if err := db.Close(); err != nil {
		return 0, 0, err
	}
	return float64(perW*writers) / elapsed.Seconds(), m.MeanCommitGroupSize(), nil
}
