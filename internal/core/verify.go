package core

import (
	"fmt"

	"iamdb/internal/kv"
)

// VerifyReport summarizes a deep consistency check.
type VerifyReport struct {
	Levels       int
	Nodes        int
	Sequences    int
	Records      uint64
	BloomProbes  int
	RangeChecked int
}

func (r VerifyReport) String() string {
	return fmt.Sprintf("levels=%d nodes=%d seqs=%d records=%d bloom-probes=%d",
		r.Levels, r.Nodes, r.Sequences, r.Records, r.BloomProbes)
}

// DeepVerify walks every node and sequence, checking the full set of
// structural and data invariants:
//
//  1. level node counts within thresholds (internal levels),
//  2. assigned ranges sorted, disjoint, covering their node's data,
//  3. per-sequence metadata bounds match the actual keys,
//  4. sequences iterate in strict internal-key order,
//  5. every user key probes positive in its sequence's Bloom filter,
//  6. per-node Get finds a sample of the node's own keys.
//
// It reads every data block, so it is for tests and tooling, not the
// hot path.
func (t *Tree) DeepVerify() (VerifyReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rep VerifyReport
	rep.Levels = t.n()

	for i := 1; i <= t.n(); i++ {
		lvl := t.levels[i]
		if i < t.n() && len(lvl) > t.threshold(i) {
			return rep, fmt.Errorf("L%d: %d nodes over threshold %d", i, len(lvl), t.threshold(i))
		}
		for j, nd := range lvl {
			rep.Nodes++
			if j > 0 && !lvl[j-1].rng.Before(nd.rng) {
				return rep, fmt.Errorf("L%d: node %d range %v not after %v",
					i, nd.num, nd.rng, lvl[j-1].rng)
			}
			if err := t.verifyNode(i, nd, &rep); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

func (t *Tree) verifyNode(lvl int, nd *node, rep *VerifyReport) error {
	tbl := nd.tbl
	numSeqs := tbl.NumSeqs()
	rep.Sequences += numSeqs
	for s := 0; s < numSeqs; s++ {
		meta := tbl.SeqMetaAt(s)
		it := tbl.SeqIter(s)
		var prev []byte
		var count uint64
		var sampleKeys [][]byte
		for it.First(); it.Valid(); it.Next() {
			k := it.Key()
			if prev != nil && kv.CompareInternal(prev, k) >= 0 {
				return fmt.Errorf("L%d node %d seq %d: keys out of order", lvl, nd.num, s)
			}
			u, _, _, ok := kv.ParseInternalKey(k)
			if !ok {
				return fmt.Errorf("L%d node %d seq %d: bad internal key", lvl, nd.num, s)
			}
			if !nd.rng.Contains(u) {
				return fmt.Errorf("L%d node %d seq %d: key %q outside assigned range %v",
					lvl, nd.num, s, u, nd.rng)
			}
			if kv.CompareInternal(k, meta.Smallest) < 0 || kv.CompareInternal(k, meta.Largest) > 0 {
				return fmt.Errorf("L%d node %d seq %d: key %q outside metadata bounds",
					lvl, nd.num, s, u)
			}
			if !meta.Bloom.MayContain(u) {
				return fmt.Errorf("L%d node %d seq %d: bloom false negative for %q",
					lvl, nd.num, s, u)
			}
			rep.BloomProbes++
			if count%97 == 0 {
				sampleKeys = append(sampleKeys, append([]byte(nil), u...))
			}
			prev = append(prev[:0], k...)
			count++
		}
		if err := it.Err(); err != nil {
			return fmt.Errorf("L%d node %d seq %d: %w", lvl, nd.num, s, err)
		}
		it.Close()
		if count != meta.Entries {
			return fmt.Errorf("L%d node %d seq %d: %d records, metadata says %d",
				lvl, nd.num, s, count, meta.Entries)
		}
		rep.Records += count
		// Sampled point lookups through the node's own Get path.
		for _, u := range sampleKeys {
			if _, _, _, found, err := tbl.Get(u, kv.MaxSeq); err != nil || !found {
				return fmt.Errorf("L%d node %d: own key %q unfindable (%v)", lvl, nd.num, u, err)
			}
			rep.RangeChecked++
		}
	}
	return nil
}
