// Package engine defines the contract between the public DB layer and
// the storage engines (the LSM baselines in internal/lsm and the
// LSA/IAM trees in internal/core), plus helpers both sides share:
// write-amplification statistics and the MVCC record filter applied
// during merges.
package engine

import (
	"fmt"
	"sync"

	"iamdb/internal/iterator"
	"iamdb/internal/kv"
)

// Engine is a storage tree: it accepts flushed memtables, performs its
// own compaction, and serves reads.
type Engine interface {
	// Flush writes one immutable memtable (as an internal-key ordered
	// iterator) into the tree, performing whatever compaction cascade
	// the tree's policy requires.
	Flush(it iterator.Iterator) error
	// NeedsWork reports whether background compaction is pending
	// (LSM baselines; the trees compact inside Flush).
	NeedsWork() bool
	// WorkStep performs one unit of background compaction, reporting
	// whether it did anything.
	WorkStep() (bool, error)
	// StallLevel reports write-throttle state: 0 none, 1 slowdown,
	// 2 stop.  The DB layer translates this into write delays.
	StallLevel() int
	// Get finds the newest version of ukey visible at snapshot snap.
	Get(ukey []byte, snap kv.Seq) (val []byte, kind kv.Kind, seq kv.Seq, found bool, err error)
	// NewIter returns a merged iterator over all on-disk data.
	NewIter() iterator.Iterator
	// SetHorizon tells the engine the oldest snapshot still active, so
	// merges know which record versions remain reachable.
	SetHorizon(h kv.Seq)
	// Stats returns cumulative compaction statistics.
	Stats() StatsSnapshot
	// Levels summarizes the current tree shape.
	Levels() []LevelInfo
	// SpaceUsed reports on-disk bytes (data + metadata, holes free).
	SpaceUsed() int64
	// Close releases all resources.  The tree must be reopenable from
	// its manifest afterwards.
	Close() error
}

// LevelInfo summarizes one level for reporting.
type LevelInfo struct {
	Level int
	Nodes int
	Bytes int64 // data bytes stored
	Seqs  int   // total sorted sequences across nodes
}

func (l LevelInfo) String() string {
	return fmt.Sprintf("L%d: %d nodes, %d seqs, %.1f MiB",
		l.Level, l.Nodes, l.Seqs, float64(l.Bytes)/(1<<20))
}

// Stats accumulates compaction-side counters.  All engines attribute
// every table write to the level it lands in; Table 3 and Table 4 are
// ratios of these counters to user bytes.
type Stats struct {
	mu sync.Mutex
	s  StatsSnapshot
}

// StatsSnapshot is a copyable view of Stats.
type StatsSnapshot struct {
	// FlushBytes[i] = bytes written into level i by flushes/compactions
	// (excluding the user log, as in the paper's Sec. 6.2 accounting).
	FlushBytes []int64
	Appends    int64 // append operations
	Merges     int64 // merge (rewrite) operations
	Moves      int64 // metadata-only move-downs
	Splits     int64
	Combines   int64
	Flushes    int64 // node flushes (incl. memtable flushes)
}

// AddFlushBytes attributes written bytes to a destination level.
func (st *Stats) AddFlushBytes(level int, n int64) {
	st.mu.Lock()
	for len(st.s.FlushBytes) <= level {
		st.s.FlushBytes = append(st.s.FlushBytes, 0)
	}
	st.s.FlushBytes[level] += n
	st.mu.Unlock()
}

// CountAppend, CountMerge, CountMove, CountSplit, CountCombine and
// CountFlush increment their respective counters.
func (st *Stats) CountAppend()  { st.mu.Lock(); st.s.Appends++; st.mu.Unlock() }
func (st *Stats) CountMerge()   { st.mu.Lock(); st.s.Merges++; st.mu.Unlock() }
func (st *Stats) CountMove()    { st.mu.Lock(); st.s.Moves++; st.mu.Unlock() }
func (st *Stats) CountSplit()   { st.mu.Lock(); st.s.Splits++; st.mu.Unlock() }
func (st *Stats) CountCombine() { st.mu.Lock(); st.s.Combines++; st.mu.Unlock() }
func (st *Stats) CountFlush()   { st.mu.Lock(); st.s.Flushes++; st.mu.Unlock() }

// Snapshot returns a copy of the counters.
func (st *Stats) Snapshot() StatsSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.s
	out.FlushBytes = append([]int64(nil), st.s.FlushBytes...)
	return out
}

// TotalFlushBytes sums per-level flush bytes.
func (s StatsSnapshot) TotalFlushBytes() int64 {
	var n int64
	for _, b := range s.FlushBytes {
		n += b
	}
	return n
}

// DropObsolete wraps a merge input, applying the MVCC retention rule:
// for each user key keep every version newer than horizon (still
// visible to some snapshot) plus the newest version at or below the
// horizon; drop the rest.  When atBottom is true — the merge output is
// the deepest data for its key range — a tombstone that would be that
// retained newest version is dropped entirely (Sec. 5.2: "In merges,
// the outdated records are removed and the valid records remain").
//
// Appends never pass through this filter; that is precisely why append
// trees carry extra space amplification (Sec. 5.3.3).
func DropObsolete(it iterator.Iterator, horizon kv.Seq, atBottom bool) iterator.Iterator {
	return &dropIter{in: it, horizon: horizon, atBottom: atBottom}
}

type dropIter struct {
	in       iterator.Iterator
	horizon  kv.Seq
	atBottom bool
	lastUser []byte
	hasLast  bool
	keptLow  bool // emitted the newest version <= horizon for lastUser
}

func (d *dropIter) reset() {
	d.lastUser = d.lastUser[:0]
	d.hasLast = false
	d.keptLow = false
}

// skipDropped advances the inner iterator past records the retention
// rule discards, leaving it on the next record to emit (or invalid).
func (d *dropIter) skipDropped() {
	for d.in.Valid() {
		u, seq, kind, ok := kv.ParseInternalKey(d.in.Key())
		if !ok {
			return // surface the corrupt record to the caller
		}
		newUser := !d.hasLast || kv.CompareUser(u, d.lastUser) != 0
		if newUser {
			d.lastUser = append(d.lastUser[:0], u...)
			d.hasLast = true
			d.keptLow = false
		}
		if seq > d.horizon {
			return // visible to a snapshot: keep
		}
		if !d.keptLow {
			d.keptLow = true
			if kind == kv.KindDelete && d.atBottom {
				d.in.Next() // tombstone with nothing underneath: drop
				continue
			}
			return
		}
		d.in.Next() // shadowed version: drop
	}
}

// First implements iterator.Iterator.
func (d *dropIter) First() {
	d.reset()
	d.in.First()
	d.skipDropped()
}

// Seek implements iterator.Iterator.  Seeking mid-stream forgets user
// key context; callers only Seek before consuming, which is safe.
func (d *dropIter) Seek(target []byte) {
	d.reset()
	d.in.Seek(target)
	d.skipDropped()
}

// Next implements iterator.Iterator.
func (d *dropIter) Next() {
	d.in.Next()
	d.skipDropped()
}

// Valid implements iterator.Iterator.
func (d *dropIter) Valid() bool { return d.in.Valid() }

// Key implements iterator.Iterator.
func (d *dropIter) Key() []byte { return d.in.Key() }

// Value implements iterator.Iterator.
func (d *dropIter) Value() []byte { return d.in.Value() }

// Err implements iterator.Iterator.
func (d *dropIter) Err() error { return d.in.Err() }

// Close implements iterator.Iterator.
func (d *dropIter) Close() error { return d.in.Close() }

// TableFileName builds the canonical table file name for a file number.
func TableFileName(dir string, num uint64) string {
	return fmt.Sprintf("%s/%06d.mst", dir, num)
}

// RangeSizer is implemented by engines that can estimate the on-disk
// bytes stored within a user-key range.
type RangeSizer interface {
	ApproximateSize(lo, hi []byte) int64
}
