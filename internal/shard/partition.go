// Package shard implements the range-partitioned multi-tree front-end:
// a Partition that routes user keys to one of N disjoint, totally
// ordered key ranges, and a Sequencer that allocates global sequence
// ranges across the per-shard commit pipelines while exposing a torn-
// batch-free visible watermark (see DESIGN.md "Sharded front-end").
package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Partition is an immutable description of a range partitioning: N
// shards separated by N-1 strictly increasing split keys.  Shard i
// owns user keys k with splits[i-1] <= k < splits[i] (shard 0 starts
// at the empty key, the last shard is unbounded above).
type Partition struct {
	splits [][]byte
}

// DefaultSplits returns equal-width first-byte split points for n
// shards: split j is the single byte 256*j/n.  Uniformly distributed
// key prefixes then spread evenly; callers with structured keyspaces
// pass their own splits instead.
func DefaultSplits(n int) [][]byte {
	splits := make([][]byte, n-1)
	for j := 1; j < n; j++ {
		splits[j-1] = []byte{byte(256 * j / n)}
	}
	return splits
}

// NewPartition validates count and splits into a Partition.  A nil
// splits slice means DefaultSplits(count).
func NewPartition(count int, splits [][]byte) (Partition, error) {
	if count < 2 {
		return Partition{}, fmt.Errorf("shard: partition needs >= 2 shards, got %d", count)
	}
	if splits == nil {
		splits = DefaultSplits(count)
	}
	if len(splits) != count-1 {
		return Partition{}, fmt.Errorf("shard: %d shards need %d splits, got %d",
			count, count-1, len(splits))
	}
	for i, s := range splits {
		if len(s) == 0 {
			return Partition{}, fmt.Errorf("shard: split %d is empty", i)
		}
		if i > 0 && bytes.Compare(splits[i-1], s) >= 0 {
			return Partition{}, fmt.Errorf("shard: splits not strictly increasing at %d (%q >= %q)",
				i, splits[i-1], s)
		}
	}
	// Deep-copy so later caller mutation cannot skew routing.
	own := make([][]byte, len(splits))
	for i, s := range splits {
		own[i] = append([]byte(nil), s...)
	}
	return Partition{splits: own}, nil
}

// Count reports the number of shards.
func (p Partition) Count() int { return len(p.splits) + 1 }

// Splits returns the split keys (shared slice; callers must not
// mutate).
func (p Partition) Splits() [][]byte { return p.splits }

// IndexOf routes a user key to its owning shard: the number of splits
// at or below the key.
func (p Partition) IndexOf(key []byte) int {
	return sort.Search(len(p.splits), func(i int) bool {
		return bytes.Compare(key, p.splits[i]) < 0
	})
}

// Equal reports whether two partitions route identically.
func (p Partition) Equal(o Partition) bool {
	if len(p.splits) != len(o.splits) {
		return false
	}
	for i := range p.splits {
		if !bytes.Equal(p.splits[i], o.splits[i]) {
			return false
		}
	}
	return true
}

// SHARDS-file wire format: the root marker a sharded database directory
// carries so any later open recovers the exact routing.  Layout:
//
//	magic "IAMSHRD1" | count(uvarint) | {splitLen(uvarint) split}* | crc32(LE)
//
// The trailing CRC covers everything before it, so single-byte rot is
// always detected and surfaces as a typed corruption error at open.

const shardsMagic = "IAMSHRD1"

// ErrBadShardsFile is the sentinel cause for every SHARDS decode
// failure; iamdb wraps it with corruption provenance.
var ErrBadShardsFile = errors.New("shard: malformed SHARDS file")

// Encode serializes the partition for the SHARDS marker file.
func (p Partition) Encode() []byte {
	buf := []byte(shardsMagic)
	buf = binary.AppendUvarint(buf, uint64(p.Count()))
	for _, s := range p.splits {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodePartition parses a SHARDS marker, verifying magic, CRC and
// structure.  Every failure wraps ErrBadShardsFile.
func DecodePartition(data []byte) (Partition, error) {
	fail := func(detail string) (Partition, error) {
		return Partition{}, fmt.Errorf("%w: %s", ErrBadShardsFile, detail)
	}
	if len(data) < len(shardsMagic)+4 {
		return fail("truncated")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return fail(fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", sum, got))
	}
	if string(body[:len(shardsMagic)]) != shardsMagic {
		return fail("bad magic")
	}
	p := body[len(shardsMagic):]
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	count, ok := u()
	if !ok || count < 2 || count > 1<<16 {
		return fail("bad shard count")
	}
	splits := make([][]byte, 0, count-1)
	for i := uint64(1); i < count; i++ {
		n, ok := u()
		if !ok || uint64(len(p)) < n {
			return fail("truncated split")
		}
		splits = append(splits, append([]byte(nil), p[:n]...))
		p = p[n:]
	}
	if len(p) != 0 {
		return fail("trailing bytes")
	}
	part, err := NewPartition(int(count), splits)
	if err != nil {
		return fail(err.Error())
	}
	return part, nil
}
