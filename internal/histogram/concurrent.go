package histogram

import (
	"math"
	"sync/atomic"
	"time"
)

// Concurrent is a latency histogram safe for concurrent use: every
// bucket is an atomic counter, so Record never takes a lock and never
// allocates.  It exists for always-on metrics (the DB's per-operation
// latency tracking), where many goroutines record into one histogram;
// harnesses that own their workers can keep using the cheaper H.
//
// Max and min are maintained with CAS loops; between Record and
// Snapshot the counters are only ever monotonically stale, so a
// Snapshot taken during concurrent recording is a consistent-enough
// view for reporting (bucket sums may trail count by in-flight ops).
type Concurrent struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64
}

// NewConcurrent returns an empty concurrent histogram.
func NewConcurrent() *Concurrent {
	c := &Concurrent{}
	c.min.Store(math.MaxInt64)
	return c
}

// Record adds one latency observation.  Safe for concurrent use.
func (c *Concurrent) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	c.buckets[bucketOf(ns)].Add(1)
	c.count.Add(1)
	c.sum.Add(ns)
	for {
		cur := c.max.Load()
		if ns <= cur || c.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := c.min.Load()
		if ns >= cur || c.min.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count reports the number of observations.
func (c *Concurrent) Count() int64 { return c.count.Load() }

// Snapshot folds the counters into a plain H for percentile math.
func (c *Concurrent) Snapshot() *H {
	h := New()
	for i := range c.buckets {
		h.buckets[i] = c.buckets[i].Load()
	}
	h.count = c.count.Load()
	h.sum = c.sum.Load()
	h.max = c.max.Load()
	h.min = c.min.Load()
	return h
}

// Summary reports the headline statistics of the histogram.
func (c *Concurrent) Summary() Summary { return c.Snapshot().Summary() }

// Summary is a copyable, JSON-friendly digest of a histogram: the
// quantities the paper's QoS discussion reports (Sec. 6.2, Table 5).
type Summary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Summary reports the headline statistics of the histogram.
func (h *H) Summary() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(0.50),
		P99:   h.Percentile(0.99),
		P999:  h.Percentile(0.999),
		Max:   h.Max(),
	}
}
