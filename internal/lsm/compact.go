package lsm

import (
	"iamdb/internal/engine"
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/manifest"
	"iamdb/internal/metrics"
	"iamdb/internal/table"
)

// Flush implements engine.Engine: the immutable memtable becomes one
// new L0 file (ranges in L0 may overlap).
func (d *DB) Flush(it iterator.Iterator) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.CountFlush()
	start := d.cfg.Clock.Now()
	sp := d.cfg.Trace.Begin("lsm.flush")
	sp.SetLevel(0)
	filtered := engine.DropObsoleteObserved(it, d.horizon, false, d.cfg.OnDrop)
	filtered.First()
	files, bytes, err := d.writeFiles(filtered, 1<<62)
	d.cfg.Events.FlushEnd(metrics.FlushInfo{Bytes: bytes, Duration: d.cfg.Clock.Now() - start})
	if err != nil {
		return err
	}
	d.stats.AddFlushBytes(0, bytes)
	edit := &manifest.Edit{NextFile: d.nextFile, SetNextFile: true}
	for _, f := range files {
		d.levels[0] = append(d.levels[0], f)
		sp.AddOut(f.num)
		edit.Added = append(edit.Added, d.record(0, f))
	}
	d.sortLevel0()
	err = d.logEdit(edit)
	sp.SetBytes(bytes)
	sp.End()
	return err
}

// writeFiles drains a positioned iterator into new tables of at most
// limit data bytes each, gathering each chunk in memory to size the
// file exactly.
func (d *DB) writeFiles(it iterator.Iterator, limit int64) ([]*file, int64, error) {
	var files []*file
	var total int64
	for it.Valid() {
		var keys, vals [][]byte
		var bytes int64
		var lastUser []byte
		for ; it.Valid(); it.Next() {
			u := kv.UserKey(it.Key())
			if bytes >= limit && !(len(u) == len(lastUser) && string(u) == string(lastUser)) {
				break
			}
			keys = append(keys, append([]byte(nil), it.Key()...))
			vals = append(vals, append([]byte(nil), it.Value()...))
			bytes += int64(len(it.Key()) + len(it.Value()))
			lastUser = append(lastUser[:0], u...)
		}
		if err := it.Err(); err != nil {
			return files, total, err
		}
		if len(keys) == 0 {
			break
		}
		capacity := bytes + bytes/2 + 64*1024
		num := d.nextFile
		d.nextFile++
		tbl, err := table.Create(d.cfg.FS, engine.TableFileName(d.cfg.Dir, num), num,
			capacity, table.Options{Cache: d.cfg.Cache, BitsPerKey: d.cfg.BitsPerKey,
				Compression: d.cfg.Compression})
		if err != nil {
			return files, total, err
		}
		res, err := tbl.Append(iterator.NewSlice(kv.CompareInternal, keys, vals))
		if err == nil {
			// New tables must be durable before any manifest edit
			// references them.
			err = tbl.Sync()
		}
		if err != nil {
			// Error-path cleanup of a half-written table: the append
			// failure is the error that matters.
			_ = tbl.Close()
			_ = d.cfg.FS.Remove(engine.TableFileName(d.cfg.Dir, num))
			return files, total, err
		}
		d.cfg.Events.TableCreated(metrics.TableInfo{FileNum: num, Level: -1, Bytes: res.Bytes})
		total += res.Bytes
		files = append(files, &file{num: num, tbl: tbl, rng: tbl.UserRange(), refs: 1})
	}
	// An iterator whose very first position failed never enters the
	// loop above: without this check a corrupt input would read as
	// empty and the compaction would silently discard the level's data.
	if err := it.Err(); err != nil {
		return files, total, err
	}
	return files, total, nil
}

// overflowTolerance is the score at which the LevelDB profile finally
// compacts a size-triggered level.  Real LevelDB's single background
// thread falls behind sustained writes, letting level sizes overflow
// their thresholds (the paper measures 5.6x on L1, 3.0x on L2 after a
// 1 TB load, Sec. 6.2); this tolerance reproduces that behaviour
// structurally in the virtual-time harness.
const overflowTolerance = 2.0

// pickCompaction scores every level (L0 by file count, others by size
// over threshold) and returns the level to compact, or -1.  strict
// ignores the LevelDB profile's overflow tolerance (used to settle the
// tree — the "tuning phase").  Quarantined files neither score (see
// levelBytes/activeCount) nor block scheduling of other levels, but a
// level whose compaction would have to merge with a quarantined target
// file is skipped entirely: rewriting a fenced file would destroy the
// evidence, and attempting to read it would fail the merge forever.
func (d *DB) pickCompaction(strict bool) (int, float64) {
	trigger := 1.0
	if !strict && d.cfg.Profile == ProfileLevelDB {
		trigger = overflowTolerance
	}
	best, bestScore := -1, 0.0
	s0 := float64(d.activeCount(0)) / float64(d.cfg.L0CompactTrigger)
	if s0 >= 1 && s0 > bestScore && !d.compactionBlocked(0) {
		best, bestScore = 0, s0
	}
	for i := 1; i < len(d.levels)-1; i++ {
		s := float64(d.levelBytes(i)) / float64(d.threshold(i))
		if s >= trigger && s > bestScore && !d.compactionBlocked(i) {
			best, bestScore = i, s
		}
	}
	return best, bestScore
}

// compactionBlocked reports whether compacting level i would need a
// quarantined file from level i+1 as merge input.
func (d *DB) compactionBlocked(i int) bool {
	inputs := d.compactionInputs(i)
	if len(inputs) == 0 {
		return true
	}
	var span kv.Range
	for _, f := range inputs {
		span = span.Union(f.rng)
	}
	for _, f := range d.levels[i+1] {
		if f.quarantined && f.rng.Overlaps(span) {
			return true
		}
	}
	return false
}

// compactionInputs selects the level-i files the next compaction would
// consume: all eligible L0 files, or the round-robin pick for deeper
// levels.  Quarantined files are never selected.
func (d *DB) compactionInputs(i int) []*file {
	var inputs []*file
	if i == 0 {
		for _, f := range d.levels[0] {
			if !f.quarantined {
				inputs = append(inputs, f)
			}
		}
		return inputs
	}
	if f := d.pickFileRoundRobin(i); f != nil {
		inputs = append(inputs, f)
	}
	return inputs
}

// NeedsWork implements engine.Engine.
func (d *DB) NeedsWork() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	lvl, _ := d.pickCompaction(false)
	return lvl >= 0
}

// StallLevel implements engine.Engine.
func (d *DB) StallLevel() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stallLocked()
}

func (d *DB) stallLocked() int {
	// Quarantined L0 files can never compact away; counting them would
	// stall writes permanently.
	n := d.activeCount(0)
	switch {
	case n >= 3*d.cfg.L0CompactTrigger:
		return 2
	case n >= 2*d.cfg.L0CompactTrigger:
		return 1
	}
	if d.cfg.Profile == ProfileRocksDB {
		// RocksDB also throttles on pending compaction debt.
		var debt int64
		for i := 1; i < len(d.levels)-1; i++ {
			if over := d.levelBytes(i) - d.threshold(i); over > 0 {
				debt += over
			}
		}
		switch {
		case debt > 4*d.threshold(1):
			return 2
		case debt > 2*d.threshold(1):
			return 1
		}
	}
	return 0
}

// WorkStep implements engine.Engine: one compaction.
func (d *DB) WorkStep() (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lvl, _ := d.pickCompaction(false)
	if lvl < 0 {
		return false, nil
	}
	if err := d.compactLevel(lvl); err != nil {
		return false, err
	}
	return true, nil
}

// compactLevel merges level i inputs into level i+1.
func (d *DB) compactLevel(i int) error {
	inputs := d.compactionInputs(i)
	if len(inputs) == 0 {
		return nil // everything eligible is quarantined
	}
	var span kv.Range
	for _, f := range inputs {
		span = span.Union(f.rng)
	}
	var overlaps []*file
	for _, f := range d.levels[i+1] {
		if f.rng.Overlaps(span) {
			if f.quarantined {
				// Merging through a fenced file would either fail on its
				// corruption or rewrite away the evidence; leave this
				// level alone (pickCompaction avoids scheduling it).
				return nil
			}
			overlaps = append(overlaps, f)
		}
	}
	d.cursor[i] = append([]byte(nil), span.Hi...)

	// Trivial move: a single input with no overlaps drops down by a
	// metadata change only.
	if len(inputs) == 1 && len(overlaps) == 0 {
		f := inputs[0]
		mv := d.cfg.Trace.Begin("lsm.move")
		mv.SetLevel(i + 1)
		mv.AddIn(f.num)
		mv.AddOut(f.num) // the file survives the move, re-homed a level down
		d.removeFrom(i, f)
		d.levels[i+1] = append(d.levels[i+1], f)
		d.sortLevel(i + 1)
		d.stats.CountMove(i + 1)
		d.cfg.Events.MoveEnd(metrics.MoveInfo{FromLevel: i, ToLevel: i + 1})
		err := d.logEdit(&manifest.Edit{
			Deleted: []manifest.NodeRef{{Level: i, FileNum: f.num}},
			Added:   []manifest.NodeRecord{d.record(i+1, f)},
		})
		mv.End()
		return err
	}

	// Merge: newest sources first so the merge iterator's tie order is
	// right (internal keys are unique, so this is belt-and-braces).
	var kids []iterator.Iterator
	if i == 0 {
		for j := len(inputs) - 1; j >= 0; j-- {
			kids = append(kids, inputs[j].tbl.NewIter())
		}
	} else {
		for _, f := range inputs {
			kids = append(kids, f.tbl.NewIter())
		}
	}
	for _, f := range overlaps {
		kids = append(kids, f.tbl.NewIter())
	}
	start := d.cfg.Clock.Now()
	sp := d.cfg.Trace.Begin("lsm.compact")
	sp.SetLevel(i + 1)
	for _, f := range inputs {
		d.stats.AddReadBytes(i, f.tbl.DataSize())
		sp.AddIn(f.num)
	}
	for _, f := range overlaps {
		d.stats.AddReadBytes(i+1, f.tbl.DataSize())
		sp.AddIn(f.num)
	}
	merged := iterator.NewMerging(kv.CompareInternal, kids...)
	atBottom := d.isBottom(i + 1)
	filtered := engine.DropObsoleteObserved(merged, d.horizon, atBottom, d.cfg.OnDrop)
	filtered.First()
	files, bytes, err := d.writeFiles(filtered, d.cfg.FileSize)
	if err != nil {
		return err
	}
	d.stats.CountMerge(i + 1)
	d.stats.AddFlushBytes(i+1, bytes)
	d.cfg.Events.MergeEnd(metrics.MergeInfo{Level: i + 1, Bytes: bytes, Duration: d.cfg.Clock.Now() - start})

	edit := &manifest.Edit{NextFile: d.nextFile, SetNextFile: true}
	for _, f := range inputs {
		d.removeFrom(i, f)
		edit.Deleted = append(edit.Deleted, manifest.NodeRef{Level: i, FileNum: f.num})
	}
	for _, f := range overlaps {
		d.removeFrom(i+1, f)
		edit.Deleted = append(edit.Deleted, manifest.NodeRef{Level: i + 1, FileNum: f.num})
	}
	for _, f := range files {
		d.levels[i+1] = append(d.levels[i+1], f)
		sp.AddOut(f.num)
		edit.Added = append(edit.Added, d.record(i+1, f))
	}
	d.sortLevel(i + 1)
	// The old files may only disappear once the edit dropping them is
	// durable; otherwise a crash here loses data the manifest still
	// points at.
	err = d.logEdit(edit)
	for _, f := range inputs {
		d.deleteFile(f, err == nil)
	}
	for _, f := range overlaps {
		d.deleteFile(f, err == nil)
	}
	sp.SetBytes(bytes)
	sp.SetCount(int64(len(files)))
	sp.End()
	return err
}

// isBottom reports whether no level deeper than dst holds data.
func (d *DB) isBottom(dst int) bool {
	for j := dst + 1; j < len(d.levels); j++ {
		if len(d.levels[j]) > 0 {
			return false
		}
	}
	return true
}

// pickFileRoundRobin picks the next non-quarantined file of level i
// after the level's compact pointer, wrapping (the LevelDB strategy).
// Returns nil when every file of the level is quarantined.
func (d *DB) pickFileRoundRobin(i int) *file {
	lvl := d.levels[i]
	cur := d.cursor[i]
	for _, f := range lvl {
		if f.quarantined {
			continue
		}
		if cur == nil || kv.CompareUser(f.rng.Lo, cur) > 0 {
			return f
		}
	}
	for _, f := range lvl {
		if !f.quarantined {
			return f
		}
	}
	return nil
}

func (d *DB) removeFrom(i int, f *file) {
	lvl := d.levels[i]
	for j, g := range lvl {
		if g == f {
			d.levels[i] = append(lvl[:j], lvl[j+1:]...)
			return
		}
	}
}

// DrainCompactions runs compactions until every level is within its
// strict threshold, ignoring the LevelDB profile's overflow tolerance.
// This is the paper's "tuning phase": the work to move down all data
// overflows after a load (Sec. 6.2).
func (d *DB) DrainCompactions() error {
	for {
		d.mu.Lock()
		lvl, _ := d.pickCompaction(true)
		if lvl < 0 {
			d.mu.Unlock()
			return nil
		}
		err := d.compactLevel(lvl)
		d.mu.Unlock()
		if err != nil {
			return err
		}
	}
}
