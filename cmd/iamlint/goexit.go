package main

import (
	"fmt"
)

// goexit checks that every `go` statement has a provable join: the
// spawned body must Done a sync.WaitGroup that was Add'ed before the
// spawn in the spawning function, and a Wait on that same WaitGroup
// must exist either in the spawning function itself or in a function
// reachable from a shutdown root (a Close/Shutdown/Stop method or
// main).  Workers outside this discipline leak past Close — exactly
// the dead-worker bugs the crash harness caught dynamically.
//
// Channel-based quiesce protocols are not modeled; a goroutine joined
// that way takes an //iamlint:ignore goexit on the `go` statement.

// goexitRoots are the function names treated as shutdown roots.
var goexitRoots = map[string]bool{
	"main":     true,
	"Close":    true,
	"Shutdown": true,
	"Stop":     true,
}

func goexit(pr *program, emit func(diag)) {
	var roots []*funcNode
	for _, n := range pr.order {
		if n.obj != nil && goexitRoots[n.obj.Name()] {
			roots = append(roots, n)
		}
	}
	fromRoots := pr.reachable(roots)

	// waiters[wg] lists the nodes that Wait on canonical WaitGroup wg.
	waiters := make(map[string][]*funcNode)
	for _, n := range pr.order {
		for _, w := range n.sum.wgWaits {
			waiters[w.name] = append(waiters[w.name], n)
		}
	}

	for _, n := range pr.order {
		for _, sp := range n.sum.spawns {
			// The WaitGroups the spawned body Dones.
			var dones []string
			switch {
			case sp.lit != nil:
				// The literal was lifted as the anonymous node right
				// after this function in discovery order; find it by
				// position.
				for _, an := range pr.anon {
					if an.pos == sp.lit.Pos() {
						for _, d := range an.sum.wgDones {
							dones = append(dones, d.name)
						}
						break
					}
				}
			case sp.callee != nil:
				if cn, ok := pr.nodes[sp.callee]; ok {
					for _, d := range cn.sum.wgDones {
						dones = append(dones, d.name)
					}
				}
			}

			joined := false
			for _, wg := range dones {
				// Add must precede the spawn in the spawning function.
				addBefore := false
				for _, a := range n.sum.wgAdds {
					if a.name == wg && a.pos < sp.pos {
						addBefore = true
						break
					}
				}
				if !addBefore {
					continue
				}
				// Wait in the spawner itself, or reachable from a root.
				for _, wn := range waiters[wg] {
					if wn == n || fromRoots[wn] {
						joined = true
						break
					}
				}
				if joined {
					break
				}
			}
			if joined {
				continue
			}
			msg := "go statement has no provable join: no WaitGroup Add-before-spawn / Done-in-body / Wait reachable from Close — the goroutine can outlive Close"
			if len(dones) > 0 {
				msg = fmt.Sprintf("go statement joins WaitGroup %s but no matching Add before the spawn plus Wait reachable from Close was found", displayLock(dones[0]))
			}
			emit(diag{pass: "goexit", pos: pr.fset.Position(sp.pos), msg: msg})
		}
	}
}
