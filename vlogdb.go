package iamdb

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"

	"iamdb/internal/corrupt"
	"iamdb/internal/kv"
	"iamdb/internal/metrics"
	"iamdb/internal/vlog"
)

// Key-value separation (WiscKey/Bitcask style; see DESIGN.md "Key-value
// separation").  Values at or above Options.ValueThreshold are appended
// once to a segmented, CRC-per-record value log and the tree carries a
// fixed-size pointer record (kv.KindValuePtr), so flushes, merges,
// splits and combines move O(pointer) bytes per large value instead of
// O(value).  The commit leader performs the separation inside the group
// commit — value durable before the WAL record carrying its pointer —
// and a background collector rewrites the live remainder of
// low-density segments through the normal write path, deleting a
// segment only once its replacement records are engine-durable.

// errVlogGCUncertain aborts a segment collection whose conditional
// rewrite could not prove every surviving record was superseded.
var errVlogGCUncertain = errors.New("iamdb: vlog GC liveness check failed; segment kept")

// openVLog opens the store's value log when separation is configured or
// segment files already exist from an earlier run (so pointers written
// then stay resolvable even with separation now off).  Runs during
// openSingle, after WAL recovery and before any worker starts.
func (db *DB) openVLog() error {
	if db.opt.ValueThreshold <= 0 {
		names, err := db.fs.List(db.dir)
		if err != nil {
			return err
		}
		found := false
		for _, name := range names {
			if _, ok := vlog.ParseSegmentName(name); ok {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	vl, st, err := vlog.Open(db.fs, db.dir, db.opt.VlogSegmentSize)
	if err != nil {
		return err
	}
	db.vl = vl
	db.vlogOpenSt = st
	return nil
}

// startVlogGC launches the background collector.  The sharded router
// starts its children's collectors itself, after wiring routerWrite, so
// a rewrite never commits with a shard-local sequence.
func (db *DB) startVlogGC() {
	if db.vl == nil || db.opt.InlineBackground {
		return
	}
	db.wg.Add(1)
	go db.vlogGCWorker()
}

// kickVlogGC nudges the collector; safe from any goroutine, never
// blocks.
func (db *DB) kickVlogGC() {
	select {
	case db.vlogGCC <- struct{}{}:
	default:
	}
}

// vlogOnDrop is the engine's drop observer: every value-pointer record
// a merge discards credits its segment's discard bytes — the signal
// density GC runs on.  It runs with engine locks held, so it touches
// only the log's stats leaf lock.  Recovery flushes run before the log
// opens; their drops are skipped (their segments' density is simply
// undercounted until later drops).
func (db *DB) vlogOnDrop(kind kv.Kind, val []byte) {
	vl := db.vl
	if vl == nil || !vlog.IsValuePointer(kind, val) {
		return
	}
	p, _ := vlog.DecodePointer(val)
	vl.NoteDiscard(p.Segment, int64(p.Len))
	db.kickVlogGC()
}

// separateGroup is the commit leader's separation step, called with
// commitMu held before the group is encoded: large values move to the
// value log (their batches are substituted with shallow copies carrying
// pointer records — the caller's Batch is never mutated), GC rewrite
// batches are filtered against the current state, and the log is synced
// before the WAL append when SyncWrites is on, so a surviving pointer
// always has a surviving value underneath it — the same
// data-before-metadata discipline iamlint's syncorder pass checks.
//
// The returned byte count is what separation removed from the encoded
// group relative to what the user logically wrote (original value bytes
// minus pointer bytes), so user-byte accounting — the denominator of
// write amplification — stays in terms of user payload.
func (db *DB) separateGroup(group []*commitOp) (int64, error) {
	// Keys ordinary batches in this group write: a GC rewrite op for any
	// of them is dropped outright, so a rewrite can never shadow — and
	// thereby resurrect over — a same-group user write or delete,
	// regardless of sequence order within the group.
	var userKeys map[string]struct{}
	for _, op := range group {
		if op.b.gcOld != nil {
			continue
		}
		for _, bop := range op.b.ops {
			if userKeys == nil {
				userKeys = make(map[string]struct{})
			}
			userKeys[string(bop.key)] = struct{}{}
		}
	}
	th := db.opt.ValueThreshold
	var extra int64
	appended := false
	for _, op := range group {
		if op.b.gcOld != nil {
			if db.filterGCBatch(op.b, userKeys) {
				appended = true // rewritten values await the sync below
			}
			continue
		}
		if th <= 0 {
			continue
		}
		need := false
		for _, bop := range op.b.ops {
			if bop.kind == kv.KindSet && len(bop.val) >= th {
				need = true
				break
			}
		}
		if !need {
			continue
		}
		ops := make([]batchOp, len(op.b.ops))
		copy(ops, op.b.ops)
		for i := range ops {
			if ops[i].kind != kv.KindSet || len(ops[i].val) < th {
				continue
			}
			p, err := db.vl.Append(ops[i].key, ops[i].val)
			if err != nil {
				return 0, err
			}
			extra += int64(len(ops[i].val)) - vlog.PointerLen
			ops[i] = batchOp{kind: kv.KindValuePtr, key: ops[i].key, val: p.Encode()}
			db.vlogAppendsC.Inc()
			appended = true
		}
		op.b = &Batch{ops: ops}
	}
	if appended && db.opt.SyncWrites {
		if err := db.vl.Sync(); err != nil {
			return 0, err
		}
	}
	return extra, nil
}

// filterGCBatch drops every rewrite op whose key no longer resolves to
// exactly the pointer it is replacing — the key was overwritten,
// deleted, or is being written in this very group — and reports whether
// any op survived.  Caller holds commitMu, so the view it checks
// against includes every previously committed group.  A read failure
// (not ErrNotFound) leaves liveness unprovable: the op is dropped and
// the batch poisoned so the collector keeps the old segment.
func (db *DB) filterGCBatch(b *Batch, userKeys map[string]struct{}) bool {
	st := db.state.Load()
	kept := b.ops[:0]
	for i, op := range b.ops {
		stale := false
		if _, ok := userKeys[string(op.key)]; ok {
			stale = true
		} else {
			cur, kind, err := db.getRawAt(op.key, kv.MaxSeq, st.mem, st.imm)
			if err != nil && !errors.Is(err, ErrNotFound) {
				b.gcFailed = true
			}
			stale = err != nil || kind != kv.KindValuePtr ||
				string(cur) != string(b.gcOld[i])
		}
		if stale {
			// The freshly re-appended copy is garbage before it was ever
			// referenced; credit it so density accounting stays honest.
			if p, ok := vlog.DecodePointer(op.val); ok {
				db.vl.NoteDiscard(p.Segment, int64(p.Len))
			}
			continue
		}
		kept = append(kept, op)
	}
	b.ops = kept
	return len(kept) > 0
}

// maybeResolve rewrites a raw (value, kind) pair from the tree into the
// user-visible form: pointer records resolve through the value log
// (CRC-checked, key-verified), everything else passes through.
func (db *DB) maybeResolve(key, v []byte, kind kv.Kind) ([]byte, kv.Kind, error) {
	if kind != kv.KindValuePtr {
		return v, kind, nil
	}
	rv, err := db.resolvePointer(key, v)
	if err != nil {
		return nil, 0, err
	}
	return rv, kv.KindSet, nil
}

// resolvePointer reads one pointer's value from the log.  Every failure
// — malformed encoding, missing segment, CRC mismatch, key mismatch —
// is a typed corruption: the tree acknowledged a value the log cannot
// produce.
func (db *DB) resolvePointer(key, enc []byte) ([]byte, error) {
	p, ok := vlog.DecodePointer(enc)
	if !ok || db.vl == nil {
		err := corrupt.New(corrupt.LayerVLog, db.dir, -1, vlog.ErrBad,
			"tree carries an unresolvable value pointer")
		db.noteCorruption(err)
		return nil, err
	}
	v, err := db.vl.Read(p, key)
	if err != nil {
		db.noteCorruption(err)
		return nil, err
	}
	db.vlogResolvesC.Inc()
	return v, nil
}

// iterAcquire counts an open iterator on every store the view covers —
// each shard of a sharded scan — gating value-log segment deletion:
// pointers a live view captured must stay resolvable.
func (db *DB) iterAcquire() {
	if ss := db.shards; ss != nil {
		for _, kid := range ss.kids {
			kid.iterOpen.Add(1)
		}
		return
	}
	db.iterOpen.Add(1)
}

// iterRelease undoes iterAcquire, kicking the collector when the last
// iterator closes so deferred segment deletions can proceed.
func (db *DB) iterRelease() {
	if ss := db.shards; ss != nil {
		for _, kid := range ss.kids {
			kid.iterReleaseOne()
		}
		return
	}
	db.iterReleaseOne()
}

func (db *DB) iterReleaseOne() {
	if db.iterOpen.Add(-1) == 0 && db.vl != nil {
		db.kickVlogGC()
	}
}

// vlogGCWorker is the background collector: woken by discard credits
// (and by iterators/snapshots releasing), it collects low-density
// segments until none qualifies.
func (db *DB) vlogGCWorker() {
	defer db.wg.Done()
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("iamdb", "vlog-gc-worker")))
	for {
		select {
		case <-db.quit:
			return
		case <-db.vlogGCC:
		}
		for db.vlogGCOnce() {
			select {
			case <-db.quit:
				return
			default:
			}
		}
	}
}

// vlogGCOnce retries deferred deletions and collects at most one
// segment, reporting whether it did rewrite work.
func (db *DB) vlogGCOnce() bool {
	db.vlogTryDeletes()
	seg, ok := db.vl.PickGC(db.opt.VlogGCDiscardRatio)
	if !ok {
		return false
	}
	if err := db.vlogCollect(seg); err != nil {
		if db.closedA.Load() {
			return false
		}
		if IsCorruption(err) {
			// An unreadable segment must not wedge the collector; fence
			// it and surface the detection.
			db.noteCorruption(err)
			db.vl.MarkBad(seg)
		}
		return false
	}
	return true
}

// vlogCollect rewrites segment seg's live records through the normal
// write path and schedules the segment for deletion.  Liveness is
// checked twice: a lock-free pre-filter here (key still resolves to
// exactly this record's pointer) and the authoritative conditional
// check the commit leader runs under commitMu (filterGCBatch) — so a
// rewrite never resurrects a value a concurrent write or delete
// superseded.  The segment is deleted only after Flush makes the
// rewritten pointers engine-durable, and only once no iterator or
// snapshot that might still chase the old pointers remains open.
func (db *DB) vlogCollect(seg uint64) error {
	const (
		maxBatchOps   = 128
		maxBatchBytes = 4 << 20
	)
	newGC := func() *Batch { return &Batch{gcOld: make([][]byte, 0)} }
	b := newGC()
	var pending int
	flush := func() error {
		if b.Len() == 0 {
			return nil
		}
		if err := db.commitGC(b); err != nil {
			return err
		}
		if b.gcFailed {
			return errVlogGCUncertain
		}
		b = newGC()
		pending = 0
		return nil
	}
	err := db.vl.ScanSegment(seg, func(key, val []byte, p vlog.Pointer) error {
		if db.closedA.Load() {
			return ErrClosed
		}
		st := db.state.Load()
		cur, kind, err := db.getRawAt(key, kv.MaxSeq, st.mem, st.imm)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				return nil // key gone: record is dead
			}
			return err
		}
		if kind != kv.KindValuePtr {
			return nil // overwritten inline or deleted
		}
		curp, ok := vlog.DecodePointer(cur)
		if !ok || curp != p {
			return nil // superseded by a newer log record
		}
		np, err := db.vl.Append(key, val)
		if err != nil {
			return err
		}
		b.putPointer(key, np.Encode(), cur)
		db.vlogGCRewrites.Inc()
		pending += len(val)
		if b.Len() >= maxBatchOps || pending >= maxBatchBytes {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	// Durability order: Flush pushes the rewritten pointers out of
	// WAL+memtable into the engine, whose manifest commit syncs them —
	// deleting the segment can then never orphan a recoverable pointer.
	if err := db.Flush(); err != nil {
		return err
	}
	db.vlogGCSegments.Inc()
	db.vlogDeferDelete(seg)
	db.vlogTryDeletes()
	return nil
}

// commitGC commits one rewrite batch through the normal write path —
// the shard router's on a shard child, so the rewrite takes a globally
// allocated sequence like any other write.  A GC batch's keys all
// belong to this store's range, so the router's single-shard fast path
// keeps the batch (and its conditional metadata) intact.
func (db *DB) commitGC(b *Batch) error {
	if db.routerWrite != nil {
		return db.routerWrite(b)
	}
	return db.write(b, 0)
}

// vlogDeferDelete queues a fully-rewritten segment for deletion.
func (db *DB) vlogDeferDelete(seg uint64) {
	db.vlogPendMu.Lock()
	db.vlogPend = append(db.vlogPend, seg)
	db.vlogPendMu.Unlock()
}

// vlogTryDeletes removes queued segments once no iterator or snapshot
// is open.  Views created after a rewrite committed resolve only the
// rewritten pointers (newer sequences shadow the old ones), so the
// instant zero-check is sufficient: a view opened concurrently with the
// removal is already safe, and one opened before it holds the counter
// above zero.
func (db *DB) vlogTryDeletes() {
	if db.iterOpen.Load() != 0 {
		return
	}
	db.snapMu.Lock()
	pinned := len(db.snaps)
	db.snapMu.Unlock()
	if pinned != 0 {
		return
	}
	db.vlogPendMu.Lock()
	pend := db.vlogPend
	db.vlogPend = nil
	db.vlogPendMu.Unlock()
	for _, seg := range pend {
		if err := db.vl.RemoveSegment(seg); err != nil {
			db.vlogDeferDelete(seg) // head or transient failure: retry later
		}
	}
}

// closeVlog closes the value log at DB close.
func (db *DB) closeVlog() error {
	if db.vl == nil {
		return nil
	}
	return db.vl.Close()
}

// noteVlogOpenSuspicion reports the open scan's unparseable head-tail
// bytes as a detection (mirroring truncated WAL tails): a torn append
// and rotted records are physically indistinguishable, so dropped bytes
// must always be visible to the operator.
func (db *DB) noteVlogOpenSuspicion() {
	if db.vl == nil || db.vlogOpenSt.SuspectBytes == 0 {
		return
	}
	db.corrDetected.Inc()
	db.events.CorruptionDetected(metrics.CorruptionInfo{
		Path:   vlog.SegmentName(db.dir, db.vl.Head()),
		Layer:  corrupt.LayerVLog,
		Offset: db.vlogOpenSt.SuspectOffset,
		Detail: fmt.Sprintf("unparseable value-log tail: %d bytes", db.vlogOpenSt.SuspectBytes),
	})
}
