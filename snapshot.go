package iamdb

import (
	"iamdb/internal/kv"
)

// Snapshot is a consistent read-only view of the DB as of its creation.
// Merges retain every record version a live snapshot can still see
// (Sec. 5.2's deferred deletes respect this), so release snapshots
// promptly to let compaction reclaim space.
type Snapshot struct {
	db       *DB
	seq      kv.Seq
	released bool
}

// GetSnapshot captures the current state.  Callers must Release it.
// The visible sequence comes from the lock-free read snapshot; only
// the snapshot registry (which merges consult for their horizon) takes
// a small dedicated lock, never db.mu.  Pushing the horizon down into
// the engine does take the engine's own mutex under snapMu:
//
// On a sharded DB the sequence is the global watermark — a consistent
// cut no torn cross-shard batch can straddle — and the pin is fanned
// out to every shard's registry, so each shard's merges respect the
// snapshot's horizon.
//
//iamlint:lockorder snapMu < core.Tree.mu; snapMu < lsm.DB.mu
func (db *DB) GetSnapshot() *Snapshot {
	s := &Snapshot{db: db, seq: db.visibleSeq()}
	if ss := db.shards; ss != nil {
		for _, kid := range ss.kids {
			kid.pinAt(s.seq)
		}
		return s
	}
	db.pinAt(s.seq)
	return s
}

// pinAt registers one snapshot reference at seq in this DB's registry.
func (db *DB) pinAt(seq kv.Seq) {
	db.snapMu.Lock()
	db.snaps[seq]++
	db.updateHorizonLocked()
	db.snapMu.Unlock()
}

// unpinAt drops one snapshot reference at seq, nudging the value-log
// collector: deferred segment deletions wait for the last pin.
func (db *DB) unpinAt(seq kv.Seq) {
	db.snapMu.Lock()
	if db.snaps[seq]--; db.snaps[seq] <= 0 {
		delete(db.snaps, seq)
	}
	db.updateHorizonLocked()
	db.snapMu.Unlock()
	if db.vl != nil {
		db.kickVlogGC()
	}
}

// Release ends the snapshot's protection; idempotent.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	db := s.db
	if ss := db.shards; ss != nil {
		for _, kid := range ss.kids {
			kid.unpinAt(s.seq)
		}
		return
	}
	db.unpinAt(s.seq)
}

// updateHorizonLocked pushes the oldest live snapshot (or "none") down
// to the engine so merges know what they may drop.  Caller holds
// db.snapMu.
func (db *DB) updateHorizonLocked() {
	h := kv.MaxSeq
	for seq := range db.snaps {
		if seq < h {
			h = seq
		}
	}
	db.eng.SetHorizon(h)
}

// Get reads a key as of the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if s.released {
		return nil, ErrClosed
	}
	db := s.db
	if db.closedA.Load() {
		return nil, ErrClosed
	}
	var v []byte
	var kind kv.Kind
	var err error
	owner := db
	if ss := db.shards; ss != nil {
		owner = ss.kid(key)
	}
	st := owner.state.Load()
	v, kind, err = owner.getRawAt(key, s.seq, st.mem, st.imm)
	if err != nil {
		return nil, err
	}
	// Pointer records resolve through the owning store's value log; GC
	// keeps every segment a live snapshot can still reference.
	v, kind, err = owner.maybeResolve(key, v, kind)
	if err != nil {
		return nil, err
	}
	return finishGet(v, kind)
}

// NewIterator iterates the DB as of the snapshot.
func (s *Snapshot) NewIterator() *Iterator {
	return s.db.newIteratorAt(s.seq)
}
