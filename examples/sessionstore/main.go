// Session store: the update-heavy workload class the paper's intro
// motivates (on-line services writing at high rates).  Sessions are
// keyed "sess/<user>/<session>", constantly updated, expired with
// deletes, and audited with prefix scans.
//
// The example runs the same workload against the IAM engine and the
// LevelDB-style baseline, then compares write amplification — the
// paper's headline claim is that IAM cuts it roughly in half.
//
//	go run ./examples/sessionstore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"iamdb"
)

const (
	users          = 500
	updatesPerUser = 40
)

func runWorkload(engine iamdb.EngineKind) (iamdb.Metrics, int) {
	dir, err := os.MkdirTemp("", "iamdb-sessions")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := iamdb.Open(dir, &iamdb.Options{
		Engine: engine,
		// Scaled down so compaction behaviour shows with a small run;
		// the memory budget is below the dataset so IAM actually
		// merges at the lower levels instead of degenerating to LSA.
		MemtableSize: 32 * 1024,
		CacheSize:    256 * 1024,
		MemBudget:    64 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	sessKey := func(user, sess int) []byte {
		return []byte(fmt.Sprintf("sess/u%04d/s%04d", user, sess))
	}

	// Churn: create, touch and expire sessions.
	for round := 0; round < updatesPerUser; round++ {
		for user := 0; user < users; user++ {
			sess := rng.Intn(4)
			payload := fmt.Sprintf(`{"user":%d,"seen":%d,"data":%q}`,
				user, round, randToken(rng))
			if err := db.Put(sessKey(user, sess), []byte(payload)); err != nil {
				log.Fatal(err)
			}
			// Occasionally expire one of the user's sessions.
			if rng.Intn(10) == 0 {
				if err := db.Delete(sessKey(user, rng.Intn(4))); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Audit scan: all live sessions of one user.
	it := db.NewIterator()
	defer it.Close()
	live := 0
	prefix := []byte("sess/u0042/")
	for it.Seek(prefix); it.Valid(); it.Next() {
		if string(it.Key()[:len(prefix)]) != string(prefix) {
			break
		}
		live++
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	return db.Metrics(), live
}

func randToken(rng *rand.Rand) string {
	b := make([]byte, 48)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func main() {
	fmt.Printf("session churn: %d users x %d rounds\n\n", users, updatesPerUser)
	for _, e := range []iamdb.EngineKind{iamdb.IAM, iamdb.LSA, iamdb.LevelDB} {
		m, live := runWorkload(e)
		fmt.Printf("%-8s write-amp=%.2f  space=%.1fKiB  live-sessions(u0042)=%d\n",
			e, m.WriteAmplification(), float64(m.SpaceUsed)/1024, live)
	}
	fmt.Println("\nexpect: LSA lowest write-amp but most space;")
	fmt.Println("        IAM near-LSA write-amp at near-LSM space.")
}
