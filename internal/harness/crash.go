package harness

// Systematic crash-point exploration (the crash-consistency engine's
// test driver).  A CrashWorkload runs a deterministic scripted load
// against a DB stacked on vfs.CrashFS, kills the filesystem at a
// chosen operation index, reopens the store from the surviving durable
// state, and checks the recovery oracle:
//
//   - every acknowledged write is present with its exact value
//     (SyncWrites is on, so acknowledged means WAL-synced),
//   - a write that was never acknowledged is never served — except the
//     single operation that observed the crash, which is legitimately
//     indeterminate (its data may have become durable just before the
//     failure surfaced),
//   - the reopened store passes the engine's structural invariant
//     check and accepts new writes.
//
// The oracle is interleaving-independent: background flushes and
// compactions move the crash point between runs, but acknowledged
// durability and never-served-uncommitted hold for any schedule, so a
// trial is sound wherever the crash actually lands.

import (
	"fmt"
	"math/rand"

	"iamdb"
	"iamdb/internal/vfs"
)

// crashKeyspace is the number of distinct user keys the scripted
// workload touches; small enough that keys are overwritten and deleted
// repeatedly, so recovery must resolve multiple versions.
const crashKeyspace = 400

// CrashWorkload describes one deterministic crash-exploration
// scenario.
type CrashWorkload struct {
	// Engine picks the storage tree under test.
	Engine iamdb.EngineKind
	// Mode selects what happens to the last unsynced write at the
	// crash: dropped, torn, or bit-flipped.
	Mode vfs.CrashMode
	// Seed fixes the scripted workload (default 1).
	Seed int64
	// Ops is the scripted operation count (default 400).
	Ops int
	// Shards > 1 runs the trial against a range-sharded front-end,
	// splitting the keyspace evenly so every shard's WAL and recovery
	// path is exercised.
	Shards int
	// ValueThreshold > 0 turns on key-value separation, so crashes land
	// between value-log appends, log syncs and WAL pointer commits —
	// the window the value-durable-before-pointer ordering must cover.
	ValueThreshold int
}

func (w CrashWorkload) withDefaults() CrashWorkload {
	if w.Seed == 0 {
		w.Seed = 1
	}
	if w.Ops == 0 {
		w.Ops = 400
	}
	return w
}

// CrashCalibration reports the filesystem-operation landscape of a
// workload run to completion with no crash: how many mutating
// operations it issues and at which indices syncs happen.  Crash
// points are chosen from this landscape.
type CrashCalibration struct {
	// OpCount is the total number of mutating filesystem operations.
	OpCount int64
	// SyncPoints are the operation indices of Sync calls — the
	// durability boundaries, the most interesting places to crash.
	SyncPoints []int64
}

// openCrashDB opens a deliberately tiny DB so a few hundred operations
// exercise WAL rotation, flushes, compaction cascades, splits and
// merges.  The backoff abandons after a handful of attempts: after a
// crash every retry fails, and the workers must park rather than spin.
func openCrashDB(cfs *vfs.CrashFS, eng iamdb.EngineKind, shards, valueThreshold int) (*iamdb.DB, error) {
	o := &iamdb.Options{
		Engine:       eng,
		FS:           cfs,
		MemtableSize: 2 * 1024, CacheSize: 64 * 1024,
		MemBudget: 8 * 1024, Fanout: 4, K: 2,
		FileSize: 4 * 1024, LevelSizeBase: 16 * 1024,
		L0CompactTrigger: 2,
		SyncWrites:       true,
		BgRetryLimit:     2,
		BgBackoff:        func(failures int) bool { return failures < 6 },
	}
	if valueThreshold > 0 {
		o.ValueThreshold = valueThreshold
		// Tiny segments so the scripted run rotates the log several times.
		o.VlogSegmentSize = 2 * 1024
	}
	if shards > 1 {
		o.Shards = shards
		o.ShardSplits = evenKeySplits(shards, crashKeyspace)
	}
	return iamdb.Open("db", o)
}

// evenKeySplits slices the scripted "keyNNNN" keyspace into shards
// even ranges (e.g. 4 shards over 400 keys split at key0100, key0200,
// key0300).
func evenKeySplits(shards, keyspace int) [][]byte {
	splits := make([][]byte, 0, shards-1)
	for j := 1; j < shards; j++ {
		splits = append(splits, []byte(fmt.Sprintf("key%04d", keyspace*j/shards)))
	}
	return splits
}

// oracle is the acknowledged-state model the verifier compares the
// recovered store against.
type oracle struct {
	acked map[string]string // key -> last acknowledged value
	// The operation that observed the crash is indeterminate: it was
	// not acknowledged, but its effect may have become durable before
	// the error surfaced (e.g. the WAL sync landed and a later
	// filesystem call failed).
	pendKey, pendVal string
	pendDel, pendSet bool
}

func newOracle() *oracle {
	return &oracle{acked: make(map[string]string)}
}

func (o *oracle) put(k, v string) { o.acked[k] = v }
func (o *oracle) del(k string)    { delete(o.acked, k) }
func (o *oracle) pendPut(k, v string) {
	o.pendKey, o.pendVal, o.pendDel, o.pendSet = k, v, false, true
}
func (o *oracle) pendDelete(k string) {
	o.pendKey, o.pendVal, o.pendDel, o.pendSet = k, "", true, true
}

// run executes the scripted workload: seeded-random keys over a small
// keyspace, self-describing values encoding the operation index, a
// delete every 17th op, and periodic read-your-writes checks.  It
// stops at the first mutation error (the crash reaching the write
// path), recording that operation as indeterminate.
func (w CrashWorkload) run(db *iamdb.DB, o *oracle, cfs *vfs.CrashFS) error {
	rng := rand.New(rand.NewSource(w.Seed))
	for i := 0; i < w.Ops; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(crashKeyspace))
		if i%17 == 13 {
			if err := db.Delete([]byte(k)); err != nil {
				o.pendDelete(k)
				return nil
			}
			o.del(k)
			continue
		}
		v := fmt.Sprintf("val-%06d-%s", i, k)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			o.pendPut(k, v)
			return nil
		}
		o.put(k, v)
		if i%13 == 7 {
			got, err := db.Get([]byte(k))
			if err != nil {
				if cfs.Crashed() {
					return nil // crash landed between the put and the read
				}
				return fmt.Errorf("mid-run get %s: %w", k, err)
			}
			if string(got) != v {
				return fmt.Errorf("mid-run get %s = %q, want %q", k, got, v)
			}
		}
	}
	return nil
}

// Calibrate runs the workload with no crash scheduled and reports the
// operation landscape.
func (w CrashWorkload) Calibrate() (CrashCalibration, error) {
	w = w.withDefaults()
	cfs := vfs.NewCrashFS(vfs.NewMemFS(), w.Mode)
	db, err := openCrashDB(cfs, w.Engine, w.Shards, w.ValueThreshold)
	if err != nil {
		return CrashCalibration{}, err
	}
	if err := w.run(db, newOracle(), cfs); err != nil {
		_ = db.Close()
		return CrashCalibration{}, err
	}
	if err := db.Close(); err != nil {
		return CrashCalibration{}, err
	}
	return CrashCalibration{OpCount: cfs.OpCount(), SyncPoints: cfs.SyncPoints()}, nil
}

// Trial runs the workload with a crash scheduled at mutating-operation
// index crashAt, recovers, reopens, and checks the oracle.  A non-nil
// error is an oracle violation (or an unexpected infrastructure
// failure).  If the workload finishes before reaching crashAt, the
// crash is forced at the end so every trial exercises recovery.
func (w CrashWorkload) Trial(crashAt int64) error {
	w = w.withDefaults()
	cfs := vfs.NewCrashFS(vfs.NewMemFS(), w.Mode)
	cfs.CrashAt(crashAt)
	o := newOracle()
	db, err := openCrashDB(cfs, w.Engine, w.Shards, w.ValueThreshold)
	if err != nil {
		if !cfs.Crashed() {
			return fmt.Errorf("open: %w", err)
		}
		// Crash during the initial open: nothing was acknowledged, so
		// the store must simply reopen cleanly (possibly empty).
	} else {
		if err := w.run(db, o, cfs); err != nil {
			_ = db.Close()
			return fmt.Errorf("crashAt=%d: %w", crashAt, err)
		}
		if !cfs.Crashed() {
			cfs.Crash()
		}
		_ = db.Close()
	}
	cfs.Recover()
	db2, err := openCrashDB(cfs, w.Engine, w.Shards, w.ValueThreshold)
	if err != nil {
		return fmt.Errorf("crashAt=%d: reopen: %w", crashAt, err)
	}
	defer db2.Close()
	if err := w.verify(db2, o); err != nil {
		return fmt.Errorf("crashAt=%d: %w", crashAt, err)
	}
	return nil
}

// legalValue reports whether the recovered state of key k (value val
// when found=true, absent otherwise) is consistent with the oracle.
func (o *oracle) legalValue(k string, val string, found bool) bool {
	want, acked := o.acked[k]
	if o.pendSet && k == o.pendKey {
		// Old state (last acknowledged) and new state (the pending,
		// unacknowledged op) are both legal; nothing else is.
		oldOK := (found && acked && val == want) || (!found && !acked)
		newOK := (o.pendDel && !found) || (!o.pendDel && found && val == o.pendVal)
		return oldOK || newOK
	}
	if acked {
		return found && val == want
	}
	return !found
}

// verify checks the recovered store against the oracle: point lookups
// over the whole keyspace, a full scan, the engine's structural
// invariants, and post-recovery writability.
func (w CrashWorkload) verify(db *iamdb.DB, o *oracle) error {
	for i := 0; i < crashKeyspace; i++ {
		k := fmt.Sprintf("key%04d", i)
		v, err := db.Get([]byte(k))
		found := err == nil
		if err != nil && err != iamdb.ErrNotFound {
			return fmt.Errorf("get %s after recovery: %w", k, err)
		}
		if !o.legalValue(k, string(v), found) {
			return fmt.Errorf("oracle violation: key %s recovered as (%q, found=%v), acked %q",
				k, v, found, o.acked[k])
		}
	}
	it := db.NewIterator()
	for it.First(); it.Valid(); it.Next() {
		k, v := string(it.Key()), string(it.Value())
		if !o.legalValue(k, v, true) {
			it.Close()
			return fmt.Errorf("oracle violation: scan surfaced %s=%q, acked %q", k, v, o.acked[k])
		}
	}
	if err := it.Err(); err != nil {
		it.Close()
		return fmt.Errorf("scan after recovery: %w", err)
	}
	if err := it.Close(); err != nil {
		return fmt.Errorf("scan close: %w", err)
	}
	if err := db.CheckInvariants(); err != nil {
		return fmt.Errorf("invariants after recovery: %w", err)
	}
	probe := []byte("zz-post-crash-probe")
	if err := db.Put(probe, []byte("ok")); err != nil {
		return fmt.Errorf("put after recovery: %w", err)
	}
	if v, err := db.Get(probe); err != nil || string(v) != "ok" {
		return fmt.Errorf("get after recovery: %q, %v", v, err)
	}
	return nil
}
