// Package core implements the paper's primary contribution: the
// Log-Structured Append-tree (LSA, Sec. 4) and the Integrated
// Append/Merge-tree (IAM, Sec. 5).  One Tree type serves both — the
// paper's IamDB "works as either LSA or IAM with proper configuration"
// — differing only in the flush policy that picks appends or merges.
//
// Structure (Fig. 2): one in-memory level L0 (the memtable, owned by
// the DB layer) and n on-disk levels L1..Ln.  Level Li holds at most
// t^i nodes with disjoint, sorted, not necessarily contiguous user-key
// ranges.  A node is an MSTable of up to Ct bytes of record data.  The
// tree compacts with three operations: flush (move a node's records to
// its children), split (a full node with 2t children divides in two),
// and combine (destroy a node, flushing its records down, to restore
// Ni <= t^i).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"iamdb/internal/cache"
	"iamdb/internal/corrupt"
	"iamdb/internal/engine"
	"iamdb/internal/invariants"
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/manifest"
	"iamdb/internal/metrics"
	"iamdb/internal/table"
	"iamdb/internal/trace"
	"iamdb/internal/vfs"
)

// Policy selects the paper's tree variant.
type Policy int

const (
	// LSA compacts by appends everywhere; only a full leaf child
	// forces a merge (Sec. 4).
	LSA Policy = iota
	// IAM divides levels into appending levels (< m), one mixed level
	// (m, nodes capped at k sequences) and merging levels (> m), with
	// m and k tuned to the memory budget by Eq. (2) (Sec. 5).
	IAM
)

func (p Policy) String() string {
	if p == LSA {
		return "LSA"
	}
	return "IAM"
}

// Config parameterizes a Tree.  Zero fields take the paper's defaults.
type Config struct {
	FS    vfs.FS
	Dir   string
	Cache *cache.Cache

	// NodeCapacity is Ct, the node size threshold (default 128 MiB;
	// experiments scale it down, preserving ratios).
	NodeCapacity int64
	// Fanout is t: level thresholds are t^i and a node averages t
	// children (default 10).
	Fanout int
	// Policy picks LSA or IAM.
	Policy Policy
	// K caps the sequences per node in IAM's mixed level (default 3).
	K int
	// MemBudget is M, the memory available for caching appended
	// sequences (Sec. 5.1.3).  Defaults to the cache's capacity.
	MemBudget int64
	// FixedM pins the mixed level (used by Table 3's ablation);
	// 0 means tune m from Eq. (2) on every flush.
	FixedM int
	// LeafInitFrac divides Ct to get the initial size of leaf nodes
	// born from a leaf merge: Cts = Ct/LeafInitFrac (default 5).
	LeafInitFrac int
	// CapFactor scales the MSTable file capacity relative to Ct,
	// leaving hole room for appends (default 2.0).
	CapFactor float64
	// BitsPerKey sets Bloom-filter density (default 14).
	BitsPerKey int
	// Compression enables flate compression of data blocks (off by
	// default, matching the paper's setup).
	Compression bool
	// OnDrop is notified of every record merges discard (see
	// engine.DropObserver); the DB layer uses it to feed value-log
	// discard statistics.  Nil disables the callback.
	OnDrop engine.DropObserver
	// Events receives structural event notifications (flush, split,
	// combine, merge, ...).  Nil means no-op listeners.
	Events *metrics.EventListener
	// Clock supplies monotonic time for event durations.  Nil means
	// the zero clock: events fire but durations read 0.
	Clock metrics.Clock
	// Trace records structural spans (flush cascade, per-job
	// append/merge/split/combine with file lineage).  Nil disables
	// tracing at zero cost.
	Trace *trace.Recorder
}

func (c *Config) fill() {
	if c.NodeCapacity == 0 {
		c.NodeCapacity = 128 << 20
	}
	if c.Fanout == 0 {
		c.Fanout = 10
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.LeafInitFrac == 0 {
		c.LeafInitFrac = 5
	}
	if c.CapFactor == 0 {
		c.CapFactor = 2.0
	}
	if c.MemBudget == 0 && c.Cache != nil {
		c.MemBudget = c.Cache.Capacity()
	}
	c.Events = c.Events.EnsureDefaults()
	if c.Clock == nil {
		c.Clock = metrics.NopClock
	}
}

func (c *Config) fileCapacity() int64 {
	capacity := int64(float64(c.NodeCapacity) * c.CapFactor)
	if capacity < table.MinCapacity {
		capacity = table.MinCapacity
	}
	return capacity
}

// node is one on-disk tree node: an MSTable plus its assigned range,
// which always covers the node's data but may be wider.
type node struct {
	num  uint64
	tbl  *table.Table
	rng  kv.Range
	refs int32 // guarded by Tree.mu; table closes at zero
	// quarantined fences the node after detected corruption: it keeps
	// serving whatever reads still succeed but is never picked as a
	// combine victim and does not count toward level thresholds (an
	// uncompactable node would otherwise wedge the maintain loop).
	quarantined bool
	qreason     string
}

func (nd *node) dataSize() int64 { return nd.tbl.DataSize() }

// ref pins the node's table open; caller holds Tree.mu.
func (t *Tree) ref(nd *node) { nd.refs++ }

// unref releases a pin, closing the table once the tree has dropped the
// node and no reader holds it.
func (t *Tree) unref(nd *node) {
	t.mu.Lock()
	nd.refs--
	if invariants.Enabled {
		invariants.Assertf(nd.refs >= 0, "node %d refcount went negative (%d)", nd.num, nd.refs)
	}
	if nd.refs == 0 {
		// Read-only handle of a dropped node; nothing left to flush.
		_ = nd.tbl.Close()
	}
	t.mu.Unlock()
}

// Tree is an LSA- or IAM-tree.  All exported methods are safe for
// concurrent use; structural changes serialize on one mutex while reads
// go through immutable node tables.  Filesystem-layer locks nest below
// the tree mutex (manifest rotation renames under mu), and the trace
// recorder's ring lock is a leaf taken while mu is held:
//
//iamlint:lockorder core.Tree.mu < vfs.*; core.Tree.mu < trace.Recorder.mu
type Tree struct {
	mu  sync.Mutex
	cfg Config

	// levels[0] is unused (L0 is the memtable); levels[1..n] are the
	// on-disk levels.  Nodes in a level are sorted by range.
	levels   [][]*node
	nextFile uint64
	man      *manifest.Log
	horizon  kv.Seq
	logSeq   kv.Seq
	logNum   uint64
	// curM/curK cache the IAM policy tuning for the current flush.
	curM, curK int
	// curSpan is the trace span the cascade currently runs under, so
	// recursive flush/split/combine jobs nest (guarded by mu).
	curSpan uint64

	// recoveryDropped is the byte count the manifest replay discarded
	// at its tail on open (a torn final append); >0 is suspicious and
	// surfaced to the DB layer via RecoveryDropped.
	recoveryDropped int64

	stats engine.Stats
}

var _ engine.Engine = (*Tree)(nil)

const manifestName = "MANIFEST"

// Open creates or reopens a tree in cfg.Dir.
func Open(cfg Config) (*Tree, error) {
	cfg.fill()
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, horizon: kv.MaxSeq}
	manPath := cfg.Dir + "/" + manifestName
	if cfg.FS.Exists(manPath) {
		st, dropped, err := manifest.ReplayStrict(cfg.FS, manPath)
		if err != nil {
			return nil, err
		}
		t.recoveryDropped = dropped
		if err := t.loadState(st); err != nil {
			return nil, err
		}
		// Compact the manifest on open.
		man, err := manifest.Create(cfg.FS, manPath+".tmp", t.snapshotState())
		if err != nil {
			return nil, err
		}
		if err := cfg.FS.Rename(manPath+".tmp", manPath); err != nil {
			_ = man.Close()
			return nil, err
		}
		t.man = man
	} else {
		t.nextFile = 1
		t.levels = make([][]*node, 2) // L1 exists, empty
		man, err := manifest.Create(cfg.FS, manPath, t.snapshotState())
		if err != nil {
			return nil, err
		}
		t.man = man
	}
	return t, nil
}

func (t *Tree) loadState(st *manifest.State) error {
	t.nextFile = st.NextFile
	t.logSeq = st.LastSeq
	t.logNum = st.LogNum
	n := st.NumLevels
	if n < 1 {
		n = 1
	}
	for len(st.Levels) > n+1 {
		n = len(st.Levels) - 1
	}
	t.levels = make([][]*node, n+1)
	for lvl := 1; lvl < len(st.Levels); lvl++ {
		for _, rec := range st.Levels[lvl] {
			tbl, err := table.Open(t.cfg.FS, engine.TableFileName(t.cfg.Dir, rec.FileNum),
				rec.FileNum, table.Options{Cache: t.cfg.Cache, BitsPerKey: t.cfg.BitsPerKey,
					Compression: t.cfg.Compression})
			if err != nil {
				if errors.Is(err, vfs.ErrNotFound) {
					// A manifest that references a node the directory no
					// longer holds is store corruption (typically a rotted
					// manifest record rolling state back past the node's
					// deletion), not a plain I/O failure.
					err = corrupt.New(corrupt.LayerManifest,
						engine.TableFileName(t.cfg.Dir, rec.FileNum), -1,
						manifest.ErrCorrupt, "manifest references a missing table file")
				}
				return fmt.Errorf("core: open node %d: %w", rec.FileNum, err)
			}
			nd := &node{num: rec.FileNum, tbl: tbl, rng: kv.MakeRange(rec.Lo, rec.Hi), refs: 1}
			if serr := tbl.Suspect(); serr != nil {
				// Opened on a fallback footer slot or with other evidence
				// of damage: keep the node readable but fenced.
				nd.quarantined, nd.qreason = true, serr.Error()
			}
			t.levels[lvl] = append(t.levels[lvl], nd)
		}
	}
	for lvl := 1; lvl < len(t.levels); lvl++ {
		t.sortLevel(lvl)
	}
	return nil
}

func (t *Tree) snapshotState() *manifest.State {
	st := &manifest.State{
		NextFile:  t.nextFile,
		LastSeq:   t.logSeq,
		LogNum:    t.logNum,
		NumLevels: t.n(),
	}
	st.Levels = make([][]manifest.NodeRecord, len(t.levels))
	for lvl := 1; lvl < len(t.levels); lvl++ {
		for _, nd := range t.levels[lvl] {
			st.Levels[lvl] = append(st.Levels[lvl], t.record(lvl, nd))
		}
	}
	return st
}

func (t *Tree) record(lvl int, nd *node) manifest.NodeRecord {
	return manifest.NodeRecord{Level: lvl, FileNum: nd.num, Lo: nd.rng.Lo, Hi: nd.rng.Hi}
}

// n returns the number of on-disk levels.
func (t *Tree) n() int { return len(t.levels) - 1 }

// threshold returns t^i, the node-count threshold of level i.
func (t *Tree) threshold(i int) int {
	th := 1
	for j := 0; j < i; j++ {
		th *= t.cfg.Fanout
	}
	return th
}

func (t *Tree) sortLevel(i int) {
	sort.Slice(t.levels[i], func(a, b int) bool {
		return kv.CompareUser(t.levels[i][a].rng.Lo, t.levels[i][b].rng.Lo) < 0
	})
}

// full reports whether a node reached the size threshold Ct.
func (t *Tree) full(nd *node) bool { return nd.dataSize() >= t.cfg.NodeCapacity }

// activeCount counts level i nodes eligible for compaction work;
// quarantined nodes are excluded from threshold accounting because the
// maintain loop could never combine them away.
func (t *Tree) activeCount(i int) int {
	n := 0
	for _, nd := range t.levels[i] {
		if !nd.quarantined {
			n++
		}
	}
	return n
}

// RecoveryDropped reports the manifest bytes dropped as a torn tail
// during the last Open; >0 means the recovered state may lag the last
// acknowledged edit and the DB layer flags it as suspected corruption.
func (t *Tree) RecoveryDropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recoveryDropped
}

// Quarantine implements engine.Quarantiner.
func (t *Tree) Quarantine(num uint64, reason string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 1; i <= t.n(); i++ {
		for _, nd := range t.levels[i] {
			if nd.num != num {
				continue
			}
			if nd.quarantined {
				return false
			}
			nd.quarantined, nd.qreason = true, reason
			return true
		}
	}
	return false
}

// Quarantined implements engine.Quarantiner.
func (t *Tree) Quarantined() []engine.QuarantineInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []engine.QuarantineInfo
	for i := 1; i <= t.n(); i++ {
		for _, nd := range t.levels[i] {
			if nd.quarantined {
				out = append(out, engine.QuarantineInfo{
					Level: i, FileNum: nd.num,
					Path:   engine.TableFileName(t.cfg.Dir, nd.num),
					Reason: nd.qreason,
				})
			}
		}
	}
	return out
}

// VisitTables implements engine.TableVisitor: fn sees a referenced
// snapshot of the current tree, called without the tree lock so a slow
// scrub does not block flushes.
func (t *Tree) VisitTables(fn func(level int, num uint64, tbl *table.Table) error) error {
	type ent struct {
		level int
		nd    *node
	}
	t.mu.Lock()
	var ents []ent
	for i := 1; i <= t.n(); i++ {
		for _, nd := range t.levels[i] {
			t.ref(nd)
			ents = append(ents, ent{i, nd})
		}
	}
	t.mu.Unlock()
	var err error
	for _, e := range ents {
		if err == nil {
			err = fn(e.level, e.nd.num, e.nd.tbl)
		}
		t.unref(e.nd)
	}
	return err
}

// childSpan returns the half-open index interval [start, end) of nodes
// in levels[i+1] overlapping rng.  Ranges within a level are disjoint
// and sorted, so both bounds binary-search.
func (t *Tree) childSpan(i int, rng kv.Range) (int, int) {
	if i+1 > t.n() || rng.Empty() {
		return 0, 0
	}
	lvl := t.levels[i+1]
	start := sort.Search(len(lvl), func(j int) bool {
		return kv.CompareUser(lvl[j].rng.Hi, rng.Lo) >= 0
	})
	end := sort.Search(len(lvl), func(j int) bool {
		return kv.CompareUser(lvl[j].rng.Lo, rng.Hi) > 0
	})
	if end < start {
		end = start
	}
	return start, end
}

// children returns the indices in levels[i+1] of nodes overlapping rng.
// An empty slice means the flush can move the node down untouched.
func (t *Tree) children(i int, rng kv.Range) []int {
	start, end := t.childSpan(i, rng)
	if start >= end {
		return nil
	}
	out := make([]int, 0, end-start)
	for j := start; j < end; j++ {
		out = append(out, j)
	}
	return out
}

// childCount counts levels[i+1] nodes overlapping rng without
// materializing indices.
func (t *Tree) childCount(i int, rng kv.Range) int {
	start, end := t.childSpan(i, rng)
	return end - start
}

// findNode returns the node in level i whose range contains ukey.
func (t *Tree) findNode(i int, ukey []byte) *node {
	lvl := t.levels[i]
	idx := sort.Search(len(lvl), func(j int) bool {
		return kv.CompareUser(ukey, lvl[j].rng.Hi) <= 0
	})
	if idx < len(lvl) && lvl[idx].rng.Contains(ukey) {
		return lvl[idx]
	}
	return nil
}

func (t *Tree) newTable() (*table.Table, uint64, error) {
	return t.newTableCap(t.cfg.fileCapacity())
}

func (t *Tree) newTableCap(capacity int64) (*table.Table, uint64, error) {
	num := t.nextFile
	t.nextFile++
	tbl, err := table.Create(t.cfg.FS, engine.TableFileName(t.cfg.Dir, num), num,
		capacity, table.Options{Cache: t.cfg.Cache, BitsPerKey: t.cfg.BitsPerKey,
			Compression: t.cfg.Compression})
	if err != nil {
		return nil, 0, err
	}
	t.cfg.Events.TableCreated(metrics.TableInfo{FileNum: num, Level: -1})
	return tbl, num, nil
}

// deleteNode drops a node from the in-memory structure; the table
// handle closes when the last reader releases it.  removeFile also
// deletes the on-disk file — callers pass true only after the manifest
// edit that stops referencing the node is durable, because a crash
// between a durable remove and an unsynced delete-edit would leave the
// manifest naming a missing file and the tree unopenable.  When the
// edit failed, the file is kept (an orphan wastes space but cannot be
// resurrected — recovery only loads files named by the manifest — and
// Resume rewrites the manifest from memory anyway).  Caller holds
// Tree.mu.
func (t *Tree) deleteNode(nd *node, removeFile bool) {
	t.cfg.Events.TableDeleted(metrics.TableInfo{FileNum: nd.num, Level: -1, Bytes: nd.dataSize()})
	nd.tbl.EvictBlocks()
	nd.refs--
	if invariants.Enabled {
		invariants.Assertf(nd.refs >= 0, "node %d refcount went negative (%d)", nd.num, nd.refs)
	}
	if nd.refs == 0 {
		_ = nd.tbl.Close()
	}
	if removeFile {
		_ = t.cfg.FS.Remove(engine.TableFileName(t.cfg.Dir, nd.num))
	}
}

// Resume implements engine.Resumer: it rewrites the manifest from the
// in-memory state, healing any divergence left by a failed or torn
// manifest append.  The new manifest is built beside the old one and
// renamed into place, so a crash mid-resume leaves the old (consistent)
// manifest in force.
func (t *Tree) Resume() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	manPath := t.cfg.Dir + "/" + manifestName
	man, err := manifest.Create(t.cfg.FS, manPath+".tmp", t.snapshotState())
	if err != nil {
		return err
	}
	if err := t.cfg.FS.Rename(manPath+".tmp", manPath); err != nil {
		_ = man.Close()
		return err
	}
	old := t.man
	t.man = man
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// SetHorizon implements engine.Engine.
func (t *Tree) SetHorizon(h kv.Seq) {
	t.mu.Lock()
	t.horizon = h
	t.mu.Unlock()
}

// SetLogMeta durably records the DB layer's WAL position.
func (t *Tree) SetLogMeta(lastSeq kv.Seq, logNum uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.logSeq, t.logNum = lastSeq, logNum
	return t.logEdit(&manifest.Edit{
		LastSeq: lastSeq, SetLastSeq: true,
		LogNum: logNum, SetLogNum: true,
		NextFile: t.nextFile, SetNextFile: true,
	})
}

// LogMeta returns the recovered WAL position.
func (t *Tree) LogMeta() (kv.Seq, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.logSeq, t.logNum
}

// NeedsWork implements engine.Engine.  The tree performs its entire
// compaction cascade inside Flush, so no background work is pending.
func (t *Tree) NeedsWork() bool { return false }

// WorkStep implements engine.Engine.
func (t *Tree) WorkStep() (bool, error) { return false, nil }

// StallLevel implements engine.Engine.  The tree never throttles
// beyond the natural blocking of Flush itself.
func (t *Tree) StallLevel() int { return 0 }

// Get implements engine.Engine: at most one node per level is probed,
// newest level first, and within a node sequences are probed newest
// first with Bloom filters (Sec. 5.2).
func (t *Tree) Get(ukey []byte, snap kv.Seq) ([]byte, kv.Kind, kv.Seq, bool, error) {
	t.mu.Lock()
	var cands []*node
	for i := 1; i <= t.n(); i++ {
		if nd := t.findNode(i, ukey); nd != nil {
			t.ref(nd)
			cands = append(cands, nd)
		}
	}
	t.mu.Unlock()
	defer func() {
		for _, nd := range cands {
			t.unref(nd)
		}
	}()
	for _, nd := range cands {
		v, k, s, found, err := nd.tbl.Get(ukey, snap)
		if err != nil {
			return nil, 0, 0, false, err
		}
		if found {
			return v, k, s, true, nil
		}
	}
	return nil, 0, 0, false, nil
}

// NewIter implements engine.Engine: a merge across one concatenated
// iterator per level.  A scan therefore consults every sequence of at
// most one node per level, as Sec. 5.2 describes.
func (t *Tree) NewIter() iterator.Iterator {
	t.mu.Lock()
	defer t.mu.Unlock()
	kids := make([]iterator.Iterator, 0, t.n())
	for i := 1; i <= t.n(); i++ {
		nodes := append([]*node(nil), t.levels[i]...)
		rngs := make([]kv.Range, len(nodes))
		for j, nd := range nodes {
			nd.refs++
			rngs[j] = nd.rng
		}
		kids = append(kids, &levelIter{t: t, nodes: nodes, rngs: rngs})
	}
	return iterator.NewMerging(kv.CompareInternal, kids...)
}

// Stats implements engine.Engine.
func (t *Tree) Stats() engine.StatsSnapshot { return t.stats.Snapshot() }

// Levels implements engine.Engine.
func (t *Tree) Levels() []engine.LevelInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]engine.LevelInfo, 0, t.n())
	for i := 1; i <= t.n(); i++ {
		info := engine.LevelInfo{Level: i, Nodes: len(t.levels[i])}
		for _, nd := range t.levels[i] {
			info.Bytes += nd.dataSize()
			info.Seqs += nd.tbl.NumSeqs()
			if nd.quarantined {
				info.Quarantined++
			}
		}
		out = append(out, info)
	}
	return out
}

// SpaceUsed implements engine.Engine.
func (t *Tree) SpaceUsed() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for i := 1; i <= t.n(); i++ {
		for _, nd := range t.levels[i] {
			n += nd.tbl.UsedBytes()
		}
	}
	return n
}

// LevelDataSizes returns D_1..D_n, the inputs to Eq. (2).
func (t *Tree) LevelDataSizes() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.levelDataSizesLocked()
}

func (t *Tree) levelDataSizesLocked() []int64 {
	out := make([]int64, t.n()+1)
	for i := 1; i <= t.n(); i++ {
		for _, nd := range t.levels[i] {
			out[i] += nd.dataSize()
		}
	}
	return out
}

// Close implements engine.Engine.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var errs []error
	for i := 1; i <= t.n(); i++ {
		for _, nd := range t.levels[i] {
			errs = append(errs, nd.tbl.Close())
		}
	}
	errs = append(errs, t.man.Close())
	return errors.Join(errs...)
}

// CheckInvariants validates the tree's structural invariants; tests and
// the harness call it after workloads.
func (t *Tree) CheckInvariants() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkInvariantsLocked()
}

// checkInvariantsLocked is CheckInvariants for callers already holding
// t.mu — the `-tags invariants` build runs it after every flush.
func (t *Tree) checkInvariantsLocked() error {
	for i := 1; i <= t.n(); i++ {
		lvl := t.levels[i]
		for j, nd := range lvl {
			if nd.tbl.Entries() > 0 {
				dr := nd.tbl.UserRange()
				if !nd.rng.Contains(dr.Lo) || !nd.rng.Contains(dr.Hi) {
					return fmt.Errorf("L%d node %d: data %v outside range %v", i, nd.num, dr, nd.rng)
				}
			}
			if j > 0 && !lvl[j-1].rng.Before(nd.rng) {
				return fmt.Errorf("L%d: ranges %v and %v not disjoint/sorted",
					i, lvl[j-1].rng, nd.rng)
			}
		}
		// Quarantined nodes are excused from the threshold: they cannot
		// be combined away without reading their (corrupt) contents.
		if i < t.n() && t.activeCount(i) > t.threshold(i) {
			return fmt.Errorf("L%d has %d nodes > threshold %d", i, t.activeCount(i), t.threshold(i))
		}
	}
	return nil
}

// levelIter concatenates the nodes of one level (ranges are disjoint
// and sorted, so concatenation preserves order).  It holds a reference
// on every node until Close.
type levelIter struct {
	t     *Tree
	nodes []*node
	// rngs are the node ranges captured at creation under Tree.mu: a
	// concurrent append may widen a live node's range, and the iterator
	// is a point-in-time view, so it routes by the ranges it saw.
	rngs   []kv.Range
	idx    int
	cur    iterator.Iterator
	err    error
	closed bool
}

func (l *levelIter) open(i int) {
	l.idx = i
	if i >= 0 && i < len(l.nodes) {
		l.cur = l.nodes[i].tbl.NewIter()
	} else {
		l.cur = nil
	}
}

// First implements iterator.Iterator.
func (l *levelIter) First() {
	l.err = nil
	l.open(0)
	if l.cur != nil {
		l.cur.First()
		l.skipExhausted()
	}
}

// Seek implements iterator.Iterator.
func (l *levelIter) Seek(target []byte) {
	l.err = nil
	u := kv.UserKey(target)
	i := sort.Search(len(l.nodes), func(j int) bool {
		return kv.CompareUser(u, l.rngs[j].Hi) <= 0
	})
	l.open(i)
	if l.cur != nil {
		l.cur.Seek(target)
		l.skipExhausted()
	}
}

// Next implements iterator.Iterator.
func (l *levelIter) Next() {
	if l.cur == nil {
		return
	}
	l.cur.Next()
	l.skipExhausted()
}

func (l *levelIter) skipExhausted() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Err(); err != nil {
			l.err = err
			l.cur = nil
			return
		}
		l.cur.Close()
		l.open(l.idx + 1)
		if l.cur != nil {
			l.cur.First()
		}
	}
}

// Valid implements iterator.Iterator.
func (l *levelIter) Valid() bool { return l.cur != nil && l.cur.Valid() }

// Key implements iterator.Iterator.
func (l *levelIter) Key() []byte {
	if l.cur == nil {
		return nil
	}
	return l.cur.Key()
}

// Value implements iterator.Iterator.
func (l *levelIter) Value() []byte {
	if l.cur == nil {
		return nil
	}
	return l.cur.Value()
}

// Err implements iterator.Iterator.
func (l *levelIter) Err() error { return l.err }

// Close implements iterator.Iterator.
func (l *levelIter) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.cur != nil {
		err = l.cur.Close()
	}
	for _, nd := range l.nodes {
		l.t.unref(nd)
	}
	return err
}

// Last implements iterator.ReverseIterator.
func (l *levelIter) Last() {
	l.err = nil
	l.open(len(l.nodes) - 1)
	if l.cur != nil {
		l.cur.(iterator.ReverseIterator).Last()
		l.skipExhaustedBackward()
	}
}

// Prev implements iterator.ReverseIterator.
func (l *levelIter) Prev() {
	if l.cur == nil {
		return
	}
	l.cur.(iterator.ReverseIterator).Prev()
	l.skipExhaustedBackward()
}

// SeekForPrev implements iterator.ReverseIterator.
func (l *levelIter) SeekForPrev(target []byte) {
	l.err = nil
	u := kv.UserKey(target)
	// Last node whose range starts at or below the target key.
	i := sort.Search(len(l.nodes), func(j int) bool {
		return kv.CompareUser(l.rngs[j].Lo, u) > 0
	}) - 1
	if i < 0 {
		l.cur = nil
		l.idx = 0
		return
	}
	l.open(i)
	if l.cur != nil {
		l.cur.(iterator.ReverseIterator).SeekForPrev(target)
		l.skipExhaustedBackward()
	}
}

func (l *levelIter) skipExhaustedBackward() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Err(); err != nil {
			l.err = err
			l.cur = nil
			return
		}
		l.cur.Close()
		if l.idx == 0 {
			l.cur = nil
			return
		}
		l.open(l.idx - 1)
		if l.cur != nil {
			l.cur.(iterator.ReverseIterator).Last()
		}
	}
}

// ApproximateSize estimates the data bytes stored in the user-key
// range [lo, hi]: full node sizes for nodes entirely inside, halves
// for boundary overlaps.
func (t *Tree) ApproximateSize(lo, hi []byte) int64 {
	rng := kv.MakeRange(lo, hi)
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for i := 1; i <= t.n(); i++ {
		for _, nd := range t.levels[i] {
			if !nd.rng.Overlaps(rng) {
				continue
			}
			if rng.Contains(nd.rng.Lo) && rng.Contains(nd.rng.Hi) {
				total += nd.dataSize()
			} else {
				total += nd.dataSize() / 2
			}
		}
	}
	return total
}
