package vfs

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testFSBasics(t *testing.T, fs FS) {
	t.Helper()
	f, err := fs.Create("a.tbl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Size(); n != 11 {
		t.Fatalf("size %d", n)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if !fs.Exists("a.tbl") {
		t.Error("a.tbl should exist")
	}
	if fs.Exists("missing") {
		t.Error("missing should not exist")
	}
	if err := fs.Rename("a.tbl", "b.tbl"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a.tbl") || !fs.Exists("b.tbl") {
		t.Error("rename did not move file")
	}
	g, err := fs.Open("b.tbl")
	if err != nil {
		t.Fatal(err)
	}
	buf2 := make([]byte, 11)
	if _, err := g.ReadAt(buf2, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf2) != "hello world" {
		t.Fatalf("after rename read %q", buf2)
	}
	g.Close()

	if err := fs.Remove("b.tbl"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("b.tbl") {
		t.Error("remove failed")
	}
	if _, err := fs.Open("b.tbl"); err == nil {
		t.Error("open of removed file should fail")
	}
	if err := fs.Remove("b.tbl"); err == nil {
		t.Error("double remove should fail")
	}
}

func TestMemFSBasics(t *testing.T) { testFSBasics(t, NewMemFS()) }

func TestOSFSBasics(t *testing.T) {
	dir := t.TempDir()
	fs := chrootFS{OSFS{}, dir}
	testFSBasics(t, fs)
}

// chrootFS prefixes all names with a directory, letting the shared FS
// conformance test run against OSFS inside a temp dir.
type chrootFS struct {
	inner FS
	root  string
}

func (c chrootFS) p(name string) string            { return c.root + "/" + name }
func (c chrootFS) Create(n string) (File, error)   { return c.inner.Create(c.p(n)) }
func (c chrootFS) Open(n string) (File, error)     { return c.inner.Open(c.p(n)) }
func (c chrootFS) Remove(n string) error           { return c.inner.Remove(c.p(n)) }
func (c chrootFS) Rename(o, n string) error        { return c.inner.Rename(c.p(o), c.p(n)) }
func (c chrootFS) List(d string) ([]string, error) { return c.inner.List(c.p(d)) }
func (c chrootFS) MkdirAll(d string) error         { return c.inner.MkdirAll(c.p(d)) }
func (c chrootFS) Exists(n string) bool            { return c.inner.Exists(c.p(n)) }

func TestMemFSWriteAtGrows(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	if _, err := f.WriteAt([]byte("tail"), 100); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Size(); n != 104 {
		t.Fatalf("size %d", n)
	}
	// The hole reads as zeros.
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 50); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 4)) {
		t.Errorf("hole not zero: %v", buf)
	}
	if _, err := f.ReadAt(buf, 100); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "tail" {
		t.Errorf("got %q", buf)
	}
}

func TestMemFSTruncate(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Write([]byte("0123456789"))
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Size(); n != 4 {
		t.Fatalf("size %d", n)
	}
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	f.ReadAt(buf, 0)
	if string(buf[:4]) != "0123" || !bytes.Equal(buf[4:], make([]byte, 4)) {
		t.Errorf("truncate grow: %q", buf)
	}
}

func TestMemFSList(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("db")
	for _, n := range []string{"db/2.tbl", "db/1.tbl", "db/sub/3.tbl", "top.txt"} {
		f, _ := fs.Create(n)
		f.Close()
	}
	names, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1.tbl", "2.tbl"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("List(db) = %v", names)
	}
}

func TestMemFSConcurrent(t *testing.T) {
	fs := NewMemFS()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			f, err := fs.Create(name)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 100; j++ {
				f.Write([]byte{byte(j)})
			}
			if n, _ := f.Size(); n != 100 {
				t.Errorf("file %s size %d", name, n)
			}
			f.Close()
		}(i)
	}
	wg.Wait()
	if fs.TotalBytes() != 800 {
		t.Errorf("total %d", fs.TotalBytes())
	}
}

func TestStatsFSCounts(t *testing.T) {
	var st IOStats
	fs := NewStatsFS(NewMemFS(), &st)
	f, _ := fs.Create("x")
	f.WriteAt(make([]byte, 100), 0)   // seek (first op)
	f.WriteAt(make([]byte, 100), 100) // sequential
	f.WriteAt(make([]byte, 10), 50)   // seek
	buf := make([]byte, 60)
	f.ReadAt(buf, 0)  // seek
	f.ReadAt(buf, 60) // sequential
	f.ReadAt(buf, 0)  // seek

	s := st.Snapshot()
	if s.BytesWritten != 210 {
		t.Errorf("written %d", s.BytesWritten)
	}
	if s.BytesRead != 180 {
		t.Errorf("read %d", s.BytesRead)
	}
	if s.WriteOps != 3 || s.ReadOps != 3 {
		t.Errorf("ops %d/%d", s.WriteOps, s.ReadOps)
	}
	if s.Seeks != 4 {
		t.Errorf("seeks %d", s.Seeks)
	}
	d := s.Sub(IOSnapshot{BytesWritten: 10})
	if d.BytesWritten != 200 {
		t.Errorf("sub %d", d.BytesWritten)
	}
}

func TestDiskClockCharges(t *testing.T) {
	clock := new(DiskClock)
	prof := HDDProfile()
	d := NewDisk(NewMemFS(), prof, clock)
	f, _ := d.Create("x")

	f.WriteAt(make([]byte, 1<<20), 0)                              // 1 MiB: seek + transfer
	want := prof.SeekLatency + prof.SeekLatency/prof.SeekLatency*0 // placeholder, computed below
	_ = want
	transfer := int64(1<<20) * int64(1e9) / prof.WriteBandwidth
	got := clock.Elapsed().Nanoseconds()
	exp := prof.SeekLatency.Nanoseconds() + transfer
	if got < exp*95/100 || got > exp*105/100 {
		t.Errorf("clock %d want about %d", got, exp)
	}

	clock.Reset()
	f.WriteAt(make([]byte, 1<<20), 1<<20) // sequential continuation: no seek
	got = clock.Elapsed().Nanoseconds()
	if got < transfer*95/100 || got > transfer*105/100 {
		t.Errorf("sequential write clock %d want about %d", got, transfer)
	}

	clock.Reset()
	buf := make([]byte, 4096)
	f.ReadAt(buf, 0)
	if clock.Elapsed() < prof.SeekLatency {
		t.Error("random read must pay a seek")
	}
}

func TestDiskSSDFasterThanHDD(t *testing.T) {
	run := func(p DiskProfile) time.Duration {
		clock := new(DiskClock)
		d := NewDisk(NewMemFS(), p, clock)
		f, _ := d.Create("x")
		for i := int64(0); i < 100; i++ {
			f.WriteAt(make([]byte, 4096), i*8192) // all seeks
		}
		return clock.Elapsed()
	}
	hdd, ssd := run(HDDProfile()), run(SSDProfile())
	if ssd*10 > hdd {
		t.Errorf("SSD (%v) should be >10x faster than HDD (%v) on random writes", ssd, hdd)
	}
}

func TestMemFSWriteAtRoundTripQuick(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fs := NewMemFS()
		fh, _ := fs.Create("q")
		var ref []byte
		off := int64(0)
		for _, c := range chunks {
			fh.WriteAt(c, off)
			ref = append(ref, c...)
			off += int64(len(c))
		}
		if len(ref) == 0 {
			return true
		}
		got := make([]byte, len(ref))
		fh.ReadAt(got, 0)
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
