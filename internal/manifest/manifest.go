// Package manifest persists tree metadata — which table file lives on
// which level with which assigned key range — as a log of version edits,
// in the spirit of LevelDB's MANIFEST.  LSA/IAM needs this in particular
// because a node's *assigned* range (adjusted by flushes, splits and
// combines, Sec. 4.2) can be wider than the keys currently stored in its
// file, so it cannot be reconstructed from table contents alone.
package manifest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"iamdb/internal/corrupt"
	"iamdb/internal/kv"
	"iamdb/internal/vfs"
	"iamdb/internal/wal"
)

// ErrCorrupt reports a malformed manifest record.
var ErrCorrupt = errors.New("manifest: corrupt")

// NodeRecord places one table file in the tree.
type NodeRecord struct {
	Level   int
	FileNum uint64
	// Lo and Hi are the node's assigned user-key range.  For LSM
	// baselines this equals the table's data bounds; for LSA/IAM it is
	// the tree-assigned range.
	Lo, Hi []byte
}

// Edit is one atomic metadata change.
type Edit struct {
	Added   []NodeRecord
	Deleted []NodeRef
	// The following apply when their Set flag is true.
	NextFile    uint64
	SetNextFile bool
	LastSeq     kv.Seq
	SetLastSeq  bool
	LogNum      uint64
	SetLogNum   bool
	NumLevels   int
	SetLevels   bool
}

// NodeRef identifies a node being removed.
type NodeRef struct {
	Level   int
	FileNum uint64
}

const (
	tagAdded    = 1
	tagDeleted  = 2
	tagNextFile = 3
	tagLastSeq  = 4
	tagLogNum   = 5
	tagLevels   = 6
)

func (e *Edit) encode() []byte {
	var b []byte
	for _, n := range e.Added {
		b = binary.AppendUvarint(b, tagAdded)
		b = binary.AppendUvarint(b, uint64(n.Level))
		b = binary.AppendUvarint(b, n.FileNum)
		b = appendBytes(b, n.Lo)
		b = appendBytes(b, n.Hi)
	}
	for _, d := range e.Deleted {
		b = binary.AppendUvarint(b, tagDeleted)
		b = binary.AppendUvarint(b, uint64(d.Level))
		b = binary.AppendUvarint(b, d.FileNum)
	}
	if e.SetNextFile {
		b = binary.AppendUvarint(b, tagNextFile)
		b = binary.AppendUvarint(b, e.NextFile)
	}
	if e.SetLastSeq {
		b = binary.AppendUvarint(b, tagLastSeq)
		b = binary.AppendUvarint(b, uint64(e.LastSeq))
	}
	if e.SetLogNum {
		b = binary.AppendUvarint(b, tagLogNum)
		b = binary.AppendUvarint(b, e.LogNum)
	}
	if e.SetLevels {
		b = binary.AppendUvarint(b, tagLevels)
		b = binary.AppendUvarint(b, uint64(e.NumLevels))
	}
	return b
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func decodeEdit(rec []byte) (*Edit, error) {
	e := &Edit{}
	p := rec
	u := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		p = p[n:]
		return v, nil
	}
	bs := func() ([]byte, error) {
		n, err := u()
		if err != nil || uint64(len(p)) < n {
			return nil, ErrCorrupt
		}
		out := append([]byte(nil), p[:n]...)
		p = p[n:]
		return out, nil
	}
	for len(p) > 0 {
		tag, err := u()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagAdded:
			lvl, err := u()
			if err != nil {
				return nil, err
			}
			fn, err := u()
			if err != nil {
				return nil, err
			}
			lo, err := bs()
			if err != nil {
				return nil, err
			}
			hi, err := bs()
			if err != nil {
				return nil, err
			}
			e.Added = append(e.Added, NodeRecord{Level: int(lvl), FileNum: fn, Lo: lo, Hi: hi})
		case tagDeleted:
			lvl, err := u()
			if err != nil {
				return nil, err
			}
			fn, err := u()
			if err != nil {
				return nil, err
			}
			e.Deleted = append(e.Deleted, NodeRef{Level: int(lvl), FileNum: fn})
		case tagNextFile:
			v, err := u()
			if err != nil {
				return nil, err
			}
			e.NextFile, e.SetNextFile = v, true
		case tagLastSeq:
			v, err := u()
			if err != nil {
				return nil, err
			}
			e.LastSeq, e.SetLastSeq = kv.Seq(v), true
		case tagLogNum:
			v, err := u()
			if err != nil {
				return nil, err
			}
			e.LogNum, e.SetLogNum = v, true
		case tagLevels:
			v, err := u()
			if err != nil {
				return nil, err
			}
			e.NumLevels, e.SetLevels = int(v), true
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
		}
	}
	return e, nil
}

// State is the materialized tree metadata after replaying all edits.
type State struct {
	Levels    [][]NodeRecord // Levels[i] sorted by Lo
	NextFile  uint64
	LastSeq   kv.Seq
	LogNum    uint64
	NumLevels int
}

// Apply folds one edit into the state.
func (s *State) Apply(e *Edit) error {
	for _, d := range e.Deleted {
		if d.Level >= len(s.Levels) {
			return fmt.Errorf("%w: delete on level %d beyond %d", ErrCorrupt, d.Level, len(s.Levels))
		}
		lvl := s.Levels[d.Level]
		idx := -1
		for i, n := range lvl {
			if n.FileNum == d.FileNum {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("%w: delete of absent file %d on level %d", ErrCorrupt, d.FileNum, d.Level)
		}
		s.Levels[d.Level] = append(lvl[:idx], lvl[idx+1:]...)
	}
	for _, n := range e.Added {
		for len(s.Levels) <= n.Level {
			s.Levels = append(s.Levels, nil)
		}
		s.Levels[n.Level] = append(s.Levels[n.Level], n)
	}
	for i := range s.Levels {
		sort.Slice(s.Levels[i], func(a, b int) bool {
			return kv.CompareUser(s.Levels[i][a].Lo, s.Levels[i][b].Lo) < 0
		})
	}
	if e.SetNextFile {
		s.NextFile = e.NextFile
	}
	if e.SetLastSeq {
		s.LastSeq = e.LastSeq
	}
	if e.SetLogNum {
		s.LogNum = e.LogNum
	}
	if e.SetLevels {
		s.NumLevels = e.NumLevels
	}
	return nil
}

// Snapshot renders the whole state as a single edit, used to compact
// the manifest on open.
func (s *State) Snapshot() *Edit {
	e := &Edit{
		NextFile: s.NextFile, SetNextFile: true,
		LastSeq: s.LastSeq, SetLastSeq: true,
		LogNum: s.LogNum, SetLogNum: true,
		NumLevels: s.NumLevels, SetLevels: true,
	}
	for _, lvl := range s.Levels {
		e.Added = append(e.Added, lvl...)
	}
	return e
}

// Log appends edits durably to a manifest file.
type Log struct {
	f vfs.File
	w *wal.Writer
}

// Create starts a fresh manifest at name, writing an initial snapshot
// of st (which may be empty).
func Create(fs vfs.FS, name string, st *State) (*Log, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, w: wal.NewWriter(f)}
	if err := l.Append(st.Snapshot()); err != nil {
		_ = f.Close()
		return nil, err
	}
	return l, nil
}

// Append writes one edit and syncs.
func (l *Log) Append(e *Edit) error {
	if err := l.w.Append(e.encode()); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close releases the manifest file.
func (l *Log) Close() error { return l.f.Close() }

// Replay loads the state from a manifest file.
func Replay(fs vfs.FS, name string) (*State, error) {
	st, _, err := ReplayStrict(fs, name)
	return st, err
}

// ReplayStrict loads the state from a manifest file with the strict
// log reader: a torn final append (crash mid-Append) is tolerated and
// reported via dropped > 0 so the caller can flag the regression, but
// mid-log corruption — damage with valid edits after it — aborts with
// a *corrupt.Error naming the manifest rather than silently replaying
// a truncated history.  Malformed or inapplicable edits behind a valid
// checksum abort the same way.
func ReplayStrict(fs vfs.FS, name string) (*State, int64, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st := &State{}
	dropped, err := wal.ReplayAllStrict(f, name, func(rec []byte) error {
		e, err := decodeEdit(rec)
		if err != nil {
			return corrupt.New(corrupt.LayerManifest, name, -1,
				errors.Join(ErrCorrupt, err), "edit record malformed")
		}
		if err := st.Apply(e); err != nil {
			return corrupt.New(corrupt.LayerManifest, name, -1,
				errors.Join(ErrCorrupt, err), "edit not applicable to replayed state")
		}
		return nil
	})
	if err != nil {
		return nil, dropped, err
	}
	return st, dropped, nil
}
