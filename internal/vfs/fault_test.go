package vfs

import (
	"errors"
	"testing"
)

func TestFaultFSWriteCountdown(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f, err := ffs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailAfter(FaultWrite, 2)
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatal("write 1 should pass")
	}
	if _, err := f.WriteAt([]byte("b"), 10); err != nil {
		t.Fatal("write 2 should pass")
	}
	if _, err := f.Write([]byte("c")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3 should fail, got %v", err)
	}
	// Non-sticky: next write passes again.
	if _, err := f.Write([]byte("d")); err != nil {
		t.Fatal("post-fault write should pass")
	}
	if ffs.Hits(FaultWrite) != 0 { // disarmed, map entry gone
		t.Log("hits reset after disarm (expected)")
	}
}

func TestFaultFSSticky(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	ffs.SetSticky(true)
	ffs.FailAfter(FaultSync, 0)
	f, _ := ffs.Create("x")
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d should fail", i)
		}
	}
	if ffs.Hits(FaultSync) != 3 {
		t.Fatalf("hits %d", ffs.Hits(FaultSync))
	}
	ffs.Clear()
	if err := f.Sync(); err != nil {
		t.Fatal("sync after clear should pass")
	}
}

func TestFaultFSCreateAndRemove(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	ffs.FailAfter(FaultCreate, 0)
	if _, err := ffs.Create("x"); !errors.Is(err, ErrInjected) {
		t.Fatal("create should fail")
	}
	f, err := ffs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	ffs.FailAfter(FaultRemove, 0)
	if err := ffs.Remove("x"); !errors.Is(err, ErrInjected) {
		t.Fatal("remove should fail")
	}
	if err := ffs.Remove("x"); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSReads(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f, _ := ffs.Create("x")
	f.Write([]byte("hello"))
	ffs.FailAfter(FaultRead, 0)
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatal("read should fail")
	}
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal("second read should pass")
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
}
