package iamdb

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"iamdb/internal/vfs"
)

// These tests exercise the background-error engine: sticky faults on
// table files push the DB into read-only degradation, reads keep
// working, and once the fault clears the DB heals — automatically via
// the retrying workers, or explicitly via Resume — without reopening.

func openSticky(t *testing.T, e EngineKind, tweak func(*Options)) (*DB, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(vfs.NewMemFS())
	opts := smallOpts(e, ffs)
	opts.BgRetryLimit = 3
	opts.BgBackoff = func(failures int) bool { return true } // retry hot, no sleep
	if tweak != nil {
		tweak(opts)
	}
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, ffs
}

// armTableFault makes every write to a table file fail until cleared.
// The WAL (.log) is untouched, so foreground appends keep succeeding
// and the failure is purely background.
func armTableFault(ffs *vfs.FaultFS) {
	ffs.SetSticky(true)
	ffs.FailAfterPath(vfs.FaultWrite, ".mst", 0)
}

// fillUntilError writes until the background failure surfaces on the
// write path, returning the error (nil if it never did).
func fillUntilError(t *testing.T, db *DB) error {
	t.Helper()
	for i := 0; i < 30000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("bg%07d", i)), make([]byte, 64)); err != nil {
			return err
		}
	}
	return nil
}

func TestStickyFaultDegradesToReadOnlyThenAutoHeals(t *testing.T) {
	var roEnter, roExit, bgEvents atomic.Int64
	db, ffs := openSticky(t, IAM, func(o *Options) {
		o.EventListener = &EventListener{
			BackgroundError: func(BackgroundErrorInfo) { bgEvents.Add(1) },
			ReadOnlyEnter:   func(ReadOnlyInfo) { roEnter.Add(1) },
			ReadOnlyExit:    func(ReadOnlyInfo) { roExit.Add(1) },
		}
	})
	defer db.Close()

	if err := db.Put([]byte("early"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	armTableFault(ffs)
	err := fillUntilError(t, db)
	if err == nil {
		t.Fatal("sticky table fault never surfaced on the write path")
	}
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("want ErrReadOnly, got %v", err)
	}
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("read-only error must carry the cause, got %v", err)
	}
	var bge *BackgroundError
	if !errors.As(err, &bge) {
		t.Fatalf("read-only error must wrap a *BackgroundError, got %v", err)
	}

	// Reads are still served while degraded.
	if v, gerr := db.Get([]byte("early")); gerr != nil || string(v) != "v" {
		t.Fatalf("read while degraded: %q, %v", v, gerr)
	}

	// Clear the fault: the retrying background workers must heal the
	// DB and accept writes again without a reopen.
	ffs.Clear()
	ffs.SetSticky(false)
	healed := false
	for i := 0; i < 200000 && !healed; i++ {
		healed = db.Put([]byte("after-heal"), []byte("v")) == nil
	}
	if !healed {
		t.Fatal("DB never healed after the fault cleared")
	}
	if v, gerr := db.Get([]byte("after-heal")); gerr != nil || string(v) != "v" {
		t.Fatalf("read after heal: %q, %v", v, gerr)
	}

	if db.bgRetries.Load() == 0 {
		t.Error("bg.retries counter never incremented")
	}
	if db.bgReadonly.Load() == 0 {
		t.Error("bg.readonly counter never incremented")
	}
	if bgEvents.Load() == 0 || roEnter.Load() == 0 || roExit.Load() == 0 {
		t.Errorf("events: background=%d enter=%d exit=%d, want all > 0",
			bgEvents.Load(), roEnter.Load(), roExit.Load())
	}
}

func TestResumeClearsReadOnly(t *testing.T) {
	// An abandoning backoff parks the workers after a few failures, so
	// healing is not automatic — Resume must do it.
	db, ffs := openSticky(t, LSA, func(o *Options) {
		o.BgBackoff = func(failures int) bool { return failures < 6 }
	})
	defer db.Close()

	armTableFault(ffs)
	err := fillUntilError(t, db)
	if err == nil {
		t.Fatal("sticky table fault never surfaced on the write path")
	}
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("want ErrReadOnly, got %v", err)
	}

	ffs.Clear()
	ffs.SetSticky(false)
	if err := db.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := db.Put([]byte("post-resume"), []byte("v")); err != nil {
		t.Fatalf("put after resume: %v", err)
	}
	if v, err := db.Get([]byte("post-resume")); err != nil || string(v) != "v" {
		t.Fatalf("get after resume: %q, %v", v, err)
	}
}
