package metrics

import (
	"testing"
	"time"

	"iamdb/internal/histogram"
)

// TestSnapshotDelta pins interval semantics: counters subtract, gauges
// stay instantaneous, histograms diff bucket-wise so interval
// percentiles reflect only the window's samples.
func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("ops")
	depth := r.Gauge("queue.depth")
	lat := r.Histogram("put.latency")

	ops.Add(10)
	depth.Set(3)
	lat.Record(time.Millisecond)
	prev := r.Snapshot()

	ops.Add(5)
	depth.Set(7)
	lat.Record(time.Second)
	lat.Record(time.Second)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if got := d.Counters["ops"]; got != 5 {
		t.Errorf("delta ops = %d, want 5", got)
	}
	if got := d.Gauges["queue.depth"]; got != 7 {
		t.Errorf("delta gauge = %d, want instantaneous 7", got)
	}
	sum := d.Histograms["put.latency"]
	if sum.Count != 2 {
		t.Errorf("interval histogram count = %d, want 2", sum.Count)
	}
	// The 1ms sample belongs to the previous interval: the interval p50
	// must sit near 1s, far above 1ms.
	if sum.P50 < 500*time.Millisecond {
		t.Errorf("interval p50 = %v, want ≈1s (old samples leaked in)", sum.P50)
	}
	// An instrument absent from prev counts from zero.
	r2 := NewRegistry()
	r2.Counter("new").Add(4)
	if got := r2.Snapshot().Delta(prev).Counters["new"]; got != 4 {
		t.Errorf("fresh counter delta = %d, want 4", got)
	}
}

// samplerSource is a hand-driven Cumulative for sampler tests.  Like
// the DB's real source it returns an independent histogram snapshot on
// every read — the sampler differences successive reads, so aliasing a
// live histogram would make every interval empty.
type samplerSource struct {
	c Cumulative
}

func (s *samplerSource) read() Cumulative {
	out := s.c
	if s.c.Put != nil {
		h := histogram.New()
		h.Merge(s.c.Put)
		out.Put = h
	}
	return out
}

// TestSamplerWindows drives the clock across boundaries and checks each
// closed window carries exactly its interval delta.
func TestSamplerWindows(t *testing.T) {
	mc := new(ManualClock)
	src := &samplerSource{}
	s := NewSampler(mc, 10*time.Millisecond, 8, src.read)

	// Inside the first window: no points yet.
	src.c.Ops = 4
	mc.Advance(5 * time.Millisecond)
	s.Poll()
	if pts := s.Points(); len(pts) != 0 {
		t.Fatalf("window not closed yet but %d points", len(pts))
	}

	// Cross the first boundary.
	src.c.Ops = 10
	src.c.WriteBytes = 1 << 20
	src.c.StallNanos = int64(2 * time.Millisecond)
	src.c.PerLevelWrite = []int64{100, 200}
	src.c.CacheHits, src.c.CacheLookups = 3, 4
	src.c.CommitGroups, src.c.CommitBatches = 2, 6
	mc.Advance(5 * time.Millisecond)
	s.Poll()
	pts := s.Points()
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	p := pts[0]
	if p.Start != 0 || p.End != 10*time.Millisecond {
		t.Errorf("window bounds [%v, %v], want [0, 10ms]", p.Start, p.End)
	}
	if p.Ops != 10 {
		t.Errorf("window ops = %d, want 10", p.Ops)
	}
	if want := 10.0 / 0.010; p.OpsPerSec != want {
		t.Errorf("ops/sec = %v, want %v", p.OpsPerSec, want)
	}
	if want := 0.2; p.StallFrac != want {
		t.Errorf("stall frac = %v, want %v", p.StallFrac, want)
	}
	if p.WriteBytes != 1<<20 {
		t.Errorf("write bytes = %d", p.WriteBytes)
	}
	if len(p.PerLevelWrite) != 2 || p.PerLevelWrite[1] != 200 {
		t.Errorf("per-level write = %v", p.PerLevelWrite)
	}
	if want := 0.75; p.CacheHitRate != want {
		t.Errorf("cache hit rate = %v, want %v", p.CacheHitRate, want)
	}
	if p.CommitGroups != 2 || p.MeanGroupSize != 3 {
		t.Errorf("groups=%d mean=%v, want 2 and 3", p.CommitGroups, p.MeanGroupSize)
	}

	// Second window's delta counts from the first capture.
	src.c.Ops = 13
	mc.Advance(10 * time.Millisecond)
	s.Poll()
	pts = s.Points()
	if len(pts) != 2 || pts[1].Ops != 3 {
		t.Fatalf("second window = %+v, want ops 3", pts[len(pts)-1])
	}
}

// TestSamplerGapWindows pins the stall shape: when many boundaries pass
// between polls, the whole delta lands in the first crossed window and
// the rest close as zeros — a stall renders flat, not smeared.
func TestSamplerGapWindows(t *testing.T) {
	mc := new(ManualClock)
	src := &samplerSource{}
	s := NewSampler(mc, time.Millisecond, 64, src.read)

	src.c.Ops = 100
	mc.Advance(5 * time.Millisecond) // five boundaries with one poll
	s.Poll()
	pts := s.Points()
	if len(pts) != 5 {
		t.Fatalf("got %d windows, want 5", len(pts))
	}
	if pts[0].Ops != 100 {
		t.Errorf("first window ops = %d, want all 100", pts[0].Ops)
	}
	for i, p := range pts[1:] {
		if p.Ops != 0 {
			t.Errorf("gap window %d ops = %d, want 0", i+1, p.Ops)
		}
	}
	// Windows tile with uniform width.
	for i, p := range pts {
		if want := time.Duration(i) * time.Millisecond; p.Start != want {
			t.Errorf("window %d start = %v, want %v", i, p.Start, want)
		}
		if p.End-p.Start != time.Millisecond {
			t.Errorf("window %d width = %v", i, p.End-p.Start)
		}
	}
}

// TestSamplerFolding runs long past capacity and checks the pairwise
// fold: window count stays within [capacity/2, capacity], widths
// double, totals are conserved, and windows keep tiling.
func TestSamplerFolding(t *testing.T) {
	mc := new(ManualClock)
	src := &samplerSource{}
	src.c.Put = histogram.New()
	const cap = 8
	s := NewSampler(mc, time.Millisecond, cap, src.read)

	for i := 0; i < 100; i++ {
		src.c.Ops += 7
		src.c.Put.Record(time.Duration(i+1) * time.Microsecond)
		mc.Advance(time.Millisecond)
		s.Poll()
	}
	pts := s.Points()
	if len(pts) < cap/2 || len(pts) >= cap {
		t.Fatalf("after folding got %d windows, want in [%d, %d)", len(pts), cap/2, cap)
	}
	if s.Folds() < 4 {
		t.Errorf("folds = %d, want ≥ 4 after 100 windows at capacity 8", s.Folds())
	}
	if got, want := s.Window(), time.Millisecond<<uint(s.Folds()); got != want {
		t.Errorf("window width = %v, want %v after %d folds", got, want, s.Folds())
	}
	var total, hist int64
	for i, p := range pts {
		total += p.Ops
		hist += p.Put.Count
		if i > 0 && p.Start != pts[i-1].End {
			t.Errorf("windows %d/%d do not tile: %v vs %v", i-1, i, pts[i-1].End, p.Start)
		}
		if p.End-p.Start != s.Window() {
			t.Errorf("window %d width %v, want uniform %v", i, p.End-p.Start, s.Window())
		}
	}
	if want := int64(7 * (len(pts) * int(s.Window()/time.Millisecond))); total != want {
		// Every closed window holds 7 ops per original 1ms slice.
		t.Errorf("total ops over timeline = %d, want %d", total, want)
	}
	if want := int64(len(pts)) * int64(s.Window()/time.Millisecond); hist != want {
		t.Errorf("histogram samples conserved = %d, want %d", hist, want)
	}
}

// TestSamplerNil proves every method on a nil sampler is a no-op.
func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.Poll()
	if s.Points() != nil || s.Window() != 0 || s.Folds() != 0 {
		t.Error("nil sampler leaked state")
	}
}

// TestSamplerPollZeroAlloc is the detached-path gate: a Poll that
// crosses no boundary must be one atomic load — no allocations — so
// per-operation polling costs nothing between windows.
func TestSamplerPollZeroAlloc(t *testing.T) {
	mc := new(ManualClock)
	src := &samplerSource{}
	s := NewSampler(mc, time.Hour, 8, src.read)
	var nilS *Sampler
	if n := testing.AllocsPerRun(1000, func() {
		s.Poll()
		nilS.Poll()
	}); n != 0 {
		t.Fatalf("idle Poll allocates %.1f per op, want 0", n)
	}
}

// TestSamplerDefaults pins the constructor fallbacks: window one
// second, capacity 128, odd capacities rounded up to even so pairwise
// folding never strands a window.
func TestSamplerDefaults(t *testing.T) {
	mc := new(ManualClock)
	src := &samplerSource{}
	s := NewSampler(mc, 0, 0, src.read)
	if s.window != time.Second || s.capacity != 128 {
		t.Errorf("defaults: window=%v capacity=%d", s.window, s.capacity)
	}
	if s2 := NewSampler(mc, time.Millisecond, 7, src.read); s2.capacity != 8 {
		t.Errorf("odd capacity rounded to %d, want 8", s2.capacity)
	}
}
