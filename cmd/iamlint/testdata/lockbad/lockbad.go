// Package lockbad holds lock-discipline violations the lockcheck pass
// must flag.  Trailing want-comments pin the expected diagnostics; the
// analyzer tests assert the exact set.
package lockbad

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (b *box) leakOnEarlyReturn(v int) int {
	b.mu.Lock()
	if v < 0 {
		return -1 // want [lockcheck] b.mu.Lock() at line 15 is not released
	}
	b.mu.Unlock()
	return b.n
}

func (b *box) leakAtEnd() {
	b.mu.Lock()
	b.n++
} // want [lockcheck] b.mu.Lock() at line 24 is not released

func (b *box) leakReadLock() int {
	b.rw.RLock()
	if b.n == 0 {
		return 0 // want [lockcheck] b.rw.RLock() at line 29 is not released
	}
	b.rw.RUnlock()
	return b.n
}

func (b *box) balanced(v int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v < 0 {
		return -1
	}
	return b.n
}
