package iamdb

import (
	"time"

	"iamdb/internal/metrics"
	"iamdb/internal/trace"
	"iamdb/internal/vfs"
)

// EventListener receives structured notifications about the DB's
// internal activity: flushes, appends, merges, moves, splits,
// combines, WAL rotations, manifest edits, table lifecycle, and write
// stalls.  All callbacks are optional (nil fields become no-ops) and
// run synchronously on DB goroutines, often with locks held — they
// must not call back into the DB and should return quickly.
//
// It is an alias of the internal metrics type so the engines can fire
// events without importing the public package.
type EventListener = metrics.EventListener

// Event payload types carried by EventListener callbacks.
type (
	FlushInfo        = metrics.FlushInfo
	AppendInfo       = metrics.AppendInfo
	MergeInfo        = metrics.MergeInfo
	MoveInfo         = metrics.MoveInfo
	SplitInfo        = metrics.SplitInfo
	CombineInfo      = metrics.CombineInfo
	WALRotationInfo  = metrics.WALRotationInfo
	ManifestEditInfo = metrics.ManifestEditInfo
	TableInfo        = metrics.TableInfo
	StallInfo        = metrics.StallInfo
	// BackgroundErrorInfo and ReadOnlyInfo carry the background-error
	// and read-only-degradation callbacks (see DESIGN.md "Failure
	// model & crash consistency").
	BackgroundErrorInfo = metrics.BackgroundErrorInfo
	ReadOnlyInfo        = metrics.ReadOnlyInfo
	// CorruptionInfo carries the CorruptionDetected callback (see
	// DESIGN.md "Latent-fault model").
	CorruptionInfo = metrics.CorruptionInfo
)

// Clock is the monotonic time source used for event durations and
// latency histograms: Now reports elapsed time since an arbitrary
// fixed epoch.  The default measures real monotonic time; the bench
// harness injects the virtual disk clock so latencies are measured in
// simulated device time.
type Clock = metrics.Clock

// TraceRecorder is the structured-tracing ring buffer: spans for
// commit groups, the flush cascade, compaction jobs (with file
// lineage) and write stalls.  It is an alias of the internal trace
// type; construct one with NewTraceRecorder and pass it in
// Options.Trace, then export via WriteJSONLines / WriteChromeTrace or
// the debug server's /traces endpoint.
type TraceRecorder = trace.Recorder

// TraceSpan is one completed span from a TraceRecorder snapshot.
type TraceSpan = trace.Span

// NewTraceRecorder returns a recorder keeping the last capacity spans
// (≤ 0 means 4096).  clock should match Options.Clock so span
// timestamps line up with the latency histograms; nil falls back to
// zero timestamps.
func NewTraceRecorder(capacity int, clock Clock) *TraceRecorder {
	return trace.NewRecorder(capacity, clock)
}

// NewWallClock returns a real-time Clock reading monotonic time since
// this call.  Pass the same instance as Options.Clock and to
// NewTraceRecorder so latency histograms and span timestamps share one
// epoch (a DB opened with a nil Clock creates its own wall clock, which
// an outside recorder cannot see).
func NewWallClock() Clock { return newWallClock() }

// Sampler captures windowed metric deltas into a bounded timeline; see
// DB.NewSampler.
type Sampler = metrics.Sampler

// TimelinePoint is one closed window of a Sampler's timeline.
type TimelinePoint = metrics.TimelinePoint

// NewLoggingListener returns an EventListener that formats every event
// as one line through logf (e.g. log.Printf or t.Logf).
func NewLoggingListener(logf func(format string, args ...any)) *EventListener {
	return metrics.NewLoggingListener(logf)
}

// TeeListener fans every event out to each listener in order.
func TeeListener(ls ...*EventListener) *EventListener {
	return metrics.TeeListener(ls...)
}

// EngineKind selects the storage tree backing a DB.
type EngineKind int

const (
	// IAM is the paper's Integrated Append/Merge-tree (the default):
	// appends above the mixed level, merges below, tuned to memory.
	IAM EngineKind = iota
	// LSA is the Log-Structured Append-tree: compaction by appends,
	// minimal merges (lowest write amplification, higher scan/space
	// cost).
	LSA
	// LevelDB is the overflow-tolerant leveled-LSM baseline profile.
	LevelDB
	// RocksDB is the strict, stall-controlled leveled-LSM baseline
	// profile.
	RocksDB
)

func (e EngineKind) String() string {
	switch e {
	case IAM:
		return "IAM"
	case LSA:
		return "LSA"
	case LevelDB:
		return "LevelDB"
	case RocksDB:
		return "RocksDB"
	default:
		return "unknown"
	}
}

// Options configure a DB.  The zero value gives the paper's defaults
// at full scale; experiments scale sizes down proportionally.
type Options struct {
	// Engine picks the tree structure (default IAM).
	Engine EngineKind

	// FS is the filesystem; nil means the operating system.  Tests
	// and the benchmark harness pass vfs.MemFS or vfs.Disk wrappers.
	FS vfs.FS

	// MemtableSize is the memtable capacity threshold Ct (default
	// 128 MiB, Sec. 6.1).  Tree engines reuse it as the node capacity.
	MemtableSize int64

	// CacheSize is the block-cache capacity modelling available RAM
	// (default 64 MiB at library scale).
	CacheSize int64

	// MemBudget is IAM's memory budget M for Eq. (2); 0 means the
	// cache size.
	MemBudget int64

	// Fanout is t (default 10).
	Fanout int

	// K caps sequences per node in IAM's mixed level (default 3).
	K int

	// FixedM pins IAM's mixed level for ablations; 0 = auto-tune.
	FixedM int

	// BitsPerKey sets Bloom filter density (default 14).
	BitsPerKey int

	// FileSize is the baselines' SSTable size (default MemtableSize/2,
	// matching the paper's 64 MiB files against 128 MiB memtables).
	FileSize int64

	// LevelSizeBase is the baselines' L1 threshold (default
	// 5*MemtableSize, matching the paper's 640 MiB against 128 MiB).
	LevelSizeBase int64

	// L0CompactTrigger is the baselines' L0 file trigger (default 4).
	L0CompactTrigger int

	// CompactionThreads is the number of background compaction
	// goroutines (default 1; the paper's -4t configs use 4).
	CompactionThreads int

	// Shards, when > 1, range-partitions the keyspace across that many
	// fully independent shards — each with its own WAL, memtable,
	// engine instance and commit pipeline — behind this one DB (see
	// DESIGN.md "Sharded front-end").  The shard layout is recorded in
	// a SHARDS marker file at the database root; reopening adopts the
	// recorded layout, and opening with a conflicting explicit layout
	// fails.  0 or 1 means the classic single-tree database.
	Shards int

	// ShardSplits overrides the default equal-width first-byte split
	// points: len(ShardSplits) must be Shards-1 and the keys strictly
	// increasing.  Shard i serves keys in [ShardSplits[i-1],
	// ShardSplits[i]).  Nil uses shard.DefaultSplits.
	ShardSplits [][]byte

	// SyncWrites makes every write durable before returning.
	SyncWrites bool

	// ValueThreshold enables key-value separation: values of at least
	// this many bytes are appended once to a segmented, CRC-per-record
	// value log and the tree carries only a fixed-size pointer, so
	// merges move O(pointer) instead of O(value) bytes (see DESIGN.md
	// "Key-value separation").  0 disables separation (every value
	// inline).  A sharded DB gives each shard its own log.
	ValueThreshold int

	// VlogSegmentSize is the value-log segment size (default 64 MiB).
	// Smaller segments give garbage collection finer reclamation
	// granularity at the cost of more files.
	VlogSegmentSize int64

	// shardChild marks a store opened by the sharded router as one of
	// its children; openSingle then leaves the value-log collector for
	// the router to start once the global write path is wired.
	shardChild bool

	// VlogGCDiscardRatio is the dead-bytes fraction at which a sealed
	// value-log segment becomes a garbage-collection candidate (default
	// 0.5): the collector rewrites the still-live records of the
	// densest-dead segment through the normal write path and deletes
	// the segment once the rewrite is durable.
	VlogGCDiscardRatio float64

	// Compression enables flate compression of on-disk data blocks.
	// Off by default, matching the paper's experimental setup
	// (Sec. 6.1: "data compression is turned off").
	Compression bool

	// EventListener receives structured event notifications.  Nil
	// installs no-op listeners, which add no allocations to the hot
	// path.
	EventListener *EventListener

	// Clock is the monotonic time source for event durations and the
	// latency histograms in Metrics.  Nil means real monotonic time.
	Clock Clock

	// Trace records structural spans (commit groups, flush cascade,
	// compaction jobs, write stalls) into a fixed-size ring.  Nil
	// disables tracing; the disabled path adds zero allocations to
	// Put/Get.
	Trace *TraceRecorder

	// DebugAddr, when non-empty, starts the live introspection server
	// on that address (e.g. "127.0.0.1:6060"): /metrics, /timeline,
	// /traces, /levels and /debug/pprof.  The listener closes on
	// DB.Close.
	DebugAddr string

	// DebugSampleWindow is the initial timeline window width for the
	// sampler the debug server starts (default one second; it doubles
	// as the run outgrows the ring).  Ignored when DebugAddr is empty.
	DebugSampleWindow time.Duration

	// InlineBackground runs flushes and compactions synchronously on
	// the committing goroutine instead of background workers.  With a
	// virtual clock this makes entire runs deterministic — two
	// identical runs produce byte-identical metrics, timelines and
	// traces — at the cost of commit latency absorbing background work.
	// The harness's stability experiment and the golden determinism
	// tests use it; production configurations should not.
	InlineBackground bool

	// BgRetryLimit is how many consecutive background flush/compaction
	// failures the DB tolerates before degrading to read-only mode
	// (writes return ErrReadOnly, reads keep working).  Default 5.
	BgRetryLimit int

	// ScrubBytesPerSec rate-limits DB.Scrub's reads so a background
	// scrub does not monopolise the device.  0 means unpaced (scrub as
	// fast as the FS allows).
	ScrubBytesPerSec int64

	// BgBackoff, when non-nil, is called between background retry
	// attempts with the consecutive-failure count; returning false
	// abandons the retry loop until the next kick (Resume or new
	// work).  Nil uses an exponential sleep capped at 128ms that also
	// aborts on Close.  Tests inject this to make retries instant and
	// deterministic.
	BgBackoff func(failures int) bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FS == nil {
		out.FS = vfs.NewOSFS()
	}
	if out.MemtableSize == 0 {
		out.MemtableSize = 128 << 20
	}
	if out.CacheSize == 0 {
		out.CacheSize = 64 << 20
	}
	if out.Fanout == 0 {
		out.Fanout = 10
	}
	if out.K == 0 {
		out.K = 3
	}
	if out.FileSize == 0 {
		out.FileSize = out.MemtableSize / 2
	}
	if out.LevelSizeBase == 0 {
		out.LevelSizeBase = 5 * out.MemtableSize
	}
	if out.L0CompactTrigger == 0 {
		out.L0CompactTrigger = 4
	}
	if out.CompactionThreads == 0 {
		out.CompactionThreads = 1
	}
	if out.BgRetryLimit == 0 {
		out.BgRetryLimit = 5
	}
	if out.VlogSegmentSize == 0 {
		out.VlogSegmentSize = 64 << 20
	}
	if out.VlogGCDiscardRatio == 0 {
		out.VlogGCDiscardRatio = 0.5
	}
	return out
}
