// Package vlog implements the segmented, CRC-per-record append-only
// value log behind key-value separation (WiscKey/Bitcask style): values
// at or above Options.ValueThreshold are written once to the log and
// the trees carry only a fixed-size Pointer, so merges, splits and
// combines move O(pointer) bytes instead of O(value).
//
// A log is a directory of segment files:
//
//	000001.vlg, 000002.vlg, ...   (numbering starts at 1)
//
// Each segment starts with an 8-byte magic header and is followed by
// records:
//
//	record := crc(4, little-endian CRC32-C of everything after itself)
//	          keyLen(uvarint) valLen(uvarint) key val
//
// The CRC covers the lengths and both payloads, so a read that lands
// anywhere but a record start — or on rotted bytes — fails the check
// and surfaces a typed *corrupt.Error instead of wrong bytes.  A
// Pointer names the segment, the record's byte offset, and the full
// record length, so resolution is a single ReadAt plus a CRC check.
package vlog

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"iamdb/internal/kv"
)

// Magic starts every segment file.
const Magic = "IAMVLOG1"

// HeaderSize is the segment header length in bytes.
const HeaderSize = len(Magic)

// PointerLen is the encoded size of a Pointer — the value bytes a
// kv.KindValuePtr record carries through the trees.
const PointerLen = 20

// crcLen is the per-record checksum prefix length.
const crcLen = 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Pointer locates one record in the value log.
type Pointer struct {
	// Segment is the segment file number (>= 1).
	Segment uint64
	// Offset is the record's byte offset within the segment (the CRC
	// prefix's position).
	Offset int64
	// Len is the full record length in bytes, CRC included.
	Len uint32
}

// Append encodes p onto dst (fixed PointerLen bytes) and returns the
// extended slice.
func (p Pointer) Append(dst []byte) []byte {
	var b [PointerLen]byte
	binary.LittleEndian.PutUint64(b[0:8], p.Segment)
	binary.LittleEndian.PutUint64(b[8:16], uint64(p.Offset))
	binary.LittleEndian.PutUint32(b[16:20], p.Len)
	return append(dst, b[:]...)
}

// Encode returns p's fresh PointerLen-byte encoding.
func (p Pointer) Encode() []byte { return p.Append(make([]byte, 0, PointerLen)) }

// DecodePointer parses a Pointer encoding.
func DecodePointer(b []byte) (Pointer, bool) {
	if len(b) != PointerLen {
		return Pointer{}, false
	}
	return Pointer{
		Segment: binary.LittleEndian.Uint64(b[0:8]),
		Offset:  int64(binary.LittleEndian.Uint64(b[8:16])),
		Len:     binary.LittleEndian.Uint32(b[16:20]),
	}, true
}

// IsValuePointer reports whether a tree record (kind, value) is a log
// pointer with a well-formed encoding.
func IsValuePointer(kind kv.Kind, val []byte) bool {
	return kind == kv.KindValuePtr && len(val) == PointerLen
}

// RecordLen reports the encoded size of a record for (key, val).
func RecordLen(key, val []byte) int {
	return crcLen + uvarintLen(uint64(len(key))) + uvarintLen(uint64(len(val))) +
		len(key) + len(val)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendRecord encodes one record onto dst and returns the extended
// slice.
func AppendRecord(dst, key, val []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	dst = append(dst, key...)
	dst = append(dst, val...)
	crc := crc32.Checksum(dst[start+crcLen:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start:start+crcLen], crc)
	return dst
}

// Record-decoding errors.  ErrShort means b ends before the record
// does — the signature of a torn tail; ErrBad means the bytes cannot
// be a record prefix (malformed lengths or a failed CRC).  Callers map
// both onto typed corruption errors with file provenance.
var (
	ErrShort = errors.New("vlog: truncated record")
	ErrBad   = errors.New("vlog: malformed record")
)

// DecodeRecord parses the record at the start of b, returning the key
// and value (aliasing b) and the total encoded length consumed.
func DecodeRecord(b []byte) (key, val []byte, n int, err error) {
	if len(b) < crcLen {
		return nil, nil, 0, ErrShort
	}
	stored := binary.LittleEndian.Uint32(b[:crcLen])
	p := b[crcLen:]
	klen, kn := binary.Uvarint(p)
	if kn <= 0 {
		if kn == 0 {
			return nil, nil, 0, ErrShort
		}
		return nil, nil, 0, ErrBad
	}
	p = p[kn:]
	vlen, vn := binary.Uvarint(p)
	if vn <= 0 {
		if vn == 0 {
			return nil, nil, 0, ErrShort
		}
		return nil, nil, 0, ErrBad
	}
	p = p[vn:]
	// Sum the lengths in uint64 and reject overflow explicitly: a
	// rotted length byte must not wrap into a small sum or a negative
	// slice index.
	total := klen + vlen
	if total < klen || total > uint64(1)<<40 {
		return nil, nil, 0, ErrBad
	}
	if uint64(len(p)) < total {
		return nil, nil, 0, ErrShort
	}
	key = p[:klen]
	val = p[klen : klen+vlen]
	n = crcLen + kn + vn + int(klen+vlen)
	if crc32.Checksum(b[crcLen:n], castagnoli) != stored {
		return nil, nil, 0, ErrBad
	}
	return key, val, n, nil
}
