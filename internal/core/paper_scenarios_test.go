package core

// Scenario tests that pin the tree's behaviour to the paper's worked
// figures: Fig. 4 (flushing to the leaf level: full children merge and
// chunk, non-full children receive appends) and Fig. 5 (the mixed
// level: only the child that reached k sequences merges).

import (
	"fmt"
	"testing"

	"iamdb/internal/kv"
	"iamdb/internal/memtable"
	"iamdb/internal/vfs"
)

// buildTwoLevels loads an LSA tree until it has at least two on-disk
// levels with multiple leaf children.
func buildTwoLevels(t *testing.T, tr *Tree) {
	t.Helper()
	l := newLoader(t, tr)
	for i := 0; i < 4000; i++ {
		l.put(fmt.Sprintf("user%06d", (i*2654435761)%100000), "value-payload")
	}
	l.flush()
	if tr.n() < 2 {
		t.Skip("load too small to form two levels")
	}
}

// TestFigure4LeafFlushMergesFullChildOnly reproduces Fig. 4: when a
// parent flushes into the leaf level, a full child is merged (rewritten
// into chunks of the initial size Cts) while its non-full siblings only
// receive appended sequences.
func TestFigure4LeafFlushMergesFullChildOnly(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	buildTwoLevels(t, tr)

	tr.mu.Lock()
	leaf := tr.n()
	// Pick a leaf child and stuff it to the capacity threshold so the
	// next delivery to it must merge.
	if len(tr.levels[leaf]) == 0 {
		tr.mu.Unlock()
		t.Skip("empty leaf level")
	}
	victim := tr.levels[leaf][0]
	victimRange := victim.rng
	tr.mu.Unlock()

	// Write keys inside the victim's range until it is full, flushing
	// through the tree each time.
	l := newLoader(t, tr)
	mid := victimRange.Lo
	fill := 0
	for !tr.full(victim) && fill < 100000 {
		l.put(string(mid)+fmt.Sprintf("~%06d", fill), "padpadpadpadpadpadpadpad")
		fill++
		// The node object may have been replaced by a merge already;
		// refresh the pointer by range lookup.
		tr.mu.Lock()
		if nd := tr.findNode(leaf, mid); nd != nil {
			victim = nd
		}
		tr.mu.Unlock()
	}
	before := tr.Stats()
	l.flush()
	// Keep inserting into the victim's range: the full child must be
	// merged (Merges increases) and the output chunked small.
	for i := 0; i < 2000; i++ {
		l.put(string(mid)+fmt.Sprintf("!%06d", i), "morepayloadmorepayload")
	}
	l.flush()
	after := tr.Stats()
	if after.Merges <= before.Merges {
		t.Fatalf("full leaf child never merged (merges %d -> %d)", before.Merges, after.Merges)
	}
	// Appends to non-full siblings continued meanwhile.
	if after.Appends <= before.Appends {
		t.Fatalf("non-full children stopped receiving appends")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFigure5MixedLevelKSequences reproduces Fig. 5: with the mixed
// level pinned and k = 3, children accumulate up to 3 sequences by
// appends; the 3-sequence child merges back to a single sequence on
// its next delivery.
func TestFigure5MixedLevelKSequences(t *testing.T) {
	fs := vfs.NewMemFS()
	tr, err := Open(Config{
		FS: fs, Dir: "db", NodeCapacity: 8 * 1024, Fanout: 4,
		Policy: IAM, FixedM: 2, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	l := newLoader(t, tr)
	for i := 0; i < 6000; i++ {
		l.put(fmt.Sprintf("user%06d", (i*2654435761)%50000), "v-payload")
	}
	l.flush()
	if tr.n() < 2 {
		t.Skip("too shallow")
	}
	// Mixed level is L2: every node must carry at most k=3 sequences.
	tr.mu.Lock()
	defer tr.mu.Unlock()
	maxSeqs := 0
	for _, nd := range tr.levels[2] {
		if s := nd.tbl.NumSeqs(); s > maxSeqs {
			maxSeqs = s
		}
	}
	if maxSeqs > 3 {
		t.Fatalf("mixed level node carries %d sequences > k=3", maxSeqs)
	}
	// And appends actually accumulate there (some node has >1).
	if maxSeqs <= 1 && len(tr.levels[2]) > 2 {
		t.Fatalf("mixed level never accumulated appended sequences")
	}
}

// TestMoveDownKeepsSequences verifies the move-down path of Sec. 6.2
// ("most nodes in level 5 are moved directly from level 4 without
// rewriting"): a multi-sequence node that moves levels keeps its file
// and sequence count.
func TestMoveDownKeepsSequences(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	// Sequential load: every node moves down without rewriting.
	mt := memtable.New()
	seq := kv.Seq(0)
	for i := 0; i < 3000; i++ {
		seq++
		mt.Add(seq, kv.KindSet, []byte(fmt.Sprintf("s%08d", i)), []byte("value-value"))
		if mt.ApproximateSize() >= tr.cfg.NodeCapacity {
			if err := tr.Flush(mt.NewIter()); err != nil {
				t.Fatal(err)
			}
			mt = memtable.New()
		}
	}
	tr.Flush(mt.NewIter())
	st := tr.Stats()
	if st.Moves == 0 {
		t.Fatal("sequential load should move nodes down")
	}
	if st.Merges > st.Moves/2 {
		t.Fatalf("sequential load merged too much: %d merges vs %d moves", st.Merges, st.Moves)
	}
}
