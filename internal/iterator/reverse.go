package iterator

import "container/heap"

// ReverseIterator extends Iterator with backward positioning.  All of
// IamDB's storage iterators (memtables, table sequences, level
// concatenations) implement it; compaction-only iterators (the MVCC
// filter) do not need to.
type ReverseIterator interface {
	Iterator
	// Last positions at the largest key.
	Last()
	// Prev steps backward; it is only legal while Valid.
	Prev()
	// SeekForPrev positions at the last key <= target.
	SeekForPrev(target []byte)
}

// Reverse-direction methods for Empty.

// Last implements ReverseIterator.
func (Empty) Last() {}

// Prev implements ReverseIterator.
func (Empty) Prev() {}

// SeekForPrev implements ReverseIterator.
func (Empty) SeekForPrev([]byte) {}

// Reverse-direction methods for Slice.

// Last implements ReverseIterator.
func (s *Slice) Last() { s.i = len(s.Keys) - 1 }

// Prev implements ReverseIterator.
func (s *Slice) Prev() { s.i-- }

// SeekForPrev implements ReverseIterator.
func (s *Slice) SeekForPrev(target []byte) {
	s.Seek(target)
	if s.i >= len(s.Keys) || (s.Valid() && s.cmp(s.Keys[s.i], target) > 0) {
		s.i--
	}
}

// Merging direction handling.  The heap's ordering flips when moving
// backward: the current entry is the maximum.  Switching direction
// re-seeks every child relative to the current key, as in LevelDB.

type dir int8

const (
	dirForward dir = iota
	dirBackward
)

// reverseKids returns the children as ReverseIterators, or nil if any
// child cannot iterate backward.
func (m *Merging) reverseKids() []ReverseIterator {
	out := make([]ReverseIterator, len(m.kids))
	for i, it := range m.kids {
		r, ok := it.(ReverseIterator)
		if !ok {
			return nil
		}
		out[i] = r
	}
	return out
}

// Last implements ReverseIterator.  It panics if any child lacks
// reverse support, as does Prev/SeekForPrev.
func (m *Merging) Last() {
	for _, it := range m.mustReverse() {
		it.Last()
	}
	m.dir = dirBackward
	m.rebuild()
}

// SeekForPrev implements ReverseIterator.
func (m *Merging) SeekForPrev(target []byte) {
	for _, it := range m.mustReverse() {
		it.SeekForPrev(target)
	}
	m.dir = dirBackward
	m.rebuild()
}

// Prev implements ReverseIterator.
func (m *Merging) Prev() {
	if m.cur == nil {
		return
	}
	if m.dir != dirBackward {
		// Direction switch: move every child to the largest key
		// strictly below the current one, then re-heap backward.
		kids := m.mustReverse()
		curKey := append([]byte(nil), m.cur.Key()...)
		for _, it := range kids {
			it.SeekForPrev(curKey)
			if it.Valid() && m.cmp(it.Key(), curKey) == 0 {
				it.Prev()
			}
		}
		m.dir = dirBackward
		m.rebuild()
		return
	}
	m.cur.(ReverseIterator).Prev()
	if m.cur.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		if err := m.cur.Err(); err != nil && m.err == nil {
			m.err = err
		}
		heap.Pop(&m.h)
	}
	m.setCur()
}

func (m *Merging) mustReverse() []ReverseIterator {
	kids := m.reverseKids()
	if kids == nil {
		panic("iterator: Merging child does not support reverse iteration")
	}
	return kids
}
