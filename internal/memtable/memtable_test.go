package memtable

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"iamdb/internal/kv"
)

func TestAddGet(t *testing.T) {
	m := New()
	m.Add(1, kv.KindSet, []byte("a"), []byte("v1"))
	m.Add(2, kv.KindSet, []byte("b"), []byte("v2"))
	v, kind, seq, found := m.Get([]byte("a"), kv.MaxSeq)
	if !found || string(v) != "v1" || kind != kv.KindSet || seq != 1 {
		t.Fatalf("get a: %q %v %d %v", v, kind, seq, found)
	}
	if _, _, _, found := m.Get([]byte("c"), kv.MaxSeq); found {
		t.Fatal("phantom key")
	}
	if m.Count() != 2 || m.Empty() {
		t.Fatalf("count %d", m.Count())
	}
}

func TestMVCCVersions(t *testing.T) {
	m := New()
	m.Add(10, kv.KindSet, []byte("k"), []byte("old"))
	m.Add(20, kv.KindSet, []byte("k"), []byte("new"))
	m.Add(30, kv.KindDelete, []byte("k"), nil)

	v, kind, _, found := m.Get([]byte("k"), kv.MaxSeq)
	if !found || kind != kv.KindDelete {
		t.Fatalf("latest should be tombstone, got %q %v", v, kind)
	}
	v, kind, _, found = m.Get([]byte("k"), 25)
	if !found || kind != kv.KindSet || string(v) != "new" {
		t.Fatalf("snap 25: %q %v", v, kind)
	}
	v, kind, _, found = m.Get([]byte("k"), 15)
	if !found || string(v) != "old" {
		t.Fatalf("snap 15: %q %v", v, kind)
	}
	if _, _, _, found = m.Get([]byte("k"), 5); found {
		t.Fatal("snap 5 should see nothing")
	}
}

func TestIterOrder(t *testing.T) {
	m := New()
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, k := range keys {
		m.Add(kv.Seq(i+1), kv.KindSet, []byte(k), []byte(k))
	}
	it := m.NewIter()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(kv.UserKey(it.Key())))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order: %v", got)
	}
}

func TestIterVersionOrderWithinKey(t *testing.T) {
	m := New()
	m.Add(1, kv.KindSet, []byte("k"), []byte("v1"))
	m.Add(3, kv.KindSet, []byte("k"), []byte("v3"))
	m.Add(2, kv.KindSet, []byte("k"), []byte("v2"))
	it := m.NewIter()
	var seqs []kv.Seq
	for it.First(); it.Valid(); it.Next() {
		seqs = append(seqs, kv.SeqOf(it.Key()))
	}
	if fmt.Sprint(seqs) != "[3 2 1]" {
		t.Fatalf("version order: %v", seqs)
	}
}

func TestIterSeek(t *testing.T) {
	m := New()
	for i := 0; i < 100; i += 2 {
		m.Add(kv.Seq(i+1), kv.KindSet, []byte(fmt.Sprintf("k%03d", i)), nil)
	}
	it := m.NewIter()
	it.Seek(kv.MakeInternalKey([]byte("k051"), kv.MaxSeq, kv.KindSet))
	if !it.Valid() || string(kv.UserKey(it.Key())) != "k052" {
		t.Fatalf("seek: %q", kv.UserKey(it.Key()))
	}
	it.Seek(kv.MakeInternalKey([]byte("zzz"), kv.MaxSeq, kv.KindSet))
	if it.Valid() {
		t.Fatal("seek past end")
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	m := New()
	if m.ApproximateSize() != 0 {
		t.Fatal("empty size nonzero")
	}
	var last int64
	for i := 0; i < 100; i++ {
		m.Add(kv.Seq(i+1), kv.KindSet, []byte(fmt.Sprintf("key%d", i)), make([]byte, 100))
		if m.ApproximateSize() <= last {
			t.Fatal("size must grow monotonically")
		}
		last = m.ApproximateSize()
	}
	if last < 100*100 {
		t.Fatalf("size %d too small", last)
	}
}

func TestConcurrentReadDuringWrite(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			m.Add(kv.Seq(i+1), kv.KindSet, []byte(fmt.Sprintf("k%06d", i)), []byte("v"))
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(99))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("k%06d", rng.Intn(5000)))
				m.Get(k, kv.MaxSeq)
			}
		}()
	}
	wg.Wait()
	if m.Count() != 5000 {
		t.Fatalf("count %d", m.Count())
	}
}

// TestConcurrentWriters hammers the lock-free skiplist with many
// writers, readers and iterator walkers at once, then checks that every
// insert landed and the list is perfectly ordered.
func TestConcurrentWriters(t *testing.T) {
	m := New()
	const writers, perWriter = 8, 2000
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				seq := kv.Seq(w*perWriter + i + 1)
				k := []byte(fmt.Sprintf("w%d-k%05d", w, i))
				m.Add(seq, kv.KindSet, k, []byte(fmt.Sprintf("val-%d-%d", w, i)))
			}
		}(w)
	}
	for g := 0; g < 2; g++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("w%d-k%05d", rng.Intn(writers), rng.Intn(perWriter)))
				if v, _, _, found := m.Get(k, kv.MaxSeq); found && len(v) == 0 {
					t.Error("found key with empty value")
					return
				}
			}
		}()
	}
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it := m.NewIter()
			var last []byte
			for it.First(); it.Valid(); it.Next() {
				if last != nil && kv.CompareInternal(last, it.Key()) >= 0 {
					t.Error("iterator out of order during concurrent writes")
					return
				}
				last = append(last[:0], it.Key()...)
			}
		}
	}()
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if m.Count() != writers*perWriter {
		t.Fatalf("count %d, want %d", m.Count(), writers*perWriter)
	}
	it := m.NewIter()
	n := 0
	var last []byte
	for it.First(); it.Valid(); it.Next() {
		if last != nil && kv.CompareInternal(last, it.Key()) >= 0 {
			t.Fatalf("final list out of order at %q", it.Key())
		}
		last = append(last[:0], it.Key()...)
		n++
	}
	if n != writers*perWriter {
		t.Fatalf("iterated %d records, want %d", n, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 97 {
			k := []byte(fmt.Sprintf("w%d-k%05d", w, i))
			v, _, _, found := m.Get(k, kv.MaxSeq)
			if !found || string(v) != fmt.Sprintf("val-%d-%d", w, i) {
				t.Fatalf("lost insert %q (found=%v v=%q)", k, found, v)
			}
		}
	}
}

func TestGetMatchesMapSemantics(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Del bool
	}) bool {
		m := New()
		ref := map[byte]struct {
			del bool
			seq kv.Seq
		}{}
		for i, op := range ops {
			seq := kv.Seq(i + 1)
			k := []byte{op.Key}
			if op.Del {
				m.Add(seq, kv.KindDelete, k, nil)
			} else {
				m.Add(seq, kv.KindSet, k, []byte{op.Key})
			}
			ref[op.Key] = struct {
				del bool
				seq kv.Seq
			}{op.Del, seq}
		}
		for k, want := range ref {
			_, kind, seq, found := m.Get([]byte{k}, kv.MaxSeq)
			if !found || seq != want.seq {
				return false
			}
			if want.del != (kind == kv.KindDelete) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMemtableAdd(b *testing.B) {
	m := New()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(kv.Seq(i+1), kv.KindSet, []byte(fmt.Sprintf("user%010d", i)), val)
	}
}

func BenchmarkMemtableGet(b *testing.B) {
	m := New()
	for i := 0; i < 100000; i++ {
		m.Add(kv.Seq(i+1), kv.KindSet, []byte(fmt.Sprintf("user%010d", i)), []byte("v"))
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get([]byte(fmt.Sprintf("user%010d", rng.Intn(100000))), kv.MaxSeq)
	}
}

func TestReverseIteration(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Add(kv.Seq(i+1), kv.KindSet, []byte(fmt.Sprintf("k%03d", i*2)), []byte("v"))
	}
	it := m.NewIter().(interface {
		Last()
		Prev()
		SeekForPrev([]byte)
		Valid() bool
		Key() []byte
	})
	it.Last()
	if !it.Valid() || string(kv.UserKey(it.Key())) != "k198" {
		t.Fatalf("last: %q", kv.UserKey(it.Key()))
	}
	for i := 98; i >= 0; i-- {
		it.Prev()
		want := fmt.Sprintf("k%03d", i*2)
		if !it.Valid() || string(kv.UserKey(it.Key())) != want {
			t.Fatalf("prev at %d: %q want %s", i, kv.UserKey(it.Key()), want)
		}
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("prev past front")
	}
	// SeekForPrev between keys.
	it.SeekForPrev(kv.MakeInternalKey([]byte("k101"), kv.MaxSeq, kv.KindSet))
	if !it.Valid() || string(kv.UserKey(it.Key())) != "k100" {
		t.Fatalf("seekforprev: %q", kv.UserKey(it.Key()))
	}
	// Exact internal key.
	exact := kv.MakeInternalKey([]byte("k100"), 51, kv.KindSet)
	it.SeekForPrev(exact)
	if !it.Valid() || kv.SeqOf(it.Key()) != 51 {
		t.Fatalf("seekforprev exact: %v", kv.SeqOf(it.Key()))
	}
	// Before everything.
	it.SeekForPrev(kv.MakeInternalKey([]byte("a"), kv.MaxSeq, kv.KindSet))
	if it.Valid() {
		t.Fatal("seekforprev before all")
	}
}

func TestReverseEmptyMemtable(t *testing.T) {
	m := New()
	it := m.NewIter().(interface {
		Last()
		Valid() bool
	})
	it.Last()
	if it.Valid() {
		t.Fatal("last on empty")
	}
}
