package harness

import (
	"testing"
	"time"

	"iamdb"
	"iamdb/internal/vfs"
	"iamdb/internal/ycsb"
)

// tinyCfg keeps unit tests fast: a few MiB of data.
func tinyCfg(e iamdb.EngineKind) Config {
	return Config{
		Engine: e, Disk: vfs.SSDProfile(),
		Records: 3000, ValueSize: 512, Ct: 32 * 1024,
		CacheBytes: 256 * 1024, Seed: 3,
	}
}

func TestEnvHashLoad(t *testing.T) {
	for _, e := range []iamdb.EngineKind{iamdb.IAM, iamdb.LSA, iamdb.LevelDB, iamdb.RocksDB} {
		t.Run(e.String(), func(t *testing.T) {
			env, err := NewEnv(tinyCfg(e))
			if err != nil {
				t.Fatal(err)
			}
			defer env.Close()
			res, err := env.HashLoad()
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 3000 {
				t.Fatalf("ops %d", res.Ops)
			}
			if res.WriteAmp < 0.5 || res.WriteAmp > 50 {
				t.Fatalf("write amp %.2f implausible", res.WriteAmp)
			}
			if res.OpsPerSec <= 0 {
				t.Fatalf("rate %f", res.OpsPerSec)
			}
			if res.DiskTime <= 0 {
				t.Fatal("no disk time charged")
			}
			if res.SpaceUsed <= 0 {
				t.Fatal("no space used")
			}
			// Every loaded key must be readable.
			for i := uint64(0); i < 3000; i += 131 {
				if _, err := env.DB.Get(ycsb.KeyName(i)); err != nil {
					t.Fatalf("key %d: %v", i, err)
				}
			}
		})
	}
}

func TestEnvWorkloads(t *testing.T) {
	env, err := NewEnv(tinyCfg(iamdb.IAM))
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if _, err := env.HashLoad(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadF} {
		r, err := env.RunWorkload(w, 500)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Ops != 500 || r.OpsPerSec <= 0 {
			t.Fatalf("%s: %+v", w.Name, r)
		}
		// Loaded keys exist; misses should be rare (only workload D
		// reads racing its own inserts).
		if r.ReadMiss > r.Ops/4 {
			t.Fatalf("%s: %d misses", w.Name, r.ReadMiss)
		}
	}
}

func TestEnvSeqLoadAndReadSeq(t *testing.T) {
	env, err := NewEnv(tinyCfg(iamdb.LSA))
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	res, err := env.SeqLoad()
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteAmp > 2.0 {
		t.Fatalf("sequential write amp %.2f should be near 1", res.WriteAmp)
	}
	scan, err := env.ReadSeq()
	if err != nil {
		t.Fatal(err)
	}
	if scan.Ops != 3000 {
		t.Fatalf("readseq saw %d records", scan.Ops)
	}
}

func TestEnvSettleReducesPendingWork(t *testing.T) {
	env, err := NewEnv(tinyCfg(iamdb.LevelDB))
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if _, err := env.HashLoad(); err != nil {
		t.Fatal(err)
	}
	d, err := env.Settle()
	if err != nil {
		t.Fatal(err)
	}
	// The overflow-tolerant profile should have deferred work to the
	// tuning phase.
	if d <= 0 {
		t.Fatal("tuning phase should consume disk time")
	}
	// Settling twice is a no-op (nothing left).
	d2, err := env.Settle()
	if err != nil {
		t.Fatal(err)
	}
	if d2 > d/10 {
		t.Fatalf("second settle did real work: %v vs %v", d2, d)
	}
}

func TestDiskProfilesDiffer(t *testing.T) {
	run := func(p vfs.DiskProfile) time.Duration {
		cfg := tinyCfg(iamdb.RocksDB)
		cfg.Disk = p
		env, err := NewEnv(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer env.Close()
		res, err := env.HashLoad()
		if err != nil {
			t.Fatal(err)
		}
		return res.DiskTime
	}
	ssd, hdd := run(vfs.SSDProfile()), run(vfs.HDDProfile())
	if hdd <= ssd {
		t.Fatalf("HDD (%v) should be slower than SSD (%v)", hdd, ssd)
	}
}

func TestConfigForPreservesRatios(t *testing.T) {
	s := SmallScale
	c100 := s.ConfigFor(iamdb.IAM, ClassSSD100G, 1)
	c1t := s.ConfigFor(iamdb.IAM, ClassHDD1T, 1)
	// 100G class: data / cache = 6.25; 1T: 16.
	d100 := int64(c100.Records) * int64(c100.ValueSize)
	if r := float64(d100) / float64(c100.CacheBytes); r < 6 || r > 6.5 {
		t.Fatalf("100G data:cache ratio %.2f want 6.25", r)
	}
	d1t := int64(c1t.Records) * int64(c1t.ValueSize)
	if r := float64(d1t) / float64(c1t.CacheBytes); r < 15.5 || r > 16.5 {
		t.Fatalf("1T data:cache ratio %.2f want 16", r)
	}
	// Dataset:Ct multiplier 800x for the 100G class, as in the paper.
	if m := d100 / c100.Ct; m != 800 {
		t.Fatalf("100G dataset is %dx Ct, want 800x", m)
	}
}

func TestTableFormat(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"x", "1"}, {"longer-cell", "2"}},
	}
	out := tbl.Format()
	if out == "" || len(out) < 20 {
		t.Fatal("format too short")
	}
}
