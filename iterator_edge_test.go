package iamdb

import (
	"fmt"
	"sync"
	"testing"

	"iamdb/internal/vfs"
)

func TestIteratorEdgeSemantics(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i*2)), []byte("v"))
	}

	it := db.NewIterator()
	defer it.Close()

	// Next before positioning is a no-op.
	it.Next()
	if it.Valid() {
		t.Fatal("Next before First should not validate")
	}

	// Seek past the end invalidates; Next afterwards stays invalid.
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Fatal("seek past end")
	}
	it.Next()
	if it.Valid() {
		t.Fatal("next after exhaustion")
	}

	// Re-seek backwards revives the iterator.
	it.Seek([]byte("k100"))
	if !it.Valid() || string(it.Key()) != "k100" {
		t.Fatalf("re-seek: %q valid=%v", it.Key(), it.Valid())
	}

	// First after use returns to the start.
	it.First()
	if !it.Valid() || string(it.Key()) != "k000" {
		t.Fatalf("first: %q", it.Key())
	}

	// Key/Value return copies: mutating them must not corrupt iteration.
	k, v := it.Key(), it.Value()
	if len(k) > 0 {
		k[0] = 'X'
	}
	if len(v) > 0 {
		v[0] = 'X'
	}
	it.Next()
	it.First()
	if string(it.Key()) != "k000" {
		t.Fatal("caller mutation corrupted the iterator")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}

	// Walk to exhaustion: exactly 100 keys.
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if n != 100 {
		t.Fatalf("walked %d", n)
	}
}

func TestIteratorSeesConsistentSnapshotDuringWrites(t *testing.T) {
	db := openSmall(t, LSA)
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("before"))
	}
	it := db.NewIterator() // pinned at this sequence number
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("after"))
		}
	}()
	// Iterate while the overwrite storm runs: every value must be the
	// pre-iterator one.
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Value()) != "before" {
			t.Fatalf("iterator leaked post-snapshot write at %s", it.Key())
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	wg.Wait()
	if n != 2000 {
		t.Fatalf("iterated %d want 2000", n)
	}
	// And fresh reads see the new values.
	if v, _ := db.Get([]byte("k00000")); string(v) != "after" {
		t.Fatalf("current read got %q", v)
	}
}

func TestSyncWritesOption(t *testing.T) {
	fs := vfs.NewMemFS()
	opts := smallOpts(IAM, fs)
	opts.SyncWrites = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := db.Get([]byte("k199")); err != nil || string(v) != "v" {
		t.Fatalf("get: %q %v", v, err)
	}
}

func TestManySnapshotsUnderChurn(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	var snaps []*Snapshot
	var views []map[string]string
	cur := map[string]string{}
	for round := 0; round < 8; round++ {
		for i := 0; i < 400; i++ {
			k, v := fmt.Sprintf("k%04d", i), fmt.Sprintf("r%d", round)
			db.Put([]byte(k), []byte(v))
			cur[k] = v
		}
		snaps = append(snaps, db.GetSnapshot())
		view := make(map[string]string, len(cur))
		for k, v := range cur {
			view[k] = v
		}
		views = append(views, view)
	}
	// Every snapshot still sees its own round.
	for i, s := range snaps {
		for _, probe := range []string{"k0000", "k0200", "k0399"} {
			v, err := s.Get([]byte(probe))
			if err != nil || string(v) != views[i][probe] {
				t.Fatalf("snap %d %s = %q (%v) want %q", i, probe, v, err, views[i][probe])
			}
		}
	}
	for _, s := range snaps {
		s.Release()
	}
	// After releasing all snapshots, compaction may reclaim; current
	// reads still give the final round.
	db.CompactAll()
	if v, _ := db.Get([]byte("k0123")); string(v) != "r7" {
		t.Fatalf("final read %q", v)
	}
}
