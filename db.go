// Package iamdb is a persistent, crash-recovering, MVCC key-value
// storage library — the implementation of the LSA- and IAM-trees from
// "On Integration of Appends and Merges in Log-Structured Merge Trees"
// (ICPP 2019), together with LevelDB- and RocksDB-style leveled-LSM
// baselines behind the same API.
//
// Quickstart:
//
//	db, err := iamdb.Open("./data", &iamdb.Options{Engine: iamdb.IAM})
//	defer db.Close()
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//	it := db.NewIterator()
//	for it.Seek([]byte("a")); it.Valid(); it.Next() { ... }
//	it.Close()
package iamdb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"iamdb/internal/cache"
	"iamdb/internal/core"
	"iamdb/internal/engine"
	"iamdb/internal/histogram"
	"iamdb/internal/kv"
	"iamdb/internal/lsm"
	"iamdb/internal/memtable"
	"iamdb/internal/metrics"
	"iamdb/internal/vfs"
	"iamdb/internal/wal"
)

var (
	// ErrNotFound reports that a key has no visible value.
	ErrNotFound = errors.New("iamdb: not found")
	// ErrClosed reports use of a closed DB.
	ErrClosed = errors.New("iamdb: closed")
	// ErrReadOnly reports that the DB degraded to read-only mode after
	// repeated background failures.  Reads still work; writes fail with
	// an error wrapping both ErrReadOnly and the background cause.  The
	// DB heals automatically once a background retry succeeds, or
	// explicitly via Resume.
	ErrReadOnly = errors.New("iamdb: read-only (background error)")
)

// BackgroundError is the error recorded when background flush or
// compaction work fails.  It wraps the underlying cause, so
// errors.Is/As see through it.
type BackgroundError struct {
	// Op names the failed operation ("flush" or "compact").
	Op string
	// Err is the underlying error.
	Err error
}

func (e *BackgroundError) Error() string {
	return fmt.Sprintf("iamdb: background %s: %v", e.Op, e.Err)
}

// Unwrap returns the underlying cause.
func (e *BackgroundError) Unwrap() error { return e.Err }

// metaEngine is the extra contract both engines provide beyond
// engine.Engine: durable WAL position tracking.
type metaEngine interface {
	engine.Engine
	SetLogMeta(lastSeq kv.Seq, logNum uint64) error
	LogMeta() (kv.Seq, uint64)
}

// DB is a key-value store.  All methods are safe for concurrent use.
type DB struct {
	opt    Options
	dir    string
	fs     vfs.FS
	cache  *cache.Cache
	eng    metaEngine
	events *EventListener
	clock  Clock

	// reg names every DB-owned instrument; the hot paths hold direct
	// pointers below so no map lookup happens per operation.
	reg          *metrics.Registry
	io           *vfs.IOStats
	putHist      *histogram.Concurrent
	getHist      *histogram.Concurrent
	scanHist     *histogram.Concurrent
	stallCount   *metrics.Counter
	stallNanos   *metrics.Counter
	walRotations *metrics.Counter

	mu         sync.Mutex
	cond       *sync.Cond
	mem        *memtable.MemTable
	imm        *memtable.MemTable
	immWalNum  uint64
	immLastSeq kv.Seq
	seq        kv.Seq
	userBytes  int64
	walW       *wal.Writer
	walF       vfs.File
	walNum     uint64
	walRetired int64 // bytes in WAL files already rotated out
	snaps      map[kv.Seq]int
	closed     bool
	bgErr      error // last background failure (*BackgroundError), nil when healthy
	readonly   bool  // degraded: writes rejected until a retry succeeds
	bgFails    int   // consecutive background failures
	bgErrSince int64 // clock nanos when bgErr was first latched

	bgRetries   *metrics.Counter
	bgReadonly  *metrics.Counter
	bgHealNanos *metrics.Counter

	flushC   chan struct{}
	compactC chan struct{}
	quit     chan struct{}
	wg       sync.WaitGroup
}

// Open opens (creating as needed) a database in dir.  A nil opt uses
// defaults (IAM engine, OS filesystem).
func Open(dir string, opt *Options) (*DB, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	o = o.withDefaults()
	// Every DB measures device IO.  Reuse the caller's StatsFS counters
	// when one is supplied (the bench harness does) so traffic is not
	// double-counted; otherwise wrap the filesystem ourselves.
	var io *vfs.IOStats
	if sfs, ok := o.FS.(*vfs.StatsFS); ok {
		io = sfs.Stats()
	} else {
		io = &vfs.IOStats{}
		o.FS = vfs.NewStatsFS(o.FS, io)
	}
	db := &DB{
		opt: o, dir: dir, fs: o.FS,
		cache:  cache.New(o.CacheSize),
		events: o.EventListener.EnsureDefaults(),
		clock:  o.Clock,
		reg:    metrics.NewRegistry(),
		io:     io,
		mem:    memtable.New(),
		snaps:  make(map[kv.Seq]int),
		flushC: make(chan struct{}, 1), compactC: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	if db.clock == nil {
		db.clock = newWallClock()
	}
	db.putHist = db.reg.Histogram("latency.put")
	db.getHist = db.reg.Histogram("latency.get")
	db.scanHist = db.reg.Histogram("latency.scan")
	db.stallCount = db.reg.Counter("stall.count")
	db.stallNanos = db.reg.Counter("stall.nanos")
	db.walRotations = db.reg.Counter("wal.rotations")
	db.bgRetries = db.reg.Counter("bg.retries")
	db.bgReadonly = db.reg.Counter("bg.readonly")
	db.bgHealNanos = db.reg.Counter("bg.heal.nanos")
	db.cond = sync.NewCond(&db.mu)
	if err := db.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	if err := db.openEngine(); err != nil {
		return nil, err
	}
	if err := db.recover(); err != nil {
		db.eng.Close()
		return nil, err
	}
	db.wg.Add(1)
	go db.flushWorker()
	for i := 0; i < db.opt.CompactionThreads; i++ {
		db.wg.Add(1)
		go db.compactWorker()
	}
	return db, nil
}

func (db *DB) openEngine() error {
	switch db.opt.Engine {
	case IAM, LSA:
		policy := core.IAM
		if db.opt.Engine == LSA {
			policy = core.LSA
		}
		budget := db.opt.MemBudget
		if db.opt.Engine == LSA {
			budget = 0 // LSA ignores the budget (appends everywhere)
		}
		tr, err := core.Open(core.Config{
			FS: db.fs, Dir: db.dir, Cache: db.cache,
			NodeCapacity: db.opt.MemtableSize, Fanout: db.opt.Fanout,
			Policy: policy, K: db.opt.K, MemBudget: budget,
			FixedM: db.opt.FixedM, BitsPerKey: db.opt.BitsPerKey,
			Compression: db.opt.Compression,
			Events:      db.events, Clock: db.clock,
		})
		if err != nil {
			return err
		}
		db.eng = tr
	case LevelDB, RocksDB:
		profile := lsm.ProfileLevelDB
		if db.opt.Engine == RocksDB {
			profile = lsm.ProfileRocksDB
		}
		d, err := lsm.Open(lsm.Config{
			FS: db.fs, Dir: db.dir, Cache: db.cache,
			FileSize: db.opt.FileSize, LevelSizeBase: db.opt.LevelSizeBase,
			Fanout: db.opt.Fanout, L0CompactTrigger: db.opt.L0CompactTrigger,
			Profile: profile, BitsPerKey: db.opt.BitsPerKey,
			Compression: db.opt.Compression,
			Events:      db.events, Clock: db.clock,
		})
		if err != nil {
			return err
		}
		db.eng = d
	default:
		return fmt.Errorf("iamdb: unknown engine %v", db.opt.Engine)
	}
	return nil
}

func logName(dir string, num uint64) string {
	return fmt.Sprintf("%s/%06d.log", dir, num)
}

// recover replays WAL files at or after the engine's recorded log
// number, then starts a fresh log.
func (db *DB) recover() error {
	lastSeq, logNum := db.eng.LogMeta()
	db.seq = lastSeq

	names, err := db.fs.List(db.dir)
	if err != nil {
		return err
	}
	var logs []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".log") {
			n, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
			if err == nil {
				logs = append(logs, n)
			}
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	maxLog := logNum
	for _, num := range logs {
		if num < logNum {
			_ = db.fs.Remove(logName(db.dir, num)) // already flushed; best-effort cleanup
			continue
		}
		if num > maxLog {
			maxLog = num
		}
		if err := db.replayLog(num); err != nil {
			return err
		}
	}
	// Flush everything recovered so the replayed logs can be dropped.
	if db.mem.Count() > 0 {
		if err := db.eng.Flush(db.mem.NewIter()); err != nil {
			return err
		}
		db.mem = memtable.New()
	}
	db.walNum = maxLog + 1
	if err := db.eng.SetLogMeta(db.seq, db.walNum); err != nil {
		return err
	}
	for _, num := range logs {
		// Obsolete after the flush above; a leftover log is re-deleted on
		// the next recovery, so failure here is not fatal.
		_ = db.fs.Remove(logName(db.dir, num))
	}
	f, err := db.fs.Create(logName(db.dir, db.walNum))
	if err != nil {
		return err
	}
	db.walF = f
	db.walW = wal.NewWriter(f)
	db.walW.SetSync(db.opt.SyncWrites)
	return nil
}

func (db *DB) replayLog(num uint64) error {
	f, err := db.fs.Open(logName(db.dir, num))
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = wal.ReplayAll(f, func(rec []byte) error {
		last, err := decodeBatchInto(rec, db.mem)
		if err != nil {
			return err
		}
		if last > db.seq {
			db.seq = last
		}
		if db.mem.ApproximateSize() >= db.opt.MemtableSize {
			if err := db.eng.Flush(db.mem.NewIter()); err != nil {
				return err
			}
			db.mem = memtable.New()
		}
		return nil
	})
	return err
}

// Put stores a key/value pair.
func (db *DB) Put(key, value []byte) error {
	var b Batch
	b.Put(key, value)
	return db.Write(&b)
}

// Delete removes a key.
func (db *DB) Delete(key []byte) error {
	var b Batch
	b.Delete(key)
	return db.Write(&b)
}

// Write applies a batch atomically: one WAL record, consecutive
// sequence numbers, all-or-nothing visibility.
func (db *DB) Write(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	start := db.clock.Now()
	err := db.write(b)
	db.putHist.Record(db.clock.Now() - start)
	return err
}

// write is Write's body; the wrapper measures commit latency (stall
// time included — the tails Sec. 6.2 measures).
func (db *DB) write(b *Batch) error {
	db.throttle()

	db.mu.Lock()
	for !db.closed && !db.readonly && db.imm != nil &&
		db.mem.ApproximateSize() >= db.opt.MemtableSize {
		db.cond.Wait() // both memtables full: wait for the flusher
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.readonly {
		// Join keeps both the mode and the cause visible to errors.Is.
		err := errors.Join(ErrReadOnly, db.bgErr)
		db.mu.Unlock()
		return err
	}
	start := db.seq + 1
	db.seq += kv.Seq(len(b.ops))
	if err := db.walW.Append(b.encode(start)); err != nil {
		db.mu.Unlock()
		return err
	}
	seq := start
	for _, op := range b.ops {
		db.mem.Add(seq, op.kind, op.key, op.val)
		db.userBytes += int64(len(op.key) + len(op.val))
		seq++
	}
	if db.mem.ApproximateSize() >= db.opt.MemtableSize && db.imm == nil {
		if err := db.rotateLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	db.mu.Unlock()
	return nil
}

// throttle applies the engine's write-stall policy in the writer's own
// goroutine, so stall time shows up as write latency — the behaviour
// whose tails Sec. 6.2 measures.  Stalled intervals are measured and
// reported as paired WriteStallBegin/WriteStallEnd events plus the
// cumulative stall counters in Metrics; the unstalled fast path reads
// one atomic and returns.
func (db *DB) throttle() {
	lvl := db.eng.StallLevel()
	if lvl == 0 {
		return
	}
	start := db.clock.Now()
	db.events.WriteStallBegin(metrics.StallInfo{Level: lvl})
	db.stallWork(lvl)
	d := db.clock.Now() - start
	db.stallCount.Inc()
	db.stallNanos.Add(int64(d))
	db.events.WriteStallEnd(metrics.StallInfo{Level: lvl, Duration: d})
}

// stallWork runs compaction steps in the stalled writer's goroutine
// until the stall clears: a hard stall (2) works until no work is
// left, a slowdown (1) contributes one step.
func (db *DB) stallWork(lvl int) {
	for {
		switch lvl {
		case 2:
			if did, _ := db.eng.WorkStep(); !did {
				return
			}
		case 1:
			db.eng.WorkStep()
			return
		default:
			return
		}
		lvl = db.eng.StallLevel()
	}
}

// rotateLocked swaps the full memtable to the immutable slot and opens
// a fresh WAL.  Caller holds db.mu.
func (db *DB) rotateLocked() error {
	newNum := db.walNum + 1
	f, err := db.fs.Create(logName(db.dir, newNum))
	if err != nil {
		return err
	}
	// Close the old WAL before swapping state: a failed close may mean
	// lost appends, and the immutable memtable would depend on them for
	// recovery.  On failure, drop the new log and leave state untouched.
	if err := db.walF.Close(); err != nil {
		_ = f.Close()
		_ = db.fs.Remove(logName(db.dir, newNum))
		return err
	}
	oldNum, oldBytes := db.walNum, db.walW.Offset()
	db.walRetired += oldBytes
	db.walRotations.Inc()
	db.events.WALRotated(metrics.WALRotationInfo{OldNum: oldNum, NewNum: newNum, OldBytes: oldBytes})
	db.imm = db.mem
	db.immWalNum = db.walNum
	db.immLastSeq = db.seq
	db.mem = memtable.New()
	db.walF = f
	db.walW = wal.NewWriter(f)
	db.walW.SetSync(db.opt.SyncWrites)
	db.walNum = newNum
	select {
	case db.flushC <- struct{}{}:
	default:
	}
	return nil
}

// noteBgError records one failed background attempt: it latches the
// error, counts the retry, degrades to read-only after BgRetryLimit
// consecutive failures, asks the engine to Resume (rewrite its
// manifest so half-applied edits are superseded before the retry), and
// applies the backoff policy.  It reports whether the worker should
// retry; false means the DB is closing or the backoff abandoned the
// loop (the worker goes back to waiting for a kick).
func (db *DB) noteBgError(op string, err error) bool {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return false
	}
	if db.bgErr == nil {
		db.bgErrSince = int64(db.clock.Now())
	}
	db.bgErr = &BackgroundError{Op: op, Err: err}
	db.bgFails++
	try := db.bgFails
	db.bgRetries.Inc()
	enteredRO := false
	if !db.readonly && try > db.opt.BgRetryLimit {
		db.readonly = true
		enteredRO = true
		db.bgReadonly.Inc()
	}
	cause := db.bgErr
	db.cond.Broadcast()
	db.mu.Unlock()
	db.events.BackgroundError(metrics.BackgroundErrorInfo{Op: op, Err: err, Retries: try})
	if enteredRO {
		db.events.ReadOnlyEnter(metrics.ReadOnlyInfo{Cause: cause})
	}
	if r, ok := db.eng.(engine.Resumer); ok {
		// Best-effort: a failed Resume is retried with the work itself.
		_ = r.Resume()
	}
	if db.opt.BgBackoff != nil {
		return db.opt.BgBackoff(try)
	}
	d := time.Millisecond << uint(min(try, 7))
	select {
	case <-db.quit:
		return false
	case <-time.After(d):
		return true
	}
}

// noteBgSuccess clears background-error state after a successful
// attempt, leaving read-only mode and recording the heal duration.
func (db *DB) noteBgSuccess() {
	db.mu.Lock()
	if db.bgErr == nil && !db.readonly {
		db.mu.Unlock()
		return
	}
	cause := db.bgErr
	wasRO := db.readonly
	heal := int64(db.clock.Now()) - db.bgErrSince
	db.bgErr, db.readonly, db.bgFails = nil, false, 0
	db.bgHealNanos.Add(heal)
	db.cond.Broadcast()
	db.mu.Unlock()
	if wasRO {
		db.events.ReadOnlyExit(metrics.ReadOnlyInfo{Cause: cause, Duration: time.Duration(heal)})
	}
}

func (db *DB) flushWorker() {
	defer db.wg.Done()
	for {
		select {
		case <-db.quit:
			return
		case <-db.flushC:
		}
		db.drainImm()
	}
}

// drainImm flushes the immutable memtable, retrying failures until it
// succeeds, the backoff abandons, or the DB closes.  The worker never
// exits on error: a healed DB resumes without reopening.
func (db *DB) drainImm() {
	flushed := false // the Flush itself succeeded; only SetLogMeta remains
	for {
		db.mu.Lock()
		imm := db.imm
		immWal := db.immWalNum
		immSeq := db.immLastSeq
		curWal := db.walNum
		db.mu.Unlock()
		if imm == nil {
			return
		}
		var err error
		if !flushed {
			err = db.eng.Flush(imm.NewIter())
		}
		if err == nil {
			flushed = true
			err = db.eng.SetLogMeta(immSeq, curWal)
		}
		if err != nil {
			if !db.noteBgError("flush", err) {
				return
			}
			continue
		}
		db.noteBgSuccess()
		flushed = false
		db.mu.Lock()
		db.imm = nil
		db.cond.Broadcast()
		db.mu.Unlock()
		// The flushed log is re-deleted on next recovery if this
		// best-effort removal fails.
		_ = db.fs.Remove(logName(db.dir, immWal))
		select {
		case db.compactC <- struct{}{}:
		default:
		}
	}
}

func (db *DB) compactWorker() {
	defer db.wg.Done()
	for {
		did, err := db.eng.WorkStep()
		if err != nil {
			if !db.noteBgError("compact", err) {
				select {
				case <-db.quit:
					return
				case <-db.compactC:
				}
			}
			continue
		}
		if did {
			db.noteBgSuccess()
			continue
		}
		select {
		case <-db.quit:
			return
		case <-db.compactC:
		}
	}
}

// Resume clears background-error state once the operator believes the
// underlying fault is gone: the engine rewrites its manifest, the DB
// leaves read-only mode, and the background workers are kicked.  The
// DB also heals itself when a background retry succeeds; Resume just
// forces the attempt now.
func (db *DB) Resume() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()
	if r, ok := db.eng.(engine.Resumer); ok {
		if err := r.Resume(); err != nil {
			return err
		}
	}
	db.noteBgSuccess()
	select {
	case db.flushC <- struct{}{}:
	default:
	}
	select {
	case db.compactC <- struct{}{}:
	default:
	}
	return nil
}

// CheckInvariants asks the engine to validate its structural
// invariants (crash-recovery tests use it as an oracle); engines
// without a checker report nil.
func (db *DB) CheckInvariants() error {
	if c, ok := db.eng.(engine.Checker); ok {
		return c.CheckInvariants()
	}
	return nil
}

// Get returns the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	start := db.clock.Now()
	v, err := db.get(key)
	db.getHist.Record(db.clock.Now() - start)
	return v, err
}

func (db *DB) get(key []byte) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	snap := db.seq
	mem, imm := db.mem, db.imm
	db.mu.Unlock()
	return db.getAt(key, snap, mem, imm)
}

func (db *DB) getAt(key []byte, snap kv.Seq, mem, imm *memtable.MemTable) ([]byte, error) {
	if v, kind, _, found := mem.Get(key, snap); found {
		return finishGet(v, kind)
	}
	if imm != nil {
		if v, kind, _, found := imm.Get(key, snap); found {
			return finishGet(v, kind)
		}
	}
	v, kind, _, found, err := db.eng.Get(key, snap)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, ErrNotFound
	}
	return finishGet(v, kind)
}

func finishGet(v []byte, kind kv.Kind) ([]byte, error) {
	if kind == kv.KindDelete {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Close flushes nothing (recovery replays the WAL), stops background
// work and releases resources.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	close(db.quit)
	db.wg.Wait()
	return errors.Join(db.walF.Close(), db.eng.Close())
}

// CompactAll flushes both memtables and settles every pending
// compaction — the paper's "tuning phase" run to completion.  Used by
// experiments before measuring stable performance.
func (db *DB) CompactAll() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	// Wait out any in-flight background flush.
	for db.imm != nil && !db.closed && !db.readonly {
		db.cond.Wait()
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.readonly {
		err := errors.Join(ErrReadOnly, db.bgErr)
		db.mu.Unlock()
		return err
	}
	mem := db.mem
	db.mem = memtable.New()
	db.mu.Unlock()
	if mem.Count() > 0 {
		if err := db.eng.Flush(mem.NewIter()); err != nil {
			return err
		}
	}
	if d, ok := db.eng.(*lsm.DB); ok {
		return d.DrainCompactions()
	}
	return nil
}

// MixedLevel reports IAM's current (m, k) tuning; zero for baselines.
func (db *DB) MixedLevel() (m, k int) {
	if tr, ok := db.eng.(*core.Tree); ok {
		return tr.MixedLevel()
	}
	return 0, 0
}

// Flush forces the current memtable into the tree, waiting for the
// flush to finish.  Reads are unaffected; use it before measuring
// on-disk state or creating external copies.
func (db *DB) Flush() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	for db.imm != nil && !db.closed && !db.readonly {
		db.cond.Wait()
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.readonly {
		err := errors.Join(ErrReadOnly, db.bgErr)
		db.mu.Unlock()
		return err
	}
	mem := db.mem
	db.mem = memtable.New()
	db.mu.Unlock()
	if mem.Count() == 0 {
		return nil
	}
	return db.eng.Flush(mem.NewIter())
}

// ApproximateSize estimates the on-disk bytes of data stored in the
// user-key range [start, limit], excluding memtable contents.  The
// estimate counts whole nodes inside the range and half of each node
// straddling a boundary.
func (db *DB) ApproximateSize(start, limit []byte) int64 {
	if rs, ok := db.eng.(engine.RangeSizer); ok {
		return rs.ApproximateSize(start, limit)
	}
	return 0
}
