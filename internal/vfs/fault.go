package vfs

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultFS raises when a scheduled fault fires.
var ErrInjected = errors.New("vfs: injected fault")

// FaultFS wraps an FS and fails operations on demand, for exercising
// the engines' error paths: write failures during compaction, torn
// syncs, failed opens.  Faults are armed by operation kind with a
// countdown — "fail the 3rd write from now" — and fire once unless
// sticky.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	arm    map[FaultOp]*fault
	sticky bool
}

// FaultOp selects which operation class a fault applies to.
type FaultOp int

// Operation classes that can fail.
const (
	FaultWrite FaultOp = iota
	FaultRead
	FaultSync
	FaultCreate
	FaultRemove
)

type fault struct {
	after int // fire when counter reaches zero
	hits  int
}

// NewFaultFS wraps fs with no faults armed.
func NewFaultFS(fs FS) *FaultFS {
	return &FaultFS{inner: fs, arm: make(map[FaultOp]*fault)}
}

// FailAfter arms op to fail after n more operations (n=0 fails the
// next one).  Re-arming replaces the previous schedule.
func (f *FaultFS) FailAfter(op FaultOp, n int) {
	f.mu.Lock()
	f.arm[op] = &fault{after: n}
	f.mu.Unlock()
}

// SetSticky makes fired faults keep failing instead of disarming.
func (f *FaultFS) SetSticky(on bool) {
	f.mu.Lock()
	f.sticky = on
	f.mu.Unlock()
}

// Clear disarms all faults.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.arm = make(map[FaultOp]*fault)
	f.mu.Unlock()
}

// Hits reports how many times op's fault has fired.
func (f *FaultFS) Hits(op FaultOp) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fa := f.arm[op]; fa != nil {
		return fa.hits
	}
	return 0
}

// check decides whether the next operation of class op fails.
func (f *FaultFS) check(op FaultOp) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fa := f.arm[op]
	if fa == nil {
		return nil
	}
	if fa.after > 0 {
		fa.after--
		return nil
	}
	fa.hits++
	if !f.sticky {
		delete(f.arm, op)
	}
	return ErrInjected
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.check(FaultCreate); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.check(FaultRemove); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(o, n string) error { return f.inner.Rename(o, n) }

// List implements FS.
func (f *FaultFS) List(dir string) ([]string, error) { return f.inner.List(dir) }

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// Exists implements FS.
func (f *FaultFS) Exists(name string) bool { return f.inner.Exists(name) }

type faultFile struct {
	inner File
	fs    *FaultFS
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.check(FaultRead); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.fs.check(FaultWrite); err != nil {
		return 0, err
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check(FaultWrite); err != nil {
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check(FaultSync); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error           { return f.inner.Close() }
func (f *faultFile) Size() (int64, error)   { return f.inner.Size() }
func (f *faultFile) Truncate(n int64) error { return f.inner.Truncate(n) }
