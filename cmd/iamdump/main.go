// Command iamdump inspects MSTable files and database directories:
// the physical layout (data region, hole, metadata region), the
// sequences with their bounds and sizes, and optionally every record.
// It also runs the deep tree verifier over a whole database.
//
// Usage:
//
//	iamdump file <path.mst>            # one table's layout + sequences
//	iamdump file -records <path.mst>   # ... plus every record
//	iamdump file -verify <path.mst>    # ... plus re-read every block,
//	                                   # checking every stored CRC
//	iamdump db <dir>                   # manifest + level summary
//	iamdump verify <dir>               # deep structural verification
//	iamdump vlog <path.vlg>            # one value-log segment's records
//	iamdump vlog -verify <path.vlg>    # ... re-checking every record CRC
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"iamdb/internal/core"
	"iamdb/internal/corrupt"
	"iamdb/internal/kv"
	"iamdb/internal/manifest"
	"iamdb/internal/table"
	"iamdb/internal/vfs"
	"iamdb/internal/vlog"
)

func main() {
	records := flag.Bool("records", false, "dump every record")
	verify := flag.Bool("verify", false, "re-read every block of the file and check every stored CRC")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: iamdump [-records] [-verify] file|db|verify|vlog <path>")
		os.Exit(2)
	}
	switch args[0] {
	case "file":
		// Accept the flags after the mode word too (flag.Parse stops at
		// the first positional argument).
		ff := flag.NewFlagSet("file", flag.ExitOnError)
		rec := ff.Bool("records", *records, "dump every record")
		ver := ff.Bool("verify", *verify, "re-read every block of the file and check every stored CRC")
		_ = ff.Parse(args[1:])
		if ff.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: iamdump file [-records] [-verify] <path.mst>")
			os.Exit(2)
		}
		dumpFile(ff.Arg(0), *rec, *ver)
	case "db":
		dumpDB(args[1])
	case "verify":
		verifyDB(args[1])
	case "vlog":
		vf := flag.NewFlagSet("vlog", flag.ExitOnError)
		rec := vf.Bool("records", *records, "dump every record")
		ver := vf.Bool("verify", *verify, "re-read every record and check every stored CRC")
		_ = vf.Parse(args[1:])
		if vf.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: iamdump vlog [-records] [-verify] <path.vlg>")
			os.Exit(2)
		}
		dumpVlog(vf.Arg(0), *rec, *ver)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", args[0])
		os.Exit(2)
	}
}

func dumpFile(path string, withRecords, verify bool) {
	fs := vfs.NewOSFS()
	tbl, err := table.Open(fs, path, 0, table.Options{})
	if err != nil {
		fatalf("open: %v", err)
	}
	defer tbl.Close()

	fmt.Printf("MSTable %s\n", path)
	fmt.Printf("  capacity:   %d bytes\n", tbl.Capacity())
	fmt.Printf("  data:       %d bytes (front region)\n", tbl.DataSize())
	fmt.Printf("  metadata:   %d bytes (tail region)\n", tbl.MetaSize())
	hole := tbl.Capacity() - tbl.UsedBytes()
	fmt.Printf("  hole:       %d bytes (%.1f%% free for appends)\n",
		hole, 100*float64(hole)/float64(tbl.Capacity()))
	fmt.Printf("  sequences:  %d, records: %d\n", tbl.NumSeqs(), tbl.Entries())
	if r := tbl.UserRange(); !r.Empty() {
		fmt.Printf("  user range: %q .. %q\n", r.Lo, r.Hi)
	}
	for i := 0; i < tbl.NumSeqs(); i++ {
		m := tbl.SeqMetaAt(i)
		su, ss, _, _ := kv.ParseInternalKey(m.Smallest)
		lu, ls, _, _ := kv.ParseInternalKey(m.Largest)
		fmt.Printf("  seq %d: %d records, %d bytes @%d, keys %q@%d .. %q@%d, bloom %dB, index %dB\n",
			i, m.Entries, m.DataLen, m.DataOff, su, ss, lu, ls, len(m.Bloom), len(m.RawIndex))
	}
	if withRecords {
		it := tbl.NewIter()
		defer it.Close()
		for it.First(); it.Valid(); it.Next() {
			fmt.Printf("    %s = %q\n", kv.InternalKeyString(it.Key()), it.Value())
		}
		if err := it.Err(); err != nil {
			fatalf("iterate: %v", err)
		}
	}
	if verify {
		st, err := tbl.Verify(nil)
		if err != nil {
			var ce *corrupt.Error
			if errors.As(err, &ce) {
				if ce.Offset >= 0 {
					fmt.Printf("  verify:     FAILED at offset %d (%s layer)", ce.Offset, ce.Layer)
				} else {
					fmt.Printf("  verify:     FAILED (%s layer)", ce.Layer)
				}
				if ce.Got != 0 || ce.Want != 0 {
					fmt.Printf(": crc stored %08x, computed %08x", ce.Got, ce.Want)
				}
				if ce.Detail != "" {
					fmt.Printf(": %s", ce.Detail)
				}
				fmt.Println()
				os.Exit(1)
			}
			fatalf("verify: %v", err)
		}
		fmt.Printf("  verify:     OK — %d seqs, %d blocks, %d bytes, %d entries, every CRC checked\n",
			st.Seqs, st.Blocks, st.Bytes, st.Entries)
	}
}

// dumpVlog walks one value-log segment.  The scan decodes (and so
// CRC-checks) every record either way; -verify turns damage into the
// same typed FAILED line the table verifier prints, with exit 1.
func dumpVlog(path string, withRecords, verify bool) {
	fmt.Printf("value-log segment %s\n", path)
	var records int
	var keyBytes, valBytes int64
	scanned, err := vlog.ScanFile(vfs.NewOSFS(), path, func(key, val []byte, off int64, n int) error {
		records++
		keyBytes += int64(len(key))
		valBytes += int64(len(val))
		if withRecords {
			fmt.Printf("    @%-10d %q = %d bytes\n", off, key, len(val))
		}
		return nil
	})
	if err != nil {
		var ce *corrupt.Error
		if verify && errors.As(err, &ce) {
			fmt.Printf("  verify:     FAILED at offset %d (%s layer)", ce.Offset, ce.Layer)
			if ce.Detail != "" {
				fmt.Printf(": %s", ce.Detail)
			}
			fmt.Println()
			os.Exit(1)
		}
		fatalf("scan: %v", err)
	}
	fmt.Printf("  records:    %d (%d key bytes, %d value bytes)\n", records, keyBytes, valBytes)
	fmt.Printf("  scanned:    %d bytes\n", scanned)
	if verify {
		fmt.Printf("  verify:     OK — %d records, %d bytes, every CRC checked\n", records, scanned)
	}
}

func dumpDB(dir string) {
	st, err := manifest.Replay(vfs.NewOSFS(), dir+"/MANIFEST")
	if err != nil {
		fatalf("manifest: %v", err)
	}
	fmt.Printf("database %s\n", dir)
	fmt.Printf("  next file:  %d\n", st.NextFile)
	fmt.Printf("  last seq:   %d\n", st.LastSeq)
	fmt.Printf("  log number: %d\n", st.LogNum)
	fmt.Printf("  levels:     %d\n", st.NumLevels)
	for lvl := 0; lvl < len(st.Levels); lvl++ {
		if len(st.Levels[lvl]) == 0 {
			continue
		}
		fmt.Printf("  L%d: %d nodes\n", lvl, len(st.Levels[lvl]))
		for _, n := range st.Levels[lvl] {
			fmt.Printf("    file %06d  range %q .. %q\n", n.FileNum, n.Lo, n.Hi)
		}
	}
}

func verifyDB(dir string) {
	tr, err := core.Open(core.Config{FS: vfs.NewOSFS(), Dir: dir})
	if err != nil {
		fatalf("open tree: %v", err)
	}
	defer tr.Close()
	rep, err := tr.DeepVerify()
	if err != nil {
		fatalf("FAILED: %v\n(partial: %v)", err, rep)
	}
	fmt.Printf("OK: %v\n", rep)
}

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", a...)
	os.Exit(1)
}
