// Package iterator defines the forward iterator contract shared by
// memtables, table sequences and trees, plus a k-way merging iterator.
// Scans in LSA/IAM must merge every sequence of a node in every level
// (Sec. 5.2); the merging iterator is that primitive.
package iterator

import "container/heap"

// Iterator walks key/value pairs in ascending internal-key order.
// Implementations are single-goroutine.  Key and Value remain valid only
// until the next positioning call.
type Iterator interface {
	// First positions at the smallest key.
	First()
	// Seek positions at the first key >= target.
	Seek(target []byte)
	// Next advances by one entry.
	Next()
	// Valid reports whether the iterator is positioned at an entry.
	Valid() bool
	// Key returns the current internal key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Err reports the first error encountered, if any.
	Err() error
	// Close releases resources.
	Close() error
}

// Compare orders internal keys.
type Compare func(a, b []byte) int

// Empty is an iterator over nothing.
type Empty struct{}

// First implements Iterator.
func (Empty) First() {}

// Seek implements Iterator.
func (Empty) Seek([]byte) {}

// Next implements Iterator.
func (Empty) Next() {}

// Valid implements Iterator.
func (Empty) Valid() bool { return false }

// Key implements Iterator.
func (Empty) Key() []byte { return nil }

// Value implements Iterator.
func (Empty) Value() []byte { return nil }

// Err implements Iterator.
func (Empty) Err() error { return nil }

// Close implements Iterator.
func (Empty) Close() error { return nil }

// Merging merges n child iterators into one ascending stream.  When two
// children are positioned at equal keys the one added earlier wins ties;
// callers therefore order children newest-first when duplicate internal
// keys are possible (they are not, in IamDB: sequence numbers are
// unique), so tie order is effectively irrelevant here.
type Merging struct {
	cmp  Compare
	kids []Iterator
	h    mergeHeap
	cur  Iterator
	err  error
	dir  dir
}

// NewMerging builds a merging iterator.  It takes ownership of kids and
// closes them on Close.
func NewMerging(cmp Compare, kids ...Iterator) *Merging {
	m := &Merging{cmp: cmp, kids: kids}
	m.h.cmp = cmp
	return m
}

type heapItem struct {
	it  Iterator
	ord int
}

type mergeHeap struct {
	cmp      Compare
	items    []heapItem
	backward bool
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	c := h.cmp(h.items[i].it.Key(), h.items[j].it.Key())
	if c != 0 {
		if h.backward {
			return c > 0 // max-heap when iterating backward
		}
		return c < 0
	}
	return h.items[i].ord < h.items[j].ord
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(heapItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

func (m *Merging) rebuild() {
	m.h.backward = m.dir == dirBackward
	m.h.items = m.h.items[:0]
	for i, it := range m.kids {
		if it.Valid() {
			m.h.items = append(m.h.items, heapItem{it, i})
		} else if err := it.Err(); err != nil && m.err == nil {
			m.err = err
		}
	}
	heap.Init(&m.h)
	m.setCur()
}

func (m *Merging) setCur() {
	if len(m.h.items) == 0 {
		m.cur = nil
		return
	}
	m.cur = m.h.items[0].it
}

// First implements Iterator.
func (m *Merging) First() {
	for _, it := range m.kids {
		it.First()
	}
	m.dir = dirForward
	m.rebuild()
}

// Seek implements Iterator.
func (m *Merging) Seek(target []byte) {
	for _, it := range m.kids {
		it.Seek(target)
	}
	m.dir = dirForward
	m.rebuild()
}

// Next implements Iterator.
func (m *Merging) Next() {
	if m.cur == nil {
		return
	}
	if m.dir == dirBackward {
		// Direction switch: move every child to the first key
		// strictly above the current one, then re-heap forward.
		curKey := append([]byte(nil), m.cur.Key()...)
		for _, it := range m.kids {
			it.Seek(curKey)
			if it.Valid() && m.cmp(it.Key(), curKey) == 0 {
				it.Next()
			}
		}
		m.dir = dirForward
		m.rebuild()
		return
	}
	m.cur.Next()
	if m.cur.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		if err := m.cur.Err(); err != nil && m.err == nil {
			m.err = err
		}
		heap.Pop(&m.h)
	}
	m.setCur()
}

// Valid implements Iterator.
func (m *Merging) Valid() bool { return m.cur != nil && m.err == nil }

// Key implements Iterator.
func (m *Merging) Key() []byte {
	if m.cur == nil {
		return nil
	}
	return m.cur.Key()
}

// Value implements Iterator.
func (m *Merging) Value() []byte {
	if m.cur == nil {
		return nil
	}
	return m.cur.Value()
}

// Err implements Iterator.
func (m *Merging) Err() error { return m.err }

// Close implements Iterator.
func (m *Merging) Close() error {
	var first error
	for _, it := range m.kids {
		if err := it.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Slice iterates over parallel key/value slices already in ascending
// order; it is used by tests and by engines that stage records in
// memory during flush partitioning.
type Slice struct {
	Keys, Vals [][]byte
	cmp        Compare
	i          int
}

// NewSlice builds a slice iterator; keys must be ascending under cmp.
func NewSlice(cmp Compare, keys, vals [][]byte) *Slice {
	return &Slice{Keys: keys, Vals: vals, cmp: cmp, i: -1}
}

// First implements Iterator.
func (s *Slice) First() { s.i = 0 }

// Seek implements Iterator.
func (s *Slice) Seek(target []byte) {
	lo, hi := 0, len(s.Keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cmp(s.Keys[mid], target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.i = lo
}

// Next implements Iterator.
func (s *Slice) Next() { s.i++ }

// Valid implements Iterator.
func (s *Slice) Valid() bool { return s.i >= 0 && s.i < len(s.Keys) }

// Key implements Iterator.
func (s *Slice) Key() []byte { return s.Keys[s.i] }

// Value implements Iterator.
func (s *Slice) Value() []byte { return s.Vals[s.i] }

// Err implements Iterator.
func (s *Slice) Err() error { return nil }

// Close implements Iterator.
func (s *Slice) Close() error { return nil }
