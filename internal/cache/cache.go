// Package cache implements the sharded LRU block cache that stands in
// for the OS page cache in the paper's design.  IAM's mixed-level tuning
// (Sec. 5.1.3) needs to know how much of each table is memory-resident —
// the paper samples mincore; here residency is exact, tracked per table,
// so Eq. (2) can be evaluated deterministically.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

const numShards = 16

// Key identifies a cached block: the owning table's id and the block's
// file offset.
type Key struct {
	Table uint64
	Off   uint64
}

// Cache is a fixed-capacity LRU over data blocks, safe for concurrent
// use.  Capacity is in bytes of cached block payload.
type Cache struct {
	shards [numShards]shard

	hits   atomic.Int64
	misses atomic.Int64

	// resident maps table id -> *atomic.Int64 of cached bytes.  The
	// sync.Map plus per-table counters keep the hot Set/evict paths off
	// any single lock: once a table's counter exists, adjustments are
	// one atomic add, and the 16 shards never rendezvous.
	resident sync.Map
}

type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	items    map[Key]*list.Element
}

type entry struct {
	key  Key
	data []byte
}

// New creates a cache holding at most capacity bytes.  A capacity <= 0
// yields a cache that stores nothing (every Get misses), modelling a
// machine with no spare RAM.
func New(capacity int64) *Cache {
	c := &Cache{}
	per := capacity / numShards
	for i := range c.shards {
		c.shards[i] = shard{capacity: per, ll: list.New(), items: make(map[Key]*list.Element)}
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	h := k.Table*0x9e3779b97f4a7c15 ^ k.Off*0xbf58476d1ce4e5b9
	return &c.shards[h%numShards]
}

// Get returns the cached block or nil on miss.  The returned slice must
// be treated as read-only.
func (c *Cache) Get(table, off uint64) []byte {
	k := Key{table, off}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry).data
	}
	c.misses.Add(1)
	return nil
}

// Set inserts a block, evicting LRU entries as needed.  Blocks larger
// than a shard's whole capacity are not cached.
func (c *Cache) Set(table, off uint64, data []byte) {
	k := Key{table, off}
	s := c.shardFor(k)
	if int64(len(data)) > s.capacity {
		return
	}
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		old := el.Value.(*entry)
		s.used += int64(len(data)) - int64(len(old.data))
		c.addResident(table, int64(len(data))-int64(len(old.data)))
		old.data = data
		s.ll.MoveToFront(el)
	} else {
		s.items[k] = s.ll.PushFront(&entry{key: k, data: data})
		s.used += int64(len(data))
		c.addResident(table, int64(len(data)))
	}
	for s.used > s.capacity {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.used -= int64(len(e.data))
		c.addResident(e.key.Table, -int64(len(e.data)))
	}
	s.mu.Unlock()
}

// addResident adjusts per-table residency with one atomic add (after
// a lock-free map hit on the steady state).  Counters are removed only
// by EvictTable, so a table whose blocks cycle through the cache keeps
// its counter — an empty counter is a few words, and table ids are not
// reused within a run.
func (c *Cache) addResident(table uint64, delta int64) {
	v, ok := c.resident.Load(table)
	if !ok {
		v, _ = c.resident.LoadOrStore(table, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(delta)
}

// EvictTable removes every block of a table, e.g. after the table file
// is deleted by a compaction.
func (c *Cache) EvictTable(table uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if e.key.Table == table {
				s.ll.Remove(el)
				delete(s.items, e.key)
				s.used -= int64(len(e.data))
			}
			el = next
		}
		s.mu.Unlock()
	}
	c.resident.Delete(table)
}

// Used reports total cached bytes.
func (c *Cache) Used() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}

// ResidentBytes reports how many bytes of the given table are cached.
// This is the deterministic analogue of the paper's mincore sampling.
func (c *Cache) ResidentBytes(table uint64) int64 {
	if v, ok := c.resident.Load(table); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// HitRate reports the fraction of Gets served from cache, and the raw
// hit/miss counts.
func (c *Cache) HitRate() (rate float64, hits, misses int64) {
	hits, misses = c.hits.Load(), c.misses.Load()
	if hits+misses == 0 {
		return 0, 0, 0
	}
	return float64(hits) / float64(hits+misses), hits, misses
}

// Capacity reports the configured capacity in bytes.
func (c *Cache) Capacity() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].capacity
	}
	return n
}
