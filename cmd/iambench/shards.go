package main

// The shards experiment measures what the range-sharded front-end buys
// under real write contention: N goroutines issue synchronous Puts
// against a DB with S independent shards, and throughput is wall-clock
// ops/sec.  Like the concurrency experiment it lives in cmd/iambench
// because it reads the wall clock.
//
// The filesystem models the two costs sharding attacks: a fixed
// per-sync device latency (what group commit amortizes within one
// pipeline) and a write-bandwidth term proportional to the bytes each
// sync makes durable (what a single pipeline serializes and S pipelines
// overlap).  With 4 KiB values the bandwidth term dominates, so a
// single commit pipeline bottlenecks on serialized sync time no matter
// how large its groups get — multiple shards drain it in parallel.
//
// A skewed variant sends 90% of the keys to shard 0's range, showing
// the flip side: range sharding only scales when load spreads across
// the ranges.

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"iamdb"
	"iamdb/internal/harness"
	"iamdb/internal/vfs"
)

const (
	// shardSyncBase is the modeled per-sync device latency.
	shardSyncBase = 40 * time.Microsecond
	// shardSyncBW is the modeled device write bandwidth charged per
	// synced byte.
	shardSyncBW = 100 << 20 // 100 MB/s
	// shardValueSize is large enough that bandwidth, not sync count,
	// dominates — the regime where independent pipelines pay off.
	shardValueSize = 4096
	// shardWriters is the contention level of the headline comparison.
	shardWriters = 16
)

// bwLatFS wraps an FS so every Sync sleeps base latency plus the
// modeled transfer time of the bytes written since the previous Sync on
// that file.
type bwLatFS struct {
	vfs.FS
}

func (fs bwLatFS) Create(name string) (vfs.File, error) {
	f, err := fs.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &bwLatFile{File: f}, nil
}

func (fs bwLatFS) Open(name string) (vfs.File, error) {
	f, err := fs.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &bwLatFile{File: f}, nil
}

type bwLatFile struct {
	vfs.File
	mu      sync.Mutex
	pending int64 // bytes written since the last Sync
}

func (f *bwLatFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	f.mu.Lock()
	f.pending += int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *bwLatFile) Sync() error {
	f.mu.Lock()
	n := f.pending
	f.pending = 0
	f.mu.Unlock()
	time.Sleep(shardSyncBase + time.Duration(float64(n)/shardSyncBW*float64(time.Second)))
	return f.File.Sync()
}

// shardKeyByte picks op i of writer w's routing byte: spread uniformly
// over the key space, or 90% concentrated in shard 0's quarter of it.
func shardKeyByte(w, i int, skewed bool) byte {
	h := (i*131 + w*53) % 256
	if skewed && (i*7+w)%10 != 0 {
		return byte(h % 64) // shard 0 of 4 under default splits
	}
	return byte(h)
}

// runShards produces the sharding table: ops/sec and speedup over one
// shard at a fixed writer count, then the skewed-key rows.
func runShards(s harness.Scale) (harness.Table, error) {
	ops := 4000
	if s.Name == "small" {
		ops = 800
	}
	tbl := harness.Table{
		Title: fmt.Sprintf(
			"Sharded commit throughput: %d writers, %d sync Puts of %d B on MemFS (sync %v + %d MB/s)",
			shardWriters, ops, shardValueSize, shardSyncBase, shardSyncBW>>20),
		Header: []string{"keys", "shards", "ops/sec", "speedup"},
	}
	var base float64
	for _, sh := range []int{1, 2, 4, 8} {
		opsPerSec, err := shardsRun(shardWriters, sh, ops, false)
		if err != nil {
			return harness.Table{}, err
		}
		if base == 0 {
			base = opsPerSec
		}
		tbl.Rows = append(tbl.Rows, []string{
			"uniform",
			fmt.Sprintf("%d", sh),
			fmt.Sprintf("%.0f", opsPerSec),
			fmt.Sprintf("%.2fx", opsPerSec/base),
		})
	}
	for _, sh := range []int{1, 4} {
		opsPerSec, err := shardsRun(shardWriters, sh, ops, true)
		if err != nil {
			return harness.Table{}, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			"skewed",
			fmt.Sprintf("%d", sh),
			fmt.Sprintf("%.0f", opsPerSec),
			fmt.Sprintf("%.2fx", opsPerSec/base),
		})
	}
	return tbl, nil
}

// shardsRun times writers concurrent goroutines splitting totalOps
// synchronous Puts over a fresh DB with the given shard count.
func shardsRun(writers, shards, totalOps int, skewed bool) (opsPerSec float64, err error) {
	fs := bwLatFS{FS: vfs.NewMemFS()}
	o := &iamdb.Options{Engine: iamdb.IAM, FS: fs, SyncWrites: true}
	if shards > 1 {
		o.Shards = shards
	}
	db, err := iamdb.Open("db", o)
	if err != nil {
		return 0, err
	}
	val := bytes.Repeat([]byte("v"), shardValueSize)
	perW := totalOps / writers
	errs := make([]error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := make([]byte, 0, 32)
			for i := 0; i < perW; i++ {
				key = append(key[:0], shardKeyByte(w, i, skewed))
				key = fmt.Appendf(key, "w%03d-%09d", w, i)
				if err := db.Put(key, val); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, e := range errs {
		if e != nil {
			_ = db.Close()
			return 0, e
		}
	}
	m := db.Metrics()
	dist := "uniform"
	if skewed {
		dist = "skewed"
	}
	harness.Report(harness.MetricsRecord{
		Engine:  fmt.Sprintf("IAM-%dshards-%s", shards, dist),
		Disk:    fmt.Sprintf("mem+sync%v+%dMBps", shardSyncBase, shardSyncBW>>20),
		Metrics: m,
	})
	if err := db.Close(); err != nil {
		return 0, err
	}
	return float64(perW*writers) / elapsed.Seconds(), nil
}
