package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildBlock(pairs [][2]string) []byte {
	b := NewBuilder()
	for _, p := range pairs {
		b.Add([]byte(p[0]), []byte(p[1]))
	}
	return b.Finish()
}

func TestBuildIterate(t *testing.T) {
	pairs := [][2]string{}
	for i := 0; i < 100; i++ {
		pairs = append(pairs, [2]string{fmt.Sprintf("key%04d", i), fmt.Sprintf("val%d", i)})
	}
	r, err := NewReader(buildBlock(pairs), bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iter()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Key()) != pairs[i][0] || string(it.Value()) != pairs[i][1] {
			t.Fatalf("entry %d: %q=%q", i, it.Key(), it.Value())
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != len(pairs) {
		t.Fatalf("iterated %d entries want %d", i, len(pairs))
	}
}

func TestSeek(t *testing.T) {
	var pairs [][2]string
	for i := 0; i < 200; i += 2 { // even keys only
		pairs = append(pairs, [2]string{fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i)})
	}
	r, err := NewReader(buildBlock(pairs), bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iter()

	// Exact hit.
	it.Seek([]byte("k0100"))
	if !it.Valid() || string(it.Key()) != "k0100" {
		t.Fatalf("seek exact: %q valid=%v", it.Key(), it.Valid())
	}
	// Between keys: lands on next even.
	it.Seek([]byte("k0101"))
	if !it.Valid() || string(it.Key()) != "k0102" {
		t.Fatalf("seek between: %q", it.Key())
	}
	// Before all.
	it.Seek([]byte("a"))
	if !it.Valid() || string(it.Key()) != "k0000" {
		t.Fatalf("seek before-all: %q", it.Key())
	}
	// After all.
	it.Seek([]byte("z"))
	if it.Valid() {
		t.Fatalf("seek past-end should invalidate, got %q", it.Key())
	}
	// Iterate after a seek.
	it.Seek([]byte("k0196"))
	var got []string
	for ; it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 2 || got[0] != "k0196" || got[1] != "k0198" {
		t.Fatalf("tail after seek: %v", got)
	}
}

func TestSeekEveryKey(t *testing.T) {
	var pairs [][2]string
	for i := 0; i < 500; i++ {
		pairs = append(pairs, [2]string{fmt.Sprintf("key%06d", i*3), "v"})
	}
	r, _ := NewReader(buildBlock(pairs), bytes.Compare)
	it := r.Iter()
	for i := 0; i < 500; i++ {
		want := fmt.Sprintf("key%06d", i*3)
		it.Seek([]byte(want))
		if !it.Valid() || string(it.Key()) != want {
			t.Fatalf("seek %s landed on %q", want, it.Key())
		}
	}
}

func TestPrefixCompressionShrinks(t *testing.T) {
	long := bytes.Repeat([]byte("prefix-"), 10)
	b := NewBuilder()
	raw := 0
	for i := 0; i < 64; i++ {
		k := append(append([]byte(nil), long...), []byte(fmt.Sprintf("%06d", i))...)
		b.Add(k, []byte("v"))
		raw += len(k) + 1
	}
	enc := b.Finish()
	if len(enc) >= raw {
		t.Errorf("no compression: %d >= %d", len(enc), raw)
	}
}

func TestBuilderReuseAfterFinish(t *testing.T) {
	b := NewBuilder()
	b.Add([]byte("a"), []byte("1"))
	first := b.Finish()
	if b.Count() != 0 || !b.Empty() {
		t.Fatal("builder not reset")
	}
	b.Add([]byte("b"), []byte("2"))
	second := b.Finish()
	r1, _ := NewReader(first, bytes.Compare)
	r2, _ := NewReader(second, bytes.Compare)
	it1, it2 := r1.Iter(), r2.Iter()
	it1.First()
	it2.First()
	if string(it1.Key()) != "a" || string(it2.Key()) != "b" {
		t.Fatalf("reuse bleed: %q %q", it1.Key(), it2.Key())
	}
}

func TestEmptyValuesAndBinaryKeys(t *testing.T) {
	b := NewBuilder()
	keys := [][]byte{{0}, {0, 0}, {0, 1}, {1}, {0xff, 0xfe}, {0xff, 0xff}}
	for _, k := range keys {
		b.Add(k, nil)
	}
	r, err := NewReader(b.Finish(), bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iter()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), keys[i]) {
			t.Fatalf("key %d: %v != %v", i, it.Key(), keys[i])
		}
		if len(it.Value()) != 0 {
			t.Fatalf("value %d not empty", i)
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("got %d keys", i)
	}
}

func TestCorruptBlocksRejected(t *testing.T) {
	if _, err := NewReader(nil, bytes.Compare); err == nil {
		t.Error("nil block accepted")
	}
	if _, err := NewReader([]byte{1, 2, 3}, bytes.Compare); err == nil {
		t.Error("short block accepted")
	}
	// restart count pointing past the block
	bad := make([]byte, 8)
	bad[4] = 0xff
	bad[5] = 0xff
	if _, err := NewReader(bad, bytes.Compare); err == nil {
		t.Error("bogus restart count accepted")
	}
	// Zero restart count.
	zero := make([]byte, 4)
	if _, err := NewReader(zero, bytes.Compare); err == nil {
		t.Error("zero restarts accepted")
	}
}

func TestTruncatedEntryDetected(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 50; i++ {
		b.Add([]byte(fmt.Sprintf("key%03d", i)), bytes.Repeat([]byte("v"), 40))
	}
	enc := b.Finish()
	// Corrupt an entry length deep inside: set a huge varint vlen.
	enc[40] = 0xff
	enc[41] = 0xff
	enc[42] = 0xff
	r, err := NewReader(enc, bytes.Compare)
	if err != nil {
		return // rejected at parse time: fine
	}
	it := r.Iter()
	for it.First(); it.Valid(); it.Next() {
	}
	// Either clean stop with error, or survived because corruption hit
	// a value byte; both are safe.  What must not happen is a panic.
}

func TestFullAndSizeEstimate(t *testing.T) {
	b := NewBuilder()
	if b.Full() {
		t.Fatal("empty builder full")
	}
	i := 0
	for !b.Full() {
		b.Add([]byte(fmt.Sprintf("key%08d", i)), bytes.Repeat([]byte("x"), 100))
		i++
	}
	enc := b.Finish()
	if len(enc) < TargetSize || len(enc) > TargetSize+256 {
		t.Errorf("block size %d not near target %d", len(enc), TargetSize)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(raw map[string]string) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b := NewBuilder()
		for _, k := range keys {
			b.Add([]byte(k), []byte(raw[k]))
		}
		r, err := NewReader(b.Finish(), bytes.Compare)
		if err != nil {
			return false
		}
		it := r.Iter()
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Key()) != keys[i] || string(it.Value()) != raw[keys[i]] {
				return false
			}
			i++
		}
		if i != len(keys) || it.Err() != nil {
			return false
		}
		// Seek to a random present key.
		probe := keys[len(keys)/2]
		it.Seek([]byte(probe))
		return it.Valid() && string(it.Key()) == probe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBlockBuild(b *testing.B) {
	keys := make([][]byte, 128)
	val := bytes.Repeat([]byte("v"), 100)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%012d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder()
		for _, k := range keys {
			bl.Add(k, val)
		}
		bl.Finish()
	}
}

func BenchmarkBlockSeek(b *testing.B) {
	bl := NewBuilder()
	var keys [][]byte
	for i := 0; i < 128; i++ {
		k := []byte(fmt.Sprintf("user%012d", i))
		keys = append(keys, k)
		bl.Add(k, bytes.Repeat([]byte("v"), 100))
	}
	r, _ := NewReader(bl.Finish(), bytes.Compare)
	it := r.Iter()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Seek(keys[rng.Intn(len(keys))])
	}
}

func TestLastAndPrev(t *testing.T) {
	var pairs [][2]string
	for i := 0; i < 100; i++ {
		pairs = append(pairs, [2]string{fmt.Sprintf("key%03d", i), fmt.Sprintf("v%d", i)})
	}
	r, _ := NewReader(buildBlock(pairs), bytes.Compare)
	it := r.Iter()

	it.Last()
	if !it.Valid() || string(it.Key()) != "key099" {
		t.Fatalf("last: %q valid=%v", it.Key(), it.Valid())
	}
	// Walk the whole block backward.
	for i := 98; i >= 0; i-- {
		it.Prev()
		if !it.Valid() {
			t.Fatalf("prev died at %d", i)
		}
		want := fmt.Sprintf("key%03d", i)
		if string(it.Key()) != want {
			t.Fatalf("prev at %d: %q want %q", i, it.Key(), want)
		}
		if string(it.Value()) != fmt.Sprintf("v%d", i) {
			t.Fatalf("prev value at %d: %q", i, it.Value())
		}
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("prev before first should invalidate")
	}
}

func TestPrevAfterSeek(t *testing.T) {
	var pairs [][2]string
	for i := 0; i < 50; i++ {
		pairs = append(pairs, [2]string{fmt.Sprintf("k%03d", i*2), "v"})
	}
	r, _ := NewReader(buildBlock(pairs), bytes.Compare)
	it := r.Iter()
	it.Seek([]byte("k050"))
	if string(it.Key()) != "k050" {
		t.Fatalf("seek: %q", it.Key())
	}
	it.Prev()
	if string(it.Key()) != "k048" {
		t.Fatalf("prev: %q", it.Key())
	}
	// Forward again after Prev.
	it.Next()
	if string(it.Key()) != "k050" {
		t.Fatalf("next after prev: %q", it.Key())
	}
}

func TestSeekForPrev(t *testing.T) {
	var pairs [][2]string
	for i := 0; i < 50; i++ {
		pairs = append(pairs, [2]string{fmt.Sprintf("k%03d", i*2), "v"})
	}
	r, _ := NewReader(buildBlock(pairs), bytes.Compare)
	it := r.Iter()
	// Exact hit.
	it.SeekForPrev([]byte("k048"))
	if string(it.Key()) != "k048" {
		t.Fatalf("exact: %q", it.Key())
	}
	// Between entries: previous one.
	it.SeekForPrev([]byte("k049"))
	if string(it.Key()) != "k048" {
		t.Fatalf("between: %q", it.Key())
	}
	// Before all: invalid.
	it.SeekForPrev([]byte("a"))
	if it.Valid() {
		t.Fatal("before-all should invalidate")
	}
	// After all: last.
	it.SeekForPrev([]byte("zzz"))
	if string(it.Key()) != "k098" {
		t.Fatalf("after-all: %q", it.Key())
	}
}

func TestPrevSingleEntry(t *testing.T) {
	r, _ := NewReader(buildBlock([][2]string{{"only", "v"}}), bytes.Compare)
	it := r.Iter()
	it.Last()
	if !it.Valid() || string(it.Key()) != "only" {
		t.Fatal("last on singleton")
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("prev on singleton")
	}
}
