package iamdb

import (
	"encoding/binary"
	"errors"

	"iamdb/internal/kv"
	"iamdb/internal/memtable"
)

// Batch collects writes to apply atomically: either every operation in
// the batch becomes visible (and durable in one WAL record) or none.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	kind kv.Kind
	key  []byte
	val  []byte
}

// Put queues a key/value insert.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{kv.KindSet,
		append([]byte(nil), key...), append([]byte(nil), value...)})
}

// Delete queues a key deletion.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{kv.KindDelete, append([]byte(nil), key...), nil})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// encode serializes the batch as one WAL record:
//
//	startSeq(varint) count(varint)
//	{kind(1) keyLen(varint) key [valLen(varint) val]}*
func (b *Batch) encode(startSeq kv.Seq) []byte {
	buf := binary.AppendUvarint(nil, uint64(startSeq))
	buf = binary.AppendUvarint(buf, uint64(len(b.ops)))
	for _, op := range b.ops {
		buf = append(buf, byte(op.kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.key)))
		buf = append(buf, op.key...)
		if op.kind == kv.KindSet {
			buf = binary.AppendUvarint(buf, uint64(len(op.val)))
			buf = append(buf, op.val...)
		}
	}
	return buf
}

var errBadBatch = errors.New("iamdb: corrupt batch record")

// decodeBatchInto replays one WAL record into a memtable, returning the
// last sequence number it used.
func decodeBatchInto(rec []byte, mt *memtable.MemTable) (kv.Seq, error) {
	p := rec
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	start, ok := u()
	if !ok {
		return 0, errBadBatch
	}
	count, ok := u()
	if !ok {
		return 0, errBadBatch
	}
	seq := kv.Seq(start)
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return 0, errBadBatch
		}
		kind := kv.Kind(p[0])
		p = p[1:]
		klen, ok := u()
		if !ok || uint64(len(p)) < klen {
			return 0, errBadBatch
		}
		key := p[:klen]
		p = p[klen:]
		var val []byte
		if kind == kv.KindSet {
			vlen, ok := u()
			if !ok || uint64(len(p)) < vlen {
				return 0, errBadBatch
			}
			val = p[:vlen]
			p = p[vlen:]
		} else if kind != kv.KindDelete {
			return 0, errBadBatch
		}
		mt.Add(seq, kind, key, val)
		seq++
	}
	return seq - 1, nil
}

// size estimates the memtable bytes the batch will occupy.
func (b *Batch) size() int64 {
	var n int64
	for _, op := range b.ops {
		n += int64(len(op.key) + len(op.val) + 24)
	}
	return n
}
