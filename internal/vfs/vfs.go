// Package vfs abstracts the filesystem under IamDB and provides the
// experiment substrate that replaces the paper's physical disks:
//
//   - MemFS: a concurrency-safe in-memory filesystem for tests and
//     simulated experiments.
//   - OSFS: a thin wrapper over the operating system.
//   - Stats: a wrapper counting bytes/ops/seeks, used to measure write,
//     read and space amplification exactly as the paper defines them.
//   - Disk: a virtual-clock disk model charging seek latency and
//     transfer time per I/O, with HDD and SSD profiles, so throughput
//     *shape* (who wins, by what factor) is reproducible on any machine.
//
// The wrappers stack (Stats over Crash over Mem, etc.), so vfs-level
// locks nest within the package in wrapper order; the type-granular
// lockorder analysis cannot distinguish instances, so the package is
// declared internally ordered:
//
//iamlint:lockorder vfs.* internal
package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a named file does not exist.
var ErrNotFound = errors.New("vfs: file not found")

// File is an open file handle.  Handles support both sequential appends
// (WAL) and random positioned I/O (tables).
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer // sequential append at the current end
	io.Closer
	// Sync flushes buffered data to stable storage.
	Sync() error
	// Size reports the current file length.
	Size() (int64, error)
	// Truncate resizes the file.
	Truncate(int64) error
}

// FS is the filesystem interface every engine runs against.
type FS interface {
	// Create makes (or truncates) a file and opens it read-write.
	Create(name string) (File, error)
	// Open opens an existing file read-write.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically renames a file, replacing any destination.
	Rename(oldname, newname string) error
	// List returns the sorted base names of files under dir.
	List(dir string) ([]string, error)
	// MkdirAll creates a directory path.
	MkdirAll(dir string) error
	// Exists reports whether the named file exists.
	Exists(name string) bool
}

// ---------------------------------------------------------------------
// In-memory filesystem

// memPageSize is the extent granularity of in-memory files.  MSTables
// are sparse — data grows from the front, metadata from the back, with
// a hole between (see internal/table) — so memFile stores pages in a
// map and never materializes the hole.
const memPageSize = 16 * 1024

type memFile struct {
	mu    sync.RWMutex
	size  int64
	pages map[int64]*[memPageSize]byte
}

func newMemFile() *memFile {
	return &memFile{pages: make(map[int64]*[memPageSize]byte)}
}

// readAtLocked copies [off, off+len(p)) into p, zero-filling holes.
// Caller holds mu (read or write).
func (f *memFile) readAtLocked(p []byte, off int64) (int, error) {
	if off >= f.size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > f.size-off {
		n = int(f.size - off)
	}
	done := 0
	for done < n {
		pageIdx := (off + int64(done)) / memPageSize
		pageOff := int((off + int64(done)) % memPageSize)
		chunk := memPageSize - pageOff
		if chunk > n-done {
			chunk = n - done
		}
		if pg := f.pages[pageIdx]; pg != nil {
			copy(p[done:done+chunk], pg[pageOff:pageOff+chunk])
		} else {
			for i := done; i < done+chunk; i++ {
				p[i] = 0
			}
		}
		done += chunk
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// writeAtLocked stores p at off, allocating pages as needed.  Caller
// holds mu for writing.
func (f *memFile) writeAtLocked(p []byte, off int64) {
	done := 0
	for done < len(p) {
		pageIdx := (off + int64(done)) / memPageSize
		pageOff := int((off + int64(done)) % memPageSize)
		chunk := memPageSize - pageOff
		if chunk > len(p)-done {
			chunk = len(p) - done
		}
		pg := f.pages[pageIdx]
		if pg == nil {
			pg = new([memPageSize]byte)
			f.pages[pageIdx] = pg
		}
		copy(pg[pageOff:pageOff+chunk], p[done:done+chunk])
		done += chunk
	}
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
}

// MemFS is an in-memory FS safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memFile
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: map[string]bool{".": true, "/": true}}
}

func clean(name string) string { return filepath.Clean(name) }

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	name = clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := newMemFile()
	fs.files[name] = f
	return &memHandle{f: f}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	name = clean(name)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: ErrNotFound}
	}
	return &memHandle{f: f, pos: -1}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	name = clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: ErrNotFound}
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	oldname, newname = clean(oldname), clean(newname)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: ErrNotFound}
	}
	fs.files[newname] = f
	delete(fs.files, oldname)
	return nil
}

// List implements FS.
func (fs *MemFS) List(dir string) ([]string, error) {
	dir = clean(dir)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var names []string
	prefix := dir + string(filepath.Separator)
	if dir == "." || dir == "/" {
		prefix = ""
	}
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			rest := strings.TrimPrefix(name, prefix)
			if !strings.Contains(rest, string(filepath.Separator)) {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirs[clean(dir)] = true
	return nil
}

// Exists implements FS.
func (fs *MemFS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[clean(name)]
	return ok
}

// TotalBytes reports the sum of all logical file sizes.
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, f := range fs.files {
		f.mu.RLock()
		n += f.size
		f.mu.RUnlock()
	}
	return n
}

// AllocatedBytes reports the bytes actually materialized (holes are
// free), mirroring what a hole-punching filesystem would charge.
func (fs *MemFS) AllocatedBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, f := range fs.files {
		f.mu.RLock()
		n += int64(len(f.pages)) * memPageSize
		f.mu.RUnlock()
	}
	return n
}

type memHandle struct {
	f   *memFile
	mu  sync.Mutex
	pos int64 // sequential-write position; -1 means "end of file"
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	return h.f.readAtLocked(p, off)
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.writeAtLocked(p, off)
	return len(p), nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.f.mu.Lock()
	if h.pos < 0 {
		h.pos = h.f.size
	}
	h.f.writeAtLocked(p, h.pos)
	h.f.mu.Unlock()
	h.pos += int64(len(p))
	return len(p), nil
}

func (h *memHandle) Close() error { return nil }
func (h *memHandle) Sync() error  { return nil }

func (h *memHandle) Size() (int64, error) {
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	return h.f.size, nil
}

func (h *memHandle) Truncate(n int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if n < h.f.size {
		// Drop pages entirely past the new end and zero the partial
		// tail page so regrowth reads zeros.
		lastPage := (n + memPageSize - 1) / memPageSize
		for idx := range h.f.pages {
			if idx >= lastPage {
				delete(h.f.pages, idx)
			}
		}
		if rem := n % memPageSize; rem != 0 {
			if pg := h.f.pages[n/memPageSize]; pg != nil {
				for i := rem; i < memPageSize; i++ {
					pg[i] = 0
				}
			}
		}
	}
	h.f.size = n
	return nil
}

// ---------------------------------------------------------------------
// OS filesystem
