// Package harness runs the paper's experiments (Sec. 6) at laptop
// scale: it stacks a DB on a virtual-clock disk model (HDD or SSD
// profile), loads it with YCSB hash loads or db_bench patterns, runs
// the workloads, and reports the quantities the paper's tables and
// figures plot — normalized throughput, per-level write amplification,
// 99%/max latencies, and space usage.
//
// Scale substitution (documented in DESIGN.md): datasets are MiB, not
// TiB, with every ratio preserved — fanout t, data:cache ratio, node
// capacity Ct relative to dataset — so level counts and amplification
// behaviour match the paper's regimes.
package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"iamdb"
	"iamdb/internal/histogram"
	"iamdb/internal/vfs"
	"iamdb/internal/ycsb"
)

// Config describes one experiment environment.
type Config struct {
	Engine iamdb.EngineKind
	Disk   vfs.DiskProfile
	// Records is the number of 1 KiB-value records the load inserts.
	Records uint64
	// ValueSize is the record value size (paper: 1024).
	ValueSize int
	// ValueThreshold enables key-value separation in the store (values
	// at or above it go to the value log); 0 keeps every value inline.
	ValueThreshold int
	// VlogSegmentSize overrides the value-log segment size; 0 uses the
	// store's default.  The kvsep experiment shrinks it so density GC
	// exercises at laptop scale.
	VlogSegmentSize int64
	// Ct is the memtable/node capacity (scaled from 128 MiB).
	Ct int64
	// CacheBytes models available RAM for data blocks.
	CacheBytes int64
	// Threads is the compaction thread count (paper's -1t/-4t).
	Threads int
	// CPUPerOp charges fixed non-I/O time per operation so fully
	// cached workloads have finite throughput.
	CPUPerOp time.Duration
	// Seed fixes workload randomness.
	Seed int64
	// FixedM/K pin IAM's mixed level (Table 3); zero = auto.
	FixedM int
	K      int
	// Inline runs flushes and compactions synchronously on the writer
	// (iamdb.Options.InlineBackground): with the virtual clock this
	// makes whole runs deterministic, at the cost of commit latency
	// absorbing background work.  The stability experiment uses it.
	Inline bool
	// TimelineWindow is the initial width of the timeline sampler's
	// windows in virtual disk time (default 100ms; it doubles as the
	// run outgrows the ring).  TimelineCapacity bounds the ring
	// (default 128 — a run always yields 64–128 windows once full).
	// The default is deliberately coarse: a boundary crossing costs a
	// full metrics snapshot, so a fine window taxes every op of every
	// experiment (the stability experiment re-arms a 50µs window for
	// just its measured phase via ResetTimeline).
	TimelineWindow   time.Duration
	TimelineCapacity int
	// Trace, when non-nil, records structural spans for the run.
	Trace *iamdb.TraceRecorder
}

// DefaultValueSize is the value size experiments use unless they
// override it (the paper's 1 KiB records, Sec. 6.1).
const DefaultValueSize = 1024

func (c Config) withDefaults() Config {
	if c.ValueSize == 0 {
		c.ValueSize = DefaultValueSize
	}
	if c.Ct == 0 {
		c.Ct = 256 * 1024
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = int64(c.Records) * int64(c.ValueSize) / 6
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.CPUPerOp == 0 {
		c.CPUPerOp = 5 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.TimelineWindow == 0 {
		c.TimelineWindow = 100 * time.Millisecond
	}
	return c
}

// Env is a live experiment environment.
type Env struct {
	Cfg   Config
	DB    *iamdb.DB
	mem   *vfs.MemFS
	clock *vfs.DiskClock
	stats *vfs.IOStats
	rng   *rand.Rand
	value []byte
	// sampler is the timeline sampler the op loops poll; ResetTimeline
	// replaces it to scope the timeline to a measured phase.
	sampler *iamdb.Sampler
	// Stability, when set by an experiment before Close, rides along in
	// the metrics record the sink receives.
	Stability *StabilityScore
	// reported guards the metrics sink against double Close.
	reported bool
}

// paperCt is the paper's node capacity (Sec. 6.1): disk seek latency
// scales by Ct/paperCt so the seek:transfer balance of compaction I/O
// survives the dataset scale-down.  A flush reads one appended
// sequence (~Ct/t bytes) per seek; at 128 MiB nodes the seek is ~9% of
// that read on the paper's HDD, and scaling Ct without scaling seeks
// would turn compactions seek-bound, which no full-size deployment is.
// Consequence: absolute latencies are not paper-comparable, only
// ratios between engines (EXPERIMENTS.md discusses this).
const paperCt = 128 << 20

// NewEnv builds the FS stack and opens the DB.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	mem := vfs.NewMemFS()
	clock := new(vfs.DiskClock)
	profile := cfg.Disk
	profile.SeekLatency = time.Duration(int64(profile.SeekLatency) * cfg.Ct / paperCt)
	disk := vfs.NewDisk(mem, profile, clock)
	stats := new(vfs.IOStats)
	fs := vfs.NewStatsFS(disk, stats)

	db, err := iamdb.Open("db", &iamdb.Options{
		Engine:            cfg.Engine,
		FS:                fs,
		MemtableSize:      cfg.Ct,
		CacheSize:         cfg.CacheBytes,
		MemBudget:         cfg.CacheBytes / 2, // Sec. 5.1.3's M/2 refinement
		K:                 cfg.K,
		FixedM:            cfg.FixedM,
		CompactionThreads: cfg.Threads,
		// The disk's virtual clock is the experiment's time base, so
		// event durations and latency histograms report simulated
		// device time, not host time.
		Clock:            clock,
		Trace:            cfg.Trace,
		InlineBackground: cfg.Inline,
		ValueThreshold:   cfg.ValueThreshold,
		VlogSegmentSize:  cfg.VlogSegmentSize,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Env{
		Cfg: cfg, DB: db, mem: mem, clock: clock, stats: stats,
		rng:     rng,
		value:   ycsb.Value(rng, cfg.ValueSize),
		sampler: db.NewSampler(cfg.TimelineWindow, cfg.TimelineCapacity),
	}, nil
}

// ResetTimeline discards the timeline so far and starts a fresh one at
// the clock's current reading — used to scope the timeline to a
// measured phase (e.g. after a load).  window/capacity ≤ 0 keep the
// config's values.
func (e *Env) ResetTimeline(window time.Duration, capacity int) {
	if window <= 0 {
		window = e.Cfg.TimelineWindow
	}
	if capacity <= 0 {
		capacity = e.Cfg.TimelineCapacity
	}
	e.sampler = e.DB.NewSampler(window, capacity)
}

// Timeline polls and returns the closed windows of the current
// timeline, oldest first.
func (e *Env) Timeline() []iamdb.TimelinePoint { return e.DB.Timeline() }

// poll advances the timeline; op loops call it once per operation (one
// atomic load when no window boundary has been crossed).
func (e *Env) poll() { e.sampler.Poll() }

// MetricsRecord is one environment's final metrics snapshot, tagged
// with the engine and disk profile that produced it.
type MetricsRecord struct {
	Engine  string
	Disk    string
	Metrics iamdb.Metrics
	// Timeline is the run's windowed time-series (empty when the
	// environment closed before any window did).
	Timeline []iamdb.TimelinePoint `json:",omitempty"`
	// Stability carries the stability experiment's score for this run.
	Stability *StabilityScore `json:",omitempty"`
}

// metricsSink, when installed, observes every environment's final
// metrics snapshot at Close.  cmd/iambench uses it to emit a
// BENCH_*.json blob per experiment so result trajectories capture
// per-level amplification, not just throughput.
var metricsSink func(MetricsRecord)

// SetMetricsSink installs fn (nil to remove) as the metrics sink.  Not
// safe to call while experiments are running.
func SetMetricsSink(fn func(MetricsRecord)) { metricsSink = fn }

// Report feeds one record to the installed sink, for experiments that
// run a DB outside a harness Env (e.g. the wall-clock contention
// benchmark in cmd/iambench).  A no-op without a sink.
func Report(r MetricsRecord) {
	if metricsSink != nil {
		metricsSink(r)
	}
}

// Close shuts the environment down, reporting final metrics to the
// sink if one is installed.
func (e *Env) Close() error {
	if metricsSink != nil && !e.reported {
		e.reported = true
		metricsSink(MetricsRecord{
			Engine:    e.Cfg.Engine.String(),
			Disk:      e.Cfg.Disk.Name,
			Metrics:   e.DB.Metrics(),
			Timeline:  e.Timeline(),
			Stability: e.Stability,
		})
	}
	return e.DB.Close()
}

// LoadResult reports a load phase.
type LoadResult struct {
	Engine    string
	Ops       uint64
	UserBytes int64
	DiskTime  time.Duration
	OpsPerSec float64
	WriteAmp  float64
	PerLevel  []float64
	P99       time.Duration
	Max       time.Duration
	SpaceUsed int64
	// Metrics is the DB's full observability snapshot at the end of
	// the load (per-level traffic, stalls, IO, latency digests).
	Metrics iamdb.Metrics
}

// HashLoad inserts Records keys in hash order (YCSB's default load,
// Sec. 6.2), measuring per-op latency against the virtual disk clock.
func (e *Env) HashLoad() (LoadResult, error) {
	return e.load(ycsb.KeyName)
}

// SeqLoad inserts Records keys in ascending order (db_bench fillseq).
func (e *Env) SeqLoad() (LoadResult, error) {
	return e.load(ycsb.OrderedKeyName)
}

// RandomLoad inserts with random (possibly repeating) keys, i.e.
// db_bench fillrandom: updates occur.
func (e *Env) RandomLoad() (LoadResult, error) {
	n := e.Cfg.Records
	return e.load(func(uint64) []byte {
		return ycsb.KeyName(uint64(e.rng.Int63n(int64(n))))
	})
}

// Overwrite re-writes every existing key once in random order
// (db_bench overwrite); call after a load.
func (e *Env) Overwrite() (LoadResult, error) {
	n := e.Cfg.Records
	return e.load(func(uint64) []byte {
		return ycsb.KeyName(uint64(e.rng.Int63n(int64(n))))
	})
}

func (e *Env) load(key func(i uint64) []byte) (LoadResult, error) {
	hist := histogram.New()
	start := e.clock.Elapsed()
	for i := uint64(0); i < e.Cfg.Records; i++ {
		t0 := e.clock.Elapsed()
		if err := e.DB.Put(key(i), e.value); err != nil {
			return LoadResult{}, err
		}
		hist.Record(e.clock.Elapsed() - t0 + e.Cfg.CPUPerOp)
		e.poll()
	}
	elapsed := e.clock.Elapsed() - start +
		time.Duration(e.Cfg.Records)*e.Cfg.CPUPerOp
	m := e.DB.Metrics()
	res := LoadResult{
		Engine:    e.Cfg.Engine.String(),
		Ops:       e.Cfg.Records,
		UserBytes: m.UserBytes,
		DiskTime:  elapsed,
		OpsPerSec: rate(e.Cfg.Records, elapsed),
		WriteAmp:  m.WriteAmplification(),
		PerLevel:  perLevelAmp(m),
		P99:       hist.Percentile(0.99),
		Max:       hist.Max(),
		SpaceUsed: m.SpaceUsed,
		Metrics:   m,
	}
	return res, nil
}

func rate(ops uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}

func perLevelAmp(m iamdb.Metrics) []float64 {
	out := make([]float64, len(m.Engine.FlushBytes))
	for i, b := range m.Engine.FlushBytes {
		if m.UserBytes > 0 {
			out[i] = float64(b) / float64(m.UserBytes)
		}
	}
	return out
}

// Settle runs the tuning phase to completion (flush + drain all
// pending compactions), returning the disk time it consumed.
func (e *Env) Settle() (time.Duration, error) {
	start := e.clock.Elapsed()
	if err := e.DB.CompactAll(); err != nil {
		return 0, err
	}
	return e.clock.Elapsed() - start, nil
}

// RunResult reports one workload run.
type RunResult struct {
	Engine    string
	Workload  string
	Ops       int
	OpsPerSec float64
	P99       time.Duration
	Max       time.Duration
	ReadMiss  int
}

// RunWorkload executes ops operations of workload w against the store.
func (e *Env) RunWorkload(w ycsb.Workload, ops int) (RunResult, error) {
	runner := ycsb.NewRunner(w, e.Cfg.Records, e.Cfg.Seed+17)
	hist := histogram.New()
	start := e.clock.Elapsed()
	misses := 0
	for i := 0; i < ops; i++ {
		op := runner.Next()
		t0 := e.clock.Elapsed()
		switch op.Type {
		case ycsb.OpRead:
			if _, err := e.DB.Get(op.Key); err == iamdb.ErrNotFound {
				misses++
			} else if err != nil {
				return RunResult{}, err
			}
		case ycsb.OpUpdate, ycsb.OpInsert:
			if err := e.DB.Put(op.Key, e.value); err != nil {
				return RunResult{}, err
			}
		case ycsb.OpRMW:
			if _, err := e.DB.Get(op.Key); err != nil && err != iamdb.ErrNotFound {
				return RunResult{}, err
			}
			if err := e.DB.Put(op.Key, e.value); err != nil {
				return RunResult{}, err
			}
		case ycsb.OpScan:
			it := e.DB.NewIterator()
			it.Seek(op.Key)
			for n := 0; it.Valid() && n < op.ScanLen; n++ {
				it.Next()
			}
			if err := it.Err(); err != nil {
				it.Close()
				return RunResult{}, err
			}
			it.Close()
		}
		hist.Record(e.clock.Elapsed() - t0 + e.Cfg.CPUPerOp)
		e.poll()
	}
	elapsed := e.clock.Elapsed() - start + time.Duration(ops)*e.Cfg.CPUPerOp
	return RunResult{
		Engine:    e.Cfg.Engine.String(),
		Workload:  w.Name,
		Ops:       ops,
		OpsPerSec: rate(uint64(ops), elapsed),
		P99:       hist.Percentile(0.99),
		Max:       hist.Max(),
		ReadMiss:  misses,
	}, nil
}

// ReadSeq scans the whole store once (db_bench readseq), returning the
// record rate.
func (e *Env) ReadSeq() (RunResult, error) {
	start := e.clock.Elapsed()
	it := e.DB.NewIterator()
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
		e.poll()
	}
	if err := it.Err(); err != nil {
		return RunResult{}, err
	}
	elapsed := e.clock.Elapsed() - start + time.Duration(n)*e.Cfg.CPUPerOp
	return RunResult{
		Engine: e.Cfg.Engine.String(), Workload: "readseq",
		Ops: n, OpsPerSec: rate(uint64(n), elapsed),
	}, nil
}

// SpaceUsed reports the store's on-disk footprint.
func (e *Env) SpaceUsed() int64 { return e.DB.Metrics().SpaceUsed }

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
