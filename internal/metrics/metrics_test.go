package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(2)
	if r.Counter("ops") != c || c.Load() != 3 {
		t.Fatalf("counter identity or value broken: %d", c.Load())
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if r.Gauge("depth") != g || g.Load() != 5 {
		t.Fatalf("gauge identity or value broken: %d", g.Load())
	}
	h := r.Histogram("lat")
	h.Record(time.Millisecond)
	if r.Histogram("lat") != h || h.Count() != 1 {
		t.Fatalf("histogram identity or count broken: %d", h.Count())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if n := r.Counter("shared").Load(); n != 800 {
		t.Fatalf("counter = %d, want 800", n)
	}
	if n := r.Histogram("h").Count(); n != 800 {
		t.Fatalf("histogram count = %d, want 800", n)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(4)
	r.Counter("a.count").Add(2)
	r.Gauge("depth").Set(3)
	r.Histogram("lat").Record(time.Millisecond)
	s := r.Snapshot()
	if s.Counters["a.count"] != 2 || s.Counters["b.count"] != 4 || s.Gauges["depth"] != 3 {
		t.Fatalf("snapshot values wrong: %+v", s)
	}
	if s.Histograms["lat"].Count != 1 {
		t.Fatalf("histogram summary missing: %+v", s.Histograms)
	}
	out := s.String()
	// Keys render sorted within each section.
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

func TestClocks(t *testing.T) {
	mc := new(ManualClock)
	if mc.Now() != 0 {
		t.Fatal("manual clock must start at zero")
	}
	mc.Advance(3 * time.Second)
	if mc.Now() != 3*time.Second {
		t.Fatalf("manual clock = %v", mc.Now())
	}
	if NopClock.Now() != 0 {
		t.Fatal("nop clock must read zero")
	}
	f := ClockFunc(func() time.Duration { return time.Minute })
	if f.Now() != time.Minute {
		t.Fatalf("clock func = %v", f.Now())
	}
}

func TestEnsureDefaultsNilSafe(t *testing.T) {
	var nilL *EventListener
	l := nilL.EnsureDefaults()
	// Every callback must be callable without panicking.
	l.FlushEnd(FlushInfo{})
	l.AppendEnd(AppendInfo{})
	l.MergeEnd(MergeInfo{})
	l.MoveEnd(MoveInfo{})
	l.SplitEnd(SplitInfo{})
	l.CombineEnd(CombineInfo{})
	l.WALRotated(WALRotationInfo{})
	l.ManifestEdit(ManifestEditInfo{})
	l.TableCreated(TableInfo{})
	l.TableDeleted(TableInfo{})
	l.WriteStallBegin(StallInfo{})
	l.WriteStallEnd(StallInfo{})

	// Partially-populated listeners keep their callbacks.
	n := 0
	part := (&EventListener{FlushEnd: func(FlushInfo) { n++ }}).EnsureDefaults()
	part.FlushEnd(FlushInfo{})
	part.MergeEnd(MergeInfo{}) // filled with a no-op
	if n != 1 {
		t.Fatalf("kept callback fired %d times, want 1", n)
	}
}

func TestTeeAndLoggingListener(t *testing.T) {
	var lines []string
	logging := NewLoggingListener(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	n := 0
	counting := &EventListener{SplitEnd: func(SplitInfo) { n++ }}
	tee := TeeListener(logging, counting, nil)
	tee.SplitEnd(SplitInfo{Level: 2, Bytes: 10, NewNodes: 2})
	tee.FlushEnd(FlushInfo{Bytes: 5})
	if n != 1 {
		t.Fatalf("tee did not reach the counting listener: %d", n)
	}
	if len(lines) != 2 || !strings.Contains(lines[0], "split") {
		t.Fatalf("logging listener lines: %q", lines)
	}
}
