package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// program is the interprocedural substrate shared by the lockorder,
// syncorder and goexit passes: every declared function's summary, a
// type-resolved call graph (interface methods resolve to every
// implementation declared in the linted packages), and the fixpoint
// results the passes consume.
type program struct {
	pkgs  []*pkg
	fset  *token.FileSet
	nodes map[*types.Func]*funcNode
	anon  []*funcNode // function literals, in discovery order
	order []*funcNode // all nodes, deterministic order

	// byFile maps a filename to its package, so program-level passes
	// can honour per-package suppression directives.
	byFile map[string]*pkg

	// named is the universe of concrete named types used to resolve
	// interface-method calls.
	named []*types.Named

	resolveCache map[resolveKey][]*funcNode
	closures     map[string]map[string]bool // pkg path -> import closure (inclusive)
}

type resolveKey struct {
	iface  *types.Interface
	method string
	caller string // calling package path: resolution is import-scoped
}

// buildProgram summarizes every function of every loaded package and
// runs the fixpoints.
func buildProgram(pkgs []*pkg) *program {
	pr := &program{
		pkgs:         pkgs,
		nodes:        make(map[*types.Func]*funcNode),
		byFile:       make(map[string]*pkg),
		resolveCache: make(map[resolveKey][]*funcNode),
	}
	if len(pkgs) > 0 {
		pr.fset = pkgs[0].fset
	}
	for _, p := range pkgs {
		for _, f := range p.files {
			pr.byFile[p.fset.Position(f.Pos()).Filename] = p
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{
					obj:   obj,
					pkg:   p,
					label: fnLabel(obj),
					pos:   fd.Pos(),
					sum:   buildSummary(p, fnLabel(obj), fd.Body, &pr.anon),
				}
				pr.nodes[obj] = node
				pr.order = append(pr.order, node)
			}
		}
		// Named-type universe for interface resolution: every concrete
		// named type declared in the linted packages.
		for _, obj := range p.info.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			pr.named = append(pr.named, named)
		}
	}
	pr.order = append(pr.order, pr.anon...)
	sort.Slice(pr.named, func(i, j int) bool {
		return pr.named[i].String() < pr.named[j].String()
	})
	pr.fixpointAcquire()
	pr.fixpointSync()
	return pr
}

// suppress consults the owning package's directives for a
// program-level diagnostic.
func (pr *program) suppress(pass string, pos token.Position) bool {
	if p, ok := pr.byFile[pos.Filename]; ok {
		return p.suppressed(pass, pos)
	}
	return false
}

// importClosure returns the set of package paths a package can see:
// itself plus everything it imports, transitively.  Interface calls
// resolve only to implementations from this set — a concrete type
// whose package the caller cannot even name does not flow into its
// interface values (standard class-hierarchy refinement; it is what
// keeps the two alternative engine backends, which never import each
// other, from fabricating cross-engine lock cycles).
func (pr *program) importClosure(p *pkg) map[string]bool {
	if pr.closures == nil {
		pr.closures = make(map[string]map[string]bool)
	}
	if c, ok := pr.closures[p.path]; ok {
		return c
	}
	closure := make(map[string]bool)
	var walk func(tp *types.Package)
	walk = func(tp *types.Package) {
		if tp == nil || closure[tp.Path()] {
			return
		}
		closure[tp.Path()] = true
		for _, imp := range tp.Imports() {
			walk(imp)
		}
	}
	walk(p.tpkg)
	closure[p.path] = true // tpkg can be nil on a failed check; the package still sees itself
	pr.closures[p.path] = closure
	return closure
}

// callees resolves one recorded call event of node n to the
// summarized nodes it may reach.  Static calls resolve to at most one
// node; interface calls resolve to the matching method on every
// implementing type in the caller's import closure.
func (pr *program) callees(n *funcNode, ev sumEvent) []*funcNode {
	if ev.callee == nil {
		return nil
	}
	if !ev.iface {
		if cn, ok := pr.nodes[ev.callee]; ok {
			return []*funcNode{cn}
		}
		return nil
	}
	iface := ev.ifaceT
	if iface == nil {
		// Selector through an interface-typed expression but the
		// method object is concrete (embedded): treat as static.
		if cn, found := pr.nodes[ev.callee]; found {
			return []*funcNode{cn}
		}
		return nil
	}
	key := resolveKey{iface: iface, method: ev.callee.Name(), caller: n.pkg.path}
	if cached, found := pr.resolveCache[key]; found {
		return cached
	}
	visible := pr.importClosure(n.pkg)
	var out []*funcNode
	for _, named := range pr.named {
		if named.Obj().Pkg() == nil || !visible[named.Obj().Pkg().Path()] {
			continue
		}
		if !implementsIface(named, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), ev.callee.Name())
		m, isFunc := obj.(*types.Func)
		if !isFunc {
			continue
		}
		if cn, found := pr.nodes[m.Origin()]; found {
			out = append(out, cn)
		}
	}
	pr.resolveCache[key] = out
	return out
}

// sigString renders a signature with fully-qualified type names and
// no receiver, so signatures can be compared across type-checking
// worlds (each linted package is checked from source, so its types
// are distinct objects from the export-data versions its dependents
// see — types.Identical, and hence types.Implements, fails across
// that boundary even though the types print identically).
func sigString(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	unnamed := func(t *types.Tuple) *types.Tuple {
		if t == nil {
			return nil
		}
		vars := make([]*types.Var, t.Len())
		for i := 0; i < t.Len(); i++ {
			vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
		}
		return types.NewTuple(vars...)
	}
	bare := types.NewSignatureType(nil, nil, nil, unnamed(sig.Params()), unnamed(sig.Results()), sig.Variadic())
	return types.TypeString(bare, qual)
}

// implementsIface is a cross-world types.Implements: every interface
// method must exist on *named with a structurally identical
// signature.
func implementsIface(named *types.Named, iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		im := iface.Method(i)
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), im.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			return false
		}
		msig, ok1 := m.Type().(*types.Signature)
		isig, ok2 := im.Type().(*types.Signature)
		if !ok1 || !ok2 || sigString(msig) != sigString(isig) {
			return false
		}
	}
	return true
}

// fixpointAcquire propagates may-acquire sets bottom-up until stable:
// a function may acquire every lock it locks directly plus everything
// any callee may acquire.
func (pr *program) fixpointAcquire() {
	for _, n := range pr.order {
		n.sum.mayAcquire = make(map[string]acqOrigin)
		for _, a := range n.sum.acquires {
			if _, ok := n.sum.mayAcquire[a.name]; !ok {
				n.sum.mayAcquire[a.name] = acqOrigin{pos: a.pos}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range pr.order {
			for _, ev := range n.sum.events {
				if ev.callee == nil {
					continue
				}
				for _, cn := range pr.callees(n, ev) {
					for lock, origin := range cn.sum.mayAcquire {
						if _, ok := n.sum.mayAcquire[lock]; ok {
							continue
						}
						n.sum.mayAcquire[lock] = acqOrigin{
							pos:   origin.pos,
							via:   ev.callee,
							iface: ev.iface || origin.iface,
						}
						changed = true
					}
				}
			}
		}
	}
}

// fixpointSync computes, for every function, whether it can reach a
// manifest edit and whether it can return with fresh table data
// written but not yet synced.
func (pr *program) fixpointSync() {
	for changed := true; changed; {
		changed = false
		for _, n := range pr.order {
			edits, dirty := false, false
			for _, ev := range n.sum.events {
				switch ev.kind {
				case evWrite:
					dirty = true
				case evSync:
					dirty = false
				case evEdit:
					edits = true
				case evCall:
					for _, cn := range pr.callees(n, ev) {
						if cn.sum.editsManifest {
							edits = true
						}
						if cn.sum.dirtyAtExit {
							dirty = true
						}
					}
				}
			}
			if edits && !n.sum.editsManifest {
				n.sum.editsManifest = true
				changed = true
			}
			if dirty && !n.sum.dirtyAtExit {
				n.sum.dirtyAtExit = true
				changed = true
			}
		}
	}
}

// reachable returns every node reachable through the call graph from
// the given roots (inclusive).
func (pr *program) reachable(roots []*funcNode) map[*funcNode]bool {
	seen := make(map[*funcNode]bool)
	work := append([]*funcNode(nil), roots...)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, ev := range n.sum.events {
			if ev.callee == nil {
				continue
			}
			for _, cn := range pr.callees(n, ev) {
				if !seen[cn] {
					work = append(work, cn)
				}
			}
		}
		for _, sp := range n.sum.spawns {
			if sp.callee != nil {
				if cn, ok := pr.nodes[sp.callee]; ok && !seen[cn] {
					work = append(work, cn)
				}
			}
		}
	}
	return seen
}

// analyzeProgram runs the three interprocedural passes.
func analyzeProgram(pr *program) []diag {
	var diags []diag
	emit := func(d diag) {
		if !pr.suppress(d.pass, d.pos) {
			diags = append(diags, d)
		}
	}
	lockorder(pr, emit)
	syncorder(pr, emit)
	goexit(pr, emit)
	return diags
}
