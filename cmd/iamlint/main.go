// Command iamlint is the repo's custom static analyzer.  It enforces
// invariants that generic tooling cannot know about — the discipline
// the IAM-tree's concurrent compaction model depends on:
//
//	lockcheck    every mu.Lock() is released by a defer mu.Unlock() or
//	             an Unlock on every return path of the same function
//	ioerr        no call into internal/vfs, internal/wal, internal/table
//	             or internal/manifest may silently discard an error
//	             result (write `_ = f.Close()` to discard on purpose;
//	             deferred cleanup calls are exempt)
//	determinism  the deterministic packages (internal/core,
//	             internal/harness, and internal/vfs's virtual-clock
//	             disk model) must not call time.Now, unseeded rand.*,
//	             or os filesystem functions — all time, randomness and
//	             I/O go through the vfs/clock abstractions
//	alias        keys/values returned by iterator Key()/Value() or
//	             block readers alias reused buffers; retaining one in a
//	             struct field, map, or slice without a copy is flagged
//	atomicpub    a struct published to readers through an
//	             atomic.Pointer[T] (skiplist nodes, arena chunks, the
//	             DB's read-state) is frozen once stored; plain-field
//	             writes are allowed only on provably fresh values
//	             (&T{...}, new(T), or a same-package new* constructor)
//
// Diagnostics print as "file:line: [pass] message" and the process
// exits non-zero if any are found.  Suppression directives:
//
//	//iamlint:ignore pass[,pass]       on the offending line or the line above
//	//iamlint:file-ignore pass[,pass]  anywhere in a file, for the whole file
//	//iamlint:deterministic            opts a package file into the
//	                                   determinism pass scope (used by fixtures)
//
// Only the standard library is used: go/ast, go/parser, go/types and
// `go list -export` for export data, in the style of go/packages.
package main

import (
	"fmt"
	"os"
	"sort"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := run(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iamlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "iamlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// run loads the packages matched by patterns and applies every pass,
// returning the rendered diagnostics in file:line order.
func run(patterns []string) ([]string, error) {
	pkgs, err := load(patterns)
	if err != nil {
		return nil, err
	}
	var all []diag
	for _, p := range pkgs {
		all = append(all, analyze(p)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		if all[i].pos.Line != all[j].pos.Line {
			return all[i].pos.Line < all[j].pos.Line
		}
		return all[i].msg < all[j].msg
	})
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.String()
	}
	return out, nil
}

// analyze runs the five passes over one loaded package, honouring the
// package's suppression directives.
func analyze(p *pkg) []diag {
	var diags []diag
	emit := func(d diag) {
		if !p.suppressed(d.pass, d.pos) {
			diags = append(diags, d)
		}
	}
	lockcheck(p, emit)
	ioerr(p, emit)
	determinism(p, emit)
	aliascheck(p, emit)
	atomicpub(p, emit)
	return diags
}
