package shard

import (
	"sync"
	"sync/atomic"

	"iamdb/internal/kv"
)

// Sequencer allocates global sequence ranges to cross-shard commits
// and tracks the visible watermark: the end of the longest prefix of
// allocations whose commits have fully completed.  Readers take the
// watermark as their snapshot, so a batch spanning shards becomes
// visible atomically — every record of a ticket at or below the
// watermark has been applied to its shard's memtable, and no record of
// any incomplete ticket is at or below it (ranges are contiguous and
// allocated in order).
//
// A ticket MUST be ended even when its commit failed: a leaked ticket
// stalls the watermark forever.  A failed commit's sequence range then
// reads as burned — the same gap semantics the single-tree commit path
// already has for failed WAL appends.
type Sequencer struct {
	// visibleA is the watermark, readable without the mutex.
	visibleA atomic.Uint64

	// mu orders allocation and completion.  It is a leaf: nothing else
	// is ever acquired while it is held.
	//
	//iamlint:lockorder Sequencer.mu leaf
	mu      sync.Mutex
	cond    *sync.Cond
	last    kv.Seq    // last allocated sequence number
	pending []*Ticket // outstanding allocations, FIFO
}

// Ticket is one contiguous sequence-range allocation [Base, End].
type Ticket struct {
	Base, End kv.Seq
	done      bool
}

// NewSequencer starts allocation after start (the recovered maximum
// sequence across all shards); the watermark begins there too.
func NewSequencer(start kv.Seq) *Sequencer {
	s := &Sequencer{last: start}
	s.cond = sync.NewCond(&s.mu)
	s.visibleA.Store(uint64(start))
	return s
}

// Begin allocates the next n sequence numbers as one ticket.
func (s *Sequencer) Begin(n int) *Ticket {
	s.mu.Lock()
	t := &Ticket{Base: s.last + 1, End: s.last + kv.Seq(n)}
	s.last = t.End
	s.pending = append(s.pending, t)
	s.mu.Unlock()
	return t
}

// End marks the ticket's commits complete (applied or abandoned) and
// advances the watermark past every completed prefix ticket.
func (s *Sequencer) End(t *Ticket) {
	s.mu.Lock()
	t.done = true
	advanced := false
	for len(s.pending) > 0 && s.pending[0].done {
		s.visibleA.Store(uint64(s.pending[0].End))
		s.pending = s.pending[1:]
		advanced = true
	}
	if advanced {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Visible returns the watermark: the largest sequence at which every
// allocation at or below it has completed.
func (s *Sequencer) Visible() kv.Seq {
	return kv.Seq(s.visibleA.Load())
}

// WaitVisible blocks until the watermark reaches seq — the router's
// read-your-writes barrier after a commit.
func (s *Sequencer) WaitVisible(seq kv.Seq) {
	if kv.Seq(s.visibleA.Load()) >= seq {
		return
	}
	s.mu.Lock()
	for kv.Seq(s.visibleA.Load()) < seq {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Last reports the last allocated sequence number (for bookkeeping;
// racy with concurrent Begin by nature).
func (s *Sequencer) Last() kv.Seq {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}
