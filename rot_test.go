package iamdb_test

import (
	"os"
	"testing"

	"iamdb"
	"iamdb/internal/harness"
	"iamdb/internal/vfs"
)

// TestCorruptionMatrix is the latent-fault sibling of TestCrashMatrix:
// for each engine it builds a deterministic store, then — per sampled
// (file × offset) point — damages exactly one byte of the synced image
// (bit-flip and zeroing variants), reopens, and checks the rot oracle:
// open succeeds or fails with a typed corruption error naming the
// file; no read ever returns bytes that were never acknowledged; an
// acknowledged key goes missing only when the store flagged the
// corruption; provably harmless damage changes nothing.
//
// The bounded default samples the matrix so `go test -run Corruption`
// stays in seconds; IAMDB_ROT_FULL=1 sweeps every point of every file
// for all four engines in both damage modes.
func TestCorruptionMatrix(t *testing.T) {
	full := os.Getenv("IAMDB_ROT_FULL") != ""
	engines := []iamdb.EngineKind{iamdb.IAM, iamdb.LSA, iamdb.LevelDB, iamdb.RocksDB}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			t.Parallel()
			n, err := harness.RotWorkload{Engine: eng}.PointCount()
			if err != nil {
				t.Fatalf("calibrate: %v", err)
			}
			if n < 100 {
				t.Fatalf("store exposes only %d corruption points; want >= 100", n)
			}
			for _, md := range []struct {
				name string
				mode vfs.RotMode
			}{{"Flip", vfs.RotFlip}, {"Zero", vfs.RotZero}} {
				md := md
				t.Run(md.name, func(t *testing.T) {
					t.Parallel()
					w := harness.RotWorkload{Engine: eng, Mode: md.mode}
					slots := pickSlots(n, 52, full)
					for _, s := range slots {
						if err := w.Trial(s); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestCorruptionMatrixKVSep rots a KV-separated store: the point
// enumeration walks value-log segments alongside tables, WALs and the
// manifest, so single-byte damage lands on record CRCs, segment magic
// and live value payloads — every read of a damaged value must fail
// typed or be flagged, never return rotted bytes.
func TestCorruptionMatrixKVSep(t *testing.T) {
	full := os.Getenv("IAMDB_ROT_FULL") != ""
	for _, eng := range []iamdb.EngineKind{iamdb.IAM, iamdb.LSA} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			t.Parallel()
			// Threshold 8 separates every scripted value (~18 bytes).
			n, err := harness.RotWorkload{Engine: eng, ValueThreshold: 8}.PointCount()
			if err != nil {
				t.Fatalf("calibrate: %v", err)
			}
			if n < 100 {
				t.Fatalf("store exposes only %d corruption points; want >= 100", n)
			}
			for _, md := range []struct {
				name string
				mode vfs.RotMode
			}{{"Flip", vfs.RotFlip}, {"Zero", vfs.RotZero}} {
				md := md
				t.Run(md.name, func(t *testing.T) {
					t.Parallel()
					w := harness.RotWorkload{Engine: eng, Mode: md.mode, ValueThreshold: 8}
					for _, s := range pickSlots(n, 40, full) {
						if err := w.Trial(s); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestCorruptionMatrixSharded damages a 4-shard store: the matrix now
// spans four independent file sets plus the SHARDS routing marker, and
// the oracle holds per shard (damage in one shard never costs another
// shard's acknowledged keys silently).
func TestCorruptionMatrixSharded(t *testing.T) {
	for _, eng := range []iamdb.EngineKind{iamdb.IAM, iamdb.LevelDB} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			t.Parallel()
			n, err := harness.RotWorkload{Engine: eng, Shards: 4}.PointCount()
			if err != nil {
				t.Fatalf("calibrate: %v", err)
			}
			if n < 100 {
				t.Fatalf("store exposes only %d corruption points; want >= 100", n)
			}
			for _, md := range []struct {
				name string
				mode vfs.RotMode
			}{{"Flip", vfs.RotFlip}, {"Zero", vfs.RotZero}} {
				md := md
				t.Run(md.name, func(t *testing.T) {
					t.Parallel()
					w := harness.RotWorkload{Engine: eng, Mode: md.mode, Shards: 4}
					for _, s := range pickSlots(n, 32, false) {
						if err := w.Trial(s); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// pickSlots returns every point index when full, else an evenly-strided
// sample of cap points that always includes the first and last.
func pickSlots(n, cap int, full bool) []int {
	if full || n <= cap {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, cap)
	for i := 0; i < cap; i++ {
		out = append(out, i*(n-1)/(cap-1))
	}
	return out
}
