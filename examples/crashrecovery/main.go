// Crash recovery: IamDB is a persistent, crash-recovery library —
// every write lands in the write-ahead log before the memtable, and a
// restart replays the log's intact prefix.  This example simulates a
// crash by abandoning a DB without flushing, corrupting the live log's
// tail, and reopening.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"iamdb"
)

func main() {
	dir, err := os.MkdirTemp("", "iamdb-crash")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1: write, then "crash" (close without compacting; the
	// memtable's contents exist only in the WAL).
	db, err := iamdb.Open(dir, &iamdb.Options{Engine: iamdb.IAM})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("order/%06d", i)),
			[]byte(fmt.Sprintf(`{"amount": %d}`, i*10))); err != nil {
			log.Fatal(err)
		}
	}
	db.Close()
	fmt.Println("wrote 1000 orders, then 'crashed'")

	// Phase 2: tear the live WAL's tail, as a power cut mid-write
	// would.  The CRC-protected log drops only the torn record.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			p := filepath.Join(dir, e.Name())
			if st, err := os.Stat(p); err == nil && st.Size() > 64 {
				os.Truncate(p, st.Size()-13)
				fmt.Printf("tore %d bytes off %s\n", 13, e.Name())
			}
		}
	}

	// Phase 3: reopen; recovery replays the intact WAL prefix.
	db2, err := iamdb.Open(dir, &iamdb.Options{Engine: iamdb.IAM})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()

	survived := 0
	it := db2.NewIterator()
	defer it.Close()
	for it.Seek([]byte("order/")); it.Valid(); it.Next() {
		survived++
	}
	fmt.Printf("recovered %d/1000 orders (the torn tail may cost the last record)\n", survived)
	if survived < 999 {
		log.Fatalf("recovery lost too much: %d", survived)
	}
	v, err := db2.Get([]byte("order/000500"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spot check order/000500 = %s\n", v)
}
