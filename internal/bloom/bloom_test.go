package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func TestNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = key(i)
		}
		f := Build(keys, DefaultBitsPerKey)
		for i := range keys {
			if !f.MayContain(keys[i]) {
				t.Fatalf("n=%d: false negative on key %d", n, i)
			}
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	f := Build(keys, DefaultBitsPerKey)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(key(n + 1000000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// The paper quotes ~0.2% at 14 bits/key; allow generous slack.
	if rate > 0.01 {
		t.Errorf("false positive rate %.4f too high for 14 bits/key", rate)
	}
}

func TestFPRateDropsWithMoreBits(t *testing.T) {
	const n = 5000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	rate := func(bits int) float64 {
		f := Build(keys, bits)
		fp := 0
		for i := 0; i < 20000; i++ {
			if f.MayContain(key(n + 50000 + i)) {
				fp++
			}
		}
		return float64(fp) / 20000
	}
	r4, r14 := rate(4), rate(14)
	if r14 >= r4 {
		t.Errorf("14 bits (%.4f) should beat 4 bits (%.4f)", r14, r4)
	}
}

func TestEmptyAndSmallFilters(t *testing.T) {
	f := Build(nil, DefaultBitsPerKey)
	if f.MayContain([]byte("anything")) {
		// Possible (tiny filter) but should be rare; not an error by
		// contract, so only sanity-check that the call is safe.
		t.Log("empty filter matched; acceptable but unusual")
	}
	var empty Filter
	if empty.MayContain([]byte("x")) {
		t.Error("nil filter must reject")
	}
	one := Build([][]byte{[]byte("solo")}, DefaultBitsPerKey)
	if !one.MayContain([]byte("solo")) {
		t.Error("single-key filter missed its key")
	}
}

func TestReservedProbeCount(t *testing.T) {
	f := Filter{0x00, 0x00, 31} // k=31 is reserved
	if !f.MayContain([]byte("k")) {
		t.Error("reserved encoding must match everything")
	}
}

func TestHashStability(t *testing.T) {
	// Regression anchors: the hash feeds on-disk filters, so it must
	// never change between versions.
	if Hash([]byte{}) != Hash([]byte{}) {
		t.Error("hash must be deterministic")
	}
	anchors := map[string]uint32{}
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		anchors[s] = Hash([]byte(s))
	}
	for s, h := range anchors {
		if Hash([]byte(s)) != h {
			t.Errorf("hash of %q unstable", s)
		}
	}
	if Hash([]byte("a")) == Hash([]byte("b")) {
		t.Error("distinct keys should hash apart (sanity)")
	}
}

func TestPropertyMembership(t *testing.T) {
	f := func(keys [][]byte, bits uint8) bool {
		bpk := int(bits%20) + 1
		filt := Build(keys, bpk)
		for _, k := range keys {
			if !filt.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild10k(b *testing.B) {
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%010d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(keys, DefaultBitsPerKey)
	}
}

func BenchmarkMayContain(b *testing.B) {
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%010d", i))
	}
	f := Build(keys, DefaultBitsPerKey)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}
