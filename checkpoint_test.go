package iamdb

import (
	"fmt"
	"testing"

	"iamdb/internal/vfs"
)

func TestCheckpointAndOpenCopy(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open("db", smallOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for i := 0; i < 3000; i++ {
		k, v := fmt.Sprintf("k%05d", i%2500), fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		ref[k] = v
	}
	if err := db.Checkpoint("backup"); err != nil {
		t.Fatal(err)
	}
	// Divergence after the checkpoint must not leak into the copy.
	db.Put([]byte("post-checkpoint"), []byte("x"))
	db.Delete([]byte("k00001"))

	cp, err := Open("backup", smallOpts(IAM, fs))
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	defer cp.Close()
	for k, v := range ref {
		got, err := cp.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("checkpoint %s = %q (%v) want %q", k, got, err, v)
		}
	}
	if _, err := cp.Get([]byte("post-checkpoint")); err != ErrNotFound {
		t.Fatal("post-checkpoint write leaked into the copy")
	}
	// Original still intact and diverged.
	if _, err := db.Get([]byte("k00001")); err != ErrNotFound {
		t.Fatal("original lost its post-checkpoint delete")
	}
	db.Close()
}

func TestCheckpointRefusesExistingDB(t *testing.T) {
	fs := vfs.NewMemFS()
	db, _ := Open("db", smallOpts(IAM, fs))
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	if err := db.Checkpoint("db2"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint("db2"); err == nil {
		t.Fatal("checkpoint over an existing database must fail")
	}
}

// TestCheckpointFailureLeavesNoManifest injects a fault at every
// destination-write index in turn and checks the commit protocol: a
// checkpoint that did not return success must never leave a MANIFEST
// at the destination, so a partial copy can never be opened as a valid
// database.
func TestCheckpointFailureLeavesNoManifest(t *testing.T) {
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem)
	db, err := Open("db", smallOpts(IAM, ffs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	sawFailure := false
	for n := 0; ; n++ {
		dst := fmt.Sprintf("ckpt%03d", n)
		// Scope the fault to the destination so the live DB (whose own
		// background work shares the filesystem) is unaffected.
		ffs.FailAfterPath(vfs.FaultWrite, dst+"/", n)
		err := db.Checkpoint(dst)
		ffs.Clear()
		if err == nil {
			if !sawFailure {
				t.Fatal("fault never fired; test exercised nothing")
			}
			break // fault index walked past the last destination write
		}
		sawFailure = true
		// No MANIFEST means no reader can mistake the partial copy for
		// a database: Open on the directory would start from scratch
		// rather than trust half-copied state.
		if mem.Exists(dst + "/MANIFEST") {
			t.Fatalf("failed checkpoint (fault at write %d) left a MANIFEST", n)
		}
		if n > 10000 {
			t.Fatal("fault index never walked past the checkpoint's writes")
		}
	}

	// Sync faults on the manifest copy must also leave no MANIFEST.
	dst := "ckpt-sync"
	ffs.FailAfterPath(vfs.FaultSync, dst+"/MANIFEST", 0)
	if err := db.Checkpoint(dst); err == nil {
		t.Fatal("checkpoint with failing manifest sync must error")
	}
	ffs.Clear()
	if mem.Exists(dst + "/MANIFEST") {
		t.Fatal("failed manifest sync left a MANIFEST at the destination")
	}
}

// TestCheckpointRenameFailureLeavesNoManifest is the rename-specific
// regression: the final rename that publishes MANIFEST is the commit
// point, so a rename fault must leave the destination unopenable (no
// MANIFEST) and a retry after the fault clears must produce a complete,
// correct copy.
func TestCheckpointRenameFailureLeavesNoManifest(t *testing.T) {
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem)
	db, err := Open("db", smallOpts(IAM, ffs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ref := map[string]string{}
	for i := 0; i < 2000; i++ {
		k, v := fmt.Sprintf("k%05d", i%1500), fmt.Sprintf("v%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}

	ffs.FailAfterPath(vfs.FaultRename, "MANIFEST", 0)
	if err := db.Checkpoint("backup"); err == nil {
		t.Fatal("checkpoint with failing manifest rename must error")
	}
	if mem.Exists("backup/MANIFEST") {
		t.Fatal("failed rename left a MANIFEST at the destination")
	}
	if mem.Exists("backup/MANIFEST.ckpt") {
		t.Fatal("failed rename left the temporary manifest behind")
	}

	// Retry once the fault clears: the destination becomes a complete,
	// openable copy.
	ffs.Clear()
	if err := db.Checkpoint("backup"); err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
	cp, err := Open("backup", smallOpts(IAM, mem))
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	defer cp.Close()
	for k, v := range ref {
		got, err := cp.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("checkpoint %s = %q (%v) want %q", k, got, err, v)
		}
	}
}
