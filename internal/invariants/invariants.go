// Package invariants provides build-tag-gated runtime assertions for
// the engine's hot paths.  Build with `-tags invariants` to enable
// them; without the tag, Enabled is a compile-time false and every
// guarded check is dead-code-eliminated — zero cost, zero allocations.
//
// Usage: guard each check with the constant so arguments are never
// evaluated in release builds:
//
//	if invariants.Enabled {
//		invariants.Assertf(a <= b, "range inverted: %d > %d", a, b)
//	}
package invariants

import "fmt"

// Assert panics with msg when cond is false.  Call only under an
// `if invariants.Enabled` guard.
func Assert(cond bool, msg string) {
	if !cond {
		panic("invariant violated: " + msg)
	}
}

// Assertf panics with a formatted message when cond is false.  Call
// only under an `if invariants.Enabled` guard so the format arguments
// are not evaluated (or boxed) in release builds.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
