// Package block implements the prefix-compressed key/value block shared
// by SSTables and MSTables.  The format is LevelDB's: entries store the
// length of the prefix shared with the previous key, a restart array at
// the block tail records offsets of entries stored with full keys, and
// lookups binary-search the restarts before scanning linearly.
//
//	entry   := shared(varint) unshared(varint) vlen(varint)
//	           key[shared:](unshared bytes) value(vlen bytes)
//	trailer := restart_offset(uint32) * n, restart_count(uint32)
//
// The paper sets data blocks to 4 KiB (Sec. 4.1); Builder treats that as
// a soft target checked by Full.
package block

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TargetSize is the paper's 4 KiB data-block size.
const TargetSize = 4 * 1024

// RestartInterval is the number of entries between full-key restarts.
const RestartInterval = 16

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("block: corrupt")

// Compare orders the keys stored in a block.  Blocks store internal
// keys, but the package only needs the ordering, supplied by callers.
type Compare func(a, b []byte) int

// Builder assembles one block.
type Builder struct {
	buf      []byte
	restarts []uint32
	counter  int
	lastKey  []byte
	n        int
}

// NewBuilder returns an empty block builder.
func NewBuilder() *Builder {
	return &Builder{restarts: []uint32{0}}
}

// Add appends a key/value pair.  Keys must arrive in strictly ascending
// order of the comparator the block will be read with; the builder
// cannot check that (internal-key order is not bytewise), but it does
// reject byte-identical consecutive keys, which are corrupt under any
// ordering.
func (b *Builder) Add(key, value []byte) {
	if b.n > 0 && b.counter != 0 && string(key) == string(b.lastKey) {
		panic(fmt.Sprintf("block: duplicate key %q", key))
	}
	shared := 0
	if b.counter < RestartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.n++
}

// Count reports how many entries the builder holds.
func (b *Builder) Count() int { return b.n }

// SizeEstimate reports the encoded size the block would have now.
func (b *Builder) SizeEstimate() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Full reports whether the block has reached the target size.
func (b *Builder) Full() bool { return b.SizeEstimate() >= TargetSize }

// Empty reports whether no entries have been added.
func (b *Builder) Empty() bool { return b.n == 0 }

// Finish encodes the restart trailer and returns the completed block.
// The builder is reset for reuse.
func (b *Builder) Finish() []byte {
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	out := b.buf
	b.buf = nil
	b.restarts = []uint32{0}
	b.counter = 0
	b.lastKey = nil
	b.n = 0
	return out
}

// Reader provides lookups and iteration over one encoded block.
type Reader struct {
	data       []byte // entries only, trailer stripped
	restarts   []uint32
	numRestart int
	cmp        Compare
}

// NewReader parses an encoded block.
func NewReader(data []byte, cmp Compare) (*Reader, error) {
	if len(data) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	trailer := 4 * (n + 1)
	if n <= 0 || trailer > len(data) {
		return nil, ErrCorrupt
	}
	restartStart := len(data) - trailer
	restarts := make([]uint32, n)
	for i := 0; i < n; i++ {
		restarts[i] = binary.LittleEndian.Uint32(data[restartStart+4*i:])
		if int(restarts[i]) > restartStart {
			return nil, ErrCorrupt
		}
	}
	return &Reader{data: data[:restartStart], restarts: restarts, numRestart: n, cmp: cmp}, nil
}

// decodeEntry parses the entry at off, returning the key suffix parts
// and value, plus the offset of the next entry.
func (r *Reader) decodeEntry(off int) (shared, unshared, vlen, keyOff int, err error) {
	p := r.data[off:]
	s, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		return 0, 0, 0, 0, ErrCorrupt
	}
	u, n2 := binary.Uvarint(p[n1:])
	if n2 <= 0 {
		return 0, 0, 0, 0, ErrCorrupt
	}
	v, n3 := binary.Uvarint(p[n1+n2:])
	if n3 <= 0 {
		return 0, 0, 0, 0, ErrCorrupt
	}
	keyOff = off + n1 + n2 + n3
	if keyOff+int(u)+int(v) > len(r.data) {
		return 0, 0, 0, 0, ErrCorrupt
	}
	return int(s), int(u), int(v), keyOff, nil
}

// Iter is a forward iterator over a block.  The usual pattern:
//
//	for it.First(); it.Valid(); it.Next() { ... }
//
// or Seek to start from the first key >= target.
type Iter struct {
	r     *Reader
	off   int // offset of current entry
	next  int // offset of next entry
	key   []byte
	value []byte
	err   error
	valid bool
}

// Iter returns a new iterator positioned before the first entry.
func (r *Reader) Iter() *Iter { return &Iter{r: r} }

// First positions at the first entry.
func (it *Iter) First() {
	it.next = 0
	it.key = it.key[:0]
	it.valid = false
	it.err = nil
	it.Next()
}

// Next advances to the following entry.
func (it *Iter) Next() {
	if it.err != nil {
		return
	}
	if it.next >= len(it.r.data) {
		it.valid = false
		return
	}
	shared, unshared, vlen, keyOff, err := it.r.decodeEntry(it.next)
	if err != nil {
		it.err = err
		it.valid = false
		return
	}
	if shared > len(it.key) {
		it.err = ErrCorrupt
		it.valid = false
		return
	}
	it.key = append(it.key[:shared], it.r.data[keyOff:keyOff+unshared]...)
	it.value = it.r.data[keyOff+unshared : keyOff+unshared+vlen]
	it.off = it.next
	it.next = keyOff + unshared + vlen
	it.valid = true
}

// Seek positions at the first entry with key >= target.
func (it *Iter) Seek(target []byte) {
	// Binary search restarts for the last restart whose key < target.
	lo, hi := 0, it.r.numRestart-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		off := int(it.r.restarts[mid])
		_, unshared, _, keyOff, err := it.r.decodeEntry(off)
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		fullKey := it.r.data[keyOff : keyOff+unshared] // restart entries have shared=0
		if it.r.cmp(fullKey, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.next = int(it.r.restarts[lo])
	it.key = it.key[:0]
	it.err = nil
	for {
		it.Next()
		if !it.valid || it.r.cmp(it.key, target) >= 0 {
			return
		}
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.valid }

// Key returns the current key; valid until the next positioning call.
func (it *Iter) Key() []byte { return it.key }

// Value returns the current value; it aliases the block buffer.
func (it *Iter) Value() []byte { return it.value }

// Err reports any corruption encountered.
func (it *Iter) Err() error { return it.err }

// Last positions at the final entry: walk forward from the last
// restart point until the block ends.
func (it *Iter) Last() {
	r := it.r
	it.err = nil
	it.valid = false
	if len(r.data) == 0 {
		return
	}
	it.next = int(r.restarts[r.numRestart-1])
	it.key = it.key[:0]
	for {
		it.Next()
		if !it.valid || it.next >= len(r.data) {
			return
		}
	}
}

// Prev moves to the entry before the current one, or invalidates at the
// front.  Cost is a forward walk from the nearest restart point, as in
// LevelDB.
func (it *Iter) Prev() {
	if !it.valid || it.err != nil {
		it.valid = false
		return
	}
	cur := it.off
	if cur == 0 {
		it.valid = false
		return
	}
	// Largest restart strictly before the current entry.
	lo, hi := 0, it.r.numRestart-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(it.r.restarts[mid]) < cur {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.next = int(it.r.restarts[lo])
	it.key = it.key[:0]
	it.valid = false
	for {
		before := it.next
		it.Next()
		if !it.valid || it.next > cur {
			// Should not happen on a well-formed block.
			it.valid = false
			return
		}
		if it.next == cur {
			_ = before
			return // positioned at the entry just before cur
		}
	}
}

// SeekForPrev positions at the last entry with key <= target.
func (it *Iter) SeekForPrev(target []byte) {
	it.Seek(target)
	if !it.valid {
		if it.err == nil {
			it.Last() // every key < target
		}
		return
	}
	if it.r.cmp(it.key, target) > 0 {
		it.Prev()
	}
}
