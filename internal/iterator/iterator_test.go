package iterator

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sliceOf(keys ...string) *Slice {
	var ks, vs [][]byte
	for _, k := range keys {
		ks = append(ks, []byte(k))
		vs = append(vs, []byte("v:"+k))
	}
	return NewSlice(bytes.Compare, ks, vs)
}

func collect(it Iterator) []string {
	var out []string
	for it.First(); it.Valid(); it.Next() {
		out = append(out, string(it.Key()))
	}
	return out
}

func TestSliceIterator(t *testing.T) {
	s := sliceOf("a", "c", "e")
	if got := collect(s); fmt.Sprint(got) != "[a c e]" {
		t.Fatalf("collect: %v", got)
	}
	s.Seek([]byte("b"))
	if !s.Valid() || string(s.Key()) != "c" {
		t.Fatalf("seek b: %q", s.Key())
	}
	if string(s.Value()) != "v:c" {
		t.Fatalf("value: %q", s.Value())
	}
	s.Seek([]byte("f"))
	if s.Valid() {
		t.Fatal("seek past end should invalidate")
	}
	s.Seek([]byte("a"))
	if !s.Valid() || string(s.Key()) != "a" {
		t.Fatal("seek exact first")
	}
}

func TestEmptyIterator(t *testing.T) {
	var e Empty
	e.First()
	if e.Valid() || e.Key() != nil || e.Err() != nil {
		t.Fatal("empty iterator misbehaves")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMergingBasic(t *testing.T) {
	m := NewMerging(bytes.Compare,
		sliceOf("a", "d", "g"),
		sliceOf("b", "e", "h"),
		sliceOf("c", "f", "i"),
	)
	got := collect(m)
	want := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge: %v", got)
	}
}

func TestMergingWithEmptyChildren(t *testing.T) {
	m := NewMerging(bytes.Compare, Empty{}, sliceOf("b"), Empty{}, sliceOf("a"))
	got := collect(m)
	if fmt.Sprint(got) != "[a b]" {
		t.Fatalf("merge: %v", got)
	}
	m2 := NewMerging(bytes.Compare, Empty{}, Empty{})
	if got := collect(m2); got != nil {
		t.Fatalf("all-empty merge: %v", got)
	}
	m3 := NewMerging(bytes.Compare)
	if got := collect(m3); got != nil {
		t.Fatalf("no-children merge: %v", got)
	}
}

func TestMergingTieBreakByOrder(t *testing.T) {
	// Children positioned at equal keys: earlier child wins.
	a := NewSlice(bytes.Compare, [][]byte{[]byte("k")}, [][]byte{[]byte("newer")})
	b := NewSlice(bytes.Compare, [][]byte{[]byte("k")}, [][]byte{[]byte("older")})
	m := NewMerging(bytes.Compare, a, b)
	m.First()
	if string(m.Value()) != "newer" {
		t.Fatalf("tie break: got %q", m.Value())
	}
	m.Next()
	if string(m.Value()) != "older" {
		t.Fatalf("second: got %q", m.Value())
	}
	m.Next()
	if m.Valid() {
		t.Fatal("should exhaust")
	}
}

func TestMergingSeek(t *testing.T) {
	m := NewMerging(bytes.Compare,
		sliceOf("a", "d", "g"),
		sliceOf("b", "e", "h"),
	)
	m.Seek([]byte("d"))
	var got []string
	for ; m.Valid(); m.Next() {
		got = append(got, string(m.Key()))
	}
	if fmt.Sprint(got) != "[d e g h]" {
		t.Fatalf("seek d: %v", got)
	}
	m.Seek([]byte("z"))
	if m.Valid() {
		t.Fatal("seek past end")
	}
	// Re-seek backwards is allowed (children re-seek).
	m.Seek([]byte("a"))
	if !m.Valid() || string(m.Key()) != "a" {
		t.Fatal("re-seek to start")
	}
}

func TestMergingLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var all []string
	var kids []Iterator
	for c := 0; c < 10; c++ {
		n := rng.Intn(200)
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("%08d", rng.Intn(1000000))
		}
		sort.Strings(keys)
		// Dedup within a child (Slice requires ascending, dups across
		// children are fine).
		uniq := keys[:0]
		for i, k := range keys {
			if i == 0 || k != keys[i-1] {
				uniq = append(uniq, k)
			}
		}
		all = append(all, uniq...)
		kids = append(kids, sliceOf(uniq...))
	}
	sort.Strings(all)
	m := NewMerging(bytes.Compare, kids...)
	got := collect(m)
	if len(got) != len(all) {
		t.Fatalf("len %d want %d", len(got), len(all))
	}
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("at %d: %q != %q", i, got[i], all[i])
		}
	}
}

func TestMergingPropertySortedOutput(t *testing.T) {
	f := func(a, b, c []uint16) bool {
		mk := func(xs []uint16) *Slice {
			ss := make([]string, len(xs))
			for i, x := range xs {
				ss[i] = fmt.Sprintf("%05d", x)
			}
			sort.Strings(ss)
			uniq := ss[:0]
			for i, s := range ss {
				if i == 0 || s != ss[i-1] {
					uniq = append(uniq, s)
				}
			}
			return sliceOf(uniq...)
		}
		m := NewMerging(bytes.Compare, mk(a), mk(b), mk(c))
		prev := ""
		n := 0
		for m.First(); m.Valid(); m.Next() {
			k := string(m.Key())
			if prev != "" && k < prev {
				return false
			}
			prev = k
			n++
		}
		return m.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMerging8Way(b *testing.B) {
	var kids []Iterator
	for c := 0; c < 8; c++ {
		keys := make([]string, 1000)
		for i := range keys {
			keys[i] = fmt.Sprintf("%03d%08d", c, i)
		}
		kids = append(kids, sliceOf(keys...))
	}
	m := NewMerging(bytes.Compare, kids...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for m.First(); m.Valid(); m.Next() {
			n++
		}
		if n != 8000 {
			b.Fatal(n)
		}
	}
}

func TestSliceReverse(t *testing.T) {
	s := sliceOf("a", "c", "e")
	s.Last()
	if !s.Valid() || string(s.Key()) != "e" {
		t.Fatalf("last: %q", s.Key())
	}
	s.Prev()
	if string(s.Key()) != "c" {
		t.Fatalf("prev: %q", s.Key())
	}
	s.Prev()
	s.Prev()
	if s.Valid() {
		t.Fatal("prev past front")
	}
	s.SeekForPrev([]byte("d"))
	if string(s.Key()) != "c" {
		t.Fatalf("seekforprev d: %q", s.Key())
	}
	s.SeekForPrev([]byte("c"))
	if string(s.Key()) != "c" {
		t.Fatalf("seekforprev exact: %q", s.Key())
	}
	s.SeekForPrev([]byte("z"))
	if string(s.Key()) != "e" {
		t.Fatalf("seekforprev past end: %q", s.Key())
	}
	s.SeekForPrev([]byte("A"))
	if s.Valid() {
		t.Fatal("seekforprev before all")
	}
}

func TestMergingReverse(t *testing.T) {
	m := NewMerging(bytes.Compare,
		sliceOf("a", "d", "g"),
		sliceOf("b", "e", "h"),
		sliceOf("c", "f", "i"),
	)
	var got []string
	for m.Last(); m.Valid(); m.Prev() {
		got = append(got, string(m.Key()))
	}
	if fmt.Sprint(got) != "[i h g f e d c b a]" {
		t.Fatalf("reverse merge: %v", got)
	}
	m.SeekForPrev([]byte("e"))
	got = nil
	for ; m.Valid(); m.Prev() {
		got = append(got, string(m.Key()))
	}
	if fmt.Sprint(got) != "[e d c b a]" {
		t.Fatalf("seekforprev e: %v", got)
	}
}

func TestMergingDirectionSwitch(t *testing.T) {
	m := NewMerging(bytes.Compare,
		sliceOf("a", "d", "g"),
		sliceOf("b", "e", "h"),
	)
	m.Seek([]byte("d"))
	if string(m.Key()) != "d" {
		t.Fatalf("seek: %q", m.Key())
	}
	// forward -> backward
	m.Prev()
	if string(m.Key()) != "b" {
		t.Fatalf("prev after seek: %q", m.Key())
	}
	m.Prev()
	if string(m.Key()) != "a" {
		t.Fatalf("prev: %q", m.Key())
	}
	// backward -> forward
	m.Next()
	if string(m.Key()) != "b" {
		t.Fatalf("next after prev: %q", m.Key())
	}
	m.Next()
	if string(m.Key()) != "d" {
		t.Fatalf("next: %q", m.Key())
	}
	// zig-zag stress against a reference.
	keys := []string{"a", "b", "d", "e", "g", "h"}
	pos := 2 // at "d"
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 200; step++ {
		if rng.Intn(2) == 0 {
			m.Next()
			pos++
		} else {
			if pos >= len(keys) {
				break // iterator exhausted; reference can't recover either
			}
			m.Prev()
			pos--
		}
		if pos < 0 || pos >= len(keys) {
			if m.Valid() {
				t.Fatalf("step %d: valid at pos %d (%q)", step, pos, m.Key())
			}
			break
		}
		if !m.Valid() || string(m.Key()) != keys[pos] {
			t.Fatalf("step %d: %q want %q", step, m.Key(), keys[pos])
		}
	}
}

func TestMergingReverseLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var all []string
	var kids []Iterator
	for c := 0; c < 6; c++ {
		n := 100 + rng.Intn(100)
		set := map[string]bool{}
		for i := 0; i < n; i++ {
			set[fmt.Sprintf("%06d", rng.Intn(100000))] = true
		}
		var ks []string
		for k := range set {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		all = append(all, ks...)
		kids = append(kids, sliceOf(ks...))
	}
	sort.Strings(all)
	m := NewMerging(bytes.Compare, kids...)
	i := len(all)
	for m.Last(); m.Valid(); m.Prev() {
		i--
		if string(m.Key()) != all[i] {
			t.Fatalf("at %d: %q want %q", i, m.Key(), all[i])
		}
	}
	if i != 0 {
		t.Fatalf("stopped %d early", i)
	}
}
