// Package directivebad exercises directive validation: an unknown
// directive kind and a misspelled pass name are themselves
// diagnostics, and a misspelled suppression suppresses nothing (the
// underlying finding still fires).  TestDirectiveValidation asserts
// the exact set.
package directivebad

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

//iamlint:bogus knob
func unknownKind() {}

func misspelledSuppression(b *box) {
	b.mu.Lock() //iamlint:ignore lockchek
	b.n++
}
