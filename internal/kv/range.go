package kv

import (
	"bytes"
	"fmt"
)

// Range is a closed interval [Lo, Hi] of user keys.  The zero Range is
// empty.  LSA/IAM nodes carry a Range; the ranges of the nodes within one
// on-disk level are disjoint and sorted but need not be contiguous.
type Range struct {
	Lo, Hi []byte
}

// MakeRange builds a range from two user keys in either order.
func MakeRange(a, b []byte) Range {
	if bytes.Compare(a, b) > 0 {
		a, b = b, a
	}
	return Range{Lo: cloneKey(a), Hi: cloneKey(b)}
}

// cloneKey copies a user key into a fresh, always non-nil slice so that
// an empty user key remains distinguishable from an unset range bound.
func cloneKey(k []byte) []byte {
	return append(make([]byte, 0, len(k)), k...)
}

// Empty reports whether the range holds no keys.  A range is empty only
// when both bounds are nil; a single-key range has Lo == Hi non-nil.
func (r Range) Empty() bool { return r.Lo == nil && r.Hi == nil }

// Contains reports whether the user key k falls inside the range.
func (r Range) Contains(k []byte) bool {
	if r.Empty() {
		return false
	}
	return bytes.Compare(r.Lo, k) <= 0 && bytes.Compare(k, r.Hi) <= 0
}

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return bytes.Compare(r.Lo, o.Hi) <= 0 && bytes.Compare(o.Lo, r.Hi) <= 0
}

// Before reports whether every key of r sorts strictly before every key
// of o.
func (r Range) Before(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return bytes.Compare(r.Hi, o.Lo) < 0
}

// Extend grows the range to include the user key k and returns the
// result.  Extending an empty range yields the single-key range [k, k].
func (r Range) Extend(k []byte) Range {
	if r.Empty() {
		return MakeRange(k, k)
	}
	if bytes.Compare(k, r.Lo) < 0 {
		r.Lo = cloneKey(k)
	}
	if bytes.Compare(k, r.Hi) > 0 {
		r.Hi = cloneKey(k)
	}
	return r
}

// Union returns the smallest range covering both r and o.
func (r Range) Union(o Range) Range {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	out := r
	if bytes.Compare(o.Lo, out.Lo) < 0 {
		out.Lo = o.Lo
	}
	if bytes.Compare(o.Hi, out.Hi) > 0 {
		out.Hi = o.Hi
	}
	return out
}

// DistanceHint gives a coarse, comparator-only notion of how close key k
// is to the range: 0 if inside, 1 if adjacent ordering-wise.  For
// partitioning records that fall outside all children, the paper assigns
// them to the child with the closest range; with an opaque byte
// comparator "closest" reduces to picking between the neighbor below and
// the neighbor above, which callers resolve with Before/Contains.
func (r Range) DistanceHint(k []byte) int {
	if r.Contains(k) {
		return 0
	}
	return 1
}

func (r Range) String() string {
	if r.Empty() {
		return "{}"
	}
	return fmt.Sprintf("{%q,%q}", r.Lo, r.Hi)
}
