// Package table implements the MSTable (Multiple Sequence Table), the
// on-disk node format of LSA- and IAM-trees (Sec. 4.1), and the SSTable
// as its single-sequence special case used by the LSM baselines.
//
// File layout, as described in the paper: record blocks (4 KiB) fill the
// file from the beginning toward the end; the metadata — a per-sequence
// index block and Bloom filter — starts from the end and grows in the
// opposite direction; the middle is a hole reserved for future appends:
//
//	+--------------------------------------------------------------+
//	| seq0 blocks | seq1 blocks | ... |   hole   | metadata | foot |
//	+--------------------------------------------------------------+
//	0          dataEnd                        metaOff       capacity
//
// Each append writes new data blocks at dataEnd and a fresh copy of the
// (small) metadata region at the tail.  When the two fronts would
// collide, Append fails with ErrNoSpace and the caller falls back to a
// merge — exactly the degradation path IAM's flush strategy uses.
//
// The tail commit is crash-safe: metadata is never overwritten in
// place — each append writes the new metadata *below* the previous
// copy (the hole pays for dead copies until the next merge rewrites the
// file) — and the footer is two 48-byte generation-stamped slots,
// written alternately.  A torn or bit-flipped in-flight write can
// therefore only land in virgin hole space or destroy the standby
// footer slot; Open picks the valid slot with the highest generation
// and verifies a CRC over the metadata it points at, so the file always
// reopens at the last synced commit.
package table

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"iamdb/internal/block"
	"iamdb/internal/bloom"
	"iamdb/internal/cache"
	"iamdb/internal/corrupt"
	"iamdb/internal/invariants"
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/vfs"
)

const (
	magic   = 0x4d53544247313921 // "MSTBG19!"
	version = 2

	// footerSlot is one generation-stamped footer: magic(8) version(4)
	// seqCount(4) metaOff(8) metaLen(8) metaCRC(4) gen(8) crc(4).
	footerSlot = 48
	// tailLen is the two alternating footer slots at the end of the
	// file; the slot for generation g lives at capacity-tailLen+g%2*footerSlot.
	tailLen = 2 * footerSlot
)

var (
	// ErrNoSpace reports that an append would collide with the
	// metadata region; the caller should merge instead.
	ErrNoSpace = errors.New("table: no space for append")
	// ErrCorrupt reports a malformed table file.
	ErrCorrupt = errors.New("table: corrupt")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SeqMeta describes one sorted sequence inside an MSTable.
type SeqMeta struct {
	Entries  uint64
	DataOff  uint64
	DataLen  uint64
	Smallest []byte // internal key
	Largest  []byte // internal key
	Bloom    bloom.Filter
	RawIndex []byte
}

// Table is an open MSTable.  Methods are safe for concurrent readers;
// Append must be externally serialized with respect to readers of the
// same Table (the engines guarantee this via their version sets).
type Table struct {
	fs       vfs.FS
	f        vfs.File
	name     string
	id       uint64
	capacity int64
	cache    *cache.Cache
	bitsKey  int
	compress bool

	// mu guards seqs and dataEnd: the engines serialize appenders, but
	// readers run concurrently with one appender, so the commit of a
	// new sequence must be atomic with respect to them.  Existing
	// SeqMeta entries are never modified, so readers may use a
	// snapshot of the slice header without further locking.
	mu      sync.RWMutex
	dataEnd int64
	seqs    []SeqMeta // oldest first; appends push back

	// metaFloor and gen belong to the appender (like the write side of
	// dataEnd): metaFloor is the start of the last committed metadata
	// copy — the next copy is written strictly below it — and gen is
	// the committed footer generation.  metaLen is the committed copy's
	// length, kept for Verify's raw re-read.
	metaFloor int64
	metaLen   int64
	gen       uint64

	// suspect records lost-commit evidence noticed at Open: a non-zero
	// footer slot that failed validation, or a higher-generation
	// candidate whose metadata did not check out before a lower one was
	// accepted.  Crash recovery legitimately produces both signatures
	// (a torn in-flight footer write), so the table stays readable; the
	// DB layer quarantines it conservatively.
	suspect *corrupt.Error
}

// Suspect reports the lost-commit evidence noticed when the table was
// opened, or nil when both footer slots told a consistent story.
func (t *Table) Suspect() error {
	if t.suspect == nil {
		return nil
	}
	return t.suspect
}

// snapshotSeqs returns the current sequence list for lock-free reads.
func (t *Table) snapshotSeqs() []SeqMeta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seqs
}

// Options configure table creation and opening.
type Options struct {
	// Cache, if non-nil, holds data blocks read from this table.
	Cache *cache.Cache
	// BitsPerKey sets Bloom density; 0 means the paper's 14.
	BitsPerKey int
	// Compression enables flate compression of data blocks.  The
	// paper's experiments keep it off (Sec. 6.1); readers handle both
	// forms transparently.
	Compression bool
}

func (o Options) bits() int {
	if o.BitsPerKey <= 0 {
		return bloom.DefaultBitsPerKey
	}
	return o.BitsPerKey
}

// MinCapacity is the smallest usable table file: the dual-slot footer
// tail plus room for a few data blocks and the meta section the
// appender reserves.  Callers sizing files from tiny test
// configurations clamp to this floor.
const MinCapacity = tailLen + 4*block.TargetSize

// Create makes a new empty MSTable with the given fixed capacity and
// numeric id (used as the block-cache identity).
func Create(fs vfs.FS, name string, id uint64, capacity int64, opt Options) (*Table, error) {
	if capacity < MinCapacity {
		return nil, fmt.Errorf("table: capacity %d too small", capacity)
	}
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	t := &Table{fs: fs, f: f, name: name, id: id, capacity: capacity,
		cache: opt.Cache, bitsKey: opt.bits(), compress: opt.Compression,
		metaFloor: capacity - tailLen}
	if err := t.writeMeta(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return t, nil
}

// footerInfo is one decoded footer slot.
type footerInfo struct {
	seqCount int
	metaOff  int64
	metaLen  int64
	metaCRC  uint32
	gen      uint64
}

// parseFooter decodes one footer slot, returning ok=false when the slot
// is empty, torn, or corrupted — the caller falls back to the other.
func parseFooter(p []byte) (footerInfo, bool) {
	if binary.LittleEndian.Uint64(p[0:8]) != magic {
		return footerInfo{}, false
	}
	if binary.LittleEndian.Uint32(p[8:12]) != version {
		return footerInfo{}, false
	}
	if crc32.Checksum(p[:footerSlot-4], castagnoli) != binary.LittleEndian.Uint32(p[footerSlot-4:footerSlot]) {
		return footerInfo{}, false
	}
	return footerInfo{
		seqCount: int(binary.LittleEndian.Uint32(p[12:16])),
		metaOff:  int64(binary.LittleEndian.Uint64(p[16:24])),
		metaLen:  int64(binary.LittleEndian.Uint64(p[24:32])),
		metaCRC:  binary.LittleEndian.Uint32(p[32:36]),
		gen:      binary.LittleEndian.Uint64(p[36:44]),
	}, true
}

// Open reads an existing MSTable's footers and metadata, committing to
// the highest-generation slot whose metadata checks out.
func Open(fs vfs.FS, name string, id uint64, opt Options) (*Table, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if size < tailLen {
		_ = f.Close()
		return nil, corrupt.New(corrupt.LayerTableFooter, name, size, ErrCorrupt,
			"file shorter than footer tail")
	}
	var tail [tailLen]byte
	if _, err := f.ReadAt(tail[:], size-tailLen); err != nil {
		_ = f.Close()
		return nil, err
	}
	// A slot that fails validation without being virgin zeros is either
	// a torn in-flight footer write (crash) or rot of a committed slot;
	// the two are indistinguishable by content, so remember the first
	// such finding and let the caller quarantine conservatively.
	var suspect *corrupt.Error
	note := func(layer string, off int64, detail string, got, want uint32) {
		if suspect == nil {
			suspect = corrupt.New(layer, name, off, ErrCorrupt, detail).WithCRC(got, want)
		}
	}
	var cands []footerInfo
	for s := 0; s < 2; s++ {
		slot := tail[s*footerSlot : (s+1)*footerSlot]
		if fi, ok := parseFooter(slot); ok {
			cands = append(cands, fi)
			continue
		}
		if !allZero(slot) {
			note(corrupt.LayerTableFooter, size-tailLen+int64(s*footerSlot),
				"non-empty footer slot fails validation", 0, 0)
		}
	}
	if len(cands) == 2 && cands[0].gen < cands[1].gen {
		cands[0], cands[1] = cands[1], cands[0]
	}
	for _, fi := range cands {
		if fi.metaOff < 0 || fi.metaLen < 0 || fi.metaOff+fi.metaLen > size-tailLen {
			note(corrupt.LayerTableMeta, fi.metaOff,
				fmt.Sprintf("gen %d metadata pointer out of bounds", fi.gen), 0, 0)
			continue
		}
		raw := make([]byte, fi.metaLen)
		if fi.metaLen > 0 {
			if _, err := f.ReadAt(raw, fi.metaOff); err != nil {
				note(corrupt.LayerTableMeta, fi.metaOff,
					fmt.Sprintf("gen %d metadata unreadable: %v", fi.gen, err), 0, 0)
				continue
			}
		}
		if got := crc32.Checksum(raw, castagnoli); got != fi.metaCRC {
			note(corrupt.LayerTableMeta, fi.metaOff,
				fmt.Sprintf("gen %d metadata checksum mismatch", fi.gen), fi.metaCRC, got)
			continue
		}
		t := &Table{fs: fs, f: f, name: name, id: id, capacity: size,
			cache: opt.Cache, bitsKey: opt.bits(), compress: opt.Compression,
			metaFloor: fi.metaOff, metaLen: fi.metaLen, gen: fi.gen, suspect: suspect}
		if err := t.parseMeta(raw, fi.seqCount); err != nil {
			t.seqs = nil
			note(corrupt.LayerTableMeta, fi.metaOff,
				fmt.Sprintf("gen %d metadata malformed: %v", fi.gen, err), 0, 0)
			continue
		}
		t.suspect = suspect
		for _, s := range t.seqs {
			if end := int64(s.DataOff + s.DataLen); end > t.dataEnd {
				t.dataEnd = end
			}
		}
		return t, nil
	}
	_ = f.Close()
	if suspect != nil {
		return nil, suspect
	}
	return nil, corrupt.New(corrupt.LayerTableFooter, name, size-tailLen, ErrCorrupt,
		"no valid footer")
}

func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// writeMeta serializes all sequence metadata into fresh tail space
// below the last committed copy and commits it by writing the next
// generation's footer slot.  Nothing the previous generation depends on
// is touched, so a crash anywhere in here leaves the old commit intact.
// Returns ErrNoSpace if metadata would collide with data.
func (t *Table) writeMeta() error {
	var buf []byte
	for _, s := range t.seqs {
		buf = binary.AppendUvarint(buf, s.Entries)
		buf = binary.AppendUvarint(buf, s.DataOff)
		buf = binary.AppendUvarint(buf, s.DataLen)
		buf = appendBytes(buf, s.Smallest)
		buf = appendBytes(buf, s.Largest)
		buf = appendBytes(buf, s.Bloom)
		buf = appendBytes(buf, s.RawIndex)
	}
	metaOff := t.metaFloor - int64(len(buf))
	if metaOff < t.dataEnd {
		return ErrNoSpace
	}
	if len(buf) > 0 {
		if _, err := t.f.WriteAt(buf, metaOff); err != nil {
			return err
		}
	}
	gen := t.gen + 1
	var foot [footerSlot]byte
	binary.LittleEndian.PutUint64(foot[0:8], magic)
	binary.LittleEndian.PutUint32(foot[8:12], version)
	binary.LittleEndian.PutUint32(foot[12:16], uint32(len(t.seqs)))
	binary.LittleEndian.PutUint64(foot[16:24], uint64(metaOff))
	binary.LittleEndian.PutUint64(foot[24:32], uint64(len(buf)))
	binary.LittleEndian.PutUint32(foot[32:36], crc32.Checksum(buf, castagnoli))
	binary.LittleEndian.PutUint64(foot[36:44], gen)
	binary.LittleEndian.PutUint32(foot[44:48], crc32.Checksum(foot[:44], castagnoli))
	slot := int64(gen % 2)
	if _, err := t.f.WriteAt(foot[:], t.capacity-tailLen+slot*footerSlot); err != nil {
		return err
	}
	t.gen = gen
	t.metaFloor = metaOff
	t.metaLen = int64(len(buf))
	return nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func readBytes(p []byte) ([]byte, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || uint64(len(p)-w) < n {
		return nil, nil, ErrCorrupt
	}
	return p[w : w+int(n)], p[w+int(n):], nil
}

func (t *Table) parseMeta(raw []byte, seqCount int) error {
	p := raw
	for i := 0; i < seqCount; i++ {
		var s SeqMeta
		var w int
		s.Entries, w = binary.Uvarint(p)
		if w <= 0 {
			return ErrCorrupt
		}
		p = p[w:]
		s.DataOff, w = binary.Uvarint(p)
		if w <= 0 {
			return ErrCorrupt
		}
		p = p[w:]
		s.DataLen, w = binary.Uvarint(p)
		if w <= 0 {
			return ErrCorrupt
		}
		p = p[w:]
		var err error
		if s.Smallest, p, err = readBytes(p); err != nil {
			return err
		}
		if s.Largest, p, err = readBytes(p); err != nil {
			return err
		}
		var bl []byte
		if bl, p, err = readBytes(p); err != nil {
			return err
		}
		s.Bloom = bloom.Filter(bl)
		if s.RawIndex, p, err = readBytes(p); err != nil {
			return err
		}
		t.seqs = append(t.seqs, s)
	}
	return nil
}

// Close releases the file handle.
func (t *Table) Close() error { return t.f.Close() }

// Name returns the file name the table was opened with.
func (t *Table) Name() string { return t.name }

// ID returns the table's cache identity.
func (t *Table) ID() uint64 { return t.id }

// Capacity returns the fixed file capacity.
func (t *Table) Capacity() int64 { return t.capacity }

// NumSeqs reports how many sorted sequences the table holds.
func (t *Table) NumSeqs() int { return len(t.snapshotSeqs()) }

// DataSize reports the bytes of record blocks (excludes hole/metadata).
func (t *Table) DataSize() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dataEnd
}

// MetaSize reports the serialized metadata size.
func (t *Table) MetaSize() int64 {
	var n int64
	for _, s := range t.snapshotSeqs() {
		n += int64(len(s.Smallest) + len(s.Largest) + len(s.Bloom) + len(s.RawIndex) + 24)
	}
	return n
}

// UsedBytes reports data + metadata + footers: the space the table
// would occupy on a hole-punching filesystem.  Figure 10 sums this.
func (t *Table) UsedBytes() int64 { return t.DataSize() + t.MetaSize() + tailLen }

// Entries reports the total record count across sequences.
func (t *Table) Entries() uint64 {
	var n uint64
	for _, s := range t.snapshotSeqs() {
		n += s.Entries
	}
	return n
}

// SeqMetaAt returns sequence i's metadata (oldest first).
func (t *Table) SeqMetaAt(i int) SeqMeta { return t.snapshotSeqs()[i] }

// SeqDataLen returns the data bytes of sequence i.
func (t *Table) SeqDataLen(i int) int64 { return int64(t.snapshotSeqs()[i].DataLen) }

// UserRange returns the user-key range covered by all sequences.
func (t *Table) UserRange() kv.Range {
	var r kv.Range
	for _, s := range t.snapshotSeqs() {
		if s.Entries == 0 {
			continue
		}
		r = r.Extend(kv.UserKey(s.Smallest))
		r = r.Extend(kv.UserKey(s.Largest))
	}
	return r
}

// ResidentBytes reports how much of this table the block cache holds.
func (t *Table) ResidentBytes() int64 {
	if t.cache == nil {
		return 0
	}
	return t.cache.ResidentBytes(t.id)
}

// EvictBlocks drops this table's blocks from the cache (on deletion).
func (t *Table) EvictBlocks() {
	if t.cache != nil {
		t.cache.EvictTable(t.id)
	}
}

// Each data block carries a trailer: one compression-type byte
// followed by a CRC32-C over payload+type, verified on every uncached
// read so a flipped bit surfaces as ErrCorrupt instead of silent wrong
// results.  The paper's experiments run with compression off
// (Sec. 6.1), which is the default here too.
const blockTrailerLen = 5

const (
	blockRaw   = 0
	blockFlate = 1
)

// verifyBlockAt checks a data block's CRC trailer and returns the
// decoded (decompressed if needed) payload.  Failures come back as a
// *corrupt.Error attributed to name/off.
func verifyBlockAt(raw []byte, name string, off uint64) ([]byte, error) {
	if len(raw) < blockTrailerLen {
		return nil, corrupt.New(corrupt.LayerTableBlock, name, int64(off), ErrCorrupt, "short block")
	}
	body := raw[:len(raw)-4]
	stored := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if computed := crc32.Checksum(body, castagnoli); computed != stored {
		return nil, corrupt.New(corrupt.LayerTableBlock, name, int64(off), ErrCorrupt,
			"block checksum mismatch").WithCRC(stored, computed)
	}
	payload := body[:len(body)-1]
	switch body[len(body)-1] {
	case blockRaw:
		return payload, nil
	case blockFlate:
		r := flate.NewReader(bytes.NewReader(payload))
		out, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			return nil, corrupt.New(corrupt.LayerTableBlock, name, int64(off), ErrCorrupt,
				fmt.Sprintf("flate: %v", err))
		}
		return out, nil
	default:
		return nil, corrupt.New(corrupt.LayerTableBlock, name, int64(off), ErrCorrupt,
			fmt.Sprintf("unknown block compression %d", body[len(body)-1]))
	}
}

// encodeBlock applies the trailer (and optional compression) to an
// encoded block.
func encodeBlock(enc []byte, compress bool) []byte {
	typ := byte(blockRaw)
	if compress {
		var buf bytes.Buffer
		w, _ := flate.NewWriter(&buf, flate.BestSpeed)
		w.Write(enc)
		w.Close()
		if buf.Len() < len(enc) {
			enc = buf.Bytes()
			typ = blockFlate
		}
	}
	enc = append(enc, typ)
	return binary.LittleEndian.AppendUint32(enc, crc32.Checksum(enc, castagnoli))
}

func (t *Table) readBlock(off, length uint64) ([]byte, error) {
	if t.cache != nil {
		if b := t.cache.Get(t.id, off); b != nil {
			return b, nil // cached blocks are stored verified
		}
	}
	buf := make([]byte, length)
	if _, err := t.f.ReadAt(buf, int64(off)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, corrupt.New(corrupt.LayerTableBlock, t.name, int64(off), ErrCorrupt,
				"block extends past end of file")
		}
		return nil, err
	}
	payload, err := verifyBlockAt(buf, t.name, off)
	if err != nil {
		return nil, err
	}
	if t.cache != nil {
		t.cache.Set(t.id, off, payload)
	}
	return payload, nil
}

// AppendResult reports what an append wrote.
type AppendResult struct {
	Entries uint64
	// Bytes is the total bytes written: data blocks plus the rewritten
	// metadata region and footer.  Engines attribute this to the
	// destination level for write-amplification accounting.
	Bytes int64
	// More is true when AppendFrom stopped at its size limit with the
	// input iterator still valid.
	More bool
}

// Append writes all records produced by it (ascending internal keys) as
// a new sorted sequence.  On ErrNoSpace the table's logical state is
// unchanged and the caller should merge instead.
func (t *Table) Append(it iterator.Iterator) (AppendResult, error) {
	it.First()
	return t.AppendFrom(it, 1<<62)
}

// AppendFrom writes records from an already-positioned iterator as one
// new sequence, stopping once the sequence's data size exceeds limit
// (always finishing the current user key, so all versions of a key stay
// in one node).  The iterator is left positioned at the first unwritten
// record; Result.More reports whether any remain.
func (t *Table) AppendFrom(it iterator.Iterator, limit int64) (AppendResult, error) {
	// On any failure, data blocks already written past the old dataEnd
	// are garbage in the hole; the metadata still describes only the
	// old sequences, so there is nothing to undo on disk.
	w := &seqWriter{t: t, startOff: t.dataEnd}
	var lastUser []byte
	for ; it.Valid(); it.Next() {
		u := kv.UserKey(it.Key())
		if w.entries > 0 && w.off-w.startOff >= limit && !sameBytes(u, lastUser) {
			break
		}
		if err := w.add(it.Key(), it.Value()); err != nil {
			return AppendResult{}, err
		}
		lastUser = append(lastUser[:0], u...)
	}
	if err := it.Err(); err != nil {
		return AppendResult{}, err
	}
	meta, err := w.finish()
	if err != nil {
		return AppendResult{}, err
	}
	if meta.Entries == 0 {
		return AppendResult{More: it.Valid()}, nil
	}
	t.mu.Lock()
	t.seqs = append(t.seqs, meta)
	t.dataEnd = w.off
	t.mu.Unlock()
	if err := t.writeMeta(); err != nil {
		t.mu.Lock()
		t.seqs = t.seqs[:len(t.seqs)-1]
		t.dataEnd = w.startOff
		t.mu.Unlock()
		return AppendResult{}, err
	}
	res := AppendResult{
		Entries: meta.Entries,
		Bytes:   int64(meta.DataLen) + t.MetaSize() + footerSlot,
		More:    it.Valid(),
	}
	return res, nil
}

// Sync flushes the table file.
func (t *Table) Sync() error { return t.f.Sync() }

// VerifyStats reports what a Verify pass covered.
type VerifyStats struct {
	Seqs    int
	Blocks  int64
	Bytes   int64
	Entries uint64
}

// Verify re-reads the table from disk and checks everything the format
// protects: footer + metadata discovery (the same procedure Open
// uses), every data block's CRC (bypassing the cache — scrub checks
// the disk, not memory), index structure, record ordering, record
// containment in the sequence bounds, Bloom membership of every user
// key, and per-sequence entry counts.  onBlock, when non-nil, runs
// after each verified data block with its on-disk size, for progress
// counting and rate limiting.  The first failure is returned as a
// *corrupt.Error.  Safe against a concurrent appender: committed
// sequences and their blocks are immutable, and at least one footer
// slot is always intact mid-commit.
func (t *Table) Verify(onBlock func(n int64)) (VerifyStats, error) {
	var st VerifyStats
	size, err := t.f.Size()
	if err != nil {
		return st, err
	}
	if size < tailLen {
		return st, corrupt.New(corrupt.LayerTableFooter, t.name, size, ErrCorrupt,
			"file shorter than footer tail")
	}
	var tail [tailLen]byte
	if _, err := t.f.ReadAt(tail[:], size-tailLen); err != nil {
		return st, err
	}
	footOK := false
	for s := 0; s < 2 && !footOK; s++ {
		fi, valid := parseFooter(tail[s*footerSlot : (s+1)*footerSlot])
		if !valid || fi.metaOff < 0 || fi.metaLen < 0 || fi.metaOff+fi.metaLen > size-tailLen {
			continue
		}
		raw := make([]byte, fi.metaLen)
		if fi.metaLen > 0 {
			if _, err := t.f.ReadAt(raw, fi.metaOff); err != nil {
				continue
			}
		}
		footOK = crc32.Checksum(raw, castagnoli) == fi.metaCRC
	}
	if !footOK {
		return st, corrupt.New(corrupt.LayerTableFooter, t.name, size-tailLen, ErrCorrupt,
			"no footer slot with intact metadata")
	}

	seqs := t.snapshotSeqs()
	for i := range seqs {
		s := &seqs[i]
		st.Seqs++
		if s.Entries == 0 {
			continue
		}
		idx, err := block.NewReader(s.RawIndex, kv.CompareInternal)
		if err != nil {
			return st, t.metaCorrupt(err, fmt.Sprintf("seq %d index malformed", i))
		}
		var count uint64
		var prev []byte
		ii := idx.Iter()
		for ii.First(); ii.Valid(); ii.Next() {
			off, n := binary.Uvarint(ii.Value())
			if n <= 0 {
				return st, t.metaCorrupt(ErrCorrupt, fmt.Sprintf("seq %d index handle malformed", i))
			}
			length, n2 := binary.Uvarint(ii.Value()[n:])
			if n2 <= 0 {
				return st, t.metaCorrupt(ErrCorrupt, fmt.Sprintf("seq %d index handle malformed", i))
			}
			buf := make([]byte, length)
			if _, err := t.f.ReadAt(buf, int64(off)); err != nil {
				return st, t.blockCorrupt(off, ErrCorrupt, fmt.Sprintf("block unreadable: %v", err))
			}
			payload, err := verifyBlockAt(buf, t.name, off)
			if err != nil {
				return st, err
			}
			br, err := block.NewReader(payload, kv.CompareInternal)
			if err != nil {
				return st, t.blockCorrupt(off, err, "block structure invalid despite valid checksum")
			}
			bi := br.Iter()
			for bi.First(); bi.Valid(); bi.Next() {
				k := bi.Key()
				if len(prev) > 0 && kv.CompareInternal(prev, k) >= 0 {
					return st, t.blockCorrupt(off, ErrCorrupt, "records out of order")
				}
				prev = append(prev[:0], k...)
				user, _, _, keyOK := kv.ParseInternalKey(k)
				if !keyOK {
					return st, t.blockCorrupt(off, ErrCorrupt, "record key malformed")
				}
				if kv.CompareInternal(k, s.Smallest) < 0 || kv.CompareInternal(k, s.Largest) > 0 {
					return st, t.blockCorrupt(off, ErrCorrupt, "record outside sequence bounds")
				}
				if !s.Bloom.MayContain(user) {
					return st, t.metaCorrupt(ErrCorrupt,
						fmt.Sprintf("seq %d bloom filter misses a present key", i))
				}
				count++
			}
			if err := bi.Err(); err != nil {
				return st, t.blockCorrupt(off, err, "block iterator corruption")
			}
			st.Blocks++
			st.Bytes += int64(length)
			if onBlock != nil {
				onBlock(int64(length))
			}
		}
		if err := ii.Err(); err != nil {
			return st, t.metaCorrupt(err, fmt.Sprintf("seq %d index iterator corruption", i))
		}
		if count != s.Entries {
			return st, t.metaCorrupt(ErrCorrupt,
				fmt.Sprintf("seq %d holds %d records, metadata claims %d", i, count, s.Entries))
		}
		st.Entries += count
	}
	return st, nil
}

// seqWriter streams one sorted sequence into the data region.
type seqWriter struct {
	t         *Table
	startOff  int64
	off       int64
	bb        *block.Builder
	ib        *block.Builder
	bloomKeys [][]byte
	lastUser  []byte
	smallest  []byte
	largest   []byte
	lastKey   []byte
	entries   uint64
}

func (w *seqWriter) add(ikey, val []byte) error {
	if w.bb == nil {
		w.bb = block.NewBuilder()
		w.ib = block.NewBuilder()
		w.off = w.startOff
	}
	if w.entries == 0 {
		w.smallest = append([]byte(nil), ikey...)
	}
	if invariants.Enabled {
		// Sequences must be written in strictly ascending internal-key
		// order or Get/iterators silently return wrong results.
		invariants.Assertf(w.entries == 0 || kv.CompareInternal(w.lastKey, ikey) < 0,
			"append out of order: %x then %x", w.lastKey, ikey)
	}
	w.lastKey = append(w.lastKey[:0], ikey...)
	u := kv.UserKey(ikey)
	if !sameBytes(u, w.lastUser) {
		w.bloomKeys = append(w.bloomKeys, append([]byte(nil), u...))
		w.lastUser = append(w.lastUser[:0], u...)
	}
	w.bb.Add(ikey, val)
	w.entries++
	if w.bb.Full() {
		return w.flushBlock()
	}
	return nil
}

func (w *seqWriter) flushBlock() error {
	if w.bb.Empty() {
		return nil
	}
	enc := encodeBlock(w.bb.Finish(), w.t.compress)
	// Guard against colliding with the metadata region: the new copy
	// goes below metaFloor, so leave room under it for the metadata of
	// existing sequences plus this one.
	reserve := w.t.MetaSize() + int64(w.ib.SizeEstimate()) + int64(len(w.bloomKeys)*2) + 4096
	if w.off+int64(len(enc))+reserve > w.t.metaFloor {
		return ErrNoSpace
	}
	if _, err := w.t.f.WriteAt(enc, w.off); err != nil {
		return err
	}
	var hv []byte
	hv = binary.AppendUvarint(hv, uint64(w.off))
	hv = binary.AppendUvarint(hv, uint64(len(enc)))
	w.ib.Add(w.lastKey, hv)
	w.off += int64(len(enc))
	return nil
}

func (w *seqWriter) finish() (SeqMeta, error) {
	if w.entries == 0 {
		return SeqMeta{}, nil
	}
	if err := w.flushBlock(); err != nil {
		return SeqMeta{}, err
	}
	w.largest = append([]byte(nil), w.lastKey...)
	return SeqMeta{
		Entries:  w.entries,
		DataOff:  uint64(w.startOff),
		DataLen:  uint64(w.off - w.startOff),
		Smallest: w.smallest,
		Largest:  w.largest,
		Bloom:    bloom.Build(w.bloomKeys, w.t.bitsKey),
		RawIndex: w.ib.Finish(),
	}, nil
}

func sameBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get looks up the newest record for ukey visible at snapshot seq.
// It searches sequences newest-first, consulting Bloom filters, and
// stops at the first hit (Sec. 5.2).  The returned value aliases cache
// or freshly-read memory and must be copied if retained.
// found=false means no sequence holds any visible version of ukey.
func (t *Table) Get(ukey []byte, snap kv.Seq) (val []byte, kind kv.Kind, seq kv.Seq, found bool, err error) {
	target := kv.MakeInternalKey(ukey, snap, kv.MaxKind)
	seqs := t.snapshotSeqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		s := &seqs[i]
		if s.Entries == 0 || !s.Bloom.MayContain(ukey) {
			continue
		}
		// Quick range rejection on user keys.
		if kv.CompareUser(ukey, kv.UserKey(s.Smallest)) < 0 ||
			kv.CompareUser(ukey, kv.UserKey(s.Largest)) > 0 {
			continue
		}
		v, k, sq, ok, err := t.getInSeq(s, ukey, target)
		if err != nil {
			return nil, 0, 0, false, err
		}
		if ok {
			return v, k, sq, true, nil
		}
	}
	return nil, 0, 0, false, nil
}

func (t *Table) getInSeq(s *SeqMeta, ukey, target []byte) ([]byte, kv.Kind, kv.Seq, bool, error) {
	idx, err := block.NewReader(s.RawIndex, kv.CompareInternal)
	if err != nil {
		return nil, 0, 0, false, t.metaCorrupt(err, "index block malformed")
	}
	ii := idx.Iter()
	ii.Seek(target)
	if !ii.Valid() {
		return nil, 0, 0, false, t.wrapIterErr(ii.Err())
	}
	off, n := binary.Uvarint(ii.Value())
	if n <= 0 {
		return nil, 0, 0, false, t.metaCorrupt(ErrCorrupt, "index handle malformed")
	}
	length, n2 := binary.Uvarint(ii.Value()[n:])
	if n2 <= 0 {
		return nil, 0, 0, false, t.metaCorrupt(ErrCorrupt, "index handle malformed")
	}
	data, err := t.readBlock(off, length)
	if err != nil {
		return nil, 0, 0, false, err
	}
	br, err := block.NewReader(data, kv.CompareInternal)
	if err != nil {
		return nil, 0, 0, false, t.blockCorrupt(off, err, "block structure invalid despite valid checksum")
	}
	bi := br.Iter()
	bi.Seek(target)
	if !bi.Valid() {
		return nil, 0, 0, false, t.wrapIterErr(bi.Err())
	}
	gotUser, gotSeq, gotKind, ok := kv.ParseInternalKey(bi.Key())
	if !ok {
		return nil, 0, 0, false, t.blockCorrupt(off, ErrCorrupt, "record key malformed")
	}
	if !sameBytes(gotUser, ukey) {
		return nil, 0, 0, false, nil
	}
	return bi.Value(), gotKind, gotSeq, true, nil
}

// metaCorrupt attributes a metadata/index-structure failure to this
// table's file; the detecting layer's sentinel rides along as cause.
func (t *Table) metaCorrupt(cause error, detail string) *corrupt.Error {
	return corrupt.New(corrupt.LayerTableMeta, t.name, -1, errors.Join(ErrCorrupt, cause), detail)
}

// blockCorrupt attributes a data-block failure at off to this table.
func (t *Table) blockCorrupt(off uint64, cause error, detail string) *corrupt.Error {
	return corrupt.New(corrupt.LayerTableBlock, t.name, int64(off), errors.Join(ErrCorrupt, cause), detail)
}

// wrapIterErr attributes block-iterator corruption to this table's
// file; nil and non-corruption errors pass through unchanged.
func (t *Table) wrapIterErr(err error) error {
	if err == nil || !errors.Is(err, block.ErrCorrupt) {
		return err
	}
	var ce *corrupt.Error
	if errors.As(err, &ce) {
		return err // already attributed
	}
	return corrupt.New(corrupt.LayerTableBlock, t.name, -1, errors.Join(ErrCorrupt, err),
		"block iterator corruption")
}

// SeqIter returns an iterator over sequence i (oldest = 0).
func (t *Table) SeqIter(i int) iterator.Iterator {
	return t.seqIterOf(t.snapshotSeqs(), i)
}

func (t *Table) seqIterOf(seqs []SeqMeta, i int) iterator.Iterator {
	s := &seqs[i]
	if s.Entries == 0 {
		return iterator.Empty{}
	}
	idx, err := block.NewReader(s.RawIndex, kv.CompareInternal)
	if err != nil {
		return &errIter{t.metaCorrupt(err, "index block malformed")}
	}
	return &seqIter{t: t, bounds: *s, idx: idx.Iter()}
}

// NewIter returns an iterator merging every sequence, newest winning
// nothing special (internal keys are unique); the ordering is plain
// internal-key order as scans require.
func (t *Table) NewIter() iterator.Iterator {
	seqs := t.snapshotSeqs()
	if len(seqs) == 0 {
		return iterator.Empty{}
	}
	if len(seqs) == 1 {
		return t.seqIterOf(seqs, 0)
	}
	kids := make([]iterator.Iterator, 0, len(seqs))
	for i := len(seqs) - 1; i >= 0; i-- { // newest first for tie order
		kids = append(kids, t.seqIterOf(seqs, i))
	}
	return iterator.NewMerging(kv.CompareInternal, kids...)
}

type errIter struct{ err error }

func (e *errIter) First()        {}
func (e *errIter) Seek([]byte)   {}
func (e *errIter) Next()         {}
func (e *errIter) Valid() bool   { return false }
func (e *errIter) Key() []byte   { return nil }
func (e *errIter) Value() []byte { return nil }
func (e *errIter) Err() error    { return e.err }
func (e *errIter) Close() error  { return nil }

// readaheadSize is the sequential read-ahead window of sequence
// iterators.  The paper's testbed runs with filesystem read-ahead
// enabled (Sec. 6.1); without it, a merge that interleaves block reads
// across a node's sequences would pay one disk seek per 4 KiB block,
// which no real deployment does.
const readaheadSize = 64 * 1024

// seqIter chains the data blocks of one sequence via its index block.
// Block fetches that continue sequentially from the previous fetch are
// served through a read-ahead buffer.
type seqIter struct {
	t      *Table
	bounds SeqMeta
	idx    *block.Iter
	cur    *block.Iter
	err    error

	ra       []byte
	raStart  int64
	fetchEnd int64 // end offset of the previous physical fetch
	everRead bool
}

// fetchBlock returns the data block at [off, off+length), using the
// cache, then the read-ahead buffer, then a physical read that extends
// ahead when the access pattern is sequential.
func (s *seqIter) fetchBlock(off, length uint64) ([]byte, error) {
	t := s.t
	if t.cache != nil {
		if b := t.cache.Get(t.id, off); b != nil {
			return b, nil
		}
	}
	o, l := int64(off), int64(length)
	if s.ra != nil && o >= s.raStart && o+l <= s.raStart+int64(len(s.ra)) {
		payload, err := verifyBlockAt(s.ra[o-s.raStart:o-s.raStart+l], t.name, off)
		if err != nil {
			return nil, err
		}
		if t.cache != nil {
			t.cache.Set(t.id, off, append([]byte(nil), payload...))
		}
		return payload, nil
	}
	seqEnd := int64(s.bounds.DataOff + s.bounds.DataLen)
	chunk := l
	if s.everRead && o == s.fetchEnd {
		// Sequential continuation: read ahead like the OS would.
		if c := int64(readaheadSize); c > chunk {
			chunk = c
		}
		if o+chunk > seqEnd {
			chunk = seqEnd - o
		}
	}
	buf := make([]byte, chunk)
	if _, err := t.f.ReadAt(buf, o); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, corrupt.New(corrupt.LayerTableBlock, t.name, o, ErrCorrupt,
				"block extends past end of file")
		}
		return nil, err
	}
	s.everRead = true
	s.fetchEnd = o + chunk
	s.ra = buf
	s.raStart = o
	payload, err := verifyBlockAt(buf[:l], t.name, off)
	if err != nil {
		return nil, err
	}
	if t.cache != nil {
		t.cache.Set(t.id, off, append([]byte(nil), payload...))
	}
	return payload, nil
}

func (s *seqIter) loadBlock() bool {
	if !s.idx.Valid() {
		s.cur = nil
		return false
	}
	v := s.idx.Value()
	off, n := binary.Uvarint(v)
	if n <= 0 {
		s.err = s.t.metaCorrupt(ErrCorrupt, "index handle malformed")
		return false
	}
	length, n2 := binary.Uvarint(v[n:])
	if n2 <= 0 {
		s.err = s.t.metaCorrupt(ErrCorrupt, "index handle malformed")
		return false
	}
	data, err := s.fetchBlock(off, length)
	if err != nil {
		s.err = err
		return false
	}
	br, err := block.NewReader(data, kv.CompareInternal)
	if err != nil {
		s.err = s.t.blockCorrupt(off, err, "block structure invalid despite valid checksum")
		return false
	}
	s.cur = br.Iter()
	return true
}

// First implements Iterator.
func (s *seqIter) First() {
	s.err = nil
	s.idx.First()
	if s.loadBlock() {
		s.cur.First()
		s.skipEmptyForward()
	}
}

// Seek implements Iterator.
func (s *seqIter) Seek(target []byte) {
	s.err = nil
	s.idx.Seek(target)
	if s.loadBlock() {
		s.cur.Seek(target)
		s.skipEmptyForward()
	} else {
		s.cur = nil
	}
}

// Next implements Iterator.
func (s *seqIter) Next() {
	if s.cur == nil || s.err != nil {
		return
	}
	s.cur.Next()
	s.skipEmptyForward()
}

// skipEmptyForward advances to the next non-exhausted block.
func (s *seqIter) skipEmptyForward() {
	for s.cur != nil && !s.cur.Valid() && s.err == nil {
		if err := s.cur.Err(); err != nil {
			s.err = err
			return
		}
		s.idx.Next()
		if !s.loadBlock() {
			s.cur = nil
			return
		}
		s.cur.First()
	}
}

// Valid implements Iterator.
func (s *seqIter) Valid() bool { return s.err == nil && s.cur != nil && s.cur.Valid() }

// Key implements Iterator.
func (s *seqIter) Key() []byte {
	if s.cur == nil {
		return nil
	}
	return s.cur.Key()
}

// Value implements Iterator.
func (s *seqIter) Value() []byte {
	if s.cur == nil {
		return nil
	}
	return s.cur.Value()
}

// Err implements Iterator.
func (s *seqIter) Err() error { return s.t.wrapIterErr(s.err) }

// Close implements Iterator.
func (s *seqIter) Close() error { return nil }

// Last implements iterator.ReverseIterator.
func (e *errIter) Last() {}

// Prev implements iterator.ReverseIterator.
func (e *errIter) Prev() {}

// SeekForPrev implements iterator.ReverseIterator.
func (e *errIter) SeekForPrev([]byte) {}

// Last implements iterator.ReverseIterator.
func (s *seqIter) Last() {
	s.err = nil
	s.idx.Last()
	if s.loadBlock() {
		s.cur.Last()
		s.skipEmptyBackward()
	} else {
		s.cur = nil
	}
}

// Prev implements iterator.ReverseIterator.
func (s *seqIter) Prev() {
	if s.cur == nil || s.err != nil {
		return
	}
	s.cur.Prev()
	s.skipEmptyBackward()
}

// SeekForPrev implements iterator.ReverseIterator: position at the
// last key <= target.
func (s *seqIter) SeekForPrev(target []byte) {
	s.err = nil
	// Index entries carry each block's largest key, so Seek finds the
	// first block whose range can contain target.
	s.idx.Seek(target)
	if !s.idx.Valid() {
		// target is above every block: the answer is the last key.
		s.Last()
		return
	}
	if !s.loadBlock() {
		s.cur = nil
		return
	}
	s.cur.SeekForPrev(target)
	s.skipEmptyBackward()
}

// skipEmptyBackward steps to the previous block while the current one
// is exhausted.
func (s *seqIter) skipEmptyBackward() {
	for s.cur != nil && !s.cur.Valid() && s.err == nil {
		if err := s.cur.Err(); err != nil {
			s.err = err
			return
		}
		s.idx.Prev()
		if !s.loadBlock() {
			s.cur = nil
			return
		}
		s.cur.Last()
	}
}
