package iamdb

import (
	"errors"

	"iamdb/internal/corrupt"
)

// CorruptionError is the typed error every on-disk format layer
// returns when synced data fails verification: a CRC mismatch, a torn
// structure, or a reference to a missing file.  It carries provenance
// — which file, which byte offset, which format layer caught it — so
// callers and operators can tell *what* rotted, not just that
// something did.
//
// Reads that hit a corrupt block return a CorruptionError (never wrong
// data, never a panic); Open returns one when the manifest or a WAL is
// damaged mid-log (a torn tail from a crash is tolerated and
// truncated).  See DESIGN.md "Latent-fault model".
type CorruptionError = corrupt.Error

// Corruption layer names, as found in CorruptionError.Layer.
const (
	LayerBlock       = corrupt.LayerBlock
	LayerTableFooter = corrupt.LayerTableFooter
	LayerTableMeta   = corrupt.LayerTableMeta
	LayerTableBlock  = corrupt.LayerTableBlock
	LayerWAL         = corrupt.LayerWAL
	LayerManifest    = corrupt.LayerManifest
	LayerVLog        = corrupt.LayerVLog
)

// IsCorruption reports whether err is, or wraps, a CorruptionError.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// AsCorruption returns the CorruptionError in err's chain, or nil.
func AsCorruption(err error) *CorruptionError {
	var ce *CorruptionError
	if errors.As(err, &ce) {
		return ce
	}
	return nil
}
