// Package bloom implements the Bloom filter [Bloom 1970] IamDB attaches
// to every table sequence.  The paper allocates 14 bits per record for a
// ~0.2% false-positive rate, which makes the read amplification of point
// lookups about 1 when the key exists and about 0 when it does not,
// identically for LSM, LSA and IAM (Sec. 5.3.2).
//
// The construction is LevelDB's: a single 32-bit hash per key, extended
// to k probe positions by double hashing with a 17-bit rotation delta.
package bloom

import "encoding/binary"

// DefaultBitsPerKey matches the paper's 14 bits per record.
const DefaultBitsPerKey = 14

// Filter is an immutable encoded Bloom filter.  The last byte stores the
// number of probes k.
type Filter []byte

// probes derives the probe count from bits per key, clamped to [1, 30].
func probes(bitsPerKey int) int {
	k := int(float64(bitsPerKey) * 0.69) // ~ bitsPerKey * ln(2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return k
}

// Build creates a filter over the given keys with the given density.
func Build(keys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := probes(bitsPerKey)
	bits := len(keys) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	f := make(Filter, nBytes+1)
	f[nBytes] = byte(k)
	for _, key := range keys {
		h := Hash(key)
		delta := h>>17 | h<<15
		for i := 0; i < k; i++ {
			pos := h % uint32(bits)
			f[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return f
}

// MayContain reports whether the key might be in the set the filter was
// built over.  False positives occur at roughly 0.2% with 14 bits/key;
// false negatives never occur.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return false
	}
	k := int(f[len(f)-1])
	if k > 30 {
		// Reserved for future encodings; treat as always-match.
		return true
	}
	bits := uint32((len(f) - 1) * 8)
	h := Hash(key)
	delta := h>>17 | h<<15
	for i := 0; i < k; i++ {
		pos := h % bits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Hash is the 32-bit Murmur-like hash LevelDB uses for its filters.
func Hash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	for len(data) >= 4 {
		h += binary.LittleEndian.Uint32(data)
		h *= m
		h ^= h >> 16
		data = data[4:]
	}
	switch len(data) {
	case 3:
		h += uint32(data[2]) << 16
		fallthrough
	case 2:
		h += uint32(data[1]) << 8
		fallthrough
	case 1:
		h += uint32(data[0])
		h *= m
		h ^= h >> 24
	}
	return h
}
