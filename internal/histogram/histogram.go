// Package histogram records operation latencies and reports the
// percentile and maximum statistics the paper's QoS discussion uses
// (99% latency and maximum latency, Sec. 6.2/6.4, Table 5).
//
// Buckets are logarithmic: ~4% relative width covers nanoseconds to
// hours in a fixed small array, so recording is allocation-free.
package histogram

import (
	"fmt"
	"math"
	"time"
)

const (
	numBuckets = 512
	// growth is the bucket width ratio; bucket i covers
	// [minLatency*growth^i, minLatency*growth^(i+1)).
	growth     = 1.05
	minLatency = 100 // nanoseconds
)

// H is a latency histogram.  Not safe for concurrent use; harnesses
// keep one per worker and Merge them.
type H struct {
	buckets [numBuckets]int64
	count   int64
	sum     int64
	max     int64
	min     int64
}

// New returns an empty histogram.
func New() *H { return &H{min: math.MaxInt64} }

func bucketOf(ns int64) int {
	if ns < minLatency {
		return 0
	}
	b := int(math.Log(float64(ns)/minLatency) / math.Log(growth))
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// Record adds one latency observation.
func (h *H) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	if ns < h.min {
		h.min = ns
	}
}

// Merge folds o into h.
func (h *H) Merge(o *H) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	if o.count > 0 && o.min < h.min {
		h.min = o.min
	}
}

// Sub returns the bucket-wise interval histogram h − prev: the
// observations recorded after prev was captured.  Both histograms must
// be cumulative snapshots of the same series (prev taken earlier), so
// every bucket of prev is ≤ the matching bucket of h.
//
// Exact sums and counts survive subtraction; extrema do not.  The
// interval max is approximated by the upper edge of the highest
// non-empty diff bucket (capped at the cumulative max), and min by the
// lower edge of the lowest non-empty diff bucket — both within one
// bucket width (~5%) of the true value, which is what windowed
// percentile reporting needs.
func (h *H) Sub(prev *H) *H {
	d := New()
	hi, lo := -1, -1
	for i := range h.buckets {
		n := h.buckets[i] - prev.buckets[i]
		if n < 0 {
			n = 0
		}
		d.buckets[i] = n
		if n > 0 {
			hi = i
			if lo < 0 {
				lo = i
			}
		}
	}
	d.count = h.count - prev.count
	d.sum = h.sum - prev.sum
	if d.count < 0 {
		d.count = 0
	}
	if d.sum < 0 {
		d.sum = 0
	}
	if hi >= 0 {
		d.max = int64(minLatency * math.Pow(growth, float64(hi+1)))
		if d.max > h.max {
			d.max = h.max
		}
		d.min = int64(minLatency * math.Pow(growth, float64(lo)))
		if lo == 0 {
			d.min = 0
		}
	}
	return d
}

// Count reports the number of observations.
func (h *H) Count() int64 { return h.count }

// Max reports the largest observation.
func (h *H) Max() time.Duration { return time.Duration(h.max) }

// Mean reports the average observation.
func (h *H) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Percentile reports the latency at quantile q in [0, 1], e.g. 0.99.
// The value is the upper edge of the bucket containing the quantile.
func (h *H) Percentile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		return h.Max()
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			upper := minLatency * math.Pow(growth, float64(i+1))
			if t := time.Duration(upper); t < h.Max() {
				return t
			}
			return h.Max()
		}
	}
	return h.Max()
}

// String renders the headline stats.
func (h *H) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.99), h.Max())
}
