package histogram

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBasicStats(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Percentile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram nonzero")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max %v", h.Max())
	}
	mean := h.Mean()
	if mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Fatalf("mean %v", mean)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(1))
	var raw []int64
	for i := 0; i < 100000; i++ {
		ns := int64(rng.ExpFloat64() * 1e6) // ~1ms exponential
		raw = append(raw, ns)
		h.Record(time.Duration(ns))
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := time.Duration(raw[int(q*float64(len(raw)))])
		got := h.Percentile(q)
		// Log buckets: within ~10% relative error.
		lo, hi := exact*85/100, exact*115/100
		if got < lo || got > hi {
			t.Errorf("p%.3f: got %v want about %v", q, got, exact)
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 1000; i++ {
		a.Record(time.Millisecond)
		b.Record(time.Second)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("count %d", a.Count())
	}
	if a.Max() != time.Second {
		t.Fatalf("max %v", a.Max())
	}
	if p := a.Percentile(0.25); p > 2*time.Millisecond {
		t.Fatalf("p25 %v", p)
	}
	if p := a.Percentile(0.75); p < 500*time.Millisecond {
		t.Fatalf("p75 %v", p)
	}
}

func TestExtremes(t *testing.T) {
	h := New()
	h.Record(0)
	h.Record(time.Hour)
	if h.Count() != 2 {
		t.Fatal("count")
	}
	if h.Max() != time.Hour {
		t.Fatalf("max %v", h.Max())
	}
	if h.Percentile(1.0) != time.Hour {
		t.Fatalf("p100 %v", h.Percentile(1.0))
	}
	if h.String() == "" {
		t.Fatal("string")
	}
}
