package vfs

import (
	"errors"
	"io"
	"testing"
)

func TestCrashFSDiscardsUnsynced(t *testing.T) {
	mem := NewMemFS()
	cfs := NewCrashFS(mem, CrashDrop)
	f, err := cfs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-lost")); err != nil {
		t.Fatal(err)
	}
	// Pre-crash reads see the buffered union.
	buf := make([]byte, 11)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "synced-lost" {
		t.Fatalf("pre-crash read %q", buf)
	}
	cfs.Crash()
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("dead handle read: %v", err)
	}
	if _, err := cfs.Open("x"); !errors.Is(err, ErrCrashed) {
		t.Fatal("open while crashed should fail")
	}
	cfs.Recover()
	g, err := cfs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.ReadAt(buf, 0)
	if err != io.EOF || n != 6 || string(buf[:n]) != "synced" {
		t.Fatalf("post-crash read n=%d err=%v %q", n, err, buf[:n])
	}
	// Old handle stays dead even after recovery.
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatal("pre-crash handle must stay dead")
	}
}

func TestCrashFSCrashAtCountsOps(t *testing.T) {
	cfs := NewCrashFS(NewMemFS(), CrashDrop)
	f, _ := cfs.Create("x") // op 0
	if got := cfs.OpCount(); got != 1 {
		t.Fatalf("ops after create = %d", got)
	}
	cfs.CrashAt(2)                                  // the Sync below
	if _, err := f.Write([]byte("a")); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // op 2: crash
		t.Fatalf("sync should crash, got %v", err)
	}
	if !cfs.Crashed() {
		t.Fatal("should be crashed")
	}
	cfs.Recover()
	g, err := cfs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := g.Size(); sz != 0 {
		t.Fatalf("unsynced write survived: size %d", sz)
	}
}

func TestCrashFSSyncPoints(t *testing.T) {
	cfs := NewCrashFS(NewMemFS(), CrashDrop)
	f, _ := cfs.Create("x")   // 0
	_, _ = f.Write([]byte{1}) // 1
	_ = f.Sync()              // 2
	_, _ = f.Write([]byte{2}) // 3
	_ = f.Sync()              // 4
	pts := cfs.SyncPoints()
	if len(pts) != 2 || pts[0] != 2 || pts[1] != 4 {
		t.Fatalf("sync points %v", pts)
	}
}

func TestCrashFSTornWrite(t *testing.T) {
	mem := NewMemFS()
	cfs := NewCrashFS(mem, CrashTorn)
	f, _ := cfs.Create("x")
	big := make([]byte, 4096)
	for i := range big {
		big[i] = 0xAB
	}
	if _, err := f.WriteAt(big, 0); err != nil {
		t.Fatal(err)
	}
	cfs.Crash()
	cfs.Recover()
	g, err := cfs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := g.Size()
	// Half of 4096, sector-aligned: 2048 bytes persisted.
	if sz != 2048 {
		t.Fatalf("torn size %d", sz)
	}
	buf := make([]byte, 2048)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0xAB {
			t.Fatalf("byte %d = %x", i, b)
		}
	}
}

func TestCrashFSTornSmallWriteVanishes(t *testing.T) {
	cfs := NewCrashFS(NewMemFS(), CrashTorn)
	f, _ := cfs.Create("x")
	if _, err := f.Write([]byte("tiny")); err != nil {
		t.Fatal(err)
	}
	cfs.Crash()
	cfs.Recover()
	g, _ := cfs.Open("x")
	if sz, _ := g.Size(); sz != 0 {
		t.Fatalf("sub-sector torn write should vanish, size %d", sz)
	}
}

func TestCrashFSFlipWrite(t *testing.T) {
	cfs := NewCrashFS(NewMemFS(), CrashFlip)
	f, _ := cfs.Create("x")
	data := make([]byte, 64)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	cfs.Crash()
	cfs.Recover()
	g, _ := cfs.Open("x")
	buf := make([]byte, 64)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, b := range buf {
		if b != 0 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("want exactly one corrupted byte, got %d", flipped)
	}
}

func TestCrashFSOnlyLastWriteTorn(t *testing.T) {
	// Two buffered writes: the first is dropped entirely, only the last
	// can tear.
	cfs := NewCrashFS(NewMemFS(), CrashTorn)
	f, _ := cfs.Create("x")
	first := make([]byte, 2048)
	for i := range first {
		first[i] = 1
	}
	last := make([]byte, 2048)
	for i := range last {
		last[i] = 2
	}
	_, _ = f.WriteAt(first, 0)
	_, _ = f.WriteAt(last, 4096)
	cfs.Crash()
	cfs.Recover()
	g, _ := cfs.Open("x")
	sz, _ := g.Size()
	if sz != 4096+1024 {
		t.Fatalf("size %d", sz)
	}
	buf := make([]byte, int(sz))
	_, _ = g.ReadAt(buf, 0)
	for i := 0; i < 4096; i++ {
		if buf[i] != 0 {
			t.Fatalf("first write leaked at %d", i)
		}
	}
	for i := 4096; i < len(buf); i++ {
		if buf[i] != 2 {
			t.Fatalf("torn tail wrong at %d", i)
		}
	}
}

func TestCrashFSRenameKeepsHandle(t *testing.T) {
	// The manifest-compaction pattern: create tmp, write, sync, rename
	// over the live name, keep appending through the original handle.
	cfs := NewCrashFS(NewMemFS(), CrashDrop)
	f, _ := cfs.Create("M.tmp")
	_, _ = f.Write([]byte("snap"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := cfs.Rename("M.tmp", "M"); err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write([]byte("+edit"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	cfs.Crash()
	cfs.Recover()
	g, err := cfs.Open("M")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "snap+edit" {
		t.Fatalf("got %q", buf)
	}
	if cfs.Exists("M.tmp") {
		t.Fatal("tmp should be gone")
	}
}

func TestCrashFSTruncateBuffered(t *testing.T) {
	cfs := NewCrashFS(NewMemFS(), CrashDrop)
	f, _ := cfs.Create("x")
	_, _ = f.Write([]byte("0123456789"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 4 {
		t.Fatalf("volatile size %d", sz)
	}
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != io.EOF || n != 4 || string(buf[:4]) != "0123" {
		t.Fatalf("read n=%d err=%v %q", n, err, buf[:n])
	}
	// Unsynced truncate is lost at crash.
	cfs.Crash()
	cfs.Recover()
	g, _ := cfs.Open("x")
	if sz, _ := g.Size(); sz != 10 {
		t.Fatalf("durable size %d", sz)
	}
}

func TestCrashFSRemoveDurable(t *testing.T) {
	cfs := NewCrashFS(NewMemFS(), CrashDrop)
	f, _ := cfs.Create("x")
	_, _ = f.Write([]byte("abc"))
	_ = f.Sync()
	if err := cfs.Remove("x"); err != nil {
		t.Fatal(err)
	}
	cfs.Crash()
	cfs.Recover()
	if _, err := cfs.Open("x"); err == nil {
		t.Fatal("removed file should stay removed after crash")
	}
}

func TestRetry(t *testing.T) {
	calls := 0
	err := Retry(3, nil, func() error {
		calls++
		if calls < 3 {
			return ErrInjected
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	calls = 0
	err = Retry(2, nil, func() error { calls++; return ErrInjected })
	if !errors.Is(err, ErrInjected) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// backoff returning false abandons the loop with the last error.
	calls = 0
	backoffs := 0
	err = Retry(5, func(failures int) bool { backoffs = failures; return false },
		func() error { calls++; return ErrInjected })
	if !errors.Is(err, ErrInjected) || calls != 1 || backoffs != 1 {
		t.Fatalf("err=%v calls=%d backoffs=%d", err, calls, backoffs)
	}
}

func TestFaultFSPathScoped(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	a, _ := ffs.Create("dir/a.mst")
	b, _ := ffs.Create("dir/b.log")
	ffs.FailAfterPath(FaultWrite, ".mst", 0)
	if _, err := b.Write([]byte("x")); err != nil {
		t.Fatal("log write should pass")
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("mst write should fail, got %v", err)
	}
	// Non-sticky: disarmed after firing.
	if _, err := a.Write([]byte("x")); err != nil {
		t.Fatal("second mst write should pass")
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	f, _ := ffs.Create("x")
	ffs.FailShortWrite("x", 0, 3)
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if n != 3 {
		t.Fatalf("short write n=%d", n)
	}
	// The prefix really reached the inner FS.
	g, _ := mem.Open("x")
	buf := make([]byte, 3)
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "abc" {
		t.Fatalf("inner content %q", buf)
	}
}

func TestFaultFSClose(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f, _ := ffs.Create("x")
	ffs.FailAfter(FaultClose, 0)
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close should fail, got %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("second close should pass")
	}
	if ffs.Hits(FaultClose) != 1 {
		t.Fatalf("hits %d", ffs.Hits(FaultClose))
	}
}
