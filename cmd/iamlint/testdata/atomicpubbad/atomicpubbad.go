// Package atomicpubbad mutates structs after they have been published
// through an atomic.Pointer: readers reach them with a lock-free Load,
// so any later plain-field write is a data race.  The atomicpub pass
// must flag every write below; the compliant patterns (build the value
// fresh, then Store it) live in testdata/good.
package atomicpubbad

import "sync/atomic"

type entry struct {
	key  []byte
	hits int
	next [4]atomic.Pointer[entry]
}

type index struct {
	head atomic.Pointer[entry]
}

// mutateLoaded writes a field of a node reached through the atomic
// pointer — the canonical post-publication race.
func (x *index) mutateLoaded() {
	x.head.Load().key = nil // want [atomicpub] published via atomic.Pointer
}

// mutateParam writes through a parameter: the callee cannot prove the
// entry has not been published yet.
func mutateParam(e *entry, k []byte) {
	e.key = k // want [atomicpub] published via atomic.Pointer
}

// increment covers the ++/-- statement form.
func increment(e *entry) {
	e.hits++ // want [atomicpub] published via atomic.Pointer
}

// reachedThroughField writes through a struct field rather than a
// fresh local; field-held values may already be shared.
type wrapper struct {
	e *entry
}

func (w *wrapper) reachedThroughField(k []byte) {
	w.e.key = k // want [atomicpub] published via atomic.Pointer
}
