package harness

import (
	"fmt"
	"math/rand"

	"iamdb"
	"iamdb/internal/amp"
	"iamdb/internal/vfs"
	"iamdb/internal/vlog"
	"iamdb/internal/ycsb"
)

// The kvsep experiment measures key-value separation (values in a
// segmented CRC'd log, pointers in the tree) against inline storage:
//
//   - a large-value family (1 KiB – 1 MiB, all four engines, uniform
//     and Zipf-skewed overwrites over a hash-loaded keyspace) showing
//     sustained Put throughput and device write bytes with and without
//     separation, and
//   - a crossover probe (16 – 512 B values on IAM) locating the value
//     size where separation starts writing fewer device bytes per
//     record, checked against the closed-form prediction
//     amp.CrossoverValueSize.
//
// Record counts scale inversely with value size so every cell writes
// roughly the same logical volume.

// kvsepFamily is the large-value size family.
var kvsepFamily = []int{1 << 10, 16 << 10, 64 << 10, 1 << 20}

// kvsepProbes bracket the predicted write-byte crossover (a few tens
// of bytes for typical tree write amps).
var kvsepProbes = []int{16, 32, 64, 128, 256, 512}

// kvsepConfig sizes one cell: same logical data budget at every value
// size, record count capped at the scale's 100G-class count.
func (s Scale) kvsepConfig(e iamdb.EngineKind, valueSize int, separated bool, threshold int) Config {
	budget := int64(s.Records100G) * int64(s.ValueSize)
	records := budget / int64(valueSize)
	if records > int64(s.Records100G) {
		records = int64(s.Records100G)
	}
	if records < 64 {
		records = 64
	}
	cfg := Config{
		Engine: e, Disk: vfs.SSDProfile(), Records: uint64(records),
		ValueSize: valueSize, Ct: s.Ct, Threads: 1, Seed: 1,
	}
	if separated {
		cfg.ValueThreshold = threshold
		// Small segments so density GC has reclamation granularity at
		// laptop scale.
		cfg.VlogSegmentSize = 1 << 20
	}
	return cfg
}

// SkewedOverwrite rewrites existing keys drawn from a Zipf
// distribution (hot keys rewritten often — the workload that fills the
// value log with dead records and drives density GC).
func (e *Env) SkewedOverwrite() (LoadResult, error) {
	z := rand.NewZipf(e.rng, 1.1, 1, e.Cfg.Records-1)
	return e.load(func(uint64) []byte { return ycsb.KeyName(z.Uint64()) })
}

// kvsepCell is one measured (engine, size, mode, dist) cell.
type kvsepCell struct {
	ops      float64 // Put throughput of the measured overwrite pass
	writeAmp float64
	device   int64 // total device bytes written
	space    int64
	puts     uint64 // total Put operations across both passes
}

func (s Scale) kvsepRun(e iamdb.EngineKind, valueSize int, sep bool, threshold int, skew bool) (kvsepCell, error) {
	env, err := NewEnv(s.kvsepConfig(e, valueSize, sep, threshold))
	if err != nil {
		return kvsepCell{}, err
	}
	defer env.Close()
	if _, err := env.HashLoad(); err != nil {
		return kvsepCell{}, err
	}
	// The overwrite pass is the measured one; the hash load seeds it.
	// Measuring sustained overwrites (rather than a one-shot load) makes
	// every inline engine pay its steady-state merge cost for large
	// values — the regime key-value separation targets — instead of the
	// append-only best case.
	var res LoadResult
	if skew {
		res, err = env.SkewedOverwrite()
	} else {
		res, err = env.Overwrite()
	}
	if err != nil {
		return kvsepCell{}, err
	}
	m := env.DB.Metrics()
	return kvsepCell{
		ops:      res.OpsPerSec,
		writeAmp: m.WriteAmplification(),
		device:   m.IO.BytesWritten,
		space:    m.SpaceUsed,
		puts:     2 * env.Cfg.Records, // load + overwrite passes
	}, nil
}

func kvsepSize(v int) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%dM", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dK", v>>10)
	default:
		return fmt.Sprint(v)
	}
}

// KVSep runs the experiment and renders one table; every environment
// also reports its full metrics snapshot through the harness sink, so
// BENCH_kvsep.json carries per-level write bytes and value-log state
// for each cell.
func (s Scale) KVSep() (Table, error) {
	t := Table{
		Title: "KV separation: Put throughput and device writes, inline vs separated",
		Header: []string{"config", "dist", "value", "mode",
			"put-ops/s", "write-amp", "device-MB", "space-MB"},
	}
	mode := func(sep bool) string {
		if sep {
			return "sep"
		}
		return "inline"
	}
	addRow := func(tag, dist string, valueSize int, sep bool, c kvsepCell) {
		t.Rows = append(t.Rows, []string{
			tag, dist, kvsepSize(valueSize), mode(sep),
			fmt.Sprintf("%.0f", c.ops), f2(c.writeAmp),
			fmt.Sprintf("%.1f", float64(c.device)/(1<<20)),
			fmt.Sprintf("%.1f", float64(c.space)/(1<<20)),
		})
	}

	// Large-value family at 64 KiB: every engine, uniform and skewed,
	// with and without separation.
	const familyThreshold = 1 << 10
	for _, dist := range []string{"uniform", "zipf"} {
		for _, e := range paperEngines {
			for _, sep := range []bool{false, true} {
				c, err := s.kvsepRun(e, 64<<10, sep, familyThreshold, dist == "zipf")
				if err != nil {
					return t, err
				}
				addRow(engineTag(e, 1), dist, 64<<10, sep, c)
			}
		}
	}

	// Value-size sweep on IAM (uniform), the rest of the family.
	for _, v := range kvsepFamily {
		if v == 64<<10 {
			continue // covered by the engine matrix above
		}
		for _, sep := range []bool{false, true} {
			c, err := s.kvsepRun(iamdb.IAM, v, sep, familyThreshold, false)
			if err != nil {
				return t, err
			}
			addRow(engineTag(iamdb.IAM, 1), "uniform", v, sep, c)
		}
	}

	// Crossover probe: small values on IAM, everything separated in the
	// sep runs (threshold 1), device bytes per record compared.
	var probes []kvsepProbe
	var ampSum float64
	for _, v := range kvsepProbes {
		ci, err := s.kvsepRun(iamdb.IAM, v, false, 0, false)
		if err != nil {
			return t, err
		}
		cs, err := s.kvsepRun(iamdb.IAM, v, true, 1, false)
		if err != nil {
			return t, err
		}
		addRow("I-probe", "uniform", v, false, ci)
		addRow("I-probe", "uniform", v, true, cs)
		probes = append(probes, kvsepProbe{
			size:   v,
			inline: float64(ci.device) / float64(ci.puts),
			sep:    float64(cs.device) / float64(cs.puts),
		})
		ampSum += ci.writeAmp
	}
	wAvg := ampSum / float64(len(kvsepProbes))

	key := ycsb.KeyName(0)
	rep := make([]byte, 64)
	overhead := vlog.RecordLen(key, rep) - len(key) - len(rep)
	predicted := amp.CrossoverValueSize(amp.KVSepParams{
		KeySize:        len(key),
		PointerSize:    vlog.PointerLen,
		RecordOverhead: overhead,
		TreeWriteAmp:   wAvg,
	})
	measured := kvsepMeasuredCrossover(probes)

	t.Rows = append(t.Rows,
		[]string{"crossover", "uniform", fmt.Sprintf("%.0f", predicted),
			"predicted", "-", f2(wAvg), "-", "-"},
		[]string{"crossover", "uniform", fmt.Sprintf("%.0f", measured),
			"measured", "-", "-", "-", "-"},
	)
	return t, nil
}

// kvsepProbe is one crossover probe point: device bytes per record for
// the inline and separated runs at one value size.
type kvsepProbe struct {
	size        int
	inline, sep float64
}

// kvsepMeasuredCrossover finds the value size where separated device
// bytes per record drop below inline, interpolating linearly between
// the bracketing probes.  Below the first probe it reports the first
// probe size; above the last, the last.
func kvsepMeasuredCrossover(probes []kvsepProbe) float64 {
	// diff(v) = sep - inline: positive while inline wins, negative once
	// separation does.
	prevSize, prevDiff := 0, 0.0
	for i, p := range probes {
		d := p.sep - p.inline
		if d <= 0 {
			if i == 0 {
				return float64(p.size)
			}
			// Linear zero crossing between the bracketing probes.
			frac := prevDiff / (prevDiff - d)
			return float64(prevSize) + frac*float64(p.size-prevSize)
		}
		prevSize, prevDiff = p.size, d
	}
	return float64(probes[len(probes)-1].size)
}
