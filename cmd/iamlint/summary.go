package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// This file builds the interprocedural substrate's per-function
// summaries: which locks a function acquires (and what was held at
// each acquisition), which functions it calls (and what was held at
// each call), which goroutines it spawns, which WaitGroups it
// Add/Done/Waits, and — for the syncorder pass — the ordered sequence
// of table writes, syncs and manifest edits it performs.
//
// The walk is source-order and deliberately simple: branches are
// visited in order with one mutable held-set, `defer mu.Unlock()`
// keeps the lock in the held-set for the rest of the function (the
// lock really is held until return — the opposite convention from
// lockcheck, which tracks release obligations), and function literals
// become anonymous summary nodes analyzed with an empty held-set (a
// literal usually runs on another goroutine or as a callback, where
// the enclosing frame's locks are not reliably held).

// sumEventKind labels one entry of a function's ordered effect trace.
type sumEventKind int

const (
	// evWrite is a fresh-table data write: table.Create or
	// (*table.Table).Append.  AppendFrom (append into an existing,
	// already-published node) is deliberately excluded: its
	// edit-before-sync protocol is the documented inverse (see
	// core.deliverToChild).
	evWrite sumEventKind = iota
	// evSync is any zero-arg Sync() method call (tables, vfs files,
	// WAL writers all expose one).
	evSync
	// evEdit is a direct manifest edit: (*manifest.Log).Append or
	// manifest.Create.
	evEdit
	// evCall is a call to a resolvable function; callee effects are
	// folded in by the passes via the call graph.
	evCall
)

// sumEvent is one step of a function's effect trace.
type sumEvent struct {
	kind   sumEventKind
	pos    token.Pos
	callee *types.Func // evCall only
	iface  bool        // evCall: dispatches through an interface method
	// ifaceT is the full interface type at the call site.  It can be
	// wider than the method's declaring interface (vfs.File embeds
	// io.Closer, so walF.Close()'s method object belongs to io.Closer;
	// resolving against that one-method interface would match every
	// type with a Close method) — implementations are matched against
	// this type, not the declaring one.
	ifaceT *types.Interface
	held   []string // canonical locks held at this point
}

// lockAcq is one direct lock acquisition.
type lockAcq struct {
	name string // canonical lock name
	pos  token.Pos
	held []string // locks held when this one was taken
}

// wgRef is one WaitGroup Add/Done/Wait site.
type wgRef struct {
	name string // canonical WaitGroup name
	pos  token.Pos
}

// spawnSite is one `go` statement.
type spawnSite struct {
	pos    token.Pos
	callee *types.Func // static target for `go x.f()`; nil for literals
	lit    *ast.FuncLit
}

// summary holds everything the interprocedural passes need to know
// about one function without re-reading its body.
type summary struct {
	acquires []lockAcq
	events   []sumEvent
	spawns   []spawnSite
	wgAdds   []wgRef
	wgDones  []wgRef
	wgWaits  []wgRef

	// Fixpoint results (computed in callgraph.go):
	// mayAcquire maps canonical lock -> how it can be reached from
	// this function (directly or through calls).
	mayAcquire map[string]acqOrigin
	// editsManifest reports a reachable manifest edit.
	editsManifest bool
	// dirtyAtExit reports that the function may return with a fresh
	// table written but not yet synced.
	dirtyAtExit bool
}

// acqOrigin records how a lock became reachable from a function.
type acqOrigin struct {
	pos   token.Pos   // example acquisition position
	via   *types.Func // first callee on the path, nil if acquired directly
	iface bool        // some hop was an interface resolution
}

// funcNode is one analyzed function, method, or function literal.
type funcNode struct {
	obj   *types.Func // nil for literals
	pkg   *pkg
	label string // human-readable, e.g. "(*Tree).SetHorizon"
	pos   token.Pos
	sum   *summary
}

// fnLabel renders a types.Func as it appears in diagnostics.
func fnLabel(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return "(" + ptr + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Name()
}

// pkgName returns the package's declared name (not its import path).
func (p *pkg) name() string {
	if len(p.files) > 0 {
		return p.files[0].Name.Name
	}
	return p.path
}

// canonicalName names a lock/WaitGroup expression so the same field
// reached through different receivers aggregates: "pkg.Type.field"
// for struct fields, "pkg.var" for package-level variables, and
// "var@file:line" (declaration site) for locals — the same local seen
// from its enclosing function and from a literal it spawns must
// canonicalize identically.
func canonicalName(p *pkg, x ast.Expr) string {
	switch e := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.info.Selections[e]; ok {
			recv := sel.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
		}
		if obj, ok := p.info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + e.Sel.Name
		}
	case *ast.Ident:
		if obj, ok := p.info.Uses[e].(*types.Var); ok {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + e.Name
			}
			dp := p.fset.Position(obj.Pos())
			return e.Name + "@" + filepath.Base(dp.Filename) + ":" + strconv.Itoa(dp.Line)
		}
	}
	return p.name() + "." + types.ExprString(x)
}

// displayLock strips the declaration-site tag from a local's
// canonical name for diagnostics.
func displayLock(canon string) string {
	if i := strings.IndexByte(canon, '@'); i >= 0 {
		return canon[:i]
	}
	return canon
}

// syncRecv classifies a zero-arg method call on a type from package
// sync, returning the receiver expression, the receiver type name
// ("Mutex", "RWMutex", "WaitGroup", "Cond", ...) and the method name.
func syncRecv(p *pkg, call *ast.CallExpr) (recv ast.Expr, typ, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	fn := p.funcFor(call)
	if fn == nil || pkgPathOf(fn) != "sync" {
		return nil, "", "", false
	}
	named := receiverNamed(p, call)
	if named == nil {
		return nil, "", "", false
	}
	return sel.X, named.Obj().Name(), fn.Name(), true
}

// sumBuilder walks one function body accumulating its summary.
type sumBuilder struct {
	p      *pkg
	fnName string
	sum    *summary
	held   []string
	anon   *[]*funcNode // literals found along the way
}

// buildSummary summarizes one function body.  anon collects function
// literals as separate anonymous nodes.
func buildSummary(p *pkg, fnName string, body *ast.BlockStmt, anon *[]*funcNode) *summary {
	b := &sumBuilder{p: p, fnName: fnName, sum: &summary{}, anon: anon}
	b.walkStmts(body.List)
	return b.sum
}

func (b *sumBuilder) heldCopy() []string {
	return append([]string(nil), b.held...)
}

func (b *sumBuilder) acquire(name string, pos token.Pos) {
	for _, h := range b.held {
		if h == name {
			// Recursive acquisition of a held lock: record the
			// self-edge (lockorder reports it) but do not grow the set.
			b.sum.acquires = append(b.sum.acquires, lockAcq{name: name, pos: pos, held: b.heldCopy()})
			return
		}
	}
	b.sum.acquires = append(b.sum.acquires, lockAcq{name: name, pos: pos, held: b.heldCopy()})
	b.held = append(b.held, name)
}

func (b *sumBuilder) release(name string) {
	for i, h := range b.held {
		if h == name {
			b.held = append(b.held[:i], b.held[i+1:]...)
			return
		}
	}
}

func (b *sumBuilder) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		b.walkStmt(s)
	}
}

func (b *sumBuilder) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.walkStmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			b.walkStmt(st.Init)
		}
		b.scanExpr(st.Cond)
		b.walkStmt(st.Body)
		if st.Else != nil {
			b.walkStmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			b.walkStmt(st.Init)
		}
		if st.Cond != nil {
			b.scanExpr(st.Cond)
		}
		b.walkStmt(st.Body)
		if st.Post != nil {
			b.walkStmt(st.Post)
		}
	case *ast.RangeStmt:
		b.scanExpr(st.X)
		b.walkStmt(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.walkStmt(st.Init)
		}
		if st.Tag != nil {
			b.scanExpr(st.Tag)
		}
		b.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.walkStmt(st.Init)
		}
		b.walkStmt(st.Body)
	case *ast.SelectStmt:
		b.walkStmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			b.scanExpr(e)
		}
		b.walkStmts(st.Body)
	case *ast.CommClause:
		if st.Comm != nil {
			b.walkStmt(st.Comm)
		}
		b.walkStmts(st.Body)
	case *ast.LabeledStmt:
		b.walkStmt(st.Stmt)
	case *ast.GoStmt:
		b.spawn(st)
	case *ast.DeferStmt:
		b.deferCall(st)
	default:
		// Leaf statements (expressions, assignments, returns, sends,
		// declarations): classify every call in source order.
		b.scanNode(s)
	}
}

// spawn records a `go` statement.  A spawned literal is analyzed as
// its own anonymous node with an empty held-set.
func (b *sumBuilder) spawn(st *ast.GoStmt) {
	sp := spawnSite{pos: st.Pos()}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		sp.lit = lit
		b.liftLiteral(lit)
	} else {
		sp.callee = b.p.funcFor(st.Call)
	}
	for _, arg := range st.Call.Args {
		b.scanExpr(arg)
	}
	b.sum.spawns = append(b.sum.spawns, sp)
}

// deferCall handles defer statements.  A deferred Unlock keeps the
// lock held for the rest of the walk (it releases at return); other
// deferred calls are recorded like immediate ones.
func (b *sumBuilder) deferCall(st *ast.DeferStmt) {
	if recv, typ, method, ok := syncRecv(b.p, st.Call); ok &&
		(typ == "Mutex" || typ == "RWMutex") &&
		(method == "Unlock" || method == "RUnlock") {
		_ = recv // held until return: deliberately not released here
		return
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		b.liftLiteral(lit)
		for _, arg := range st.Call.Args {
			b.scanExpr(arg)
		}
		return
	}
	b.scanNode(st)
}

// liftLiteral registers a function literal as an anonymous node.
func (b *sumBuilder) liftLiteral(lit *ast.FuncLit) {
	if b.anon == nil || lit.Body == nil {
		return
	}
	sum := buildSummary(b.p, b.fnName+".func", lit.Body, b.anon)
	*b.anon = append(*b.anon, &funcNode{
		pkg:   b.p,
		label: "function literal in " + b.fnName,
		pos:   lit.Pos(),
		sum:   sum,
	})
}

func (b *sumBuilder) scanExpr(e ast.Expr) {
	if e != nil {
		b.scanNode(e)
	}
}

// scanNode visits every call below n in source order, skipping
// function-literal bodies (those become anonymous nodes).
func (b *sumBuilder) scanNode(n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch v := c.(type) {
		case *ast.FuncLit:
			b.liftLiteral(v)
			return false
		case *ast.CallExpr:
			// Visit arguments (inner calls) before classifying the
			// outer call, matching evaluation order closely enough.
			for _, arg := range v.Args {
				b.scanNode(arg)
			}
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				b.scanNode(sel.X)
			}
			b.classifyCall(v)
			return false
		}
		return true
	})
}

func (b *sumBuilder) classifyCall(call *ast.CallExpr) {
	if recv, typ, method, ok := syncRecv(b.p, call); ok {
		name := canonicalName(b.p, recv)
		switch {
		case typ == "Mutex" || typ == "RWMutex":
			switch method {
			case "Lock", "RLock":
				b.acquire(name, call.Pos())
			case "Unlock", "RUnlock":
				b.release(name)
			case "TryLock", "TryRLock":
				b.acquire(name, call.Pos())
			}
		case typ == "WaitGroup":
			ref := wgRef{name: name, pos: call.Pos()}
			switch method {
			case "Add":
				b.sum.wgAdds = append(b.sum.wgAdds, ref)
			case "Done":
				b.sum.wgDones = append(b.sum.wgDones, ref)
			case "Wait":
				b.sum.wgWaits = append(b.sum.wgWaits, ref)
			}
		}
		return
	}

	fn := b.p.funcFor(call)
	if fn == nil {
		return // dynamic call (func value, conversion, builtin)
	}
	// Every resolvable call keeps its callee — a durability primitive
	// like tbl.Sync() is still a call whose body may take locks — and
	// the kind tells syncorder what the call means.
	ev := sumEvent{kind: evCall, pos: call.Pos(), held: b.heldCopy(), callee: fn}
	ev.iface, ev.ifaceT = ifaceCallType(b.p, call, fn)
	switch {
	case isTableWrite(b.p, call, fn):
		ev.kind = evWrite
	case isDataSync(fn, call):
		ev.kind = evSync
	case isManifestEdit(b.p, call, fn):
		ev.kind = evEdit
	}
	b.sum.events = append(b.sum.events, ev)
}

// isTableWrite reports a fresh-table data write: table.Create or
// (*table.Table).Append.
func isTableWrite(p *pkg, call *ast.CallExpr, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if fn.Name() == "Create" && strings.HasSuffix(pkgPathOf(fn), "internal/table") {
		return true
	}
	if fn.Name() == "Append" {
		if named := receiverNamed(p, call); named != nil &&
			named.Obj().Name() == "Table" &&
			strings.HasSuffix(named.Obj().Pkg().Path(), "internal/table") {
			return true
		}
	}
	return false
}

// isDataSync reports a zero-arg Sync() method call — tables, vfs
// files and WAL writers all expose one, and any of them establishes
// the durability point syncorder requires.
func isDataSync(fn *types.Func, call *ast.CallExpr) bool {
	if fn == nil || fn.Name() != "Sync" || len(call.Args) != 0 {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isManifestEdit reports a direct manifest edit: (*manifest.Log).Append
// or manifest.Create (which writes the snapshot edit).
func isManifestEdit(p *pkg, call *ast.CallExpr, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if fn.Name() == "Create" && strings.HasSuffix(pkgPathOf(fn), "internal/manifest") {
		return true
	}
	if fn.Name() == "Append" {
		if named := receiverNamed(p, call); named != nil &&
			named.Obj().Name() == "Log" &&
			strings.HasSuffix(named.Obj().Pkg().Path(), "internal/manifest") {
			return true
		}
	}
	return false
}

// ifaceCallType reports whether a call dispatches through an
// interface method, and if so the full interface type at the call
// site (the selection's receiver type when it is an interface — wider
// than the method's declaring interface for embedded methods).
func ifaceCallType(p *pkg, call *ast.CallExpr, fn *types.Func) (bool, *types.Interface) {
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if selection, found := p.info.Selections[sel]; found {
			recv := selection.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			if itf, isIface := recv.Underlying().(*types.Interface); isIface {
				return true, itf
			}
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false, nil
	}
	if itf, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
		return true, itf
	}
	return false, nil
}
