package iamdb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"iamdb/internal/engine"
	"iamdb/internal/table"
	"iamdb/internal/vlog"
	"iamdb/internal/wal"
)

// ErrScrubRunning reports that a Scrub pass is already in flight; only
// one runs at a time.
var ErrScrubRunning = errors.New("iamdb: scrub already running")

// ScrubReport summarises one full verification pass over the store's
// durable state.
type ScrubReport struct {
	// Tables is how many table files were verified; Seqs, Blocks,
	// Bytes and Entries total what their verification covered.
	Tables  int
	Seqs    int
	Blocks  int64
	Bytes   int64
	Entries uint64

	// WALFiles and WALRecords count the write-ahead logs scanned and
	// the records that verified; WALDropped is trailing bytes skipped
	// as a torn tail (expected after a crash, not corruption).
	WALFiles   int
	WALRecords int64
	WALDropped int64

	// VLogSegments and VLogRecords count the value-log segments scanned
	// and the records whose CRCs verified; VLogBytes totals their size.
	// VLogSuspect is trailing bytes of the head segment skipped as a
	// torn append (expected after a crash, not corruption).  All zero
	// when the store has no value log.
	VLogSegments int
	VLogRecords  int64
	VLogBytes    int64
	VLogSuspect  int64

	// Corruptions lists every typed corruption the pass found, in
	// discovery order.  Quarantined is how many tables the engine has
	// fenced off after the pass (including earlier detections).
	Corruptions []error
	Quarantined int
}

// String renders a one-line operator summary.
func (r *ScrubReport) String() string {
	s := fmt.Sprintf(
		"scrub: %d tables (%d seqs, %d blocks, %d bytes, %d entries), %d WALs (%d records, %d tail bytes dropped)",
		r.Tables, r.Seqs, r.Blocks, r.Bytes, r.Entries,
		r.WALFiles, r.WALRecords, r.WALDropped)
	if r.VLogSegments > 0 {
		s += fmt.Sprintf(", %d vlog segments (%d records, %d bytes, %d tail bytes suspect)",
			r.VLogSegments, r.VLogRecords, r.VLogBytes, r.VLogSuspect)
	}
	return s + fmt.Sprintf(", %d corruptions, %d quarantined",
		len(r.Corruptions), r.Quarantined)
}

// ScrubProgress is a point-in-time view of the current or most recent
// Scrub pass, for the /scrub debug endpoint and operator polling.
type ScrubProgress struct {
	// Running reports whether a pass is in flight right now.
	Running bool
	// Tables, Blocks and Bytes count what the in-flight (or last)
	// pass has covered so far.
	Tables int64
	Blocks int64
	Bytes  int64
	// Last is the most recent completed report (nil before the first
	// pass finishes); LastErr is that pass's error result.
	Last    *ScrubReport
	LastErr error
}

// Progress returns the current scrub progress counters.  A sharded DB
// reports the router-level flag and report with coverage counters
// summed across the shards' passes.
func (db *DB) ScrubProgress() ScrubProgress {
	db.scrub.mu.Lock()
	p := ScrubProgress{
		Running: db.scrub.running,
		Last:    db.scrub.last,
		LastErr: db.scrub.lastErr,
	}
	db.scrub.mu.Unlock()
	if ss := db.shards; ss != nil {
		for _, kid := range ss.kids {
			p.Tables += kid.scrub.tables.Load()
			p.Blocks += kid.scrub.blocks.Load()
			p.Bytes += kid.scrub.bytes.Load()
		}
		return p
	}
	p.Tables = db.scrub.tables.Load()
	p.Blocks = db.scrub.blocks.Load()
	p.Bytes = db.scrub.bytes.Load()
	return p
}

// scrubPacer rate-limits scrub reads to Options.ScrubBytesPerSec using
// real wall time (the scrub is an operator-facing maintenance job, not
// part of the deterministic engine clockwork).
type scrubPacer struct {
	rate  int64
	clock Clock
	start time.Duration
	bytes int64
}

func (p *scrubPacer) pace(n int64) {
	if p.rate <= 0 {
		return
	}
	p.bytes += n
	ahead := time.Duration(float64(p.bytes)/float64(p.rate)*float64(time.Second)) -
		(p.clock.Now() - p.start)
	if ahead > time.Millisecond {
		time.Sleep(ahead)
	}
}

// Scrub verifies every durable byte the store depends on: each table
// file's footer, metadata, index structure, data-block CRCs (read from
// disk, bypassing the cache), record ordering, Bloom membership and
// entry counts; each write-ahead log's record CRCs (a torn tail is
// tolerated, damage before valid records is not); and the engine's
// structural invariants (every manifest-referenced file present, ranges
// consistent).
//
// Detected corruption is counted, reported through the EventListener,
// and — when attributable to a table file — quarantines that table so
// compaction never rewrites the damaged data.  The pass continues past
// failures and lists everything it found in the report; err is the
// first corruption (or I/O failure) so callers can simply check err !=
// nil.  Reads to verify are rate-limited to Options.ScrubBytesPerSec
// when that is set.  Only one Scrub runs at a time.
func (db *DB) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	if db.closedA.Load() {
		return rep, ErrClosed
	}
	db.scrub.mu.Lock()
	if db.scrub.running {
		db.scrub.mu.Unlock()
		return rep, ErrScrubRunning
	}
	db.scrub.running = true
	db.scrub.mu.Unlock()
	db.scrub.tables.Store(0)
	db.scrub.blocks.Store(0)
	db.scrub.bytes.Store(0)

	var err error
	if ss := db.shards; ss != nil {
		// One shard at a time: the rate limit applies per shard, and the
		// router's running flag covers the whole pass.
		rep, err = ss.scrub()
	} else {
		rep, err = db.scrubPass()
	}

	db.scrub.mu.Lock()
	db.scrub.running = false
	db.scrub.last = &rep
	db.scrub.lastErr = err
	db.scrub.mu.Unlock()
	return rep, err
}

func (db *DB) scrubPass() (ScrubReport, error) {
	var rep ScrubReport
	var firstErr error
	note := func(err error) {
		rep.Corruptions = append(rep.Corruptions, err)
		if firstErr == nil {
			firstErr = err
		}
		db.noteCorruption(err)
	}
	pacer := &scrubPacer{rate: db.opt.ScrubBytesPerSec, clock: newWallClock()}
	pacer.start = pacer.clock.Now()

	// Tables: the engine hands us a referenced snapshot of every live
	// table; Verify re-reads each from disk without touching the cache.
	if tv, ok := db.eng.(engine.TableVisitor); ok {
		err := tv.VisitTables(func(level int, num uint64, t *table.Table) error {
			if db.closedA.Load() {
				return ErrClosed
			}
			st, verr := t.Verify(func(n int64) {
				db.scrubBlocksC.Inc()
				db.scrub.blocks.Add(1)
				db.scrub.bytes.Add(n)
				pacer.pace(n)
			})
			rep.Tables++
			db.scrub.tables.Add(1)
			rep.Seqs += st.Seqs
			rep.Blocks += st.Blocks
			rep.Bytes += st.Bytes
			rep.Entries += st.Entries
			if verr != nil {
				if IsCorruption(verr) {
					note(verr)
					return nil // keep scrubbing the other tables
				}
				return verr // I/O failure: abort the pass
			}
			return nil
		})
		if err != nil {
			return rep, err
		}
	}

	// Write-ahead logs: strict replay of every .log file.  The active
	// log's in-flight tail reads as a torn tail, which strict replay
	// tolerates; damage in front of valid records is corruption.
	names, err := db.fs.List(db.dir)
	if err != nil {
		return rep, err
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.HasSuffix(name, ".log") {
			continue
		}
		if _, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64); err != nil {
			continue
		}
		path := db.dir + "/" + name
		f, err := db.fs.Open(path)
		if err != nil {
			return rep, err
		}
		records := int64(0)
		dropped, rerr := wal.ReplayAllStrict(f, path, func(rec []byte) error {
			records++
			db.scrub.bytes.Add(int64(len(rec)))
			pacer.pace(int64(len(rec)))
			return nil
		})
		_ = f.Close()
		rep.WALFiles++
		rep.WALRecords += records
		rep.WALDropped += dropped
		if rerr != nil {
			if IsCorruption(rerr) {
				note(rerr)
				continue
			}
			return rep, rerr
		}
	}

	// Value log: re-read every record's CRC.  The head segment may end
	// in a torn append (crash mid-write), and a torn tail is physically
	// indistinguishable from rot, so trailing head bytes that fail to
	// parse are reported as suspect rather than corruption — the same
	// rule the WAL's torn tail gets.  Damage in any sealed segment is
	// corruption and fences that segment off from GC (rewriting damaged
	// records would launder the damage into fresh CRCs).
	if db.vl != nil {
		head := db.vl.Head()
		for _, seg := range db.vl.Segments() {
			if db.closedA.Load() {
				return rep, ErrClosed
			}
			path := vlog.SegmentName(db.dir, seg)
			if !db.fs.Exists(path) {
				continue // collected while the pass was running
			}
			scanned, serr := vlog.ScanFile(db.fs, path, func(key, val []byte, off int64, n int) error {
				rep.VLogRecords++
				db.scrub.bytes.Add(int64(n))
				pacer.pace(int64(n))
				return nil
			})
			rep.VLogSegments++
			rep.VLogBytes += scanned
			if serr == nil {
				continue
			}
			if !IsCorruption(serr) {
				return rep, serr
			}
			if seg == head {
				if f, ferr := db.fs.Open(path); ferr == nil {
					if sz, szerr := f.Size(); szerr == nil && sz > scanned {
						rep.VLogSuspect += sz - scanned
					}
					_ = f.Close()
				}
				continue
			}
			note(serr)
			db.vl.MarkBad(seg)
		}
	}

	// Structure: every manifest-referenced file present and the
	// engine's invariants intact.
	if cerr := db.CheckInvariants(); cerr != nil {
		note(cerr)
	}

	if q, ok := db.eng.(engine.Quarantiner); ok {
		rep.Quarantined = len(q.Quarantined())
	}
	return rep, firstErr
}
