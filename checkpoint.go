package iamdb

import (
	"fmt"
	"io"
	"strings"

	"iamdb/internal/vfs"
	"iamdb/internal/vlog"
)

// Checkpoint writes a consistent, openable copy of the database to
// dstDir (which must not already contain a database).  The checkpoint
// captures everything durable: all table files, the manifest, and the
// write-ahead logs, so records still in the memtables are carried by
// the copied WAL and recovered when the checkpoint is opened.
//
// The copy runs with background compaction quiesced (it holds the
// write path only long enough to flush the current memtable), so it is
// safe on a live DB.
//
// Commit protocol: tables and logs are copied (each synced) first, the
// manifest last — built under a temporary name and renamed into place.
// Opening a directory requires its MANIFEST, so a checkpoint that
// failed or crashed partway can never be mistaken for a valid
// database: the destination either has no manifest at all, or a fully
// synced one whose referenced files were already durable when it
// appeared.
// A sharded DB checkpoints shard by shard into shard-NNN
// subdirectories and writes the SHARDS routing marker last, as the
// commit point: a destination missing the marker is detected as torn
// at open instead of being adopted as a database.
func (db *DB) Checkpoint(dstDir string) error {
	if ss := db.shards; ss != nil {
		return ss.checkpoint(db, dstDir)
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()

	// Flush both memtables so the engine state plus the (now empty)
	// live WAL describe the whole database.  CompactAll also settles
	// pending compactions, giving the checkpoint a tidy tree.
	if err := db.CompactAll(); err != nil {
		return err
	}

	if err := db.fs.MkdirAll(dstDir); err != nil {
		return err
	}
	if db.fs.Exists(dstDir + "/MANIFEST") {
		return fmt.Errorf("iamdb: checkpoint target %s already holds a database", dstDir)
	}

	// Value-log segments are data the copied tree's pointer records
	// reference, so they join the data-before-metadata copy set.  GC
	// deletion is held across List and the copy loop so a concurrent
	// collection cannot remove a segment between the two.
	if db.vl != nil {
		db.vl.HoldDeletes()
		defer db.vl.ReleaseDeletes()
	}
	names, err := db.fs.List(db.dir)
	if err != nil {
		return err
	}
	var tables, logs, vsegs []string
	haveManifest := false
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, ".mst"):
			tables = append(tables, name)
		case strings.HasSuffix(name, ".log"):
			logs = append(logs, name)
		case strings.HasSuffix(name, vlog.SegmentSuffix):
			vsegs = append(vsegs, name)
		case name == "MANIFEST":
			haveManifest = true
		}
	}
	if !haveManifest {
		return fmt.Errorf("iamdb: checkpoint source %s has no manifest", db.dir)
	}
	// Data before metadata: every file the manifest will reference must
	// be durable before the manifest exists at the destination.
	for _, name := range append(append(append([]string(nil), tables...), logs...), vsegs...) {
		if err := copyFile(db.fs, db.dir+"/"+name, dstDir+"/"+name); err != nil {
			return fmt.Errorf("iamdb: checkpoint %s: %w", name, err)
		}
	}
	tmp := dstDir + "/MANIFEST.ckpt"
	if err := copyFile(db.fs, db.dir+"/MANIFEST", tmp); err != nil {
		_ = db.fs.Remove(tmp)
		return fmt.Errorf("iamdb: checkpoint MANIFEST: %w", err)
	}
	if err := db.fs.Rename(tmp, dstDir+"/MANIFEST"); err != nil {
		_ = db.fs.Remove(tmp)
		return fmt.Errorf("iamdb: checkpoint MANIFEST: %w", err)
	}
	return nil
}

func copyFile(fs vfs.FS, src, dst string) error {
	in, err := fs.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	size, err := in.Size()
	if err != nil {
		return err
	}
	out, err := fs.Create(dst)
	if err != nil {
		return err
	}
	defer out.Close()
	buf := make([]byte, 1<<20)
	var off int64
	for off < size {
		n, err := in.ReadAt(buf, off)
		if n > 0 {
			if _, werr := out.WriteAt(buf[:n], off); werr != nil {
				return werr
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return out.Sync()
}
