// Command iamdb is a small CLI over the storage library: put, get,
// delete, scan, load and stats against a database directory on the
// real filesystem.
//
// Usage:
//
//	iamdb -db ./data [-engine IAM|LSA|LevelDB|RocksDB] [-shards N] <command> [args]
//
// Commands:
//
//	put <key> <value>        store a key
//	get <key>                print a value
//	del <key>                delete a key
//	scan <start> [limit]     print up to limit records from start
//	rscan <start> [limit]    print up to limit records backward from start
//	load <n> [valueSize]     insert n hash-ordered records
//	stats                    print the per-level metrics report
//	statsjson                print the metrics snapshot as JSON
//	compact                  run the tuning phase to completion
//	scrub                    verify every durable byte (table CRCs, WAL
//	                         records, structure); exit nonzero and list
//	                         findings on corruption
//	debug [load-n]           serve live introspection on -addr until
//	                         interrupted: /metrics, /timeline, /traces,
//	                         /levels, /debug/pprof; the optional
//	                         argument keeps a background load running
//	                         so there is something to watch
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"sync"

	"iamdb"
	"iamdb/internal/ycsb"
)

func main() {
	var (
		dir    = flag.String("db", "./iamdb-data", "database directory")
		engine = flag.String("engine", "IAM", "IAM | LSA | LevelDB | RocksDB")
		ctKB   = flag.Int64("ct", 4096, "memtable/node capacity in KiB")
		addr   = flag.String("addr", "127.0.0.1:6060", "debug server address (debug command)")
		shards = flag.Int("shards", 0, "range-shard the keyspace across N independent trees (recorded at creation; reopening adopts the recorded layout)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	kind, ok := map[string]iamdb.EngineKind{
		"IAM": iamdb.IAM, "LSA": iamdb.LSA,
		"LevelDB": iamdb.LevelDB, "RocksDB": iamdb.RocksDB,
	}[*engine]
	if !ok {
		fatalf("unknown engine %q", *engine)
	}

	opt := &iamdb.Options{
		Engine:       kind,
		MemtableSize: *ctKB * 1024,
		Shards:       *shards,
	}
	if args[0] == "debug" {
		// The debug server wants the full observability stack: a span
		// recorder and (implicitly, via DebugAddr) a timeline sampler,
		// all on one shared wall clock so /traces timestamps line up
		// with the latency histograms.
		clk := iamdb.NewWallClock()
		opt.Clock = clk
		opt.DebugAddr = *addr
		opt.Trace = iamdb.NewTraceRecorder(0, clk)
	}
	db, err := iamdb.Open(*dir, opt)
	if err != nil {
		fatalf("open: %v", err)
	}
	defer db.Close()

	switch args[0] {
	case "put":
		need(args, 3)
		if err := db.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fatalf("put: %v", err)
		}
	case "get":
		need(args, 2)
		v, err := db.Get([]byte(args[1]))
		if err == iamdb.ErrNotFound {
			fatalf("not found")
		}
		if err != nil {
			fatalf("get: %v", err)
		}
		fmt.Printf("%s\n", v)
	case "del":
		need(args, 2)
		if err := db.Delete([]byte(args[1])); err != nil {
			fatalf("del: %v", err)
		}
	case "scan":
		need(args, 2)
		limit := 20
		if len(args) > 2 {
			limit, _ = strconv.Atoi(args[2])
		}
		it := db.NewIterator()
		defer it.Close()
		n := 0
		for it.Seek([]byte(args[1])); it.Valid() && n < limit; it.Next() {
			fmt.Printf("%s = %s\n", it.Key(), it.Value())
			n++
		}
		if err := it.Err(); err != nil {
			fatalf("scan: %v", err)
		}
	case "rscan":
		need(args, 2)
		limit := 20
		if len(args) > 2 {
			limit, _ = strconv.Atoi(args[2])
		}
		it := db.NewIterator()
		defer it.Close()
		n := 0
		for it.SeekForPrev([]byte(args[1])); it.Valid() && n < limit; it.Prev() {
			fmt.Printf("%s = %s\n", it.Key(), it.Value())
			n++
		}
		if err := it.Err(); err != nil {
			fatalf("rscan: %v", err)
		}
	case "load":
		need(args, 2)
		n, err := strconv.Atoi(args[1])
		if err != nil {
			fatalf("load: bad count %q", args[1])
		}
		valueSize := 1024
		if len(args) > 2 {
			valueSize, _ = strconv.Atoi(args[2])
		}
		val := make([]byte, valueSize)
		for i := range val {
			val[i] = byte('a' + i%26)
		}
		for i := 0; i < n; i++ {
			if err := db.Put(ycsb.KeyName(uint64(i)), val); err != nil {
				fatalf("load: %v", err)
			}
		}
		fmt.Printf("loaded %d records\n", n)
	case "stats":
		m := db.Metrics()
		fmt.Printf("engine: %s\n", *engine)
		fmt.Print(m.String())
		if mm, kk := db.MixedLevel(); mm > 0 {
			fmt.Printf("Mixed level m=%d k=%d\n", mm, kk)
		}
		// A sharded store also renders every shard's own report under
		// the aggregate; single-shard output stays exactly as above.
		if n := db.NumShards(); n > 1 {
			for i := 0; i < n; i++ {
				lo, hi := db.ShardRange(i)
				fmt.Printf("\n-- shard %03d [%s, %s) --\n", i, bound(lo, "-inf"), bound(hi, "+inf"))
				fmt.Print(db.ShardMetrics(i).String())
			}
		}
	case "statsjson":
		data, err := json.MarshalIndent(db.Metrics(), "", "  ")
		if err != nil {
			fatalf("statsjson: %v", err)
		}
		fmt.Printf("%s\n", data)
	case "compact":
		if err := db.CompactAll(); err != nil {
			fatalf("compact: %v", err)
		}
		fmt.Println("compacted")
	case "scrub":
		rep, err := db.Scrub()
		fmt.Println(rep.String())
		for _, c := range rep.Corruptions {
			fmt.Fprintf(os.Stderr, "  %v\n", c)
		}
		if err != nil {
			fatalf("scrub: %v", err)
		}
	case "debug":
		fmt.Printf("debug server on http://%s/ (ctrl-c to stop)\n", db.DebugAddr())
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt)
		var wg sync.WaitGroup
		stopLoad := make(chan struct{})
		if len(args) > 1 {
			// Optional background load so the timeline and traces move.
			n, err := strconv.Atoi(args[1])
			if err != nil {
				fatalf("debug: bad load count %q", args[1])
			}
			val := make([]byte, 1024)
			for i := range val {
				val[i] = byte('a' + i%26)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					select {
					case <-stopLoad:
						return
					default:
					}
					if err := db.Put(ycsb.KeyName(uint64(i)), val); err != nil {
						fmt.Fprintf(os.Stderr, "load: %v\n", err)
						return
					}
				}
				fmt.Printf("background load of %d records done\n", n)
			}()
		}
		<-stop
		close(stopLoad)
		wg.Wait()
		fmt.Println("stopping")
	default:
		fatalf("unknown command %q", args[0])
	}
}

// bound renders a shard range endpoint.
func bound(b []byte, unbounded string) string {
	if b == nil {
		return unbounded
	}
	return fmt.Sprintf("%q", b)
}

func need(args []string, n int) {
	if len(args) < n {
		fatalf("missing arguments")
	}
}

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", a...)
	os.Exit(1)
}
