package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"iamdb/internal/engine"
	"iamdb/internal/invariants"
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/manifest"
	"iamdb/internal/metrics"
	"iamdb/internal/table"
)

// batch is an in-memory run of records in internal-key order, the unit
// a flush partitions and delivers ("the records to be flushed are
// loaded into memory first", Sec. 4.2.1).
type batch struct {
	keys, vals [][]byte
}

func (b *batch) len() int { return len(b.keys) }

func (b *batch) iter() iterator.Iterator {
	return iterator.NewSlice(kv.CompareInternal, b.keys, b.vals)
}

// span returns the user-key span of the batch.
func (b *batch) span() kv.Range {
	if b.len() == 0 {
		return kv.Range{}
	}
	return kv.MakeRange(kv.UserKey(b.keys[0]), kv.UserKey(b.keys[b.len()-1]))
}

func (b *batch) slice(lo, hi int) *batch {
	return &batch{keys: b.keys[lo:hi], vals: b.vals[lo:hi]}
}

// collect materializes an iterator into a batch, copying keys and
// values (table iterators reuse their buffers).
func collect(it iterator.Iterator) (*batch, error) {
	b := &batch{}
	for it.First(); it.Valid(); it.Next() {
		b.keys = append(b.keys, append([]byte(nil), it.Key()...))
		b.vals = append(b.vals, append([]byte(nil), it.Value()...))
	}
	return b, it.Err()
}

// Flush implements engine.Engine: it empties one immutable memtable
// (the in-memory L0 node) into the tree, running the full compaction
// cascade the paper's flush/split/combine rules demand.
func (t *Tree) Flush(it iterator.Iterator) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.CountFlush()
	start := t.cfg.Clock.Now()
	var flushed int64
	sp := t.cfg.Trace.Begin("core.flush")
	prevSpan := t.curSpan
	t.curSpan = sp.ID()
	// Fired via defer so the event pairs 1:1 with the CountFlush above
	// even on error paths.
	defer func() {
		t.curSpan = prevSpan
		sp.SetBytes(flushed)
		sp.End()
		t.cfg.Events.FlushEnd(metrics.FlushInfo{Bytes: flushed, Duration: t.cfg.Clock.Now() - start})
	}()
	atBottom := t.treeEmptyLocked()
	b, err := collect(engine.DropObsoleteObserved(it, t.horizon, atBottom, t.cfg.OnDrop))
	if err != nil {
		return err
	}
	flushed = int64(batchBytes(b))
	if b.len() == 0 {
		return nil
	}
	if err := t.maintain(); err != nil {
		return err
	}
	t.retuneMK()
	if err := t.flushBatch(0, b.span(), b); err != nil {
		return err
	}
	if err := t.maintain(); err != nil {
		return err
	}
	if invariants.Enabled {
		// The full structural check after every flush cascade: disjoint
		// sorted ranges, data inside node ranges, level thresholds.
		if err := t.checkInvariantsLocked(); err != nil {
			invariants.Assertf(false, "tree invariants broken after flush: %v", err)
		}
	}
	return nil
}

func (t *Tree) treeEmptyLocked() bool {
	for i := 1; i <= t.n(); i++ {
		if len(t.levels[i]) > 0 {
			return false
		}
	}
	return true
}

// flushBatch delivers a batch from level src into level src+1, as the
// tail half of a flush (the batch is the parent's merged records).
func (t *Tree) flushBatch(src int, srcRange kv.Range, b *batch) error {
	dst := src + 1
	if dst > t.n() {
		return fmt.Errorf("core: flush below leaf level (src %d, n %d)", src, t.n())
	}
	// Resolve full internal children first (flush precondition 2).
	if dst < t.n() {
		for {
			resolved := true
			for _, idx := range t.children(src, srcRange) {
				kid := t.levels[dst][idx]
				if t.full(kid) {
					if err := t.flushNode(dst, kid, false); err != nil {
						return err
					}
					resolved = false
					break // structure changed; rescan
				}
			}
			if resolved {
				break
			}
		}
	}
	kidIdxs := t.children(src, srcRange)
	if len(kidIdxs) == 0 {
		// No children: the data becomes a new node in dst outright.
		_, err := t.writeNodes(dst, b, t.cfg.NodeCapacity)
		return err
	}
	return t.deliver(dst, kidIdxs, b)
}

// flushNode performs the flush operation of Sec. 4.2.1 on an on-disk
// node: its records move to its children and the node empties.  With
// destroy (a combine, Sec. 4.2.3) the node is removed afterwards.
func (t *Tree) flushNode(i int, x *node, destroy bool) error {
	t.stats.CountFlush()
	start := t.cfg.Clock.Now()
	var flushed int64
	sp := t.cfg.Trace.BeginAt("core.flushnode", t.curSpan)
	sp.SetLevel(i)
	sp.AddIn(x.num)
	prevSpan := t.curSpan
	t.curSpan = sp.ID()
	defer func() {
		t.curSpan = prevSpan
		sp.SetBytes(flushed)
		sp.End()
		t.cfg.Events.FlushEnd(metrics.FlushInfo{Bytes: flushed, Duration: t.cfg.Clock.Now() - start})
	}()
	// Precondition 1: fewer than 2t children, else split instead.
	if t.childCount(i, x.rng) >= 2*t.cfg.Fanout {
		if err := t.splitNode(i, x); err != nil {
			return err
		}
		if !destroy {
			return nil // split replaced the flush
		}
		// A combine picked a wide node; fall through is impossible
		// since x no longer exists.  The caller's maintain loop will
		// pick a new combine candidate.
		return nil
	}
	// Move-down fast path: no children means no rewriting, only
	// metadata changes (the sequential-write property of Sec. 4.2.1).
	if t.childCount(i, x.rng) == 0 {
		if i+1 > t.n() {
			return fmt.Errorf("core: move below leaf level from L%d", i)
		}
		mv := t.cfg.Trace.BeginAt("core.move", sp.ID())
		mv.SetLevel(i + 1)
		mv.AddIn(x.num)
		mv.AddOut(x.num) // the file survives the move, re-homed a level down
		t.removeFromLevel(i, x)
		t.addToLevel(i+1, x)
		t.stats.CountMove(i + 1)
		mv.End()
		t.cfg.Events.MoveEnd(metrics.MoveInfo{FromLevel: i, ToLevel: i + 1})
		return t.logEdit(&manifest.Edit{
			Deleted: []manifest.NodeRef{{Level: i, FileNum: x.num}},
			Added:   []manifest.NodeRecord{t.record(i+1, x)},
		})
	}
	t.stats.AddReadBytes(i, x.dataSize())
	b, err := t.loadNode(x)
	if err != nil {
		return err
	}
	flushed = int64(batchBytes(b))
	if err := t.flushBatch(i, x.rng, b); err != nil {
		return err
	}
	if destroy {
		t.removeFromLevel(i, x)
		edit := &manifest.Edit{Deleted: []manifest.NodeRef{{Level: i, FileNum: x.num}}}
		err := t.logEdit(edit)
		t.deleteNode(x, err == nil)
		return err
	}
	return t.emptyNode(i, x)
}

// loadNode merges a node's sequences in memory, dropping obsolete
// versions (the node's own sequences shadow each other).
func (t *Tree) loadNode(x *node) (*batch, error) {
	it := engine.DropObsoleteObserved(x.tbl.NewIter(), t.horizon, false, t.cfg.OnDrop)
	defer it.Close()
	return collect(it)
}

// emptyNode replaces a flushed node with a fresh empty one holding the
// same assigned range (shrunk toward balance with its neighbors —
// Sec. 4.2.1: "its key range usually remains unchanged but may be
// reduced after flushing").  The old node object stays intact for any
// concurrent readers still holding references to it.
func (t *Tree) emptyNode(i int, x *node) error {
	tbl, num, err := t.newTable()
	if err != nil {
		return err
	}
	// The fresh (empty) table must be durable before a manifest edit
	// references it, or a crash could leave the manifest naming an
	// unwritten file.
	if err := tbl.Sync(); err != nil {
		_ = tbl.Close()
		_ = t.cfg.FS.Remove(engine.TableFileName(t.cfg.Dir, num))
		return err
	}
	fresh := &node{num: num, tbl: tbl, rng: x.rng, refs: 1}
	t.removeFromLevel(i, x)
	t.addToLevel(i, fresh)
	t.shrinkRange(i, fresh)
	err = t.logEdit(&manifest.Edit{
		Deleted:  []manifest.NodeRef{{Level: i, FileNum: x.num}},
		Added:    []manifest.NodeRecord{t.record(i, fresh)},
		NextFile: t.nextFile, SetNextFile: true,
	})
	t.deleteNode(x, err == nil)
	return err
}

// shrinkRange narrows an empty node's range so its child count moves
// toward its smaller neighbor's, shedding children from the side that
// faces that neighbor.  The shed span becomes a gap the neighbor will
// absorb via out-of-range assignment in a later flush.
func (t *Tree) shrinkRange(i int, x *node) {
	if i+1 > t.n() {
		return
	}
	kids := t.children(i, x.rng)
	if len(kids) < 2 {
		return
	}
	lvl := t.levels[i]
	pos := -1
	for j, nd := range lvl {
		if nd == x {
			pos = j
			break
		}
	}
	if pos < 0 {
		return
	}
	lo, hi := 0, len(kids) // retained child window [lo, hi)
	if pos > 0 {
		ln := len(t.children(i, lvl[pos-1].rng))
		if len(kids)-ln >= 2 {
			lo = (len(kids) - ln) / 2 // shed toward the left neighbor
		}
	}
	if pos < len(lvl)-1 {
		rn := len(t.children(i, lvl[pos+1].rng))
		if (hi-lo)-rn >= 2 {
			hi -= ((hi - lo) - rn) / 2 // shed toward the right neighbor
		}
	}
	if lo == 0 && hi == len(kids) || lo >= hi {
		return
	}
	next := t.levels[i+1]
	newRng := kv.Range{}
	for _, idx := range kids[lo:hi] {
		newRng = newRng.Union(next[idx].rng)
	}
	newRng = clampRange(newRng, x.rng)
	if !newRng.Empty() {
		x.rng = newRng
		t.sortLevel(i)
	}
}

// clampRange intersects r with bound.
func clampRange(r, bound kv.Range) kv.Range {
	if r.Empty() || bound.Empty() {
		return kv.Range{}
	}
	out := r
	if kv.CompareUser(out.Lo, bound.Lo) < 0 {
		out.Lo = bound.Lo
	}
	if kv.CompareUser(out.Hi, bound.Hi) > 0 {
		out.Hi = bound.Hi
	}
	if kv.CompareUser(out.Lo, out.Hi) > 0 {
		return kv.Range{}
	}
	return out
}

// deliver partitions a batch across the destination children and
// appends or merges each child's share per the policy (Sec. 5.1).
func (t *Tree) deliver(dst int, kidIdxs []int, b *batch) error {
	kids := make([]*node, len(kidIdxs))
	for j, idx := range kidIdxs {
		kids[j] = t.levels[dst][idx]
	}
	leaf := dst == t.n()
	// Grandchild counts decide gap assignment between internal kids.
	var gcCount []int
	if !leaf {
		gcCount = make([]int, len(kids))
		for j, kid := range kids {
			gcCount[j] = len(t.children(dst, kid.rng))
		}
	}

	// One pass over the sorted batch: compute each child's contiguous
	// share [start, end).
	type share struct{ start, end int }
	shares := make([]share, len(kids))
	for j := range shares {
		shares[j] = share{-1, -1}
	}
	p := 0
	assign := func(j, rec int) {
		if shares[j].start < 0 {
			shares[j].start = rec
		}
		shares[j].end = rec + 1
	}
	for rec := 0; rec < b.len(); rec++ {
		u := kv.UserKey(b.keys[rec])
		for p < len(kids) && kv.CompareUser(u, kids[p].rng.Hi) > 0 {
			p++
		}
		switch {
		case p < len(kids) && kids[p].rng.Contains(u):
			assign(p, rec)
		case p == 0:
			assign(0, rec) // before the first child: closest is kids[0]
		case p >= len(kids):
			assign(len(kids)-1, rec) // after the last child
		default:
			// In the gap between kids[p-1] and kids[p].
			left, right := p-1, p
			var j int
			if leaf {
				// Leaf: assign to the child with the closest range.
				if keyDistance(kids[left].rng.Hi, u) <= keyDistance(u, kids[right].rng.Lo) {
					j = left
				} else {
					j = right
				}
			} else {
				// Internal: prefer the child with fewer children to
				// alleviate range skew (Sec. 4.2.1).
				if gcCount[left] <= gcCount[right] {
					j = left
				} else {
					j = right
				}
			}
			// Keep assignment monotone: never go back before the last
			// child that received a record.
			if shares[right].start >= 0 {
				j = right
			}
			assign(j, rec)
		}
	}

	for j, s := range shares {
		if s.start < 0 {
			continue
		}
		if err := t.deliverToChild(dst, kids[j], b.slice(s.start, s.end)); err != nil {
			return err
		}
	}
	return nil
}

// keyDistance approximates how far apart two user keys are, for the
// leaf "closest range" rule: the magnitude of the difference of the
// first eight bytes beyond the common prefix, interpreted big-endian.
func keyDistance(a, b []byte) uint64 {
	if kv.CompareUser(a, b) > 0 {
		a, b = b, a
	}
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return keyNum(b[i:]) - keyNum(a[i:])
}

func keyNum(k []byte) uint64 {
	var buf [8]byte
	copy(buf[:], k)
	return binary.BigEndian.Uint64(buf[:])
}

// deliverToChild appends or merges one child's share.
func (t *Tree) deliverToChild(dst int, kid *node, sub *batch) error {
	if t.shouldMerge(dst, kid) {
		return t.mergeChild(dst, kid, sub)
	}
	sp := t.cfg.Trace.BeginAt("core.append", t.curSpan)
	it := sub.iter()
	it.First()
	res, err := kid.tbl.AppendFrom(it, 1<<62)
	if errors.Is(err, table.ErrNoSpace) {
		return t.mergeChild(dst, kid, sub)
	}
	if err != nil {
		return err
	}
	t.stats.CountAppend(dst)
	t.stats.AddFlushBytes(dst, res.Bytes)
	sp.SetLevel(dst)
	sp.SetBytes(res.Bytes)
	sp.SetCount(int64(sub.len()))
	sp.AddIn(kid.num)
	sp.AddOut(kid.num)
	defer sp.End()
	t.cfg.Events.AppendEnd(metrics.AppendInfo{Level: dst, Bytes: res.Bytes})
	newRng := kid.rng.Union(sub.span())
	if newRng.String() != kid.rng.String() {
		// Widen the manifest range before syncing the data: a crash in
		// between leaves a wide range over old data (harmless), whereas
		// the reverse order could surface durable data outside the
		// node's recorded range.
		kid.rng = newRng
		t.sortLevel(dst)
		if err := t.logEdit(&manifest.Edit{
			Deleted: []manifest.NodeRef{{Level: dst, FileNum: kid.num}},
			Added:   []manifest.NodeRecord{t.record(dst, kid)},
		}); err != nil {
			return err
		}
	}
	// The flush completes (and the WAL is retired) only once the
	// appended sequence is durable.
	return kid.tbl.Sync()
}

// mergeChild rewrites a child together with its incoming share into
// one or more fresh single-sequence nodes.  At the leaf level new
// nodes start at Cts = Ct/LeafInitFrac (Sec. 4.2.1, Fig. 4); at
// internal merging levels the merge yields a single node.
func (t *Tree) mergeChild(dst int, kid *node, sub *batch) error {
	start := t.cfg.Clock.Now()
	sp := t.cfg.Trace.BeginAt("core.merge", t.curSpan)
	sp.SetLevel(dst)
	sp.AddIn(kid.num)
	atBottom := dst == t.n()
	chunk := t.cfg.NodeCapacity // internal merge: one (near-)full node
	if atBottom && kid.dataSize()+int64(batchBytes(sub)) > t.cfg.NodeCapacity {
		chunk = t.cfg.NodeCapacity / int64(t.cfg.LeafInitFrac)
	}
	t.stats.AddReadBytes(dst, kid.dataSize())
	merged := iterator.NewMerging(kv.CompareInternal, sub.iter(), kid.tbl.NewIter())
	filtered := engine.DropObsoleteObserved(merged, t.horizon, atBottom, t.cfg.OnDrop)
	filtered.First()
	newNodes, bytes, err := t.writeNodesFrom(filtered, chunk)
	if err != nil {
		return err
	}
	t.stats.CountMerge(dst)
	t.stats.AddFlushBytes(dst, bytes)
	t.cfg.Events.MergeEnd(metrics.MergeInfo{Level: dst, Bytes: bytes, Duration: t.cfg.Clock.Now() - start})

	edit := &manifest.Edit{Deleted: []manifest.NodeRef{{Level: dst, FileNum: kid.num}},
		NextFile: t.nextFile, SetNextFile: true}
	t.removeFromLevel(dst, kid)
	for _, nd := range newNodes {
		t.addToLevel(dst, nd)
		sp.AddOut(nd.num)
		edit.Added = append(edit.Added, t.record(dst, nd))
	}
	// The old file may only disappear once the edit dropping it is
	// durable; see deleteNode.
	err = t.logEdit(edit)
	t.deleteNode(kid, err == nil)
	sp.SetBytes(bytes)
	sp.End()
	return err
}

func batchBytes(b *batch) int {
	n := 0
	for i := range b.keys {
		n += len(b.keys[i]) + len(b.vals[i])
	}
	return n
}

// writeNodes writes a batch as new single-sequence node(s) in level
// dst, chunked at limit bytes.
func (t *Tree) writeNodes(dst int, b *batch, limit int64) ([]*node, error) {
	it := b.iter()
	it.First()
	nodes, bytes, err := t.writeNodesFrom(it, limit)
	if err != nil {
		return nil, err
	}
	t.stats.AddFlushBytes(dst, bytes)
	edit := &manifest.Edit{NextFile: t.nextFile, SetNextFile: true}
	for _, nd := range nodes {
		t.addToLevel(dst, nd)
		edit.Added = append(edit.Added, t.record(dst, nd))
	}
	return nodes, t.logEdit(edit)
}

// writeNodesFrom drains a positioned iterator into fresh tables of at
// most limit data bytes each (finishing the current user key, so all
// versions of a key share one node), returning the new nodes (ranges =
// data spans) and total bytes written.  Each chunk is gathered in
// memory first so the file capacity can be sized to fit even when a
// single key's version chain exceeds the node capacity.
func (t *Tree) writeNodesFrom(it iterator.Iterator, limit int64) ([]*node, int64, error) {
	var nodes []*node
	var total int64
	for it.Valid() {
		cb := &batch{}
		var bytes int64
		var lastUser []byte
		for ; it.Valid(); it.Next() {
			u := kv.UserKey(it.Key())
			if bytes >= limit && !bytesEqual(u, lastUser) {
				break
			}
			cb.keys = append(cb.keys, append([]byte(nil), it.Key()...))
			cb.vals = append(cb.vals, append([]byte(nil), it.Value()...))
			bytes += int64(len(it.Key()) + len(it.Value()))
			lastUser = append(lastUser[:0], u...)
		}
		if err := it.Err(); err != nil {
			return nodes, total, err
		}
		if cb.len() == 0 {
			break
		}
		capacity := t.cfg.fileCapacity()
		if need := bytes + bytes/2 + 64*1024; need > capacity {
			capacity = need // oversized version chain: grow the file
		}
		tbl, num, err := t.newTableCap(capacity)
		if err != nil {
			return nodes, total, err
		}
		res, err := tbl.Append(cb.iter())
		if err == nil {
			// New tables must be durable before any manifest edit
			// references them (the callers log the edit right after).
			err = tbl.Sync()
		}
		if err != nil {
			// Error-path cleanup of a half-written table: the append
			// failure is the error that matters.
			_ = tbl.Close()
			_ = t.cfg.FS.Remove(engine.TableFileName(t.cfg.Dir, num))
			return nodes, total, err
		}
		total += res.Bytes
		nodes = append(nodes, &node{num: num, tbl: tbl, rng: tbl.UserRange(), refs: 1})
	}
	// An iterator whose very first position failed never enters the
	// loop above: without this check a corrupt input would read as
	// empty and the merge would silently discard the node's data.
	if err := it.Err(); err != nil {
		return nodes, total, err
	}
	return nodes, total, nil
}

func bytesEqual(a, b []byte) bool {
	return len(a) == len(b) && string(a) == string(b)
}

// splitNode divides a full node with at least 2t children into two
// nodes, each taking half the children (Sec. 4.2.2), eliminating the
// worst write case.
func (t *Tree) splitNode(i int, x *node) error {
	kidIdxs := t.children(i, x.rng)
	if len(kidIdxs) < 2 {
		return fmt.Errorf("core: split of L%d node %d with %d children", i, x.num, len(kidIdxs))
	}
	sp := t.cfg.Trace.BeginAt("core.split", t.curSpan)
	sp.SetLevel(i)
	sp.AddIn(x.num)
	next := t.levels[i+1]
	half := len(kidIdxs) / 2
	mid := next[kidIdxs[half]].rng.Lo

	t.stats.AddReadBytes(i, x.dataSize())
	b, err := t.loadNode(x)
	if err != nil {
		return err
	}
	cut := 0
	for cut < b.len() && kv.CompareUser(kv.UserKey(b.keys[cut]), mid) < 0 {
		cut++
	}
	leftB, rightB := b.slice(0, cut), b.slice(cut, b.len())

	// "The initial key range of the new node is formed by the smallest
	// and largest keys of the records stored in itself and its
	// assigned children", clamped to x's old range to stay disjoint
	// from x's siblings.
	leftRng, rightRng := leftB.span(), rightB.span()
	for _, idx := range kidIdxs[:half] {
		leftRng = leftRng.Union(next[idx].rng)
	}
	for _, idx := range kidIdxs[half:] {
		rightRng = rightRng.Union(next[idx].rng)
	}
	leftRng = clampRange(leftRng, x.rng)
	rightRng = clampRange(rightRng, x.rng)

	var total int64
	var newNodes []*node
	for _, part := range []struct {
		b   *batch
		rng kv.Range
	}{{leftB, leftRng}, {rightB, rightRng}} {
		if part.rng.Empty() {
			continue
		}
		it := part.b.iter()
		it.First()
		nds, bytes, err := t.writeNodesFrom(it, t.cfg.NodeCapacity)
		if err != nil {
			return err
		}
		total += bytes
		if len(nds) == 0 {
			// Empty half: materialize an empty node holding the range.
			tbl, num, err := t.newTable()
			if err != nil {
				return err
			}
			if err := tbl.Sync(); err != nil {
				_ = tbl.Close()
				_ = t.cfg.FS.Remove(engine.TableFileName(t.cfg.Dir, num))
				return err
			}
			nds = []*node{{num: num, tbl: tbl, rng: part.rng, refs: 1}}
		} else {
			nds[0].rng = part.rng // widen to the assigned range
		}
		newNodes = append(newNodes, nds...)
	}
	t.stats.CountSplit(i)
	t.stats.AddFlushBytes(i, total)
	t.cfg.Events.SplitEnd(metrics.SplitInfo{Level: i, Bytes: total, NewNodes: len(newNodes)})

	edit := &manifest.Edit{Deleted: []manifest.NodeRef{{Level: i, FileNum: x.num}},
		NextFile: t.nextFile, SetNextFile: true}
	t.removeFromLevel(i, x)
	for _, nd := range newNodes {
		t.addToLevel(i, nd)
		sp.AddOut(nd.num)
		edit.Added = append(edit.Added, t.record(i, nd))
	}
	err = t.logEdit(edit)
	t.deleteNode(x, err == nil)
	sp.SetBytes(total)
	sp.SetCount(int64(len(newNodes)))
	sp.End()
	return err
}

// maintain restores the structural constraints before and after
// flushes (Sec. 4.2.3): grow the tree when the leaf level fills, and
// combine nodes of overfull internal levels.
func (t *Tree) maintain() error {
	for pass := 0; pass < 100000; pass++ {
		n := t.n()
		if len(t.levels[n]) >= t.threshold(n) {
			// The leaf level is full: it becomes internal and a new
			// empty leaf level opens beneath it.
			t.levels = append(t.levels, nil)
			if err := t.logEdit(&manifest.Edit{NumLevels: t.n(), SetLevels: true}); err != nil {
				return err
			}
			continue
		}
		fixed := true
		for i := t.n() - 1; i >= 1; i-- {
			// Quarantined nodes are excluded: they can never be combined
			// away, so counting them would wedge this loop.
			if t.activeCount(i) > t.threshold(i) {
				if err := t.combineOne(i); err != nil {
					return err
				}
				fixed = false
				break
			}
		}
		if fixed {
			return nil
		}
	}
	return errors.New("core: maintain did not converge")
}

// combineOne picks and combines one node of level i per the paper's
// candidate rule: among nodes with two adjacent siblings whose
// three-node range covers at most 3t children, take the smallest such
// cover (Tcn); this keeps the neighbors from splitting right away.
func (t *Tree) combineOne(i int) error {
	lvl := t.levels[i]
	if len(lvl) == 0 {
		return errors.New("core: combine on empty level")
	}
	best, bestTcn := -1, 1<<30
	for j := 1; j < len(lvl)-1; j++ {
		if lvl[j].quarantined {
			continue // combining would read the corrupt contents
		}
		own := len(t.children(i, lvl[j].rng))
		if own >= 2*t.cfg.Fanout {
			continue
		}
		cover := lvl[j-1].rng.Union(lvl[j].rng).Union(lvl[j+1].rng)
		tcn := t.childCount(i, cover)
		if tcn <= 3*t.cfg.Fanout && tcn < bestTcn {
			best, bestTcn = j, tcn
		}
	}
	if best < 0 {
		// Fallback: the non-quarantined node with the fewest children.
		fewest := 1 << 30
		for j := range lvl {
			if lvl[j].quarantined {
				continue
			}
			own := len(t.children(i, lvl[j].rng))
			if own < fewest {
				best, fewest = j, own
			}
		}
	}
	if best < 0 {
		return nil // every node fenced; maintain's active count excuses them
	}
	t.stats.CountCombine(i)
	sp := t.cfg.Trace.BeginAt("core.combine", t.curSpan)
	sp.SetLevel(i)
	sp.AddIn(lvl[best].num)
	prevSpan := t.curSpan
	t.curSpan = sp.ID()
	t.cfg.Events.CombineEnd(metrics.CombineInfo{Level: i})
	err := t.flushNode(i, lvl[best], true)
	t.curSpan = prevSpan
	sp.End()
	return err
}

func (t *Tree) removeFromLevel(i int, x *node) {
	lvl := t.levels[i]
	for j, nd := range lvl {
		if nd == x {
			t.levels[i] = append(lvl[:j], lvl[j+1:]...)
			return
		}
	}
}

func (t *Tree) addToLevel(i int, x *node) {
	t.levels[i] = append(t.levels[i], x)
	t.sortLevel(i)
}

func (t *Tree) logEdit(e *manifest.Edit) error {
	t.cfg.Events.ManifestEdit(metrics.ManifestEditInfo{Adds: len(e.Added), Deletes: len(e.Deleted)})
	return t.man.Append(e)
}
