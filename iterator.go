package iamdb

import (
	"time"

	"iamdb/internal/iterator"
	"iamdb/internal/kv"
)

// Iterator walks live user keys in ascending order at a fixed snapshot,
// hiding MVCC versions and tombstones.  Usage:
//
//	it := db.NewIterator()
//	defer it.Close()
//	for it.First(); it.Valid(); it.Next() {
//	    use(it.Key(), it.Value())
//	}
//
// Key and Value return copies safe to retain.
type Iterator struct {
	db   *DB
	in   iterator.Iterator
	snap kv.Seq
	key  []byte
	val  []byte
	// vkind is the raw kind behind val: a KindValuePtr val is a value-log
	// pointer that Value resolves lazily — scans that never call Value on
	// a key pay nothing for its large value — against vdb, the store
	// owning the log (the shard the record came from on a sharded scan).
	vkind    kv.Kind
	vdb      *DB
	valid    bool
	err      error
	backward bool
	closed   bool
}

// NewIterator returns an iterator over the DB at the current sequence
// number.  A scan merges both memtables and, per level, every sequence
// of at most one node (Sec. 5.2).  On a sharded DB the sequence is the
// global watermark and the scan concatenates the shards' disjoint
// ranges in key order, forward and backward.
func (db *DB) NewIterator() *Iterator {
	return db.newIteratorAt(db.visibleSeq())
}

// newIteratorAt builds the merged iterator from the lock-free read
// snapshot — the sequence must have been loaded before the state so
// the view covers it (see getRaw).
func (db *DB) newIteratorAt(snap kv.Seq) *Iterator {
	db.iterAcquire()
	if ss := db.shards; ss != nil {
		return &Iterator{db: db, in: ss.newInner(), snap: snap}
	}
	st := db.state.Load()
	kids := []iterator.Iterator{st.mem.NewIter()}
	if st.imm != nil {
		kids = append(kids, st.imm.NewIter())
	}
	kids = append(kids, db.eng.NewIter())
	return &Iterator{
		db:   db,
		in:   iterator.NewMerging(kv.CompareInternal, kids...),
		snap: snap,
	}
}

// First positions at the smallest live key.  Positioning latency
// (First and Seek) feeds the DB's scan histogram.
func (it *Iterator) First() {
	var start time.Duration
	if it.db.timing {
		start = it.db.clock.Now()
	}
	it.backward = false
	it.in.First()
	it.advance(nil)
	if it.db.timing {
		it.db.scanHist.Record(it.db.clock.Now() - start)
	}
}

// Seek positions at the first live key >= ukey.
func (it *Iterator) Seek(ukey []byte) {
	var start time.Duration
	if it.db.timing {
		start = it.db.clock.Now()
	}
	it.backward = false
	it.in.Seek(kv.MakeInternalKey(ukey, it.snap, kv.MaxKind))
	it.advance(nil)
	if it.db.timing {
		it.db.scanHist.Record(it.db.clock.Now() - start)
	}
}

// Next advances past the current key to the next live key.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	if it.backward {
		// Direction switch: the inner iterator rests before the
		// emitted key; jump to the first record past all its versions.
		it.backward = false
		it.in.Seek(kv.MakeInternalKey(it.key, 0, kv.KindDelete))
		it.advance(it.key)
		return
	}
	prev := it.key
	it.in.Next()
	it.advance(prev)
}

// advance finds the next visible, live user key, skipping versions
// above the snapshot, shadowed versions, tombstones, and skipKey.
func (it *Iterator) advance(skipKey []byte) {
	it.valid = false
	var shadowed []byte // user key whose newest visible version was consumed
	if skipKey != nil {
		shadowed = append([]byte(nil), skipKey...)
	}
	for it.in.Valid() {
		u, seq, kind, ok := kv.ParseInternalKey(it.in.Key())
		if !ok {
			it.err = errBadBatch
			return
		}
		if seq > it.snap {
			it.in.Next()
			continue
		}
		if shadowed != nil && kv.CompareUser(u, shadowed) == 0 {
			it.in.Next()
			continue
		}
		if kind == kv.KindDelete {
			shadowed = append(shadowed[:0], u...)
			it.in.Next()
			continue
		}
		it.key = append(it.key[:0], u...)
		it.val = append(it.val[:0], it.in.Value()...)
		it.vkind = kind
		it.vdb = it.valueOwner()
		it.valid = true
		return
	}
	if err := it.in.Err(); err != nil {
		it.err = err
	}
}

// valueOwner is the DB whose value log resolves the current position's
// pointer records: the owning shard on a sharded scan (captured while
// the inner iterator still rests on the record), the DB itself
// otherwise.
func (it *Iterator) valueOwner() *DB {
	if sc, ok := it.in.(*shardConcat); ok && sc.cur >= 0 {
		return sc.dbs[sc.cur]
	}
	return it.db
}

// Valid reports whether the iterator is positioned at a live entry.
func (it *Iterator) Valid() bool { return it.valid && it.err == nil }

// Key returns the current user key.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value, resolving key-value-separated
// records through the value log on first access (the result is cached
// for repeated calls at the same position).  A resolution failure —
// always a typed corruption — invalidates the iterator and surfaces
// through Err.
func (it *Iterator) Value() []byte {
	if it.valid && it.vkind == kv.KindValuePtr {
		v, err := it.vdb.resolvePointer(it.key, it.val)
		if err != nil {
			it.err = err
			it.valid = false
			return nil
		}
		it.val = append(it.val[:0], v...)
		it.vkind = kv.KindSet
	}
	return it.val
}

// Err reports the first error encountered.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's resources.
func (it *Iterator) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.db.iterRelease()
	return it.in.Close()
}
