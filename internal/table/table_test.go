package table

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"iamdb/internal/cache"
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
	"iamdb/internal/vfs"
)

const testCap = 4 << 20

func kvIter(seq kv.Seq, keys ...string) iterator.Iterator {
	sort.Strings(keys)
	var ks, vs [][]byte
	for _, k := range keys {
		ks = append(ks, kv.MakeInternalKey([]byte(k), seq, kv.KindSet))
		vs = append(vs, []byte("val:"+k))
	}
	return iterator.NewSlice(kv.CompareInternal, ks, vs)
}

func mustCreate(t *testing.T, fs vfs.FS, name string) *Table {
	t.Helper()
	tb, err := Create(fs, name, 1, testCap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestCreateAppendGet(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	res, err := tb.Append(kvIter(10, "apple", "banana", "cherry"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != 3 {
		t.Fatalf("appended %d", res.Entries)
	}
	if res.Bytes <= 0 || res.More {
		t.Fatalf("result %+v", res)
	}
	if tb.NumSeqs() != 1 || tb.Entries() != 3 {
		t.Fatalf("seqs=%d entries=%d", tb.NumSeqs(), tb.Entries())
	}
	v, kind, seq, found, err := tb.Get([]byte("banana"), kv.MaxSeq)
	if err != nil || !found {
		t.Fatalf("get: %v found=%v", err, found)
	}
	if string(v) != "val:banana" || kind != kv.KindSet || seq != 10 {
		t.Fatalf("got %q %v %d", v, kind, seq)
	}
	if _, _, _, found, _ := tb.Get([]byte("durian"), kv.MaxSeq); found {
		t.Fatal("missing key found")
	}
}

func TestMultipleSequencesNewestWins(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	tb.Append(kvIter(10, "k1", "k2", "k3"))
	// Newer sequence overwrites k2.
	ks := [][]byte{kv.MakeInternalKey([]byte("k2"), 20, kv.KindSet)}
	vs := [][]byte{[]byte("newer")}
	tb.Append(iterator.NewSlice(kv.CompareInternal, ks, vs))

	if tb.NumSeqs() != 2 {
		t.Fatalf("seqs=%d", tb.NumSeqs())
	}
	v, _, seq, found, _ := tb.Get([]byte("k2"), kv.MaxSeq)
	if !found || string(v) != "newer" || seq != 20 {
		t.Fatalf("got %q@%d found=%v", v, seq, found)
	}
	// Snapshot read below the overwrite sees the old version.
	v, _, seq, found, _ = tb.Get([]byte("k2"), 15)
	if !found || string(v) != "val:k2" || seq != 10 {
		t.Fatalf("snapshot got %q@%d found=%v", v, seq, found)
	}
	// Untouched keys still served from the old sequence.
	v, _, _, found, _ = tb.Get([]byte("k1"), kv.MaxSeq)
	if !found || string(v) != "val:k1" {
		t.Fatalf("k1 got %q", v)
	}
}

func TestTombstoneVisible(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	tb.Append(kvIter(10, "k"))
	ks := [][]byte{kv.MakeInternalKey([]byte("k"), 20, kv.KindDelete)}
	tb.Append(iterator.NewSlice(kv.CompareInternal, ks, [][]byte{nil}))
	_, kind, _, found, _ := tb.Get([]byte("k"), kv.MaxSeq)
	if !found || kind != kv.KindDelete {
		t.Fatalf("tombstone: kind=%v found=%v", kind, found)
	}
}

func TestReopen(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	tb.Append(kvIter(10, "a", "b"))
	tb.Append(kvIter(20, "c"))
	dataSize := tb.DataSize()
	tb.Close()

	tb2, err := Open(fs, "1.mst", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb2.Close()
	if tb2.NumSeqs() != 2 || tb2.Entries() != 3 {
		t.Fatalf("reopen seqs=%d entries=%d", tb2.NumSeqs(), tb2.Entries())
	}
	if tb2.DataSize() != dataSize {
		t.Fatalf("dataEnd %d want %d", tb2.DataSize(), dataSize)
	}
	v, _, _, found, _ := tb2.Get([]byte("c"), kv.MaxSeq)
	if !found || string(v) != "val:c" {
		t.Fatalf("reopen get c: %q %v", v, found)
	}
	r := tb2.UserRange()
	if string(r.Lo) != "a" || string(r.Hi) != "c" {
		t.Fatalf("range %v", r)
	}
}

func TestIterMergesSequences(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	tb.Append(kvIter(10, "a", "c", "e"))
	tb.Append(kvIter(20, "b", "d"))
	it := tb.NewIter()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(kv.UserKey(it.Key())))
	}
	if fmt.Sprint(got) != "[a b c d e]" {
		t.Fatalf("merged scan: %v", got)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	it.Close()
}

func TestSeqIterSeek(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	var keys []string
	for i := 0; i < 2000; i++ { // spans many blocks
		keys = append(keys, fmt.Sprintf("key%06d", i*2))
	}
	tb.Append(kvIter(5, keys...))
	it := tb.SeqIter(0)
	// Seek to a key between entries.
	it.Seek(kv.MakeInternalKey([]byte("key000101"), kv.MaxSeq, kv.KindSet))
	if !it.Valid() {
		t.Fatal("seek invalid")
	}
	if got := string(kv.UserKey(it.Key())); got != "key000102" {
		t.Fatalf("seek landed on %q", got)
	}
	// Walk across a block boundary.
	count := 0
	for ; it.Valid(); it.Next() {
		count++
	}
	if want := 2000 - 51; count != want {
		t.Fatalf("walked %d want %d", count, want)
	}
	// Seek past the end.
	it.Seek(kv.MakeInternalKey([]byte("zzz"), kv.MaxSeq, kv.KindSet))
	if it.Valid() {
		t.Fatal("seek past end valid")
	}
}

func TestLargeSequenceManyBlocks(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	const n = 5000
	var ks, vs [][]byte
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < n; i++ {
		ks = append(ks, kv.MakeInternalKey([]byte(fmt.Sprintf("user%08d", i)), 1, kv.KindSet))
		vs = append(vs, val)
	}
	if _, err := tb.Append(iterator.NewSlice(kv.CompareInternal, ks, vs)); err != nil {
		t.Fatal(err)
	}
	// Every key retrievable.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("user%08d", rng.Intn(n)))
		_, _, _, found, err := tb.Get(k, kv.MaxSeq)
		if err != nil || !found {
			t.Fatalf("get %s: %v %v", k, found, err)
		}
	}
	// Full scan count.
	it := tb.NewIter()
	count := 0
	for it.First(); it.Valid(); it.Next() {
		count++
	}
	if count != n {
		t.Fatalf("scan %d want %d", count, n)
	}
}

func TestAppendNoSpace(t *testing.T) {
	fs := vfs.NewMemFS()
	tb, err := Create(fs, "small.mst", 1, 64*1024, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ks, vs [][]byte
	val := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 128; i++ { // 128 KiB >> 64 KiB capacity
		ks = append(ks, kv.MakeInternalKey([]byte(fmt.Sprintf("k%06d", i)), 1, kv.KindSet))
		vs = append(vs, val)
	}
	_, err = tb.Append(iterator.NewSlice(kv.CompareInternal, ks, vs))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// Table must remain intact and usable.
	if tb.NumSeqs() != 0 {
		t.Fatalf("seqs=%d after failed append", tb.NumSeqs())
	}
	if _, err := tb.Append(kvIter(2, "ok")); err != nil {
		t.Fatalf("small append after failure: %v", err)
	}
	v, _, _, found, _ := tb.Get([]byte("ok"), kv.MaxSeq)
	if !found || string(v) != "val:ok" {
		t.Fatal("table unusable after ErrNoSpace")
	}
}

func TestEmptyAppendIsNoop(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	res, err := tb.Append(iterator.Empty{})
	if err != nil || res.Entries != 0 {
		t.Fatalf("empty append: %+v %v", res, err)
	}
	if tb.NumSeqs() != 0 {
		t.Fatal("empty append created a sequence")
	}
}

func TestBlockCacheUsed(t *testing.T) {
	fs := vfs.NewMemFS()
	c := cache.New(1 << 20)
	var st vfs.IOStats
	sfs := vfs.NewStatsFS(fs, &st)
	tb, err := Create(sfs, "1.mst", 42, testCap, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 500; i++ {
		keys = append(keys, fmt.Sprintf("key%05d", i))
	}
	tb.Append(kvIter(1, keys...))

	before := st.Snapshot()
	tb.Get([]byte("key00250"), kv.MaxSeq)
	mid := st.Snapshot()
	if mid.BytesRead == before.BytesRead {
		t.Fatal("first get should read from disk")
	}
	tb.Get([]byte("key00250"), kv.MaxSeq)
	after := st.Snapshot()
	if after.BytesRead != mid.BytesRead {
		t.Fatal("second get should hit cache")
	}
	if tb.ResidentBytes() == 0 {
		t.Fatal("resident bytes should be tracked")
	}
	tb.EvictBlocks()
	if tb.ResidentBytes() != 0 {
		t.Fatal("evict failed")
	}
}

func TestCorruptFooterRejected(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	tb.Append(kvIter(1, "a"))
	tb.Close()
	f, _ := fs.Open("1.mst")
	size, _ := f.Size()
	// Clobber both footer slots: nothing valid remains to fall back to.
	f.WriteAt([]byte{0xde, 0xad}, size-10)
	f.WriteAt([]byte{0xde, 0xad}, size-footerSlot-10)
	f.Close()
	if _, err := Open(fs, "1.mst", 1, Options{}); err == nil {
		t.Fatal("corrupt footer accepted")
	}
}

func TestTornFooterFallsBackToPreviousGeneration(t *testing.T) {
	// Two commits land in alternating footer slots.  Destroying the
	// newest slot (a torn in-flight footer write) must reopen the table
	// at the previous generation, not fail.
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	if _, err := tb.Append(kvIter(1, "a", "b")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Append(kvIter(2, "c", "d")); err != nil {
		t.Fatal(err)
	}
	gen := tb.gen // generation of the newest commit
	tb.Close()
	f, _ := fs.Open("1.mst")
	size, _ := f.Size()
	slotOff := size - tailLen + int64(gen%2)*footerSlot
	junk := make([]byte, footerSlot)
	f.WriteAt(junk, slotOff)
	f.Close()
	re, err := Open(fs, "1.mst", 1, Options{})
	if err != nil {
		t.Fatalf("reopen after torn footer: %v", err)
	}
	defer re.Close()
	if re.NumSeqs() != 1 {
		t.Fatalf("want previous generation with 1 seq, got %d", re.NumSeqs())
	}
	if _, _, _, found, err := re.Get([]byte("a"), kv.MaxSeq); err != nil || !found {
		t.Fatalf("committed key lost: %v found=%v", err, found)
	}
}

func TestMetaNeverOverwritten(t *testing.T) {
	// Each commit's metadata must land strictly below the previous
	// copy: a torn metadata write can then never damage committed
	// state.
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	floor0 := tb.metaFloor
	if _, err := tb.Append(kvIter(1, "a")); err != nil {
		t.Fatal(err)
	}
	floor1 := tb.metaFloor
	if _, err := tb.Append(kvIter(2, "b")); err != nil {
		t.Fatal(err)
	}
	floor2 := tb.metaFloor
	tb.Close()
	if !(floor2 < floor1 && floor1 < floor0) {
		t.Fatalf("meta floors must descend: %d %d %d", floor0, floor1, floor2)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(vfs.NewMemFS(), "none.mst", 1, Options{}); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestUsedBytesBelowCapacity(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	tb.Append(kvIter(1, "a", "b", "c"))
	if tb.UsedBytes() >= tb.Capacity() {
		t.Fatalf("used %d should be far below capacity %d", tb.UsedBytes(), tb.Capacity())
	}
	if tb.UsedBytes() <= 0 {
		t.Fatal("used must be positive")
	}
}

func TestSeqDataLenAndMeta(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	tb.Append(kvIter(1, "a", "b"))
	tb.Append(kvIter(2, "c", "d", "e"))
	m0, m1 := tb.SeqMetaAt(0), tb.SeqMetaAt(1)
	if m0.Entries != 2 || m1.Entries != 3 {
		t.Fatalf("entries %d/%d", m0.Entries, m1.Entries)
	}
	if string(kv.UserKey(m1.Smallest)) != "c" || string(kv.UserKey(m1.Largest)) != "e" {
		t.Fatalf("seq1 bounds %s..%s", kv.UserKey(m1.Smallest), kv.UserKey(m1.Largest))
	}
	if tb.SeqDataLen(0) <= 0 || tb.SeqDataLen(1) <= 0 {
		t.Fatal("data lens must be positive")
	}
	if int64(m1.DataOff) != tb.SeqDataLen(0) {
		t.Fatalf("seq1 off %d want %d", m1.DataOff, tb.SeqDataLen(0))
	}
}

func BenchmarkTableAppend(b *testing.B) {
	fs := vfs.NewMemFS()
	val := bytes.Repeat([]byte("v"), 1024)
	var ks, vs [][]byte
	for i := 0; i < 1000; i++ {
		ks = append(ks, kv.MakeInternalKey([]byte(fmt.Sprintf("user%010d", i)), 1, kv.KindSet))
		vs = append(vs, val)
	}
	b.SetBytes(int64(1000 * 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, _ := Create(fs, "bench.mst", 1, 16<<20, Options{})
		tb.Append(iterator.NewSlice(kv.CompareInternal, ks, vs))
		tb.Close()
	}
}

func BenchmarkTableGet(b *testing.B) {
	fs := vfs.NewMemFS()
	tb, _ := Create(fs, "bench.mst", 1, 64<<20, Options{Cache: cache.New(64 << 20)})
	var ks, vs [][]byte
	for i := 0; i < 100000; i++ {
		ks = append(ks, kv.MakeInternalKey([]byte(fmt.Sprintf("user%010d", i)), 1, kv.KindSet))
		vs = append(vs, []byte("value"))
	}
	tb.Append(iterator.NewSlice(kv.CompareInternal, ks, vs))
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("user%010d", rng.Intn(100000)))
		tb.Get(k, kv.MaxSeq)
	}
}

func TestAppendFromChunksAtLimit(t *testing.T) {
	fs := vfs.NewMemFS()
	var ks, vs [][]byte
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 1000; i++ {
		ks = append(ks, kv.MakeInternalKey([]byte(fmt.Sprintf("k%06d", i)), 1, kv.KindSet))
		vs = append(vs, val)
	}
	it := iterator.NewSlice(kv.CompareInternal, ks, vs)
	it.First()
	var total uint64
	var tables int
	for {
		tb := mustCreate(t, fs, fmt.Sprintf("%d.mst", tables))
		res, err := tb.AppendFrom(it, 16*1024)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Entries
		tables++
		tb.Close()
		if !res.More {
			break
		}
	}
	if total != 1000 {
		t.Fatalf("wrote %d entries", total)
	}
	if tables < 5 {
		t.Fatalf("expected several chunks, got %d", tables)
	}
}

func TestAppendFromKeepsVersionsTogether(t *testing.T) {
	fs := vfs.NewMemFS()
	// Many versions of the same user key right at a chunk boundary.
	var ks, vs [][]byte
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 200; i++ {
		ks = append(ks, kv.MakeInternalKey([]byte(fmt.Sprintf("k%06d", i)), 10, kv.KindSet))
		vs = append(vs, val)
	}
	// 50 versions of one key, descending seq per internal order.
	for s := 50; s >= 1; s-- {
		ks = append(ks, kv.MakeInternalKey([]byte("k_hotkey"), kv.Seq(s), kv.KindSet))
		vs = append(vs, val)
	}
	it := iterator.NewSlice(kv.CompareInternal, ks, vs)
	it.First()
	var tables []*Table
	for i := 0; ; i++ {
		tb := mustCreate(t, fs, fmt.Sprintf("%d.mst", i))
		res, err := tb.AppendFrom(it, 8*1024)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tb)
		if !res.More {
			break
		}
	}
	// The hot key's 50 versions must all land in one table.
	holders := 0
	for _, tb := range tables {
		sit := tb.SeqIter(0)
		count := 0
		for sit.First(); sit.Valid(); sit.Next() {
			if string(kv.UserKey(sit.Key())) == "k_hotkey" {
				count++
			}
		}
		if count > 0 {
			holders++
			if count != 50 {
				t.Fatalf("table holds %d of 50 versions", count)
			}
		}
	}
	if holders != 1 {
		t.Fatalf("hot key split across %d tables", holders)
	}
}

func TestBlockChecksumDetectsCorruption(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	var keys []string
	for i := 0; i < 300; i++ {
		keys = append(keys, fmt.Sprintf("key%05d", i))
	}
	tb.Append(kvIter(1, keys...))
	tb.Close()

	// Flip one byte inside the data region.
	f, _ := fs.Open("1.mst")
	var b [1]byte
	f.ReadAt(b[:], 100)
	b[0] ^= 0xFF
	f.WriteAt(b[:], 100)
	f.Close()

	tb2, err := Open(fs, "1.mst", 1, Options{})
	if err != nil {
		t.Fatal(err) // metadata untouched: open succeeds
	}
	defer tb2.Close()
	// Reading through the corrupt block must error, not return junk.
	sawErr := false
	for _, k := range keys {
		_, _, _, _, err := tb2.Get([]byte(k), kv.MaxSeq)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("wrong error type: %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("corruption went undetected across all keys")
	}
	// Iterators must surface it too.
	it := tb2.NewIter()
	for it.First(); it.Valid(); it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("iterator missed the corrupt block")
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	// Highly compressible values.
	var ks, vs [][]byte
	val := bytes.Repeat([]byte("compressible-"), 40)
	for i := 0; i < 1000; i++ {
		ks = append(ks, kv.MakeInternalKey([]byte(fmt.Sprintf("key%06d", i)), 1, kv.KindSet))
		vs = append(vs, val)
	}

	write := func(name string, comp bool) *Table {
		tb, err := Create(fs, name, 1, 8<<20, Options{Compression: comp})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Append(iterator.NewSlice(kv.CompareInternal, ks, vs)); err != nil {
			t.Fatal(err)
		}
		return tb
	}
	plain := write("plain.mst", false)
	comp := write("comp.mst", true)
	defer plain.Close()
	defer comp.Close()

	if comp.DataSize() >= plain.DataSize()/2 {
		t.Fatalf("compression ineffective: %d vs %d", comp.DataSize(), plain.DataSize())
	}
	// Reads are transparent.
	for _, tb := range []*Table{plain, comp} {
		v, _, _, found, err := tb.Get([]byte("key000500"), kv.MaxSeq)
		if err != nil || !found || !bytes.Equal(v, val) {
			t.Fatalf("%s: get %v %v", tb.Name(), found, err)
		}
		it := tb.NewIter()
		n := 0
		for it.First(); it.Valid(); it.Next() {
			n++
		}
		if n != 1000 || it.Err() != nil {
			t.Fatalf("%s: scan %d (%v)", tb.Name(), n, it.Err())
		}
	}
	// A reader without the option still decodes compressed tables.
	comp.Close()
	re, err := Open(fs, "comp.mst", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, _, _, found, err := re.Get([]byte("key000999"), kv.MaxSeq); err != nil || !found {
		t.Fatalf("reopen compressed: %v %v", found, err)
	}
}

func TestCompressedCorruptionDetected(t *testing.T) {
	fs := vfs.NewMemFS()
	tb, _ := Create(fs, "c.mst", 1, 4<<20, Options{Compression: true})
	var ks, vs [][]byte
	for i := 0; i < 500; i++ {
		ks = append(ks, kv.MakeInternalKey([]byte(fmt.Sprintf("k%05d", i)), 1, kv.KindSet))
		vs = append(vs, bytes.Repeat([]byte("z"), 200))
	}
	tb.Append(iterator.NewSlice(kv.CompareInternal, ks, vs))
	tb.Close()
	f, _ := fs.Open("c.mst")
	f.WriteAt([]byte{0xAA}, 50)
	f.Close()
	re, err := Open(fs, "c.mst", 1, Options{})
	if err != nil {
		return
	}
	defer re.Close()
	it := re.NewIter()
	for it.First(); it.Valid(); it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("corrupt compressed block not detected")
	}
}

func TestSeqIterReverse(t *testing.T) {
	fs := vfs.NewMemFS()
	tb := mustCreate(t, fs, "1.mst")
	var keys []string
	for i := 0; i < 3000; i++ { // spans many blocks
		keys = append(keys, fmt.Sprintf("key%06d", i*2))
	}
	tb.Append(kvIter(5, keys...))
	it := tb.SeqIter(0).(iterator.ReverseIterator)

	it.Last()
	if !it.Valid() || string(kv.UserKey(it.Key())) != "key005998" {
		t.Fatalf("last: %q", kv.UserKey(it.Key()))
	}
	// Walk backward across many block boundaries.
	for i := 2998; i >= 2900; i-- {
		it.Prev()
		want := fmt.Sprintf("key%06d", i*2)
		if !it.Valid() || string(kv.UserKey(it.Key())) != want {
			t.Fatalf("prev at %d: %q want %s", i, kv.UserKey(it.Key()), want)
		}
	}
	// SeekForPrev between keys.
	it.SeekForPrev(kv.MakeInternalKey([]byte("key000101"), kv.MaxSeq, kv.KindSet))
	if !it.Valid() || string(kv.UserKey(it.Key())) != "key000100" {
		t.Fatalf("seekforprev: %q", kv.UserKey(it.Key()))
	}
	// Past the end.
	it.SeekForPrev(kv.MakeInternalKey([]byte("zzz"), 0, kv.KindDelete))
	if !it.Valid() || string(kv.UserKey(it.Key())) != "key005998" {
		t.Fatalf("seekforprev past end: %q", kv.UserKey(it.Key()))
	}
	// Before everything.
	it.SeekForPrev(kv.MakeInternalKey([]byte("a"), kv.MaxSeq, kv.KindSet))
	if it.Valid() {
		t.Fatal("seekforprev before all")
	}
	// Full backward walk counts every record.
	n := 0
	for it.Last(); it.Valid(); it.Prev() {
		n++
	}
	if n != 3000 {
		t.Fatalf("reverse walk saw %d", n)
	}
	// Direction switching through the merged multi-sequence iterator.
	tb.Append(kvIter(9, "key000101x"))
	m := tb.NewIter().(iterator.ReverseIterator)
	m.Seek(kv.MakeInternalKey([]byte("key000101x"), kv.MaxSeq, kv.KindSet))
	if string(kv.UserKey(m.Key())) != "key000101x" {
		t.Fatalf("merged seek: %q", kv.UserKey(m.Key()))
	}
	m.Prev()
	if string(kv.UserKey(m.Key())) != "key000100" {
		t.Fatalf("merged prev: %q", kv.UserKey(m.Key()))
	}
	m.Next()
	if string(kv.UserKey(m.Key())) != "key000101x" {
		t.Fatalf("merged next after prev: %q", kv.UserKey(m.Key()))
	}
}
