package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// aliascheck flags code that retains a reference to the []byte
// returned by an iterator's Key()/Value() (or any zero-arg method of
// those names returning a byte slice).  Those slices alias buffers the
// iterator reuses on the next advance; storing one in a struct field,
// map, slice element, or channel without a copy corrupts data later.
//
// Local variables are fine — the common `k := it.Key()` then
// `append(dst, k...)` idiom copies before the next Next().  The copy
// idioms `append(dst, it.Key()...)` and `copy(dst, it.Key())` are
// recognised and allowed.
func aliascheck(p *pkg, emit func(diag)) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					call, ok := keyValueCall(p, rhs)
					if !ok {
						continue
					}
					// Parallel assignment lines up LHS/RHS one-to-one;
					// a single multi-value RHS can't be a Key() call.
					var lhs ast.Expr
					if len(s.Lhs) == len(s.Rhs) {
						lhs = s.Lhs[i]
					} else {
						lhs = s.Lhs[0]
					}
					if retainingLHS(lhs) {
						report(p, emit, call)
					}
				}
				// `x = append(x, it.Key())` is caught by the CallExpr case
				// when the walk descends into the RHS.
			case *ast.CompositeLit:
				for _, el := range s.Elts {
					expr := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						expr = kv.Value
					}
					if call, ok := keyValueCall(p, expr); ok {
						report(p, emit, call)
					}
				}
			case *ast.SendStmt:
				if call, ok := keyValueCall(p, s.Value); ok {
					report(p, emit, call)
				}
			case *ast.CallExpr:
				checkAppendArg(p, emit, s)
			}
			return true
		})
	}
}

// checkAppendArg flags `append(s, it.Key())` — appending the aliased
// slice as an element.  `append(s, it.Key()...)` splices the bytes by
// value and is the blessed copy idiom, as is `copy(dst, it.Key())`.
func checkAppendArg(p *pkg, emit func(diag), e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" || p.info.Uses[fun] != types.Universe.Lookup("append") {
		return
	}
	for i, arg := range call.Args[1:] {
		if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
			continue // it.Key()... copies element-wise
		}
		if kv, ok := keyValueCall(p, arg); ok {
			report(p, emit, kv)
		}
	}
}

// keyValueCall reports whether e is a zero-argument Key() or Value()
// method call returning []byte.
func keyValueCall(p *pkg, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Key" && sel.Sel.Name != "Value") {
		return nil, false
	}
	fn := p.funcFor(call)
	if fn == nil {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return nil, false
	}
	slice, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return nil, false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return call, ok && basic.Kind() == types.Byte
}

// retainingLHS reports whether assigning to lhs outlives the current
// iteration step: struct fields, map/slice elements, dereferences.
// Plain local identifiers do not retain.
func retainingLHS(lhs ast.Expr) bool {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func report(p *pkg, emit func(diag), call *ast.CallExpr) {
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	emit(diag{
		pass: "alias",
		pos:  p.fset.Position(call.Pos()),
		msg: fmt.Sprintf("%s() returns a slice that aliases the iterator's reused buffer; copy it (e.g. append([]byte(nil), %s()...)) before retaining",
			sel.Sel.Name, types.ExprString(call.Fun)),
	})
}
