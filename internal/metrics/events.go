package metrics

import "time"

// FlushInfo describes a memtable flush reaching the tree.
type FlushInfo struct {
	// Bytes is the payload written to level 0 by the flush.
	Bytes int64
	// Duration is the flush's elapsed time on the engine clock.
	Duration time.Duration
}

// AppendInfo describes an append of flushed runs onto a child node
// (the IAM tree's cheap alternative to merging).
type AppendInfo struct {
	// Level is the destination level receiving the appended runs.
	Level int
	// Bytes is the payload written to the destination.
	Bytes int64
}

// MergeInfo describes a merge (sort-merge rewrite) into a level.
type MergeInfo struct {
	// Level is the destination level receiving the merged output.
	Level int
	// Bytes is the payload written to the destination.
	Bytes int64
	// Duration is the merge's elapsed time on the engine clock.
	Duration time.Duration
}

// MoveInfo describes a trivial move of a node or file down one level.
type MoveInfo struct {
	// FromLevel is the level the data left.
	FromLevel int
	// ToLevel is the level the data landed on.
	ToLevel int
}

// SplitInfo describes an overflowing node splitting into children.
type SplitInfo struct {
	// Level is the level of the node that split.
	Level int
	// Bytes is the payload rewritten while splitting.
	Bytes int64
	// NewNodes is how many children the node split into.
	NewNodes int
}

// CombineInfo describes underfull sibling nodes combining into one.
type CombineInfo struct {
	// Level is the level of the combined node.
	Level int
}

// WALRotationInfo describes the write-ahead log advancing to a fresh
// file.
type WALRotationInfo struct {
	// OldNum and NewNum are the retiring and fresh WAL file numbers.
	OldNum, NewNum uint64
	// OldBytes is the size of the retiring WAL.
	OldBytes int64
}

// ManifestEditInfo describes one durable edit of the tree manifest.
type ManifestEditInfo struct {
	// Adds and Deletes count the node records in the edit.
	Adds, Deletes int
}

// TableInfo describes one on-disk table (node) file.
type TableInfo struct {
	// FileNum is the table's file number.
	FileNum uint64
	// Level is the level the table belongs to, or -1 when the engine
	// does not know it at event time (the IAM tree places tables in a
	// level only after creating them).
	Level int
	// Bytes is the table's data size (0 if unknown at event time).
	Bytes int64
}

// StallInfo describes a write stall imposed on the commit path.
type StallInfo struct {
	// Level is the engine's stall level (1 = soft, 2 = hard).
	Level int
	// Duration is how long the writer was stalled; zero in the
	// begin event.
	Duration time.Duration
}

// BackgroundErrorInfo describes one failed attempt of background
// flush or compaction work.
type BackgroundErrorInfo struct {
	// Op names the failed operation ("flush" or "compact").
	Op string
	// Err is the underlying error.
	Err error
	// Retries is the consecutive-failure count including this one.
	Retries int
}

// CorruptionInfo describes one detected latent-media fault: a
// checksum mismatch or structural damage attributed to a file.
type CorruptionInfo struct {
	// Path is the damaged file.
	Path string
	// Layer names the format layer that detected the damage
	// ("block", "table.footer", "table.meta", "table.block", "wal",
	// "manifest").
	Layer string
	// Offset is the byte offset of the damage within the file, or -1
	// when the layer cannot attribute one.
	Offset int64
	// Detail is a human-readable description of the damage.
	Detail string
}

// ReadOnlyInfo describes the DB entering or leaving read-only
// degradation after repeated background failures.
type ReadOnlyInfo struct {
	// Cause is the background error that triggered the transition.
	Cause error
	// Duration is how long the DB spent degraded; zero in the enter
	// event.
	Duration time.Duration
}

// EventListener receives notifications about the engine's structural
// activity.  All fields are optional; EnsureDefaults fills the nil
// ones with no-ops so call sites never nil-check.  Callbacks run
// synchronously on engine goroutines, often with engine locks held —
// they must not call back into the DB and should return quickly.
type EventListener struct {
	FlushEnd        func(FlushInfo)
	AppendEnd       func(AppendInfo)
	MergeEnd        func(MergeInfo)
	MoveEnd         func(MoveInfo)
	SplitEnd        func(SplitInfo)
	CombineEnd      func(CombineInfo)
	WALRotated      func(WALRotationInfo)
	ManifestEdit    func(ManifestEditInfo)
	TableCreated    func(TableInfo)
	TableDeleted    func(TableInfo)
	WriteStallBegin func(StallInfo)
	WriteStallEnd   func(StallInfo)
	BackgroundError func(BackgroundErrorInfo)
	ReadOnlyEnter   func(ReadOnlyInfo)
	ReadOnlyExit    func(ReadOnlyInfo)
	// CorruptionDetected fires once per detected corruption (read
	// path, open-time suspicion, or scrub).  TableQuarantined fires
	// when a table is newly fenced off as a consequence.
	CorruptionDetected func(CorruptionInfo)
	TableQuarantined   func(TableInfo)
}

// EnsureDefaults returns a copy of the listener with every nil
// callback replaced by a no-op, so the engines can invoke callbacks
// unconditionally.  A nil receiver yields the all-no-op listener.
func (l *EventListener) EnsureDefaults() *EventListener {
	var out EventListener
	if l != nil {
		out = *l
	}
	if out.FlushEnd == nil {
		out.FlushEnd = func(FlushInfo) {}
	}
	if out.AppendEnd == nil {
		out.AppendEnd = func(AppendInfo) {}
	}
	if out.MergeEnd == nil {
		out.MergeEnd = func(MergeInfo) {}
	}
	if out.MoveEnd == nil {
		out.MoveEnd = func(MoveInfo) {}
	}
	if out.SplitEnd == nil {
		out.SplitEnd = func(SplitInfo) {}
	}
	if out.CombineEnd == nil {
		out.CombineEnd = func(CombineInfo) {}
	}
	if out.WALRotated == nil {
		out.WALRotated = func(WALRotationInfo) {}
	}
	if out.ManifestEdit == nil {
		out.ManifestEdit = func(ManifestEditInfo) {}
	}
	if out.TableCreated == nil {
		out.TableCreated = func(TableInfo) {}
	}
	if out.TableDeleted == nil {
		out.TableDeleted = func(TableInfo) {}
	}
	if out.WriteStallBegin == nil {
		out.WriteStallBegin = func(StallInfo) {}
	}
	if out.WriteStallEnd == nil {
		out.WriteStallEnd = func(StallInfo) {}
	}
	if out.BackgroundError == nil {
		out.BackgroundError = func(BackgroundErrorInfo) {}
	}
	if out.ReadOnlyEnter == nil {
		out.ReadOnlyEnter = func(ReadOnlyInfo) {}
	}
	if out.ReadOnlyExit == nil {
		out.ReadOnlyExit = func(ReadOnlyInfo) {}
	}
	if out.CorruptionDetected == nil {
		out.CorruptionDetected = func(CorruptionInfo) {}
	}
	if out.TableQuarantined == nil {
		out.TableQuarantined = func(TableInfo) {}
	}
	return &out
}

// NewLoggingListener returns a listener that formats every event as a
// single line through logf (e.g. log.Printf or t.Logf).
func NewLoggingListener(logf func(format string, args ...any)) *EventListener {
	return &EventListener{
		FlushEnd: func(i FlushInfo) {
			logf("flush: %d bytes in %v", i.Bytes, i.Duration)
		},
		AppendEnd: func(i AppendInfo) {
			logf("append: L%d +%d bytes", i.Level, i.Bytes)
		},
		MergeEnd: func(i MergeInfo) {
			logf("merge: L%d %d bytes in %v", i.Level, i.Bytes, i.Duration)
		},
		MoveEnd: func(i MoveInfo) {
			logf("move: L%d -> L%d", i.FromLevel, i.ToLevel)
		},
		SplitEnd: func(i SplitInfo) {
			logf("split: L%d into %d nodes, %d bytes", i.Level, i.NewNodes, i.Bytes)
		},
		CombineEnd: func(i CombineInfo) {
			logf("combine: L%d", i.Level)
		},
		WALRotated: func(i WALRotationInfo) {
			logf("wal: rotated %d -> %d (%d bytes)", i.OldNum, i.NewNum, i.OldBytes)
		},
		ManifestEdit: func(i ManifestEditInfo) {
			logf("manifest: +%d -%d nodes", i.Adds, i.Deletes)
		},
		TableCreated: func(i TableInfo) {
			logf("table created: %06d L%d %d bytes", i.FileNum, i.Level, i.Bytes)
		},
		TableDeleted: func(i TableInfo) {
			logf("table deleted: %06d", i.FileNum)
		},
		WriteStallBegin: func(i StallInfo) {
			logf("write stall begin: level %d", i.Level)
		},
		WriteStallEnd: func(i StallInfo) {
			logf("write stall end: level %d after %v", i.Level, i.Duration)
		},
		BackgroundError: func(i BackgroundErrorInfo) {
			logf("background error: %s attempt %d: %v", i.Op, i.Retries, i.Err)
		},
		ReadOnlyEnter: func(i ReadOnlyInfo) {
			logf("read-only: entered (%v)", i.Cause)
		},
		ReadOnlyExit: func(i ReadOnlyInfo) {
			logf("read-only: healed after %v", i.Duration)
		},
		CorruptionDetected: func(i CorruptionInfo) {
			logf("corruption: %s layer %s @%d: %s", i.Path, i.Layer, i.Offset, i.Detail)
		},
		TableQuarantined: func(i TableInfo) {
			logf("table quarantined: %06d L%d", i.FileNum, i.Level)
		},
	}
}

// TeeListener fans every event out to each listener in order.
func TeeListener(ls ...*EventListener) *EventListener {
	filled := make([]*EventListener, len(ls))
	for i, l := range ls {
		filled[i] = l.EnsureDefaults()
	}
	return &EventListener{
		FlushEnd: func(i FlushInfo) {
			for _, l := range filled {
				l.FlushEnd(i)
			}
		},
		AppendEnd: func(i AppendInfo) {
			for _, l := range filled {
				l.AppendEnd(i)
			}
		},
		MergeEnd: func(i MergeInfo) {
			for _, l := range filled {
				l.MergeEnd(i)
			}
		},
		MoveEnd: func(i MoveInfo) {
			for _, l := range filled {
				l.MoveEnd(i)
			}
		},
		SplitEnd: func(i SplitInfo) {
			for _, l := range filled {
				l.SplitEnd(i)
			}
		},
		CombineEnd: func(i CombineInfo) {
			for _, l := range filled {
				l.CombineEnd(i)
			}
		},
		WALRotated: func(i WALRotationInfo) {
			for _, l := range filled {
				l.WALRotated(i)
			}
		},
		ManifestEdit: func(i ManifestEditInfo) {
			for _, l := range filled {
				l.ManifestEdit(i)
			}
		},
		TableCreated: func(i TableInfo) {
			for _, l := range filled {
				l.TableCreated(i)
			}
		},
		TableDeleted: func(i TableInfo) {
			for _, l := range filled {
				l.TableDeleted(i)
			}
		},
		WriteStallBegin: func(i StallInfo) {
			for _, l := range filled {
				l.WriteStallBegin(i)
			}
		},
		WriteStallEnd: func(i StallInfo) {
			for _, l := range filled {
				l.WriteStallEnd(i)
			}
		},
		BackgroundError: func(i BackgroundErrorInfo) {
			for _, l := range filled {
				l.BackgroundError(i)
			}
		},
		ReadOnlyEnter: func(i ReadOnlyInfo) {
			for _, l := range filled {
				l.ReadOnlyEnter(i)
			}
		},
		ReadOnlyExit: func(i ReadOnlyInfo) {
			for _, l := range filled {
				l.ReadOnlyExit(i)
			}
		},
		CorruptionDetected: func(i CorruptionInfo) {
			for _, l := range filled {
				l.CorruptionDetected(i)
			}
		},
		TableQuarantined: func(i TableInfo) {
			for _, l := range filled {
				l.TableQuarantined(i)
			}
		},
	}
}
