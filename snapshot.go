package iamdb

import (
	"iamdb/internal/kv"
)

// Snapshot is a consistent read-only view of the DB as of its creation.
// Merges retain every record version a live snapshot can still see
// (Sec. 5.2's deferred deletes respect this), so release snapshots
// promptly to let compaction reclaim space.
type Snapshot struct {
	db       *DB
	seq      kv.Seq
	released bool
}

// GetSnapshot captures the current state.  Callers must Release it.
// The visible sequence comes from the lock-free read snapshot; only
// the snapshot registry (which merges consult for their horizon) takes
// a small dedicated lock, never db.mu.  Pushing the horizon down into
// the engine does take the engine's own mutex under snapMu:
//
//iamlint:lockorder snapMu < core.Tree.mu; snapMu < lsm.DB.mu
func (db *DB) GetSnapshot() *Snapshot {
	s := &Snapshot{db: db, seq: kv.Seq(db.seqA.Load())}
	db.snapMu.Lock()
	db.snaps[s.seq]++
	db.updateHorizonLocked()
	db.snapMu.Unlock()
	return s
}

// Release ends the snapshot's protection; idempotent.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	db := s.db
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if db.snaps[s.seq]--; db.snaps[s.seq] <= 0 {
		delete(db.snaps, s.seq)
	}
	db.updateHorizonLocked()
}

// updateHorizonLocked pushes the oldest live snapshot (or "none") down
// to the engine so merges know what they may drop.  Caller holds
// db.snapMu.
func (db *DB) updateHorizonLocked() {
	h := kv.MaxSeq
	for seq := range db.snaps {
		if seq < h {
			h = seq
		}
	}
	db.eng.SetHorizon(h)
}

// Get reads a key as of the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if s.released {
		return nil, ErrClosed
	}
	db := s.db
	if db.closedA.Load() {
		return nil, ErrClosed
	}
	st := db.state.Load()
	v, kind, err := db.getRawAt(key, s.seq, st.mem, st.imm)
	if err != nil {
		return nil, err
	}
	return finishGet(v, kind)
}

// NewIterator iterates the DB as of the snapshot.
func (s *Snapshot) NewIterator() *Iterator {
	return s.db.newIteratorAt(s.seq)
}
