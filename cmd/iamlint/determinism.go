package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// determinismScope lists package-path suffixes that must stay
// deterministic: the virtual-clock disk model and everything the
// simulation harness replays.  Wall-clock time, ambient randomness and
// direct OS access would make runs non-reproducible.
var determinismScope = []string{
	"internal/core",
	"internal/harness",
	"internal/metrics",
	"internal/trace",
	"internal/vfs",
}

func deterministicScoped(p *pkg) bool {
	if p.deterministic {
		return true
	}
	for _, s := range determinismScope {
		if p.path == s || strings.HasSuffix(p.path, "/"+s) {
			return true
		}
	}
	return false
}

// timeDeny covers wall-clock reads and real sleeps.  Pure value
// constructors (time.Duration, time.Unix) and conversions stay legal.
var timeDeny = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// osDeny covers filesystem and environment access; vfs.FS is the only
// sanctioned route.  (os.Exit & friends are left to other tooling.)
var osDeny = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "ReadDir": true, "ReadFile": true,
	"WriteFile": true, "Stat": true, "Lstat": true, "Chmod": true,
	"Chtimes": true, "Truncate": true, "Link": true, "Symlink": true,
	"Getwd": true, "Chdir": true, "TempDir": true, "Getenv": true,
	"LookupEnv": true, "Setenv": true, "Environ": true,
}

// determinism flags calls that break replayability inside the
// deterministic packages: wall-clock time, package-level (globally
// seeded) math/rand, and direct os filesystem access.  Methods on an
// explicitly constructed *rand.Rand are fine — the harness seeds one.
func determinism(p *pkg, emit func(diag)) {
	if !deterministicScoped(p) {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.funcFor(call)
			if fn == nil {
				return true
			}
			path, name := pkgPathOf(fn), fn.Name()
			var why string
			switch {
			case path == "time" && timeDeny[name]:
				why = "reads the wall clock; use the vfs DiskClock / virtual time"
			case path == "math/rand" || path == "math/rand/v2":
				// Package-level funcs share a global source; methods on a
				// seeded *rand.Rand have a receiver and are allowed, as are
				// the New*/constructor funcs used to build one.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				if strings.HasPrefix(name, "New") {
					return true
				}
				why = "uses the globally-seeded rand source; construct rand.New(rand.NewSource(seed))"
			case path == "crypto/rand":
				why = "crypto/rand is non-deterministic; use a seeded math/rand source"
			case path == "os" && osDeny[name]:
				why = "touches the real OS; go through vfs.FS"
			case path == "io/ioutil":
				why = "io/ioutil touches the real OS; go through vfs.FS"
			default:
				return true
			}
			emit(diag{
				pass: "determinism",
				pos:  p.fset.Position(call.Pos()),
				msg:  fmt.Sprintf("%s.%s %s", lastSeg(path), name, why),
			})
			return true
		})
	}
}

func lastSeg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
