package iamdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iamdb/internal/vfs"
)

// shardKey returns a key owned by shard s of 4 under the default
// splits (0x40, 0x80, 0xc0): first byte 0x10 + 0x40*s, appended as a
// raw byte (not %c, which would UTF-8-encode bytes >= 0x80).
func shardKey(s, i int) []byte {
	return append([]byte{byte(0x10 + 0x40*s)}, fmt.Sprintf("%05d", i)...)
}

func openShardedSmall(t *testing.T, fs vfs.FS, e EngineKind, shards int) *DB {
	t.Helper()
	o := smallOpts(e, fs)
	o.Shards = shards
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestShardedPutGetDeleteAllEngines(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			db := openShardedSmall(t, vfs.NewMemFS(), e, 4)
			defer db.Close()
			if db.NumShards() != 4 {
				t.Fatalf("NumShards = %d", db.NumShards())
			}
			for s := 0; s < 4; s++ {
				for i := 0; i < 50; i++ {
					k := shardKey(s, i)
					if err := db.Put(k, []byte(fmt.Sprintf("v%d.%d", s, i))); err != nil {
						t.Fatal(err)
					}
				}
			}
			for s := 0; s < 4; s++ {
				for i := 0; i < 50; i++ {
					v, err := db.Get(shardKey(s, i))
					if err != nil || string(v) != fmt.Sprintf("v%d.%d", s, i) {
						t.Fatalf("get shard %d key %d: %q %v", s, i, v, err)
					}
				}
			}
			if err := db.Delete(shardKey(2, 7)); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get(shardKey(2, 7)); err != ErrNotFound {
				t.Fatalf("after delete: %v", err)
			}
		})
	}
}

func TestShardedReopenAdoptsLayout(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openShardedSmall(t, fs, IAM, 4)
	for s := 0; s < 4; s++ {
		for i := 0; i < 30; i++ {
			if err := db.Put(shardKey(s, i), []byte(fmt.Sprintf("v%d.%d", s, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with no shard options at all: the SHARDS marker routes.
	db2, err := Open("db", smallOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.NumShards() != 4 {
		t.Fatalf("reopen NumShards = %d", db2.NumShards())
	}
	for s := 0; s < 4; s++ {
		for i := 0; i < 30; i++ {
			v, err := db2.Get(shardKey(s, i))
			if err != nil || string(v) != fmt.Sprintf("v%d.%d", s, i) {
				t.Fatalf("reopen get shard %d key %d: %q %v", s, i, v, err)
			}
		}
	}
}

func TestShardedLayoutMismatchRejected(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openShardedSmall(t, fs, IAM, 4)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	o := smallOpts(IAM, fs)
	o.Shards = 8
	if _, err := Open("db", o); err == nil {
		t.Fatal("conflicting shard count accepted")
	}
	o.Shards = 4
	o.ShardSplits = [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	if _, err := Open("db", o); err == nil {
		t.Fatal("conflicting splits accepted")
	}
}

func TestShardedMarkerRotDetected(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openShardedSmall(t, fs, IAM, 2)
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the marker: open must fail with a typed
	// corruption error, never misroute.
	if _, _, _, err := vfs.CorruptByte(fs, "db/SHARDS", 9, vfs.RotFlip); err != nil {
		t.Fatal(err)
	}
	_, err := Open("db", smallOpts(IAM, fs))
	if err == nil {
		t.Fatal("damaged SHARDS marker opened cleanly")
	}
	if !IsCorruption(err) {
		t.Fatalf("not a typed corruption error: %v", err)
	}
}

func TestShardedMissingMarkerDetected(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openShardedSmall(t, fs, IAM, 2)
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("db/SHARDS"); err != nil {
		t.Fatal(err)
	}
	// Even an open that never mentions shards must refuse: shard data
	// exists and routing it is guesswork.
	_, err := Open("db", smallOpts(IAM, fs))
	if err == nil {
		t.Fatal("sharded dir without marker opened cleanly")
	}
	if !IsCorruption(err) {
		t.Fatalf("not a typed corruption error: %v", err)
	}
}

func TestShardedIteratorForwardReverse(t *testing.T) {
	db := openShardedSmall(t, vfs.NewMemFS(), IAM, 4)
	defer db.Close()
	var want []string
	for s := 0; s < 4; s++ {
		for i := 0; i < 40; i++ {
			k := shardKey(s, i)
			if err := db.Put(k, []byte(fmt.Sprintf("v%d.%d", s, i))); err != nil {
				t.Fatal(err)
			}
			want = append(want, string(k))
		}
	}
	// Delete a few across shards; they must vanish from scans.
	for _, s := range []int{0, 2, 3} {
		if err := db.Delete(shardKey(s, 11)); err != nil {
			t.Fatal(err)
		}
		want = removeString(want, string(shardKey(s, 11)))
	}
	it := db.NewIterator()
	defer it.Close()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if !equalStrings(got, want) {
		t.Fatalf("forward scan: got %d keys, want %d (first diff %q)", len(got), len(want), firstDiff(got, want))
	}
	var rev []string
	for it.Last(); it.Valid(); it.Prev() {
		rev = append(rev, string(it.Key()))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if !equalStrings(rev, want) {
		t.Fatalf("reverse scan mismatch (first diff %q)", firstDiff(rev, want))
	}
	// Seek into the middle shard, then walk across a shard boundary.
	it.Seek(shardKey(1, 35))
	var crossed []string
	for ; it.Valid() && len(crossed) < 10; it.Next() {
		crossed = append(crossed, string(it.Key()))
	}
	if len(crossed) != 10 || crossed[0] != string(shardKey(1, 35)) ||
		crossed[5] != string(shardKey(2, 0)) {
		t.Fatalf("boundary crossing scan wrong: %q", crossed)
	}
	// SeekForPrev from inside shard 2 walks back into shard 1.
	it.SeekForPrev(shardKey(2, 2))
	var back []string
	for ; it.Valid() && len(back) < 6; it.Prev() {
		back = append(back, string(it.Key()))
	}
	if len(back) != 6 || back[0] != string(shardKey(2, 2)) || back[3] != string(shardKey(1, 39)) {
		t.Fatalf("boundary crossing reverse wrong: %q", back)
	}
}

func removeString(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstDiff(a, b []string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("at %d: %q vs %q", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

func TestShardedSnapshotConsistentCut(t *testing.T) {
	db := openShardedSmall(t, vfs.NewMemFS(), IAM, 4)
	defer db.Close()
	write := func(round int) {
		var b Batch
		for s := 0; s < 4; s++ {
			b.Put(shardKey(s, 0), []byte(fmt.Sprintf("r%d", round)))
		}
		if err := db.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	write(1)
	snap := db.GetSnapshot()
	defer snap.Release()
	write(2)
	// The snapshot must see round 1 on every shard, the live view round 2.
	for s := 0; s < 4; s++ {
		v, err := snap.Get(shardKey(s, 0))
		if err != nil || string(v) != "r1" {
			t.Fatalf("snapshot shard %d: %q %v", s, v, err)
		}
		v, err = db.Get(shardKey(s, 0))
		if err != nil || string(v) != "r2" {
			t.Fatalf("live shard %d: %q %v", s, v, err)
		}
	}
	it := snap.NewIterator()
	defer it.Close()
	for it.First(); it.Valid(); it.Next() {
		if string(it.Value()) != "r1" {
			t.Fatalf("snapshot iterator saw %q", it.Value())
		}
	}
}

// TestShardedCrossShardHammer is the torn-batch hunt: writers commit
// cross-shard batches carrying one round number per batch while readers
// point-get, snapshot-read and walk iterators both ways.  A reader
// observing two different rounds inside one batch's key set — or an
// iterator yielding keys out of order — fails the run.  Run with -race.
func TestShardedCrossShardHammer(t *testing.T) {
	db := openShardedSmall(t, vfs.NewMemFS(), IAM, 4)
	defer db.Close()
	const (
		writers = 4
		rows    = 3 // independent batch rows per writer
		rounds  = 150
	)
	key := func(w, row, s int) []byte {
		return append([]byte{byte(0x10 + 0x40*s)}, fmt.Sprintf("%02d.%02d", w, row)...)
	}
	// Seed every row at round 0 so readers always find the full set.
	for w := 0; w < writers; w++ {
		for r := 0; r < rows; r++ {
			var b Batch
			for s := 0; s < 4; s++ {
				b.Put(key(w, r, s), []byte("round00000"))
			}
			if err := db.Write(&b); err != nil {
				t.Fatal(err)
			}
		}
	}
	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
		stop.Store(true)
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 1; round <= rounds && !stop.Load(); round++ {
				row := rng.Intn(rows)
				var b Batch
				val := []byte(fmt.Sprintf("round%05d", round))
				for s := 0; s < 4; s++ {
					b.Put(key(w, row, s), val)
				}
				if err := db.Write(&b); err != nil {
					fail("write: %v", err)
					return
				}
				// Read-your-writes through the watermark.
				got, err := db.Get(key(w, row, 3))
				if err != nil || !bytes.Equal(got, val) {
					fail("read-your-writes: %q %v (want %q)", got, err, val)
					return
				}
			}
		}(w)
	}
	readBatch := func(get func([]byte) ([]byte, error), w, row int) (string, bool) {
		first := ""
		for s := 0; s < 4; s++ {
			v, err := get(key(w, row, s))
			if err != nil {
				fail("get: %v", err)
				return "", false
			}
			if s == 0 {
				first = string(v)
			} else if string(v) != first {
				fail("torn batch: writer %d row %d shard %d has %q, shard 0 has %q",
					w, row, s, v, first)
				return "", false
			}
		}
		return first, true
	}
	// Point readers: direct gets must never see a torn batch.
	for g := 0; g < 2; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for !stop.Load() {
				w, row := rng.Intn(writers), rng.Intn(rows)
				snap := db.GetSnapshot()
				if _, ok := readBatch(snap.Get, w, row); !ok {
					snap.Release()
					return
				}
				snap.Release()
			}
		}(g)
	}
	// Iterator walkers: forward and reverse, asserting key order and a
	// complete key set on every walk.
	for dir := 0; dir < 2; dir++ {
		readerWG.Add(1)
		go func(backward bool) {
			defer readerWG.Done()
			for !stop.Load() {
				it := db.NewIterator()
				var prev []byte
				n := 0
				step := func() {
					k := it.Key()
					if prev != nil {
						c := bytes.Compare(prev, k)
						if (!backward && c >= 0) || (backward && c <= 0) {
							fail("iterator order violation (backward=%v): %q then %q", backward, prev, k)
						}
					}
					prev = append(prev[:0], k...)
					n++
				}
				if backward {
					for it.Last(); it.Valid() && !stop.Load(); it.Prev() {
						step()
					}
				} else {
					for it.First(); it.Valid() && !stop.Load(); it.Next() {
						step()
					}
				}
				if err := it.Err(); err != nil {
					fail("iterator: %v", err)
				}
				if n != writers*rows*4 && !stop.Load() {
					fail("iterator saw %d keys, want %d", n, writers*rows*4)
				}
				it.Close()
			}
		}(dir == 1)
	}
	// Writers finish their rounds, then the readers are told to stop.
	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
}

func TestShardedCheckpoint(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openShardedSmall(t, fs, IAM, 4)
	for s := 0; s < 4; s++ {
		for i := 0; i < 40; i++ {
			if err := db.Put(shardKey(s, i), []byte(fmt.Sprintf("v%d.%d", s, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Checkpoint("ckpt"); err != nil {
		t.Fatal(err)
	}
	// Writes after the checkpoint must not leak into it.
	if err := db.Put(shardKey(1, 5), []byte("after")); err != nil {
		t.Fatal(err)
	}
	ck, err := Open("ckpt", smallOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.NumShards() != 4 {
		t.Fatalf("checkpoint NumShards = %d", ck.NumShards())
	}
	for s := 0; s < 4; s++ {
		for i := 0; i < 40; i++ {
			v, err := ck.Get(shardKey(s, i))
			if err != nil || string(v) != fmt.Sprintf("v%d.%d", s, i) {
				t.Fatalf("checkpoint get shard %d key %d: %q %v", s, i, v, err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedFlushScrubMetrics(t *testing.T) {
	db := openShardedSmall(t, vfs.NewMemFS(), IAM, 4)
	defer db.Close()
	var b Batch
	for s := 0; s < 4; s++ {
		for i := 0; i < 200; i++ {
			b.Put(shardKey(s, i), bytes.Repeat([]byte{byte(i)}, 64))
		}
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Engine.Flushes < 4 {
		t.Fatalf("aggregate flushes %d, want >= 4 (one per shard)", m.Engine.Flushes)
	}
	if m.UserBytes == 0 || m.SpaceUsed == 0 {
		t.Fatalf("aggregate sizes empty: %+v", m)
	}
	if m.CommitBatches < 4 {
		t.Fatalf("aggregate commit batches %d", m.CommitBatches)
	}
	rep, err := db.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v (%s)", err, rep.String())
	}
	if rep.Tables == 0 || rep.WALFiles < 4 {
		t.Fatalf("scrub coverage too small: %s", rep.String())
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Per-shard views line up with the aggregate.
	var user int64
	for i := 0; i < db.NumShards(); i++ {
		user += db.ShardMetrics(i).UserBytes
	}
	if user != m.UserBytes {
		t.Fatalf("per-shard UserBytes sum %d != aggregate %d", user, m.UserBytes)
	}
	if errors.Is(db.Resume(), ErrClosed) {
		t.Fatal("resume on open DB reported closed")
	}
}

// shardedGoldenRun executes one fully deterministic sharded workload —
// virtual disk clock shared by all shards, inline background work,
// tracing on — and returns every observable export.
func shardedGoldenRun(t *testing.T, e EngineKind) (report, timeline, jsonl string) {
	t.Helper()
	clock := new(vfs.DiskClock)
	disk := vfs.NewDisk(vfs.NewMemFS(), vfs.SSDProfile(), clock)
	ios := new(vfs.IOStats)
	opts := smallOpts(e, vfs.NewStatsFS(disk, ios))
	opts.Clock = clock
	opts.Trace = NewTraceRecorder(8192, clock)
	opts.InlineBackground = true
	opts.Shards = 4
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sampler := db.NewSampler(200*time.Microsecond, 64)

	val := make([]byte, 100)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < 300; i++ {
		// Every third write is a cross-shard batch; the rest target a
		// rotating shard so all four pipelines see traffic.
		if i%3 == 0 {
			var b Batch
			for s := 0; s < 4; s++ {
				b.Put(shardKey(s, i%97), val)
			}
			if err := db.Write(&b); err != nil {
				t.Fatal(err)
			}
		} else {
			k := shardKey(i%4, i*7919%1000)
			if err := db.Put(k, val); err != nil {
				t.Fatal(err)
			}
			if i%5 == 0 {
				if _, err := db.Get(k); err != nil {
					t.Fatal(err)
				}
			}
			if i%17 == 0 {
				if err := db.Delete(k); err != nil {
					t.Fatal(err)
				}
			}
		}
		sampler.Poll()
	}

	tl, err := json.Marshal(db.Timeline())
	if err != nil {
		t.Fatal(err)
	}
	var jb strings.Builder
	if err := db.Trace().WriteJSONLines(&jb); err != nil {
		t.Fatal(err)
	}
	return db.Metrics().String(), string(tl), jb.String()
}

// TestShardedGoldenDeterminism extends the reproducibility gate to the
// sharded front-end: two identical virtual-clock runs with four shards
// and inline background work must export byte-identical metrics
// reports, timelines and traces.
func TestShardedGoldenDeterminism(t *testing.T) {
	for _, e := range []EngineKind{IAM, LevelDB} {
		t.Run(e.String(), func(t *testing.T) {
			rep1, tl1, jl1 := shardedGoldenRun(t, e)
			rep2, tl2, jl2 := shardedGoldenRun(t, e)
			if rep1 != rep2 {
				t.Errorf("metrics reports differ between identical runs:\n--- run1\n%s\n--- run2\n%s", rep1, rep2)
			}
			if tl1 != tl2 {
				t.Errorf("timelines differ between identical runs")
			}
			if jl1 != jl2 {
				t.Errorf("JSONL trace exports differ between identical runs")
			}
			if !strings.Contains(jl1, "commit.group") {
				t.Error("trace export has no commit.group spans")
			}
		})
	}
}

// TestShardedDebugLevels exercises the /levels endpoint on a sharded
// store: the aggregate headline names the shard count and every shard
// renders its own tree section.
func TestShardedDebugLevels(t *testing.T) {
	db := openShardedSmall(t, vfs.NewMemFS(), IAM, 4)
	defer db.Close()
	for s := 0; s < 4; s++ {
		for i := 0; i < 30; i++ {
			if err := db.Put(shardKey(s, i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/levels")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "4 shards") {
		t.Fatalf("/levels missing shard count:\n%s", text)
	}
	for s := 0; s < 4; s++ {
		if !strings.Contains(text, fmt.Sprintf("-- shard %03d ", s)) {
			t.Fatalf("/levels missing shard %d section:\n%s", s, text)
		}
	}
}
