package harness

import (
	"fmt"
	"testing"
	"time"
)

// TestAllExperimentsEndToEnd regenerates every remaining table and
// figure once at small scale — the full-pipeline integration test.
// Skipped under -short (several minutes of simulated workloads).
func TestAllExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	s := SmallScale
	run := func(name string, f func() (Table, error)) {
		t0 := time.Now()
		tbl, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Println(tbl.Format())
		fmt.Printf("(%s took %v)\n\n", name, time.Since(t0))
	}
	run("table1", s.Table1)
	run("table2", s.Table2)
	run("table5", s.Table5)
	run("figure7a", func() (Table, error) { return s.Figure7(ClassSSD100G) })
	run("figure7c", func() (Table, error) { return s.Figure7(ClassHDD1T) })
	run("figure8", s.Figure8)
	run("figure9", s.Figure9)
	run("figure10", s.Figure10)
}
