package iamdb_test

// Ablation helpers for the design-choice benchmarks: these reach into
// the internal packages to vary parameters the public Options keep
// fixed at the paper's defaults.

import (
	"fmt"
	"testing"

	"iamdb/internal/core"
	"iamdb/internal/kv"
	"iamdb/internal/memtable"
	"iamdb/internal/vfs"
	"iamdb/internal/ycsb"
)

// runBloomAblation loads a tree with the given Bloom density and
// measures read traffic for hits and guaranteed misses.
func runBloomAblation(b *testing.B, bitsPerKey int) {
	var st vfs.IOStats
	fs := vfs.NewStatsFS(vfs.NewMemFS(), &st)
	tr, err := core.Open(core.Config{
		FS: fs, Dir: "db", NodeCapacity: 32 * 1024,
		Policy: core.LSA, BitsPerKey: bitsPerKey,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()

	const n = 4000
	mt := memtable.New()
	seq := kv.Seq(0)
	val := make([]byte, 256)
	for i := 0; i < n; i++ {
		seq++
		mt.Add(seq, kv.KindSet, ycsb.KeyName(uint64(i)), val)
		if mt.ApproximateSize() >= 32*1024 {
			if err := tr.Flush(mt.NewIter()); err != nil {
				b.Fatal(err)
			}
			mt = memtable.New()
		}
	}
	tr.Flush(mt.NewIter())

	before := st.Snapshot()
	for i := 0; i < 2000; i++ {
		tr.Get(ycsb.KeyName(uint64(n+100000+i)), kv.MaxSeq) // misses
	}
	missBytes := st.Snapshot().Sub(before).BytesRead
	b.ReportMetric(float64(missBytes)/2000, "missB/op")
}

// runLeafInitAblation hash-loads a tree with leaf merge chunks of
// Ct/frac and reports the resulting write amplification.
func runLeafInitAblation(b *testing.B, frac int) {
	tr, err := core.Open(core.Config{
		FS: vfs.NewMemFS(), Dir: "db", NodeCapacity: 32 * 1024,
		Policy: core.LSA, LeafInitFrac: frac,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()

	const n = 8000
	mt := memtable.New()
	seq := kv.Seq(0)
	val := make([]byte, 256)
	var user int64
	for i := 0; i < n; i++ {
		seq++
		k := ycsb.KeyName(uint64(i))
		mt.Add(seq, kv.KindSet, k, val)
		user += int64(len(k) + len(val))
		if mt.ApproximateSize() >= 32*1024 {
			if err := tr.Flush(mt.NewIter()); err != nil {
				b.Fatal(err)
			}
			mt = memtable.New()
		}
	}
	tr.Flush(mt.NewIter())
	amp := float64(tr.Stats().TotalFlushBytes()) / float64(user)
	b.ReportMetric(amp, "write-amp")
	if err := tr.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationSplitCombine exercises the split threshold 2t and
// combine rule Tcn <= 3t under a skewed load, reporting split counts.
func BenchmarkAblationSplitCombine(b *testing.B) {
	for _, fanout := range []int{4, 10} {
		b.Run(fmt.Sprintf("t=%d", fanout), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				tr, err := core.Open(core.Config{
					FS: vfs.NewMemFS(), Dir: "db", NodeCapacity: 16 * 1024,
					Fanout: fanout, Policy: core.LSA,
				})
				if err != nil {
					b.Fatal(err)
				}
				mt := memtable.New()
				seq := kv.Seq(0)
				val := make([]byte, 64)
				for i := 0; i < 20000; i++ {
					seq++
					// Narrow hot range provokes range skew.
					mt.Add(seq, kv.KindSet,
						[]byte(fmt.Sprintf("hot%06d", i%3000)), val)
					if mt.ApproximateSize() >= 16*1024 {
						if err := tr.Flush(mt.NewIter()); err != nil {
							b.Fatal(err)
						}
						mt = memtable.New()
					}
				}
				tr.Flush(mt.NewIter())
				st := tr.Stats()
				b.ReportMetric(float64(st.Splits), "splits")
				b.ReportMetric(float64(st.Combines), "combines")
				if err := tr.CheckInvariants(); err != nil {
					b.Fatal(err)
				}
				tr.Close()
			}
		})
	}
}

// BenchmarkAblationCompression compares on-disk footprint with and
// without flate block compression on compressible values (the paper
// runs with compression off; this quantifies what that choice costs).
func BenchmarkAblationCompression(b *testing.B) {
	for _, comp := range []bool{false, true} {
		name := "off"
		if comp {
			name = "flate"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := core.Open(core.Config{
					FS: vfs.NewMemFS(), Dir: "db", NodeCapacity: 32 * 1024,
					Policy: core.IAM, MemBudget: 64 * 1024, Compression: comp,
				})
				if err != nil {
					b.Fatal(err)
				}
				mt := memtable.New()
				seq := kv.Seq(0)
				val := []byte(fmt.Sprintf("%0512d", 7)) // highly compressible
				for r := 0; r < 6000; r++ {
					seq++
					mt.Add(seq, kv.KindSet, ycsb.KeyName(uint64(r)), val)
					if mt.ApproximateSize() >= 32*1024 {
						if err := tr.Flush(mt.NewIter()); err != nil {
							b.Fatal(err)
						}
						mt = memtable.New()
					}
				}
				tr.Flush(mt.NewIter())
				b.ReportMetric(float64(tr.SpaceUsed())/(1<<20), "space-MiB")
				tr.Close()
			}
		})
	}
}
