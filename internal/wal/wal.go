// Package wal implements the write-ahead log used for crash recovery,
// in the LevelDB log format the paper's IamDB inherits: the file is a
// sequence of 32 KiB blocks, and each user record is stored as one or
// more fragments, each carrying a CRC, so a torn tail after a crash is
// detected and discarded rather than misread.
//
//	fragment := checksum(4, little-endian CRC32-C of type+payload)
//	            length(2, little-endian)
//	            type(1: full, first, middle, last)
//	            payload(length bytes)
//
// A fragment never spans a block boundary; a block tail shorter than the
// 7-byte header is zero-padded.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"

	"iamdb/internal/corrupt"
	"iamdb/internal/vfs"
)

// BlockSize is the log block size.
const BlockSize = 32 * 1024

const headerSize = 7

const (
	typeFull   = 1
	typeFirst  = 2
	typeMiddle = 3
	typeLast   = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a malformed or torn log record.  A default Reader
// surfaces it only through the count of dropped bytes (Next treats any
// corruption as a clean end of log, matching LevelDB's default
// recovery).  A strict Reader distinguishes the two cases a crash
// cannot: corruption at the tail with nothing after it is a torn write
// and still ends iteration cleanly, but corruption *followed by a
// fragment with a valid checksum* proves mid-log damage — a torn tail
// only ever truncates — and Next returns a typed *corrupt.Error
// instead of silently shortening the log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Writer appends records to a log file.  Append is single-writer (the
// DB's commit leader owns it); Offset may be read concurrently with an
// in-flight Append, which is why the byte count is atomic.
type Writer struct {
	f         vfs.File
	blockOff  int // bytes used in the current block
	written   atomic.Int64
	buf       []byte
	syncEvery bool
}

// NewWriter starts a log at the beginning of f.
func NewWriter(f vfs.File) *Writer {
	return &Writer{f: f, buf: make([]byte, 0, BlockSize)}
}

// SetSync makes every Append durable before returning.
func (w *Writer) SetSync(on bool) { w.syncEvery = on }

// Append writes one record, fragmenting across blocks as needed.
func (w *Writer) Append(rec []byte) error {
	first := true
	for {
		avail := BlockSize - w.blockOff
		if avail < headerSize {
			// Zero-fill the tail and move to a fresh block.
			if avail > 0 {
				if _, err := w.f.Write(make([]byte, avail)); err != nil {
					return err
				}
				w.written.Add(int64(avail))
			}
			w.blockOff = 0
			avail = BlockSize
		}
		frag := rec
		if len(frag) > avail-headerSize {
			frag = rec[:avail-headerSize]
		}
		rec = rec[len(frag):]
		last := len(rec) == 0

		var typ byte
		switch {
		case first && last:
			typ = typeFull
		case first:
			typ = typeFirst
		case last:
			typ = typeLast
		default:
			typ = typeMiddle
		}

		w.buf = w.buf[:0]
		var hdr [headerSize]byte
		crc := crc32.Checksum(append([]byte{typ}, frag...), castagnoli)
		binary.LittleEndian.PutUint32(hdr[0:4], crc)
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(frag)))
		hdr[6] = typ
		w.buf = append(w.buf, hdr[:]...)
		w.buf = append(w.buf, frag...)
		if _, err := w.f.Write(w.buf); err != nil {
			return err
		}
		w.blockOff += headerSize + len(frag)
		w.written.Add(int64(headerSize + len(frag)))

		if last {
			if w.syncEvery {
				return w.f.Sync()
			}
			return nil
		}
		first = false
	}
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Offset reports the bytes written to this log so far, including
// fragment headers and block padding.
func (w *Writer) Offset() int64 { return w.written.Load() }

// Reader replays records from a log file.
type Reader struct {
	f        vfs.File
	off      int64
	blockOff int
	block    [BlockSize]byte
	blockLen int
	// Dropped counts bytes skipped over corruption.
	Dropped int64

	strict  bool
	name    string
	pending *corrupt.Error // first corruption seen, awaiting tail/mid-log verdict
}

// NewReader reads the log in f from the start.
func NewReader(f vfs.File) *Reader { return &Reader{f: f} }

// Strict makes mid-log corruption fatal: if damage is followed by any
// fragment with a valid checksum, Next returns a *corrupt.Error
// attributed to name instead of skipping.  Tail corruption (a torn
// write with nothing valid after it) still ends iteration cleanly with
// Dropped advanced.
func (r *Reader) Strict(name string) {
	r.strict = true
	r.name = name
}

// Corruption reports the damage a strict reader has seen so far, even
// when it was tail-compatible and therefore tolerated; nil when the log
// scanned clean.
func (r *Reader) Corruption() *corrupt.Error { return r.pending }

// note records the first corruption a strict reader encounters; the
// verdict (tolerated tail tear vs fatal mid-log damage) is deferred
// until the scan either ends or finds valid data beyond it.
func (r *Reader) note(off int64, got, want uint32, detail string) {
	if !r.strict || r.pending != nil {
		return
	}
	r.pending = corrupt.New(corrupt.LayerWAL, r.name, off, ErrCorrupt, detail).WithCRC(got, want)
}

func (r *Reader) refill() error {
	n, err := r.f.ReadAt(r.block[:], r.off)
	r.blockLen = n
	r.blockOff = 0
	r.off += int64(n)
	if n == 0 {
		if err == nil || err == io.EOF {
			return io.EOF
		}
		return err
	}
	return nil
}

// Next returns the next complete record, or io.EOF at the end of the
// log.  Corruption at the tail (torn write) ends iteration; corruption
// followed by further valid fragments is skipped with Dropped advanced
// by default, or aborts with a typed error on a Strict reader.
func (r *Reader) Next() ([]byte, error) {
	var rec []byte
	inFragmented := false
	for {
		if r.blockOff+headerSize > r.blockLen {
			// Skip block padding.
			if err := r.refill(); err != nil {
				if inFragmented {
					r.Dropped += int64(len(rec))
				}
				return nil, io.EOF
			}
		}
		hdr := r.block[r.blockOff : r.blockOff+headerSize]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		typ := hdr[6]
		wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
		fragOff := r.off - int64(r.blockLen) + int64(r.blockOff)

		if typ == 0 && length == 0 && wantCRC == 0 {
			// Zero padding: rest of this block is empty.
			r.blockOff = r.blockLen
			continue
		}
		if r.blockOff+headerSize+length > r.blockLen || typ < typeFull || typ > typeLast {
			// Torn or garbage fragment: drop the rest of the block.
			r.note(fragOff, 0, 0, "torn or garbage fragment header")
			r.Dropped += int64(r.blockLen - r.blockOff)
			r.blockOff = r.blockLen
			rec, inFragmented = nil, false
			continue
		}
		payload := r.block[r.blockOff+headerSize : r.blockOff+headerSize+length]
		crc := crc32.Checksum(append([]byte{typ}, payload...), castagnoli)
		if crc != wantCRC {
			r.note(fragOff, wantCRC, crc, "fragment checksum mismatch")
			r.Dropped += int64(headerSize + length)
			r.blockOff = r.blockLen
			rec, inFragmented = nil, false
			continue
		}
		if r.pending != nil {
			// A fragment with a valid checksum beyond the damage: a torn
			// tail only truncates, so this is mid-log corruption.  Abort
			// loudly rather than silently shortening the replay.
			return nil, r.pending
		}
		r.blockOff += headerSize + length

		switch typ {
		case typeFull:
			if inFragmented {
				r.Dropped += int64(len(rec))
			}
			return append([]byte(nil), payload...), nil
		case typeFirst:
			if inFragmented {
				r.Dropped += int64(len(rec))
			}
			rec = append(rec[:0], payload...)
			inFragmented = true
		case typeMiddle:
			if !inFragmented {
				// An orphan continuation implies its first fragment was
				// destroyed in place — truncation cannot leave one.
				r.note(fragOff, 0, 0, "orphan middle fragment")
				r.Dropped += int64(length)
				continue
			}
			rec = append(rec, payload...)
		case typeLast:
			if !inFragmented {
				r.note(fragOff, 0, 0, "orphan last fragment")
				r.Dropped += int64(length)
				continue
			}
			return append(rec, payload...), nil
		}
	}
}

// ReplayAll reads every intact record, invoking fn for each.  It stops
// cleanly at the first torn tail and, like LevelDB's default recovery,
// skips over mid-log damage; use ReplayAllStrict when silent
// truncation is unacceptable.
func ReplayAll(f vfs.File, fn func(rec []byte) error) (dropped int64, err error) {
	return replay(NewReader(f), fn)
}

// ReplayAllStrict reads every intact record, invoking fn for each.  A
// torn tail (corruption with nothing valid after it) still ends the
// replay cleanly with dropped > 0, but mid-log corruption — damage
// followed by a valid fragment — aborts with a *corrupt.Error
// attributed to name.
func ReplayAllStrict(f vfs.File, name string, fn func(rec []byte) error) (dropped int64, err error) {
	r := NewReader(f)
	r.Strict(name)
	return replay(r, fn)
}

func replay(r *Reader, fn func(rec []byte) error) (dropped int64, err error) {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return r.Dropped, nil
		}
		if err != nil {
			return r.Dropped, err
		}
		if err := fn(rec); err != nil {
			return r.Dropped, fmt.Errorf("wal replay: %w", err)
		}
	}
}
