package iamdb

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iamdb/internal/vfs"
)

// Scrub contract: a clean store verifies end to end with no findings; a
// store with a rotted table block is detected, reported, counted and
// quarantined without stopping the pass; progress and the debug
// endpoints reflect both.

func buildScrubDB(t *testing.T, e EngineKind) (*DB, vfs.FS) {
	t.Helper()
	fs := vfs.NewMemFS()
	db, err := Open("db", smallOpts(e, fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k%05d", i%1500)
		if err := db.Put([]byte(k), []byte(fmt.Sprintf("v%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	return db, fs
}

func TestScrubCleanStore(t *testing.T) {
	for _, e := range allEngines {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			db, _ := buildScrubDB(t, e)
			defer db.Close()
			rep, err := db.Scrub()
			if err != nil {
				t.Fatalf("scrub of clean store: %v", err)
			}
			if rep.Tables == 0 || rep.Blocks == 0 || rep.Bytes == 0 {
				t.Fatalf("scrub covered nothing: %s", rep.String())
			}
			if len(rep.Corruptions) != 0 || rep.Quarantined != 0 {
				t.Fatalf("clean store reported findings: %s", rep.String())
			}
			p := db.ScrubProgress()
			if p.Running || p.Last == nil || p.Last.Tables != rep.Tables {
				t.Fatalf("progress after pass: %+v", p)
			}
			if m := db.Metrics(); m.ScrubBlocks != rep.Blocks {
				t.Fatalf("ScrubBlocks %d != report blocks %d", m.ScrubBlocks, rep.Blocks)
			}
		})
	}
}

func TestScrubDetectsAndQuarantines(t *testing.T) {
	for _, e := range []EngineKind{IAM, LevelDB} {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			db, fs := buildScrubDB(t, e)
			defer db.Close()

			// Rot a few interior bytes of one live table.
			names, err := fs.List("db")
			if err != nil {
				t.Fatal(err)
			}
			var victim string
			for _, n := range names {
				if strings.HasSuffix(n, ".mst") {
					victim = "db/" + n
					break
				}
			}
			if victim == "" {
				t.Fatal("no table file after flush")
			}
			// MSTable files are preallocated to capacity with data written
			// from the head; damage the written extent, not unused space.
			for _, off := range []int64{100, 600, 1200} {
				if _, _, _, err := vfs.CorruptByte(fs, victim, off, vfs.RotFlip); err != nil {
					t.Fatal(err)
				}
			}

			rep, err := db.Scrub()
			if err == nil {
				t.Fatalf("scrub missed the damage: %s", rep.String())
			}
			if !IsCorruption(err) {
				t.Fatalf("scrub failed with untyped error: %v", err)
			}
			ce := AsCorruption(err)
			if ce.Path != victim {
				t.Fatalf("corruption attributed to %q, want %q", ce.Path, victim)
			}
			if len(rep.Corruptions) == 0 {
				t.Fatal("report lists no corruptions")
			}
			if rep.Quarantined == 0 {
				t.Fatal("damaged table was not quarantined")
			}
			m := db.Metrics()
			if m.CorruptionsDetected == 0 || m.TablesQuarantined == 0 {
				t.Fatalf("counters: %d detected, %d quarantined",
					m.CorruptionsDetected, m.TablesQuarantined)
			}

			// The store keeps serving: each key either reads correctly or
			// fails typed; nothing panics, nothing returns wrong bytes.
			var served, failed int
			for i := 0; i < 1500; i++ {
				k := fmt.Sprintf("k%05d", i)
				v, gerr := db.Get([]byte(k))
				switch {
				case gerr == nil:
					if !strings.HasPrefix(string(v), "v") {
						t.Fatalf("key %s returned garbage %q", k, v)
					}
					served++
				case gerr == ErrNotFound, IsCorruption(gerr):
					failed++
				default:
					t.Fatalf("key %s: untyped error %v", k, gerr)
				}
			}
			if served == 0 {
				t.Fatal("no key readable after quarantine")
			}

			// Debug endpoints reflect the pass.
			h := db.DebugHandler()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/scrub", nil))
			var out struct {
				Running     bool
				LastSummary string
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("/scrub JSON: %v", err)
			}
			if out.Running || !strings.Contains(out.LastSummary, "corruption") {
				t.Fatalf("/scrub = %+v", out)
			}
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/levels", nil))
			if !strings.Contains(rec.Body.String(), "quarantined") {
				t.Fatalf("/levels does not show quarantine:\n%s", rec.Body.String())
			}
		})
	}
}

func TestScrubEndpointStartsAsyncPass(t *testing.T) {
	db, _ := buildScrubDB(t, IAM)
	defer db.Close()
	h := db.DebugHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/scrub", nil))
	deadline := time.Now().Add(10 * time.Second)
	for {
		p := db.ScrubProgress()
		if !p.Running && p.Last != nil {
			if p.Last.Tables == 0 {
				t.Fatalf("async pass covered nothing: %+v", p.Last)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("async scrub never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
