package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetSetBasic(t *testing.T) {
	c := New(1 << 20)
	if got := c.Get(1, 0); got != nil {
		t.Fatal("miss should return nil")
	}
	c.Set(1, 0, []byte("block-data"))
	if got := c.Get(1, 0); string(got) != "block-data" {
		t.Fatalf("hit got %q", got)
	}
	if got := c.Get(1, 4096); got != nil {
		t.Fatal("different offset must miss")
	}
	if got := c.Get(2, 0); got != nil {
		t.Fatal("different table must miss")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New(1 << 20)
	c.Set(1, 0, make([]byte, 100))
	c.Set(1, 0, make([]byte, 300))
	if c.Used() != 300 {
		t.Fatalf("used %d want 300", c.Used())
	}
	if c.ResidentBytes(1) != 300 {
		t.Fatalf("resident %d want 300", c.ResidentBytes(1))
	}
}

func TestLRUEviction(t *testing.T) {
	// Use one shard's worth of keys by fixing table and varying offsets
	// that map to the same shard: easier — small total capacity and
	// check global behaviour.
	c := New(16 * 1024) // 1 KiB per shard
	blk := make([]byte, 512)
	// Insert far more than capacity.
	for i := uint64(0); i < 256; i++ {
		c.Set(7, i*4096, blk)
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", c.Used(), c.Capacity())
	}
	if c.ResidentBytes(7) != c.Used() {
		t.Fatalf("resident %d != used %d", c.ResidentBytes(7), c.Used())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	// Single-shard behaviour: capacity for exactly 2 blocks per shard.
	c := New(numShards * 1024)
	a := make([]byte, 512)
	// Find three offsets in the same shard.
	var offs []uint64
	base := c.shardFor(Key{1, 0})
	for off := uint64(0); len(offs) < 3; off += 4096 {
		if c.shardFor(Key{1, off}) == base {
			offs = append(offs, off)
		}
	}
	c.Set(1, offs[0], a)
	c.Set(1, offs[1], a)
	c.Get(1, offs[0]) // touch 0 so 1 is LRU
	c.Set(1, offs[2], a)
	if c.Get(1, offs[0]) == nil {
		t.Error("recently used block evicted")
	}
	if c.Get(1, offs[1]) != nil {
		t.Error("LRU block not evicted")
	}
}

func TestOversizeBlockNotCached(t *testing.T) {
	c := New(16 * 1024)
	c.Set(1, 0, make([]byte, 10*1024))
	if c.Get(1, 0) != nil {
		t.Error("oversize block should be rejected")
	}
	if c.Used() != 0 {
		t.Errorf("used %d", c.Used())
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	c.Set(1, 0, []byte("x"))
	if c.Get(1, 0) != nil {
		t.Error("zero-capacity cache must store nothing")
	}
	if c.ResidentBytes(1) != 0 {
		t.Error("residency leak")
	}
}

func TestEvictTable(t *testing.T) {
	c := New(1 << 20)
	for i := uint64(0); i < 50; i++ {
		c.Set(1, i*4096, make([]byte, 100))
		c.Set(2, i*4096, make([]byte, 100))
	}
	if c.ResidentBytes(1) != 5000 || c.ResidentBytes(2) != 5000 {
		t.Fatalf("resident %d/%d", c.ResidentBytes(1), c.ResidentBytes(2))
	}
	c.EvictTable(1)
	if c.ResidentBytes(1) != 0 {
		t.Errorf("table 1 still resident: %d", c.ResidentBytes(1))
	}
	if c.ResidentBytes(2) != 5000 {
		t.Errorf("table 2 disturbed: %d", c.ResidentBytes(2))
	}
	if c.Get(1, 0) != nil {
		t.Error("evicted block served")
	}
	if c.Get(2, 0) == nil {
		t.Error("surviving block lost")
	}
	if c.Used() != 5000 {
		t.Errorf("used %d", c.Used())
	}
}

func TestResidencyMatchesUsedUnderChurn(t *testing.T) {
	c := New(64 * 1024)
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 100; i++ {
			c.Set(i%5, i*4096+uint64(round), make([]byte, 200+int(i)))
		}
	}
	var sum int64
	for id := uint64(0); id < 5; id++ {
		sum += c.ResidentBytes(id)
	}
	if sum != c.Used() {
		t.Fatalf("sum of residents %d != used %d", sum, c.Used())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				off := uint64(i % 64 * 4096)
				c.Set(uint64(g), off, []byte(fmt.Sprintf("%d-%d", g, i)))
				c.Get(uint64(g), off)
				if i%100 == 0 {
					c.EvictTable(uint64(g))
				}
			}
		}(g)
	}
	wg.Wait()
	// Post-condition: residency bookkeeping consistent.
	var sum int64
	for id := uint64(0); id < 8; id++ {
		sum += c.ResidentBytes(id)
	}
	if sum != c.Used() {
		t.Fatalf("resident sum %d != used %d", sum, c.Used())
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(1 << 24)
	blk := make([]byte, 4096)
	for i := uint64(0); i < 1000; i++ {
		c.Set(1, i*4096, blk)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(1, uint64(i%1000)*4096)
	}
}
