// Quickstart: open an IamDB database, write, read, scan, snapshot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"iamdb"
)

func main() {
	dir, err := os.MkdirTemp("", "iamdb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open with the IAM engine (the paper's hybrid append/merge tree).
	// Engine: iamdb.LSA, iamdb.LevelDB and iamdb.RocksDB select the
	// other trees behind the same API.
	db, err := iamdb.Open(dir, &iamdb.Options{Engine: iamdb.IAM})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes: single keys and atomic batches.
	if err := db.Put([]byte("user:alice"), []byte("score=42")); err != nil {
		log.Fatal(err)
	}
	var batch iamdb.Batch
	batch.Put([]byte("user:bob"), []byte("score=17"))
	batch.Put([]byte("user:carol"), []byte("score=93"))
	batch.Delete([]byte("user:mallory"))
	if err := db.Write(&batch); err != nil {
		log.Fatal(err)
	}

	// Point read.
	v, err := db.Get([]byte("user:alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice -> %s\n", v)

	// Snapshot: a consistent view that later writes don't disturb.
	snap := db.GetSnapshot()
	db.Put([]byte("user:alice"), []byte("score=1000"))
	old, _ := snap.Get([]byte("user:alice"))
	now, _ := db.Get([]byte("user:alice"))
	fmt.Printf("snapshot sees %s, current is %s\n", old, now)
	snap.Release()

	// Range scan in key order.
	fmt.Println("all users:")
	it := db.NewIterator()
	defer it.Close()
	for it.Seek([]byte("user:")); it.Valid(); it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}

	// Engine metrics: write amplification, tree shape.
	m := db.Metrics()
	fmt.Printf("write amplification so far: %.2f\n", m.WriteAmplification())
}
