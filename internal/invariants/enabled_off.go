//go:build !invariants

package invariants

// Enabled reports whether expensive runtime assertions are compiled
// in.  It is a constant so release builds eliminate guarded blocks
// entirely.
const Enabled = false
