package harness

import (
	"testing"
	"time"

	"iamdb"
	"iamdb/internal/histogram"
	"iamdb/internal/ycsb"
)

func TestScoreTimeline(t *testing.T) {
	if sc := ScoreTimeline(nil); sc.Windows != 0 || sc.MeanOpsPerSec != 0 {
		t.Fatalf("empty timeline scored %+v", sc)
	}
	w := 10 * time.Millisecond
	pts := []iamdb.TimelinePoint{
		{Start: 0, End: w, Ops: 100, OpsPerSec: 10000, StallFrac: 0,
			Put: histogram.Summary{P99: 2 * time.Millisecond, P999: 3 * time.Millisecond}},
		{Start: w, End: 2 * w, Ops: 100, OpsPerSec: 10000, StallFrac: 0.5,
			Put: histogram.Summary{P99: 8 * time.Millisecond, P999: 9 * time.Millisecond}},
	}
	sc := ScoreTimeline(pts)
	if sc.Windows != 2 || sc.Window != w {
		t.Fatalf("windows=%d window=%v", sc.Windows, sc.Window)
	}
	if sc.MeanOpsPerSec != 10000 || sc.ThroughputCV != 0 {
		t.Fatalf("mean=%v cv=%v", sc.MeanOpsPerSec, sc.ThroughputCV)
	}
	if sc.WorstWindowOpsPerSec != 10000 {
		t.Fatalf("worst=%v", sc.WorstWindowOpsPerSec)
	}
	if sc.WorstP99 != 8*time.Millisecond || sc.WorstP999 != 9*time.Millisecond {
		t.Fatalf("worst p99=%v p999=%v", sc.WorstP99, sc.WorstP999)
	}
	if sc.MeanStallFrac != 0.25 {
		t.Fatalf("stall=%v", sc.MeanStallFrac)
	}
	// Uneven throughput: cv must be positive, worst window the slow one.
	pts[1].OpsPerSec = 2000
	sc = ScoreTimeline(pts)
	if sc.ThroughputCV <= 0 || sc.WorstWindowOpsPerSec != 2000 {
		t.Fatalf("cv=%v worst=%v", sc.ThroughputCV, sc.WorstWindowOpsPerSec)
	}
}

// TestStabilityTimeline runs one engine's stability flow and checks the
// acceptance shape: a timeline with at least 50 uniform windows whose
// bounds tile the measured phase, and a score with finite variance.
func TestStabilityTimeline(t *testing.T) {
	cfg := SmallScale.ConfigFor(iamdb.IAM, ClassSSD100G, 1)
	cfg.Inline = true
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if _, err := env.HashLoad(); err != nil {
		t.Fatal(err)
	}
	env.ResetTimeline(50*time.Microsecond, 0)
	if _, err := env.RunWorkload(ycsb.WorkloadA, 4*SmallScale.WorkloadOps); err != nil {
		t.Fatal(err)
	}
	pts := env.Timeline()
	if len(pts) < 50 {
		t.Fatalf("timeline has %d windows, want >= 50", len(pts))
	}
	width := pts[0].End - pts[0].Start
	for i, p := range pts {
		if p.End-p.Start != width {
			t.Fatalf("window %d width %v != %v", i, p.End-p.Start, width)
		}
		if i > 0 && p.Start != pts[i-1].End {
			t.Fatalf("window %d start %v != previous end %v", i, p.Start, pts[i-1].End)
		}
	}
	var ops int64
	for _, p := range pts {
		ops += p.Ops
	}
	if ops == 0 {
		t.Fatal("no operations landed in any window")
	}
	sc := ScoreTimeline(pts)
	if sc.MeanOpsPerSec <= 0 {
		t.Fatalf("score %+v", sc)
	}
}

// BenchmarkStability is the check.sh smoke: one full stability
// experiment at small scale (all four engines) with -benchtime 1x.
func BenchmarkStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SmallScale.Stability(); err != nil {
			b.Fatal(err)
		}
	}
}
