package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"iamdb/internal/vfs"
)

func newLog(t *testing.T) (vfs.FS, vfs.File) {
	t.Helper()
	fs := vfs.NewMemFS()
	f, err := fs.Create("test.log")
	if err != nil {
		t.Fatal(err)
	}
	return fs, f
}

func reopen(t *testing.T, fs vfs.FS) vfs.File {
	t.Helper()
	f, err := fs.Open("test.log")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWriteReadSmallRecords(t *testing.T) {
	fs, f := newLog(t)
	w := NewWriter(f)
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%04d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	r := NewReader(reopen(t, fs))
	for i := 0; ; i++ {
		rec, err := r.Next()
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("got %d records want %d", i, len(want))
			}
			break
		}
		if !bytes.Equal(rec, want[i]) {
			t.Fatalf("record %d: %q != %q", i, rec, want[i])
		}
	}
	if r.Dropped != 0 {
		t.Errorf("dropped %d bytes from clean log", r.Dropped)
	}
}

func TestFragmentedRecords(t *testing.T) {
	fs, f := newLog(t)
	w := NewWriter(f)
	sizes := []int{0, 1, headerSize, BlockSize - headerSize, BlockSize, BlockSize + 1, 3 * BlockSize, 100000}
	rng := rand.New(rand.NewSource(7))
	var want [][]byte
	for _, n := range sizes {
		rec := make([]byte, n)
		rng.Read(rec)
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(reopen(t, fs))
	for i, wrec := range want {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d (size %d): %v", i, len(wrec), err)
		}
		if !bytes.Equal(rec, wrec) {
			t.Fatalf("record %d (size %d) mismatch", i, len(wrec))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	fs, f := newLog(t)
	w := NewWriter(f)
	w.Append([]byte("good-1"))
	w.Append([]byte("good-2"))
	w.Append(bytes.Repeat([]byte("x"), 5000))
	size, _ := f.Size()
	f.Close()

	// Tear the last record by truncating mid-payload.
	g := reopen(t, fs)
	g.Truncate(size - 1000)

	var got [][]byte
	dropped, err := ReplayAll(g, func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want the 2 intact ones", len(got))
	}
	if string(got[0]) != "good-1" || string(got[1]) != "good-2" {
		t.Fatalf("bad records: %q", got)
	}
	if dropped == 0 {
		t.Error("expected dropped bytes to be reported")
	}
}

func TestCorruptMiddleSkipped(t *testing.T) {
	fs, f := newLog(t)
	w := NewWriter(f)
	// Fill more than one block so corruption in block 0 still leaves
	// valid records in block 1.
	big := bytes.Repeat([]byte("a"), BlockSize/2)
	w.Append(big)
	w.Append(big) // spans into block 1
	w.Append([]byte("tail-record"))
	f.Close()

	// Flip a byte in the first record's payload.
	g := reopen(t, fs)
	g.WriteAt([]byte{0xFF}, 100)

	r := NewReader(g)
	var got []string
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		got = append(got, string(rec[:min(10, len(rec))]))
	}
	if r.Dropped == 0 {
		t.Error("corruption should drop bytes")
	}
	// The tail record lives in a later block and must survive.
	found := false
	for _, s := range got {
		if s == "tail-recor" {
			found = true
		}
	}
	if !found {
		t.Errorf("tail record lost; got %v", got)
	}
}

func TestEmptyLog(t *testing.T) {
	fs, f := newLog(t)
	f.Close()
	r := NewReader(reopen(t, fs))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestZeroPaddingHandled(t *testing.T) {
	fs, f := newLog(t)
	w := NewWriter(f)
	// A record sized to leave < headerSize bytes in the block forces
	// zero-padding of the tail.
	w.Append(make([]byte, BlockSize-headerSize-headerSize-3))
	w.Append([]byte("after-pad"))
	f.Close()
	r := NewReader(reopen(t, fs))
	r.Next()
	rec, err := r.Next()
	if err != nil || string(rec) != "after-pad" {
		t.Fatalf("got %q %v", rec, err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(recs [][]byte) bool {
		fs := vfs.NewMemFS()
		fh, _ := fs.Create("q.log")
		w := NewWriter(fh)
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				return false
			}
		}
		fh2, _ := fs.Open("q.log")
		r := NewReader(fh2)
		for _, want := range recs {
			got, err := r.Next()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err := r.Next()
		return err == io.EOF && r.Dropped == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend1K(b *testing.B) {
	fs := vfs.NewMemFS()
	f, _ := fs.Create("bench.log")
	w := NewWriter(f)
	rec := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Append(rec)
	}
}
