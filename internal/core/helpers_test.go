package core

import (
	"fmt"
	"math/rand"
	"testing"

	"iamdb/internal/kv"
)

func TestKeyDistance(t *testing.T) {
	cases := []struct {
		a, b    string
		smaller string // key whose distance to a should be smaller than b's
	}{
		{"apple", "apricot", ""},
	}
	_ = cases
	// Symmetry.
	if keyDistance([]byte("abc"), []byte("abd")) != keyDistance([]byte("abd"), []byte("abc")) {
		t.Error("distance not symmetric")
	}
	// Identity.
	if keyDistance([]byte("same"), []byte("same")) != 0 {
		t.Error("distance to self nonzero")
	}
	// Monotone: within a gap, moving the probe right shrinks distance
	// to the right bound and grows distance to the left bound.
	left, right := []byte("key100"), []byte("key900")
	var prevToLeft, prevToRight uint64
	for i := 200; i <= 800; i += 100 {
		probe := []byte(fmt.Sprintf("key%03d", i))
		dl, dr := keyDistance(left, probe), keyDistance(probe, right)
		if i > 200 {
			if dl < prevToLeft {
				t.Errorf("distance to left shrank at %d", i)
			}
			if dr > prevToRight {
				t.Errorf("distance to right grew at %d", i)
			}
		}
		prevToLeft, prevToRight = dl, dr
	}
	// Closest-assignment example from the paper (Fig. 3): key 10 is
	// closer to the child ending at 12 than the one ending at 31.
	if keyDistance([]byte("10"), []byte("12")) >= keyDistance([]byte("10"), []byte("31")) {
		t.Error("paper example: 10 should be closer to 12 than 31")
	}
}

func TestClampRange(t *testing.T) {
	bound := kv.MakeRange([]byte("c"), []byte("m"))
	// Fully inside.
	r := clampRange(kv.MakeRange([]byte("e"), []byte("g")), bound)
	if string(r.Lo) != "e" || string(r.Hi) != "g" {
		t.Fatalf("inside: %v", r)
	}
	// Overhanging both sides.
	r = clampRange(kv.MakeRange([]byte("a"), []byte("z")), bound)
	if string(r.Lo) != "c" || string(r.Hi) != "m" {
		t.Fatalf("clamped: %v", r)
	}
	// Disjoint: empty.
	r = clampRange(kv.MakeRange([]byte("x"), []byte("z")), bound)
	if !r.Empty() {
		t.Fatalf("disjoint should clamp to empty: %v", r)
	}
	// Empty inputs.
	if !clampRange(kv.Range{}, bound).Empty() || !clampRange(bound, kv.Range{}).Empty() {
		t.Fatal("empty in, empty out")
	}
}

func TestChildSpanBinarySearch(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	// Build an artificial two-level structure.
	tr.levels = append(tr.levels, nil) // n=2
	for i := 0; i < 10; i++ {
		lo := []byte(fmt.Sprintf("k%02d0", i))
		hi := []byte(fmt.Sprintf("k%02d9", i))
		tbl, num, err := tr.newTable()
		if err != nil {
			t.Fatal(err)
		}
		tr.levels[2] = append(tr.levels[2], &node{num: num, tbl: tbl, rng: kv.MakeRange(lo, hi), refs: 1})
	}
	tr.sortLevel(2)

	cases := []struct {
		lo, hi string
		want   int
	}{
		{"k000", "k009", 1}, // exactly one child
		{"k000", "k019", 2}, // two
		{"k035", "k071", 5}, // middle span (k03..k07)
		{"a", "z", 10},      // all
		{"k095", "k100", 1}, // last only
		{"zz", "zzz", 0},    // past the end
		{"a", "b", 0},       // before the start
		{"k00a", "k00z", 0}, // gap between children
	}
	for _, c := range cases {
		got := tr.childCount(1, kv.MakeRange([]byte(c.lo), []byte(c.hi)))
		if got != c.want {
			t.Errorf("childCount(%s,%s) = %d want %d", c.lo, c.hi, got, c.want)
		}
		if n := len(tr.children(1, kv.MakeRange([]byte(c.lo), []byte(c.hi)))); n != c.want {
			t.Errorf("children(%s,%s) len %d want %d", c.lo, c.hi, n, c.want)
		}
	}
}

func TestDeepVerifyCleanTree(t *testing.T) {
	for _, p := range []Policy{LSA, IAM} {
		budget := int64(0)
		if p == IAM {
			budget = 24 * 1024
		}
		tr, _ := testTree(t, p, budget)
		loadRandom(t, tr, 5000, 77)
		rep, err := tr.DeepVerify()
		if err != nil {
			t.Fatalf("%v: %v (%v)", p, err, rep)
		}
		if rep.Records == 0 || rep.Nodes == 0 {
			t.Fatalf("%v: empty report %v", p, rep)
		}
		if rep.String() == "" {
			t.Fatal("report string")
		}
		tr.Close()
	}
}

func TestDeepVerifyCatchesRangeViolation(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	loadRandom(t, tr, 1000, 3)
	// Corrupt an assigned range in memory: shrink a node's range so
	// its data falls outside.
	tr.mu.Lock()
	var victim *node
	for i := 1; i <= tr.n() && victim == nil; i++ {
		for _, nd := range tr.levels[i] {
			if nd.tbl.Entries() > 10 {
				victim = nd
				break
			}
		}
	}
	if victim == nil {
		tr.mu.Unlock()
		t.Skip("no node with enough data")
	}
	victim.rng = kv.MakeRange(victim.rng.Lo, append([]byte(nil), victim.rng.Lo...))
	tr.mu.Unlock()
	if _, err := tr.DeepVerify(); err == nil {
		t.Fatal("verify missed the corrupted range")
	}
}

func TestMixedLevelTuningMatchesBudget(t *testing.T) {
	tr, _ := testTree(t, IAM, 20*1024)
	defer tr.Close()
	loadRandom(t, tr, 5000, 13)
	m, k := tr.MixedLevel()
	// Eq. (2): levels above m must fit in the budget.
	sizes := tr.LevelDataSizes()
	var sum int64
	for j := 1; j < m && j < len(sizes); j++ {
		sum += sizes[j]
	}
	budget := tr.cfg.MemBudget
	if sum > budget {
		t.Fatalf("levels above m=%d hold %d > budget %d", m, sum, budget)
	}
	// m maximal: adding level m would overflow (unless m > n).
	if m < len(sizes) && sum+sizes[m] <= budget && k == tr.cfg.K {
		t.Fatalf("m=%d not maximal: next level fits (%d+%d <= %d)",
			m, sum, sizes[m], budget)
	}
}

func TestCombineOnePicksCandidateWithSiblings(t *testing.T) {
	tr, _ := testTree(t, LSA, 0)
	defer tr.Close()
	rng := rand.New(rand.NewSource(55))
	l := newLoader(t, tr)
	for i := 0; i < 12000; i++ {
		l.put(fmt.Sprintf("u%06d", rng.Intn(20000)), "value-value")
	}
	l.flush()
	if tr.Stats().Combines == 0 {
		t.Skip("load did not trigger combines at this scale")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
