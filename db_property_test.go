package iamdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"iamdb/internal/vfs"
)

// TestModelCheckAgainstOracle drives each engine with a long random
// operation sequence — puts, deletes, batches, gets, scans, snapshots
// and full reopens — and checks every observable result against an
// in-memory oracle.  This is the repository's strongest end-to-end
// correctness test: any lost write, resurrected delete, mis-ordered
// scan or snapshot leak fails it.
func TestModelCheckAgainstOracle(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			modelCheck(t, e, 12000, 64+int64(e))
		})
	}
}

type oracleSnap struct {
	snap *Snapshot
	view map[string]string
}

func modelCheck(t *testing.T, e EngineKind, steps int, seed int64) {
	t.Helper()
	fs := vfs.NewMemFS()
	db, err := Open("db", smallOpts(e, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { db.Close() }()

	rng := rand.New(rand.NewSource(seed))
	oracle := make(map[string]string)
	var snaps []oracleSnap

	key := func() string { return fmt.Sprintf("key%05d", rng.Intn(3000)) }
	val := func() string { return fmt.Sprintf("v%d", rng.Int63()) }

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 40: // put
			k, v := key(), val()
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			oracle[k] = v

		case op < 50: // delete
			k := key()
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatalf("step %d del: %v", step, err)
			}
			delete(oracle, k)

		case op < 55: // batch
			var b Batch
			n := 1 + rng.Intn(20)
			type change struct {
				k, v string
				del  bool
			}
			var changes []change
			for i := 0; i < n; i++ {
				k := key()
				if rng.Intn(4) == 0 {
					b.Delete([]byte(k))
					changes = append(changes, change{k: k, del: true})
				} else {
					v := val()
					b.Put([]byte(k), []byte(v))
					changes = append(changes, change{k: k, v: v})
				}
			}
			if err := db.Write(&b); err != nil {
				t.Fatalf("step %d batch: %v", step, err)
			}
			for _, c := range changes {
				if c.del {
					delete(oracle, c.k)
				} else {
					oracle[c.k] = c.v
				}
			}

		case op < 80: // get
			k := key()
			v, err := db.Get([]byte(k))
			want, ok := oracle[k]
			switch {
			case err == ErrNotFound:
				if ok {
					t.Fatalf("step %d: %s lost (want %q)", step, k, want)
				}
			case err != nil:
				t.Fatalf("step %d get: %v", step, err)
			case !ok:
				t.Fatalf("step %d: %s resurrected as %q", step, k, v)
			case string(v) != want:
				t.Fatalf("step %d: %s = %q want %q", step, k, v, want)
			}

		case op < 84: // bounded forward scan
			start := key()
			limit := 1 + rng.Intn(30)
			it := db.NewIterator()
			var got []string
			for it.Seek([]byte(start)); it.Valid() && len(got) < limit; it.Next() {
				got = append(got, string(it.Key())+"="+string(it.Value()))
			}
			if err := it.Err(); err != nil {
				t.Fatalf("step %d scan: %v", step, err)
			}
			it.Close()
			var want []string
			keys := make([]string, 0, len(oracle))
			for k := range oracle {
				if k >= start {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				if len(want) == limit {
					break
				}
				want = append(want, k+"="+oracle[k])
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("step %d scan from %s mismatch:\n got %v\nwant %v",
					step, start, got, want)
			}

		case op < 88: // bounded reverse scan
			start := key()
			limit := 1 + rng.Intn(30)
			it := db.NewIterator()
			var got []string
			for it.SeekForPrev([]byte(start)); it.Valid() && len(got) < limit; it.Prev() {
				got = append(got, string(it.Key())+"="+string(it.Value()))
			}
			if err := it.Err(); err != nil {
				t.Fatalf("step %d rscan: %v", step, err)
			}
			it.Close()
			var want []string
			keys := make([]string, 0, len(oracle))
			for k := range oracle {
				if k <= start {
					keys = append(keys, k)
				}
			}
			sort.Sort(sort.Reverse(sort.StringSlice(keys)))
			for _, k := range keys {
				if len(want) == limit {
					break
				}
				want = append(want, k+"="+oracle[k])
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("step %d rscan from %s mismatch:\n got %v\nwant %v",
					step, start, got, want)
			}

		case op < 91: // take snapshot
			if len(snaps) < 3 {
				view := make(map[string]string, len(oracle))
				for k, v := range oracle {
					view[k] = v
				}
				snaps = append(snaps, oracleSnap{db.GetSnapshot(), view})
			}

		case op < 94: // verify + release a snapshot
			if len(snaps) > 0 {
				i := rng.Intn(len(snaps))
				s := snaps[i]
				for probe := 0; probe < 5; probe++ {
					k := key()
					v, err := s.snap.Get([]byte(k))
					want, ok := s.view[k]
					if (err == ErrNotFound) == ok {
						t.Fatalf("step %d snap get %s: err=%v want-exists=%v",
							step, k, err, ok)
					}
					if err == nil && string(v) != want {
						t.Fatalf("step %d snap %s = %q want %q", step, k, v, want)
					}
				}
				s.snap.Release()
				snaps = append(snaps[:i], snaps[i+1:]...)
			}

		default: // reopen (crash-free restart)
			for _, s := range snaps {
				s.snap.Release()
			}
			snaps = nil
			if err := db.Close(); err != nil {
				t.Fatalf("step %d close: %v", step, err)
			}
			db, err = Open("db", smallOpts(e, fs))
			if err != nil {
				t.Fatalf("step %d reopen: %v", step, err)
			}
		}
	}

	// Final exhaustive check.
	for k, want := range oracle {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("final: %s = %q (%v) want %q", k, v, err, want)
		}
	}
	it := db.NewIterator()
	defer it.Close()
	count := 0
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("final scan out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != len(oracle) {
		t.Fatalf("final scan saw %d keys, oracle has %d", count, len(oracle))
	}
}
