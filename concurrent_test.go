package iamdb

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"iamdb/internal/vfs"
)

// The hammer drives the whole commit pipeline at once — concurrent
// batch writers, snapshot readers, point-get readers and iterator
// walkers — and checks the invariants the lock-free design promises:
// the published sequence never moves backwards, multi-op batches are
// visible all-or-nothing, iterators stay sorted, and the group-committed
// WAL replays to the identical state on reopen.

const (
	hammerWriters = 4
	hammerIters   = 120
	hammerBatchK  = 4 // ops per batch; a torn batch shows mixed values
)

func hammerKey(w, slot int) []byte {
	return []byte(fmt.Sprintf("w%02d-slot%02d", w, slot))
}

func TestConcurrentCommitHammer(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			fs := vfs.NewMemFS()
			db, err := Open("db", smallOpts(e, fs))
			if err != nil {
				t.Fatal(err)
			}

			var (
				writeWG, readWG sync.WaitGroup
				done            atomic.Bool
				fail            = make(chan string, 16)
			)
			report := func(format string, args ...any) {
				select {
				case fail <- fmt.Sprintf(format, args...):
				default:
				}
			}

			// Writers: each commits batches that set all of its slots to
			// one per-iteration value, checking seq monotonicity after
			// every acknowledged commit.
			for w := 0; w < hammerWriters; w++ {
				writeWG.Add(1)
				go func(w int) {
					defer writeWG.Done()
					var lastSeq uint64
					b := new(Batch)
					for i := 0; i < hammerIters; i++ {
						b.Reset()
						val := []byte(fmt.Sprintf("w%02d-i%04d", w, i))
						for slot := 0; slot < hammerBatchK; slot++ {
							b.Put(hammerKey(w, slot), val)
						}
						if err := db.Write(b); err != nil {
							report("writer %d: %v", w, err)
							return
						}
						if s := db.seqA.Load(); s < lastSeq {
							report("writer %d: published seq went backwards: %d < %d", w, s, lastSeq)
							return
						} else {
							lastSeq = s
						}
					}
				}(w)
			}

			// Snapshot readers: a consistent view must never show a torn
			// batch — every present slot of a writer carries one value.
			for r := 0; r < 2; r++ {
				readWG.Add(1)
				go func(r int) {
					defer readWG.Done()
					buf := make([]byte, 0, 64)
					for n := 0; !done.Load(); n++ {
						w := (r + n) % hammerWriters
						snap := db.GetSnapshot()
						var want []byte
						for slot := 0; slot < hammerBatchK; slot++ {
							v, err := snap.Get(hammerKey(w, slot))
							if err == ErrNotFound {
								if want != nil {
									report("torn batch: writer %d slot %d missing after seeing %q", w, slot, want)
								}
								continue
							}
							if err != nil {
								report("snapshot get: %v", err)
								break
							}
							if want == nil {
								want = v
							} else if !bytes.Equal(v, want) {
								report("torn batch: writer %d shows %q and %q in one snapshot", w, want, v)
							}
						}
						snap.Release()
						// Exercise the pooled lock-free point-get too.
						if v, err := db.GetInto(hammerKey(w, 0), buf[:0]); err == nil {
							buf = v
						} else if err != ErrNotFound {
							report("GetInto: %v", err)
						}
					}
				}(r)
			}

			// Iterator walkers: full scans must stay strictly sorted while
			// the memtable is mutated underneath them.
			readWG.Add(1)
			go func() {
				defer readWG.Done()
				prev := make([]byte, 0, 64)
				for !done.Load() {
					it := db.NewIterator()
					prev = prev[:0]
					for it.First(); it.Valid(); it.Next() {
						if len(prev) > 0 && bytes.Compare(prev, it.Key()) >= 0 {
							report("iterator out of order: %q then %q", prev, it.Key())
							break
						}
						prev = append(prev[:0], it.Key()...)
					}
					if err := it.Close(); err != nil {
						report("iterator: %v", err)
					}
				}
			}()

			writeWG.Wait()
			done.Store(true)
			readWG.Wait()
			select {
			case msg := <-fail:
				t.Fatal(msg)
			default:
			}

			// Accounting: every batch went through exactly one group.
			m := db.Metrics()
			if want := int64(hammerWriters * hammerIters); m.CommitBatches != want {
				t.Fatalf("CommitBatches = %d, want %d", m.CommitBatches, want)
			}
			if m.CommitGroups <= 0 || m.CommitGroups > m.CommitBatches {
				t.Fatalf("CommitGroups = %d out of range (batches %d)", m.CommitGroups, m.CommitBatches)
			}

			// The final state is deterministic (writers are sequential), so
			// reopening must replay the group-committed WAL to it exactly.
			want := make(map[string]string, hammerWriters*hammerBatchK)
			final := fmt.Sprintf("i%04d", hammerIters-1)
			for w := 0; w < hammerWriters; w++ {
				for slot := 0; slot < hammerBatchK; slot++ {
					want[string(hammerKey(w, slot))] = fmt.Sprintf("w%02d-%s", w, final)
				}
			}
			checkState := func(stage string) {
				for k, v := range want {
					got, err := db.Get([]byte(k))
					if err != nil || string(got) != v {
						t.Fatalf("%s: %s = %q, %v; want %q", stage, k, got, err, v)
					}
				}
			}
			checkState("before reopen")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = Open("db", smallOpts(e, fs))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			checkState("after reopen")
		})
	}
}

// TestConcurrentWriteClose races writers against Close: every Write must
// return either nil or ErrClosed, never hang or corrupt state.
func TestConcurrentWriteClose(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open("db", smallOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				err := db.Put(hammerKey(w, i%hammerBatchK), []byte("v"))
				if err != nil {
					if err != ErrClosed {
						t.Errorf("writer %d: %v", w, err)
					}
					return
				}
			}
		}(w)
	}
	close(start)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The store must reopen cleanly after the race.
	db, err = Open("db", smallOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkConcurrentCommit measures commit throughput under write
// contention.  The group-commit pipeline should make N writers cheaper
// than N sequential commits: one WAL append, one sync and one throttle
// check amortize over the whole group.  Run via
//
//	go test -bench ConcurrentCommit -benchtime 1x
//
// for a smoke pass, or with -benchtime 2s for real numbers.
func BenchmarkConcurrentCommit(b *testing.B) {
	val := bytes.Repeat([]byte("v"), 100)
	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			db, err := Open("db", &Options{Engine: IAM, FS: vfs.NewMemFS()})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			var id atomic.Int64
			b.SetParallelism(writers)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := id.Add(1)
				key := make([]byte, 0, 32)
				for i := 0; pb.Next(); i++ {
					key = fmt.Appendf(key[:0], "w%03d-%09d", w, i)
					if err := db.Put(key, val); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if m := db.Metrics(); m.CommitGroups > 0 {
				b.ReportMetric(m.MeanCommitGroupSize(), "batches/group")
			}
		})
	}
}
