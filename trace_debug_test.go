package iamdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iamdb/internal/metrics"
	"iamdb/internal/vfs"
)

// goldenRun executes one fully deterministic workload — virtual disk
// clock, inline background work, tracing on — and returns every
// observable export: the metrics report, the timeline JSON, and both
// trace wire forms.
func goldenRun(t *testing.T, e EngineKind) (report, timeline, jsonl, chrome string) {
	t.Helper()
	clock := new(vfs.DiskClock)
	disk := vfs.NewDisk(vfs.NewMemFS(), vfs.SSDProfile(), clock)
	io := new(vfs.IOStats)
	opts := smallOpts(e, vfs.NewStatsFS(disk, io))
	opts.Clock = clock
	opts.Trace = NewTraceRecorder(8192, clock)
	opts.InlineBackground = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sampler := db.NewSampler(200*time.Microsecond, 64)

	val := make([]byte, 100)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < 400; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i*7919%1000))
		if err := db.Put(key, val); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := db.Get(key); err != nil {
				t.Fatal(err)
			}
		}
		if i%17 == 0 {
			if err := db.Delete(key); err != nil {
				t.Fatal(err)
			}
		}
		sampler.Poll()
	}

	tl, err := json.Marshal(db.Timeline())
	if err != nil {
		t.Fatal(err)
	}
	var jb, cb strings.Builder
	if err := db.Trace().WriteJSONLines(&jb); err != nil {
		t.Fatal(err)
	}
	if err := db.Trace().WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	return db.Metrics().String(), string(tl), jb.String(), cb.String()
}

// TestGoldenDeterminism is the reproducibility gate: two identical
// virtual-clock runs with inline background work must export
// byte-identical metrics reports, timelines and traces.  Any ambient
// time, map-order or scheduling leak into the observability layer
// breaks this test.
func TestGoldenDeterminism(t *testing.T) {
	for _, e := range []EngineKind{IAM, LSA, LevelDB, RocksDB} {
		t.Run(e.String(), func(t *testing.T) {
			rep1, tl1, jl1, ch1 := goldenRun(t, e)
			rep2, tl2, jl2, ch2 := goldenRun(t, e)
			if rep1 != rep2 {
				t.Errorf("metrics reports differ between identical runs:\n--- run1\n%s\n--- run2\n%s", rep1, rep2)
			}
			if tl1 != tl2 {
				t.Errorf("timelines differ between identical runs")
			}
			if jl1 != jl2 {
				t.Errorf("JSONL trace exports differ between identical runs")
			}
			if ch1 != ch2 {
				t.Errorf("chrome trace exports differ between identical runs")
			}
			// The exports must also be non-trivial, or the test proves
			// nothing.
			if !strings.Contains(jl1, "commit.group") {
				t.Error("trace export has no commit.group spans")
			}
			var pts []TimelinePoint
			if err := json.Unmarshal([]byte(tl1), &pts); err != nil || len(pts) == 0 {
				t.Errorf("timeline export empty or invalid: %v", err)
			}
		})
	}
}

// TestTraceSpansPresent is the instrumentation smoke test: after a
// workload that flushes and compacts, the recorder holds the commit
// pipeline spans, the flush cascade, and engine jobs carrying file
// lineage and level tags.
func TestTraceSpansPresent(t *testing.T) {
	engineSpans := map[EngineKind][]string{
		IAM:     {"core.flush", "core.flushnode"},
		LevelDB: {"lsm.flush"},
	}
	for e, wantEngine := range engineSpans {
		t.Run(e.String(), func(t *testing.T) {
			opts := smallOpts(e, vfs.NewMemFS())
			opts.Clock = new(metrics.ManualClock)
			opts.Trace = NewTraceRecorder(8192, opts.Clock)
			opts.InlineBackground = true
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 200)
			for i := 0; i < 400; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
					t.Fatal(err)
				}
			}
			byName := map[string][]TraceSpan{}
			for _, sp := range db.Trace().Snapshot() {
				byName[sp.Name] = append(byName[sp.Name], sp)
			}
			for _, want := range append([]string{"commit.group", "commit.wal", "commit.apply", "wal.rotate"}, wantEngine...) {
				if len(byName[want]) == 0 {
					keys := make([]string, 0, len(byName))
					for k := range byName {
						keys = append(keys, k)
					}
					t.Fatalf("no %q spans recorded; have %v", want, keys)
				}
			}
			// Commit children parent correctly.
			groups := map[uint64]bool{}
			for _, sp := range byName["commit.group"] {
				groups[sp.ID] = true
			}
			for _, name := range []string{"commit.wal", "commit.apply"} {
				for _, sp := range byName[name] {
					if !groups[sp.Parent] {
						t.Errorf("%s span %d parented to %d, not a commit.group", name, sp.ID, sp.Parent)
					}
				}
			}
			// Engine jobs produced output files (lineage recorded on the
			// per-job spans: appends/merges/splits for core, flushes and
			// compactions for lsm).
			var sawOut bool
			for _, name := range []string{
				"core.append", "core.merge", "core.split", "core.move",
				"lsm.flush", "lsm.compact", "lsm.move",
			} {
				for _, sp := range byName[name] {
					if len(sp.Out) > 0 {
						sawOut = true
					}
				}
			}
			if !sawOut {
				t.Errorf("no engine span carries output-file lineage")
			}
		})
	}
}

// TestDebugHandlers exercises every introspection endpoint through the
// mountable handler, without a real listener.
func TestDebugHandlers(t *testing.T) {
	opts := smallOpts(IAM, vfs.NewMemFS())
	clock := new(metrics.ManualClock)
	opts.Clock = clock
	opts.Trace = NewTraceRecorder(0, clock)
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.NewSampler(time.Millisecond, 0)
	val := make([]byte, 200)
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
			t.Fatal(err)
		}
		clock.Advance(50 * time.Microsecond)
	}

	h := db.DebugHandler()
	get := func(path string) (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d body %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "Level |") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	code, body := get("/metrics?format=json")
	if code != 200 {
		t.Fatalf("/metrics?format=json: code %d", code)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Errorf("/metrics?format=json not valid JSON: %v", err)
	}
	code, body = get("/timeline")
	if code != 200 {
		t.Fatalf("/timeline: code %d", code)
	}
	var pts []TimelinePoint
	if err := json.Unmarshal([]byte(body), &pts); err != nil {
		t.Errorf("/timeline not valid JSON: %v", err)
	}
	if len(pts) == 0 {
		t.Error("/timeline empty after 15ms of clocked workload")
	}
	if code, body := get("/traces"); code != 200 || !strings.Contains(body, `"name":"commit.group"`) {
		t.Errorf("/traces: code %d, missing commit.group in %q", code, body[:min(len(body), 200)])
	}
	code, body = get("/traces?format=chrome")
	if code != 200 {
		t.Fatalf("/traces?format=chrome: code %d", code)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil || len(events) == 0 {
		t.Errorf("chrome trace invalid (%v) or empty", err)
	}
	if code, body := get("/levels"); code != 200 || !strings.Contains(body, "memtable") {
		t.Errorf("/levels: code %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	if code, _ := get("/nosuch"); code != 404 {
		t.Errorf("/nosuch: code %d, want 404", code)
	}
}

// TestDebugTracesDisabled pins the no-recorder contract: /traces is a
// 404 with a hint, everything else still serves.
func TestDebugTracesDisabled(t *testing.T) {
	db := openSmall(t, IAM)
	defer db.Close()
	rec := httptest.NewRecorder()
	db.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "Options.Trace") {
		t.Errorf("/traces without recorder: code %d body %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	db.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/timeline", nil))
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("/timeline without sampler: code %d body %q", rec.Code, rec.Body.String())
	}
}

// TestDebugServerLive starts the real listener via Options.DebugAddr on
// an ephemeral port, fetches over HTTP, and checks Close tears the
// server down.
func TestDebugServerLive(t *testing.T) {
	opts := smallOpts(IAM, vfs.NewMemFS())
	opts.Trace = NewTraceRecorder(0, nil)
	opts.DebugAddr = "127.0.0.1:0"
	opts.DebugSampleWindow = 10 * time.Millisecond
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	addr := db.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr empty with DebugAddr option set")
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Level |") {
		t.Errorf("live /metrics: code %d body %q", resp.StatusCode, body)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("debug server still serving after Close")
	}
	// A second DB must be able to rebind an ephemeral port immediately.
	db2, err := Open("db2", &Options{FS: vfs.NewMemFS(), DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if db2.DebugAddr() == "" {
		t.Error("second debug server did not start")
	}
	db2.Close()
}

// TestObservabilityHotPathZeroAlloc is the disabled-path gate of the
// acceptance criteria: with tracing off, attaching a (detached, never
// crossing a boundary) sampler must leave Put/Get allocations exactly
// where they were without one.
func TestObservabilityHotPathZeroAlloc(t *testing.T) {
	measure := func(withSampler bool) (get, put float64) {
		opts := smallOpts(IAM, vfs.NewMemFS())
		opts.MemtableSize = 64 << 20 // no flushes during measurement
		opts.Clock = new(metrics.ManualClock)
		db, err := Open("db", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if withSampler {
			db.NewSampler(time.Hour, 0)
		}
		if db.Trace() != nil {
			t.Fatal("trace recorder unexpectedly attached")
		}
		key, val := []byte("key-000042"), make([]byte, 64)
		if err := db.Put(key, val); err != nil {
			t.Fatal(err)
		}
		get = testing.AllocsPerRun(500, func() {
			if _, err := db.Get(key); err != nil {
				t.Fatal(err)
			}
		})
		put = testing.AllocsPerRun(500, func() {
			if err := db.Put(key, val); err != nil {
				t.Fatal(err)
			}
			db.Timeline() // pulls the idle sampler: atomic load + Poll fast path
		})
		return get, put
	}
	bareGet, barePut := measure(false)
	samGet, samPut := measure(true)
	if bareGet != samGet {
		t.Errorf("Get allocs differ: bare %.2f, detached sampler %.2f", bareGet, samGet)
	}
	if barePut != samPut {
		t.Errorf("Put allocs differ: bare %.2f, detached sampler %.2f", barePut, samPut)
	}
}

// TestConcurrentTraceHammer runs writers, readers and trace exporters
// against one recorder while flushes and compactions are in flight —
// the data-race gate for the whole observability layer (check.sh runs
// it under -race).
func TestConcurrentTraceHammer(t *testing.T) {
	opts := smallOpts(IAM, vfs.NewMemFS())
	opts.Trace = NewTraceRecorder(1024, nil)
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.NewSampler(time.Microsecond, 0)

	const writers, readers, ops = 4, 2, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := make([]byte, 150)
			for i := 0; i < ops; i++ {
				key := []byte(fmt.Sprintf("w%d-key-%06d", w, i))
				if err := db.Put(key, val); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := []byte(fmt.Sprintf("w%d-key-%06d", r%writers, i))
				if _, err := db.Get(key); err != nil && err != ErrNotFound {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(r)
	}
	// Exporters and pollers race the recorder ring and sampler while
	// the workload churns; a separate join so the exporter can be told
	// to stop after the workload drains.
	exporterDone := make(chan struct{})
	go func() {
		defer close(exporterDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = db.Trace().WriteJSONLines(io.Discard)
			_ = db.Trace().WriteChromeTrace(io.Discard)
			db.Timeline()
			db.Trace().Len()
			db.Trace().Dropped()
		}
	}()
	wg.Wait()
	close(stop)
	<-exporterDone
	if db.Trace().Len() == 0 {
		t.Error("hammer recorded no spans")
	}
}
