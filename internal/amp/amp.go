// Package amp implements the paper's closed-form amplification model
// (Sec. 5.3): write amplification of LSA and IAM (Eq. 3–5), the
// mixed-level memory condition (Eq. 1–2), and the read-amplification
// comparisons of Table 1.  The benchmark harness checks measured
// amplifications against these formulas.
package amp

// Params capture the tree configuration the formulas depend on.
type Params struct {
	// N is the number of on-disk levels n.
	N int
	// T is the fanout t (default 10).
	T int
	// M is the mixed level m (1 <= m <= n+1; m = n+1 means all levels
	// append — pure LSA).
	M int
	// K is the sequence cap of the mixed level.
	K int
}

// SplitAmplification is Eq. (5): Wsp = 2 * sum_{j=1}^{n-1} (2/t)^j,
// the write amplification induced by splits.
func SplitAmplification(p Params) float64 {
	var sum float64
	pow := 1.0
	for j := 1; j <= p.N-1; j++ {
		pow *= 2.0 / float64(p.T)
		sum += pow
	}
	return 2 * sum
}

// LSAWrite is Eq. (3): Wlsa = Wsp + n.
func LSAWrite(p Params) float64 {
	return SplitAmplification(p) + float64(p.N)
}

// IAMWrite is Eq. (4): Wiam = Wsp + n + t/2k + sum_{j=m+1}^{n} t/2,
// degenerating to LSA when m > n.
func IAMWrite(p Params) float64 {
	w := SplitAmplification(p) + float64(p.N)
	if p.M > p.N {
		return w
	}
	w += float64(p.T) / float64(2*p.K)
	for j := p.M + 1; j <= p.N; j++ {
		_ = j
		w += float64(p.T) / 2
	}
	return w
}

// LSMWrite is the paper's Sec. 2.1 estimate for leveled LSMs:
// about 11x per level transition, i.e. (t+1) * (n-1).
func LSMWrite(p Params) float64 {
	return float64(p.T+1) * float64(p.N-1)
}

// AppendedSeqBytes is Eq. (1): S_{m,k} = D_m * (k-1) / t, the expected
// bytes of appended sequences in the mixed level, given level-m data
// size dm.
func AppendedSeqBytes(dm int64, p Params) int64 {
	return dm * int64(p.K-1) / int64(p.T)
}

// FitsBudget is Eq. (2): sum_{j<m} D_j + S_{m,k} <= M.
func FitsBudget(levelSizes []int64, budget int64, p Params) bool {
	var sum int64
	for j := 1; j < p.M && j < len(levelSizes); j++ {
		sum += levelSizes[j]
	}
	if p.M < len(levelSizes) {
		sum += AppendedSeqBytes(levelSizes[p.M], p)
	}
	return sum <= budget
}

// TuneMK picks the largest m, then the largest k <= maxK, satisfying
// Eq. (2) — the preference Sec. 5.1.3 states.  levelSizes[0] is
// ignored (L0 is the memtable).
func TuneMK(levelSizes []int64, budget int64, maxK, t int) (m, k int) {
	n := len(levelSizes) - 1
	var sum int64
	m = 1
	for j := 1; j <= n; j++ {
		if sum+levelSizes[j] <= budget {
			sum += levelSizes[j]
			m = j + 1
		} else {
			break
		}
	}
	if m > n {
		return m, maxK
	}
	for k = maxK; k >= 2; k-- {
		if sum+levelSizes[m]*int64(k-1)/int64(t) <= budget {
			return m, k
		}
	}
	return m, 1
}

// ScanReadAmp reports the expected disk seeks of a scan per Table 1 /
// Sec. 5.3.2, for levels m..n (the uncached ones).
//   - LSM and IAM: one seek per uncached level: n - m + 1.
//   - LSA: 0.5*t sequences per node: 0.5 * t * (n - m + 1).
type ScanReadAmp struct {
	LSM, IAM, LSA float64
}

// ScanAmps evaluates the read-amplification comparison.
func ScanAmps(p Params) ScanReadAmp {
	uncached := float64(p.N - p.M + 1)
	if uncached < 0 {
		uncached = 0
	}
	return ScanReadAmp{
		LSM: uncached,
		IAM: uncached,
		LSA: 0.5 * float64(p.T) * uncached,
	}
}
