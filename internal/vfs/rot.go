package vfs

import (
	"fmt"
	"sync"
)

// RotMode selects how RotFS damages a byte.
type RotMode int

const (
	// RotFlip inverts every bit of the target byte (always changes it).
	RotFlip RotMode = iota
	// RotZero clears the target byte, modelling a decayed cell reading
	// back empty; zeroing an already-zero byte is provably harmless.
	RotZero
)

func (m RotMode) String() string {
	switch m {
	case RotFlip:
		return "flip"
	case RotZero:
		return "zero"
	default:
		return "unknown"
	}
}

// RotFS wraps an FS and injects latent media faults — bit rot — into
// data that has been made *durable*.  It is the decay-axis sibling of
// CrashFS: where CrashFS destroys in-flight writes at a chosen op
// index, RotFS corrupts one byte of an already-synced range at a chosen
// durable-extent index.
//
// Every Write/WriteAt is tracked as a pending extent on its handle;
// when the handle syncs, each pending extent is assigned the next
// durable-extent index.  RotAt(n) arms the fault: when extent n becomes
// durable, its middle byte is flipped or zeroed (per SetMode) in the
// underlying file — after the data landed, so the application believes
// the write succeeded and the damage is only discovered on a later
// read.  ExtentCount calibrates a sweep, mirroring CrashFS.OpCount.
//
// CorruptByte (package level) is the offline variant: damage one byte
// of a closed, synced store directly, for the corruption-point matrix.
type RotFS struct {
	inner FS

	mu      sync.Mutex
	mode    RotMode
	extents int64 // durable extents registered so far
	rotAt   int64 // extent index to corrupt; -1 = disarmed

	injected bool
	injPath  string
	injOff   int64
	injOld   byte
	injNew   byte
}

// NewRotFS wraps fs with rot injection disarmed.
func NewRotFS(fs FS) *RotFS {
	return &RotFS{inner: fs, rotAt: -1}
}

// SetMode selects flip or zero damage for subsequent injections.
func (fs *RotFS) SetMode(m RotMode) {
	fs.mu.Lock()
	fs.mode = m
	fs.mu.Unlock()
}

// RotAt arms the fault to fire when durable extent n is registered
// (indices count from 0 over the lifetime of the RotFS).  n < 0
// disarms.
func (fs *RotFS) RotAt(n int64) {
	fs.mu.Lock()
	fs.rotAt = n
	fs.mu.Unlock()
}

// ExtentCount reports how many durable extents have been registered,
// for calibrating a sweep before re-running with RotAt.
func (fs *RotFS) ExtentCount() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.extents
}

// Injection reports what the armed fault did: the damaged file, the
// byte offset, and the before/after values.  ok is false until the
// fault has fired.
func (fs *RotFS) Injection() (path string, off int64, old, new byte, ok bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injPath, fs.injOff, fs.injOld, fs.injNew, fs.injected
}

// registerExtent assigns the next durable-extent index to [off,off+n)
// of name and, if the armed index landed inside this sync, damages the
// extent's middle byte in the inner file.
func (fs *RotFS) registerExtent(name string, f File, off, n int64) error {
	fs.mu.Lock()
	idx := fs.extents
	fs.extents++
	fire := idx == fs.rotAt && !fs.injected
	mode := fs.mode
	fs.mu.Unlock()
	if !fire || n <= 0 {
		return nil
	}
	target := off + n/2
	var b [1]byte
	if _, err := f.ReadAt(b[:], target); err != nil {
		return fmt.Errorf("vfs: rot readback %s@%d: %w", name, target, err)
	}
	old := b[0]
	if mode == RotZero {
		b[0] = 0
	} else {
		b[0] = old ^ 0xff
	}
	if _, err := f.WriteAt(b[:], target); err != nil {
		return fmt.Errorf("vfs: rot inject %s@%d: %w", name, target, err)
	}
	fs.mu.Lock()
	fs.injected = true
	fs.injPath = name
	fs.injOff = target
	fs.injOld = old
	fs.injNew = b[0]
	fs.mu.Unlock()
	return nil
}

// Create implements FS.
func (fs *RotFS) Create(name string) (File, error) {
	name = clean(name)
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &rotHandle{fs: fs, name: name, inner: f, pos: -1}, nil
}

// Open implements FS.
func (fs *RotFS) Open(name string) (File, error) {
	name = clean(name)
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &rotHandle{fs: fs, name: name, inner: f, pos: -1}, nil
}

// Remove implements FS.
func (fs *RotFS) Remove(name string) error { return fs.inner.Remove(name) }

// Rename implements FS.
func (fs *RotFS) Rename(o, n string) error { return fs.inner.Rename(o, n) }

// List implements FS.
func (fs *RotFS) List(dir string) ([]string, error) { return fs.inner.List(dir) }

// MkdirAll implements FS.
func (fs *RotFS) MkdirAll(dir string) error { return fs.inner.MkdirAll(dir) }

// Exists implements FS.
func (fs *RotFS) Exists(name string) bool { return fs.inner.Exists(name) }

type rotExtent struct{ off, n int64 }

type rotHandle struct {
	fs    *RotFS
	name  string
	inner File

	mu      sync.Mutex
	pos     int64 // sequential-write position; -1 = end of file
	pending []rotExtent
}

func (h *rotHandle) ReadAt(p []byte, off int64) (int, error) {
	return h.inner.ReadAt(p, off)
}

func (h *rotHandle) WriteAt(p []byte, off int64) (int, error) {
	n, err := h.inner.WriteAt(p, off)
	if n > 0 {
		h.mu.Lock()
		h.pending = append(h.pending, rotExtent{off: off, n: int64(n)})
		h.mu.Unlock()
	}
	return n, err
}

func (h *rotHandle) Write(p []byte) (int, error) {
	h.mu.Lock()
	if h.pos < 0 {
		size, err := h.inner.Size()
		if err != nil {
			h.mu.Unlock()
			return 0, err
		}
		h.pos = size
	}
	off := h.pos
	h.mu.Unlock()
	n, err := h.inner.Write(p)
	if n > 0 {
		h.mu.Lock()
		h.pos = off + int64(n)
		h.pending = append(h.pending, rotExtent{off: off, n: int64(n)})
		h.mu.Unlock()
	}
	return n, err
}

// Sync registers every pending extent as durable (firing an armed rot
// fault if its index landed in this batch) and then syncs the inner
// file, so the damaged byte is part of the durable image.
func (h *rotHandle) Sync() error {
	h.mu.Lock()
	pending := h.pending
	h.pending = nil
	h.mu.Unlock()
	for _, e := range pending {
		if err := h.fs.registerExtent(h.name, h.inner, e.off, e.n); err != nil {
			return err
		}
	}
	return h.inner.Sync()
}

// Close drops unsynced pending extents: data that never became durable
// cannot rot in this model.
func (h *rotHandle) Close() error {
	h.mu.Lock()
	h.pending = nil
	h.mu.Unlock()
	return h.inner.Close()
}

func (h *rotHandle) Size() (int64, error) { return h.inner.Size() }

func (h *rotHandle) Truncate(n int64) error {
	h.mu.Lock()
	kept := h.pending[:0]
	for _, e := range h.pending {
		if e.off < n {
			if e.off+e.n > n {
				e.n = n - e.off
			}
			kept = append(kept, e)
		}
	}
	h.pending = kept
	if h.pos > n {
		h.pos = n
	}
	h.mu.Unlock()
	return h.inner.Truncate(n)
}

// CorruptByte damages one byte of an existing file in place — the
// offline injection primitive behind the corruption-point matrix.  It
// returns the before/after values; changed is false when the damage was
// a no-op (zeroing an already-zero byte), i.e. provably harmless.
func CorruptByte(fs FS, name string, off int64, mode RotMode) (old, new byte, changed bool, err error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, 0, false, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return 0, 0, false, fmt.Errorf("vfs: corrupt read %s@%d: %w", name, off, err)
	}
	old = b[0]
	if mode == RotZero {
		b[0] = 0
	} else {
		b[0] = old ^ 0xff
	}
	if _, err := f.WriteAt(b[:], off); err != nil {
		return old, b[0], false, fmt.Errorf("vfs: corrupt write %s@%d: %w", name, off, err)
	}
	if err := f.Sync(); err != nil {
		return old, b[0], false, err
	}
	return old, b[0], b[0] != old, nil
}
