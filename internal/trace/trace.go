// Package trace is the storage engine's structured tracing layer: a
// fixed-size ring buffer of completed spans recording the DB's hot
// structural events — commit-group lifecycle, the flush cascade,
// per-job compaction/append/merge/split/combine with input/output file
// lineage, and write stalls.
//
// Time always arrives through an injected metrics.Clock, never the
// wall clock (the package is inside the iamlint determinism scope), so
// traces taken on the virtual-clock harness are deterministic and two
// identical runs export byte-identical files.
//
// The disabled path is strictly zero-cost: every method is nil-safe,
// and Begin/Child/End/Add* on a nil *Recorder perform no allocations
// and touch no shared state, so a DB opened without a recorder pays
// nothing on Put/Get.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"iamdb/internal/metrics"
)

// Span is one completed traced operation.  Start and End are clock
// readings (elapsed time since the recorder's clock epoch); Level,
// Bytes, Count, In and Out are optional structured arguments — Level
// is -1 when not applicable, In/Out carry input/output file numbers
// for lineage (which files a merge consumed and produced).
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Duration
	End    time.Duration
	Level  int
	Bytes  int64
	Count  int64
	In     []uint64
	Out    []uint64
}

// Recorder collects completed spans into a fixed-size ring: the most
// recent spans win, older ones are overwritten.  Spans are recorded at
// End, so spans still open when an export runs are absent (by design —
// recording at End keeps Begin lock-free).
//
// Recorder.mu is a leaf lock: End reads the clock before acquiring it
// and holds it only to copy the span into the ring, so it may be taken
// while any engine or DB lock is held without ordering hazards.
//
//iamlint:lockorder trace.Recorder.mu leaf
type Recorder struct {
	clock metrics.Clock
	ids   atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int    // ring slot the next span lands in
	total uint64 // spans ever recorded
}

// NewRecorder returns a recorder keeping the last capacity spans,
// timestamped by clock.  capacity ≤ 0 defaults to 4096; a nil clock
// defaults to metrics.NopClock (spans record with zero timestamps).
func NewRecorder(capacity int, clock metrics.Clock) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	if clock == nil {
		clock = metrics.NopClock
	}
	return &Recorder{clock: clock, ring: make([]Span, capacity)}
}

// Enabled reports whether spans are being recorded.  It is the guard
// for any argument preparation too expensive for the disabled path.
func (r *Recorder) Enabled() bool { return r != nil }

// Ctx is an in-flight span.  The zero value (from a nil recorder) is
// inert: every method is a no-op, so callers thread Ctx values through
// the hot paths unconditionally.
type Ctx struct {
	r      *Recorder
	id     uint64
	parent uint64
	name   string
	start  time.Duration
	level  int
	bytes  int64
	count  int64
	in     []uint64
	out    []uint64
}

// Begin opens a root span.  On a nil recorder it returns the inert
// zero Ctx without reading the clock or allocating.
func (r *Recorder) Begin(name string) Ctx {
	if r == nil {
		return Ctx{}
	}
	return Ctx{r: r, id: r.ids.Add(1), name: name, start: r.clock.Now(), level: -1}
}

// BeginAt opens a span under an existing span ID — for parents tracked
// across structures (e.g. the flush cascade threads the current cascade
// span through the tree).  parent 0 means root.
func (r *Recorder) BeginAt(name string, parent uint64) Ctx {
	c := r.Begin(name)
	c.parent = parent
	return c
}

// Child opens a span under c.
func (c *Ctx) Child(name string) Ctx {
	if c.r == nil {
		return Ctx{}
	}
	return c.r.BeginAt(name, c.id)
}

// ID reports the span's ID (0 when inert), for cross-structure
// parenting via BeginAt.
func (c *Ctx) ID() uint64 { return c.id }

// Recording reports whether the span will be recorded.
func (c *Ctx) Recording() bool { return c.r != nil }

// SetLevel attaches the tree level the work happened at.
func (c *Ctx) SetLevel(lvl int) {
	if c.r != nil {
		c.level = lvl
	}
}

// SetBytes attaches the payload size.
func (c *Ctx) SetBytes(n int64) {
	if c.r != nil {
		c.bytes = n
	}
}

// SetCount attaches an operation count (batches, nodes, sequences).
func (c *Ctx) SetCount(n int64) {
	if c.r != nil {
		c.count = n
	}
}

// AddIn appends one input file number to the span's lineage.  A no-op
// (and allocation-free) when disabled, so callers may loop over inputs
// unconditionally.
func (c *Ctx) AddIn(file uint64) {
	if c.r != nil {
		c.in = append(c.in, file)
	}
}

// AddOut appends one output file number to the span's lineage.
func (c *Ctx) AddOut(file uint64) {
	if c.r != nil {
		c.out = append(c.out, file)
	}
}

// End completes the span and records it.  The clock is read before the
// ring lock is taken, so Recorder.mu stays a leaf lock.
func (c *Ctx) End() {
	r := c.r
	if r == nil {
		return
	}
	end := r.clock.Now()
	r.mu.Lock()
	r.ring[r.next] = Span{
		ID: c.id, Parent: c.parent, Name: c.name,
		Start: c.start, End: end,
		Level: c.level, Bytes: c.bytes, Count: c.count,
		In: c.in, Out: c.out,
	}
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot copies the completed spans out of the ring, oldest first.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.ring)
	if r.total < uint64(n) {
		n = int(r.total)
	}
	out := make([]Span, 0, n)
	if r.total >= uint64(len(r.ring)) {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring[:r.next]...)
	}
	return out
}

// Len reports how many completed spans the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.ring)) {
		return int(r.total)
	}
	return len(r.ring)
}

// Dropped reports how many spans the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.ring)) {
		return 0
	}
	return r.total - uint64(len(r.ring))
}
