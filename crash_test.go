package iamdb_test

import (
	"os"
	"sort"
	"testing"

	"iamdb"
	"iamdb/internal/harness"
	"iamdb/internal/vfs"
)

// TestCrashMatrix is the systematic crash-point exploration: for each
// engine it calibrates the scripted workload's filesystem-operation
// landscape, then crashes at every sync boundary (downsampled to a
// budget) plus evenly-strided write indices, recovering and checking
// the oracle each time.  Torn- and bit-flip-tail variants run on a
// subset of the same points.
//
// The bounded default keeps `go test -run Crash` in seconds; set
// IAMDB_CRASH_FULL=1 for the exhaustive sweep (every operation index,
// all four engines, all three crash modes).
func TestCrashMatrix(t *testing.T) {
	full := os.Getenv("IAMDB_CRASH_FULL") != ""
	engines := []iamdb.EngineKind{iamdb.IAM, iamdb.LSA}
	if full {
		engines = append(engines, iamdb.LevelDB, iamdb.RocksDB)
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			w := harness.CrashWorkload{Engine: eng}
			cal, err := w.Calibrate()
			if err != nil {
				t.Fatalf("calibrate: %v", err)
			}
			if cal.OpCount < 200 || len(cal.SyncPoints) < 50 {
				t.Fatalf("workload too small to explore: %d ops, %d sync points",
					cal.OpCount, len(cal.SyncPoints))
			}

			var points []int64
			if full {
				for i := int64(0); i <= cal.OpCount; i++ {
					points = append(points, i)
				}
			} else {
				points = pickPoints(cal, 80, 48)
			}
			if len(points) < 100 {
				t.Fatalf("only %d distinct crash points; want >= 100", len(points))
			}
			for _, p := range points {
				if err := w.Trial(p); err != nil {
					t.Fatal(err)
				}
			}

			for _, md := range []struct {
				name string
				mode vfs.CrashMode
			}{{"Torn", vfs.CrashTorn}, {"Flip", vfs.CrashFlip}} {
				md := md
				t.Run(md.name, func(t *testing.T) {
					wm := w
					wm.Mode = md.mode
					sub := points
					if !full {
						sub = pickPoints(cal, 14, 8)
					}
					for _, p := range sub {
						if err := wm.Trial(p); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestCrashMatrixKVSep runs the crash oracle with key-value separation
// on: values above the threshold live in the value log, so crashes land
// between log appends, log syncs and WAL pointer commits, and recovery
// must honor value-durable-before-pointer — a surviving pointer whose
// value is gone would surface as a corruption read, which the oracle
// rejects for acknowledged keys.
func TestCrashMatrixKVSep(t *testing.T) {
	full := os.Getenv("IAMDB_CRASH_FULL") != ""
	engines := []iamdb.EngineKind{iamdb.IAM, iamdb.LSA}
	if full {
		engines = append(engines, iamdb.LevelDB, iamdb.RocksDB)
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			// Threshold 8 separates every scripted value (~18 bytes).
			w := harness.CrashWorkload{Engine: eng, ValueThreshold: 8}
			cal, err := w.Calibrate()
			if err != nil {
				t.Fatalf("calibrate: %v", err)
			}
			if cal.OpCount < 200 || len(cal.SyncPoints) < 50 {
				t.Fatalf("workload too small to explore: %d ops, %d sync points",
					cal.OpCount, len(cal.SyncPoints))
			}
			var points []int64
			if full {
				for i := int64(0); i <= cal.OpCount; i++ {
					points = append(points, i)
				}
			} else {
				points = pickPoints(cal, 50, 30)
			}
			for _, p := range points {
				if err := w.Trial(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, md := range []struct {
				name string
				mode vfs.CrashMode
			}{{"Torn", vfs.CrashTorn}, {"Flip", vfs.CrashFlip}} {
				md := md
				t.Run(md.name, func(t *testing.T) {
					wm := w
					wm.Mode = md.mode
					sub := points
					if !full {
						sub = pickPoints(cal, 10, 6)
					}
					for _, p := range sub {
						if err := wm.Trial(p); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestCrashMatrixShardedKVSep combines both fronts: a 4-shard store
// with one value log per shard.
func TestCrashMatrixShardedKVSep(t *testing.T) {
	w := harness.CrashWorkload{Engine: iamdb.IAM, Shards: 4, ValueThreshold: 8}
	cal, err := w.Calibrate()
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	for _, p := range pickPoints(cal, 24, 16) {
		if err := w.Trial(p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashMatrixSharded runs the same oracle against a 4-shard
// front-end: each shard has its own WAL and recovery path, and the
// crash may land in any of them (or in the SHARDS marker write).
func TestCrashMatrixSharded(t *testing.T) {
	for _, eng := range []iamdb.EngineKind{iamdb.IAM, iamdb.LSA} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			w := harness.CrashWorkload{Engine: eng, Shards: 4}
			cal, err := w.Calibrate()
			if err != nil {
				t.Fatalf("calibrate: %v", err)
			}
			if cal.OpCount < 200 || len(cal.SyncPoints) < 50 {
				t.Fatalf("workload too small to explore: %d ops, %d sync points",
					cal.OpCount, len(cal.SyncPoints))
			}
			points := pickPoints(cal, 40, 24)
			for _, p := range points {
				if err := w.Trial(p); err != nil {
					t.Fatal(err)
				}
			}
			t.Run("Torn", func(t *testing.T) {
				wm := w
				wm.Mode = vfs.CrashTorn
				for _, p := range pickPoints(cal, 10, 6) {
					if err := wm.Trial(p); err != nil {
						t.Fatal(err)
					}
				}
			})
		})
	}
}

// pickPoints selects crash points from a calibration: the sync
// boundaries downsampled to at most syncCap, plus strided mutating-op
// indices so crashes also land mid-write, between durability points.
func pickPoints(cal harness.CrashCalibration, syncCap, strided int) []int64 {
	set := make(map[int64]bool)
	sp := cal.SyncPoints
	step := 1
	if syncCap > 0 && len(sp) > syncCap {
		step = len(sp) / syncCap
	}
	for i := 0; i < len(sp); i += step {
		set[sp[i]] = true
	}
	if strided > 0 {
		st := cal.OpCount / int64(strided)
		if st == 0 {
			st = 1
		}
		for i := int64(1); i < cal.OpCount; i += st {
			set[i] = true
		}
	}
	out := make([]int64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
