// Package determclock opts into the determinism scope and measures
// time the sanctioned way: through an injected metrics.Clock instead
// of the wall clock.  Every pattern here — interface clock reads,
// manual test clocks, registry instruments, event listeners with
// clock-derived durations — must lint clean, while the same code
// written with time.Now stays rejected (see determbad).
//
//iamlint:deterministic
package determclock

import (
	"time"

	"iamdb/internal/metrics"
)

// timed measures a step against whatever clock the caller injected;
// the harness passes the virtual disk clock, tests a ManualClock.
func timed(c metrics.Clock, step func()) time.Duration {
	start := c.Now()
	step()
	return c.Now() - start
}

// events fires a listener callback with a clock-derived duration.
func events(c metrics.Clock, l *metrics.EventListener) {
	l = l.EnsureDefaults()
	start := c.Now()
	l.FlushEnd(metrics.FlushInfo{Bytes: 1, Duration: c.Now() - start})
}

// manual is the unit-test pattern: a hand-advanced clock.
func manual() time.Duration {
	mc := new(metrics.ManualClock)
	mc.Advance(time.Second)
	return mc.Now()
}

// instruments exercises the registry without any ambient time source.
func instruments() int64 {
	r := metrics.NewRegistry()
	r.Counter("stall.count").Inc()
	r.Gauge("memtable.bytes").Set(1 << 20)
	r.Histogram("latency.put").Record(time.Millisecond)
	return r.Counter("stall.count").Load()
}
