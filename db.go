// Package iamdb is a persistent, crash-recovering, MVCC key-value
// storage library — the implementation of the LSA- and IAM-trees from
// "On Integration of Appends and Merges in Log-Structured Merge Trees"
// (ICPP 2019), together with LevelDB- and RocksDB-style leveled-LSM
// baselines behind the same API.
//
// Quickstart:
//
//	db, err := iamdb.Open("./data", &iamdb.Options{Engine: iamdb.IAM})
//	defer db.Close()
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//	it := db.NewIterator()
//	for it.Seek([]byte("a")); it.Valid(); it.Next() { ... }
//	it.Close()
package iamdb

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iamdb/internal/cache"
	"iamdb/internal/core"
	"iamdb/internal/corrupt"
	"iamdb/internal/engine"
	"iamdb/internal/histogram"
	"iamdb/internal/kv"
	"iamdb/internal/lsm"
	"iamdb/internal/memtable"
	"iamdb/internal/metrics"
	"iamdb/internal/trace"
	"iamdb/internal/vfs"
	"iamdb/internal/vlog"
	"iamdb/internal/wal"
)

var (
	// ErrNotFound reports that a key has no visible value.
	ErrNotFound = errors.New("iamdb: not found")
	// ErrClosed reports use of a closed DB.
	ErrClosed = errors.New("iamdb: closed")
	// ErrReadOnly reports that the DB degraded to read-only mode after
	// repeated background failures.  Reads still work; writes fail with
	// an error wrapping both ErrReadOnly and the background cause.  The
	// DB heals automatically once a background retry succeeds, or
	// explicitly via Resume.
	ErrReadOnly = errors.New("iamdb: read-only (background error)")
)

// BackgroundError is the error recorded when background flush or
// compaction work fails.  It wraps the underlying cause, so
// errors.Is/As see through it.
type BackgroundError struct {
	// Op names the failed operation ("flush" or "compact").
	Op string
	// Err is the underlying error.
	Err error
}

func (e *BackgroundError) Error() string {
	return fmt.Sprintf("iamdb: background %s: %v", e.Op, e.Err)
}

// Unwrap returns the underlying cause.
func (e *BackgroundError) Unwrap() error { return e.Err }

// metaEngine is the extra contract both engines provide beyond
// engine.Engine: durable WAL position tracking.
type metaEngine interface {
	engine.Engine
	SetLogMeta(lastSeq kv.Seq, logNum uint64) error
	LogMeta() (kv.Seq, uint64)
}

// DB is a key-value store.  All methods are safe for concurrent use.
type DB struct {
	opt    Options
	dir    string
	fs     vfs.FS
	cache  *cache.Cache
	eng    metaEngine
	events *EventListener
	clock  Clock
	// timing enables the per-operation latency histograms.  It is set
	// when the caller attached a listener or injected a clock — i.e.
	// opted into observability — so the default configuration skips the
	// two clock reads per operation.
	timing bool

	// reg names every DB-owned instrument; the hot paths hold direct
	// pointers below so no map lookup happens per operation.
	reg          *metrics.Registry
	io           *vfs.IOStats
	putHist      *histogram.Concurrent
	getHist      *histogram.Concurrent
	scanHist     *histogram.Concurrent
	stallCount   *metrics.Counter
	stallNanos   *metrics.Counter
	walRotations *metrics.Counter

	// Commit pipeline (leader/follower group commit).  Writers enqueue
	// a commitOp under qmu and then race for commitMu; the winner
	// becomes leader, drains the whole queue and commits it as one WAL
	// record.  Everyone else finds its op already resolved when it gets
	// the lock.  Lock order is commitMu before db.mu, never the
	// reverse.  The declared hierarchy below is checked statically by
	// iamlint's lockorder pass against the inferred acquisition graph.
	//
	// With Options.InlineBackground the leader also runs the flush and
	// compaction pipeline while holding commitMu, so the engine locks
	// (and through them the trace recorder and vfs locks) nest under it.
	//
	//iamlint:lockorder commitMu < qmu; commitMu < iamdb.DB.mu; iamdb.DB.mu < vfs.*; commitMu < trace.Recorder.mu; iamdb.DB.mu < trace.Recorder.mu; commitMu < core.Tree.mu; commitMu < lsm.DB.mu; commitMu < vlog.Log.mu; commitMu < vlog.Log.statsMu; qmu leaf
	qmu      sync.Mutex
	pendingQ []*commitOp
	commitMu sync.Mutex
	// seq is the last assigned sequence number, owned by whoever holds
	// commitMu (and by Open before any writer exists).  In a shard
	// child it trails the router's global sequencer: writeAt carries
	// pre-allocated ranges and seq tracks their maximum end.
	seq kv.Seq
	// walBuf is the leader's scratch encoding buffer (commitMu), and
	// baseBuf its per-op start-sequence scratch.
	walBuf  []byte
	baseBuf []kv.Seq

	// shards, when non-nil, makes this DB a range-sharded router: the
	// public API fans out to the independent child DBs it holds and
	// the single-tree fields (eng, mem, walW, ...) stay nil.  See
	// sharded.go.
	shards *shardSet

	// Lock-free read snapshot: readers load seqA and then state, with
	// no mutex.  seqA is the last *published* sequence — stored only
	// after every memtable insert of that group landed — and state is
	// re-published on every memtable swap, so the pair always describes
	// a consistent, torn-batch-free view.
	seqA    atomic.Uint64
	state   atomic.Pointer[dbState]
	closedA atomic.Bool

	userBytes atomic.Int64 // total key+value bytes written
	putOps    atomic.Int64 // records committed (sequence numbers consumed)
	getOps    atomic.Int64 // point lookups served

	// Introspection (see debug.go): tr records structural spans (nil =
	// disabled, zero-cost), samplerA holds the active timeline sampler,
	// and the debug server exposes both over HTTP when
	// Options.DebugAddr is set.  labelCommit, when non-nil, is the
	// pprof label set the commit leader wears; it stays nil unless the
	// debug server is on so the default commit path pays nothing.
	tr          *trace.Recorder
	samplerA    atomic.Pointer[metrics.Sampler]
	debugLn     net.Listener
	debugSrv    *http.Server
	labelCommit context.Context

	commitGroups  *metrics.Counter
	commitBatches *metrics.Counter
	commitWait    *metrics.Counter
	groupSize     *histogram.Concurrent

	mu         sync.Mutex
	cond       *sync.Cond
	mem        *memtable.MemTable
	imm        *memtable.MemTable
	immWalNum  uint64
	immLastSeq kv.Seq
	walW       *wal.Writer
	walF       vfs.File
	walNum     uint64
	walRetired int64 // bytes in WAL files already rotated out
	closed     bool
	bgErr      error // last background failure (*BackgroundError), nil when healthy
	readonly   bool  // degraded: writes rejected until a retry succeeds
	bgFails    int   // consecutive background failures
	bgErrSince int64 // clock nanos when bgErr was first latched

	snapMu sync.Mutex
	snaps  map[kv.Seq]int

	bgRetries   *metrics.Counter
	bgReadonly  *metrics.Counter
	bgHealNanos *metrics.Counter
	bgNoSpace   *metrics.Counter

	// Latent-fault accounting (see DESIGN.md "Latent-fault model").
	corrDetected    *metrics.Counter
	corrQuarantined *metrics.Counter
	scrubBlocksC    *metrics.Counter

	// Key-value separation (see vlogdb.go and DESIGN.md "Key-value
	// separation").  vl is nil when the store has no value log; it is
	// set once during open, before any worker or user operation runs.
	// routerWrite, set on a shard child by the sharded router, commits
	// GC rewrite batches through the router so they take globally
	// allocated sequences.  iterOpen counts open iterators (every shard
	// of a sharded view counts its own) and gates deferred segment
	// deletion; vlogPendMu is a leaf lock guarding that queue.
	vl          *vlog.Log
	vlogOpenSt  vlog.OpenStats
	vlogGCC     chan struct{}
	routerWrite func(*Batch) error
	iterOpen    atomic.Int64
	vlogPendMu  sync.Mutex
	vlogPend    []uint64

	vlogAppendsC   *metrics.Counter
	vlogResolvesC  *metrics.Counter
	vlogGCRewrites *metrics.Counter
	vlogGCSegments *metrics.Counter

	// walDrops records WAL tails truncated during recovery, reported as
	// detections by noteOpenSuspicion: a torn tail after a crash and a
	// rotted final record are physically indistinguishable, so recovery
	// that drops bytes must always be visible to the operator.
	walDrops []walDrop

	// scrub holds the state of the current / most recent Scrub pass
	// (see scrub.go).  scrub.mu is a leaf lock: nothing else is
	// acquired while it is held.
	scrub struct {
		mu      sync.Mutex
		running bool
		last    *ScrubReport
		lastErr error
		tables  atomic.Int64
		blocks  atomic.Int64
		bytes   atomic.Int64
	}

	flushC   chan struct{}
	compactC chan struct{}
	quit     chan struct{}
	wg       sync.WaitGroup
}

// dbState is the immutable read view published through DB.state after
// every memtable swap.  A reader that loads seqA and then state gets a
// state that is current or newer than that sequence, and since records
// only ever move down the hierarchy (mem → imm → engine) the view
// contains every record at or below the loaded sequence.
type dbState struct {
	mem *memtable.MemTable
	imm *memtable.MemTable
}

// publishStateLocked re-publishes the (mem, imm) pair.  Caller holds
// db.mu, which serializes all memtable swaps.
func (db *DB) publishStateLocked() {
	db.state.Store(&dbState{mem: db.mem, imm: db.imm})
}

// commitOp is one writer's seat in the commit queue.  done and err are
// written by the leader while it holds commitMu and read by the owner
// only after it acquires commitMu itself, so the mutex orders them.
// base, when nonzero, is the first sequence number of a range the
// sharded router pre-allocated for this batch; zero lets the leader
// assign the next local sequence range.
type commitOp struct {
	b    *Batch
	base kv.Seq
	err  error
	done bool
}

// Open opens (creating as needed) a database in dir.  A nil opt uses
// defaults (IAM engine, OS filesystem).  With Options.Shards > 1 — or
// when dir carries a SHARDS marker from an earlier sharded open — the
// returned DB is a range-sharded router over independent per-shard
// stores (see sharded.go).
func Open(dir string, opt *Options) (*DB, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	o = o.withDefaults()
	// The shard-000 probe catches a sharded directory whose SHARDS
	// marker is gone (torn checkpoint, lost file): openSharded turns it
	// into a typed corruption error instead of silently opening an
	// empty single-tree store next to the shard data.
	if o.Shards > 1 || o.FS.Exists(dir+"/"+shardsFileName) ||
		o.FS.Exists(shardDirName(dir, 0)+"/MANIFEST") {
		return openSharded(dir, o)
	}
	return openSingle(dir, o)
}

// openSingle opens one classic single-tree store — standalone, or one
// shard of a sharded DB (o then carries the shared StatsFS, Clock,
// EventListener and TraceRecorder so observability stays coherent).
// o must already have defaults applied.
func openSingle(dir string, o Options) (*DB, error) {
	// Every DB measures device IO.  Reuse the caller's StatsFS counters
	// when one is supplied (the bench harness does) so traffic is not
	// double-counted; otherwise wrap the filesystem ourselves.
	var io *vfs.IOStats
	if sfs, ok := o.FS.(*vfs.StatsFS); ok {
		io = sfs.Stats()
	} else {
		io = &vfs.IOStats{}
		o.FS = vfs.NewStatsFS(o.FS, io)
	}
	db := &DB{
		opt: o, dir: dir, fs: o.FS,
		cache:  cache.New(o.CacheSize),
		events: o.EventListener.EnsureDefaults(),
		clock:  o.Clock,
		timing: o.EventListener != nil || o.Clock != nil,
		reg:    metrics.NewRegistry(),
		io:     io,
		tr:     o.Trace,
		mem:    memtable.New(),
		snaps:  make(map[kv.Seq]int),
		flushC: make(chan struct{}, 1), compactC: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	if db.clock == nil {
		db.clock = newWallClock()
	}
	db.putHist = db.reg.Histogram("latency.put")
	db.getHist = db.reg.Histogram("latency.get")
	db.scanHist = db.reg.Histogram("latency.scan")
	db.stallCount = db.reg.Counter("stall.count")
	db.stallNanos = db.reg.Counter("stall.nanos")
	db.walRotations = db.reg.Counter("wal.rotations")
	db.bgRetries = db.reg.Counter("bg.retries")
	db.bgReadonly = db.reg.Counter("bg.readonly")
	db.bgHealNanos = db.reg.Counter("bg.heal.nanos")
	db.bgNoSpace = db.reg.Counter("bg.nospace")
	db.corrDetected = db.reg.Counter("corruption.detected")
	db.corrQuarantined = db.reg.Counter("corruption.quarantined")
	db.scrubBlocksC = db.reg.Counter("scrub.blocks")
	db.commitGroups = db.reg.Counter("commit.groups")
	db.commitBatches = db.reg.Counter("commit.batches")
	db.commitWait = db.reg.Counter("commit.wait.nanos")
	db.groupSize = db.reg.Histogram("commit.group.size")
	db.vlogAppendsC = db.reg.Counter("vlog.appends")
	db.vlogResolvesC = db.reg.Counter("vlog.resolves")
	db.vlogGCRewrites = db.reg.Counter("vlog.gc.rewrites")
	db.vlogGCSegments = db.reg.Counter("vlog.gc.segments")
	db.vlogGCC = make(chan struct{}, 1)
	db.cond = sync.NewCond(&db.mu)
	if err := db.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	if err := db.openEngine(); err != nil {
		return nil, err
	}
	if err := db.recover(); err != nil {
		db.eng.Close()
		return nil, err
	}
	if err := db.openVLog(); err != nil {
		_ = db.walF.Close()
		db.eng.Close()
		return nil, err
	}
	db.noteOpenSuspicion()
	db.noteVlogOpenSuspicion()
	db.seqA.Store(uint64(db.seq))
	db.mu.Lock()
	db.publishStateLocked()
	db.mu.Unlock()
	if !o.InlineBackground {
		db.wg.Add(1)
		go db.flushWorker()
		for i := 0; i < db.opt.CompactionThreads; i++ {
			db.wg.Add(1)
			go db.compactWorker()
		}
	}
	if !o.shardChild {
		// A shard child's collector is started by the router, after
		// routerWrite is wired (rewrites must take global sequences).
		db.startVlogGC()
	}
	if o.DebugAddr != "" {
		if err := db.startDebugServer(o.DebugAddr); err != nil {
			_ = db.Close()
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) openEngine() error {
	switch db.opt.Engine {
	case IAM, LSA:
		policy := core.IAM
		if db.opt.Engine == LSA {
			policy = core.LSA
		}
		budget := db.opt.MemBudget
		if db.opt.Engine == LSA {
			budget = 0 // LSA ignores the budget (appends everywhere)
		}
		tr, err := core.Open(core.Config{
			FS: db.fs, Dir: db.dir, Cache: db.cache,
			NodeCapacity: db.opt.MemtableSize, Fanout: db.opt.Fanout,
			Policy: policy, K: db.opt.K, MemBudget: budget,
			FixedM: db.opt.FixedM, BitsPerKey: db.opt.BitsPerKey,
			Compression: db.opt.Compression, OnDrop: db.vlogOnDrop,
			Events: db.events, Clock: db.clock, Trace: db.tr,
		})
		if err != nil {
			return err
		}
		db.eng = tr
	case LevelDB, RocksDB:
		profile := lsm.ProfileLevelDB
		if db.opt.Engine == RocksDB {
			profile = lsm.ProfileRocksDB
		}
		d, err := lsm.Open(lsm.Config{
			FS: db.fs, Dir: db.dir, Cache: db.cache,
			FileSize: db.opt.FileSize, LevelSizeBase: db.opt.LevelSizeBase,
			Fanout: db.opt.Fanout, L0CompactTrigger: db.opt.L0CompactTrigger,
			Profile: profile, BitsPerKey: db.opt.BitsPerKey,
			Compression: db.opt.Compression, OnDrop: db.vlogOnDrop,
			Events: db.events, Clock: db.clock, Trace: db.tr,
		})
		if err != nil {
			return err
		}
		db.eng = d
	default:
		return fmt.Errorf("iamdb: unknown engine %v", db.opt.Engine)
	}
	return nil
}

func logName(dir string, num uint64) string {
	return fmt.Sprintf("%s/%06d.log", dir, num)
}

// recover replays WAL files at or after the engine's recorded log
// number, then starts a fresh log.
func (db *DB) recover() error {
	lastSeq, logNum := db.eng.LogMeta()
	db.seq = lastSeq

	names, err := db.fs.List(db.dir)
	if err != nil {
		return err
	}
	var logs []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".log") {
			n, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
			if err == nil {
				logs = append(logs, n)
			}
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	maxLog := logNum
	for _, num := range logs {
		if num < logNum {
			_ = db.fs.Remove(logName(db.dir, num)) // already flushed; best-effort cleanup
			continue
		}
		if num > maxLog {
			maxLog = num
		}
		if err := db.replayLog(num); err != nil {
			return err
		}
	}
	// Flush everything recovered so the replayed logs can be dropped.
	if db.mem.Count() > 0 {
		if err := db.eng.Flush(db.mem.NewIter()); err != nil {
			return err
		}
		db.mem = memtable.New()
	}
	db.walNum = maxLog + 1
	if err := db.eng.SetLogMeta(db.seq, db.walNum); err != nil {
		return err
	}
	for _, num := range logs {
		// Obsolete after the flush above; a leftover log is re-deleted on
		// the next recovery, so failure here is not fatal.
		_ = db.fs.Remove(logName(db.dir, num))
	}
	f, err := db.fs.Create(logName(db.dir, db.walNum))
	if err != nil {
		return err
	}
	db.walF = f
	db.walW = wal.NewWriter(f)
	db.walW.SetSync(db.opt.SyncWrites)
	return nil
}

func (db *DB) replayLog(num uint64) error {
	f, err := db.fs.Open(logName(db.dir, num))
	if err != nil {
		return err
	}
	defer f.Close()
	// Strict replay: a torn tail (crash mid-append) is tolerated and
	// truncated, but a damaged record with valid data after it is
	// corruption of already-acknowledged writes — it aborts the open
	// with a typed error instead of silently dropping the suffix.
	dropped, err := wal.ReplayAllStrict(f, logName(db.dir, num), func(rec []byte) error {
		last, err := decodeRecordInto(rec, db.mem)
		if err != nil {
			return err
		}
		if last > db.seq {
			db.seq = last
		}
		if db.mem.ApproximateSize() >= db.opt.MemtableSize {
			if err := db.eng.Flush(db.mem.NewIter()); err != nil {
				return err
			}
			db.mem = memtable.New()
		}
		return nil
	})
	if dropped > 0 {
		db.walDrops = append(db.walDrops, walDrop{num: num, bytes: dropped})
	}
	return err
}

// walDrop records one truncated recovery tail for noteOpenSuspicion.
type walDrop struct {
	num   uint64
	bytes int64
}

// Put stores a key/value pair.
func (db *DB) Put(key, value []byte) error {
	var b Batch
	b.Put(key, value)
	return db.Write(&b)
}

// Delete removes a key.
func (db *DB) Delete(key []byte) error {
	var b Batch
	b.Delete(key)
	return db.Write(&b)
}

// Write applies a batch atomically: one WAL record, consecutive
// sequence numbers, all-or-nothing visibility.  On a sharded DB the
// batch is split by key range and committed under one global sequence
// allocation, so readers still never observe part of it.
func (db *DB) Write(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	if !db.timing {
		return db.writeTop(b)
	}
	start := db.clock.Now()
	err := db.writeTop(b)
	db.putHist.Record(db.clock.Now() - start)
	return err
}

// writeTop routes a batch to the sharded router or the local pipeline.
func (db *DB) writeTop(b *Batch) error {
	if db.shards != nil {
		return db.shards.write(b)
	}
	return db.write(b, 0)
}

// writeAt is the shard child's commit entry point: the batch joins the
// child's group-commit queue carrying the router-allocated sequence
// range starting at base.
func (db *DB) writeAt(b *Batch, base kv.Seq) error {
	return db.write(b, base)
}

// write is Write's body; the wrapper measures commit latency (stall
// and queue time included — the tails Sec. 6.2 measures).
//
// The writer enqueues its batch and then races for commitMu.  The
// winner is the leader: it drains everything queued so far and commits
// the whole group.  A loser wakes up holding commitMu with its op
// already resolved — or, if it got the lock before any leader served
// it, becomes the leader itself.  Every op is therefore resolved by
// exactly one leader, with no lost wakeups and no condition variable.
func (db *DB) write(b *Batch, base kv.Seq) error {
	db.throttle()

	esp := db.tr.Begin("commit.enqueue")
	op := &commitOp{b: b, base: base}
	db.qmu.Lock()
	db.pendingQ = append(db.pendingQ, op)
	db.qmu.Unlock()

	var qstart time.Duration
	if db.timing {
		qstart = db.clock.Now()
	}
	db.commitMu.Lock()
	esp.End()
	if db.timing {
		db.commitWait.Add(int64(db.clock.Now() - qstart))
	}
	if !op.done {
		db.qmu.Lock()
		group := db.pendingQ
		db.pendingQ = nil
		db.qmu.Unlock()
		db.commitGroup(group)
	}
	db.commitMu.Unlock()
	return op.err
}

// finishGroup resolves every op in the group.  Caller holds commitMu.
func finishGroup(group []*commitOp, err error) {
	for _, op := range group {
		op.err = err
		op.done = true
	}
}

// commitGroup commits every queued batch as one WAL record: the leader
// assigns consecutive sequence ranges across the group, appends (and,
// when SyncWrites is on, syncs) once, applies all memtable inserts
// outside db.mu, and only then publishes the new visible sequence —
// so a reader can never observe part of a batch, and one fsync covers
// the whole group.  Caller holds commitMu.
func (db *DB) commitGroup(group []*commitOp) {
	db.mu.Lock()
	for !db.closed && !db.readonly && db.imm != nil &&
		db.mem.ApproximateSize() >= db.opt.MemtableSize {
		db.cond.Wait() // both memtables full: wait for the flusher
	}
	if db.closed {
		db.mu.Unlock()
		finishGroup(group, ErrClosed)
		return
	}
	if db.readonly {
		// Join keeps both the mode and the cause visible to errors.Is.
		err := errors.Join(ErrReadOnly, db.bgErr)
		db.mu.Unlock()
		finishGroup(group, err)
		return
	}
	mem, walW := db.mem, db.walW
	// A successful append below heals a previously-latched WAL error
	// (space came back); flush/compaction errors are left for their own
	// retry loops to clear.
	healWal := false
	if be, ok := db.bgErr.(*BackgroundError); ok && (be.Op == "wal" || be.Op == "vlog") {
		healWal = true
	}
	db.mu.Unlock()

	if ctx := db.labelCommit; ctx != nil {
		pprof.SetGoroutineLabels(ctx)
		defer pprof.SetGoroutineLabels(context.Background())
	}
	sp := db.tr.Begin("commit.group")
	sp.SetCount(int64(len(group)))

	// Key-value separation: move large values to the value log (synced
	// before the WAL append carrying their pointers) and filter GC
	// rewrites against the committed state.  See vlogdb.go.
	var sepExtra int64
	if db.vl != nil {
		var err error
		sepExtra, err = db.separateGroup(group)
		if err != nil {
			sp.End()
			db.noteCommitError("vlog", err)
			finishGroup(group, err)
			return
		}
	}

	// One record of concatenated batch encodings; recovery decodes
	// them back-to-back (decodeRecordInto).  Router-assigned ops carry
	// their own (globally allocated, per-shard contiguous) start
	// sequence; local ops take the next local range.  seq advances to
	// the maximum end either way, so a shard's sequence counter always
	// bounds everything in its WAL.
	buf := db.walBuf[:0]
	bases := db.baseBuf[:0]
	seq := db.seq
	for _, op := range group {
		start := op.base
		if start == 0 {
			start = seq + 1
		}
		bases = append(bases, start)
		buf = op.b.appendEncoded(buf, start)
		if end := start + kv.Seq(op.b.Len()) - 1; end > seq {
			seq = end
		}
	}
	db.walBuf = buf
	db.baseBuf = bases
	wsp := sp.Child("commit.wal")
	wsp.SetBytes(int64(len(buf)))
	if err := walW.Append(buf); err != nil {
		// The record may be partially durable; burn the sequence range
		// so a replay after crash can never collide with a reuse.
		db.seq = seq
		sp.End()
		db.noteCommitError("wal", err)
		finishGroup(group, err)
		return
	}
	wsp.End()
	if healWal {
		db.noteBgSuccess()
	}

	asp := sp.Child("commit.apply")
	var user, applied int64
	for gi, op := range group {
		s := bases[gi] - 1
		for _, bop := range op.b.ops {
			s++
			mem.Add(s, bop.kind, bop.key, bop.val)
			user += int64(len(bop.key) + len(bop.val))
		}
		applied += int64(op.b.Len())
	}
	db.seq = seq
	// sepExtra restores the original value bytes separation replaced
	// with pointers, so user-byte accounting (the write-amplification
	// denominator) stays in terms of what the user logically wrote.
	user += sepExtra
	db.userBytes.Add(user)
	db.putOps.Add(applied)
	// Publish: every record at or below seq committed by THIS pipeline
	// is inserted, so local readers may now see the whole group.  seq
	// never decreases (it starts at the previous db.seq), so the store
	// is monotone.  (A sharded router ignores per-child seqA and gates
	// visibility on the global sequencer's watermark instead, which
	// only advances once the whole allocation prefix has committed.)
	db.seqA.Store(uint64(seq))
	asp.SetCount(applied)
	asp.End()

	db.commitGroups.Inc()
	db.commitBatches.Add(int64(len(group)))
	db.groupSize.Record(time.Duration(len(group)))
	sp.SetBytes(user)
	sp.End()

	var err error
	if mem.ApproximateSize() >= db.opt.MemtableSize {
		db.mu.Lock()
		if db.mem == mem && db.imm == nil && !db.closed {
			err = db.rotateLocked()
		}
		db.mu.Unlock()
		if err == nil && db.opt.InlineBackground {
			db.inlineBG()
		}
	}
	finishGroup(group, err)
}

// inlineBG runs the background pipeline synchronously on the commit
// leader (Options.InlineBackground): drain the immutable memtable just
// rotated out, then run compaction steps until the engine is settled.
// Caller holds commitMu, so the engine locks nest under it — the
// declared lock order covers this nesting.
func (db *DB) inlineBG() {
	db.drainImm()
	for {
		did, err := db.eng.WorkStep()
		if err != nil {
			if !db.noteBgError("compact", err) {
				return
			}
			continue
		}
		if !did {
			return
		}
		db.noteBgSuccess()
	}
}

// throttle applies the engine's write-stall policy in the writer's own
// goroutine, so stall time shows up as write latency — the behaviour
// whose tails Sec. 6.2 measures.  Stalled intervals are measured and
// reported as paired WriteStallBegin/WriteStallEnd events plus the
// cumulative stall counters in Metrics; the unstalled fast path reads
// one atomic and returns.
func (db *DB) throttle() {
	lvl := db.eng.StallLevel()
	if lvl == 0 {
		return
	}
	start := db.clock.Now()
	sp := db.tr.Begin("write.stall")
	sp.SetLevel(lvl)
	db.events.WriteStallBegin(metrics.StallInfo{Level: lvl})
	db.stallWork(lvl)
	d := db.clock.Now() - start
	db.stallCount.Inc()
	db.stallNanos.Add(int64(d))
	sp.End()
	db.events.WriteStallEnd(metrics.StallInfo{Level: lvl, Duration: d})
}

// stallWork runs compaction steps in the stalled writer's goroutine
// until the stall clears: a hard stall (2) works until no work is
// left, a slowdown (1) contributes one step.
func (db *DB) stallWork(lvl int) {
	for {
		switch lvl {
		case 2:
			if did, _ := db.eng.WorkStep(); !did {
				return
			}
		case 1:
			db.eng.WorkStep()
			return
		default:
			return
		}
		lvl = db.eng.StallLevel()
	}
}

// rotateLocked swaps the full memtable to the immutable slot and opens
// a fresh WAL.  Caller holds db.mu.
func (db *DB) rotateLocked() error {
	newNum := db.walNum + 1
	f, err := db.fs.Create(logName(db.dir, newNum))
	if err != nil {
		return err
	}
	// Close the old WAL before swapping state: a failed close may mean
	// lost appends, and the immutable memtable would depend on them for
	// recovery.  On failure, drop the new log and leave state untouched.
	if err := db.walF.Close(); err != nil {
		_ = f.Close()
		_ = db.fs.Remove(logName(db.dir, newNum))
		return err
	}
	oldNum, oldBytes := db.walNum, db.walW.Offset()
	db.walRetired += oldBytes
	db.walRotations.Inc()
	sp := db.tr.Begin("wal.rotate")
	sp.SetBytes(oldBytes)
	sp.End()
	db.events.WALRotated(metrics.WALRotationInfo{OldNum: oldNum, NewNum: newNum, OldBytes: oldBytes})
	db.imm = db.mem
	db.immWalNum = db.walNum
	db.immLastSeq = db.seq
	db.mem = memtable.New()
	db.publishStateLocked()
	db.walF = f
	db.walW = wal.NewWriter(f)
	db.walW.SetSync(db.opt.SyncWrites)
	db.walNum = newNum
	select {
	case db.flushC <- struct{}{}:
	default:
	}
	return nil
}

// fileNumFromPath recovers the table file number from a path like
// "dir/000123.mst", so a corruption error's provenance can be mapped
// back to the engine's quarantine list.
func fileNumFromPath(path string) (uint64, bool) {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	base, ok := strings.CutSuffix(path, ".mst")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// noteCorruption inspects an error from the read path (or scrub).  If
// it carries corruption provenance the detection is counted, the event
// fired, and — when the damage names a table file — the table is
// quarantined so compaction never rewrites (and thereby launders or
// spreads) the damaged data.  Reads keep being served from quarantined
// tables: intact blocks are still correct, and damaged ones keep
// returning the typed error.
func (db *DB) noteCorruption(err error) {
	ce := AsCorruption(err)
	if ce == nil {
		return
	}
	db.corrDetected.Inc()
	db.events.CorruptionDetected(metrics.CorruptionInfo{
		Path: ce.Path, Layer: ce.Layer, Offset: ce.Offset, Detail: ce.Detail,
	})
	num, ok := fileNumFromPath(ce.Path)
	if !ok {
		return
	}
	q, ok := db.eng.(engine.Quarantiner)
	if !ok {
		return
	}
	if q.Quarantine(num, ce.Error()) {
		db.corrQuarantined.Inc()
		db.events.TableQuarantined(metrics.TableInfo{FileNum: num, Level: -1})
	}
}

// noteOpenSuspicion surfaces the damage evidence recovery gathered:
// tables the engine quarantined at load (footer-slot fallback or a
// failed higher-generation candidate — the signature of either a crash
// mid-commit or a rotted footer) and manifest tail bytes dropped by
// strict replay.  Runs once from Open, before workers start.
func (db *DB) noteOpenSuspicion() {
	if q, ok := db.eng.(engine.Quarantiner); ok {
		for _, qi := range q.Quarantined() {
			db.corrDetected.Inc()
			db.corrQuarantined.Inc()
			db.events.CorruptionDetected(metrics.CorruptionInfo{
				Path: qi.Path, Layer: corrupt.LayerTableFooter, Offset: -1, Detail: qi.Reason,
			})
			db.events.TableQuarantined(metrics.TableInfo{FileNum: qi.FileNum, Level: qi.Level})
		}
	}
	for _, wd := range db.walDrops {
		db.corrDetected.Inc()
		db.events.CorruptionDetected(metrics.CorruptionInfo{
			Path: logName(db.dir, wd.num), Layer: corrupt.LayerWAL, Offset: -1,
			Detail: fmt.Sprintf("recovery truncated %d trailing bytes", wd.bytes),
		})
	}
	if rd, ok := db.eng.(interface{ RecoveryDropped() int64 }); ok {
		if n := rd.RecoveryDropped(); n > 0 {
			db.corrDetected.Inc()
			db.events.CorruptionDetected(metrics.CorruptionInfo{
				Path: db.dir, Layer: corrupt.LayerManifest, Offset: -1,
				Detail: fmt.Sprintf("manifest replay dropped %d trailing bytes", n),
			})
		}
	}
}

// noteCommitError latches a log-append failure from the commit path
// (op "wal" or "vlog") as a background error.  Unlike noteBgError it
// never sleeps and never calls Resume — the failing writer is a
// foreground goroutine and gets its error back immediately — but the
// same consecutive-failure counting degrades the DB to read-only once
// the limit is exceeded, so a full disk stops the write path instead
// of burning sequence ranges forever.
func (db *DB) noteCommitError(op string, err error) {
	if errors.Is(err, vfs.ErrNoSpace) {
		db.bgNoSpace.Inc()
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return
	}
	if db.bgErr == nil {
		db.bgErrSince = int64(db.clock.Now())
	}
	db.bgErr = &BackgroundError{Op: op, Err: err}
	db.bgFails++
	try := db.bgFails
	db.bgRetries.Inc()
	enteredRO := false
	if !db.readonly && try > db.opt.BgRetryLimit {
		db.readonly = true
		enteredRO = true
		db.bgReadonly.Inc()
	}
	cause := db.bgErr
	db.cond.Broadcast()
	db.mu.Unlock()
	db.events.BackgroundError(metrics.BackgroundErrorInfo{Op: op, Err: err, Retries: try})
	if enteredRO {
		db.events.ReadOnlyEnter(metrics.ReadOnlyInfo{Cause: cause})
	}
}

// noteBgError records one failed background attempt: it latches the
// error, counts the retry, degrades to read-only after BgRetryLimit
// consecutive failures, asks the engine to Resume (rewrite its
// manifest so half-applied edits are superseded before the retry), and
// applies the backoff policy.  It reports whether the worker should
// retry; false means the DB is closing or the backoff abandoned the
// loop (the worker goes back to waiting for a kick).
func (db *DB) noteBgError(op string, err error) bool {
	if errors.Is(err, vfs.ErrNoSpace) {
		db.bgNoSpace.Inc()
	}
	db.noteCorruption(err)
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return false
	}
	if db.bgErr == nil {
		db.bgErrSince = int64(db.clock.Now())
	}
	db.bgErr = &BackgroundError{Op: op, Err: err}
	db.bgFails++
	try := db.bgFails
	db.bgRetries.Inc()
	enteredRO := false
	if !db.readonly && try > db.opt.BgRetryLimit {
		db.readonly = true
		enteredRO = true
		db.bgReadonly.Inc()
	}
	cause := db.bgErr
	db.cond.Broadcast()
	db.mu.Unlock()
	db.events.BackgroundError(metrics.BackgroundErrorInfo{Op: op, Err: err, Retries: try})
	if enteredRO {
		db.events.ReadOnlyEnter(metrics.ReadOnlyInfo{Cause: cause})
	}
	if r, ok := db.eng.(engine.Resumer); ok {
		// Best-effort: a failed Resume is retried with the work itself.
		_ = r.Resume()
	}
	if db.opt.BgBackoff != nil {
		return db.opt.BgBackoff(try)
	}
	d := time.Millisecond << uint(min(try, 7))
	select {
	case <-db.quit:
		return false
	case <-time.After(d):
		return true
	}
}

// noteBgSuccess clears background-error state after a successful
// attempt, leaving read-only mode and recording the heal duration.
func (db *DB) noteBgSuccess() {
	db.mu.Lock()
	if db.bgErr == nil && !db.readonly {
		db.mu.Unlock()
		return
	}
	cause := db.bgErr
	wasRO := db.readonly
	heal := int64(db.clock.Now()) - db.bgErrSince
	db.bgErr, db.readonly, db.bgFails = nil, false, 0
	db.bgHealNanos.Add(heal)
	db.cond.Broadcast()
	db.mu.Unlock()
	if wasRO {
		db.events.ReadOnlyExit(metrics.ReadOnlyInfo{Cause: cause, Duration: time.Duration(heal)})
	}
}

func (db *DB) flushWorker() {
	defer db.wg.Done()
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("iamdb", "flush-worker")))
	for {
		select {
		case <-db.quit:
			return
		case <-db.flushC:
		}
		db.drainImm()
	}
}

// drainImm flushes the immutable memtable, retrying failures until it
// succeeds, the backoff abandons, or the DB closes.  The worker never
// exits on error: a healed DB resumes without reopening.
func (db *DB) drainImm() {
	flushed := false // the Flush itself succeeded; only SetLogMeta remains
	for {
		db.mu.Lock()
		imm := db.imm
		immWal := db.immWalNum
		immSeq := db.immLastSeq
		curWal := db.walNum
		db.mu.Unlock()
		if imm == nil {
			return
		}
		var err error
		if !flushed {
			err = db.eng.Flush(imm.NewIter())
		}
		if err == nil {
			flushed = true
			err = db.eng.SetLogMeta(immSeq, curWal)
		}
		if err != nil {
			if !db.noteBgError("flush", err) {
				return
			}
			continue
		}
		db.noteBgSuccess()
		flushed = false
		db.mu.Lock()
		db.imm = nil
		db.publishStateLocked()
		db.cond.Broadcast()
		db.mu.Unlock()
		// The flushed log is re-deleted on next recovery if this
		// best-effort removal fails.
		_ = db.fs.Remove(logName(db.dir, immWal))
		select {
		case db.compactC <- struct{}{}:
		default:
		}
	}
}

func (db *DB) compactWorker() {
	defer db.wg.Done()
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("iamdb", "compact-worker")))
	for {
		did, err := db.eng.WorkStep()
		if err != nil {
			if !db.noteBgError("compact", err) {
				select {
				case <-db.quit:
					return
				case <-db.compactC:
				}
			}
			continue
		}
		if did {
			db.noteBgSuccess()
			continue
		}
		select {
		case <-db.quit:
			return
		case <-db.compactC:
		}
	}
}

// Resume clears background-error state once the operator believes the
// underlying fault is gone: the engine rewrites its manifest, the DB
// leaves read-only mode, and the background workers are kicked.  The
// DB also heals itself when a background retry succeeds; Resume just
// forces the attempt now.
func (db *DB) Resume() error {
	if ss := db.shards; ss != nil {
		return ss.fanout(func(kid *DB) error { return kid.Resume() })
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()
	if r, ok := db.eng.(engine.Resumer); ok {
		if err := r.Resume(); err != nil {
			return err
		}
	}
	db.noteBgSuccess()
	select {
	case db.flushC <- struct{}{}:
	default:
	}
	select {
	case db.compactC <- struct{}{}:
	default:
	}
	return nil
}

// CheckInvariants asks the engine to validate its structural
// invariants (crash-recovery tests use it as an oracle); engines
// without a checker report nil.
func (db *DB) CheckInvariants() error {
	if ss := db.shards; ss != nil {
		return ss.fanout(func(kid *DB) error { return kid.CheckInvariants() })
	}
	if c, ok := db.eng.(engine.Checker); ok {
		return c.CheckInvariants()
	}
	return nil
}

// Get returns the value for key, or ErrNotFound.  The returned slice
// is a fresh copy the caller may retain; use GetInto to reuse a buffer
// across lookups.
func (db *DB) Get(key []byte) ([]byte, error) {
	if !db.timing {
		return db.get(key)
	}
	start := db.clock.Now()
	v, err := db.get(key)
	db.getHist.Record(db.clock.Now() - start)
	return v, err
}

// GetInto appends the value for key to dst and returns the extended
// slice — the copy-into-caller fast path that avoids the per-call
// allocation Get makes.  dst may be nil.
func (db *DB) GetInto(key, dst []byte) ([]byte, error) {
	var start time.Duration
	if db.timing {
		start = db.clock.Now()
	}
	v, kind, err := db.getRaw(key)
	if err == nil {
		if kind == kv.KindDelete {
			err = ErrNotFound
		} else {
			dst = append(dst, v...)
		}
	}
	if db.timing {
		db.getHist.Record(db.clock.Now() - start)
	}
	if err != nil {
		return nil, err
	}
	return dst, nil
}

func (db *DB) get(key []byte) ([]byte, error) {
	v, kind, err := db.getRaw(key)
	if err != nil {
		return nil, err
	}
	return finishGet(v, kind)
}

// getRaw resolves key against the lock-free read snapshot: the visible
// sequence is loaded first, then the state pointer.  The state may be
// newer than the sequence but never older, and records only move down
// the hierarchy, so the pair is always a consistent view that cannot
// expose part of a batch.  The returned value aliases internal storage
// and must be copied before the call returns to the user.
func (db *DB) getRaw(key []byte) ([]byte, kv.Kind, error) {
	if db.closedA.Load() {
		return nil, 0, ErrClosed
	}
	db.getOps.Add(1)
	if ss := db.shards; ss != nil {
		return ss.get(key)
	}
	snap := kv.Seq(db.seqA.Load())
	st := db.state.Load()
	v, kind, err := db.getRawAt(key, snap, st.mem, st.imm)
	if err != nil {
		return nil, 0, err
	}
	return db.maybeResolve(key, v, kind)
}

func (db *DB) getRawAt(key []byte, snap kv.Seq, mem, imm *memtable.MemTable) ([]byte, kv.Kind, error) {
	if v, kind, _, found := mem.Get(key, snap); found {
		return v, kind, nil
	}
	if imm != nil {
		if v, kind, _, found := imm.Get(key, snap); found {
			return v, kind, nil
		}
	}
	v, kind, _, found, err := db.eng.Get(key, snap)
	if err != nil {
		db.noteCorruption(err)
		return nil, 0, err
	}
	if !found {
		return nil, 0, ErrNotFound
	}
	return v, kind, nil
}

func finishGet(v []byte, kind kv.Kind) ([]byte, error) {
	if kind == kv.KindDelete {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Close flushes nothing (recovery replays the WAL), stops background
// work and releases resources.
func (db *DB) Close() error {
	if db.shards != nil {
		return db.closeSharded()
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	db.closedA.Store(true)
	db.cond.Broadcast()
	db.mu.Unlock()
	close(db.quit)
	if db.debugSrv != nil {
		// Unblocks the Serve goroutine so wg.Wait below can finish.
		_ = db.debugSrv.Close()
	}
	db.wg.Wait()
	// Barrier: wait out any in-flight commit leader so the WAL writer
	// is idle before closing it.  Leaders that acquire commitMu later
	// observe closed under db.mu and never touch the WAL.
	db.commitMu.Lock()
	db.commitMu.Unlock()
	return errors.Join(db.walF.Close(), db.closeVlog(), db.eng.Close())
}

// CompactAll flushes both memtables and settles every pending
// compaction — the paper's "tuning phase" run to completion.  Used by
// experiments before measuring stable performance.
func (db *DB) CompactAll() error {
	if ss := db.shards; ss != nil {
		return ss.fanout(func(kid *DB) error { return kid.CompactAll() })
	}
	if err := db.Flush(); err != nil {
		return err
	}
	if d, ok := db.eng.(*lsm.DB); ok {
		return d.DrainCompactions()
	}
	return nil
}

// MixedLevel reports IAM's current (m, k) tuning; zero for baselines.
// Shards tune independently; a sharded DB reports shard 0 (use
// ShardMetrics-style per-shard access via the debug endpoints for the
// rest).
func (db *DB) MixedLevel() (m, k int) {
	if ss := db.shards; ss != nil {
		return ss.kids[0].MixedLevel()
	}
	if tr, ok := db.eng.(*core.Tree); ok {
		return tr.MixedLevel()
	}
	return 0, 0
}

// Flush forces the current memtable into the tree, waiting for the
// flush to finish.  Reads are unaffected; use it before measuring
// on-disk state or creating external copies.
func (db *DB) Flush() error {
	if ss := db.shards; ss != nil {
		return ss.fanout(func(kid *DB) error { return kid.Flush() })
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.opt.InlineBackground {
		// No workers in inline mode: drain any leftover immutable
		// memtable (e.g. from an earlier failed Flush) ourselves.
		db.inlineBG()
	}
	db.mu.Lock()
	for db.imm != nil && !db.closed && !db.readonly {
		db.cond.Wait()
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.readonly {
		err := errors.Join(ErrReadOnly, db.bgErr)
		db.mu.Unlock()
		return err
	}
	if db.mem.Count() == 0 {
		db.mu.Unlock()
		return nil
	}
	// Move the memtable through the same immutable-slot pipeline as
	// automatic flushes: a failed engine flush then keeps the data
	// readable (and retried) in the immutable memtable instead of
	// dropping acknowledged writes on the floor.
	err := db.rotateLocked()
	db.mu.Unlock()
	if err != nil {
		// The memtable is still in place; count the failure like any
		// other commit-path fault so a full disk degrades the store
		// instead of failing opaquely forever.
		db.noteCommitError("wal", err)
		return err
	}
	if db.opt.InlineBackground {
		db.inlineBG()
	}
	db.mu.Lock()
	for db.imm != nil && !db.closed && !db.readonly && db.bgErr == nil {
		db.cond.Wait()
	}
	switch {
	case db.imm == nil:
		err = nil
	case db.readonly:
		err = errors.Join(ErrReadOnly, db.bgErr)
	case db.bgErr != nil:
		// The flush attempt failed; the background worker keeps
		// retrying with the data safe in the immutable memtable.
		err = db.bgErr
	default:
		err = ErrClosed
	}
	db.mu.Unlock()
	return err
}

// ApproximateSize estimates the on-disk bytes of data stored in the
// user-key range [start, limit], excluding memtable contents.  The
// estimate counts whole nodes inside the range and half of each node
// straddling a boundary.
func (db *DB) ApproximateSize(start, limit []byte) int64 {
	if ss := db.shards; ss != nil {
		var total int64
		for _, kid := range ss.kids {
			total += kid.ApproximateSize(start, limit)
		}
		return total
	}
	if rs, ok := db.eng.(engine.RangeSizer); ok {
		return rs.ApproximateSize(start, limit)
	}
	return 0
}
