// Command iamlint is the repo's custom static analyzer.  It enforces
// invariants that generic tooling cannot know about — the discipline
// the IAM-tree's concurrent compaction model depends on.
//
// Intraprocedural passes (per package):
//
//	lockcheck    every mu.Lock() is released by a defer mu.Unlock() or
//	             an Unlock on every return path of the same function,
//	             and the release mode matches the acquire mode (an
//	             RLock released by Unlock is flagged)
//	ioerr        no call into internal/vfs, internal/wal, internal/table
//	             or internal/manifest may silently discard an error
//	             result (write `_ = f.Close()` to discard on purpose;
//	             deferred cleanup calls are exempt)
//	determinism  the deterministic packages (internal/core,
//	             internal/harness, and internal/vfs's virtual-clock
//	             disk model) must not call time.Now, unseeded rand.*,
//	             or os filesystem functions — all time, randomness and
//	             I/O go through the vfs/clock abstractions
//	alias        keys/values returned by iterator Key()/Value() or
//	             block readers alias reused buffers; retaining one in a
//	             struct field, map, or slice without a copy is flagged
//	atomicpub    a struct published to readers through an
//	             atomic.Pointer[T] (skiplist nodes, arena chunks, the
//	             DB's read-state) is frozen once stored; plain-field
//	             writes are allowed only on provably fresh values
//	             (&T{...}, new(T), or a same-package new* constructor)
//
// Interprocedural passes (whole program: per-function summaries plus
// a type-resolved call graph where interface methods resolve to every
// implementation in the linted packages):
//
//	lockorder    the inferred mutex-acquisition graph (which locks are
//	             held when each other lock is taken, propagated through
//	             calls) must match the //iamlint:lockorder declared
//	             hierarchy; cycles and undeclared edges are potential
//	             deadlocks
//	syncorder    every interprocedural path reaching a manifest
//	             append/edit must sync fresh table data first — the
//	             static twin of the crash-matrix oracle
//	goexit       every `go` statement needs a provable join: WaitGroup
//	             Add before the spawn, Done in the body, Wait reachable
//	             from Close/Shutdown/Stop/main
//
// Diagnostics print as "file:line: [pass] message" (or one JSON
// object per line under -json) and the process exits 1 if any are
// found, 2 if the packages fail to load, 0 when clean.  Directives:
//
//	//iamlint:ignore pass[,pass]       on the offending line or the line above
//	//iamlint:file-ignore pass[,pass]  anywhere in a file, for the whole file
//	//iamlint:deterministic            opts a package file into the
//	                                   determinism pass scope (used by fixtures)
//	//iamlint:lockorder A < B; X leaf; P internal
//	                                   declares the lock hierarchy the
//	                                   lockorder pass checks against
//
// An unknown pass name or directive kind is itself a diagnostic
// (pass "directive").  Only the standard library is used: go/ast,
// go/parser, go/types and `go list -export` for export data, in the
// style of go/packages.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic object per line")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := run(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iamlint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			_ = enc.Encode(jsonDiag{
				Pass: d.pass,
				File: d.pos.Filename,
				Line: d.pos.Line,
				Msg:  d.msg,
			})
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "iamlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	Pass string `json:"pass"`
	File string `json:"file"`
	Line int    `json:"line"`
	Msg  string `json:"msg"`
}

// run loads the packages matched by patterns and applies every pass —
// the per-package ones, then the interprocedural ones over the whole
// loaded program — returning diagnostics in file:line order.
func run(patterns []string) ([]diag, error) {
	pkgs, err := load(patterns)
	if err != nil {
		return nil, err
	}
	var all []diag
	for _, p := range pkgs {
		all = append(all, analyze(p)...)
	}
	all = append(all, analyzeProgram(buildProgram(pkgs))...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		if all[i].pos.Line != all[j].pos.Line {
			return all[i].pos.Line < all[j].pos.Line
		}
		return all[i].msg < all[j].msg
	})
	return all, nil
}

// render formats diagnostics the way main prints them.
func render(diags []diag) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

// analyze runs the per-package passes over one loaded package,
// honouring the package's suppression directives.
func analyze(p *pkg) []diag {
	var diags []diag
	emit := func(d diag) {
		if !p.suppressed(d.pass, d.pos) {
			diags = append(diags, d)
		}
	}
	for _, d := range p.pending {
		emit(d)
	}
	lockcheck(p, emit)
	ioerr(p, emit)
	determinism(p, emit)
	aliascheck(p, emit)
	atomicpub(p, emit)
	return diags
}
