package iamdb_test

// One benchmark per table and figure of the paper's evaluation
// (Sec. 6), each regenerating its rows via the experiment harness at
// SmallScale and printing them.  Run:
//
//	go test -bench=. -benchmem
//
// cmd/iambench runs the same experiments at larger scales.  Absolute
// numbers come from the virtual disk model; the paper-matching claim
// is about shape: who wins, roughly by what factor, where crossovers
// fall (see EXPERIMENTS.md).

import (
	"fmt"
	"testing"

	"iamdb/internal/amp"
	"iamdb/internal/harness"
)

// report runs an experiment once per benchmark invocation and prints
// the resulting table under -v (b.N is held to 1 by b.Run semantics:
// the table generation is the measured unit).
func report(b *testing.B, name string, run func(harness.Scale) (harness.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(harness.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.Format())
		}
	}
}

func BenchmarkTable1Amplifications(b *testing.B) {
	report(b, "table1", func(s harness.Scale) (harness.Table, error) { return s.Table1() })
}

func BenchmarkTable2AppendTreeTraits(b *testing.B) {
	report(b, "table2", func(s harness.Scale) (harness.Table, error) { return s.Table2() })
}

func BenchmarkTable3MixedLevelK(b *testing.B) {
	report(b, "table3", func(s harness.Scale) (harness.Table, error) { return s.Table3() })
}

func BenchmarkTable4PerLevelWriteAmp(b *testing.B) {
	report(b, "table4", func(s harness.Scale) (harness.Table, error) { return s.Table4() })
}

func BenchmarkTable5TailLatency(b *testing.B) {
	report(b, "table5", func(s harness.Scale) (harness.Table, error) { return s.Table5() })
}

func BenchmarkFigure6HashLoad(b *testing.B) {
	report(b, "figure6", func(s harness.Scale) (harness.Table, error) { return s.Figure6() })
}

func BenchmarkFigure7YCSB(b *testing.B) {
	for _, class := range []harness.Class{harness.ClassSSD100G, harness.ClassHDD100G, harness.ClassHDD1T} {
		b.Run(class.Name, func(b *testing.B) {
			report(b, "figure7", func(s harness.Scale) (harness.Table, error) {
				return s.Figure7(class)
			})
		})
	}
}

func BenchmarkFigure8StableThroughput(b *testing.B) {
	report(b, "figure8", func(s harness.Scale) (harness.Table, error) { return s.Figure8() })
}

func BenchmarkFigure9Sequential(b *testing.B) {
	report(b, "figure9", func(s harness.Scale) (harness.Table, error) { return s.Figure9() })
}

func BenchmarkFigure10SpaceUsage(b *testing.B) {
	report(b, "figure10", func(s harness.Scale) (harness.Table, error) { return s.Figure10() })
}

// BenchmarkEquationsTheory evaluates the closed-form model (Eq. 1-5)
// at the paper's full-scale parameters and prints the predicted
// amplifications next to the paper's measured Table 4 sums.
func BenchmarkEquationsTheory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := amp.Params{N: 5, T: 10, M: 3, K: 3}
		tbl := harness.Table{
			Title:  "Eq. (3)-(5) at paper scale (n=5, t=10, m=3, k=3)",
			Header: []string{"tree", "predicted", "paper-measured(1T)"},
			Rows: [][]string{
				{"LSA", fmt.Sprintf("%.2f", amp.LSAWrite(p)), "4.10"},
				{"IAM", fmt.Sprintf("%.2f", amp.IAMWrite(p)), "8.71"},
				{"LSM", fmt.Sprintf("%.2f", amp.LSMWrite(p)), "19.00"},
			},
		}
		if i == 0 {
			b.Log("\n" + tbl.Format())
		}
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationBloomBits sweeps Bloom density: lookup read traffic
// for present and absent keys.
func BenchmarkAblationBloomBits(b *testing.B) {
	for _, bits := range []int{4, 10, 14, 20} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBloomAblation(b, bits)
			}
		})
	}
}

// BenchmarkAblationLeafInitSize sweeps the leaf merge chunk Cts = Ct/f
// (the paper's default f=5), measuring write amp of a hash load.
func BenchmarkAblationLeafInitSize(b *testing.B) {
	for _, frac := range []int{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("Ct_over_%d", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runLeafInitAblation(b, frac)
			}
		})
	}
}

// BenchmarkTuningPhase measures the compaction debt each engine owes
// after a load — the paper's "tuning phase" (Sec. 6.2) that drags the
// baselines' averaged throughputs in Fig. 7.
func BenchmarkTuningPhase(b *testing.B) {
	report(b, "tuning", func(s harness.Scale) (harness.Table, error) { return s.TuningPhase() })
}
