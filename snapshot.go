package iamdb

import (
	"iamdb/internal/iterator"
	"iamdb/internal/kv"
)

// Snapshot is a consistent read-only view of the DB as of its creation.
// Merges retain every record version a live snapshot can still see
// (Sec. 5.2's deferred deletes respect this), so release snapshots
// promptly to let compaction reclaim space.
type Snapshot struct {
	db       *DB
	seq      kv.Seq
	released bool
}

// GetSnapshot captures the current state.  Callers must Release it.
func (db *DB) GetSnapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &Snapshot{db: db, seq: db.seq}
	db.snaps[s.seq]++
	db.updateHorizonLocked()
	return s
}

// Release ends the snapshot's protection; idempotent.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	db := s.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.snaps[s.seq]--; db.snaps[s.seq] <= 0 {
		delete(db.snaps, s.seq)
	}
	db.updateHorizonLocked()
}

// updateHorizonLocked pushes the oldest live snapshot (or "none") down
// to the engine so merges know what they may drop.
func (db *DB) updateHorizonLocked() {
	h := kv.MaxSeq
	for seq := range db.snaps {
		if seq < h {
			h = seq
		}
	}
	db.eng.SetHorizon(h)
}

// Get reads a key as of the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if s.released {
		return nil, ErrClosed
	}
	db := s.db
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	mem, imm := db.mem, db.imm
	db.mu.Unlock()
	return db.getAt(key, s.seq, mem, imm)
}

// NewIterator iterates the DB as of the snapshot.
func (s *Snapshot) NewIterator() *Iterator {
	db := s.db
	db.mu.Lock()
	kids := []iterator.Iterator{db.mem.NewIter()}
	if db.imm != nil {
		kids = append(kids, db.imm.NewIter())
	}
	db.mu.Unlock()
	kids = append(kids, db.eng.NewIter())
	return &Iterator{
		db:   db,
		in:   iterator.NewMerging(kv.CompareInternal, kids...),
		snap: s.seq,
	}
}
