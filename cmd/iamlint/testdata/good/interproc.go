// Clean counterparts for the interprocedural passes: nested locks in
// the declared order, the write-sync-edit durability protocol, a
// WaitGroup-disciplined worker, and suppressions that work inside
// function literals.
//
//iamlint:lockorder outer.mu < inner.mu
package good

import (
	"sync"

	"iamdb/internal/iterator"
	"iamdb/internal/manifest"
	"iamdb/internal/table"
	"iamdb/internal/vfs"
)

type outer struct{ mu sync.Mutex }
type inner struct{ mu sync.Mutex }

// nested takes the locks in the declared direction.
func (o *outer) nested(i *inner) {
	o.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

// writeSyncEdit is the durability protocol syncorder enforces: table
// data is synced before the manifest references it.
func writeSyncEdit(fs vfs.FS, man *manifest.Log, it iterator.Iterator) error {
	t, err := table.Create(fs, "ok.mst", 9, 1<<20, table.Options{})
	if err != nil {
		return err
	}
	if _, err := t.Append(it); err != nil {
		return err
	}
	if err := t.Sync(); err != nil {
		return err
	}
	return man.Append(&manifest.Edit{})
}

// joined is the WaitGroup discipline goexit requires: Add before the
// spawn, Done in the body, Wait reachable from Close.
type joined struct {
	wg sync.WaitGroup
}

func (j *joined) Start() {
	j.wg.Add(1)
	go func() {
		defer j.wg.Done()
	}()
}

func (j *joined) Close() {
	j.wg.Wait()
}

// inLiteral proves suppression directives work inside function-literal
// bodies, with a multi-pass list.
func inLiteral(fs vfs.FS, name string) {
	f := func() {
		fs.Remove(name) //iamlint:ignore ioerr,alias
	}
	f()
}
