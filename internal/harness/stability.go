package harness

import (
	"fmt"
	"math"
	"time"

	"iamdb"
	"iamdb/internal/ycsb"
)

// StabilityScore condenses a timeline into the quantities the paper's
// stability argument (Sec. 6.2: the tuning phase drags the baselines'
// early performance) cares about: how even the throughput is across
// windows and how bad the worst window gets.
type StabilityScore struct {
	// Windows is the number of closed timeline windows scored; Window
	// is their width after folding.
	Windows int
	Window  time.Duration
	// MeanOpsPerSec averages the per-window rates; ThroughputCV is
	// their coefficient of variation (stddev/mean — 0 is perfectly
	// steady).
	MeanOpsPerSec float64
	ThroughputCV  float64
	// WorstWindowOpsPerSec is the slowest window's rate (a stalled
	// window scores 0).
	WorstWindowOpsPerSec float64
	// WorstP99/WorstP999 are the worst per-window interval commit
	// latency percentiles — tails a whole-run histogram averages away.
	WorstP99  time.Duration
	WorstP999 time.Duration
	// MeanStallFrac is the average fraction of window time spent in
	// write stalls.
	MeanStallFrac float64
}

// ScoreTimeline computes a StabilityScore over closed windows.
func ScoreTimeline(pts []iamdb.TimelinePoint) StabilityScore {
	sc := StabilityScore{Windows: len(pts)}
	if len(pts) == 0 {
		return sc
	}
	sc.Window = pts[len(pts)-1].End - pts[len(pts)-1].Start
	var sum, sumsq, stall float64
	worst := math.Inf(1)
	for _, p := range pts {
		v := p.OpsPerSec
		sum += v
		sumsq += v * v
		if v < worst {
			worst = v
		}
		stall += p.StallFrac
		if p.Put.P99 > sc.WorstP99 {
			sc.WorstP99 = p.Put.P99
		}
		if p.Put.P999 > sc.WorstP999 {
			sc.WorstP999 = p.Put.P999
		}
	}
	n := float64(len(pts))
	mean := sum / n
	sc.MeanOpsPerSec = mean
	if variance := sumsq/n - mean*mean; variance > 0 && mean > 0 {
		sc.ThroughputCV = math.Sqrt(variance) / mean
	}
	sc.WorstWindowOpsPerSec = worst
	sc.MeanStallFrac = stall / n
	return sc
}

// Stability runs the sustained-mixed-workload stability experiment:
// hash load, then 8×WorkloadOps of YCSB A (50/50 read/update) on the
// SSD-100G class with inline background work — fully deterministic on
// the virtual clock — scoring each engine's timeline on throughput
// variance and worst-window tail latency.  The per-window numbers come
// from the timeline sampler, scoped to the measured phase.
func (s Scale) Stability() (Table, error) {
	t := Table{
		Title: "Stability: sustained YCSB-A, SSD-100G, per-window variance",
		Header: []string{"config", "windows", "win(ms)", "mean-kops", "cv",
			"worst-kops", "worst-p99", "worst-p99.9", "stall%"},
	}
	for _, e := range paperEngines {
		cfg := s.ConfigFor(e, ClassSSD100G, 1)
		cfg.Inline = true
		env, err := NewEnv(cfg)
		if err != nil {
			return t, err
		}
		if _, err := env.HashLoad(); err != nil {
			env.Close()
			return t, err
		}
		// Score only the sustained phase: restart the timeline after the
		// load so its windows cover the measured run alone.
		env.ResetTimeline(50*time.Microsecond, 0)
		if _, err := env.RunWorkload(ycsb.WorkloadA, 8*s.WorkloadOps); err != nil {
			env.Close()
			return t, err
		}
		sc := ScoreTimeline(env.Timeline())
		env.Stability = &sc
		t.Rows = append(t.Rows, []string{
			engineTag(e, 1),
			fmt.Sprint(sc.Windows),
			fmt.Sprintf("%.2f", float64(sc.Window.Microseconds())/1000),
			fmt.Sprintf("%.1f", sc.MeanOpsPerSec/1000),
			f2(sc.ThroughputCV),
			fmt.Sprintf("%.1f", sc.WorstWindowOpsPerSec/1000),
			ms(sc.WorstP99),
			ms(sc.WorstP999),
			fmt.Sprintf("%.1f", 100*sc.MeanStallFrac),
		})
		env.Close()
	}
	return t, nil
}
