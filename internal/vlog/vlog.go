package vlog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"iamdb/internal/corrupt"
	"iamdb/internal/vfs"
)

// ErrCorrupt is the sentinel wrapped by every typed corruption error
// this package raises, for errors.Is.
var ErrCorrupt = ErrBad

// SegmentName builds the canonical segment file name for a number.
func SegmentName(dir string, num uint64) string {
	return fmt.Sprintf("%s/%06d.vlg", dir, num)
}

// SegmentSuffix is the file-name suffix segments carry; scrub,
// checkpoint and the rot matrix recognise value-log files by it.
const SegmentSuffix = ".vlg"

// ParseSegmentName recovers a segment number from a base name like
// "000002.vlg".
func ParseSegmentName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, SegmentSuffix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Log is one DB's (or one shard's) value log.  Appends are serialized
// by the commit leader and the GC goroutine through mu; Read is safe
// for any number of concurrent readers.  Discard statistics take their
// own leaf lock because engines report drops mid-merge with tree locks
// held.
//
// The lock hierarchy (checked by iamlint's lockorder pass): delMu
// pauses segment deletion and nests outside mu so a checkpoint can pin
// every segment while it copies; statsMu is a leaf.
//
//iamlint:lockorder vlog.Log.delMu < vlog.Log.mu; vlog.Log.delMu < vlog.Log.statsMu; vlog.Log.mu < vfs.*; vlog.Log.statsMu leaf
type Log struct {
	fs      vfs.FS
	dir     string
	segSize int64

	mu      sync.Mutex
	head    vfs.File
	headNum uint64
	headOff int64
	dirty   bool
	files   map[uint64]vfs.File // open handles, head included
	written map[uint64]int64    // record bytes per segment (GC density base)
	buf     []byte              // append scratch

	statsMu sync.Mutex
	discard map[uint64]int64 // dropped record bytes per segment
	bad     map[uint64]bool  // segments GC must skip (detected damage)

	// delMu serializes segment deletion against checkpoint copies: a
	// checkpoint holds it across the copy loop so no segment listed for
	// the snapshot disappears mid-copy.
	delMu sync.Mutex
}

// OpenStats reports what Open found.
type OpenStats struct {
	// Segments is the number of segment files.
	Segments int
	// SuspectBytes counts trailing head-segment bytes the open scan
	// could not parse — a torn tail after a crash or rotted records.
	// New appends go after them; reads into them fail typed.  The DB
	// layer reports them as a detection, like truncated WAL tails.
	SuspectBytes int64
	// SuspectOffset is where the unparseable tail starts (meaningful
	// when SuspectBytes > 0).
	SuspectOffset int64
}

// Open opens (creating as needed) the value log in dir.  The head
// segment — the one appends continue into — is scanned record by
// record to rebuild the append offset and surface torn or rotted
// tails; older segments are validated lazily, read by read.
func Open(fs vfs.FS, dir string, segSize int64) (*Log, OpenStats, error) {
	l := &Log{
		fs: fs, dir: dir, segSize: segSize,
		files:   make(map[uint64]vfs.File),
		written: make(map[uint64]int64),
		discard: make(map[uint64]int64),
		bad:     make(map[uint64]bool),
	}
	names, err := fs.List(dir)
	if err != nil {
		return nil, OpenStats{}, err
	}
	var segs []uint64
	for _, name := range names {
		if n, ok := ParseSegmentName(name); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	var st OpenStats
	for _, n := range segs {
		f, err := fs.Open(SegmentName(dir, n))
		if err != nil {
			l.closeAll()
			return nil, OpenStats{}, err
		}
		l.files[n] = f
		size, err := f.Size()
		if err != nil {
			l.closeAll()
			return nil, OpenStats{}, err
		}
		l.written[n] = size - int64(HeaderSize)
		if l.written[n] < 0 {
			l.written[n] = 0
		}
	}
	st.Segments = len(segs)
	if len(segs) == 0 {
		if err := l.createSegmentLocked(1); err != nil {
			return nil, OpenStats{}, err
		}
		st.Segments = 1
		return l, st, nil
	}
	head := segs[len(segs)-1]
	valid, suspect, headerOK, err := l.scanHead(head)
	if err != nil {
		l.closeAll()
		return nil, OpenStats{}, err
	}
	l.headNum = head
	l.head = l.files[head]
	size, err := l.head.Size()
	if err != nil {
		l.closeAll()
		return nil, OpenStats{}, err
	}
	if !headerOK {
		// A header shorter than HeaderSize is a torn creation: records
		// are only synced after the header write, so nothing durable can
		// live here — rewrite the header in place and continue.  A
		// full-size header with wrong magic could be rotted synced bytes:
		// quarantine the whole segment as suspect (CRC'd records inside
		// still resolve by direct read) and start a fresh head after it.
		if size < int64(HeaderSize) {
			if _, err := l.head.WriteAt([]byte(Magic), 0); err != nil {
				l.closeAll()
				return nil, OpenStats{}, err
			}
			l.headOff = int64(HeaderSize)
			l.written[head] = 0
			l.dirty = true
			return l, st, nil
		}
		st.SuspectBytes = size
		st.SuspectOffset = 0
		l.statsMu.Lock()
		l.bad[head] = true
		l.statsMu.Unlock()
		if err := l.createSegmentLocked(head + 1); err != nil {
			l.closeAll()
			return nil, OpenStats{}, err
		}
		st.Segments++
		return l, st, nil
	}
	// Appends continue after everything present — the suspect region
	// is left in place (reads into it fail with typed errors; with
	// sync-before-WAL ordering no surviving pointer can reference it).
	l.headOff = size
	if suspect > 0 {
		st.SuspectBytes = suspect
		st.SuspectOffset = valid
	}
	return l, st, nil
}

// scanHead walks the head segment's records, returning the offset up
// to which they parse and how many trailing bytes do not.  A short or
// mismatched header makes every byte untrustworthy; headerOK=false
// reports that without failing the open (a crash can tear the header
// write itself, before any record could have been acknowledged).
func (l *Log) scanHead(num uint64) (validLen, suspect int64, headerOK bool, err error) {
	f := l.files[num]
	size, err := f.Size()
	if err != nil {
		return 0, 0, false, err
	}
	if size < int64(HeaderSize) {
		return 0, size, false, nil
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return 0, 0, false, err
	}
	if string(data[:HeaderSize]) != Magic {
		return 0, size, false, nil
	}
	off := int64(HeaderSize)
	for off < size {
		_, _, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			return off, size - off, true, nil
		}
		off += int64(n)
	}
	return off, 0, true, nil
}

// createSegmentLocked starts a fresh head segment.  Caller holds mu
// (or is Open, before the log is shared).
func (l *Log) createSegmentLocked(num uint64) error {
	f, err := l.fs.Create(SegmentName(l.dir, num))
	if err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte(Magic), 0); err != nil {
		_ = f.Close()
		return err
	}
	l.files[num] = f
	l.written[num] = 0
	l.head = f
	l.headNum = num
	l.headOff = int64(HeaderSize)
	l.dirty = true
	return nil
}

// Append writes one record and returns its pointer.  The record is not
// durable until Sync; the DB's commit leader syncs before it appends
// the pointer batch to the WAL, so a surviving pointer always has a
// surviving value underneath it.
func (l *Log) Append(key, val []byte) (Pointer, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.headOff >= l.segSize && l.headOff > int64(HeaderSize) {
		// Seal the head: sync it so every record in a non-head segment
		// is durable (GC and deletion reason about sealed segments
		// only), then start the next one.
		if l.dirty {
			if err := l.head.Sync(); err != nil {
				return Pointer{}, err
			}
			l.dirty = false
		}
		if err := l.createSegmentLocked(l.headNum + 1); err != nil {
			return Pointer{}, err
		}
	}
	l.buf = AppendRecord(l.buf[:0], key, val)
	if _, err := l.head.WriteAt(l.buf, l.headOff); err != nil {
		return Pointer{}, err
	}
	p := Pointer{Segment: l.headNum, Offset: l.headOff, Len: uint32(len(l.buf))}
	l.headOff += int64(len(l.buf))
	l.written[l.headNum] += int64(len(l.buf))
	l.dirty = true
	return p, nil
}

// Sync makes every appended record durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty {
		return nil
	}
	if err := l.head.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// handle returns the open file for a segment, opening it on demand.
func (l *Log) handle(num uint64) (vfs.File, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if f, ok := l.files[num]; ok {
		return f, nil
	}
	f, err := l.fs.Open(SegmentName(l.dir, num))
	if err != nil {
		return nil, corrupt.New(corrupt.LayerVLog, SegmentName(l.dir, num), -1, ErrBad,
			fmt.Sprintf("segment missing: %v", err))
	}
	l.files[num] = f
	return f, nil
}

// maxRecordLen bounds a pointer's claimed record length so a rotted
// pointer cannot drive a giant allocation.
const maxRecordLen = 1 << 30

// Read resolves one pointer, verifying the record CRC and that the
// stored key matches the key the pointer was found under.  The
// returned value is a fresh allocation the caller may retain.
func (l *Log) Read(p Pointer, wantKey []byte) ([]byte, error) {
	path := SegmentName(l.dir, p.Segment)
	if p.Len < uint32(crcLen+2) || p.Len > maxRecordLen {
		return nil, corrupt.New(corrupt.LayerVLog, path, p.Offset, ErrBad,
			fmt.Sprintf("implausible record length %d", p.Len))
	}
	f, err := l.handle(p.Segment)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, p.Len)
	if _, err := f.ReadAt(buf, p.Offset); err != nil {
		return nil, corrupt.New(corrupt.LayerVLog, path, p.Offset, ErrBad,
			fmt.Sprintf("record read failed: %v", err))
	}
	key, val, n, err := DecodeRecord(buf)
	if err != nil || n != int(p.Len) {
		return nil, corrupt.New(corrupt.LayerVLog, path, p.Offset, ErrBad,
			"record failed CRC or framing check")
	}
	if string(key) != string(wantKey) {
		return nil, corrupt.New(corrupt.LayerVLog, path, p.Offset, ErrBad,
			"record key does not match pointer's key")
	}
	return val, nil
}

// ScanFile walks every record of one segment file, calling fn with
// slices that alias an internal buffer.  Used by GC, Scrub and the
// iamdump vlog subcommand.  A header or record failure yields a typed
// corruption error; scanned reports the bytes validated so far.
func ScanFile(fs vfs.FS, path string, fn func(key, val []byte, off int64, n int) error) (scanned int64, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	if size < int64(HeaderSize) {
		return 0, corrupt.New(corrupt.LayerVLog, path, 0, ErrBad,
			fmt.Sprintf("segment shorter than header: %d bytes", size))
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return 0, err
	}
	if string(data[:HeaderSize]) != Magic {
		return int64(HeaderSize), corrupt.New(corrupt.LayerVLog, path, 0, ErrBad,
			"bad segment magic")
	}
	off := int64(HeaderSize)
	for off < size {
		key, val, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			return off, corrupt.New(corrupt.LayerVLog, path, off, ErrBad,
				fmt.Sprintf("record failed CRC or framing check (%v)", derr))
		}
		if fn != nil {
			if err := fn(key, val, off, n); err != nil {
				return off, err
			}
		}
		off += int64(n)
	}
	return off, nil
}

// ScanSegment walks one of this log's segments.
func (l *Log) ScanSegment(num uint64, fn func(key, val []byte, p Pointer) error) error {
	_, err := ScanFile(l.fs, SegmentName(l.dir, num), func(key, val []byte, off int64, n int) error {
		return fn(key, val, Pointer{Segment: num, Offset: off, Len: uint32(n)})
	})
	return err
}

// NoteDiscard credits n dropped record bytes to a segment.  Engines
// call it from merge filters with tree locks held, so it takes only
// the stats leaf lock.
func (l *Log) NoteDiscard(seg uint64, n int64) {
	l.statsMu.Lock()
	l.discard[seg] += n
	l.statsMu.Unlock()
}

// MarkBad fences a segment off from GC after detected damage, so the
// collector does not loop on an unreadable segment.
func (l *Log) MarkBad(seg uint64) {
	l.statsMu.Lock()
	l.bad[seg] = true
	l.statsMu.Unlock()
}

// PickGC returns the sealed segment with the highest discard ratio at
// or above minRatio, if any — the coldest candidate by live density.
func (l *Log) PickGC(minRatio float64) (seg uint64, ok bool) {
	l.mu.Lock()
	head := l.headNum
	type cand struct {
		num     uint64
		written int64
	}
	var cands []cand
	for num, w := range l.written {
		if num != head && w > 0 {
			cands = append(cands, cand{num, w})
		}
	}
	l.mu.Unlock()
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	best := minRatio
	for _, c := range cands {
		if l.bad[c.num] {
			continue
		}
		ratio := float64(l.discard[c.num]) / float64(c.written)
		if ratio >= best {
			best, seg, ok = ratio, c.num, true
		}
	}
	return seg, ok
}

// RemoveSegment deletes a fully-rewritten segment.  Deletion nests
// inside delMu so a concurrent checkpoint holding HoldDeletes keeps
// every listed segment on disk until its copy completes.
func (l *Log) RemoveSegment(num uint64) error {
	l.delMu.Lock()
	defer l.delMu.Unlock()
	l.mu.Lock()
	if num == l.headNum {
		l.mu.Unlock()
		return fmt.Errorf("vlog: refusing to remove head segment %d", num)
	}
	if f, ok := l.files[num]; ok {
		_ = f.Close()
		delete(l.files, num)
	}
	delete(l.written, num)
	l.mu.Unlock()
	l.statsMu.Lock()
	delete(l.discard, num)
	delete(l.bad, num)
	l.statsMu.Unlock()
	return l.fs.Remove(SegmentName(l.dir, num))
}

// HoldDeletes pauses segment deletion until ReleaseDeletes; checkpoint
// holds it across its copy loop.  The hold is an intentional
// cross-function handoff: the paired unlock lives in ReleaseDeletes.
//
//iamlint:ignore lockcheck
func (l *Log) HoldDeletes()    { l.delMu.Lock() }
func (l *Log) ReleaseDeletes() { l.delMu.Unlock() }

// Segments returns the current segment numbers, ascending.
func (l *Log) Segments() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, 0, len(l.written))
	for num := range l.written {
		out = append(out, num)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Head reports the current head segment number.
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.headNum
}

// Dir reports the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// Stats summarizes the log for metrics reporting.
type Stats struct {
	// Segments is the live segment count.
	Segments int
	// Bytes is the record payload across segments (headers excluded).
	Bytes int64
	// DiscardBytes is the dropped-record bytes engines have reported
	// against live segments — the fuel of density GC.
	DiscardBytes int64
}

// Stats snapshots the log's size and discard accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	var st Stats
	st.Segments = len(l.written)
	segs := make([]uint64, 0, len(l.written))
	for num, w := range l.written {
		st.Bytes += w
		segs = append(segs, num)
	}
	l.mu.Unlock()
	l.statsMu.Lock()
	for _, num := range segs {
		st.DiscardBytes += l.discard[num]
	}
	l.statsMu.Unlock()
	return st
}

// SpaceUsed reports on-disk bytes, headers included.
func (l *Log) SpaceUsed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, w := range l.written {
		n += w + int64(HeaderSize)
	}
	return n
}

// closeAll closes every handle (open-failure cleanup).
func (l *Log) closeAll() {
	for _, f := range l.files {
		_ = f.Close()
	}
	l.files = map[uint64]vfs.File{}
}

// Close syncs the head (a clean shutdown leaves every acknowledged
// record durable) and closes every handle.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	if l.dirty && l.head != nil {
		first = l.head.Sync()
		l.dirty = false
	}
	for _, f := range l.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	l.files = map[uint64]vfs.File{}
	l.head = nil
	return first
}
