package ycsb

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func TestKeyNameHashScatters(t *testing.T) {
	// Hash-load keys must be unordered: consecutive record numbers
	// should not produce sorted keys.
	sortedRuns := 0
	for i := uint64(0); i < 999; i++ {
		if bytes.Compare(KeyName(i), KeyName(i+1)) < 0 {
			sortedRuns++
		}
	}
	if sortedRuns > 700 || sortedRuns < 300 {
		t.Errorf("hash keys look ordered: %d/999 ascending pairs", sortedRuns)
	}
	// Ordered keys are ordered.
	for i := uint64(0); i < 999; i++ {
		if bytes.Compare(OrderedKeyName(i), OrderedKeyName(i+1)) >= 0 {
			t.Fatal("ordered keys out of order")
		}
	}
}

func TestKeyNameNoCollisionsSmall(t *testing.T) {
	seen := make(map[string]bool, 100000)
	for i := uint64(0); i < 100000; i++ {
		k := string(KeyName(i))
		if seen[k] {
			t.Fatalf("collision at %d", i)
		}
		seen[k] = true
	}
}

func TestZipfianSkew(t *testing.T) {
	z := newZipfian(1000)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		r := z.next(rng)
		if r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 should be far hotter than rank 500.
	if counts[0] < 20*counts[500] && counts[500] > 0 {
		t.Errorf("not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// Hottest ~10 ranks should dominate.
	sum10 := 0
	for i := 0; i < 10; i++ {
		sum10 += counts[i]
	}
	if float64(sum10)/draws < 0.15 {
		t.Errorf("top-10 mass %.3f too small for zipf 0.99", float64(sum10)/draws)
	}
}

func TestZipfianGrow(t *testing.T) {
	z := newZipfian(100)
	z.grow(200)
	if z.items != 200 {
		t.Fatalf("items %d", z.items)
	}
	want := zetaStatic(200, zipfTheta)
	if diff := z.zetan - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("incremental zeta %f want %f", z.zetan, want)
	}
	// Shrinking is a no-op.
	z.grow(50)
	if z.items != 200 {
		t.Fatal("shrank")
	}
}

func TestWorkloadMixes(t *testing.T) {
	cases := []struct {
		w      Workload
		counts map[OpType]float64 // expected proportion
	}{
		{WorkloadA, map[OpType]float64{OpRead: 0.5, OpUpdate: 0.5}},
		{WorkloadB, map[OpType]float64{OpRead: 0.95, OpUpdate: 0.05}},
		{WorkloadC, map[OpType]float64{OpRead: 1.0}},
		{WorkloadD, map[OpType]float64{OpRead: 0.95, OpInsert: 0.05}},
		{WorkloadE, map[OpType]float64{OpScan: 0.95, OpInsert: 0.05}},
		{WorkloadF, map[OpType]float64{OpRead: 0.5, OpRMW: 0.5}},
		{WorkloadG, map[OpType]float64{OpScan: 0.95, OpInsert: 0.05}},
	}
	const draws = 50000
	for _, c := range cases {
		t.Run(c.w.Name, func(t *testing.T) {
			r := NewRunner(c.w, 10000, 7)
			got := map[OpType]int{}
			for i := 0; i < draws; i++ {
				op := r.Next()
				got[op.Type]++
				if op.Type == OpScan {
					if op.ScanLen < 1 || op.ScanLen > c.w.MaxScanLen {
						t.Fatalf("scan len %d", op.ScanLen)
					}
				}
				if len(op.Key) == 0 {
					t.Fatal("empty key")
				}
			}
			for typ, want := range c.counts {
				frac := float64(got[typ]) / draws
				if frac < want-0.02 || frac > want+0.02 {
					t.Errorf("%v: %.3f want %.2f", typ, frac, want)
				}
			}
		})
	}
}

func TestWorkloadDPrefersLatest(t *testing.T) {
	r := NewRunner(WorkloadD, 10000, 3)
	// Run inserts to move the frontier, then check reads cluster near
	// the newest records.
	recent, older := 0, 0
	for i := 0; i < 30000; i++ {
		op := r.Next()
		if op.Type != OpRead {
			continue
		}
		// Reverse-map: find rank by scanning is too slow; instead use
		// the fact that latest reads should mostly hit keys from the
		// most recent 10% of the insert space.
		for idx := r.insertSeq - 1; ; idx-- {
			if bytes.Equal(op.Key, KeyName(idx)) {
				if r.insertSeq-idx <= r.insertSeq/10 {
					recent++
				} else {
					older++
				}
				break
			}
			if idx == 0 || r.insertSeq-idx > 100 {
				older++ // deep key: count as older without full scan
				break
			}
		}
	}
	if recent < older {
		t.Errorf("latest distribution not recent-biased: %d recent vs %d older", recent, older)
	}
}

func TestScrambledZipfianCoversKeyspace(t *testing.T) {
	r := NewRunner(WorkloadC, 1000, 9)
	seen := map[string]bool{}
	for i := 0; i < 20000; i++ {
		seen[string(r.Next().Key)] = true
	}
	if len(seen) < 300 {
		t.Errorf("only %d distinct keys touched", len(seen))
	}
	// All keys must be valid existing records.
	valid := map[string]bool{}
	for i := uint64(0); i < 1000; i++ {
		valid[string(KeyName(i))] = true
	}
	for k := range seen {
		if !valid[k] {
			t.Fatalf("generated non-existent key %s", k)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		if w, ok := ByName(n); !ok || w.Name != n {
			t.Fatalf("ByName(%s) failed", n)
		}
	}
	if _, ok := ByName("Z"); ok {
		t.Fatal("ByName(Z) should fail")
	}
}

func TestValueDeterministic(t *testing.T) {
	a := Value(rand.New(rand.NewSource(1)), 1024)
	b := Value(rand.New(rand.NewSource(1)), 1024)
	if !bytes.Equal(a, b) {
		t.Fatal("value not deterministic for fixed seed")
	}
	if len(a) != 1024 {
		t.Fatal("size")
	}
}

func TestRunnerDeterminism(t *testing.T) {
	r1 := NewRunner(WorkloadA, 5000, 42)
	r2 := NewRunner(WorkloadA, 5000, 42)
	for i := 0; i < 1000; i++ {
		a, b := r1.Next(), r2.Next()
		if a.Type != b.Type || !bytes.Equal(a.Key, b.Key) || a.ScanLen != b.ScanLen {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestInsertsExtendKeyspace(t *testing.T) {
	r := NewRunner(WorkloadD, 100, 5)
	keys := map[string]bool{}
	inserts := 0
	for i := 0; i < 5000 && inserts < 50; i++ {
		op := r.Next()
		if op.Type == OpInsert {
			if keys[string(op.Key)] {
				t.Fatal("duplicate insert key")
			}
			keys[string(op.Key)] = true
			inserts++
		}
	}
	if inserts < 50 {
		t.Fatalf("only %d inserts", inserts)
	}
	// Keys must be brand-new (beyond the initial 100 records).
	var initial []string
	for i := uint64(0); i < 100; i++ {
		initial = append(initial, string(KeyName(i)))
	}
	sort.Strings(initial)
	for k := range keys {
		if idx := sort.SearchStrings(initial, k); idx < len(initial) && initial[idx] == k {
			t.Fatalf("insert reused existing key %s", k)
		}
	}
}
