package wal

import (
	"errors"
	"testing"

	"iamdb/internal/corrupt"
	"iamdb/internal/vfs"
)

// FuzzWALReplay feeds arbitrary bytes to strict replay: it must never
// panic, and its error is always the typed corruption error — valid
// records come back byte-identical, everything else is attributed
// damage or a tolerated torn tail, never an unexplained failure.
func FuzzWALReplay(f *testing.F) {
	seed := func(recs ...[]byte) []byte {
		fs := vfs.NewMemFS()
		wf, err := fs.Create("seed.log")
		if err != nil {
			f.Fatal(err)
		}
		w := NewWriter(wf)
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				f.Fatal(err)
			}
		}
		size, _ := wf.Size()
		buf := make([]byte, size)
		if _, err := wf.ReadAt(buf, 0); err != nil {
			f.Fatal(err)
		}
		wf.Close()
		return buf
	}
	f.Add([]byte{})
	f.Add(seed([]byte("hello")))
	f.Add(seed([]byte("one"), []byte("two"), make([]byte, 300)))
	torn := seed([]byte("first"), []byte("second"))
	f.Add(torn[:len(torn)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.NewMemFS()
		wf, err := fs.Create("f.log")
		if err != nil {
			t.Fatal(err)
		}
		defer wf.Close()
		if _, err := wf.Write(data); err != nil {
			t.Fatal(err)
		}
		var records int
		dropped, rerr := ReplayAllStrict(wf, "f.log", func(rec []byte) error {
			records++
			return nil
		})
		if dropped < 0 {
			t.Fatalf("negative dropped byte count %d", dropped)
		}
		if rerr != nil {
			var ce *corrupt.Error
			if !errors.As(rerr, &ce) {
				t.Fatalf("replay failed with untyped error: %v", rerr)
			}
			if ce.Path == "" {
				t.Fatalf("typed replay error names no file: %v", rerr)
			}
		}
	})
}
