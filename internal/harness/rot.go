package harness

// Corruption-point matrix (the latent-fault sibling of the crash
// matrix in crash.go).  A RotWorkload builds a deterministic store,
// closes it cleanly, damages exactly one byte of the synced image at a
// chosen (file × offset) point, reopens, and checks the rot oracle:
//
//   - the reopen either succeeds or fails with a typed corruption
//     error naming the damaged file — never a panic, never an
//     unattributed failure,
//   - every key the reopened store serves returns bytes it actually
//     acknowledged at some point (wrong data is never forgiven;
//     detection does not launder reads),
//   - an acknowledged key may be missing or stale only when the store
//     *detected* corruption (typed read error, open-time suspicion, or
//     quarantine) — silent loss is a violation,
//   - when the damage was provably harmless (zeroing an already-zero
//     byte) the store must behave as if nothing happened: every key
//     exact, nothing detected, nothing quarantined — quarantine must
//     never hide an uncorrupted table.
//
// Points are enumerated per trial from that trial's own store image
// (deterministic builds make the landscapes identical), covering file
// heads, interior fractions and tail regions — footers, final WAL
// blocks and manifest tails rot in practice more than anywhere else.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"iamdb"
	"iamdb/internal/vfs"
)

// rotKeyspace is the number of distinct user keys the scripted build
// touches; overwrites and deletes make recovery resolve versions.
const rotKeyspace = 300

// RotWorkload describes one corruption-matrix scenario.
type RotWorkload struct {
	// Engine picks the storage tree under test.
	Engine iamdb.EngineKind
	// Mode selects flip or zero damage.
	Mode vfs.RotMode
	// Seed fixes the scripted build (default 1).
	Seed int64
	// Ops is the scripted operation count (default 500).
	Ops int
	// Shards > 1 builds and damages a range-sharded store, splitting
	// the keyspace evenly so every shard's files enter the matrix.
	Shards int
	// ValueThreshold > 0 builds the store with key-value separation, so
	// the matrix's per-file point enumeration also damages value-log
	// segments (they live in the same directories, so List picks them
	// up) and reads must detect rotted values behind live pointers.
	ValueThreshold int
}

func (w RotWorkload) withDefaults() RotWorkload {
	if w.Seed == 0 {
		w.Seed = 1
	}
	if w.Ops == 0 {
		w.Ops = 500
	}
	return w
}

// rotOracle is the acknowledged-history model: latest state plus every
// value each key ever held, because damage that rolls durable state
// back (a truncated manifest tail) legally resurfaces older acked
// values once the store has flagged the corruption.
type rotOracle struct {
	latest  map[string]string // key -> last acked value
	deleted map[string]bool   // key -> last op was an acked delete
	hist    map[string]map[string]bool
}

func newRotOracle() *rotOracle {
	return &rotOracle{
		latest:  make(map[string]string),
		deleted: make(map[string]bool),
		hist:    make(map[string]map[string]bool),
	}
}

func (o *rotOracle) put(k, v string) {
	o.latest[k] = v
	o.deleted[k] = false
	if o.hist[k] == nil {
		o.hist[k] = make(map[string]bool)
	}
	o.hist[k][v] = true
}

func (o *rotOracle) del(k string) {
	delete(o.latest, k)
	o.deleted[k] = true
}

// openRotDB opens the deliberately tiny store: a few hundred operations
// exercise WAL rotation, flushes, compaction cascades and splits.
// InlineBackground makes the build single-threaded and therefore the
// on-disk landscape deterministic, so every trial of a workload sees
// the same files at the same sizes.
func openRotDB(fs vfs.FS, eng iamdb.EngineKind, shards, valueThreshold int) (*iamdb.DB, error) {
	o := &iamdb.Options{
		Engine:       eng,
		FS:           fs,
		MemtableSize: 2 * 1024, CacheSize: 64 * 1024,
		MemBudget: 8 * 1024, Fanout: 4, K: 2,
		FileSize: 4 * 1024, LevelSizeBase: 16 * 1024,
		L0CompactTrigger: 2,
		SyncWrites:       true,
		InlineBackground: true,
		BgRetryLimit:     2,
		BgBackoff:        func(failures int) bool { return failures < 3 },
	}
	if valueThreshold > 0 {
		o.ValueThreshold = valueThreshold
		// Tiny segments so the built store has several to damage.
		o.VlogSegmentSize = 2 * 1024
	}
	if shards > 1 {
		o.Shards = shards
		o.ShardSplits = evenKeySplits(shards, rotKeyspace)
	}
	return iamdb.Open("db", o)
}

// build writes the scripted workload and closes the store cleanly,
// flushing first so the acknowledged state is all in the engine — a
// rotted WAL tail must then never cost an acknowledged key.
func (w RotWorkload) build(fs vfs.FS) (*rotOracle, error) {
	db, err := openRotDB(fs, w.Engine, w.Shards, w.ValueThreshold)
	if err != nil {
		return nil, fmt.Errorf("build open: %w", err)
	}
	o := newRotOracle()
	rng := rand.New(rand.NewSource(w.Seed))
	for i := 0; i < w.Ops; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(rotKeyspace))
		if i%17 == 13 {
			if err := db.Delete([]byte(k)); err != nil {
				_ = db.Close()
				return nil, fmt.Errorf("build delete: %w", err)
			}
			o.del(k)
			continue
		}
		v := fmt.Sprintf("val-%06d-%s", i, k)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			_ = db.Close()
			return nil, fmt.Errorf("build put: %w", err)
		}
		o.put(k, v)
	}
	if err := db.Flush(); err != nil {
		_ = db.Close()
		return nil, fmt.Errorf("build flush: %w", err)
	}
	// A final unflushed batch leaves real records in the live WAL, so
	// log-rot trials exercise recovery replay rather than an empty file.
	// SyncWrites means these are acknowledged durable too.
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(rotKeyspace))
		v := fmt.Sprintf("val-tail%02d-%s", i, k)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			_ = db.Close()
			return nil, fmt.Errorf("build tail put: %w", err)
		}
		o.put(k, v)
	}
	if err := db.Close(); err != nil {
		return nil, fmt.Errorf("build close: %w", err)
	}
	return o, nil
}

// RotPoint is one corruption target in a built store.
type RotPoint struct {
	Path string
	Off  int64
}

// rotPoints enumerates the matrix points of a built store: for every
// durable file, its head bytes, interior fractions, and a dense tail
// region (footer slots, WAL block tails, the manifest's last records).
// MemFS.List is non-recursive, so a sharded store's shard-NNN
// subdirectories are enumerated explicitly alongside the root (which
// still contributes the SHARDS routing marker).
func rotPoints(fs vfs.FS, dir string, shards int) ([]RotPoint, error) {
	dirs := []string{dir}
	for i := 0; i < shards; i++ {
		dirs = append(dirs, fmt.Sprintf("%s/shard-%03d", dir, i))
	}
	var pts []RotPoint
	for _, d := range dirs {
		sub, err := rotPointsIn(fs, d)
		if err != nil {
			return nil, err
		}
		pts = append(pts, sub...)
	}
	return pts, nil
}

func rotPointsIn(fs vfs.FS, dir string) ([]RotPoint, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var pts []RotPoint
	for _, name := range names {
		path := dir + "/" + name
		f, err := fs.Open(path)
		if err != nil {
			return nil, err
		}
		size, err := f.Size()
		_ = f.Close()
		if err != nil {
			return nil, err
		}
		if size == 0 {
			continue
		}
		offs := map[int64]bool{}
		for _, o := range []int64{0, 1, 2, size / 8, size / 4, size / 3, 3 * size / 8,
			size / 2, 5 * size / 8, 2 * size / 3, 3 * size / 4, 7 * size / 8} {
			if o >= 0 && o < size {
				offs[o] = true
			}
		}
		for _, d := range []int64{1, 2, 3, 5, 9, 13, 17, 25, 33, 41, 48} {
			if size-d >= 0 {
				offs[size-d] = true
			}
		}
		sorted := make([]int64, 0, len(offs))
		for o := range offs {
			sorted = append(sorted, o)
		}
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		for _, o := range sorted {
			pts = append(pts, RotPoint{Path: path, Off: o})
		}
	}
	return pts, nil
}

// PointCount builds the store once and reports how many matrix points
// it exposes, for sizing a sweep.
func (w RotWorkload) PointCount() (int, error) {
	w = w.withDefaults()
	fs := vfs.NewMemFS()
	if _, err := w.build(fs); err != nil {
		return 0, err
	}
	pts, err := rotPoints(fs, "db", w.Shards)
	if err != nil {
		return 0, err
	}
	return len(pts), nil
}

// Trial builds the store, damages point index slot (mod the point
// count), reopens and checks the oracle.  A non-nil error is an oracle
// violation or an infrastructure failure.
func (w RotWorkload) Trial(slot int) error {
	w = w.withDefaults()
	fs := vfs.NewMemFS()
	o, err := w.build(fs)
	if err != nil {
		return err
	}
	pts, err := rotPoints(fs, "db", w.Shards)
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		return fmt.Errorf("no corruption points in built store")
	}
	p := pts[slot%len(pts)]
	_, _, changed, err := vfs.CorruptByte(fs, p.Path, p.Off, w.Mode)
	if err != nil {
		return fmt.Errorf("corrupt %s@%d: %w", p.Path, p.Off, err)
	}

	db, err := openRotDB(fs, w.Engine, w.Shards, w.ValueThreshold)
	if err != nil {
		ce := iamdb.AsCorruption(err)
		if ce == nil {
			return fmt.Errorf("%s %s@%d: open failed with untyped error: %v",
				w.Mode, p.Path, p.Off, err)
		}
		if ce.Path == "" {
			return fmt.Errorf("%s %s@%d: typed open failure names no file: %v",
				w.Mode, p.Path, p.Off, err)
		}
		if !changed {
			return fmt.Errorf("%s %s@%d: open failed after provably harmless damage: %v",
				w.Mode, p.Path, p.Off, err)
		}
		return nil // detected loudly at open; acceptable outcome
	}
	verr := w.verify(db, o, p, changed)
	_ = db.Close()
	return verr
}

// verify checks the reopened store against the oracle with the
// forgiveness rules from the package comment.
func (w RotWorkload) verify(db *iamdb.DB, o *rotOracle, p RotPoint, changed bool) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%s %s@%d: %s", w.Mode, p.Path, p.Off, fmt.Sprintf(format, args...))
	}
	// Deferred violations: silent-loss findings that a detection
	// flagged by the end of the pass forgives.
	var forgivable []string

	for i := 0; i < rotKeyspace; i++ {
		k := fmt.Sprintf("key%04d", i)
		v, err := db.Get([]byte(k))
		want, acked := o.latest[k]
		switch {
		case err == nil:
			if string(v) == want && acked {
				continue
			}
			if !o.hist[k][string(v)] {
				return fail("key %s returned bytes never acknowledged: %q", k, v)
			}
			// A stale (historically acked) value: legal only once the
			// store flags corruption.
			forgivable = append(forgivable, fmt.Sprintf("key %s stale: %q, want %q", k, v, want))
		case err == iamdb.ErrNotFound:
			if acked {
				forgivable = append(forgivable, fmt.Sprintf("key %s missing, want %q", k, want))
			}
		case iamdb.IsCorruption(err):
			// The typed error is itself a detection; nothing to forgive.
		default:
			return fail("key %s read failed with untyped error: %v", k, err)
		}
	}

	it := db.NewIterator()
	for it.First(); it.Valid(); it.Next() {
		k, v := string(it.Key()), string(it.Value())
		if it.Err() != nil {
			// Lazy value resolution failed typed mid-scan; the error
			// check below classifies it.  The empty value it returned
			// was never served as data.
			break
		}
		if o.latest[k] == v {
			continue
		}
		if !o.hist[k][v] {
			it.Close()
			return fail("scan surfaced never-acknowledged %s=%q", k, v)
		}
		forgivable = append(forgivable, fmt.Sprintf("scan stale %s=%q", k, v))
	}
	if err := it.Err(); err != nil && !iamdb.IsCorruption(err) {
		it.Close()
		return fail("scan failed with untyped error: %v", err)
	}
	_ = it.Close()

	// Probe write: the store stays writable unless it has detected
	// damage and degraded.
	probeErr := db.Put([]byte("zz-post-rot-probe"), []byte("ok"))

	m := db.Metrics()
	detected := m.CorruptionsDetected > 0

	if !changed {
		// Harmless damage: the store must be bit-for-bit healthy.
		if len(forgivable) > 0 {
			return fail("harmless damage but state diverged: %s", forgivable[0])
		}
		if detected || m.TablesQuarantined > 0 {
			return fail("harmless damage but store reported %d detections, %d quarantined",
				m.CorruptionsDetected, m.TablesQuarantined)
		}
		if probeErr != nil {
			return fail("harmless damage but probe write failed: %v", probeErr)
		}
		return nil
	}
	if len(forgivable) > 0 && !detected {
		return fail("silent loss, nothing detected: %s (and %d more)",
			forgivable[0], len(forgivable)-1)
	}
	if probeErr != nil {
		if !detected {
			return fail("probe write failed with no detection: %v", probeErr)
		}
		if !iamdb.IsCorruption(probeErr) && !isReadonlyErr(probeErr) {
			return fail("probe write failed with unexpected error: %v", probeErr)
		}
	}
	return nil
}

func isReadonlyErr(err error) bool {
	return errors.Is(err, iamdb.ErrReadOnly)
}
