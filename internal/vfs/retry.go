package vfs

// Retry invokes op up to attempts times, returning nil on the first
// success and the last error otherwise.  Between attempts it calls
// backoff with the 1-based number of failures so far; backoff supplies
// the pause (real sleep, virtual clock, or nothing) and returns false
// to abandon the retry loop early — e.g. when the DB is closing.  A nil
// backoff retries immediately.
//
// Retry itself never sleeps and never reads a clock, so it is safe in
// the deterministic packages; time policy belongs to the caller.
func Retry(attempts int, backoff func(failures int) bool, op func() error) error {
	var err error
	for try := 0; try < attempts; try++ {
		if err = op(); err == nil {
			return nil
		}
		if try+1 < attempts && backoff != nil && !backoff(try+1) {
			return err
		}
	}
	return err
}
