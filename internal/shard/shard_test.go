package shard

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"iamdb/internal/kv"
)

func TestDefaultSplitsRouting(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16} {
		p, err := NewPartition(n, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.Count() != n {
			t.Fatalf("n=%d: Count=%d", n, p.Count())
		}
		// Every byte prefix routes to exactly one shard, and the shard
		// index is monotone in the key.
		prev := 0
		seen := map[int]bool{}
		for b := 0; b < 256; b++ {
			idx := p.IndexOf([]byte{byte(b)})
			if idx < 0 || idx >= n {
				t.Fatalf("n=%d: byte %d routed to %d", n, b, idx)
			}
			if idx < prev {
				t.Fatalf("n=%d: routing not monotone at byte %d", n, b)
			}
			prev = idx
			seen[idx] = true
		}
		if len(seen) != n {
			t.Fatalf("n=%d: only %d shards reachable", n, len(seen))
		}
		// The empty key belongs to shard 0.
		if got := p.IndexOf(nil); got != 0 {
			t.Fatalf("n=%d: empty key routed to %d", n, got)
		}
	}
}

func TestPartitionSplitBoundaries(t *testing.T) {
	p, err := NewPartition(3, [][]byte{[]byte("g"), []byte("p")})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  string
		want int
	}{
		{"", 0}, {"a", 0}, {"fzzz", 0},
		{"g", 1}, {"gg", 1}, {"ozzz", 1},
		{"p", 2}, {"z", 2},
	}
	for _, c := range cases {
		if got := p.IndexOf([]byte(c.key)); got != c.want {
			t.Errorf("IndexOf(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := NewPartition(1, nil); err == nil {
		t.Error("1 shard accepted")
	}
	if _, err := NewPartition(3, [][]byte{[]byte("a")}); err == nil {
		t.Error("wrong split count accepted")
	}
	if _, err := NewPartition(3, [][]byte{[]byte("b"), []byte("a")}); err == nil {
		t.Error("decreasing splits accepted")
	}
	if _, err := NewPartition(3, [][]byte{[]byte("a"), []byte("a")}); err == nil {
		t.Error("duplicate splits accepted")
	}
	if _, err := NewPartition(2, [][]byte{nil}); err == nil {
		t.Error("empty split accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, splits := range [][][]byte{
		nil,
		{[]byte("key0100"), []byte("key0200"), []byte("key0300")},
		{{0x40}, {0x80}, {0xc0}},
	} {
		n := 4
		p, err := NewPartition(n, splits)
		if err != nil {
			t.Fatal(err)
		}
		enc := p.Encode()
		got, err := DecodePartition(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip mismatch: %v vs %v", got.Splits(), p.Splits())
		}
		// Determinism: encoding is byte-stable.
		if !bytes.Equal(enc, p.Encode()) {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestDecodeDetectsDamage(t *testing.T) {
	p, err := NewPartition(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := p.Encode()
	// Every single-byte flip must fail the CRC (or produce an equal
	// partition — impossible for a flip, so: must fail).
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if _, err := DecodePartition(bad); err == nil {
			t.Fatalf("flip at %d decoded cleanly", i)
		}
	}
	// Truncations fail too.
	for i := 0; i < len(enc); i++ {
		if _, err := DecodePartition(enc[:i]); err == nil {
			t.Fatalf("truncation to %d decoded cleanly", i)
		}
	}
}

func TestSequencerWatermarkPrefix(t *testing.T) {
	s := NewSequencer(100)
	t1 := s.Begin(3) // 101..103
	t2 := s.Begin(2) // 104..105
	t3 := s.Begin(1) // 106
	if t1.Base != 101 || t1.End != 103 || t2.Base != 104 || t3.End != 106 {
		t.Fatalf("allocation ranges wrong: %+v %+v %+v", t1, t2, t3)
	}
	if s.Visible() != 100 {
		t.Fatalf("visible %d before any End", s.Visible())
	}
	// Completing out of order must not expose the gap.
	s.End(t2)
	if s.Visible() != 100 {
		t.Fatalf("visible %d after out-of-order End", s.Visible())
	}
	s.End(t1)
	if s.Visible() != 105 {
		t.Fatalf("visible %d after prefix complete, want 105", s.Visible())
	}
	s.End(t3)
	if s.Visible() != 106 {
		t.Fatalf("visible %d after all complete", s.Visible())
	}
}

func TestSequencerWaitVisible(t *testing.T) {
	s := NewSequencer(0)
	tk := s.Begin(5)
	done := make(chan struct{})
	go func() {
		s.WaitVisible(tk.End)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitVisible returned before End")
	default:
	}
	s.End(tk)
	<-done
	if s.Visible() != 5 {
		t.Fatalf("visible %d", s.Visible())
	}
}

func TestSequencerConcurrent(t *testing.T) {
	s := NewSequencer(0)
	const workers, perW = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tk := s.Begin(2)
				s.End(tk)
				s.WaitVisible(tk.End)
				if v := s.Visible(); v < tk.End {
					t.Errorf("visible %d below waited-for %d", v, tk.End)
					return
				}
			}
		}()
	}
	wg.Wait()
	if want := kv.Seq(workers * perW * 2); s.Visible() != want {
		t.Fatalf("final visible %d, want %d", s.Visible(), want)
	}
}

func TestSequencerRangesContiguous(t *testing.T) {
	s := NewSequencer(7)
	var prevEnd kv.Seq = 7
	for i := 0; i < 50; i++ {
		tk := s.Begin(i%3 + 1)
		if tk.Base != prevEnd+1 {
			t.Fatalf("ticket %d base %d, want %d", i, tk.Base, prevEnd+1)
		}
		prevEnd = tk.End
		s.End(tk)
	}
	_ = fmt.Sprintf("%d", prevEnd)
}
