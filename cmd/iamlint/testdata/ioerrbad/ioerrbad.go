// Package ioerrbad silently discards storage-layer errors; every
// statement-level discard below must be flagged by the ioerr pass.
package ioerrbad

import "iamdb/internal/vfs"

func dropRemove(fs vfs.FS, name string) {
	fs.Remove(name) // want [ioerr] error result of vfs.Remove is discarded
}

func dropClose(f vfs.File) {
	f.Close() // want [ioerr] error result of vfs.File.Close is discarded
}

func dropSync(f vfs.File) {
	f.Sync() // want [ioerr] error result of vfs.Sync is discarded
}

func dropRetry(f vfs.File) {
	vfs.Retry(3, nil, f.Sync) // want [ioerr] error result of vfs.Retry is discarded
}

func handled(fs vfs.FS, name string) error {
	return fs.Remove(name)
}
