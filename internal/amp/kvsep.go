package amp

// Key-value separation closed forms.  With separation, a record's value
// is appended once to the value log and the tree's merge pipeline moves
// only a fixed-size pointer, so the value stops multiplying with the
// tree's write amplification.  Counting device bytes per record over
// its lifetime (WAL write once, then W rewrites by merges/splits):
//
//	inline:    (K + V) * (1 + W)
//	separated: (K + P) * (1 + W)  +  (H + K + V)
//
// where K is the key size, V the value size, P the in-tree pointer
// size, H the value-log record framing (CRC + length varints), and W
// the tree's write amplification (e.g. IAMWrite/LSAWrite/LSMWrite).
// The separated form pays the pointer through the full pipeline plus
// one log append of the framed key+value.  Setting the two equal and
// solving for V gives the crossover value size
//
//	V* = (H + K + P*(1 + W)) / W
//
// above which separation writes fewer device bytes per record — and
// increasingly fewer as V grows, since the V·W term is gone.

// KVSepParams capture the record geometry the formulas depend on.
type KVSepParams struct {
	// KeySize is the user key size K in bytes.
	KeySize int
	// PointerSize is the in-tree pointer record's value size P (the
	// encoded segment/offset/length triple).
	PointerSize int
	// RecordOverhead is the value-log per-record framing H: checksum
	// plus length prefixes.
	RecordOverhead int
	// TreeWriteAmp is W, the tree's write amplification — total merge
	// pipeline writes over user bytes, as the Eq. 3–5 forms predict or
	// Metrics.WriteAmplification measures.
	TreeWriteAmp float64
}

// InlineDeviceBytes is the lifetime device bytes of one inline record
// of value size v: (K+v)(1+W).
func InlineDeviceBytes(p KVSepParams, v int) float64 {
	return float64(p.KeySize+v) * (1 + p.TreeWriteAmp)
}

// SeparatedDeviceBytes is the lifetime device bytes of one separated
// record of value size v: (K+P)(1+W) + (H+K+v).
func SeparatedDeviceBytes(p KVSepParams, v int) float64 {
	return float64(p.KeySize+p.PointerSize)*(1+p.TreeWriteAmp) +
		float64(p.RecordOverhead+p.KeySize+v)
}

// CrossoverValueSize is V* = (H + K + P(1+W)) / W, the value size where
// separated and inline lifetime device bytes are equal.  Returns +Inf
// semantics via a very large value when W is zero (no rewrites means
// separation never wins on write bytes).
func CrossoverValueSize(p KVSepParams) float64 {
	if p.TreeWriteAmp <= 0 {
		return 1e18
	}
	return (float64(p.RecordOverhead) + float64(p.KeySize) +
		float64(p.PointerSize)*(1+p.TreeWriteAmp)) / p.TreeWriteAmp
}

// SeparationGain is the inline/separated device-byte ratio at value
// size v — >1 when separation wins.
func SeparationGain(p KVSepParams, v int) float64 {
	s := SeparatedDeviceBytes(p, v)
	if s == 0 {
		return 0
	}
	return InlineDeviceBytes(p, v) / s
}
