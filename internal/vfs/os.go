// The OS-backed filesystem lives in its own file: it is the single
// sanctioned boundary where the deterministic storage stack touches the
// real operating system, and the only vfs file exempt from iamlint's
// determinism pass.  Everything above it (Disk, Stats, MemFS, the
// engines) must stay replayable and go through the FS interface.
//
//iamlint:file-ignore determinism
package vfs

import (
	"os"
	"sort"
	"sync"
)

// OSFS adapts the operating-system filesystem to FS.
type OSFS struct{}

// NewOSFS returns the operating-system filesystem.
func NewOSFS() OSFS { return OSFS{} }

// osFile adapts *os.File.  Sequential Write appends at a tracked end
// position via WriteAt, because opening with O_APPEND would forbid the
// positioned writes tables and manifests rely on.
type osFile struct {
	*os.File
	mu  sync.Mutex
	end int64
}

func (f *osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (f *osFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.WriteAt(p, f.end)
	f.end += int64(n)
	return n, err
}

func (f *osFile) Truncate(n int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.File.Truncate(n); err != nil {
		return err
	}
	if f.end > n {
		f.end = n
	}
	return nil
}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{File: f}, nil
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &os.PathError{Op: "open", Path: name, Err: ErrNotFound}
		}
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return &osFile{File: f, end: st.Size()}, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Exists implements FS.
func (OSFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}
