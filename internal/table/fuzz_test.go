package table

import (
	"errors"
	"testing"

	"iamdb/internal/corrupt"
	"iamdb/internal/vfs"
)

// FuzzTableOpen feeds arbitrary bytes to the table opener: Open either
// succeeds (possibly marking the table Suspect) or fails with a typed
// corruption error; a table that opens must iterate and Verify without
// panicking, failing only with attributed errors.  This is the
// file-level counterpart of the DB-wide corruption matrix.
func FuzzTableOpen(f *testing.F) {
	buildSeed := func(mutate func([]byte)) []byte {
		fs := vfs.NewMemFS()
		tb, err := Create(fs, "seed.mst", 1, MinCapacity, Options{})
		if err != nil {
			f.Fatal(err)
		}
		if _, err := tb.Append(kvIter(7, "alpha", "beta", "gamma", "delta")); err != nil {
			f.Fatal(err)
		}
		if err := tb.Sync(); err != nil {
			f.Fatal(err)
		}
		tb.Close()
		sf, err := fs.Open("seed.mst")
		if err != nil {
			f.Fatal(err)
		}
		defer sf.Close()
		size, _ := sf.Size()
		buf := make([]byte, size)
		if _, err := sf.ReadAt(buf, 0); err != nil {
			f.Fatal(err)
		}
		if mutate != nil {
			mutate(buf)
		}
		return buf
	}
	f.Add([]byte{})
	f.Add(make([]byte, 96))
	f.Add(buildSeed(nil))
	f.Add(buildSeed(func(b []byte) { b[10] ^= 0xff }))        // data damage
	f.Add(buildSeed(func(b []byte) { b[len(b)-20] ^= 0xff })) // footer damage
	f.Add(buildSeed(func(b []byte) { b[len(b)/2] ^= 0xff }))  // interior damage

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.NewMemFS()
		tf, err := fs.Create("f.mst")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tf.Write(data); err != nil {
			t.Fatal(err)
		}
		tf.Close()

		tb, err := Open(fs, "f.mst", 1, Options{})
		if err != nil {
			var ce *corrupt.Error
			if !errors.As(err, &ce) {
				t.Fatalf("open failed with untyped error: %v", err)
			}
			return
		}
		defer tb.Close()
		_ = tb.Suspect()

		it := tb.NewIter()
		n := 0
		for it.First(); it.Valid(); it.Next() {
			_, _ = it.Key(), it.Value()
			if n++; n > 1<<17 {
				t.Fatalf("iterator never terminates (%d entries)", n)
			}
		}
		if err := it.Err(); err != nil {
			var ce *corrupt.Error
			if !errors.As(err, &ce) {
				t.Fatalf("iteration failed with untyped error: %v", err)
			}
		}
		it.Close()

		if _, err := tb.Verify(nil); err != nil {
			var ce *corrupt.Error
			if !errors.As(err, &ce) {
				t.Fatalf("verify failed with untyped error: %v", err)
			}
		}
	})
}
