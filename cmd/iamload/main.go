// Command iamload drives YCSB workloads against a real on-disk
// database directory with wall-clock timing — the companion to
// cmd/iambench's virtual-disk experiments, for measuring this library
// on actual hardware.
//
// Usage:
//
//	iamload -db ./data -engine IAM -records 100000 load
//	iamload -db ./data -engine IAM -ops 50000 run A
//	iamload -db ./data compact
//
// `load` hash-loads -records rows of -value bytes; `run <A..G>`
// executes -ops operations of a YCSB workload and prints throughput
// and latency percentiles; `compact` settles all pending compactions.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iamdb"
	"iamdb/internal/histogram"
	"iamdb/internal/ycsb"
)

func main() {
	var (
		dir     = flag.String("db", "./iamload-data", "database directory")
		engine  = flag.String("engine", "IAM", "IAM | LSA | LevelDB | RocksDB")
		records = flag.Uint64("records", 100000, "records for load / keyspace for run")
		ops     = flag.Int("ops", 50000, "operations for run")
		value   = flag.Int("value", 1024, "value size in bytes")
		ctMB    = flag.Int64("ct", 8, "memtable/node capacity in MiB")
		cacheMB = flag.Int64("cache", 64, "block cache size in MiB")
		threads = flag.Int("threads", 1, "compaction threads")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	kind, ok := map[string]iamdb.EngineKind{
		"IAM": iamdb.IAM, "LSA": iamdb.LSA,
		"LevelDB": iamdb.LevelDB, "RocksDB": iamdb.RocksDB,
	}[*engine]
	if !ok {
		fatalf("unknown engine %q", *engine)
	}

	db, err := iamdb.Open(*dir, &iamdb.Options{
		Engine:            kind,
		MemtableSize:      *ctMB << 20,
		CacheSize:         *cacheMB << 20,
		CompactionThreads: *threads,
	})
	if err != nil {
		fatalf("open: %v", err)
	}
	defer db.Close()

	switch args[0] {
	case "load":
		val := make([]byte, *value)
		for i := range val {
			val[i] = byte('a' + i%26)
		}
		hist := histogram.New()
		start := time.Now()
		for i := uint64(0); i < *records; i++ {
			t0 := time.Now()
			if err := db.Put(ycsb.KeyName(i), val); err != nil {
				fatalf("put: %v", err)
			}
			hist.Record(time.Since(t0))
			if (i+1)%100000 == 0 {
				fmt.Printf("  %d/%d...\n", i+1, *records)
			}
		}
		elapsed := time.Since(start)
		m := db.Metrics()
		fmt.Printf("loaded %d records in %v (%.0f ops/s)\n",
			*records, elapsed.Round(time.Millisecond),
			float64(*records)/elapsed.Seconds())
		fmt.Printf("latency: %v\n", hist)
		fmt.Printf("write amp (excl. WAL): %.2f, space %.1f MiB\n",
			m.WriteAmplification(), float64(m.SpaceUsed)/(1<<20))

	case "run":
		if len(args) < 2 {
			fatalf("run needs a workload letter A..G")
		}
		w, ok := ycsb.ByName(args[1])
		if !ok {
			fatalf("unknown workload %q", args[1])
		}
		runner := ycsb.NewRunner(w, *records, *seed)
		val := make([]byte, *value)
		hist := histogram.New()
		start := time.Now()
		misses := 0
		for i := 0; i < *ops; i++ {
			op := runner.Next()
			t0 := time.Now()
			switch op.Type {
			case ycsb.OpRead:
				if _, err := db.Get(op.Key); err == iamdb.ErrNotFound {
					misses++
				} else if err != nil {
					fatalf("get: %v", err)
				}
			case ycsb.OpUpdate, ycsb.OpInsert:
				if err := db.Put(op.Key, val); err != nil {
					fatalf("put: %v", err)
				}
			case ycsb.OpRMW:
				db.Get(op.Key)
				if err := db.Put(op.Key, val); err != nil {
					fatalf("put: %v", err)
				}
			case ycsb.OpScan:
				it := db.NewIterator()
				it.Seek(op.Key)
				for n := 0; it.Valid() && n < op.ScanLen; n++ {
					it.Next()
				}
				if err := it.Err(); err != nil {
					fatalf("scan: %v", err)
				}
				it.Close()
			}
			hist.Record(time.Since(t0))
		}
		elapsed := time.Since(start)
		fmt.Printf("workload %s: %d ops in %v (%.0f ops/s), %d read misses\n",
			w.Name, *ops, elapsed.Round(time.Millisecond),
			float64(*ops)/elapsed.Seconds(), misses)
		fmt.Printf("latency: %v\n", hist)

	case "compact":
		start := time.Now()
		if err := db.CompactAll(); err != nil {
			fatalf("compact: %v", err)
		}
		fmt.Printf("tuning phase finished in %v\n", time.Since(start).Round(time.Millisecond))

	default:
		fatalf("unknown command %q", args[0])
	}
}

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", a...)
	os.Exit(1)
}
