package main

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// lockorder infers the program's mutex-acquisition graph — which
// locks may be taken while which others are held, propagated through
// the call graph — and checks it against the hierarchy declared by
// //iamlint:lockorder directives.
//
// Directive grammar (clauses separated by ";"):
//
//	A < B       B may be acquired while A is held (transitive:
//	            clauses chain on identical spelling of the middle name)
//	X leaf      nothing may be acquired while X is held
//	P internal  edges between two locks both matching P are exempt
//	            (layered same-shape wrappers, e.g. the vfs stack,
//	            where per-instance nesting is safe but the
//	            type-granular analysis cannot see instances)
//
// Names match canonical lock names ("pkg.Type.field" or "pkg.var")
// case-insensitively by suffix, so "db.mu" matches "iamdb.DB.mu"; a
// trailing ".*" is a prefix wildcard ("vfs.*" matches every lock in
// package vfs).
//
// Reports: any cycle in the acquisition graph (potential deadlock),
// any acquisition while a declared leaf is held, and — once at least
// one directive exists in the linted program — any observed edge not
// covered by the declared order's transitive closure.  With no
// directives at all only cycles are reported, so the pass is adoptable
// incrementally.

// lockRule is one parsed directive clause.
type lockRule struct {
	kind string // "order", "leaf", "internal"
	a, b string // order: a < b; leaf/internal: a only
	pos  token.Position
}

// lockEdge is one observed may-hold edge: dst was (or may be)
// acquired while src was held.
type lockEdge struct {
	src, dst string
	pos      token.Pos
	via      *types.Func // immediate callee for interprocedural edges
	iface    bool        // resolution crossed an interface method
}

func parseLockDecls(pkgs []*pkg, emit func(diag)) []lockRule {
	var rules []lockRule
	for _, p := range pkgs {
		for _, d := range p.lockDecls {
			for _, clause := range strings.Split(d.text, ";") {
				clause = strings.TrimSpace(clause)
				if clause == "" {
					continue
				}
				fields := strings.Fields(clause)
				switch {
				case len(fields) == 3 && fields[1] == "<":
					rules = append(rules, lockRule{kind: "order", a: fields[0], b: fields[2], pos: d.pos})
				case len(fields) == 2 && fields[1] == "leaf":
					rules = append(rules, lockRule{kind: "leaf", a: fields[0], pos: d.pos})
				case len(fields) == 2 && fields[1] == "internal":
					rules = append(rules, lockRule{kind: "internal", a: fields[0], pos: d.pos})
				default:
					emit(diag{
						pass: "lockorder",
						pos:  d.pos,
						msg:  fmt.Sprintf("malformed lockorder clause %q (expect \"A < B\", \"X leaf\", or \"P internal\")", clause),
					})
				}
			}
		}
	}
	return rules
}

// lockMatches reports whether a directive name matches a canonical
// lock name: case-insensitive, by suffix ("db.mu" ~ "iamdb.DB.mu"),
// with a trailing ".*" acting as a package/prefix wildcard.
func lockMatches(pattern, canon string) bool {
	c := strings.ToLower(displayLock(canon))
	p := strings.ToLower(pattern)
	if strings.HasSuffix(p, ".*") {
		return strings.HasPrefix(c, p[:len(p)-1])
	}
	return c == p || strings.HasSuffix(c, "."+p)
}

// declaredClosure computes the transitive closure of the "order"
// rules over directive name spellings.
func declaredClosure(rules []lockRule) [][2]string {
	succ := make(map[string]map[string]bool)
	add := func(a, b string) bool {
		la, lb := strings.ToLower(a), strings.ToLower(b)
		if succ[la] == nil {
			succ[la] = make(map[string]bool)
		}
		if succ[la][lb] {
			return false
		}
		succ[la][lb] = true
		return true
	}
	names := make(map[string]string) // lower -> original spelling
	for _, r := range rules {
		if r.kind != "order" {
			continue
		}
		add(r.a, r.b)
		names[strings.ToLower(r.a)] = r.a
		names[strings.ToLower(r.b)] = r.b
	}
	for changed := true; changed; {
		changed = false
		for a, bs := range succ {
			for b := range bs {
				for c := range succ[b] {
					if add(a, c) {
						changed = true
					}
				}
			}
		}
	}
	var out [][2]string
	for a, bs := range succ {
		for b := range bs {
			out = append(out, [2]string{a, b})
		}
	}
	return out
}

// collectEdges walks every function summary producing the observed
// acquisition edges, deduplicated by (src, dst) keeping the first
// (deterministic: nodes are visited in declaration order).
func collectEdges(pr *program) []lockEdge {
	seen := make(map[[2]string]bool)
	var edges []lockEdge
	addEdge := func(e lockEdge) {
		key := [2]string{e.src, e.dst}
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, e)
	}
	for _, n := range pr.order {
		for _, a := range n.sum.acquires {
			for _, h := range a.held {
				addEdge(lockEdge{src: h, dst: a.name, pos: a.pos})
			}
		}
		for _, ev := range n.sum.events {
			if ev.callee == nil || len(ev.held) == 0 {
				continue
			}
			for _, cn := range pr.callees(n, ev) {
				for lock, origin := range cn.sum.mayAcquire {
					viaIface := ev.iface || origin.iface
					for _, h := range ev.held {
						if h == lock && viaIface {
							// A self-edge reached only through interface
							// resolution is an over-approximation artifact
							// (e.g. a vfs wrapper delegating to its inner
							// FS, which "may" be itself): skip.
							continue
						}
						addEdge(lockEdge{src: h, dst: lock, pos: ev.pos, via: ev.callee, iface: viaIface})
					}
				}
			}
		}
	}
	return edges
}

// sccOf groups the edge graph's nodes into strongly connected
// components (Tarjan), returning a component id per lock name.
func sccOf(edges []lockEdge) map[string]int {
	adj := make(map[string][]string)
	for _, e := range edges {
		adj[e.src] = append(adj[e.src], e.dst)
		if _, ok := adj[e.dst]; !ok {
			adj[e.dst] = nil
		}
	}
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, ncomp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for v := range adj {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}

func lockorder(pr *program, emit func(diag)) {
	rules := parseLockDecls(pr.pkgs, emit)
	closure := declaredClosure(rules)

	declared := func(src, dst string) bool {
		for _, pair := range closure {
			if lockMatches(pair[0], src) && lockMatches(pair[1], dst) {
				return true
			}
		}
		return false
	}
	internalExempt := func(src, dst string) bool {
		for _, r := range rules {
			if r.kind == "internal" && lockMatches(r.a, src) && lockMatches(r.a, dst) {
				return true
			}
		}
		return false
	}
	leafRule := func(src string) *lockRule {
		for i, r := range rules {
			if r.kind == "leaf" && lockMatches(r.a, src) {
				return &rules[i]
			}
		}
		return nil
	}
	viaSuffix := func(e lockEdge) string {
		if e.via == nil {
			return ""
		}
		return fmt.Sprintf(" (via call to %s)", fnLabel(e.via))
	}
	position := func(p token.Pos) token.Position { return pr.fset.Position(p) }

	all := collectEdges(pr)
	var edges []lockEdge
	for _, e := range all {
		if internalExempt(e.src, e.dst) {
			continue
		}
		edges = append(edges, e)
	}

	comp := sccOf(edges)
	inCycle := func(e lockEdge) bool {
		if e.src == e.dst {
			return true
		}
		return comp[e.src] == comp[e.dst]
	}

	// Count members per component to tell real multi-lock cycles from
	// singleton components, and note which cycles contain an
	// undeclared edge: there the undeclared edges are the offenders
	// and the declared ones stay silent.
	size := make(map[int]int)
	for _, c := range comp {
		size[c]++
	}
	undeclaredIn := make(map[int]bool)
	for _, e := range edges {
		if e.src != e.dst && comp[e.src] == comp[e.dst] && size[comp[e.src]] > 1 && !declared(e.src, e.dst) {
			undeclaredIn[comp[e.src]] = true
		}
	}

	haveDecls := len(rules) > 0
	for _, e := range edges {
		src, dst := displayLock(e.src), displayLock(e.dst)
		switch {
		case e.src == e.dst:
			emit(diag{
				pass: "lockorder",
				pos:  position(e.pos),
				msg:  fmt.Sprintf("%s may be acquired while already held%s — recursive locking, self-deadlock", dst, viaSuffix(e)),
			})
		case inCycle(e) && size[comp[e.src]] > 1 && !declared(e.src, e.dst):
			emit(diag{
				pass: "lockorder",
				pos:  position(e.pos),
				msg:  fmt.Sprintf("acquiring %s while holding %s%s completes a lock-order cycle — potential deadlock", dst, src, viaSuffix(e)),
			})
		case inCycle(e) && size[comp[e.src]] > 1:
			if undeclaredIn[comp[e.src]] {
				// The cycle's undeclared edges were reported above; this
				// declared edge is consistent with the hierarchy.
				continue
			}
			// Every edge of this cycle is individually declared: the
			// declared hierarchy itself is contradictory.
			emit(diag{
				pass: "lockorder",
				pos:  position(e.pos),
				msg:  fmt.Sprintf("declared lock order permits a cycle through %s and %s — fix the //iamlint:lockorder directives", src, dst),
			})
		default:
			if lr := leafRule(e.src); lr != nil {
				emit(diag{
					pass: "lockorder",
					pos:  position(e.pos),
					msg:  fmt.Sprintf("%s is declared a leaf lock but %s is acquired while it is held%s", src, dst, viaSuffix(e)),
				})
			} else if haveDecls && !declared(e.src, e.dst) {
				emit(diag{
					pass: "lockorder",
					pos:  position(e.pos),
					msg: fmt.Sprintf("acquiring %s while holding %s%s is not in the declared lock order; add \"//iamlint:lockorder %s < %s\" or restructure",
						dst, src, viaSuffix(e), src, dst),
				})
			}
		}
	}
}
