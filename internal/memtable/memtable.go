// Package memtable implements the in-memory level L0 of LSA/IAM and the
// memtable of the LSM baselines: a skiplist ordered by internal key.
// Records accumulate here until the table reaches its capacity threshold
// Ct, whereupon it becomes an immutable memtable and is flushed to disk
// (Sec. 5.2).
package memtable

import (
	"math/rand"
	"sync"

	"iamdb/internal/iterator"
	"iamdb/internal/kv"
)

const (
	maxHeight = 12
	branching = 4
)

type node struct {
	ikey  []byte
	value []byte
	next  []*node
}

// MemTable is a skiplist of internal keys.  Concurrent readers are safe
// with one writer; the DB layer serializes writers.
type MemTable struct {
	mu     sync.RWMutex
	head   *node
	height int
	rnd    *rand.Rand
	size   int64
	count  int
}

// New returns an empty memtable.
func New() *MemTable {
	return &MemTable{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rnd:    rand.New(rand.NewSource(0xdeadbeef)),
	}
}

func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rnd.Intn(branching) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with ikey >= key, filling
// prev with the rightmost node before it on each level when prev != nil.
func (m *MemTable) findGreaterOrEqual(key []byte, prev []*node) *node {
	x := m.head
	level := m.height - 1
	for {
		next := x.next[level]
		if next != nil && kv.CompareInternal(next.ikey, key) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// Add inserts a record.  Internal keys are unique (sequence numbers
// never repeat), so Add never overwrites.
func (m *MemTable) Add(seq kv.Seq, kind kv.Kind, ukey, value []byte) {
	ikey := kv.MakeInternalKey(ukey, seq, kind)
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := make([]*node, maxHeight)
	m.findGreaterOrEqual(ikey, prev)
	h := m.randomHeight()
	if h > m.height {
		for i := m.height; i < h; i++ {
			prev[i] = m.head
		}
		m.height = h
	}
	n := &node{ikey: ikey, value: append([]byte(nil), value...), next: make([]*node, h)}
	for i := 0; i < h; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	m.size += int64(len(ikey) + len(value) + 16*h)
	m.count++
}

// Get returns the newest record for ukey visible at snapshot snap.
func (m *MemTable) Get(ukey []byte, snap kv.Seq) (value []byte, kind kv.Kind, seq kv.Seq, found bool) {
	target := kv.MakeInternalKey(ukey, snap, kv.KindSet)
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.findGreaterOrEqual(target, nil)
	if n == nil {
		return nil, 0, 0, false
	}
	u, s, k, ok := kv.ParseInternalKey(n.ikey)
	if !ok || kv.CompareUser(u, ukey) != 0 {
		return nil, 0, 0, false
	}
	return n.value, k, s, true
}

// ApproximateSize reports the bytes the table occupies, the quantity
// compared against the capacity threshold Ct.
func (m *MemTable) ApproximateSize() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// Count reports the number of records.
func (m *MemTable) Count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// Empty reports whether the table has no records.
func (m *MemTable) Empty() bool { return m.Count() == 0 }

// NewIter iterates the table in internal-key order.  The iterator sees
// a live view; engines only iterate immutable memtables, so this is
// safe in practice.
func (m *MemTable) NewIter() iterator.Iterator { return &iter{m: m} }

type iter struct {
	m *MemTable
	n *node
}

// First implements iterator.Iterator.
func (it *iter) First() {
	it.m.mu.RLock()
	it.n = it.m.head.next[0]
	it.m.mu.RUnlock()
}

// Seek implements iterator.Iterator.
func (it *iter) Seek(target []byte) {
	it.m.mu.RLock()
	it.n = it.m.findGreaterOrEqual(target, nil)
	it.m.mu.RUnlock()
}

// Next implements iterator.Iterator.
func (it *iter) Next() {
	if it.n != nil {
		it.m.mu.RLock()
		it.n = it.n.next[0]
		it.m.mu.RUnlock()
	}
}

// Valid implements iterator.Iterator.
func (it *iter) Valid() bool { return it.n != nil }

// Key implements iterator.Iterator.
func (it *iter) Key() []byte {
	if it.n == nil {
		return nil
	}
	return it.n.ikey
}

// Value implements iterator.Iterator.
func (it *iter) Value() []byte {
	if it.n == nil {
		return nil
	}
	return it.n.value
}

// Err implements iterator.Iterator.
func (it *iter) Err() error { return nil }

// Close implements iterator.Iterator.
func (it *iter) Close() error { return nil }

// findLessThan returns the last node with ikey < key, or nil.
func (m *MemTable) findLessThan(key []byte) *node {
	x := m.head
	level := m.height - 1
	for {
		next := x.next[level]
		if next != nil && kv.CompareInternal(next.ikey, key) < 0 {
			x = next
			continue
		}
		if level == 0 {
			if x == m.head {
				return nil
			}
			return x
		}
		level--
	}
}

// findLast returns the final node, or nil when empty.
func (m *MemTable) findLast() *node {
	x := m.head
	level := m.height - 1
	for {
		next := x.next[level]
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			if x == m.head {
				return nil
			}
			return x
		}
		level--
	}
}

// Last implements iterator.ReverseIterator.
func (it *iter) Last() {
	it.m.mu.RLock()
	it.n = it.m.findLast()
	it.m.mu.RUnlock()
}

// Prev implements iterator.ReverseIterator.  Skiplists have forward
// pointers only, so each step re-descends from the head (O(log n), the
// LevelDB approach).
func (it *iter) Prev() {
	if it.n == nil {
		return
	}
	it.m.mu.RLock()
	it.n = it.m.findLessThan(it.n.ikey)
	it.m.mu.RUnlock()
}

// SeekForPrev implements iterator.ReverseIterator.
func (it *iter) SeekForPrev(target []byte) {
	it.m.mu.RLock()
	n := it.m.findGreaterOrEqual(target, nil)
	if n != nil && kv.CompareInternal(n.ikey, target) == 0 {
		it.n = n
	} else {
		it.n = it.m.findLessThan(target)
	}
	it.m.mu.RUnlock()
}
