package iamdb

import (
	"fmt"
	"testing"

	"iamdb/internal/vfs"
)

func TestCheckpointAndOpenCopy(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open("db", smallOpts(IAM, fs))
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for i := 0; i < 3000; i++ {
		k, v := fmt.Sprintf("k%05d", i%2500), fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		ref[k] = v
	}
	if err := db.Checkpoint("backup"); err != nil {
		t.Fatal(err)
	}
	// Divergence after the checkpoint must not leak into the copy.
	db.Put([]byte("post-checkpoint"), []byte("x"))
	db.Delete([]byte("k00001"))

	cp, err := Open("backup", smallOpts(IAM, fs))
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	defer cp.Close()
	for k, v := range ref {
		got, err := cp.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("checkpoint %s = %q (%v) want %q", k, got, err, v)
		}
	}
	if _, err := cp.Get([]byte("post-checkpoint")); err != ErrNotFound {
		t.Fatal("post-checkpoint write leaked into the copy")
	}
	// Original still intact and diverged.
	if _, err := db.Get([]byte("k00001")); err != ErrNotFound {
		t.Fatal("original lost its post-checkpoint delete")
	}
	db.Close()
}

func TestCheckpointRefusesExistingDB(t *testing.T) {
	fs := vfs.NewMemFS()
	db, _ := Open("db", smallOpts(IAM, fs))
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	if err := db.Checkpoint("db2"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint("db2"); err == nil {
		t.Fatal("checkpoint over an existing database must fail")
	}
}
