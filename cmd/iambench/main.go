// Command iambench regenerates the paper's tables and figures on the
// virtual-disk harness.
//
// Usage:
//
//	iambench                         # run everything at medium scale
//	iambench -experiment table4      # one experiment
//	iambench -scale small            # quicker, smaller datasets
//	iambench -json ./results         # also write BENCH_<id>.json blobs
//	iambench -list                   # list experiment ids
//
// Experiment ids: table1 table2 table3 table4 table5 figure6
// figure7a figure7b figure7c figure8 figure9 figure10 stability
// kvsep concurrency shards
//
// All experiments except `concurrency` and `shards` run on the
// deterministic virtual-disk harness; those two measure the commit
// pipeline(s) in wall-clock time, so their numbers vary with the host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"iamdb"
	"iamdb/internal/harness"
)

type experiment struct {
	id   string
	desc string
	run  func(harness.Scale) (harness.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"table1", "amplifications of LSM/LSA/IAM",
			func(s harness.Scale) (harness.Table, error) { return s.Table1() }},
		{"table2", "append-tree traits (seq writes, moves, scans)",
			func(s harness.Scale) (harness.Table, error) { return s.Table2() }},
		{"table3", "IAM per-level write amp vs k (mixed level pinned)",
			func(s harness.Scale) (harness.Table, error) { return s.Table3() }},
		{"table4", "per-level write amp after 1T-class hash load",
			func(s harness.Scale) (harness.Table, error) { return s.Table4() }},
		{"table5", "99% latencies of query-intensive workloads",
			func(s harness.Scale) (harness.Table, error) { return s.Table5() }},
		{"figure6", "hash-load throughput normalized to LevelDB",
			func(s harness.Scale) (harness.Table, error) { return s.Figure6() }},
		{"figure7a", "YCSB A-G throughput, SSD-100G",
			func(s harness.Scale) (harness.Table, error) { return s.Figure7(harness.ClassSSD100G) }},
		{"figure7b", "YCSB A-G throughput, HDD-100G",
			func(s harness.Scale) (harness.Table, error) { return s.Figure7(harness.ClassHDD100G) }},
		{"figure7c", "YCSB A-G throughput, HDD-1T",
			func(s harness.Scale) (harness.Table, error) { return s.Figure7(harness.ClassHDD1T) }},
		{"figure8", "stable throughput, query-intensive, SSD-100G",
			func(s harness.Scale) (harness.Table, error) { return s.Figure8() }},
		{"figure9", "fillseq/readseq throughput",
			func(s harness.Scale) (harness.Table, error) { return s.Figure9() }},
		{"figure10", "space usage after write tests",
			func(s harness.Scale) (harness.Table, error) { return s.Figure10() }},
		{"stability", "sustained-workload throughput variance and worst-window tails",
			func(s harness.Scale) (harness.Table, error) { return s.Stability() }},
		{"kvsep", "key-value separation: large-value throughput and write-byte crossover",
			func(s harness.Scale) (harness.Table, error) { return s.KVSep() }},
		{"concurrency", "group-commit throughput vs writer count (wall clock)",
			runConcurrency},
		{"shards", "sharded front-end throughput vs shard count (wall clock)",
			runShards},
	}
}

func main() {
	var (
		expID   = flag.String("experiment", "", "experiment id (default: all)")
		scale   = flag.String("scale", "medium", "small | medium | full")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonDir = flag.String("json", "", "directory for BENCH_<id>.json metrics blobs")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments() {
			fmt.Printf("%-9s  %s\n", e.id, e.desc)
		}
		return
	}

	var s harness.Scale
	switch *scale {
	case "small":
		s = harness.SmallScale
	case "medium":
		s = harness.MediumScale
	case "full":
		// The paper's full 8192x dataset:Ct ratio for the 1T class;
		// expect long runtimes and gigabytes of memory.
		s = harness.MediumScale
		s.Name = "full"
		s.Records1T = 8192 * uint64(s.Ct) / uint64(s.ValueSize)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	exps := experiments()
	if *expID != "" {
		// The id list is in presentation order, not sorted: scan.
		idx := -1
		for i, e := range exps {
			if e.id == *expID {
				idx = i
				break
			}
		}
		if idx < 0 {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		exps = exps[idx : idx+1]
	}

	// When -json is set, each environment reports its final metrics
	// snapshot through the harness sink; one BENCH_<id>.json per
	// experiment captures per-level amplification alongside the table.
	var records []harness.MetricsRecord
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mkdir %s: %v\n", *jsonDir, err)
			os.Exit(1)
		}
		harness.SetMetricsSink(func(r harness.MetricsRecord) {
			records = append(records, r)
		})
	}

	fmt.Printf("iambench: scale=%s (100G-class=%d records, 1T-class=%d records, Ct=%dKiB)\n\n",
		s.Name, s.Records100G, s.Records1T, s.Ct/1024)
	for _, e := range exps {
		start := time.Now()
		records = records[:0]
		tbl, err := e.run(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(tbl.Format())
		fmt.Printf("(%s finished in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		if *jsonDir != "" {
			if err := writeBench(*jsonDir, newRunMeta(e.id, s), tbl, records); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
				os.Exit(1)
			}
		}
	}
}

// benchSchema versions the BENCH_*.json layout; bump on breaking
// changes so trajectory tooling can branch on it.
const benchSchema = 2

// runMeta stamps every emitted blob with where and how it was made, so
// result trajectories stay attributable after the repo moves on.
type runMeta struct {
	Schema      int
	Experiment  string
	Scale       string
	GitRevision string
	GoVersion   string
	GOMAXPROCS  int
	Config      string
}

func newRunMeta(id string, s harness.Scale) runMeta {
	return runMeta{
		Schema:      benchSchema,
		Experiment:  id,
		Scale:       s.Name,
		GitRevision: gitRevision(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Config: fmt.Sprintf("records100G=%d records1T=%d Ct=%d valueSize=%d workloadOps=%d",
			s.Records100G, s.Records1T, s.Ct, s.ValueSize, s.WorkloadOps),
	}
}

// gitRevision best-efforts the working tree's short commit hash;
// "unknown" outside a git checkout or without git on PATH.
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// benchBlob is the BENCH_<id>.json schema: run metadata, the rendered
// table, and the full metrics snapshot of every environment the
// experiment ran.  Timelines are split into BENCH_<id>.timeline.json so
// the main blob stays skimmable.
type benchBlob struct {
	Meta       runMeta
	Experiment string
	Scale      string
	Title      string
	Header     []string
	Rows       [][]string
	Runs       []harness.MetricsRecord
}

// timelineBlob is the BENCH_<id>.timeline.json schema: one windowed
// time-series per environment the experiment ran.
type timelineBlob struct {
	Meta runMeta
	Runs []timelineRun
}

type timelineRun struct {
	Engine   string
	Disk     string
	Timeline []iamdb.TimelinePoint
}

func writeBench(dir string, meta runMeta, tbl harness.Table, runs []harness.MetricsRecord) error {
	var tl timelineBlob
	for i := range runs {
		if len(runs[i].Timeline) > 0 {
			tl.Runs = append(tl.Runs, timelineRun{
				Engine: runs[i].Engine, Disk: runs[i].Disk, Timeline: runs[i].Timeline,
			})
			runs[i].Timeline = nil
		}
	}
	blob := benchBlob{
		Meta:       meta,
		Experiment: meta.Experiment, Scale: meta.Scale,
		Title: tbl.Title, Header: tbl.Header, Rows: tbl.Rows,
		Runs: runs,
	}
	data, err := json.MarshalIndent(blob, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+meta.Experiment+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if len(tl.Runs) == 0 {
		return nil
	}
	tl.Meta = meta
	data, err = json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return err
	}
	path = filepath.Join(dir, "BENCH_"+meta.Experiment+".timeline.json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
