package block

import (
	"bytes"
	"testing"
)

// FuzzBlockDecode feeds arbitrary bytes to the block reader: decoding
// either fails cleanly or yields an iterator that terminates without
// panicking, regardless of what the restart array and varint headers
// claim.  Structural damage below the CRC layer (the table strips the
// checksum before handing bytes here) must never crash or loop.
func FuzzBlockDecode(f *testing.F) {
	b := NewBuilder()
	b.Add([]byte("alpha"), []byte("one"))
	b.Add([]byte("beta"), []byte("two"))
	b.Add([]byte("betamax"), []byte("three"))
	valid := b.Finish()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[1:])

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data, bytes.Compare)
		if err != nil {
			return
		}
		it := r.Iter()
		n := 0
		for it.First(); it.Valid(); it.Next() {
			// Touch every accessor so damaged offsets are exercised.
			_, _ = it.Key(), it.Value()
			if n++; n > 1<<17 {
				t.Fatalf("iterator never terminates (%d entries from %d bytes)", n, len(data))
			}
		}
		_ = it.Err()
		// Seeks against arbitrary structure must also terminate cleanly.
		it.Seek([]byte("beta"))
		_ = it.Err()
	})
}
