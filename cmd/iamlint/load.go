package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// diag is one finding.
type diag struct {
	pass string
	pos  token.Position
	msg  string
}

func (d diag) String() string {
	name := d.pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d: [%s] %s", name, d.pos.Line, d.pass, d.msg)
}

// pkg is one loaded, parsed and type-checked package.
type pkg struct {
	path  string
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
	tpkg  *types.Package

	// lineIgnores[file][line] holds passes suppressed at that line (a
	// diagnostic is suppressed by a directive on its own line or the
	// line above).  fileIgnores[file] suppresses for the whole file.
	lineIgnores map[string]map[int][]string
	fileIgnores map[string][]string
	// deterministic marks packages opted into the determinism pass by
	// an //iamlint:deterministic directive (fixtures use this).
	deterministic bool
	// lockDecls are the package's //iamlint:lockorder directives,
	// parsed by the lockorder pass.
	lockDecls []lockDecl
	// pending are diagnostics produced while scanning directives
	// (malformed directives, unknown pass names).
	pending []diag
}

// lockDecl is one unparsed //iamlint:lockorder directive.
type lockDecl struct {
	text string
	pos  token.Position
}

// knownPasses validates pass names in suppression directives; a typo
// there would silently suppress nothing.
var knownPasses = map[string]bool{
	"lockcheck":   true,
	"ioerr":       true,
	"determinism": true,
	"alias":       true,
	"atomicpub":   true,
	"lockorder":   true,
	"syncorder":   true,
	"goexit":      true,
	"directive":   true,
}

func (p *pkg) suppressed(pass string, pos token.Position) bool {
	for _, ig := range p.fileIgnores[pos.Filename] {
		if ig == pass {
			return true
		}
	}
	lines := p.lineIgnores[pos.Filename]
	for _, ln := range []int{pos.Line, pos.Line - 1} {
		for _, ig := range lines[ln] {
			if ig == pass {
				return true
			}
		}
	}
	return false
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

func goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args[:2], " "), err, errb.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// load resolves patterns go/packages-style: `go list -export -deps`
// supplies compiled export data for every dependency, the targets
// themselves are parsed from source and type-checked against it.
func load(patterns []string) ([]*pkg, error) {
	fields := "-json=Dir,ImportPath,Export,GoFiles,Standard,Error"
	targets, err := goList(append([]string{"list", "-e", fields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(append([]string{"list", "-e", "-export", "-deps", fields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	var out []*pkg
	for _, t := range targets {
		// `go list -e` reports a typo'd pattern as an errored package
		// instead of failing; exiting 0 on it would be a silent no-op.
		if t.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", t.ImportPath, t.Error.Err)
		}
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		p, err := parseAndCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func parseAndCheck(fset *token.FileSet, imp types.Importer, t listPkg) (*pkg, error) {
	p := &pkg{
		path:        t.ImportPath,
		fset:        fset,
		lineIgnores: make(map[string]map[int][]string),
		fileIgnores: make(map[string][]string),
	}
	for _, name := range t.GoFiles {
		full := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", full, err)
		}
		p.files = append(p.files, f)
		p.scanDirectives(f)
	}
	p.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		// The repo builds before linting; residual type errors (e.g. in
		// fixtures under construction) must not stop the passes.
		Error: func(error) {},
	}
	p.tpkg, _ = conf.Check(t.ImportPath, fset, p.files, p.info)
	return p, nil
}

// scanDirectives records //iamlint:... comments of one file.
func (p *pkg) scanDirectives(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "iamlint:") {
				continue
			}
			directive := strings.TrimPrefix(text, "iamlint:")
			pos := p.fset.Position(c.Pos())
			switch {
			case directive == "deterministic":
				p.deterministic = true
			case strings.HasPrefix(directive, "file-ignore "):
				passes := p.checkPasses(splitPasses(strings.TrimPrefix(directive, "file-ignore ")), pos)
				p.fileIgnores[pos.Filename] = append(p.fileIgnores[pos.Filename], passes...)
			case strings.HasPrefix(directive, "ignore "):
				passes := p.checkPasses(splitPasses(strings.TrimPrefix(directive, "ignore ")), pos)
				if p.lineIgnores[pos.Filename] == nil {
					p.lineIgnores[pos.Filename] = make(map[int][]string)
				}
				p.lineIgnores[pos.Filename][pos.Line] = append(p.lineIgnores[pos.Filename][pos.Line], passes...)
			case strings.HasPrefix(directive, "lockorder "):
				p.lockDecls = append(p.lockDecls, lockDecl{
					text: strings.TrimPrefix(directive, "lockorder "),
					pos:  pos,
				})
			default:
				p.pending = append(p.pending, diag{
					pass: "directive",
					pos:  pos,
					msg:  fmt.Sprintf("unknown iamlint directive %q (expect deterministic, ignore, file-ignore, or lockorder)", directive),
				})
			}
		}
	}
}

// checkPasses reports unknown pass names in a suppression directive —
// a typo there would silently suppress nothing — and filters them out.
func (p *pkg) checkPasses(passes []string, pos token.Position) []string {
	out := passes[:0]
	for _, name := range passes {
		if !knownPasses[name] {
			p.pending = append(p.pending, diag{
				pass: "directive",
				pos:  pos,
				msg:  fmt.Sprintf("unknown pass %q in iamlint directive", name),
			})
			continue
		}
		out = append(out, name)
	}
	return out
}

func splitPasses(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// funcFor resolves the called function (or method) of a call, through
// either a plain identifier or a selector.  Returns nil for calls to
// function values, built-ins, or type conversions.
func (p *pkg) funcFor(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := p.info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pkgPathOf returns the import path of a function's defining package,
// or "" for builtins.
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// returnsError reports whether any result of fn is the builtin error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
