package iamdb

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iamdb/internal/engine"
	"iamdb/internal/histogram"
	"iamdb/internal/metrics"
	"iamdb/internal/vfs"
)

// eventCounts tallies every listener callback so tests can compare the
// event stream against the engine's counters one-to-one.
type eventCounts struct {
	flush, appends, merges, moves, splits, combines atomic.Int64
	appendBytes, mergeBytes, splitBytes             atomic.Int64
	manifestEdits, tableCreated, tableDeleted       atomic.Int64
	walRotated                                      atomic.Int64
	stallBegin, stallEnd, stallNanos                atomic.Int64
}

func (c *eventCounts) listener() *EventListener {
	return &EventListener{
		FlushEnd: func(i FlushInfo) { c.flush.Add(1) },
		AppendEnd: func(i AppendInfo) {
			c.appends.Add(1)
			c.appendBytes.Add(i.Bytes)
		},
		MergeEnd: func(i MergeInfo) {
			c.merges.Add(1)
			c.mergeBytes.Add(i.Bytes)
		},
		MoveEnd: func(i MoveInfo) { c.moves.Add(1) },
		SplitEnd: func(i SplitInfo) {
			c.splits.Add(1)
			c.splitBytes.Add(i.Bytes)
		},
		CombineEnd:      func(i CombineInfo) { c.combines.Add(1) },
		WALRotated:      func(i WALRotationInfo) { c.walRotated.Add(1) },
		ManifestEdit:    func(i ManifestEditInfo) { c.manifestEdits.Add(1) },
		TableCreated:    func(i TableInfo) { c.tableCreated.Add(1) },
		TableDeleted:    func(i TableInfo) { c.tableDeleted.Add(1) },
		WriteStallBegin: func(i StallInfo) { c.stallBegin.Add(1) },
		WriteStallEnd: func(i StallInfo) {
			c.stallEnd.Add(1)
			c.stallNanos.Add(int64(i.Duration))
		},
	}
}

// TestEventStreamInvariants runs a deterministic MemFS workload and
// checks that the event stream and the metrics snapshot tell the same
// story: every flush/append/merge/move/split/combine is announced
// exactly once, stall events pair up with the cumulative stall
// counters, and level byte totals reconcile with the vfs IO deltas.
func TestEventStreamInvariants(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			var ev eventCounts
			io := new(vfs.IOStats)
			fs := vfs.NewStatsFS(vfs.NewMemFS(), io)
			opts := smallOpts(e, fs)
			opts.EventListener = ev.listener()
			opts.Clock = new(metrics.ManualClock)
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			val := make([]byte, 100)
			for i := range val {
				val[i] = byte('a' + i%26)
			}
			for i := 0; i < 3000; i++ {
				key := []byte(fmt.Sprintf("key-%06d", i*2654435761%3000))
				if err := db.Put(key, val); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 200; i++ {
				if err := db.Delete([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}

			m := db.Metrics()
			pairs := []struct {
				name    string
				events  int64
				counter int64
			}{
				{"flush", ev.flush.Load(), m.Engine.Flushes},
				{"append", ev.appends.Load(), m.Engine.Appends},
				{"merge", ev.merges.Load(), m.Engine.Merges},
				{"move", ev.moves.Load(), m.Engine.Moves},
				{"split", ev.splits.Load(), m.Engine.Splits},
				{"combine", ev.combines.Load(), m.Engine.Combines},
				{"wal rotation", ev.walRotated.Load(), m.WALRotations},
				{"stall begin", ev.stallBegin.Load(), m.StallCount},
				{"stall end", ev.stallEnd.Load(), m.StallCount},
				{"stall time", ev.stallNanos.Load(), int64(m.StallTime)},
			}
			for _, p := range pairs {
				if p.events != p.counter {
					t.Errorf("%s: %d events but counter reads %d", p.name, p.events, p.counter)
				}
			}
			if m.Engine.Flushes == 0 {
				t.Error("workload produced no flushes")
			}
			if ev.manifestEdits.Load() == 0 || ev.tableCreated.Load() == 0 {
				t.Errorf("missing lifecycle events: %d manifest edits, %d tables created",
					ev.manifestEdits.Load(), ev.tableCreated.Load())
			}

			// Latent-fault counters: a clean workload must report no
			// damage, and a scrub pass must attribute its block reads.
			if m.CorruptionsDetected != 0 || m.TablesQuarantined != 0 || m.NoSpaceErrors != 0 {
				t.Errorf("clean workload reported faults: %d corruptions, %d quarantined, %d nospace",
					m.CorruptionsDetected, m.TablesQuarantined, m.NoSpaceErrors)
			}
			if m.ScrubBlocks != 0 {
				t.Errorf("scrub counter moved before any scrub: %d", m.ScrubBlocks)
			}
			rep, err := db.Scrub()
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if len(rep.Corruptions) != 0 {
				t.Errorf("scrub of a clean store found %d corruptions", len(rep.Corruptions))
			}
			if m2 := db.Metrics(); m2.ScrubBlocks == 0 || m2.CorruptionsDetected != 0 {
				t.Errorf("after clean scrub: %d blocks verified, %d corruptions detected",
					m2.ScrubBlocks, m2.CorruptionsDetected)
			}

			// Attributed per-level write bytes cover all append/merge/split
			// traffic (some paths, like child-less flushes, write without a
			// byte-carrying event, so events bound the counters from below).
			var levelWrites, levelReads int64
			for _, ls := range m.Engine.PerLevel {
				levelWrites += ls.WriteBytes
				levelReads += ls.ReadBytes
			}
			evBytes := ev.appendBytes.Load() + ev.mergeBytes.Load() + ev.splitBytes.Load()
			if evBytes > levelWrites {
				t.Errorf("event bytes %d exceed per-level write bytes %d", evBytes, levelWrites)
			}
			if levelWrites != m.Engine.TotalFlushBytes() {
				t.Errorf("per-level writes %d != TotalFlushBytes %d",
					levelWrites, m.Engine.TotalFlushBytes())
			}

			// Reconcile with the device: everything the engine claims to
			// have written (plus the WAL) must appear in the IO counters,
			// which also include manifest and table framing overhead.
			// Slack: table accounting budgets a fixed 24 bytes per
			// sequence for metadata fields the file stores as shorter
			// varints, so append-heavy engines overcount physical bytes
			// by up to ~21 bytes per sequence rewrite.
			const metaSlack = 16 << 10
			if got := io.Snapshot(); m.WALBytes+levelWrites > got.BytesWritten+metaSlack {
				t.Errorf("WAL %d + level writes %d exceed device writes %d (+%d slack)",
					m.WALBytes, levelWrites, got.BytesWritten, metaSlack)
			}
			if m.IO.BytesWritten == 0 || m.WALBytes == 0 {
				t.Errorf("expected device and WAL traffic, got IO=%d WAL=%d",
					m.IO.BytesWritten, m.WALBytes)
			}
			if levelReads < 0 {
				t.Errorf("negative level reads %d", levelReads)
			}
		})
	}
}

// TestMetricsStringTable is the golden-ish rendering test: a snapshot
// with known values must produce the per-level table rows and summary
// lines verbatim.
func TestMetricsStringTable(t *testing.T) {
	m := Metrics{
		Engine: engine.StatsSnapshot{
			PerLevel: []engine.LevelStats{
				{},
				{WriteBytes: 4 << 20, ReadBytes: 2 << 20, Appends: 7, Merges: 3, Moves: 2, Splits: 1, Combines: 1},
				{WriteBytes: 8 << 20, Merges: 5},
			},
			FlushBytes: []int64{0, 4 << 20, 8 << 20},
			Flushes:    42,
		},
		Levels: []engine.LevelInfo{
			{Level: 1, Nodes: 3, Bytes: 6 << 20, Seqs: 5},
			// Level 3 has shape but no traffic yet.
			{Level: 3, Nodes: 1, Bytes: 1 << 20, Seqs: 1},
		},
		SpaceUsed:          7 << 20,
		UserBytes:          3 << 20,
		CacheHitRate:       0.5,
		MemtableBytes:      1 << 20,
		ImmutableMemtables: 1,
		WALNum:             9,
		WALBytes:           2 << 20,
		WALRotations:       4,
		IO:                 vfs.IOSnapshot{BytesWritten: 20 << 20, WriteOps: 100, BytesRead: 10 << 20, ReadOps: 50, Seeks: 25},
		StallCount:         3,
		StallTime:          1500 * time.Millisecond,
		Put:                histogram.Summary{Count: 10, Mean: time.Millisecond, P50: time.Millisecond, P99: 2 * time.Millisecond, P999: 2 * time.Millisecond, Max: 3 * time.Millisecond},
	}
	s := m.String()
	for _, want := range []string{
		"Level | Files  Seqs  Size(MB) | Write(MB)  Read(MB) | Appends  Merges  Moves  Splits  Combines",
		"    1 |     3     5       6.0 |       4.0       2.0 |       7       3      2       1         1",
		"    2 |     0     0       0.0 |       8.0       0.0 |       0       5      0       0         0",
		"    3 |     1     1       1.0 |       0.0       0.0 |       0       0      0       0         0",
		"total |     4     6       7.0 |      12.0       2.0 |       7       8      2       1         1",
		"Flushes: 42  UserWrite(MB): 3.0  WriteAmp: 4.00  SpaceUsed(MB): 7.0",
		"Memtable: 1.0 MB (+1 immutable)  WAL: file 000009, 2.0 MB written, 4 rotations",
		"Block cache hit rate: 50.0%",
		"Write stalls: 3, total 1.5s",
		"Device IO: 20.0 MB written (100 ops), 10.0 MB read (50 ops), 25 seeks",
		"Latency put  n=10  mean=1ms  p50=1ms  p99=2ms  p99.9=2ms  max=3ms",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing line %q\ngot:\n%s", want, s)
		}
	}
	// Level 0 is all-zero in both views and must be elided.
	if strings.Contains(s, "\n    0 |") {
		t.Errorf("String() rendered the empty level 0:\n%s", s)
	}
}

// TestInstrumentationZeroAlloc proves the building blocks of the hot
// path — no-op listener dispatch, clock reads, histogram recording —
// allocate nothing.
func TestInstrumentationZeroAlloc(t *testing.T) {
	var nilListener *EventListener
	l := nilListener.EnsureDefaults()
	clock := new(metrics.ManualClock)
	h := histogram.NewConcurrent()
	if n := testing.AllocsPerRun(1000, func() {
		start := clock.Now()
		l.FlushEnd(FlushInfo{Bytes: 1, Duration: clock.Now() - start})
		l.WriteStallBegin(StallInfo{Level: 1})
		l.WriteStallEnd(StallInfo{Level: 1, Duration: time.Millisecond})
		h.Record(clock.Now() - start)
	}); n != 0 {
		t.Fatalf("instrumentation path allocates %.1f per op, want 0", n)
	}
}

// TestHotPathAllocations is the allocation gate of the acceptance
// criteria: a disabled EventListener must add zero allocations per op
// on the Get/Put hot path, measured by comparing a DB opened with no
// listener against one with an explicit empty listener.
func TestHotPathAllocations(t *testing.T) {
	measure := func(l *EventListener) (get, put float64) {
		opts := smallOpts(IAM, vfs.NewMemFS())
		opts.MemtableSize = 64 << 20 // no flushes during measurement
		opts.EventListener = l
		opts.Clock = new(metrics.ManualClock)
		db, err := Open("db", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		key, val := []byte("key-000042"), make([]byte, 64)
		if err := db.Put(key, val); err != nil {
			t.Fatal(err)
		}
		get = testing.AllocsPerRun(500, func() {
			if _, err := db.Get(key); err != nil {
				t.Fatal(err)
			}
		})
		put = testing.AllocsPerRun(500, func() {
			if err := db.Put(key, val); err != nil {
				t.Fatal(err)
			}
		})
		return get, put
	}
	nilGet, nilPut := measure(nil)
	empGet, empPut := measure(&EventListener{})
	if nilGet != empGet {
		t.Errorf("Get allocs differ: nil listener %.2f, empty listener %.2f", nilGet, empGet)
	}
	if nilPut != empPut {
		t.Errorf("Put allocs differ: nil listener %.2f, empty listener %.2f", nilPut, empPut)
	}
}
