// Package kv defines the internal key-value model shared by every engine
// in IamDB: internal keys carrying MVCC sequence numbers and operation
// kinds, the ordering used throughout the trees, and user-key ranges.
//
// An internal key is the user key followed by an 8-byte little-endian
// trailer packing a 56-bit sequence number and an 8-bit kind:
//
//	| user key ... | (seq << 8) | kind  (8 bytes LE) |
//
// Internal keys order by user key ascending, then by sequence number
// descending (newest first), then by kind descending.  This matches the
// LevelDB format the paper's IamDB implementation builds on.
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind describes what a record does to its key.
type Kind uint8

const (
	// KindDelete marks a tombstone: the key is deleted as of the
	// record's sequence number.
	KindDelete Kind = 0
	// KindSet stores a value for the key.
	KindSet Kind = 1
	// KindValuePtr stores a pointer into the value log instead of the
	// value itself (key-value separation): the record's value bytes are
	// a vlog.Pointer encoding, resolved lazily by the DB layer.  To the
	// trees it is an ordinary live record.
	KindValuePtr Kind = 2

	// MaxKind is the largest valid kind.  Seek targets that must land
	// at or before every version of a user key at a given sequence use
	// it: the trailer orders descending, so the largest kind sorts
	// first among records sharing a sequence number.
	MaxKind = KindValuePtr

	maxKind = MaxKind
)

func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "delete"
	case KindSet:
		return "set"
	case KindValuePtr:
		return "valueptr"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Seq is an MVCC sequence number.  Only the low 56 bits are significant.
type Seq uint64

// MaxSeq is the largest representable sequence number.
const MaxSeq Seq = (1 << 56) - 1

// TrailerLen is the length in bytes of the internal-key trailer.
const TrailerLen = 8

// PackTrailer combines a sequence number and kind into the 8-byte trailer
// value.
func PackTrailer(seq Seq, kind Kind) uint64 {
	return uint64(seq)<<8 | uint64(kind)
}

// UnpackTrailer splits a trailer value into sequence number and kind.
func UnpackTrailer(t uint64) (Seq, Kind) {
	return Seq(t >> 8), Kind(t & 0xff)
}

// AppendInternalKey appends the internal-key encoding of (ukey, seq, kind)
// to dst and returns the extended slice.
func AppendInternalKey(dst []byte, ukey []byte, seq Seq, kind Kind) []byte {
	dst = append(dst, ukey...)
	var tr [TrailerLen]byte
	binary.LittleEndian.PutUint64(tr[:], PackTrailer(seq, kind))
	return append(dst, tr[:]...)
}

// MakeInternalKey builds a fresh internal key for (ukey, seq, kind).
func MakeInternalKey(ukey []byte, seq Seq, kind Kind) []byte {
	return AppendInternalKey(make([]byte, 0, len(ukey)+TrailerLen), ukey, seq, kind)
}

// ParseInternalKey splits an internal key into its components.  It
// returns ok=false if ikey is too short or carries an unknown kind.
func ParseInternalKey(ikey []byte) (ukey []byte, seq Seq, kind Kind, ok bool) {
	if len(ikey) < TrailerLen {
		return nil, 0, 0, false
	}
	n := len(ikey) - TrailerLen
	t := binary.LittleEndian.Uint64(ikey[n:])
	seq, kind = UnpackTrailer(t)
	if kind > maxKind {
		return nil, 0, 0, false
	}
	return ikey[:n], seq, kind, true
}

// UserKey returns the user-key prefix of an internal key.  It panics if
// ikey is shorter than the trailer.
func UserKey(ikey []byte) []byte {
	return ikey[:len(ikey)-TrailerLen]
}

// Trailer returns the trailer of an internal key.
func Trailer(ikey []byte) uint64 {
	return binary.LittleEndian.Uint64(ikey[len(ikey)-TrailerLen:])
}

// SeqOf returns the sequence number of an internal key.
func SeqOf(ikey []byte) Seq {
	s, _ := UnpackTrailer(Trailer(ikey))
	return s
}

// KindOf returns the kind of an internal key.
func KindOf(ikey []byte) Kind {
	_, k := UnpackTrailer(Trailer(ikey))
	return k
}

// CompareUser orders user keys bytewise ascending.
func CompareUser(a, b []byte) int { return bytes.Compare(a, b) }

// CompareInternal orders internal keys: user key ascending, then trailer
// descending (newer sequence numbers sort first within a user key).
func CompareInternal(a, b []byte) int {
	ua, ub := UserKey(a), UserKey(b)
	if c := bytes.Compare(ua, ub); c != 0 {
		return c
	}
	ta, tb := Trailer(a), Trailer(b)
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	default:
		return 0
	}
}

// InternalKeyString renders an internal key for debugging.
func InternalKeyString(ikey []byte) string {
	u, s, k, ok := ParseInternalKey(ikey)
	if !ok {
		return fmt.Sprintf("badikey(%x)", ikey)
	}
	return fmt.Sprintf("%q@%d:%s", u, s, k)
}
